// The Fig 7 trade-off, interactively: the same no-op workload on one
// Xeon Phi collected through all THREE paths the paper describes —
//   1. in-band SysMgmt API over SCIF from the host,
//   2. the MICRAS daemon's pseudo-files on the card,
//   3. out-of-band through the SMC -> BMC over IPMB.
// Prints the distributions, the Welch test, and the cost table.

#include <cstdio>

#include "common/stats.hpp"
#include "scenarios/scenarios.hpp"

int main() {
  using namespace envmon;
  using scenarios::PhiCollector;

  const auto total = sim::Duration::seconds(120);
  std::printf("Polling one Xeon Phi (no-op workload) every 500 ms for %.0f s via three"
              " paths...\n\n",
              total.to_seconds());

  const auto api = scenarios::run_phi_noop(PhiCollector::kInbandApi, total);
  const auto daemon = scenarios::run_phi_noop(PhiCollector::kMicrasDaemon, total);
  const auto oob = scenarios::run_phi_noop(PhiCollector::kOutOfBandIpmb, total);

  const auto summarize = [](const char* name, const std::vector<double>& samples,
                            double cost_ms) {
    RunningStats s;
    for (const double v : samples) s.add(v);
    std::printf("  %-22s n=%3zu  mean=%7.2f W  sd=%5.2f  min=%7.2f  max=%7.2f"
                "  cost/query=%7.3f ms\n",
                name, samples.size(), s.mean(), s.stddev(), s.min(), s.max(), cost_ms);
  };
  summarize("SysMgmt API (in-band)", api.power_samples, api.mean_query_cost_ms);
  summarize("MICRAS daemon", daemon.power_samples, daemon.mean_query_cost_ms);
  summarize("SMC->BMC IPMB (OOB)", oob.power_samples, 0.0);

  const auto t = welch_t_test(api.power_samples, daemon.power_samples);
  std::printf("\nAPI vs daemon Welch t-test: t=%.1f, p=%.2e -> %s\n", t.t, t.p_value,
              t.p_value < 0.001 ? "statistically significant (the Fig 7 result)"
                                : "not significant");
  std::printf("\nWhy the API reads higher: 'code that wasn't already executing on the\n"
              "device before the call was made must run, collect, and return' -- each\n"
              "in-band query wakes cores. The daemon reads registers in the app's own\n"
              "time slice; the IPMB path never touches the cores at all but returns\n"
              "8-bit readings (2 W resolution).\n");
  return 0;
}
