// Quickstart: the paper's Listing 1 — two lines of MonEQ around your
// user code — on a simulated Intel (RAPL) node.
//
//   status = profiler.initialize();  // Setup Power
//   /* User code */
//   status = profiler.finalize();    // Finalize Power
//
// (The paper's MonEQ_* C spelling was the v1 surface; the typed Status
// surface replaced it — see DESIGN.md §9 for the mapping.)
//
// Everything else below is testbed assembly: standing up the simulated
// package, the msr device, and the workload that plays the role of
// "user code".  On real hardware that part is your cluster.

#include <cstdio>

#include "moneq/backend_rapl.hpp"
#include "moneq/profiler.hpp"
#include "rapl/reader.hpp"
#include "workloads/library.hpp"

int main() {
  using namespace envmon;

  // --- testbed: one node with a Sandy Bridge-era package ---
  sim::Engine engine;
  rapl::CpuPackage package(engine);
  rapl::MsrRaplReader reader(package, rapl::Credentials{true, 0});
  moneq::RaplBackend backend(reader);
  smpi::World world(1);
  smpi::FileSystemModel fs;
  moneq::DiskOutput output(".");
  moneq::NodeProfiler profiler(engine, world, /*rank=*/0);
  if (!profiler.add_backend(backend).is_ok()) return 1;

  // The "user code": a 30 s DGEMM.
  const auto workload = workloads::dgemm({sim::Duration::seconds(30), 0.95, 0.5});
  package.run_workload(&workload, engine.now());

  // --- the two lines from the paper ---
  Status status = profiler.initialize();  // Setup Power
  if (!status.is_ok()) {
    std::fprintf(stderr, "initialize failed: %s\n", status.to_string().c_str());
    return 1;
  }

  engine.run_until(engine.now() + sim::Duration::seconds(30));  // user code runs

  status = profiler.finalize(&fs, &output);  // Finalize Power
  if (!status.is_ok()) {
    std::fprintf(stderr, "finalize failed: %s\n", status.to_string().c_str());
    return 1;
  }

  // --- what you got ---
  const auto& samples = profiler.samples();
  const auto report = profiler.overhead();
  std::printf("MonEQ quickstart on a RAPL node\n");
  std::printf("  polling interval : %.0f ms (the hardware's floor, chosen "
              "automatically)\n",
              profiler.polling_interval().to_millis());
  std::printf("  samples recorded : %zu across PKG/PP0/DRAM\n", samples.size());
  double last_pkg_w = 0.0;
  for (const auto& s : samples) {
    if (s.domain == "PKG" && s.quantity == moneq::Quantity::kPowerWatts) {
      last_pkg_w = s.value;
    }
  }
  std::printf("  last PKG power   : %.1f W\n", last_pkg_w);
  std::printf("  overhead         : init %.2f ms + collect %.2f ms + finalize %.1f ms"
              " = %.3f%% of runtime\n",
              report.initialize.to_millis(), report.collection.to_millis(),
              report.finalize.to_millis(), 100.0 * report.overhead_fraction(
                                               sim::Duration::seconds(30)));
  std::printf("  output file      : ./moneq_node_00000.csv\n");
  return 0;
}
