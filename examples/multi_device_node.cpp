// Multi-device profiling: "if a system has both a NVIDIA GPU as well as
// an Intel Xeon Phi, profiling is possible for both of these devices at
// the same time" (paper §III) — plus the host CPU through RAPL, all in
// one MonEQ profiler with a single polling timer.

#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "mic/card.hpp"
#include "mic/micras.hpp"
#include "moneq/factory.hpp"
#include "moneq/profiler.hpp"
#include "nvml/device.hpp"
#include "rapl/package.hpp"
#include "rapl/reader.hpp"
#include "workloads/library.hpp"

int main() {
  using namespace envmon;

  sim::Engine engine;

  // The node's substrate: host CPU (RAPL), GPU (NVML), Xeon Phi
  // (MICRAS daemon path).  The capability-keyed factory turns each into
  // a backend — one construction surface instead of three bespoke
  // constructor shapes.
  rapl::CpuPackage package(engine);
  rapl::MsrRaplReader reader(package, rapl::Credentials{true, 0});

  nvml::NvmlLibrary library(engine);
  library.attach_device(std::make_shared<nvml::GpuDevice>(nvml::k20_spec()));
  (void)library.init();
  nvml::NvmlDeviceHandle gpu;
  (void)library.device_get_handle_by_index(0, &gpu);

  mic::PhiCard card(engine);
  mic::MicrasDaemon daemon(card);
  daemon.start();

  moneq::BackendConfig substrate;
  substrate.rapl = &reader;
  substrate.nvml = &library;
  substrate.nvml_handle = gpu;
  substrate.nvml_label = "gpu_board";
  substrate.mic_daemon = &daemon;

  std::vector<std::unique_ptr<moneq::Backend>> backends;
  for (const auto capability : {moneq::Capability::kRaplMsr, moneq::Capability::kNvml,
                                moneq::Capability::kMicDaemon}) {
    auto backend = moneq::make_backend(capability, substrate);
    if (!backend.is_ok()) {
      std::printf("backend %s: %s\n", std::string(to_string(capability)).c_str(),
                  backend.status().to_string().c_str());
      return 1;
    }
    backends.push_back(std::move(backend).value());
  }

  // One profiler, three vendor mechanisms.
  smpi::World world(1);
  moneq::NodeProfiler profiler(engine, world, 0);
  for (auto& backend : backends) {
    if (!profiler.add_backend(*backend).is_ok()) return 1;
  }
  if (!profiler.set_polling_interval(sim::Duration::millis(200)).is_ok()) return 1;
  if (!profiler.initialize().is_ok()) return 1;

  // Heterogeneous job: CPU assembles work, GPU runs vector add, Phi runs
  // offloaded Gaussian elimination — overlapping in time.
  const auto cpu_work = workloads::dgemm({sim::Duration::seconds(40), 0.7, 0.5});
  const auto gpu_work = workloads::gpu_vector_add(
      {sim::Duration::seconds(5), sim::Duration::seconds(1), sim::Duration::seconds(30)});
  const auto phi_work = workloads::offload_gauss(
      {sim::Duration::seconds(10), sim::Duration::seconds(2), sim::Duration::seconds(25)});
  package.run_workload(&cpu_work, engine.now());
  library.device_for_testing(0)->run_workload(&gpu_work, engine.now());
  card.run_workload(&phi_work, engine.now());

  engine.run_until(engine.now() + sim::Duration::seconds(40));
  if (!profiler.finalize().is_ok()) return 1;

  // Per-device summary from the single merged sample stream: the
  // "accounted for individually within the file produced for the node"
  // behaviour.
  struct Acc {
    double sum = 0.0;
    std::size_t n = 0;
  };
  std::map<std::string, Acc> by_domain;
  for (const auto& s : profiler.samples()) {
    if (s.quantity != moneq::Quantity::kPowerWatts) continue;
    auto& a = by_domain[s.domain];
    a.sum += s.value;
    ++a.n;
  }
  std::printf("One MonEQ profiler, three mechanisms, one node (40 s job):\n");
  for (const auto& [domain, acc] : by_domain) {
    std::printf("  %-12s mean %7.2f W over %3zu samples\n", domain.c_str(),
                acc.sum / static_cast<double>(acc.n), acc.n);
  }
  const auto report = profiler.overhead();
  std::printf("\ntotal samples: %zu; polls: %llu; collection overhead %.2f%%\n",
              profiler.samples().size(),
              static_cast<unsigned long long>(report.polls),
              100.0 * report.collection.to_seconds() / 40.0);
  std::printf("note: the mixed per-poll cost is dominated by NVML's 1.3 ms x 4 queries;\n"
              "swap the daemon path for the in-band API and it would be 14.2 ms each.\n");
  return 0;
}
