// Multi-device profiling: "if a system has both a NVIDIA GPU as well as
// an Intel Xeon Phi, profiling is possible for both of these devices at
// the same time" (paper §III) — plus the host CPU through RAPL, all in
// one MonEQ profiler with a single polling timer.

#include <cstdio>
#include <map>

#include "moneq/backend_mic.hpp"
#include "moneq/backend_nvml.hpp"
#include "moneq/backend_rapl.hpp"
#include "moneq/profiler.hpp"
#include "rapl/reader.hpp"
#include "workloads/library.hpp"

int main() {
  using namespace envmon;

  sim::Engine engine;

  // Host CPU (RAPL).
  rapl::CpuPackage package(engine);
  rapl::MsrRaplReader reader(package, rapl::Credentials{true, 0});
  moneq::RaplBackend cpu_backend(reader);

  // GPU (NVML).
  nvml::NvmlLibrary library(engine);
  library.attach_device(std::make_shared<nvml::GpuDevice>(nvml::k20_spec()));
  (void)library.init();
  nvml::NvmlDeviceHandle gpu;
  (void)library.device_get_handle_by_index(0, &gpu);
  moneq::NvmlBackend gpu_backend(library, gpu, "gpu_board");

  // Xeon Phi (MICRAS daemon path).
  mic::PhiCard card(engine);
  mic::MicrasDaemon daemon(card);
  daemon.start();
  moneq::MicDaemonBackend phi_backend(daemon);

  // One profiler, three vendor mechanisms.
  smpi::World world(1);
  moneq::NodeProfiler profiler(engine, world, 0);
  if (!profiler.add_backend(cpu_backend).is_ok()) return 1;
  if (!profiler.add_backend(gpu_backend).is_ok()) return 1;
  if (!profiler.add_backend(phi_backend).is_ok()) return 1;
  if (!profiler.set_polling_interval(sim::Duration::millis(200)).is_ok()) return 1;
  if (!profiler.initialize().is_ok()) return 1;

  // Heterogeneous job: CPU assembles work, GPU runs vector add, Phi runs
  // offloaded Gaussian elimination — overlapping in time.
  const auto cpu_work = workloads::dgemm({sim::Duration::seconds(40), 0.7, 0.5});
  const auto gpu_work = workloads::gpu_vector_add(
      {sim::Duration::seconds(5), sim::Duration::seconds(1), sim::Duration::seconds(30)});
  const auto phi_work = workloads::offload_gauss(
      {sim::Duration::seconds(10), sim::Duration::seconds(2), sim::Duration::seconds(25)});
  package.run_workload(&cpu_work, engine.now());
  library.device_for_testing(0)->run_workload(&gpu_work, engine.now());
  card.run_workload(&phi_work, engine.now());

  engine.run_until(engine.now() + sim::Duration::seconds(40));
  if (!profiler.finalize().is_ok()) return 1;

  // Per-device summary from the single merged sample stream: the
  // "accounted for individually within the file produced for the node"
  // behaviour.
  struct Acc {
    double sum = 0.0;
    std::size_t n = 0;
  };
  std::map<std::string, Acc> by_domain;
  for (const auto& s : profiler.samples()) {
    if (s.quantity != moneq::Quantity::kPowerWatts) continue;
    auto& a = by_domain[s.domain];
    a.sum += s.value;
    ++a.n;
  }
  std::printf("One MonEQ profiler, three mechanisms, one node (40 s job):\n");
  for (const auto& [domain, acc] : by_domain) {
    std::printf("  %-12s mean %7.2f W over %3zu samples\n", domain.c_str(),
                acc.sum / static_cast<double>(acc.n), acc.n);
  }
  const auto report = profiler.overhead();
  std::printf("\ntotal samples: %zu; polls: %llu; collection overhead %.2f%%\n",
              profiler.samples().size(),
              static_cast<unsigned long long>(report.polls),
              100.0 * report.collection.to_seconds() / 40.0);
  std::printf("note: the mixed per-poll cost is dominated by NVML's 1.3 ms x 4 queries;\n"
              "swap the daemon path for the in-band API and it would be 14.2 ms each.\n");
  return 0;
}
