// PAPI-style collection across two components at once: the host package
// (rapl) and a K20 (nvml) in a single event set — the §III alternative
// to MonEQ's timer-driven model.  Here the application drives the
// sampling loop itself.

#include <cstdio>

#include "tools/papi.hpp"
#include "workloads/library.hpp"

int main() {
  using namespace envmon;
  using namespace envmon::tools;

  sim::Engine engine;
  rapl::CpuPackage package(engine);
  nvml::NvmlLibrary nvml_lib(engine);
  nvml_lib.attach_device(std::make_shared<nvml::GpuDevice>(nvml::k20_spec()));
  (void)nvml_lib.init();

  PapiLibrary papi(engine);
  papi.add_rapl_component(package, rapl::Credentials{true, 0});
  papi.add_nvml_component(nvml_lib);
  if (papi.library_init() != kPapiOk) return 1;

  std::printf("PAPI components and events:\n");
  for (const auto& ev : papi.enum_events()) {
    std::printf("  %-44s [%s] %s\n", ev.name.c_str(), ev.units.c_str(),
                ev.description.c_str());
  }

  // The workload: CPU DGEMM while the GPU runs vector add.
  const auto cpu_work = workloads::dgemm({sim::Duration::seconds(20), 0.9, 0.5});
  const auto gpu_work = workloads::gpu_vector_add(
      {sim::Duration::seconds(3), sim::Duration::seconds(1), sim::Duration::seconds(16)});
  package.run_workload(&cpu_work, engine.now());
  nvml_lib.device_for_testing(0)->run_workload(&gpu_work, engine.now());

  int eventset = 0;
  if (papi.create_eventset(&eventset) != kPapiOk) return 1;
  for (const char* name : {"rapl:::PACKAGE_ENERGY:PACKAGE0", "rapl:::DRAM_ENERGY:PACKAGE0",
                           "nvml:::Tesla_K20:device_0:power"}) {
    if (const int rc = papi.add_event(eventset, name); rc != kPapiOk) {
      std::fprintf(stderr, "PAPI_add_event(%s): %s\n", name, papi_strerror(rc));
      return 1;
    }
  }
  if (papi.start(eventset) != kPapiOk) return 1;

  std::printf("\n%8s %18s %16s %14s\n", "t (s)", "PKG energy (J)", "DRAM energy (J)",
              "GPU power (W)");
  std::vector<long long> values;
  for (int step = 1; step <= 10; ++step) {
    engine.run_until(engine.now() + sim::Duration::seconds(2));
    if (papi.read(eventset, &values) != kPapiOk) return 1;
    std::printf("%8.1f %18.2f %16.2f %14.2f\n", engine.now().to_seconds(),
                static_cast<double>(values[0]) * 1e-9, static_cast<double>(values[1]) * 1e-9,
                static_cast<double>(values[2]) / 1000.0);
  }
  (void)papi.stop(eventset, &values);
  (void)papi.cleanup_eventset(eventset);

  std::printf("\ntotal collection cost charged to the app: %.2f ms over 10 reads\n",
              papi.cost().total().to_millis());
  std::printf("(contrast with MonEQ: same data, but the application owned the loop)\n");
  return 0;
}
