// The Figs 1-2 story end to end: the MMPS messaging benchmark on a Blue
// Gene/Q rack, observed two ways at once —
//   * by the control system's environmental monitor, polling the bulk
//     power modules into the environmental database every ~5 minutes,
//   * by MonEQ over EMON at 560 ms on one node card (32 nodes).
// The two views agree on totals; only MonEQ resolves the domains, and
// only the database sees the idle shoulders around the job.

#include <cstdio>

#include "analysis/series_ops.hpp"
#include "scenarios/scenarios.hpp"

int main() {
  using namespace envmon;

  scenarios::BgqMmpsOptions options;
  options.job_duration = sim::Duration::seconds(900);
  options.idle_margin = sim::Duration::seconds(240);
  options.env_poll_interval = sim::Duration::seconds(240);

  std::printf("Running MMPS on 1 BG/Q rack (1,024 nodes) for %.0f s with %.0f s idle"
              " margins...\n\n",
              options.job_duration.to_seconds(), options.idle_margin.to_seconds());
  const auto result = scenarios::run_bgq_mmps(options);

  std::printf("Environmental database view (BPM input power, rack R00):\n");
  for (const auto& p : result.bpm_input_power) {
    std::printf("  t=%6.0f s  %8.1f W\n", p.t.to_seconds(), p.value);
  }

  std::printf("\nMonEQ view (one node card, %zu series):\n", result.moneq_domains.size());
  for (const auto& d : result.moneq_domains) {
    analysis::Crossing start = analysis::first_rise_above(d.points, 0.0);
    double mean = analysis::mean_in_window(
        d.points, sim::SimTime::zero(),
        sim::SimTime::zero() + options.job_duration);
    std::printf("  %-16s %5zu samples, mean %8.1f W%s\n", d.name.c_str(), d.points.size(),
                mean, start.found ? "" : " (no data)");
  }

  const auto report = result.moneq_overhead;
  std::printf("\nMonEQ overhead: %llu polls, collection %.3f s (%.2f%% of the job),\n"
              "finalize %.3f s across the 32-rank node card\n",
              static_cast<unsigned long long>(report.polls),
              report.collection.to_seconds(),
              100.0 * report.collection.to_seconds() / options.job_duration.to_seconds(),
              report.finalize.to_seconds());
  std::printf("\nWhat to notice (the paper's Figs 1-2 contrast):\n"
              "  * the database saw ~%zu points; MonEQ saw ~%zu per domain\n"
              "  * the database shows the idle floor before/after; MonEQ starts at\n"
              "    job power because it runs inside the job\n"
              "  * EMON's scope limit: everything above is per node card -- 32 nodes\n"
              "    -- 'part of the design of the system and it is not possible to\n"
              "    overcome in software'\n",
              result.bpm_input_power.size(),
              result.moneq_domains.empty() ? 0 : result.moneq_domains.front().points.size());
  return 0;
}
