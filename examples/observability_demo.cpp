// Self-observability tour: run a small heterogeneous-node scenario and
// read back everything the new obs layer recorded about it — the
// Prometheus scrape text, the JSON snapshot, and the virtual-clock span
// timeline.  Narrates what each exported metric means.

#include <cstdio>
#include <memory>

#include "mic/card.hpp"
#include "mic/micras.hpp"
#include "moneq/backend_mic.hpp"
#include "moneq/backend_nvml.hpp"
#include "moneq/backend_rapl.hpp"
#include "moneq/profiler.hpp"
#include "nvml/api.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "rapl/reader.hpp"
#include "tsdb/database.hpp"
#include "workloads/library.hpp"

int main() {
  using namespace envmon;

  set_log_level(LogLevel::kInfo);
  obs::default_registry().reset_values();

  sim::Engine engine;
  // Log lines now carry `[t=...s]` virtual-time stamps.
  sim::ScopedLogClock log_clock(engine);
  // One tracer, keyed to the engine's clock, shared by everything.
  obs::Tracer tracer([&engine] { return engine.now(); }, /*event_capacity=*/64);

  ENVMON_LOG(kInfo) << "assembling a CPU + GPU + Phi node";

  rapl::CpuPackage package(engine);
  rapl::MsrRaplReader reader(package, rapl::Credentials{true, 0});
  moneq::RaplBackend cpu_backend(reader);

  nvml::NvmlLibrary library(engine);
  library.attach_device(std::make_shared<nvml::GpuDevice>(nvml::k20_spec()));
  (void)library.init();
  nvml::NvmlDeviceHandle gpu;
  (void)library.device_get_handle_by_index(0, &gpu);
  moneq::NvmlBackend gpu_backend(library, gpu, "gpu_board");

  mic::PhiCard card(engine);
  mic::MicrasDaemon daemon(card);
  daemon.start();
  moneq::MicDaemonBackend phi_backend(daemon);

  const auto cpu_work = workloads::dgemm({sim::Duration::seconds(8), 0.8, 0.5});
  package.run_workload(&cpu_work, engine.now());

  smpi::World world(1);
  moneq::ProfilerOptions options;
  options.tracer = &tracer;  // polls and backend queries become spans
  moneq::NodeProfiler profiler(engine, world, 0, options);
  if (!profiler.add_backend(cpu_backend).is_ok() ||
      !profiler.add_backend(gpu_backend).is_ok() ||
      !profiler.add_backend(phi_backend).is_ok() ||
      !profiler.set_polling_interval(sim::Duration::millis(500)).is_ok() ||
      !profiler.initialize().is_ok()) {
    return 1;
  }

  // Feed the profiler's power samples into the environmental database,
  // the way the BG/Q infrastructure lands sensor data in DB2.
  tsdb::EnvDatabase db;
  db.attach_tracer(&tracer);  // inserts appear on the event ring

  ENVMON_LOG(kInfo) << "running 8 s of virtual time";
  engine.run_until(sim::SimTime::from_seconds(8.0));
  if (!profiler.finalize().is_ok()) return 1;

  const tsdb::Location node = tsdb::board_location(0, 0, 0);
  for (const auto& s : profiler.samples()) {
    if (s.quantity != moneq::Quantity::kPowerWatts) continue;
    (void)db.insert({s.t, node, s.domain + "_power_w", s.value});
  }
  ENVMON_LOG(kInfo) << "stored " << db.size() << " power records in the tsdb";

  std::printf("\n----- Prometheus exposition (obs::export_prometheus) -----\n\n");
  std::printf("%s", obs::export_prometheus().c_str());

  std::printf("\n----- How to read it -----\n\n");
  std::printf(
      "envmon_backend_query_latency_ms{backend=...}  per-query collection cost; the\n"
      "    histogram means reproduce the paper's table: rapl_msr ~0.03 ms/query,\n"
      "    nvml ~1.3 ms/query, mic daemon/API per their paths.\n"
      "envmon_backend_queries_total / _errors_total  query volume and failure rate\n"
      "    per vendor mechanism.\n"
      "envmon_profiler_polls_total                   SIGALRM-equivalent poll ticks.\n"
      "envmon_profiler_samples_total / dropped       buffer traffic; the high_water\n"
      "    gauge is the deepest the pre-allocated sample array ever got.\n"
      "envmon_sim_events_total / queue_depth         discrete-event engine activity.\n"
      "envmon_tsdb_inserts_total / rejected          environmental-database ingest,\n"
      "    with rejects from the DB2-style rate ceiling.\n");

  std::printf("\n----- JSON snapshot (obs::export_json), for scripts -----\n\n");
  std::printf("%s\n", obs::export_json().c_str());

  std::printf("\n----- Span timeline (first polls; spans indent by nesting) -----\n\n");
  const std::string timeline = tracer.format_timeline();
  // The full trace repeats every 500 ms; show the first ~20 lines.
  std::size_t pos = 0;
  for (int line = 0; line < 20 && pos != std::string::npos; ++line) {
    const auto next = timeline.find('\n', pos);
    std::printf("%s\n", timeline.substr(pos, next - pos).c_str());
    pos = next == std::string::npos ? next : next + 1;
  }
  std::printf("... (%zu spans total, %llu events on the ring)\n", tracer.spans().size(),
              static_cast<unsigned long long>(tracer.events().size()));
  return 0;
}
