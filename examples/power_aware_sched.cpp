// The paper's motivating application (§I): "we proposed a power aware
// scheduling design which using power data from IBM Blue Gene/Q resulted
// in savings of up to 23% on the electricity bill."
//
// This example closes that loop on the simulated substrate: the
// environmental database supplies per-rack power, a dynamic electricity
// price alternates between on-peak and off-peak, and a scheduler decides
// when to launch the power-hungry job.  The comparison is naive
// (run immediately) vs power-aware (defer the heavy job to the off-peak
// window), costed from the BPM data the environmental monitor recorded.

#include <cstdio>

#include "bgq/env_monitor.hpp"
#include "bgq/machine.hpp"
#include "tsdb/database.hpp"
#include "workloads/library.hpp"

namespace {

using namespace envmon;

// Day-ahead price: on-peak for the first 6 h of the (compressed) day,
// off-peak afterwards.
double price_per_mwh(sim::SimTime t) {
  const double hours = t.to_seconds() / 3600.0;
  return (hours < 6.0) ? 95.0 : 38.0;  // USD/MWh
}

struct RunCost {
  double energy_mwh = 0.0;
  double dollars = 0.0;
};

// Runs a 4-hour DGEMM job on one rack starting at `job_start` and costs
// the rack's metered power over a 12-hour window.
RunCost run_day(sim::Duration job_start) {
  sim::Engine engine;
  bgq::BgqMachine machine;
  tsdb::EnvDatabase db;
  bgq::EnvMonitorOptions monitor_options;
  monitor_options.interval = sim::Duration::seconds(240);
  monitor_options.record_board_voltages = false;
  auto monitor = bgq::EnvMonitor::create(engine, machine, db, monitor_options);
  monitor.value()->start();

  const auto job = workloads::dgemm({sim::Duration::seconds(4 * 3600), 0.95, 0.5});
  machine.run_workload(&job, sim::SimTime::zero() + job_start);
  engine.run_until(sim::SimTime::from_seconds(12 * 3600));

  RunCost cost;
  tsdb::QueryFilter f;
  f.metric = bgq::kMetricBpmInputPower;
  sim::SimTime prev;
  bool first = true;
  for (const auto& rec : db.query(f)) {
    if (!first) {
      const double hours = (rec.timestamp - prev).to_seconds() / 3600.0;
      const double mwh = rec.value * 1e-6 * hours;
      cost.energy_mwh += mwh;
      cost.dollars += mwh * price_per_mwh(rec.timestamp);
    }
    prev = rec.timestamp;
    first = false;
  }
  return cost;
}

}  // namespace

int main() {
  std::printf("Power-aware scheduling on the simulated BG/Q rack\n");
  std::printf("(4 h DGEMM job; on-peak $95/MWh for hours 0-6, off-peak $38/MWh after)\n\n");

  const RunCost naive = run_day(sim::Duration::seconds(0));         // launch at 00:00
  const RunCost aware = run_day(sim::Duration::seconds(6 * 3600));  // defer to off-peak

  std::printf("  naive (run at arrival)   : %6.3f MWh, $%8.2f\n", naive.energy_mwh,
              naive.dollars);
  std::printf("  power-aware (defer 6 h)  : %6.3f MWh, $%8.2f\n", aware.energy_mwh,
              aware.dollars);
  const double savings = 100.0 * (naive.dollars - aware.dollars) / naive.dollars;
  std::printf("  electricity-bill savings : %5.1f%%  (the paper's prior work reported"
              " up to 23%%)\n\n",
              savings);
  std::printf("Note how little instrumentation this took: the decision input is just\n"
              "the BPM input power that the environmental database already collects\n"
              "every 4 minutes -- exactly the 'useful, actionable information' the\n"
              "SC'11 state-of-the-practice report asked the monitoring stack to feed.\n");
  return savings > 5.0 ? 0 : 1;
}
