// The v2 collection surface: where the MonEQ C API drives one node's
// profiler behind a thread-global binding, envmon::fleet::FleetRunner
// stands up a whole fleet — configure → run → report — with typed
// Status errors and a worker pool whose thread count never changes the
// output (same seed, same bytes).

#include <cstdio>
#include <thread>

#include "fleet/api.hpp"
#include "moneq/output.hpp"

int main() {
  using namespace envmon;

  fleet::FleetConfig config;
  config.nodes = 64;
  config.threads = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  config.capabilities = {moneq::Capability::kBgqEmon, moneq::Capability::kRaplMsr};
  config.horizon = sim::Duration::seconds(30);
  config.polling_interval = sim::Duration::millis(500);
  moneq::MemoryOutput output;
  config.output = &output;

  fleet::FleetRunner runner;
  if (const auto s = runner.configure(std::move(config)); !s.is_ok()) {
    std::printf("configure: %s\n", s.to_string().c_str());
    return 1;
  }
  if (const auto s = runner.run(); !s.is_ok()) {
    std::printf("run: %s\n", s.to_string().c_str());
    return 1;
  }

  const auto report = runner.report().value();
  std::printf("%s: %d nodes on %d worker thread(s), %llu epochs\n",
              fleet::api_version_string(), report.nodes, report.threads,
              static_cast<unsigned long long>(report.epochs));
  std::printf("  %llu polls, %llu samples (%llu dropped), %llu degraded polls\n",
              static_cast<unsigned long long>(report.polls),
              static_cast<unsigned long long>(report.samples),
              static_cast<unsigned long long>(report.dropped_samples),
              static_cast<unsigned long long>(report.degraded_polls));
  std::printf("  %zu records applied to the environmental database (%zu rejected)\n",
              report.records_applied,
              report.rejected_out_of_order + report.rejected_rate_limited +
                  report.rejected_unavailable);
  std::printf("  %zu node files rendered, %.2f node-s simulated per second\n",
              output.files().size(), report.node_seconds_per_second);
  return 0;
}
