// An ipmitool-style sensor browser for the out-of-band path: talks IPMB
// through the platform BMC to the Xeon Phi's SMC, like
// `ipmitool sensor list` against a real baseboard controller.  This is
// the only path that works when the node's OS (and every in-band
// mechanism) is down — the reason out-of-band monitoring exists.

#include <cstdio>

#include "ipmi/bmc.hpp"
#include "mic/card.hpp"
#include "mic/smc.hpp"
#include "workloads/library.hpp"

int main() {
  using namespace envmon;

  sim::Engine engine;
  mic::PhiCard card(engine);
  card.set_memory_used(gibibytes(1.0));
  const auto workload = workloads::dgemm({sim::Duration::seconds(600), 0.8, 0.5});
  card.run_workload(&workload, engine.now());
  engine.run_until(sim::SimTime::from_seconds(120));

  ipmi::Bmc bmc;
  // The BMC's own baseboard sensor.
  (void)bmc.add_sensor({0x01, "inlet_temp_celsius", ipmi::SensorFactors{1.0, 0.0, 0, 0},
                        [] { return 23.0; }});
  mic::Smc smc(card);
  smc.attach_to_bmc(bmc);
  ipmi::IpmbClient client(bmc, 0x81);

  std::printf("$ ipmi-sensors --bmc --satellite=0x30  (simulated)\n\n");
  std::printf("%-24s | %-10s | %s\n", "Sensor", "Reading", "Path");
  std::printf("%-24s-+-%-10s-+-%s\n", "------------------------", "----------",
              "---------------------------");

  const auto show = [&](const ipmi::SensorController& target, std::uint8_t number,
                        const char* name, const char* unit, const char* path) {
    const auto r = client.read_sensor(target, number);
    if (r.is_ok()) {
      std::printf("%-24s | %8.1f %-2s| %s\n", name, r.value(), unit, path);
    } else {
      std::printf("%-24s | %-10s | %s\n", name, r.status().to_string().c_str(), path);
    }
  };
  show(bmc, 0x01, "baseboard inlet temp", "C", "BMC local");
  show(smc, mic::kSmcSensorPower, "phi card power", "W", "BMC -> IPMB -> SMC");
  show(smc, mic::kSmcSensorDieTemp, "phi die temp", "C", "BMC -> IPMB -> SMC");
  show(smc, mic::kSmcSensorFan, "phi fan", "RPM", "BMC -> IPMB -> SMC");
  show(smc, mic::kSmcSensorMemUsed, "phi memory used", "MiB", "BMC -> IPMB -> SMC");
  show(smc, 0x7f, "unknown sensor", "", "BMC -> IPMB -> SMC");

  std::printf("\ntruth check: card actually draws %.1f W (IPMB readings are 8-bit,\n"
              "2 W per count -- the out-of-band resolution trade-off)\n",
              card.true_power(engine.now()).value());
  std::printf("in-band queries served while we browsed: %llu (out-of-band never wakes\n"
              "the application cores)\n",
              static_cast<unsigned long long>(card.inband_queries_served()));
  return 0;
}
