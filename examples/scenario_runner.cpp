// Config-driven experiment runner: reads an INI file describing which
// platform to profile, the workload, and the polling interval, then runs
// it and prints a summary + CSV.  Lets operators rerun any of the
// paper's single-platform experiments with different knobs without
// recompiling.
//
// Usage: scenario_runner [config.ini]
// With no argument, runs a built-in demonstration config.

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "scenarios/scenarios.hpp"

namespace {

using namespace envmon;

constexpr const char* kDefaultConfig = R"(
# Built-in demo: the Fig 3 experiment with a longer idle tail.
[experiment]
platform = rapl           ; rapl | nvml_noop | nvml_vecadd | phi_api | phi_daemon
sampling_ms = 100

[rapl]
idle_lead_s = 5
workload_s = 30
idle_tail_s = 15
)";

int run(const Config& config) {
  const auto platform = config.get_string("experiment", "platform", "rapl").value();
  const auto sampling_ms = config.get_double("experiment", "sampling_ms", 100.0);
  if (!sampling_ms) {
    std::fprintf(stderr, "config error: %s\n", sampling_ms.status().to_string().c_str());
    return 1;
  }

  if (platform == "rapl") {
    scenarios::RaplGaussOptions options;
    options.idle_lead = sim::Duration::from_seconds(
        config.get_double("rapl", "idle_lead_s", 8.0).value_or(8.0));
    options.workload = sim::Duration::from_seconds(
        config.get_double("rapl", "workload_s", 50.0).value_or(50.0));
    options.idle_tail = sim::Duration::from_seconds(
        config.get_double("rapl", "idle_tail_s", 10.0).value_or(10.0));
    options.sampling = sim::Duration::from_seconds(sampling_ms.value() / 1000.0);
    const auto result = scenarios::run_rapl_gauss(options);
    RunningStats stats;
    for (const auto& p : result.pkg_power) stats.add(p.value);
    std::printf("rapl: %zu samples, mean %.2f W, min %.2f, max %.2f, query cost %.3f ms\n",
                result.pkg_power.size(), stats.mean(), stats.min(), stats.max(),
                result.mean_query_cost_ms);
    for (std::size_t i = 0; i < result.pkg_power.size(); i += 10) {
      std::printf("csv:%.1f,%.2f\n", result.pkg_power[i].t.to_seconds(),
                  result.pkg_power[i].value);
    }
    return 0;
  }
  if (platform == "nvml_noop" || platform == "nvml_vecadd") {
    const auto result =
        platform == "nvml_noop"
            ? scenarios::run_nvml_noop(sim::Duration::from_seconds(
                  config.get_double("nvml", "total_s", 12.5).value_or(12.5)))
            : scenarios::run_nvml_vecadd(sim::Duration::from_seconds(
                  config.get_double("nvml", "compute_s", 88.0).value_or(88.0)));
    RunningStats stats;
    for (const auto& p : result.board_power) stats.add(p.value);
    std::printf("%s: %zu samples, mean %.2f W, max %.2f W, query cost %.3f ms\n",
                platform.c_str(), result.board_power.size(), stats.mean(), stats.max(),
                result.mean_query_cost_ms);
    return 0;
  }
  if (platform == "phi_api" || platform == "phi_daemon") {
    const auto collector = platform == "phi_api" ? scenarios::PhiCollector::kInbandApi
                                                 : scenarios::PhiCollector::kMicrasDaemon;
    const auto result = scenarios::run_phi_noop(
        collector,
        sim::Duration::from_seconds(config.get_double("phi", "total_s", 60.0).value_or(60.0)),
        sim::Duration::from_seconds(sampling_ms.value() / 1000.0));
    RunningStats stats;
    for (const double v : result.power_samples) stats.add(v);
    std::printf("%s: %zu samples, mean %.2f W, sd %.2f, query cost %.3f ms\n",
                platform.c_str(), stats.count(), stats.mean(), stats.stddev(),
                result.mean_query_cost_ms);
    return 0;
  }
  std::fprintf(stderr, "unknown platform '%s'\n", platform.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string text = kDefaultConfig;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  } else {
    std::printf("(no config given; using the built-in demo -- see source for format)\n");
  }
  const auto config = Config::parse(text);
  if (!config.is_ok()) {
    std::fprintf(stderr, "config parse error: %s\n", config.status().to_string().c_str());
    return 1;
  }
  return run(config.value());
}
