// Gaussian elimination under RAPL with MonEQ's tagging feature: each
// elimination block is wrapped in start/end tags ("if an application had
// three work loops and a user wanted separate profiles for each, all
// that is necessary is a total of 6 lines of code").

#include <cstdio>

#include "moneq/backend_rapl.hpp"
#include "moneq/profiler.hpp"
#include "rapl/reader.hpp"
#include "workloads/library.hpp"

int main() {
  using namespace envmon;

  sim::Engine engine;
  rapl::CpuPackage package(engine);
  rapl::MsrRaplReader reader(package, rapl::Credentials{true, 0});
  moneq::RaplBackend backend(reader);
  smpi::World world(1);
  smpi::FileSystemModel fs;
  moneq::MemoryOutput output;
  moneq::NodeProfiler profiler(engine, world, 0);
  if (!profiler.add_backend(backend).is_ok()) return 1;

  // Three GE "work loops" of 12 s each, separated by 3 s of setup.
  workloads::GaussianEliminationOptions ge;
  ge.total = sim::Duration::seconds(45);
  const auto workload = workloads::gaussian_elimination(ge);

  // 100 ms sampling, like Fig 3.
  if (!profiler.set_polling_interval(sim::Duration::millis(100)).is_ok()) return 1;
  if (!profiler.initialize().is_ok()) return 1;

  package.run_workload(&workload, engine.now());
  for (int loop = 1; loop <= 3; ++loop) {
    char tag[16];
    std::snprintf(tag, sizeof(tag), "work_loop_%d", loop);
    if (!profiler.start_tag(tag).is_ok()) return 1;
    engine.run_until(engine.now() + sim::Duration::seconds(12));
    if (!profiler.end_tag(tag).is_ok()) return 1;
    engine.run_until(engine.now() + sim::Duration::seconds(3));
  }

  if (!profiler.finalize(&fs, &output).is_ok()) return 1;

  // Post-process per tag, the way the paper's output files are consumed.
  const auto& samples = profiler.samples();
  const auto& tags = profiler.tags();
  std::printf("Gaussian elimination under RAPL, 100 ms sampling, %zu samples, %zu tag"
              " markers\n\n",
              samples.size(), tags.size());
  for (std::size_t i = 0; i + 1 < tags.size(); i += 2) {
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& s : samples) {
      if (s.domain == "PKG" && s.quantity == moneq::Quantity::kPowerWatts &&
          s.t >= tags[i].t && s.t <= tags[i + 1].t) {
        sum += s.value;
        ++n;
      }
    }
    std::printf("  %-12s [%5.1f s .. %5.1f s]: mean PKG power %.2f W over %zu samples\n",
                tags[i].name.c_str(), tags[i].t.to_seconds(), tags[i + 1].t.to_seconds(),
                n ? sum / static_cast<double>(n) : 0.0, n);
  }
  std::printf("\nper-query cost: %.3f ms (direct MSR reads)\n",
              reader.cost().mean_per_query().to_millis());
  std::printf("tagging cost: ~0 -- 'the injection happens after the program has"
              " completed'\n");
  return 0;
}
