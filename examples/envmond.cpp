// envmond: run the ingestion daemon against a database directory.
//
//   envmond <socket-path> [db-dir] [frame-log]
//
// Serves the envmon wire protocol (DESIGN.md §14) on a Unix-domain
// socket until SIGINT/SIGTERM, then drains in-flight batches, flushes
// the durable store (when a db-dir is given) and exits.  With a
// frame-log path every session is captured for deterministic replay.

#include <csignal>
#include <cstdio>
#include <string>

#include "daemon/server.hpp"
#include "tsdb/database.hpp"

namespace {
volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: envmond <socket-path> [db-dir] [frame-log]\n");
    return 2;
  }

  envmon::tsdb::EnvDatabase db;
  if (argc > 2) {
    if (auto s = db.open(argv[2]); !s.is_ok()) {
      std::fprintf(stderr, "envmond: open %s: %s\n", argv[2], s.message().c_str());
      return 1;
    }
  }

  envmon::daemon::ServerOptions options;
  options.socket_path = argv[1];
  if (argc > 3) options.frame_log_path = argv[3];

  envmon::daemon::Server server(db, options);
  if (auto s = server.start(); !s.is_ok()) {
    std::fprintf(stderr, "envmond: %s\n", s.message().c_str());
    return 1;
  }
  std::printf("envmond: serving on %s (db %s, capture %s)\n", argv[1],
              argc > 2 ? argv[2] : "in-memory",
              options.frame_log_path.empty() ? "off" : options.frame_log_path.c_str());

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  sigset_t mask;
  sigemptyset(&mask);
  while (g_stop == 0) sigsuspend(&mask);

  server.stop();
  const auto stats = server.stats();
  std::printf("envmond: %llu sessions, %llu batches, %llu rows accepted, %llu rejected\n",
              static_cast<unsigned long long>(stats.sessions_accepted),
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.rows_accepted),
              static_cast<unsigned long long>(stats.rows_rejected));
  return 0;
}
