// The Fig 5 story: a CUDA-style vector add on a K20 — host-side data
// generation, transfer over PCIe, long bandwidth-bound kernel — profiled
// through the NVML API with MonEQ, capturing power AND temperature.
// Also demonstrates the NVML error paths the paper implies: power
// queries on a pre-Kepler board are refused.

#include <cstdio>

#include "moneq/backend_nvml.hpp"
#include "moneq/profiler.hpp"
#include "nvml/api.hpp"
#include "workloads/library.hpp"

int main() {
  using namespace envmon;

  sim::Engine engine;
  nvml::NvmlLibrary library(engine);
  library.attach_device(std::make_shared<nvml::GpuDevice>(nvml::k20_spec()));
  library.attach_device(std::make_shared<nvml::GpuDevice>(nvml::m2090_spec()));
  if (library.init() != nvml::NvmlReturn::kSuccess) return 1;

  unsigned count = 0;
  (void)library.device_get_count(&count);
  std::printf("NVML sees %u devices:\n", count);
  for (unsigned i = 0; i < count; ++i) {
    nvml::NvmlDeviceHandle h;
    (void)library.device_get_handle_by_index(i, &h);
    std::string name;
    (void)library.device_get_name(h, &name);
    unsigned mw = 0;
    const auto r = library.device_get_power_usage(h, &mw);
    std::printf("  [%u] %-12s power query: %s\n", i, name.c_str(),
                r == nvml::NvmlReturn::kSuccess ? "supported (Kepler)"
                                                : nvml::nvml_error_string(r));
  }

  // Profile the K20 while the vector add runs.
  nvml::NvmlDeviceHandle k20;
  (void)library.device_get_handle_by_index(0, &k20);
  workloads::GpuVectorAddOptions opts;
  opts.compute = sim::Duration::seconds(60);
  const auto workload = workloads::gpu_vector_add(opts);
  nvml::GpuDevice* device = library.device_for_testing(0);
  device->run_workload(&workload, engine.now());

  moneq::NvmlBackend backend(library, k20);
  smpi::World world(1);
  moneq::NodeProfiler profiler(engine, world, 0);
  if (!profiler.add_backend(backend).is_ok()) return 1;
  if (!profiler.set_polling_interval(sim::Duration::millis(100)).is_ok()) return 1;
  if (!profiler.initialize().is_ok()) return 1;

  // Host generates the vectors (GPU idle); simulate the allocation the
  // transfer will fill.
  engine.run_until(engine.now() + opts.host_generation);
  device->set_memory_used(gibibytes(3.0));  // two inputs + one output
  engine.run_until(engine.now() + opts.transfer + opts.compute);
  device->set_memory_used(Bytes{0.0});      // cudaFree at the end
  if (!profiler.finalize().is_ok()) return 1;

  // Summarize the phases from the recorded samples.
  double gen_power = 0.0, compute_power = 0.0, temp_start = 0.0, temp_end = 0.0;
  std::size_t gen_n = 0, compute_n = 0;
  for (const auto& s : profiler.samples()) {
    const double t = s.t.to_seconds();
    if (s.domain == "board" && s.quantity == moneq::Quantity::kPowerWatts) {
      if (t < 9.5) {
        gen_power += s.value;
        ++gen_n;
      } else if (t > 20.0) {
        compute_power += s.value;
        ++compute_n;
      }
    }
    if (s.domain == "die_temp") {
      if (temp_start == 0.0) temp_start = s.value;
      temp_end = s.value;
    }
  }
  std::printf("\nVector add on the K20 (10 s datagen + 2 s transfer + 60 s compute):\n");
  std::printf("  datagen board power : %6.1f W (GPU idle, context held)\n",
              gen_n ? gen_power / static_cast<double>(gen_n) : 0.0);
  std::printf("  compute board power : %6.1f W ('increases dramatically')\n",
              compute_n ? compute_power / static_cast<double>(compute_n) : 0.0);
  std::printf("  die temperature     : %4.0f C -> %4.0f C (steady increase)\n", temp_start,
              temp_end);
  std::printf("  samples             : %zu; per-query cost %.2f ms across the PCI bus\n",
              profiler.samples().size(), library.cost().mean_per_query().to_millis());
  return 0;
}
