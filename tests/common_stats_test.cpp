#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace envmon {
namespace {

TEST(RunningStats, EmptyIsSafe) {
  const RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(3);
  RunningStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 1.5);
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Quantile, MedianOfOddSample) {
  const std::vector<double> v = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.0);
}

TEST(Quantile, InterpolatesBetweenOrderStats) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.75), 7.5);
}

TEST(Quantile, ExtremesAndClamping) {
  const std::vector<double> v = {1.0, 5.0, 9.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 9.0);
  EXPECT_DOUBLE_EQ(quantile(v, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.5), 9.0);
}

TEST(Quantile, EmptyThrows) {
  const std::vector<double> v;
  EXPECT_THROW((void)quantile(v, 0.5), std::invalid_argument);
}

TEST(Quantiles, UnsortedInputHandled) {
  const std::vector<double> v = {9.0, 1.0, 5.0};
  const std::vector<double> qs = {0.0, 0.5, 1.0};
  const auto result = quantiles(v, qs);
  ASSERT_EQ(result.size(), 3u);
  EXPECT_DOUBLE_EQ(result[0], 1.0);
  EXPECT_DOUBLE_EQ(result[1], 5.0);
  EXPECT_DOUBLE_EQ(result[2], 9.0);
}

TEST(Boxplot, NoOutliersWhiskersAreExtremes) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0};
  const auto b = boxplot_stats(v);
  EXPECT_DOUBLE_EQ(b.median, 3.0);
  EXPECT_DOUBLE_EQ(b.whisker_low, 1.0);
  EXPECT_DOUBLE_EQ(b.whisker_high, 5.0);
  EXPECT_TRUE(b.outliers.empty());
}

TEST(Boxplot, DetectsOutliers) {
  std::vector<double> v;
  for (int i = 0; i < 20; ++i) v.push_back(10.0 + 0.1 * i);
  v.push_back(100.0);  // far outlier
  const auto b = boxplot_stats(v);
  ASSERT_EQ(b.outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(b.outliers[0], 100.0);
  EXPECT_LT(b.whisker_high, 100.0);
  EXPECT_DOUBLE_EQ(b.max, 100.0);
}

TEST(Boxplot, EmptyThrows) {
  const std::vector<double> v;
  EXPECT_THROW((void)boxplot_stats(v), std::invalid_argument);
}

TEST(WelchTTest, IdenticalSamplesNotSignificant) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0, 5.0};
  const auto t = welch_t_test(a, a);
  EXPECT_NEAR(t.t, 0.0, 1e-12);
  EXPECT_GT(t.p_value, 0.99);
}

TEST(WelchTTest, SeparatedSamplesSignificant) {
  Rng rng(5);
  std::vector<double> a, b;
  for (int i = 0; i < 200; ++i) {
    a.push_back(rng.normal(113.5, 0.8));  // the Fig 7 daemon distribution
    b.push_back(rng.normal(116.5, 0.8));  // the Fig 7 API distribution
  }
  const auto t = welch_t_test(b, a);
  EXPECT_GT(t.t, 10.0);
  EXPECT_LT(t.p_value, 1e-6);
}

TEST(WelchTTest, TinySamplesReturnNeutral) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {2.0};
  const auto t = welch_t_test(a, b);
  EXPECT_EQ(t.p_value, 1.0);
}

}  // namespace
}  // namespace envmon
