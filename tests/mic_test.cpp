#include "mic/card.hpp"
#include "mic/micras.hpp"
#include "mic/scif.hpp"
#include "mic/smc.hpp"
#include "mic/sysmgmt.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "ipmi/bmc.hpp"
#include "workloads/library.hpp"

namespace envmon::mic {
namespace {

using sim::Duration;
using sim::SimTime;

TEST(PhiSpec, MatchesPaper) {
  const PhiSpec s;
  EXPECT_EQ(s.cores, 61);                    // "61 cores"
  EXPECT_EQ(s.total_threads(), 244);         // "a total of 244 threads"
  EXPECT_DOUBLE_EQ(s.peak_tflops_fp64, 1.2); // "1.2 teraFLOPS"
}

TEST(PhiCard, NoopBaselineInFig7Range) {
  sim::Engine engine;
  PhiCard card(engine);
  const auto w = workloads::noop_busyloop(Duration::seconds(100));
  card.run_workload(&w, SimTime::zero());
  const double p = card.true_power(SimTime::from_seconds(50)).value();
  EXPECT_GT(p, 110.0);
  EXPECT_LT(p, 118.0);
}

TEST(PhiCard, InbandQueryRaisesPowerTransiently) {
  sim::Engine engine;
  PhiCard card(engine);
  const auto before = card.true_power(SimTime::from_seconds(10)).value();
  card.register_inband_query(SimTime::from_seconds(10));
  const auto during = card.true_power(SimTime::from_seconds(10)).value();
  EXPECT_NEAR(during - before, 3.2, 1e-9);  // the query pulse
  // After the pulse width the draw returns to baseline.
  const auto after =
      card.true_power(SimTime::from_seconds(10) + Duration::millis(300)).value();
  EXPECT_NEAR(after, before, 1e-9);
}

TEST(PhiCard, OverlappingPulsesStack) {
  sim::Engine engine;
  PhiCard card(engine);
  card.register_inband_query(SimTime::from_seconds(5));
  card.register_inband_query(SimTime::from_seconds(5) + Duration::millis(100));
  const double p =
      card.true_power(SimTime::from_seconds(5) + Duration::millis(150)).value();
  const double base = card.true_power(SimTime::from_seconds(4)).value();
  EXPECT_NEAR(p - base, 6.4, 1e-9);
}

TEST(Scif, ConnectRequiresListener) {
  ScifNetwork net;
  const auto ep = ScifEndpoint::connect(net, 1, kSysMgmtPort);
  ASSERT_FALSE(ep.is_ok());
  EXPECT_EQ(ep.status().code(), StatusCode::kUnavailable);
}

TEST(Scif, DuplicateBindRejected) {
  ScifNetwork net;
  ASSERT_TRUE(net.listen(1, 200, [](const auto& m) { return m; }).is_ok());
  EXPECT_FALSE(net.listen(1, 200, [](const auto& m) { return m; }).is_ok());
  net.close(1, 200);
  EXPECT_TRUE(net.listen(1, 200, [](const auto& m) { return m; }).is_ok());
}

TEST(Scif, RoundTripCostIs14Point2Ms) {
  const ScifCosts costs;
  EXPECT_NEAR(costs.round_trip().to_millis(), 14.2, 1e-9);
}

TEST(Scif, CallEchoesThroughServiceAndCharges) {
  ScifNetwork net;
  ASSERT_TRUE(net.listen(1, 200, [](const std::vector<std::uint8_t>& m) {
                    auto copy = m;
                    copy.push_back(0xff);
                    return copy;
                  })
                  .is_ok());
  auto ep = ScifEndpoint::connect(net, 1, 200);
  ASSERT_TRUE(ep.is_ok());
  sim::CostMeter meter;
  const auto reply = ep.value().call({1, 2, 3}, &meter);
  ASSERT_TRUE(reply.is_ok());
  EXPECT_EQ(reply.value().size(), 4u);
  EXPECT_NEAR(meter.total().to_millis(), 14.2, 1e-9);
}

TEST(Scif, PeerCloseDetected) {
  ScifNetwork net;
  ASSERT_TRUE(net.listen(1, 200, [](const auto& m) { return m; }).is_ok());
  auto ep = ScifEndpoint::connect(net, 1, 200);
  ASSERT_TRUE(ep.is_ok());
  net.close(1, 200);
  EXPECT_FALSE(ep.value().call({1}).is_ok());
}

TEST(SysMgmt, PowerQueryEndToEnd) {
  sim::Engine engine;
  PhiCard card(engine);
  ScifNetwork net;
  SysMgmtService service(card, net, 1);
  auto client = SysMgmtClient::connect(net, 1);
  ASSERT_TRUE(client.is_ok());
  engine.run_until(SimTime::from_seconds(1));
  const auto p = client.value().power(engine.now());
  ASSERT_TRUE(p.is_ok());
  EXPECT_GT(p.value().value(), 90.0);   // idle card floor
  EXPECT_LT(p.value().value(), 130.0);
  EXPECT_EQ(card.inband_queries_served(), 1u);
  EXPECT_NEAR(client.value().cost().mean_per_query().to_millis(), 14.2, 1e-9);
}

TEST(SysMgmt, OtherQueries) {
  sim::Engine engine;
  PhiCard card(engine);
  card.set_memory_used(gibibytes(2.0));
  ScifNetwork net;
  SysMgmtService service(card, net, 1);
  auto client = SysMgmtClient::connect(net, 1);
  ASSERT_TRUE(client.is_ok());
  engine.run_until(SimTime::from_seconds(1));
  EXPECT_GT(client.value().die_temperature(engine.now()).value().value(), 30.0);
  EXPECT_DOUBLE_EQ(client.value().memory_used(engine.now()).value().value(),
                   gibibytes(2.0).value());
  EXPECT_GT(client.value().fan_speed(engine.now()).value().value(), 1000.0);
}

TEST(SysMgmt, MalformedRequestYieldsErrorStatus) {
  sim::Engine engine;
  PhiCard card(engine);
  ScifNetwork net;
  SysMgmtService service(card, net, 1);
  auto ep = ScifEndpoint::connect(net, 1, kSysMgmtPort);
  ASSERT_TRUE(ep.is_ok());
  const auto reply = ep.value().call({9, 9, 9});  // wrong length
  ASSERT_TRUE(reply.is_ok());
  EXPECT_FALSE(decode_response(reply.value()).is_ok());
}

TEST(Micras, RequiresRunningDaemon) {
  sim::Engine engine;
  PhiCard card(engine);
  MicrasDaemon daemon(card);
  const auto r = daemon.read_file(kPowerFile, SimTime::zero());
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

TEST(Micras, PowerFileParses) {
  sim::Engine engine;
  PhiCard card(engine);
  MicrasDaemon daemon(card);
  daemon.start();
  const auto text = daemon.read_file(kPowerFile, SimTime::from_seconds(1));
  ASSERT_TRUE(text.is_ok());
  const auto reading = parse_power_file(text.value());
  ASSERT_TRUE(reading.is_ok());
  EXPECT_GT(reading.value().total.value(), 90.0);
  // Connector split sums back to the total.
  const double sum = reading.value().pcie.value() + reading.value().c2x3.value() +
                     reading.value().c2x4.value();
  EXPECT_NEAR(sum, reading.value().total.value(), 0.01);
  EXPECT_LE(reading.value().pcie.value(), 75.0);  // PCIe slot budget
}

TEST(Micras, ThermalFileParses) {
  sim::Engine engine;
  PhiCard card(engine);
  MicrasDaemon daemon(card);
  daemon.start();
  const auto text = daemon.read_file(kThermalFile, SimTime::from_seconds(1));
  ASSERT_TRUE(text.is_ok());
  const auto t = parse_thermal_file(text.value());
  ASSERT_TRUE(t.is_ok());
  EXPECT_GT(t.value().die.value(), t.value().gddr.value());
  EXPECT_GT(t.value().exhaust.value(), t.value().intake.value());
}

TEST(Micras, UnknownPathNotFound) {
  sim::Engine engine;
  PhiCard card(engine);
  MicrasDaemon daemon(card);
  daemon.start();
  EXPECT_EQ(daemon.read_file("/sys/class/micras/nope", SimTime::zero()).status().code(),
            StatusCode::kNotFound);
}

TEST(Micras, ReadCostIs40Microseconds) {
  sim::Engine engine;
  PhiCard card(engine);
  MicrasDaemon daemon(card);
  daemon.start();
  sim::CostMeter meter;
  (void)daemon.read_file(kPowerFile, SimTime::from_seconds(1), &meter);
  EXPECT_DOUBLE_EQ(meter.total().to_millis(), 0.04);  // "about 0.04 ms per query"
}

TEST(Micras, ReadDoesNotPerturbPower) {
  sim::Engine engine;
  PhiCard card(engine);
  MicrasDaemon daemon(card);
  daemon.start();
  const double before = card.true_power(SimTime::from_seconds(1)).value();
  (void)daemon.read_file(kPowerFile, SimTime::from_seconds(1));
  const double after = card.true_power(SimTime::from_seconds(1)).value();
  EXPECT_DOUBLE_EQ(before, after);
  EXPECT_EQ(card.inband_queries_served(), 0u);
}

TEST(Micras, ParserRejectsGarbage) {
  EXPECT_FALSE(parse_power_file("not numbers\n").is_ok());
  EXPECT_FALSE(parse_power_file("1\n2\n").is_ok());  // too few fields
  EXPECT_FALSE(parse_thermal_file("55\n").is_ok());
}

TEST(Smc, OutOfBandReadThroughBmc) {
  sim::Engine engine;
  PhiCard card(engine);
  ipmi::Bmc bmc;
  Smc smc(card);
  smc.attach_to_bmc(bmc);
  ipmi::IpmbClient client(bmc, 0x81);
  engine.run_until(SimTime::from_seconds(1));
  const auto p = client.read_sensor(smc, kSmcSensorPower);
  ASSERT_TRUE(p.is_ok()) << p.status();
  // 8-bit IPMI resolution: within one 2 W count of the card sensor.
  EXPECT_NEAR(p.value(), card.true_power(engine.now()).value(), 3.0);
}

TEST(Smc, OutOfBandDoesNotWakeCores) {
  sim::Engine engine;
  PhiCard card(engine);
  ipmi::Bmc bmc;
  Smc smc(card);
  smc.attach_to_bmc(bmc);
  ipmi::IpmbClient client(bmc, 0x81);
  (void)client.read_sensor(smc, kSmcSensorPower);
  (void)client.read_sensor(smc, kSmcSensorDieTemp);
  EXPECT_EQ(card.inband_queries_served(), 0u);
}

TEST(Smc, AllSensorsRespond) {
  sim::Engine engine;
  PhiCard card(engine);
  card.set_memory_used(mebibytes(640.0));
  ipmi::Bmc bmc;
  Smc smc(card);
  smc.attach_to_bmc(bmc);
  ipmi::IpmbClient client(bmc, 0x81);
  engine.run_until(SimTime::from_seconds(1));
  EXPECT_TRUE(client.read_sensor(smc, kSmcSensorPower).is_ok());
  EXPECT_TRUE(client.read_sensor(smc, kSmcSensorDieTemp).is_ok());
  EXPECT_TRUE(client.read_sensor(smc, kSmcSensorFan).is_ok());
  const auto mem = client.read_sensor(smc, kSmcSensorMemUsed);
  ASSERT_TRUE(mem.is_ok());
  EXPECT_NEAR(mem.value(), 640.0, 32.0);  // 64 MiB resolution
}

// The Fig 7 mechanism at unit scale: sustained API polling shifts the
// measured distribution upward relative to daemon polling.
TEST(Fig7Mechanism, ApiPollingRaisesMeasuredPower) {
  sim::Engine engine;
  PhiCard card(engine);
  const auto w = workloads::noop_busyloop(Duration::seconds(60));
  card.run_workload(&w, SimTime::zero());
  ScifNetwork net;
  SysMgmtService service(card, net, 1);
  MicrasDaemon daemon(card);
  daemon.start();
  auto client = SysMgmtClient::connect(net, 1);
  ASSERT_TRUE(client.is_ok());

  RunningStats api_stats, daemon_stats;
  // Phase 1: poll via the API every 500 ms.
  sim::TimerHandle t1 = engine.schedule_periodic(Duration::millis(500), [&] {
    if (engine.now().to_seconds() > 25.0) return;
    if (auto p = client.value().power(engine.now()); p) api_stats.add(p.value().value());
  });
  engine.run_until(SimTime::from_seconds(25));
  t1.cancel();
  // Phase 2: poll via the daemon.
  sim::TimerHandle t2 = engine.schedule_periodic(Duration::millis(500), [&] {
    if (auto text = daemon.read_file(kPowerFile, engine.now()); text) {
      if (auto p = parse_power_file(text.value()); p) {
        daemon_stats.add(p.value().total.value());
      }
    }
  });
  engine.run_until(SimTime::from_seconds(50));
  t2.cancel();

  EXPECT_GT(api_stats.mean(), daemon_stats.mean() + 1.0);
}

}  // namespace
}  // namespace envmon::mic
