// End-to-end tests for envmond: server/client over Unix-domain sockets,
// byte-identity against the in-process insert path, frame-log replay,
// crash-mid-stream recovery, tenant limits, and protocol hostility at
// the transport layer.  `ctest -L daemon` runs these.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "daemon/client.hpp"
#include "daemon/digest.hpp"
#include "daemon/framelog.hpp"
#include "daemon/server.hpp"
#include "sim/time.hpp"
#include "tsdb/database.hpp"

namespace envmon::daemon {
namespace {

std::string unique_path(const std::string& leaf) {
  static std::atomic<int> counter{0};
  return testing::TempDir() + "envmond-" + std::to_string(::getpid()) + "-" +
         std::to_string(counter.fetch_add(1)) + "-" + leaf;
}

std::vector<tsdb::Record> make_rows(int client, std::int64_t base_ns, int n) {
  std::vector<tsdb::Record> rows;
  rows.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    tsdb::Record rec;
    rec.timestamp = sim::SimTime::from_ns(base_ns + i);
    rec.location = {client, 0, i % 16, i % 32};
    rec.metric = i % 2 == 0 ? "input_power_watts_c" + std::to_string(client)
                            : "coolant_flow_lpm_c" + std::to_string(client);
    rec.value = client * 1000.0 + i * 0.25;
    rows.push_back(std::move(rec));
  }
  return rows;
}

int raw_connect(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool raw_send(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

// Reads one frame; nullopt on EOF or corruption.
std::optional<std::vector<std::uint8_t>> raw_read_frame(int fd) {
  std::vector<std::uint8_t> header(kFrameHeaderBytes);
  std::size_t off = 0;
  while (off < header.size()) {
    const ssize_t n = ::read(fd, header.data() + off, header.size() - off);
    if (n <= 0) return std::nullopt;
    off += static_cast<std::size_t>(n);
  }
  const FrameHeader h = decode_frame_header(header);
  if (h.payload_len > (64u << 20)) return std::nullopt;
  std::vector<std::uint8_t> payload(h.payload_len);
  off = 0;
  while (off < payload.size()) {
    const ssize_t n = ::read(fd, payload.data() + off, payload.size() - off);
    if (n <= 0) return std::nullopt;
    off += static_cast<std::size_t>(n);
  }
  if (!frame_payload_ok(h, payload)) return std::nullopt;
  return payload;
}

TEST(DaemonEndToEnd, SingleClientMatchesInProcessInsertPath) {
  // Reference: the same chunks through insert_batch directly.
  tsdb::EnvDatabase reference;
  const auto rows = make_rows(0, 1'000'000, 500);
  for (std::size_t off = 0; off < rows.size(); off += 100) {
    (void)reference.insert_batch(
        std::span(rows).subspan(off, std::min<std::size_t>(100, rows.size() - off)));
  }

  tsdb::EnvDatabase db;
  ServerOptions options;
  options.socket_path = unique_path("single.sock");
  Server server(db, options);
  ASSERT_TRUE(server.start().is_ok());

  Client client(Client::Options{options.socket_path, "t0"});
  ASSERT_TRUE(client.connect().is_ok());
  EXPECT_EQ(client.version(), kProtocolVersionMax);
  for (std::size_t off = 0; off < rows.size(); off += 100) {
    ASSERT_TRUE(client
                    .send_batch(std::span(rows).subspan(
                        off, std::min<std::size_t>(100, rows.size() - off)))
                    .is_ok());
  }
  ASSERT_TRUE(client.drain().is_ok());
  EXPECT_EQ(client.totals().rows_accepted, rows.size());
  EXPECT_EQ(client.totals().rows_rejected, 0u);
  ASSERT_TRUE(client.close().is_ok());
  server.stop();

  EXPECT_EQ(database_digest(db), database_digest(reference));
  EXPECT_EQ(server.stats().rows_accepted, rows.size());
}

TEST(DaemonEndToEnd, ConcurrentClientsReplayByteIdentical) {
  tsdb::EnvDatabase db;
  ServerOptions options;
  options.socket_path = unique_path("multi.sock");
  options.frame_log_path = unique_path("multi.framelog");
  Server server(db, options);
  ASSERT_TRUE(server.start().is_ok());

  constexpr int kClients = 4;
  constexpr int kBatches = 16;
  constexpr int kRowsPerBatch = 64;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client(Client::Options{options.socket_path, "tenant" + std::to_string(c)});
      if (!client.connect().is_ok()) {
        ++failures;
        return;
      }
      for (int b = 0; b < kBatches; ++b) {
        const auto rows = make_rows(c, 1'000'000 + b * 1000, kRowsPerBatch);
        if (!client.send_batch(rows).is_ok()) {
          ++failures;
          return;
        }
      }
      if (!client.drain().is_ok() || !client.close().is_ok()) ++failures;
    });
  }
  for (auto& t : threads) t.join();
  server.stop();
  ASSERT_EQ(failures.load(), 0);

  const auto stats = server.stats();
  EXPECT_EQ(stats.rows_accepted + stats.rows_rejected,
            static_cast<std::uint64_t>(kClients) * kBatches * kRowsPerBatch);

  // The captured session log replays into a byte-identical store.
  tsdb::EnvDatabase replayed;
  ReplayStats rstats;
  ASSERT_TRUE(replay_frame_log(options.frame_log_path, replayed, &rstats).is_ok());
  EXPECT_EQ(rstats.sessions, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(rstats.batches, stats.batches);
  EXPECT_EQ(rstats.rows_accepted, stats.rows_accepted);
  EXPECT_EQ(database_digest(replayed), database_digest(db));

  // Replay is deterministic: a second pass produces the same store.
  tsdb::EnvDatabase again;
  ASSERT_TRUE(replay_frame_log(options.frame_log_path, again, nullptr).is_ok());
  EXPECT_EQ(database_digest(again), database_digest(replayed));
}

TEST(DaemonEndToEnd, DictionarySyncDeliversCorrectMetricNames) {
  tsdb::EnvDatabase db;
  ServerOptions options;
  options.socket_path = unique_path("dict.sock");
  Server server(db, options);
  ASSERT_TRUE(server.start().is_ok());

  Client client(Client::Options{options.socket_path, "t"});
  ASSERT_TRUE(client.connect().is_ok());
  ASSERT_EQ(client.caps() & kCapDictSync, kCapDictSync);
  const auto rows = make_rows(3, 5'000'000, 64);
  ASSERT_TRUE(client.send_batch(rows).is_ok());
  ASSERT_TRUE(client.drain().is_ok());
  (void)client.close();
  server.stop();

  tsdb::QueryFilter filter;
  filter.metric = "input_power_watts_c3";
  EXPECT_EQ(db.query(filter).size(), 32u);
  filter.metric = "coolant_flow_lpm_c3";
  EXPECT_EQ(db.query(filter).size(), 32u);
}

TEST(DaemonEndToEnd, VersionDowngradeStillIngests) {
  tsdb::EnvDatabase db;
  ServerOptions options;
  options.socket_path = unique_path("v1.sock");
  Server server(db, options);
  ASSERT_TRUE(server.start().is_ok());

  Client::Options copt{options.socket_path, "t"};
  copt.ver_max = 1;
  Client client(copt);
  ASSERT_TRUE(client.connect().is_ok());
  EXPECT_EQ(client.version(), 1u);
  EXPECT_EQ(client.caps(), 0u);  // no dict sync on v1: inline names
  const auto rows = make_rows(1, 1000, 50);
  ASSERT_TRUE(client.send_batch(rows).is_ok());
  ASSERT_TRUE(client.drain().is_ok());
  EXPECT_EQ(client.totals().rows_accepted, 50u);
  (void)client.close();
  server.stop();
  EXPECT_EQ(db.query({}).size(), 50u);
}

TEST(DaemonEndToEnd, FutureOnlyClientIsRefused) {
  tsdb::EnvDatabase db;
  ServerOptions options;
  options.socket_path = unique_path("vfuture.sock");
  Server server(db, options);
  ASSERT_TRUE(server.start().is_ok());

  Client::Options copt{options.socket_path, "t"};
  copt.ver_min = 57;
  copt.ver_max = 58;
  Client client(copt);
  const Status s = client.connect();
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kUnsupported);
  server.stop();
}

TEST(DaemonEndToEnd, UnknownTenantIsRefusedWhenRequired) {
  tsdb::EnvDatabase db;
  ServerOptions options;
  options.socket_path = unique_path("tenant.sock");
  options.require_known_tenant = true;
  options.tenant_policies["paid"] = TenantPolicy{};
  Server server(db, options);
  ASSERT_TRUE(server.start().is_ok());

  Client freeloader(Client::Options{options.socket_path, "freeloader"});
  // The refusal may land during the handshake read or on first use.
  Status s = freeloader.connect();
  if (s.is_ok()) s = freeloader.ping();
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kUnauthenticated);

  Client paid(Client::Options{options.socket_path, "paid"});
  ASSERT_TRUE(paid.connect().is_ok());
  EXPECT_TRUE(paid.ping().is_ok());
  (void)paid.close();
  server.stop();
}

TEST(DaemonEndToEnd, TenantRateLimitDelaysButNeverRejects) {
  tsdb::EnvDatabase db;
  ServerOptions options;
  options.socket_path = unique_path("throttle.sock");
  options.tenant_policies["slow"] = TenantPolicy{200'000.0, 1'000.0};
  Server server(db, options);
  ASSERT_TRUE(server.start().is_ok());

  Client client(Client::Options{options.socket_path, "slow"});
  ASSERT_TRUE(client.connect().is_ok());
  for (int b = 0; b < 8; ++b) {
    ASSERT_TRUE(client.send_batch(make_rows(0, 1'000'000 + b * 10'000, 1000)).is_ok());
  }
  ASSERT_TRUE(client.drain().is_ok());
  EXPECT_EQ(client.totals().rows_accepted, 8000u);
  EXPECT_EQ(client.totals().rows_rejected, 0u);  // throttled, not dropped
  (void)client.close();
  server.stop();
  EXPECT_GE(server.stats().throttle_waits, 1u);
  EXPECT_GT(server.stats().throttle_seconds, 0.0);
}

TEST(DaemonEndToEnd, RejectedRowsCarryTypedCodes) {
  tsdb::EnvDatabase db;
  ServerOptions options;
  options.socket_path = unique_path("reject.sock");
  Server server(db, options);
  ASSERT_TRUE(server.start().is_ok());

  Client client(Client::Options{options.socket_path, "t"});
  ASSERT_TRUE(client.connect().is_ok());
  std::vector<tsdb::Record> rows;
  tsdb::Record a;
  a.timestamp = sim::SimTime::from_ns(2'000'000);
  a.location = {0, 0, 0, 0};
  a.metric = "watts";
  a.value = 1.0;
  tsdb::Record b = a;
  b.timestamp = sim::SimTime::from_ns(1'000'000);  // behind its series head
  rows.push_back(a);
  rows.push_back(b);
  ASSERT_TRUE(client.send_batch(rows).is_ok());
  ASSERT_TRUE(client.drain().is_ok());
  EXPECT_EQ(client.totals().rows_accepted, 1u);
  EXPECT_EQ(client.totals().rows_rejected, 1u);
  EXPECT_EQ(client.totals()
                .rejected_by_code[status_code_to_wire(StatusCode::kInvalidArgument)],
            1u);
  (void)client.close();
  server.stop();
}

TEST(DaemonEndToEnd, OversizedFrameGetsTypedErrorAndClose) {
  tsdb::EnvDatabase db;
  ServerOptions options;
  options.socket_path = unique_path("oversize.sock");
  options.max_frame_bytes = 1 << 16;
  Server server(db, options);
  ASSERT_TRUE(server.start().is_ok());

  const int fd = raw_connect(options.socket_path);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(raw_send(fd, frame(encode_hello(Hello{1, 2, 0, "t"}))));
  ASSERT_TRUE(raw_read_frame(fd).has_value());  // HelloReply

  // A header promising 1 GiB: refused before any allocation.
  tsdb::wire::Writer w;
  w.u32(1u << 30);
  w.u32(0);
  ASSERT_TRUE(raw_send(fd, w.take()));
  const auto reply = raw_read_frame(fd);
  ASSERT_TRUE(reply.has_value());
  const auto err = decode_error(*reply);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, StatusCode::kOutOfRange);
  EXPECT_FALSE(raw_read_frame(fd).has_value());  // session torn down
  ::close(fd);
  server.stop();
  EXPECT_GE(server.stats().protocol_errors, 1u);
}

TEST(DaemonEndToEnd, GarbageStreamDoesNotWedgeTheServer) {
  tsdb::EnvDatabase db;
  ServerOptions options;
  options.socket_path = unique_path("garbage.sock");
  Server server(db, options);
  ASSERT_TRUE(server.start().is_ok());

  std::mt19937 rng(0xFEED);
  for (int round = 0; round < 8; ++round) {
    const int fd = raw_connect(options.socket_path);
    ASSERT_GE(fd, 0);
    std::vector<std::uint8_t> junk(64);
    for (auto& byte : junk) byte = static_cast<std::uint8_t>(rng() & 0xFF);
    (void)raw_send(fd, junk);
    // Server answers with a typed error or just drops us; either way
    // the stream must end rather than hang.
    while (raw_read_frame(fd).has_value()) {
    }
    ::close(fd);
  }

  // The daemon is still healthy for a well-behaved client.
  Client client(Client::Options{options.socket_path, "t"});
  ASSERT_TRUE(client.connect().is_ok());
  EXPECT_TRUE(client.ping().is_ok());
  (void)client.close();
  server.stop();
}

TEST(DaemonEndToEnd, ClientKillMidBatchLeavesDurableStoreConsistent) {
  const std::string dir = unique_path("crashdb");
  std::filesystem::create_directories(dir);
  const std::string framelog = unique_path("crash.framelog");
  std::uint64_t live_digest = 0;
  std::uint64_t expected_rows = 0;

  {
    tsdb::EnvDatabase db;
    ASSERT_TRUE(db.open(dir).is_ok());
    ServerOptions options;
    options.socket_path = unique_path("crash.sock");
    options.frame_log_path = framelog;
    Server server(db, options);
    ASSERT_TRUE(server.start().is_ok());

    // A well-behaved producer whose rows must survive.
    Client good(Client::Options{options.socket_path, "good"});
    ASSERT_TRUE(good.connect().is_ok());
    ASSERT_TRUE(good.send_batch(make_rows(1, 1'000'000, 200)).is_ok());
    const auto flush = good.flush();
    ASSERT_TRUE(flush.is_ok());
    EXPECT_TRUE(flush.value().durable);
    expected_rows += 200;

    // A producer that dies mid-frame: handshake, one complete batch,
    // then half an InsertBatch and an abrupt close.
    const int fd = raw_connect(options.socket_path);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(raw_send(fd, frame(encode_hello(Hello{1, 2, 0, "doomed"}))));
    ASSERT_TRUE(raw_read_frame(fd).has_value());
    // The store orders on a global timestamp watermark, so the second
    // producer continues the timeline rather than overlapping it.
    const auto complete = make_rows(2, 2'000'000, 100);
    ASSERT_TRUE(raw_send(fd, frame(encode_insert_batch(1, complete, false, {}))));
    const auto ack = raw_read_frame(fd);
    ASSERT_TRUE(ack.has_value());
    const auto batch_ack = decode_batch_reply(*ack);
    ASSERT_TRUE(batch_ack.has_value()) << "got frame type " << int((*ack)[0]);
    ASSERT_EQ(batch_ack->accepted, 100u);  // it landed before the crash
    expected_rows += 100;
    const auto doomed = frame(encode_insert_batch(2, make_rows(2, 3'000'000, 100), false, {}));
    ASSERT_TRUE(raw_send(fd, std::span(doomed).first(doomed.size() / 2)));
    ::close(fd);  // crash: the torn frame must be discarded

    (void)good.close();
    server.stop();  // drains and flushes
    live_digest = database_digest(db);
    ASSERT_TRUE(db.close().is_ok());
  }

  // Recovery: reopen the durable store — complete batches survived,
  // the torn frame left no trace.
  tsdb::EnvDatabase reopened;
  ASSERT_TRUE(reopened.open(dir).is_ok());
  EXPECT_EQ(reopened.query({}).size(), expected_rows);
  EXPECT_EQ(database_digest(reopened), live_digest);

  // And the capture replays to the same bytes (in-memory this time).
  tsdb::EnvDatabase replayed;
  bool truncated = false;
  const auto log = read_frame_log(framelog, &truncated);
  ASSERT_TRUE(log.is_ok());
  EXPECT_FALSE(truncated);
  ASSERT_TRUE(replay_frame_log(framelog, replayed, nullptr).is_ok());
  EXPECT_EQ(database_digest(replayed), live_digest);
}

TEST(DaemonEndToEnd, FlushReportsDurabilityHonestly) {
  tsdb::EnvDatabase db;  // in-memory: flush must say so
  ServerOptions options;
  options.socket_path = unique_path("volatile.sock");
  Server server(db, options);
  ASSERT_TRUE(server.start().is_ok());

  Client client(Client::Options{options.socket_path, "t"});
  ASSERT_TRUE(client.connect().is_ok());
  ASSERT_TRUE(client.send_batch(make_rows(0, 1000, 10)).is_ok());
  const auto flush = client.flush();
  ASSERT_TRUE(flush.is_ok());
  EXPECT_FALSE(flush.value().durable);
  EXPECT_EQ(flush.value().rows_total, 10u);
  (void)client.close();
  server.stop();
}

TEST(DaemonFrameLog, TornCaptureReplaysCleanPrefix) {
  tsdb::EnvDatabase db;
  ServerOptions options;
  options.socket_path = unique_path("torn.sock");
  options.frame_log_path = unique_path("torn.framelog");
  Server server(db, options);
  ASSERT_TRUE(server.start().is_ok());
  Client client(Client::Options{options.socket_path, "t"});
  ASSERT_TRUE(client.connect().is_ok());
  ASSERT_TRUE(client.send_batch(make_rows(0, 1000, 100)).is_ok());
  ASSERT_TRUE(client.drain().is_ok());
  (void)client.close();
  server.stop();

  // Chop the capture mid-entry: the reader keeps the clean prefix.
  const auto size = std::filesystem::file_size(options.frame_log_path);
  std::filesystem::resize_file(options.frame_log_path, size - 5);
  bool truncated = false;
  const auto log = read_frame_log(options.frame_log_path, &truncated);
  ASSERT_TRUE(log.is_ok());
  EXPECT_TRUE(truncated);
  tsdb::EnvDatabase replayed;
  EXPECT_TRUE(replay_frame_log(options.frame_log_path, replayed, nullptr).is_ok());
}

}  // namespace
}  // namespace envmon::daemon
