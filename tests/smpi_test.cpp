#include "smpi/smpi.hpp"

#include <gtest/gtest.h>

namespace envmon::smpi {
namespace {

using sim::Duration;

TEST(World, SizeValidation) {
  EXPECT_THROW(World{0}, std::invalid_argument);
  EXPECT_THROW(World{-4}, std::invalid_argument);
  EXPECT_EQ(World{32}.size(), 32);
}

TEST(World, BarrierCostGrowsLogarithmically) {
  const World w32(32), w1024(1024);
  EXPECT_GT(w1024.barrier_cost(), w32.barrier_cost());
  // log2(1024)/log2(32) = 10/5 = exactly 2x for power-of-two sizes.
  EXPECT_EQ(w1024.barrier_cost().ns(), 2 * w32.barrier_cost().ns());
}

TEST(World, SingleRankBarrierIsFree) {
  EXPECT_EQ(World{1}.barrier_cost().ns(), 0);
}

TEST(World, GatherScalesWithPayloadAndSize) {
  const World w(512);
  const auto small = w.gather_cost(Bytes{1024.0});
  const auto large = w.gather_cost(Bytes{1024.0 * 1024.0});
  EXPECT_GT(large, small);
  const World w2(1024);
  EXPECT_GT(w2.gather_cost(Bytes{1024.0}), w.gather_cost(Bytes{1024.0}));
}

TEST(World, ReduceCostPositive) {
  const World w(64);
  EXPECT_GT(w.reduce_cost(Bytes{8.0}).ns(), 0);
}

TEST(World, ForEachRankVisitsAll) {
  const World w(7);
  int sum = 0;
  w.for_each_rank([&](int r) { sum += r; });
  EXPECT_EQ(sum, 21);
}

TEST(FileSystem, ValidatesOptions) {
  FileSystemOptions o;
  o.concurrent_capacity = 0;
  EXPECT_THROW(FileSystemModel{o}, std::invalid_argument);
}

TEST(FileSystem, ZeroFilesFree) {
  const FileSystemModel fs;
  EXPECT_EQ(fs.time_to_write(0, Bytes{1000.0}).ns(), 0);
}

TEST(FileSystem, FlatBelowCapacityThenJump) {
  const FileSystemModel fs;  // capacity 512
  const double t32 = fs.time_to_write(32, Bytes{100'000.0}).to_seconds();
  const double t512 = fs.time_to_write(512, Bytes{100'000.0}).to_seconds();
  const double t1024 = fs.time_to_write(1024, Bytes{100'000.0}).to_seconds();
  // Table III's shape: 32 -> 512 nearly flat; 512 -> 1024 roughly doubles.
  EXPECT_NEAR(t512 / t32, 1.0, 0.1);
  EXPECT_GT(t1024 / t512, 1.9);
  EXPECT_LT(t1024 / t512, 2.6);
}

TEST(FileSystem, TableThreeMagnitudes) {
  const FileSystemModel fs;
  // Paper: finalize 0.151 / 0.155 / 0.335 s at 32 / 512 / 1024 nodes.
  EXPECT_NEAR(fs.time_to_write(32, Bytes{100'000.0}).to_seconds(), 0.151, 0.02);
  EXPECT_NEAR(fs.time_to_write(512, Bytes{100'000.0}).to_seconds(), 0.155, 0.02);
  EXPECT_NEAR(fs.time_to_write(1024, Bytes{100'000.0}).to_seconds(), 0.335, 0.05);
}

TEST(FileSystem, StreamTermScalesWithBytes) {
  const FileSystemModel fs;
  EXPECT_GT(fs.time_to_write(8, Bytes{1e9}), fs.time_to_write(8, Bytes{1e3}));
}

}  // namespace
}  // namespace envmon::smpi
