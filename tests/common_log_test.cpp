// The leveled logger's new extension points: a pluggable sink so output
// can be captured and asserted on, and a virtual-time source so lines
// carry simulation timestamps.

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/log.hpp"
#include "sim/engine.hpp"

namespace envmon {
namespace {

// Captures log lines for the duration of a test and restores the
// defaults (stderr sink, kWarn, no time source) afterwards.
class LogCapture {
 public:
  LogCapture(LogLevel level = LogLevel::kDebug) {
    set_log_level(level);
    set_log_sink([this](LogLevel lvl, std::string_view line) {
      lines_.emplace_back(lvl, std::string(line));
    });
  }
  ~LogCapture() {
    set_log_sink(nullptr);
    set_log_time_source(nullptr);
    set_log_level(LogLevel::kWarn);
  }

  [[nodiscard]] const std::vector<std::pair<LogLevel, std::string>>& lines() const {
    return lines_;
  }

 private:
  std::vector<std::pair<LogLevel, std::string>> lines_;
};

TEST(Log, SinkCapturesFormattedLines) {
  LogCapture capture;
  ENVMON_LOG(kInfo) << "rack " << 3 << " powered on";
  ASSERT_EQ(capture.lines().size(), 1u);
  EXPECT_EQ(capture.lines()[0].first, LogLevel::kInfo);
  EXPECT_EQ(capture.lines()[0].second, "[INFO ] rack 3 powered on");
}

TEST(Log, LevelFilteringStillAppliesWithASink) {
  LogCapture capture(LogLevel::kWarn);
  ENVMON_LOG(kDebug) << "invisible";
  ENVMON_LOG(kError) << "visible";
  ASSERT_EQ(capture.lines().size(), 1u);
  EXPECT_EQ(capture.lines()[0].second, "[ERROR] visible");
}

TEST(Log, TimeSourceStampsVirtualSeconds) {
  LogCapture capture;
  set_log_time_source([] { return 3.5; });
  ENVMON_LOG(kInfo) << "sampling";
  ASSERT_EQ(capture.lines().size(), 1u);
  EXPECT_EQ(capture.lines()[0].second, "[INFO ] [t=3.500s] sampling");
}

TEST(Log, ScopedLogClockFollowsTheEngine) {
  LogCapture capture;
  sim::Engine engine;
  {
    sim::ScopedLogClock clock(engine);
    engine.advance(sim::Duration::millis(2500));
    ENVMON_LOG(kInfo) << "mid-run";
  }
  ENVMON_LOG(kInfo) << "after";
  ASSERT_EQ(capture.lines().size(), 2u);
  EXPECT_EQ(capture.lines()[0].second, "[INFO ] [t=2.500s] mid-run");
  EXPECT_EQ(capture.lines()[1].second, "[INFO ] after");  // stamp gone with the scope
}

TEST(Log, NullSinkRestoresStderrWithoutCrashing) {
  {
    LogCapture capture;
    ENVMON_LOG(kInfo) << "captured";
  }
  // Back on the stderr default at kWarn: a filtered line must be a no-op.
  ENVMON_LOG(kDebug) << "dropped quietly";
}

}  // namespace
}  // namespace envmon
