// Spans and events on the virtual clock: parent/child nesting, ordering
// under the discrete-event engine, the event ring buffer, and capacity
// behaviour.

#include <gtest/gtest.h>

#include "obs/span.hpp"
#include "sim/engine.hpp"

namespace envmon::obs {
namespace {

using sim::Duration;
using sim::SimTime;

Tracer engine_tracer(sim::Engine& engine, std::size_t event_capacity = 1024,
                     std::size_t max_spans = 8192) {
  return Tracer([&engine] { return engine.now(); }, event_capacity, max_spans);
}

TEST(ObsSpan, NestingRecordsParentChildAndDepth) {
  sim::Engine engine;
  Tracer tracer = engine_tracer(engine);
  {
    auto outer = tracer.span("outer");
    engine.advance(Duration::seconds(1));
    {
      auto inner = tracer.span("inner", "detail");
      engine.advance(Duration::seconds(2));
    }
    engine.advance(Duration::seconds(1));
  }
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  const SpanRecord& outer = spans[0];
  const SpanRecord& inner = spans[1];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.parent, 0u);
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(outer.start, SimTime::zero());
  EXPECT_EQ(outer.end, SimTime::from_seconds(4.0));
  EXPECT_FALSE(outer.open);
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(inner.detail, "detail");
  EXPECT_EQ(inner.parent, outer.id);
  EXPECT_EQ(inner.depth, 1);
  EXPECT_EQ(inner.start, SimTime::from_seconds(1.0));
  EXPECT_EQ(inner.end, SimTime::from_seconds(3.0));
  EXPECT_EQ(inner.duration(), Duration::seconds(2));
}

TEST(ObsSpan, OrderingFollowsTheVirtualClock) {
  sim::Engine engine;
  Tracer tracer = engine_tracer(engine);
  // Spans opened inside scheduled events start at those events' times,
  // in dispatch order, regardless of scheduling order.
  engine.schedule_at(SimTime::from_seconds(5.0), [&] {
    auto s = tracer.span("late");
  });
  engine.schedule_at(SimTime::from_seconds(2.0), [&] {
    auto s = tracer.span("early");
  });
  engine.run();
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "early");
  EXPECT_EQ(spans[0].start, SimTime::from_seconds(2.0));
  EXPECT_EQ(spans[1].name, "late");
  EXPECT_EQ(spans[1].start, SimTime::from_seconds(5.0));
  EXPECT_LT(spans[0].start, spans[1].start);
}

TEST(ObsSpan, OpenSpansReportProgressSoFar) {
  sim::Engine engine;
  Tracer tracer = engine_tracer(engine);
  auto s = tracer.span("still_running");
  engine.advance(Duration::seconds(3));
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_TRUE(spans[0].open);
  EXPECT_EQ(spans[0].end, SimTime::from_seconds(3.0));
}

TEST(ObsSpan, MovedHandleEndsExactlyOnce) {
  sim::Engine engine;
  Tracer tracer = engine_tracer(engine);
  {
    auto a = tracer.span("moved");
    Tracer::Span b = std::move(a);
    engine.advance(Duration::seconds(1));
    // both handles die here; the span must end once, at t=1
  }
  engine.advance(Duration::seconds(1));
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_FALSE(spans[0].open);
  EXPECT_EQ(spans[0].end, SimTime::from_seconds(1.0));
}

TEST(ObsSpan, SpanCapacityDropsExcessSpans) {
  sim::Engine engine;
  Tracer tracer = engine_tracer(engine, 16, 2);
  auto a = tracer.span("a");
  auto b = tracer.span("b");
  auto c = tracer.span("c");  // beyond capacity: inert
  EXPECT_EQ(c.id(), 0u);
  c.end();  // must be harmless
  EXPECT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.dropped_spans(), 1u);
}

TEST(ObsEvents, RingBufferKeepsNewestAndCountsDropped) {
  sim::Engine engine;
  Tracer tracer = engine_tracer(engine, 3);
  for (int i = 0; i < 5; ++i) {
    engine.advance(Duration::seconds(1));
    std::string name = "e";
    name += std::to_string(i);
    tracer.event(name);
  }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "e2");
  EXPECT_EQ(events[1].name, "e3");
  EXPECT_EQ(events[2].name, "e4");
  EXPECT_LT(events[0].t, events[2].t);  // oldest-first
  EXPECT_EQ(tracer.dropped_events(), 2u);
}

TEST(ObsEvents, EventAtUsesCallerTimestamp) {
  sim::Engine engine;
  Tracer tracer = engine_tracer(engine);
  tracer.event_at(SimTime::from_seconds(42.0), "backfilled", "detail");
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].t, SimTime::from_seconds(42.0));
  EXPECT_EQ(events[0].detail, "detail");
}

TEST(ObsTimeline, FormatInterleavesSpansAndEventsChronologically) {
  sim::Engine engine;
  Tracer tracer = engine_tracer(engine);
  {
    auto outer = tracer.span("outer");
    engine.advance(Duration::seconds(1));
    tracer.event("tick");
    {
      auto inner = tracer.span("inner", "rapl");
      engine.advance(Duration::seconds(1));
    }
  }
  const std::string timeline = tracer.format_timeline();
  const auto outer_pos = timeline.find("outer");
  const auto tick_pos = timeline.find("! tick");
  const auto inner_pos = timeline.find("inner (rapl)");
  ASSERT_NE(outer_pos, std::string::npos);
  ASSERT_NE(tick_pos, std::string::npos);
  ASSERT_NE(inner_pos, std::string::npos);
  EXPECT_LT(outer_pos, inner_pos);
  EXPECT_LT(inner_pos, tick_pos);  // t=1 ties list spans before events
}

TEST(ObsTracer, RequiresAClock) {
  EXPECT_THROW(Tracer(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace envmon::obs
