// Unit tests for the fault injector: schedules fire on the virtual
// clock, flapping is deterministic per seed, sites draw independent RNG
// streams, and rules compose the documented way (delays sum, the first
// matching failure wins, corruption only touches successful operations).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "fault/injector.hpp"
#include "sim/engine.hpp"

namespace envmon::fault {
namespace {

using sim::Duration;
using sim::SimTime;

TEST(FaultInjector, CleanByDefault) {
  sim::Engine engine;
  Injector injector(engine);
  const Outcome fo = injector.intercept("never_scheduled");
  EXPECT_TRUE(fo.ok());
  EXPECT_EQ(fo.extra_latency.ns(), 0);
  EXPECT_FALSE(fo.corrupted);
  EXPECT_DOUBLE_EQ(fo.corrupt_value(42.0), 42.0);
  EXPECT_EQ(injector.intercepts("never_scheduled"), 1u);
  EXPECT_EQ(injector.injected("never_scheduled"), 0u);
  EXPECT_EQ(injector.injected_total(), 0u);
}

TEST(FaultInjector, FailNextCountsDown) {
  sim::Engine engine;
  Injector injector(engine);
  injector.fail_next(sites::kRaplMsr, StatusCode::kPermissionDenied, "msr gone", 2);
  EXPECT_EQ(injector.intercept(sites::kRaplMsr).status.code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(injector.intercept(sites::kRaplMsr).status.code(),
            StatusCode::kPermissionDenied);
  EXPECT_TRUE(injector.intercept(sites::kRaplMsr).ok());
  EXPECT_EQ(injector.intercepts(sites::kRaplMsr), 3u);
  EXPECT_EQ(injector.injected(sites::kRaplMsr), 2u);
}

TEST(FaultInjector, FailWindowIsHalfOpen) {
  sim::Engine engine;
  Injector injector(engine);
  injector.fail_between(sites::kMicras, SimTime::from_seconds(1), SimTime::from_seconds(2),
                        StatusCode::kUnavailable, "daemon restarting");
  EXPECT_TRUE(injector.intercept(sites::kMicras).ok());  // t = 0: before
  engine.run_until(SimTime::from_seconds(1));
  EXPECT_EQ(injector.intercept(sites::kMicras).status.code(),
            StatusCode::kUnavailable);  // t = from: inside
  engine.run_until(SimTime::from_seconds(1.999));
  EXPECT_FALSE(injector.intercept(sites::kMicras).ok());
  engine.run_until(SimTime::from_seconds(2));
  EXPECT_TRUE(injector.intercept(sites::kMicras).ok());  // t = to: outside
}

TEST(FaultInjector, KillAndRevive) {
  sim::Engine engine;
  Injector injector(engine);
  injector.kill_at(sites::kNvml, SimTime::from_seconds(2));
  injector.revive_at(sites::kNvml, SimTime::from_seconds(5));
  EXPECT_TRUE(injector.intercept(sites::kNvml).ok());
  engine.run_until(SimTime::from_seconds(2));
  const Outcome dead = injector.intercept(sites::kNvml);
  EXPECT_EQ(dead.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(dead.status.message(), "device lost");
  engine.run_until(SimTime::from_seconds(4));
  EXPECT_FALSE(injector.intercept(sites::kNvml).ok());  // still dead
  engine.run_until(SimTime::from_seconds(5));
  EXPECT_TRUE(injector.intercept(sites::kNvml).ok());  // re-seated
}

TEST(FaultInjector, FlapIsDeterministicForSameSeed) {
  // Same seed, same schedule, same intercept sequence: bit-identical
  // outcomes — the property the resilience bench gates on.
  const auto run = [](std::uint64_t seed) {
    sim::Engine engine;
    Injector injector(engine, seed);
    injector.flap_between(sites::kNvml, SimTime{}, SimTime::from_seconds(100), 0.4,
                          StatusCode::kUnavailable, "flap");
    std::vector<bool> failed;
    for (int i = 0; i < 64; ++i) {
      engine.advance(Duration::millis(100));
      failed.push_back(!injector.intercept(sites::kNvml).ok());
    }
    return failed;
  };
  const auto a = run(7);
  EXPECT_EQ(a, run(7));
  EXPECT_NE(a, run(8));  // and the seed actually matters
  // A 0.4 flap over 64 draws lands strictly between never and always.
  const auto fails = static_cast<std::size_t>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fails, 0u);
  EXPECT_LT(fails, 64u);
}

TEST(FaultInjector, SiteRngStreamsAreIndependent) {
  // Interleaving draws at another site must not perturb a site's own
  // sequence: each site forks its RNG from seed ^ hash(site name).
  const auto run = [](bool interleave) {
    sim::Engine engine;
    Injector injector(engine, 99);
    injector.flap_between(sites::kNvml, SimTime{}, SimTime::from_seconds(100), 0.5,
                          StatusCode::kUnavailable, "flap");
    injector.flap_between(sites::kIpmb, SimTime{}, SimTime::from_seconds(100), 0.5,
                          StatusCode::kUnavailable, "flap");
    std::vector<bool> failed;
    for (int i = 0; i < 32; ++i) {
      engine.advance(Duration::millis(100));
      if (interleave) (void)injector.intercept(sites::kIpmb);
      failed.push_back(!injector.intercept(sites::kNvml).ok());
    }
    return failed;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(FaultInjector, DelaysSumAcrossOverlappingWindows) {
  sim::Engine engine;
  Injector injector(engine);
  injector.delay_between(sites::kMicScif, SimTime{}, SimTime::from_seconds(10),
                         Duration::millis(20));
  injector.delay_between(sites::kMicScif, SimTime::from_seconds(5),
                         SimTime::from_seconds(10), Duration::millis(15));
  engine.run_until(SimTime::from_seconds(1));
  EXPECT_EQ(injector.intercept(sites::kMicScif).extra_latency, Duration::millis(20));
  engine.run_until(SimTime::from_seconds(6));
  const Outcome fo = injector.intercept(sites::kMicScif);
  EXPECT_TRUE(fo.ok());  // a stall is not a failure
  EXPECT_EQ(fo.extra_latency, Duration::millis(35));
}

TEST(FaultInjector, CorruptionComposesAndOnlyHitsSuccesses) {
  sim::Engine engine;
  Injector injector(engine);
  injector.corrupt_between(sites::kEmon, SimTime{}, SimTime::from_seconds(10), 2.0, 1.0);
  const Outcome fo = injector.intercept(sites::kEmon);
  EXPECT_TRUE(fo.ok());
  EXPECT_TRUE(fo.corrupted);
  EXPECT_DOUBLE_EQ(fo.corrupt_value(10.0), 21.0);  // 10 * 2 + 1

  // Stack a second window: (v * 2 + 1) * 3 + 5 = 6v + 8.
  injector.corrupt_between(sites::kEmon, SimTime{}, SimTime::from_seconds(10), 3.0, 5.0);
  EXPECT_DOUBLE_EQ(injector.intercept(sites::kEmon).corrupt_value(10.0), 68.0);

  // A failing operation returns no reading, so corruption is moot.
  injector.fail_next(sites::kEmon, StatusCode::kInternal, "bad generation");
  const Outcome failed = injector.intercept(sites::kEmon);
  EXPECT_FALSE(failed.ok());
  EXPECT_FALSE(failed.corrupted);
}

TEST(FaultInjector, KillOutranksTransientAndWindows) {
  sim::Engine engine;
  Injector injector(engine);
  injector.kill_at(sites::kTsdb, SimTime{}, "disk gone");
  injector.fail_next(sites::kTsdb, StatusCode::kInternal, "transient");
  const Outcome fo = injector.intercept(sites::kTsdb);
  EXPECT_EQ(fo.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(fo.status.message(), "disk gone");
}

TEST(FaultInjector, DetachedHookIsFreeAndClean) {
  Hook hook;
  EXPECT_FALSE(hook.attached());
  const Outcome fo = hook.intercept();
  EXPECT_TRUE(fo.ok());
  EXPECT_FALSE(fo.corrupted);

  sim::Engine engine;
  Injector injector(engine);
  injector.fail_next("hooked", StatusCode::kUnavailable, "down");
  hook.attach(injector, "hooked");
  EXPECT_TRUE(hook.attached());
  EXPECT_FALSE(hook.intercept().ok());
  hook.detach();
  EXPECT_TRUE(hook.intercept().ok());
  EXPECT_EQ(injector.intercepts("hooked"), 1u);  // detached calls never reach it
}

TEST(FaultInjector, InjectedCountersAggregateAcrossSites) {
  sim::Engine engine;
  Injector injector(engine);
  injector.fail_next(sites::kRaplMsr, StatusCode::kUnavailable, "x", 2);
  injector.delay_between(sites::kIpmb, SimTime{}, SimTime::from_seconds(1),
                         Duration::millis(5));
  (void)injector.intercept(sites::kRaplMsr);
  (void)injector.intercept(sites::kRaplMsr);
  (void)injector.intercept(sites::kRaplMsr);  // clean
  (void)injector.intercept(sites::kIpmb);     // stalled
  EXPECT_EQ(injector.injected(sites::kRaplMsr), 2u);
  EXPECT_EQ(injector.injected(sites::kIpmb), 1u);
  EXPECT_EQ(injector.injected_total(), 3u);
}

}  // namespace
}  // namespace envmon::fault
