#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace envmon {
namespace {

TEST(Split, BasicFields) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, EmptyFieldsPreserved) {
  const auto parts = split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, NoDelimiter) {
  const auto parts = split("single", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "single");
}

TEST(Trim, RemovesBothEnds) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(ToLower, MixedCase) { EXPECT_EQ(to_lower("Blue Gene/Q"), "blue gene/q"); }

TEST(StartsWith, Cases) {
  EXPECT_TRUE(starts_with("/sys/class/micras/power", "/sys/"));
  EXPECT_FALSE(starts_with("abc", "abcd"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(Join, Basic) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 4), "1.0000");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(ParseDouble, ValidInputs) {
  double v = 0.0;
  EXPECT_TRUE(parse_double("42.5", v));
  EXPECT_DOUBLE_EQ(v, 42.5);
  EXPECT_TRUE(parse_double("  -1e3 ", v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
}

TEST(ParseDouble, RejectsGarbage) {
  double v = 0.0;
  EXPECT_FALSE(parse_double("", v));
  EXPECT_FALSE(parse_double("12x", v));
  EXPECT_FALSE(parse_double("watts", v));
}

TEST(ParseU64, ValidAndInvalid) {
  unsigned long long v = 0;
  EXPECT_TRUE(parse_u64("123456789", v));
  EXPECT_EQ(v, 123456789ull);
  EXPECT_FALSE(parse_u64("-3", v));
  EXPECT_FALSE(parse_u64("1.5", v));
  EXPECT_FALSE(parse_u64("", v));
}

}  // namespace
}  // namespace envmon
