#include "tsdb/database.hpp"

#include <gtest/gtest.h>

#include "tsdb/location.hpp"

namespace envmon::tsdb {
namespace {

using sim::Duration;
using sim::SimTime;

TEST(Location, FormatFullHierarchy) {
  EXPECT_EQ(card_location(0, 1, 4, 17).to_string(), "R00-M1-N04-J17");
  EXPECT_EQ(rack_location(7).to_string(), "R07");
  EXPECT_EQ(board_location(12, 0, 3).to_string(), "R12-M0-N03");
}

TEST(Location, ParseRoundTrip) {
  for (const char* s : {"R00", "R48-M1", "R00-M0-N15", "R01-M1-N04-J31"}) {
    const auto loc = parse_location(s);
    ASSERT_TRUE(loc.has_value()) << s;
    EXPECT_EQ(loc->to_string(), s);
  }
}

TEST(Location, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_location("").has_value());
  EXPECT_FALSE(parse_location("X00").has_value());
  EXPECT_FALSE(parse_location("R00-N04").has_value());   // wrong order
  EXPECT_FALSE(parse_location("R00-M1-N04-J17-Z9").has_value());
  EXPECT_FALSE(parse_location("R-1").has_value());
  EXPECT_FALSE(parse_location("Rxx").has_value());
}

TEST(Location, ContainmentHierarchy) {
  const auto rack = rack_location(0);
  const auto board = board_location(0, 1, 4);
  const auto card = card_location(0, 1, 4, 17);
  EXPECT_TRUE(rack.contains(board));
  EXPECT_TRUE(rack.contains(card));
  EXPECT_TRUE(board.contains(card));
  EXPECT_FALSE(board.contains(rack_location(0)));
  EXPECT_FALSE(rack.contains(card_location(1, 0, 0, 0)));
  EXPECT_TRUE(card.contains(card));
}

Record make_record(double t_seconds, Location loc, std::string metric, double value) {
  return Record{SimTime::from_seconds(t_seconds), loc, std::move(metric), value};
}

TEST(EnvDatabase, InsertAndQueryAll) {
  EnvDatabase db;
  ASSERT_TRUE(db.insert(make_record(1.0, rack_location(0), "power", 800.0)).is_ok());
  ASSERT_TRUE(db.insert(make_record(2.0, rack_location(0), "power", 900.0)).is_ok());
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(db.query({}).size(), 2u);
}

TEST(EnvDatabase, RejectsOutOfOrderInsert) {
  EnvDatabase db;
  ASSERT_TRUE(db.insert(make_record(5.0, rack_location(0), "power", 1.0)).is_ok());
  const Status s = db.insert(make_record(4.0, rack_location(0), "power", 1.0));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(EnvDatabase, FiltersByMetricLocationAndTime) {
  EnvDatabase db;
  (void)db.insert(make_record(1.0, rack_location(0), "power", 10.0));
  (void)db.insert(make_record(2.0, rack_location(1), "power", 20.0));
  (void)db.insert(make_record(3.0, rack_location(0), "temp", 30.0));
  (void)db.insert(make_record(4.0, rack_location(0), "power", 40.0));

  QueryFilter f;
  f.metric = "power";
  f.location_prefix = rack_location(0);
  auto rows = db.query(f);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[1].value, 40.0);

  f.from = SimTime::from_seconds(2.0);
  f.to = SimTime::from_seconds(4.0);
  rows = db.query(f);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].value, 40.0);
}

TEST(EnvDatabase, LocationPrefixMatchesDescendants) {
  EnvDatabase db;
  (void)db.insert(make_record(1.0, board_location(0, 0, 3), "v", 1.0));
  (void)db.insert(make_record(2.0, board_location(0, 1, 3), "v", 2.0));
  QueryFilter f;
  f.location_prefix = midplane_location(0, 1);
  const auto rows = db.query(f);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].value, 2.0);
}

TEST(EnvDatabase, IngestRateCeilingRejects) {
  DatabaseOptions options;
  options.max_insert_rate_per_second = 1.0;
  options.rate_window = Duration::seconds(10);  // ceiling: 10 records/window
  EnvDatabase db(options);
  int accepted = 0, rejected = 0;
  for (int i = 0; i < 40; ++i) {
    const Status s = db.insert(make_record(0.1 * i, rack_location(0), "power", 1.0));
    s.is_ok() ? ++accepted : ++rejected;
  }
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(db.rejected_inserts(), static_cast<std::size_t>(rejected));
  // "the resulting volume of data alone would exceed the server's
  // processing capacity" — the ceiling must actually bind.
  EXPECT_LE(accepted, 12);
}

TEST(EnvDatabase, RetentionDropsOldRecords) {
  DatabaseOptions options;
  options.retention = Duration::seconds(10);
  EnvDatabase db(options);
  (void)db.insert(make_record(0.0, rack_location(0), "power", 1.0));
  (void)db.insert(make_record(5.0, rack_location(0), "power", 2.0));
  (void)db.insert(make_record(12.0, rack_location(0), "power", 3.0));
  (void)db.insert(make_record(20.0, rack_location(0), "power", 4.0));
  const auto rows = db.query({});
  // Newest is t=20, retention 10 s: cutoff 10, so t=0 and t=5 drop.
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].value, 3.0);
}

TEST(EnvDatabase, DownsampleAverages) {
  EnvDatabase db;
  for (int i = 0; i < 10; ++i) {
    (void)db.insert(make_record(i, rack_location(0), "power", i < 5 ? 100.0 : 200.0));
  }
  const auto buckets = db.downsample({}, Duration::seconds(5));
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets[0].mean, 100.0);
  EXPECT_DOUBLE_EQ(buckets[1].mean, 200.0);
  EXPECT_EQ(buckets[0].count, 5u);
}

TEST(EnvDatabase, DownsampleZeroWidthIsEmpty) {
  EnvDatabase db;
  (void)db.insert(make_record(1.0, rack_location(0), "power", 1.0));
  EXPECT_TRUE(db.downsample({}, Duration::nanos(0)).empty());
}

}  // namespace
}  // namespace envmon::tsdb
