// FailureDetector state-machine tests: Unknown -> Alive on the first
// heartbeat, Suspect/Dead after k-neighbor-confirmed misses, revival on
// a returning heartbeat, and the slower rack-escalation path when a
// node's whole board has gone dark.  Everything is a pure function of
// the heartbeat sequence, so expectations here are exact.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/failure_detector.hpp"
#include "obs/recorder.hpp"

namespace envmon {
namespace {

using fleet::DetectorPolicy;
using fleet::FailureDetector;
using moneq::NodeLiveness;
using sim::SimTime;

std::vector<std::uint8_t> beats(int nodes, std::vector<int> silent = {}) {
  std::vector<std::uint8_t> out(static_cast<std::size_t>(nodes), 1);
  for (const int node : silent) out[static_cast<std::size_t>(node)] = 0;
  return out;
}

SimTime at(int epoch) { return SimTime::from_seconds(epoch); }

TEST(FailureDetector, FirstHeartbeatMovesUnknownToAlive) {
  FailureDetector detector(8);
  EXPECT_EQ(detector.counts().unknown, 8);
  detector.observe_epoch(at(1), beats(8));
  EXPECT_EQ(detector.counts().unknown, 0);
  EXPECT_EQ(detector.counts().alive, 8);
  EXPECT_EQ(detector.transitions(), 8u);
  for (int node = 0; node < 8; ++node) EXPECT_EQ(detector.state(node), NodeLiveness::kAlive);
}

TEST(FailureDetector, ConfirmedMissesDriveSuspectThenDead) {
  // Defaults: suspect after 2 confirmed misses, dead after 4.  Node 3's
  // board neighbors all heartbeat, so every miss is quorum-confirmed.
  FailureDetector detector(8);
  detector.observe_epoch(at(1), beats(8));
  for (int epoch = 2; epoch <= 2 + 1; ++epoch) {
    detector.observe_epoch(at(epoch), beats(8, {3}));
  }
  EXPECT_EQ(detector.state(3), NodeLiveness::kSuspect);
  EXPECT_EQ(detector.counts().suspect, 1);
  EXPECT_EQ(detector.counts().alive, 7);
  for (int epoch = 4; epoch <= 5; ++epoch) {
    detector.observe_epoch(at(epoch), beats(8, {3}));
  }
  EXPECT_EQ(detector.state(3), NodeLiveness::kDead);
  EXPECT_EQ(detector.counts().dead, 1);
  // Unknown->Alive for all 8, then Alive->Suspect->Dead for node 3.
  EXPECT_EQ(detector.transitions(), 10u);
  EXPECT_EQ(detector.epochs_observed(), 5u);
}

TEST(FailureDetector, ReturningHeartbeatRevivesASuspect) {
  FailureDetector detector(8);
  detector.observe_epoch(at(1), beats(8));
  detector.observe_epoch(at(2), beats(8, {5}));
  detector.observe_epoch(at(3), beats(8, {5}));
  ASSERT_EQ(detector.state(5), NodeLiveness::kSuspect);
  detector.observe_epoch(at(4), beats(8));
  EXPECT_EQ(detector.state(5), NodeLiveness::kAlive);
  EXPECT_EQ(detector.counts().suspect, 0);
  // The miss counter reset: going silent again restarts from zero.
  detector.observe_epoch(at(5), beats(8, {5}));
  EXPECT_EQ(detector.state(5), NodeLiveness::kAlive);
  detector.observe_epoch(at(6), beats(8, {5}));
  EXPECT_EQ(detector.state(5), NodeLiveness::kSuspect);
}

TEST(FailureDetector, BoardlessNodeEscalatesAtRackPace) {
  // nodes_per_board = 1 leaves no board neighbors to corroborate, so
  // every detection goes through rack escalation: one confirmed miss per
  // escalation_factor missed epochs — exactly 2x slower here.
  DetectorPolicy policy;
  policy.nodes_per_board = 1;
  policy.escalation_factor = 2;
  FailureDetector detector(4, policy);
  detector.observe_epoch(at(1), beats(4));
  // suspect_after = 2 confirmed misses now needs 4 missed epochs.
  detector.observe_epoch(at(2), beats(4, {0}));
  detector.observe_epoch(at(3), beats(4, {0}));
  EXPECT_EQ(detector.state(0), NodeLiveness::kAlive);  // 1 confirmed miss
  detector.observe_epoch(at(4), beats(4, {0}));
  detector.observe_epoch(at(5), beats(4, {0}));
  EXPECT_EQ(detector.state(0), NodeLiveness::kSuspect);  // 2 confirmed misses
  for (int epoch = 6; epoch <= 9; ++epoch) detector.observe_epoch(at(epoch), beats(4, {0}));
  EXPECT_EQ(detector.state(0), NodeLiveness::kDead);  // 4 confirmed misses
}

TEST(FailureDetector, DeadNeighborsStopCorroboratingABoard) {
  // Two-node boards with k clamped to 1: once node 1 (node 0's only
  // board neighbor) is Dead, node 0's misses lose their quorum and must
  // take the slower escalation path.
  DetectorPolicy policy;
  policy.nodes_per_board = 2;
  policy.k_neighbors = 4;  // clamps to board_size - 1 == 1, quorum 1
  policy.escalation_factor = 3;
  FailureDetector detector(4, policy);
  detector.observe_epoch(at(1), beats(4));
  // Node 1 dies first, confirmed by node 0 (alive throughout).
  int epoch = 2;
  for (; epoch <= 5; ++epoch) detector.observe_epoch(at(epoch), beats(4, {1}));
  ASSERT_EQ(detector.state(1), NodeLiveness::kDead);
  ASSERT_EQ(detector.state(0), NodeLiveness::kAlive);
  // Now node 0 goes silent too; its only neighbor is Dead, so each
  // confirmed miss needs escalation_factor epochs: suspect after 2*3.
  for (int i = 0; i < 5; ++i, ++epoch) detector.observe_epoch(at(epoch), beats(4, {0, 1}));
  EXPECT_EQ(detector.state(0), NodeLiveness::kAlive);
  detector.observe_epoch(at(epoch), beats(4, {0, 1}));
  EXPECT_EQ(detector.state(0), NodeLiveness::kSuspect);
}

TEST(FailureDetector, TransitionsLandInTheFlightRecorder) {
  obs::FlightRecorder recorder(64);
  FailureDetector detector(2, {}, &recorder);
  detector.observe_epoch(at(1), beats(2));
  for (int epoch = 2; epoch <= 5; ++epoch) detector.observe_epoch(at(epoch), beats(2, {1}));
  ASSERT_EQ(detector.state(1), NodeLiveness::kDead);

  int alive = 0;
  int suspect = 0;
  int dead = 0;
  for (const obs::RecorderEvent& event : recorder.events()) {
    ASSERT_EQ(event.category, "liveness");
    ASSERT_EQ(event.name, "liveness.transition");
    if (event.detail.find("-> alive") != std::string::npos) ++alive;
    if (event.detail.find("-> suspect") != std::string::npos) {
      ++suspect;
      EXPECT_NE(event.detail.find("confirmed by"), std::string::npos);
      EXPECT_EQ(event.node, 1);
    }
    if (event.detail.find("-> dead") != std::string::npos) {
      ++dead;
      EXPECT_EQ(event.node, 1);
    }
  }
  EXPECT_EQ(alive, 2);
  EXPECT_EQ(suspect, 1);
  EXPECT_EQ(dead, 1);
}

TEST(FailureDetector, PolicyClampsKeepTheMachineSane) {
  DetectorPolicy policy;
  policy.k_neighbors = 0;
  policy.suspect_after = 0;
  policy.dead_after = 0;
  policy.escalation_factor = 0;
  policy.nodes_per_board = 0;
  FailureDetector detector(2, policy);
  // Clamped to suspect_after >= 1, dead_after >= suspect_after + 1: a
  // single confirmed miss suspects, a second kills.
  detector.observe_epoch(at(1), beats(2));
  detector.observe_epoch(at(2), beats(2, {0}));
  EXPECT_EQ(detector.state(0), NodeLiveness::kSuspect);
  detector.observe_epoch(at(3), beats(2, {0}));
  EXPECT_EQ(detector.state(0), NodeLiveness::kDead);
}

}  // namespace
}  // namespace envmon
