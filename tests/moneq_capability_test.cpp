#include "moneq/capability.hpp"

#include <gtest/gtest.h>

namespace envmon::moneq {
namespace {

using A = Availability;
using P = PlatformId;
using R = SensorRow;

constexpr std::array<P, 4> kPlatforms = {P::kXeonPhi, P::kNvml, P::kBgq, P::kRapl};

TEST(TableOne, TotalPowerUniversal) {
  // "Just about the only data point which is collectible on all of these
  // platforms is total power consumption" (§IV).
  for (const P p : kPlatforms) {
    EXPECT_EQ(availability(p, R::kTotalPower), A::kYes) << to_string(p);
  }
}

TEST(TableOne, OnlyTotalPowerIsUniversal) {
  for (const R row : all_sensor_rows()) {
    if (row == R::kTotalPower) continue;
    int yes = 0;
    for (const P p : kPlatforms) {
      if (availability(p, row) == A::kYes) ++yes;
    }
    EXPECT_LT(yes, 4) << row_label(row);
  }
}

TEST(TableOne, MemoryPowerOnlyBgqAndRapl) {
  // §IV: for NVIDIA "one must settle for total power consumption of the
  // whole card when clearly the power consumption of both the GPU and
  // memory would be more beneficial".
  EXPECT_EQ(availability(P::kNvml, R::kMainMemoryPower), A::kNo);
  EXPECT_EQ(availability(P::kXeonPhi, R::kMainMemoryPower), A::kNo);
  EXPECT_EQ(availability(P::kBgq, R::kMainMemoryPower), A::kYes);
  EXPECT_EQ(availability(P::kRapl, R::kMainMemoryPower), A::kYes);
}

TEST(TableOne, TemperatureStory) {
  // §IV: "NVIDIA GPUs support temperature data whereas this data is only
  // accessible in the environmental data for a Blue Gene/Q and only at
  // the rack level."
  EXPECT_EQ(availability(P::kNvml, R::kTempDie), A::kYes);
  EXPECT_EQ(availability(P::kXeonPhi, R::kTempDie), A::kYes);
  EXPECT_EQ(availability(P::kBgq, R::kTempDie), A::kNo);
  EXPECT_EQ(availability(P::kRapl, R::kTempDie), A::kNo);
}

TEST(TableOne, FansNotApplicableOnBgqAndRapl) {
  EXPECT_EQ(availability(P::kBgq, R::kFanSpeed), A::kNotApplicable);
  EXPECT_EQ(availability(P::kRapl, R::kFanSpeed), A::kNotApplicable);
  EXPECT_EQ(availability(P::kXeonPhi, R::kFanSpeed), A::kYes);
}

TEST(TableOne, PciExpressNotApplicableForRapl) {
  // Table I marks the RAPL PCI Express cell N/A: the mechanism's scope
  // ends at the socket.
  EXPECT_EQ(availability(P::kRapl, R::kPciExpressPower), A::kNotApplicable);
}

TEST(TableOne, PowerLimitsEverywhereButBgq) {
  EXPECT_EQ(availability(P::kBgq, R::kPowerLimit), A::kNo);
  EXPECT_EQ(availability(P::kXeonPhi, R::kPowerLimit), A::kYes);
  EXPECT_EQ(availability(P::kNvml, R::kPowerLimit), A::kYes);
  EXPECT_EQ(availability(P::kRapl, R::kPowerLimit), A::kYes);
}

TEST(TableOne, VoltageCurrentOnlyWhereRailsAreExposed) {
  EXPECT_EQ(availability(P::kBgq, R::kTotalVoltage), A::kYes);
  EXPECT_EQ(availability(P::kBgq, R::kTotalCurrent), A::kYes);
  EXPECT_EQ(availability(P::kNvml, R::kTotalVoltage), A::kNo);
  EXPECT_EQ(availability(P::kRapl, R::kTotalCurrent), A::kNo);
}

TEST(TableOne, RowMetadataComplete) {
  const auto rows = all_sensor_rows();
  EXPECT_EQ(rows.size(), kSensorRowCount);
  for (const R row : rows) {
    EXPECT_NE(row_label(row), "?");
    EXPECT_NE(row_group(row), "?");
  }
}

TEST(TableOne, GroupsMatchPaperSections) {
  EXPECT_EQ(row_group(R::kTotalPower), "Total Power Consumption (Watts)");
  EXPECT_EQ(row_group(R::kTempDie), "Temperature");
  EXPECT_EQ(row_group(R::kMemUsed), "Main Memory");
  EXPECT_EQ(row_group(R::kProcVoltage), "Processor");
  EXPECT_EQ(row_group(R::kFanSpeed), "Fans");
  EXPECT_EQ(row_group(R::kPowerLimit), "Limits");
}

TEST(TableOne, PlatformNames) {
  EXPECT_EQ(to_string(P::kXeonPhi), "Xeon Phi");
  EXPECT_EQ(to_string(P::kNvml), "NVML");
  EXPECT_EQ(to_string(P::kBgq), "Blue Gene/Q");
  EXPECT_EQ(to_string(P::kRapl), "RAPL");
  EXPECT_EQ(to_string(A::kNotApplicable), "N/A");
}

}  // namespace
}  // namespace envmon::moneq
