#include "tools/papi.hpp"

#include <gtest/gtest.h>

#include "workloads/library.hpp"

namespace envmon::tools {
namespace {

using sim::Duration;
using sim::SimTime;

struct Fixture {
  sim::Engine engine;
  rapl::CpuPackage pkg{engine};
  PapiLibrary papi{engine};

  Fixture() {
    papi.add_rapl_component(pkg, rapl::Credentials{true, 0});
    EXPECT_EQ(papi.library_init(), kPapiOk);
  }
};

TEST(Papi, InitEnumeratesRaplEvents) {
  Fixture f;
  const auto events = f.papi.enum_events();
  ASSERT_EQ(events.size(), 4u);  // PKG, PP0, PP1, DRAM
  EXPECT_EQ(events[0].name, "rapl:::PACKAGE_ENERGY:PACKAGE0");
  EXPECT_EQ(events[0].units, "nJ");
  EXPECT_EQ(events[0].component, "rapl");
}

TEST(Papi, DoubleInitIsIdempotent) {
  Fixture f;
  EXPECT_EQ(f.papi.library_init(), kPapiOk);
  EXPECT_EQ(f.papi.enum_events().size(), 4u);
}

TEST(Papi, EventSetLifecycle) {
  Fixture f;
  int es = 0;
  ASSERT_EQ(f.papi.create_eventset(&es), kPapiOk);
  ASSERT_EQ(f.papi.add_event(es, "rapl:::PACKAGE_ENERGY:PACKAGE0"), kPapiOk);
  ASSERT_EQ(f.papi.start(es), kPapiOk);
  std::vector<long long> values;
  ASSERT_EQ(f.papi.read(es, &values), kPapiOk);
  ASSERT_EQ(f.papi.stop(es, &values), kPapiOk);
  ASSERT_EQ(f.papi.cleanup_eventset(es), kPapiOk);
  EXPECT_EQ(f.papi.read(es, &values), kPapiEinval);  // gone
}

TEST(Papi, UnknownEventRejected) {
  Fixture f;
  int es = 0;
  ASSERT_EQ(f.papi.create_eventset(&es), kPapiOk);
  EXPECT_EQ(f.papi.add_event(es, "rapl:::NOT_A_THING"), kPapiEnoevnt);
}

TEST(Papi, StateMachineErrors) {
  Fixture f;
  int es = 0;
  ASSERT_EQ(f.papi.create_eventset(&es), kPapiOk);
  std::vector<long long> values;
  EXPECT_EQ(f.papi.read(es, &values), kPapiEnotrun);
  ASSERT_EQ(f.papi.add_event(es, "rapl:::PP0_ENERGY:PACKAGE0"), kPapiOk);
  ASSERT_EQ(f.papi.start(es), kPapiOk);
  EXPECT_EQ(f.papi.start(es), kPapiEisrun);
  EXPECT_EQ(f.papi.add_event(es, "rapl:::DRAM_ENERGY:PACKAGE0"), kPapiEisrun);
  EXPECT_EQ(f.papi.cleanup_eventset(es), kPapiEisrun);
  ASSERT_EQ(f.papi.stop(es, &values), kPapiOk);
}

TEST(Papi, EnergyDeltaMatchesWorkload) {
  Fixture f;
  const auto w = workloads::dgemm({Duration::seconds(100), 0.5, 0.0});
  f.pkg.run_workload(&w, SimTime::zero());
  int es = 0;
  (void)f.papi.create_eventset(&es);
  (void)f.papi.add_event(es, "rapl:::PP0_ENERGY:PACKAGE0");
  f.engine.run_until(SimTime::from_seconds(10));
  ASSERT_EQ(f.papi.start(es), kPapiOk);
  f.engine.run_until(SimTime::from_seconds(20));
  std::vector<long long> values;
  ASSERT_EQ(f.papi.read(es, &values), kPapiOk);
  // PP0 at 1.6 + 0.5*42 = 22.6 W over 10 s = 226 J = 2.26e11 nJ.
  EXPECT_NEAR(static_cast<double>(values[0]), 2.26e11, 0.02e11);
}

TEST(Papi, PermissionDeniedMapsToEperm) {
  sim::Engine engine;
  rapl::CpuPackage pkg(engine);
  PapiLibrary papi(engine);
  papi.add_rapl_component(pkg, rapl::Credentials{false, 1000});
  (void)papi.library_init();
  int es = 0;
  (void)papi.create_eventset(&es);
  (void)papi.add_event(es, "rapl:::PACKAGE_ENERGY:PACKAGE0");
  EXPECT_EQ(papi.start(es), kPapiEperm);
}

TEST(Papi, NvmlComponentEvents) {
  sim::Engine engine;
  nvml::NvmlLibrary lib(engine);
  lib.attach_device(std::make_shared<nvml::GpuDevice>(nvml::k20_spec()));
  (void)lib.init();
  PapiLibrary papi(engine);
  papi.add_nvml_component(lib);
  (void)papi.library_init();
  const auto events = papi.enum_events();
  ASSERT_EQ(events.size(), 2u);  // power + temperature
  EXPECT_EQ(events[0].name, "nvml:::Tesla_K20:device_0:power");

  int es = 0;
  (void)papi.create_eventset(&es);
  (void)papi.add_event(es, "nvml:::Tesla_K20:device_0:power");
  engine.run_until(sim::SimTime::from_seconds(1));
  ASSERT_EQ(papi.start(es), kPapiOk);
  std::vector<long long> values;
  ASSERT_EQ(papi.read(es, &values), kPapiOk);
  // Instantaneous event: reports current milliwatts, not a delta.
  EXPECT_NEAR(static_cast<double>(values[0]), 44'000.0, 6'000.0);
}

TEST(Papi, MicPowerComponent) {
  sim::Engine engine;
  mic::PhiCard card(engine);
  mic::MicrasDaemon daemon(card);
  daemon.start();
  PapiLibrary papi(engine);
  papi.add_micpower_component(daemon);
  (void)papi.library_init();
  int es = 0;
  (void)papi.create_eventset(&es);
  ASSERT_EQ(papi.add_event(es, "micpower:::tot0"), kPapiOk);
  engine.run_until(sim::SimTime::from_seconds(1));
  ASSERT_EQ(papi.start(es), kPapiOk);
  std::vector<long long> values;
  ASSERT_EQ(papi.read(es, &values), kPapiOk);
  EXPECT_GT(values[0], 90'000);  // ~100+ W in mW
}

TEST(Papi, MultiComponentEventSet) {
  sim::Engine engine;
  rapl::CpuPackage pkg(engine);
  nvml::NvmlLibrary lib(engine);
  lib.attach_device(std::make_shared<nvml::GpuDevice>(nvml::k20_spec()));
  (void)lib.init();
  PapiLibrary papi(engine);
  papi.add_rapl_component(pkg, rapl::Credentials{true, 0});
  papi.add_nvml_component(lib);
  (void)papi.library_init();
  EXPECT_EQ(papi.enum_events().size(), 6u);

  int es = 0;
  (void)papi.create_eventset(&es);
  ASSERT_EQ(papi.add_event(es, "rapl:::PACKAGE_ENERGY:PACKAGE0"), kPapiOk);
  ASSERT_EQ(papi.add_event(es, "nvml:::Tesla_K20:device_0:temperature"), kPapiOk);
  engine.run_until(sim::SimTime::from_seconds(1));
  ASSERT_EQ(papi.start(es), kPapiOk);
  std::vector<long long> values;
  ASSERT_EQ(papi.read(es, &values), kPapiOk);
  ASSERT_EQ(values.size(), 2u);
  EXPECT_GE(values[0], 0);   // energy delta since start (nJ)
  EXPECT_GT(values[1], 30);  // die temperature (C)
}

TEST(Papi, CostAccountingAccrues) {
  Fixture f;
  int es = 0;
  (void)f.papi.create_eventset(&es);
  (void)f.papi.add_event(es, "rapl:::PACKAGE_ENERGY:PACKAGE0");
  (void)f.papi.start(es);
  std::vector<long long> values;
  f.engine.run_until(sim::SimTime::from_seconds(1));
  (void)f.papi.read(es, &values);
  // Each energy read costs one MSR access plus the units read on open.
  EXPECT_GT(f.papi.cost().total().ns(), 0);
}

TEST(Papi, ErrorStrings) {
  EXPECT_STREQ(papi_strerror(kPapiOk), "No error");
  EXPECT_STREQ(papi_strerror(kPapiEnoevnt), "Event does not exist");
  EXPECT_STREQ(papi_strerror(-999), "Unknown error");
}

}  // namespace
}  // namespace envmon::tools
