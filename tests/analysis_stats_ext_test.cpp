#include "analysis/stats_ext.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace envmon::analysis {
namespace {

TEST(Histogram, CountsLandInBins) {
  const std::vector<double> v = {0.0, 0.1, 0.2, 5.0, 9.9, 10.0};
  const auto h = histogram(v, 10);
  EXPECT_EQ(h.total(), v.size());
  EXPECT_DOUBLE_EQ(h.lo, 0.0);
  EXPECT_DOUBLE_EQ(h.hi, 10.0);
  EXPECT_EQ(h.counts.front(), 3u);  // 0.0, 0.1, 0.2
  EXPECT_EQ(h.counts.back(), 2u);   // 9.9, 10.0 (max clamps to last bin)
}

TEST(Histogram, DegenerateInputs) {
  EXPECT_EQ(histogram({}, 4).total(), 0u);
  const std::vector<double> v = {1.0};
  EXPECT_EQ(histogram(v, 0).total(), 0u);
  const auto h = histogram(v, 4);  // single value: synthetic range
  EXPECT_EQ(h.total(), 1u);
}

TEST(Histogram, RenderShowsBars) {
  const std::vector<double> v = {1, 1, 1, 2, 3};
  const auto text = render_histogram(histogram(v, 2));
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_NE(text.find('3'), std::string::npos);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> a = {1, 2, 3, 4, 5};
  const std::vector<double> b = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  std::vector<double> neg(b.rbegin(), b.rend());
  EXPECT_NEAR(pearson(a, neg), -1.0, 1e-12);
}

TEST(Pearson, IndependentNoiseNearZero) {
  Rng rng(5);
  std::vector<double> a, b;
  for (int i = 0; i < 5000; ++i) {
    a.push_back(rng.normal());
    b.push_back(rng.normal());
  }
  EXPECT_NEAR(pearson(a, b), 0.0, 0.05);
}

TEST(Pearson, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(pearson({}, {}), 0.0);
  const std::vector<double> constant = {3, 3, 3, 3};
  const std::vector<double> varying = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(pearson(constant, varying), 0.0);  // zero variance
}

TEST(TraceCorrelation, PowerTemperatureCoupling) {
  // A power ramp and its low-passed temperature are strongly positively
  // correlated — the Fig 5 relationship.
  std::vector<sim::TracePoint> power, temp;
  double t_state = 40.0;
  for (int i = 0; i < 300; ++i) {
    const double p = i < 100 ? 50.0 : 130.0;
    t_state += 0.02 * (40.0 + 0.2 * p - t_state);
    power.push_back({sim::SimTime::from_seconds(i), p});
    temp.push_back({sim::SimTime::from_seconds(i), t_state});
  }
  EXPECT_GT(trace_correlation(power, temp), 0.7);
}

TEST(BestLag, RecoversKnownShift) {
  Rng rng(9);
  std::vector<double> base;
  for (int i = 0; i < 400; ++i) {
    base.push_back(std::sin(i * 0.10) + 0.05 * rng.normal());
  }
  // b is a shifted into the future by 7 samples: b[i] = a[i - 7].
  std::vector<double> shifted(base.size(), 0.0);
  for (std::size_t i = 7; i < base.size(); ++i) shifted[i] = base[i - 7];
  EXPECT_EQ(best_lag(base, shifted, 20), 7);
  EXPECT_EQ(best_lag(shifted, base, 20), -7);
  EXPECT_EQ(best_lag(base, base, 20), 0);
}

}  // namespace
}  // namespace envmon::analysis
