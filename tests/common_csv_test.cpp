#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace envmon {
namespace {

TEST(CsvWriter, PlainRow) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row("a", "b", "c");
  EXPECT_EQ(os.str(), "a,b,c\n");
  EXPECT_EQ(w.rows_written(), 1u);
}

TEST(CsvWriter, NumericFields) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row("power", 42, 3);
  EXPECT_EQ(os.str(), "power,42,3\n");
}

TEST(CsvWriter, QuotesFieldWithDelimiter) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row("a,b", "plain");
  EXPECT_EQ(os.str(), "\"a,b\",plain\n");
}

TEST(CsvWriter, EscapesEmbeddedQuotes) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row("say \"hi\"");
  EXPECT_EQ(os.str(), "\"say \"\"hi\"\"\"\n");
}

TEST(CsvWriter, QuotesNewlines) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row("line1\nline2");
  EXPECT_EQ(os.str(), "\"line1\nline2\"\n");
}

TEST(CsvWriter, CustomDelimiter) {
  std::ostringstream os;
  CsvWriter w(os, ';');
  w.row("a", "b");
  EXPECT_EQ(os.str(), "a;b\n");
}

TEST(CsvParse, HeaderAndRows) {
  const auto r = parse_csv("h1,h2\nv1,v2\nv3,v4\n");
  ASSERT_TRUE(r.is_ok());
  const auto& t = r.value();
  ASSERT_EQ(t.header.size(), 2u);
  EXPECT_EQ(t.header[0], "h1");
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[1][1], "v4");
}

TEST(CsvParse, NoHeaderMode) {
  const auto r = parse_csv("1,2\n3,4\n", /*has_header=*/false);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r.value().header.empty());
  EXPECT_EQ(r.value().rows.size(), 2u);
}

TEST(CsvParse, QuotedFieldWithDelimiterAndNewline) {
  const auto r = parse_csv("h\n\"a,b\nc\"\n");
  ASSERT_TRUE(r.is_ok());
  ASSERT_EQ(r.value().rows.size(), 1u);
  EXPECT_EQ(r.value().rows[0][0], "a,b\nc");
}

TEST(CsvParse, DoubledQuoteUnescapes) {
  const auto r = parse_csv("h\n\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().rows[0][0], "say \"hi\"");
}

TEST(CsvParse, ToleratesCrLf) {
  const auto r = parse_csv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().rows[0][0], "1");
}

TEST(CsvParse, MissingFinalNewline) {
  const auto r = parse_csv("h\nlast,row");
  ASSERT_TRUE(r.is_ok());
  ASSERT_EQ(r.value().rows.size(), 1u);
  EXPECT_EQ(r.value().rows[0][1], "row");
}

TEST(CsvParse, UnterminatedQuoteFails) {
  const auto r = parse_csv("h\n\"open\n");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvParse, MidFieldQuoteFails) {
  const auto r = parse_csv("h\nab\"cd\"\n");
  ASSERT_FALSE(r.is_ok());
}

TEST(CsvParse, RoundTripThroughWriter) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row("time_s", "domain", "value");
  w.row("1.5", "chip,core", "42.0");
  const auto r = parse_csv(os.str());
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().rows[0][1], "chip,core");
}

}  // namespace
}  // namespace envmon
