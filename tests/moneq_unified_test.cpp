#include "moneq/unified.hpp"

#include <gtest/gtest.h>

#include "bgq/emon.hpp"
#include "bgq/machine.hpp"
#include "moneq/backend_bgq.hpp"
#include "moneq/backend_mic.hpp"
#include "moneq/backend_nvml.hpp"
#include "moneq/backend_rapl.hpp"
#include "workloads/library.hpp"

namespace envmon::moneq {
namespace {

using sim::Duration;
using sim::SimTime;
using U = UnifiedMetric;

TEST(Unified, TotalPowerSupportedEverywhere) {
  // Static support claims mirror Table I's one universal row.
  sim::Engine engine;
  bgq::BgqMachine machine;
  bgq::EmonSession emon(machine.board(0));
  BgqBackend bgq_b(emon);
  rapl::CpuPackage pkg(engine);
  rapl::MsrRaplReader reader(pkg, rapl::Credentials{true, 0});
  RaplBackend rapl_b(reader);
  mic::PhiCard card(engine);
  mic::MicrasDaemon daemon(card);
  MicDaemonBackend mic_b(daemon);
  nvml::NvmlLibrary lib(engine);
  lib.attach_device(std::make_shared<nvml::GpuDevice>(nvml::k20_spec()));
  (void)lib.init();
  nvml::NvmlDeviceHandle handle;
  (void)lib.device_get_handle_by_index(0, &handle);
  NvmlBackend nvml_b(lib, handle);

  for (Backend* b : std::initializer_list<Backend*>{&bgq_b, &rapl_b, &mic_b, &nvml_b}) {
    EXPECT_TRUE(UnifiedSampler(*b).supports(U::kTotalPowerWatts)) << b->name();
  }
  // And the asymmetries: memory power only where Table I says so.
  EXPECT_TRUE(UnifiedSampler(bgq_b).supports(U::kMemoryPowerWatts));
  EXPECT_TRUE(UnifiedSampler(rapl_b).supports(U::kMemoryPowerWatts));
  EXPECT_FALSE(UnifiedSampler(nvml_b).supports(U::kMemoryPowerWatts));
  EXPECT_FALSE(UnifiedSampler(mic_b).supports(U::kMemoryPowerWatts));
  EXPECT_TRUE(UnifiedSampler(nvml_b).supports(U::kDieTempCelsius));
  EXPECT_FALSE(UnifiedSampler(bgq_b).supports(U::kDieTempCelsius));
}

TEST(Unified, BgqSnapshotSplitsPlanes) {
  bgq::BgqMachine machine;
  const auto w = workloads::mmps({Duration::seconds(100), 6});
  machine.run_workload(&w, SimTime::zero());
  bgq::EmonSession emon(machine.board(0));
  BgqBackend backend(emon);
  UnifiedSampler sampler(backend);
  sim::CostMeter meter;
  const auto snapshot = sampler.sample(SimTime::from_seconds(50), meter);
  ASSERT_TRUE(snapshot.is_ok());
  const auto& values = snapshot.value();
  ASSERT_TRUE(values.contains(U::kTotalPowerWatts));
  ASSERT_TRUE(values.contains(U::kProcessorPowerWatts));
  ASSERT_TRUE(values.contains(U::kMemoryPowerWatts));
  EXPECT_GT(values.at(U::kTotalPowerWatts),
            values.at(U::kProcessorPowerWatts) + values.at(U::kMemoryPowerWatts));
}

TEST(Unified, RaplWarmupThenData) {
  sim::Engine engine;
  rapl::CpuPackage pkg(engine);
  const auto w = workloads::dgemm({Duration::seconds(60), 0.8, 0.4});
  pkg.run_workload(&w, SimTime::zero());
  rapl::MsrRaplReader reader(pkg, rapl::Credentials{true, 0});
  RaplBackend backend(reader);
  UnifiedSampler sampler(backend);
  sim::CostMeter meter;
  engine.run_until(SimTime::from_seconds(1));
  // First collect only yields energy counters: unified sample warms up.
  const auto first = sampler.sample(engine.now(), meter);
  ASSERT_FALSE(first.is_ok());
  EXPECT_EQ(first.status().code(), StatusCode::kUnavailable);
  engine.run_until(SimTime::from_seconds(2));
  const auto second = sampler.sample(engine.now(), meter);
  ASSERT_TRUE(second.is_ok());
  EXPECT_NEAR(second.value().at(U::kTotalPowerWatts), 39.7, 1.5);
}

TEST(Unified, CrossPlatformComparisonOnCommonMetric) {
  // The Section II wish: "look at two devices in terms of their
  // environmental data" — here GPU vs Phi total power under their
  // respective compute workloads, on the same metric key.
  sim::Engine engine;

  nvml::NvmlLibrary lib(engine);
  lib.attach_device(std::make_shared<nvml::GpuDevice>(nvml::k20_spec()));
  (void)lib.init();
  nvml::NvmlDeviceHandle handle;
  (void)lib.device_get_handle_by_index(0, &handle);
  const auto gpu_w = workloads::gpu_vector_add({Duration::seconds(2), Duration::seconds(1),
                                                Duration::seconds(60)});
  lib.device_for_testing(0)->run_workload(&gpu_w, SimTime::zero());
  NvmlBackend gpu_backend(lib, handle);

  mic::PhiCard card(engine);
  const auto phi_w = workloads::offload_gauss({Duration::seconds(2), Duration::seconds(1),
                                               Duration::seconds(60)});
  card.run_workload(&phi_w, SimTime::zero());
  mic::MicrasDaemon daemon(card);
  daemon.start();
  MicDaemonBackend phi_backend(daemon);

  UnifiedSampler gpu(gpu_backend), phi(phi_backend);
  sim::CostMeter meter;
  engine.run_until(SimTime::from_seconds(30));
  const auto gpu_snap = gpu.sample(engine.now(), meter);
  const auto phi_snap = phi.sample(engine.now(), meter);
  ASSERT_TRUE(gpu_snap.is_ok());
  ASSERT_TRUE(phi_snap.is_ok());
  const double gpu_w_now = gpu_snap.value().at(U::kTotalPowerWatts);
  const double phi_w_now = phi_snap.value().at(U::kTotalPowerWatts);
  // Both under compute load; the Phi card draws more at full tilt.
  EXPECT_GT(gpu_w_now, 100.0);
  EXPECT_GT(phi_w_now, gpu_w_now);
}

TEST(Unified, MetricNames) {
  EXPECT_STREQ(to_string(U::kTotalPowerWatts), "total_power_w");
  EXPECT_STREQ(to_string(U::kFanPercentOrRpm), "fan_speed");
}

}  // namespace
}  // namespace envmon::moneq
