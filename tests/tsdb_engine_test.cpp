// Tests for the sharded columnar storage engine behind EnvDatabase:
// metric interning, the location-prefix shard index, the batch-ingest
// path, the downsample cache, retention/rate-window interaction, and
// result equivalence with a reference flat scan.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "moneq/output.hpp"
#include "moneq/unified.hpp"
#include "tsdb/database.hpp"
#include "tsdb/metric_table.hpp"
#include "tsdb/shard_index.hpp"

namespace envmon::tsdb {
namespace {

using sim::Duration;
using sim::SimTime;

Record make_record(double t_seconds, Location loc, std::string metric, double value) {
  return Record{SimTime::from_seconds(t_seconds), loc, std::move(metric), value};
}

// The pre-sharding implementation, kept as the behavioral oracle.
bool flat_matches(const Record& r, const QueryFilter& f) {
  if (f.location_prefix && !f.location_prefix->contains(r.location)) return false;
  if (f.metric && r.metric != *f.metric) return false;
  if (f.from && r.timestamp < *f.from) return false;
  if (f.to && r.timestamp > *f.to) return false;
  return true;
}

std::vector<Record> flat_query(const std::vector<Record>& records, const QueryFilter& f) {
  std::vector<Record> out;
  for (const auto& r : records) {
    if (flat_matches(r, f)) out.push_back(r);
  }
  return out;
}

TEST(MetricTable, InternsToDenseIdsAndDedupes) {
  MetricTable table;
  const MetricId power = table.intern("power_w");
  const MetricId temp = table.intern("temp_c");
  EXPECT_NE(power, temp);
  EXPECT_EQ(table.intern("power_w"), power);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.name(power), "power_w");
  ASSERT_TRUE(table.find("temp_c").has_value());
  EXPECT_EQ(*table.find("temp_c"), temp);
  EXPECT_FALSE(table.find("never_seen").has_value());
}

TEST(ShardIndex, ResolvesPrefixAndMetricFilters) {
  MetricTable metrics;
  const MetricId power = metrics.intern("p");
  const MetricId temp = metrics.intern("t");
  ShardIndex index;
  index.slot(board_location(0, 0, 3), power) = 0;
  index.slot(board_location(0, 1, 3), power) = 1;
  index.slot(board_location(1, 0, 3), power) = 2;
  index.slot(board_location(0, 0, 3), temp) = 3;
  EXPECT_EQ(index.series_count(), 4u);

  std::vector<std::uint32_t> out;
  index.collect(rack_location(0), std::nullopt, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 3, 1}));

  out.clear();
  index.collect(rack_location(0), power, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 1}));

  out.clear();
  index.collect(std::nullopt, power, out);
  EXPECT_EQ(out.size(), 3u);

  // Sparse wildcard: rack set, midplane unset, board set — exactly
  // Location::contains semantics.
  Location sparse;
  sparse.rack = 0;
  sparse.board = 3;
  out.clear();
  index.collect(sparse, std::nullopt, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 3, 1}));
}

TEST(ShardIndex, SetFilterLevelDoesNotMatchUnsetRecordLevel) {
  MetricTable metrics;
  const MetricId power = metrics.intern("p");
  ShardIndex index;
  index.slot(rack_location(0), power) = 0;  // midplane/board/card unset
  std::vector<std::uint32_t> out;
  index.collect(midplane_location(0, 0), std::nullopt, out);
  EXPECT_TRUE(out.empty());  // a rack-scope record is not inside midplane 0
  index.collect(rack_location(0), std::nullopt, out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(EnvDatabase, OutOfOrderRejectCountsInAccessor) {
  EnvDatabase db;
  ASSERT_TRUE(db.insert(make_record(5.0, rack_location(0), "power", 1.0)).is_ok());
  EXPECT_FALSE(db.insert(make_record(4.0, rack_location(0), "power", 1.0)).is_ok());
  EXPECT_FALSE(db.insert(make_record(3.0, rack_location(0), "power", 1.0)).is_ok());
  // Regression: out-of-order rejects used to bump only the obs counter,
  // leaving this accessor reading zero.
  EXPECT_EQ(db.rejected_inserts(), 2u);
}

TEST(EnvDatabase, BatchInsertAcceptsAndReportsCounts) {
  EnvDatabase db;
  std::vector<Record> batch;
  for (int i = 0; i < 10; ++i) {
    batch.push_back(make_record(i, rack_location(i % 2), (i / 2) % 2 ? "power" : "temp", i));
  }
  const auto result = db.insert_batch(batch);
  EXPECT_TRUE(result.all_accepted());
  EXPECT_EQ(result.accepted, 10u);
  EXPECT_EQ(db.size(), 10u);
  EXPECT_EQ(db.metric_count(), 2u);
  EXPECT_EQ(db.series_count(), 4u);
}

TEST(EnvDatabase, BatchInsertSkipsOutOfOrderRecordsAndContinues) {
  EnvDatabase db;
  std::vector<Record> batch;
  batch.push_back(make_record(1.0, rack_location(0), "power", 1.0));
  batch.push_back(make_record(3.0, rack_location(0), "power", 3.0));
  batch.push_back(make_record(2.0, rack_location(0), "power", 2.0));  // out of order
  batch.push_back(make_record(4.0, rack_location(0), "power", 4.0));
  const auto result = db.insert_batch(batch);
  EXPECT_EQ(result.accepted, 3u);
  EXPECT_EQ(result.rejected_out_of_order, 1u);
  EXPECT_EQ(result.rejected_rate_limited, 0u);
  EXPECT_EQ(db.rejected_inserts(), 1u);
  const auto rows = db.query({});
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_DOUBLE_EQ(rows[1].value, 3.0);
  EXPECT_DOUBLE_EQ(rows[2].value, 4.0);
}

TEST(EnvDatabase, BatchInsertHitsRateCeilingLikePerRecordInserts) {
  DatabaseOptions options;
  options.max_insert_rate_per_second = 1.0;
  options.rate_window = Duration::seconds(10);  // ceiling: 10 records/window
  EnvDatabase db(options);
  std::vector<Record> batch;
  for (int i = 0; i < 40; ++i) {
    batch.push_back(make_record(0.1 * i, rack_location(0), "power", 1.0));
  }
  const auto result = db.insert_batch(batch);
  EXPECT_GT(result.rejected_rate_limited, 0u);
  EXPECT_LE(result.accepted, 12u);
  EXPECT_EQ(db.rejected_inserts(), result.rejected());
  EXPECT_EQ(db.size(), result.accepted);
}

TEST(EnvDatabase, RetentionDoesNotRefundRateWindowBudget) {
  DatabaseOptions options;
  options.max_insert_rate_per_second = 1.0;
  options.rate_window = Duration::seconds(10);      // budget: 10 records/window
  options.retention = Duration::from_seconds(0.5);  // drops records almost immediately
  EnvDatabase db(options);
  std::size_t accepted = 0;
  for (int i = 0; i < 15; ++i) {
    if (db.insert(make_record(0.1 * i, rack_location(0), "power", 1.0)).is_ok()) ++accepted;
  }
  // Retention has already dropped most of the accepted records, but they
  // were still *ingested* inside the window: the capacity ceiling binds
  // on ingest volume, so vacuum must not retroactively free budget (a
  // live-record count would have accepted all 15 here).
  EXPECT_EQ(accepted, 10u);
  EXPECT_LT(db.size(), 10u);
  EXPECT_EQ(db.rejected_inserts(), 5u);
}

TEST(EnvDatabase, VacuumAppliesPerSeriesRetention) {
  DatabaseOptions options;
  options.retention = Duration::seconds(10);
  EnvDatabase db(options);
  (void)db.insert(make_record(0.0, rack_location(0), "power", 1.0));
  (void)db.insert(make_record(0.0, rack_location(1), "temp", 2.0));
  (void)db.insert(make_record(12.0, rack_location(0), "power", 3.0));
  (void)db.insert(make_record(20.0, rack_location(1), "temp", 4.0));
  EXPECT_EQ(db.size(), 2u);  // both t=0 records dropped, across both series
  const auto rows = db.query({});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].value, 3.0);
  EXPECT_DOUBLE_EQ(rows[1].value, 4.0);
}

TEST(EnvDatabase, DownsampleFloorsPreEpochTimestamps) {
  EnvDatabase db;
  (void)db.insert(make_record(-3.0, rack_location(0), "power", 30.0));
  (void)db.insert(make_record(-1.0, rack_location(0), "power", 10.0));
  (void)db.insert(make_record(1.0, rack_location(0), "power", 20.0));
  const auto buckets = db.downsample({}, Duration::seconds(2));
  // Floor division: -3 s lands in [-4, -2), -1 s in [-2, 0), 1 s in [0, 2).
  // Truncating division used to put both negative records in the wrong
  // bucket (-2 and 0 respectively).
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_DOUBLE_EQ(buckets[0].start.to_seconds(), -4.0);
  EXPECT_DOUBLE_EQ(buckets[1].start.to_seconds(), -2.0);
  EXPECT_DOUBLE_EQ(buckets[2].start.to_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(buckets[0].mean, 30.0);
  EXPECT_DOUBLE_EQ(buckets[1].mean, 10.0);
}

TEST(EnvDatabase, DownsampleCacheHitsAndInvalidation) {
  EnvDatabase db;
  for (int i = 0; i < 100; ++i) {
    (void)db.insert(make_record(i, rack_location(i % 4), "power", i));
  }
  QueryFilter f;
  f.location_prefix = rack_location(1);
  const auto first = db.downsample(f, Duration::seconds(10));
  const auto cached = db.downsample(f, Duration::seconds(10));
  EXPECT_EQ(db.query_stats().cache_hits, 1u);
  ASSERT_EQ(cached.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(cached[i].start, first[i].start);
    EXPECT_DOUBLE_EQ(cached[i].mean, first[i].mean);
    EXPECT_EQ(cached[i].count, first[i].count);
  }

  // A different bucket width is a different key, not a stale hit.
  const auto wider = db.downsample(f, Duration::seconds(50));
  EXPECT_NE(wider.size(), first.size());

  // Mutation invalidates: the refreshed result sees the new record.
  (void)db.insert(make_record(100.0, rack_location(1), "power", 1000.0));
  const auto refreshed = db.downsample(f, Duration::seconds(10));
  EXPECT_EQ(refreshed.size(), first.size() + 1);
  EXPECT_EQ(db.query_stats().cache_hits, 1u);  // no further hits
}

TEST(EnvDatabase, FilteredQueriesScanFewerRowsThanFullScan) {
  EnvDatabase db;
  for (int i = 0; i < 1000; ++i) {
    (void)db.insert(
        make_record(i, board_location(i % 4, i % 2, i % 8), i % 2 ? "power" : "temp", i));
  }
  const auto before = db.query_stats().rows_scanned;
  QueryFilter f;
  f.location_prefix = board_location(1, 1, 1);
  f.metric = "power";
  const auto rows = db.query(f);
  const auto scanned = db.query_stats().rows_scanned - before;
  EXPECT_EQ(scanned, rows.size());    // touched exactly the matches...
  EXPECT_LT(scanned, db.size() / 4);  // ...not the whole store
}

TEST(EnvDatabase, QueryAndDownsampleMatchFlatScanOracle) {
  // Three engines over the same record stream and seal schedule: the
  // default (compressed blocks, aggregation pushdown), the reference
  // configuration (raw blocks, no pushdown, serial queries), and a
  // parallel-query variant forced over the worker pool.  All three must
  // produce byte-identical results.
  DatabaseOptions ref_opts;
  ref_opts.compress_blocks = false;
  ref_opts.aggregation_pushdown = false;
  DatabaseOptions mt_opts;
  mt_opts.query_threads = 4;
  mt_opts.parallel_query_min_rows = 1;
  EnvDatabase db;
  EnvDatabase ref(ref_opts);
  EnvDatabase mt(mt_opts);
  std::vector<Record> mirror;
  std::mt19937 rng(0xc0ffee);
  std::uniform_int_distribution<int> rack(0, 2), midplane(0, 1), board(0, 3), pick(0, 3);
  std::uniform_real_distribution<double> value(0.0, 100.0);
  const char* metrics[] = {"power_w", "temp_c", "flow_lpm"};
  double t = -50.0;  // cover pre-epoch timestamps too
  for (int i = 0; i < 800; ++i) {
    t += 0.25 * static_cast<double>(pick(rng));  // duplicates and gaps
    Location loc;
    switch (pick(rng)) {
      case 0: loc = rack_location(rack(rng)); break;
      case 1: loc = midplane_location(rack(rng), midplane(rng)); break;
      default: loc = board_location(rack(rng), midplane(rng), board(rng)); break;
    }
    const Record r = make_record(t, loc, metrics[i % 3], value(rng));
    ASSERT_TRUE(db.insert(r).is_ok());
    ASSERT_TRUE(ref.insert(r).is_ok());
    ASSERT_TRUE(mt.insert(r).is_ok());
    mirror.push_back(r);
    if (i == 399) {  // seal mid-stream: queries cross sealed blocks and heads
      db.seal_blocks();
      ref.seal_blocks();
      mt.seal_blocks();
    }
  }
  EXPECT_GT(db.sealed_block_count(), 0u);

  std::vector<QueryFilter> filters;
  filters.push_back({});
  for (int i = 0; i < 40; ++i) {
    QueryFilter f;
    if (pick(rng) != 0) {
      switch (pick(rng)) {
        case 0: f.location_prefix = rack_location(rack(rng)); break;
        case 1: f.location_prefix = midplane_location(rack(rng), midplane(rng)); break;
        default: f.location_prefix = board_location(rack(rng), midplane(rng), board(rng));
      }
    }
    if (pick(rng) != 0) f.metric = metrics[static_cast<std::size_t>(pick(rng)) % 3];
    if (pick(rng) == 0) f.metric = "absent_metric";
    if (pick(rng) != 0) f.from = SimTime::from_seconds(-60.0 + 10.0 * pick(rng));
    if (pick(rng) != 0) f.to = SimTime::from_seconds(10.0 * pick(rng));
    filters.push_back(f);
  }

  for (const auto& f : filters) {
    const auto expected = flat_query(mirror, f);
    const auto actual = db.query(f);
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].timestamp, expected[i].timestamp);
      EXPECT_EQ(actual[i].location, expected[i].location);
      EXPECT_EQ(actual[i].metric, expected[i].metric);
      EXPECT_EQ(actual[i].value, expected[i].value);  // bit-exact
    }
    // Raw blocks and the parallel executor return byte-identical rows.
    const auto from_ref = ref.query(f);
    const auto from_mt = mt.query(f);
    ASSERT_EQ(from_ref.size(), actual.size());
    ASSERT_EQ(from_mt.size(), actual.size());
    for (std::size_t i = 0; i < actual.size(); ++i) {
      EXPECT_EQ(from_ref[i].timestamp, actual[i].timestamp);
      EXPECT_EQ(from_ref[i].value, actual[i].value);
      EXPECT_EQ(from_mt[i].timestamp, actual[i].timestamp);
      EXPECT_EQ(from_mt[i].value, actual[i].value);
    }

    // Downsample oracle: bucket starts and counts against a flat
    // bucketing loop; the mean is defined at subchunk granularity
    // (DESIGN.md §10), so the flat fold agrees only to rounding —
    // bit-exactness is checked against the reference engine, which uses
    // raw blocks and no pushdown but the identical aggregation grid.
    const Duration width = Duration::seconds(7);
    struct Want {
      SimTime start;
      double sum = 0.0;
      std::size_t count = 0;
    };
    std::vector<Want> want;
    for (const auto& r : expected) {
      const std::int64_t ns = r.timestamp.ns(), w = width.ns();
      std::int64_t idx = ns / w;
      if (ns % w != 0 && ns < 0) --idx;  // floor
      const SimTime start = SimTime::from_ns(idx * w);
      if (want.empty() || want.back().start != start) want.push_back({start, 0.0, 0});
      auto& b = want.back();
      b.sum += r.value;
      ++b.count;
    }
    const auto got = db.downsample(f, width);
    const auto got_ref = ref.downsample(f, width);
    ASSERT_EQ(got.size(), want.size());
    ASSERT_EQ(got_ref.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].start, want[i].start);
      EXPECT_EQ(got[i].count, want[i].count);
      EXPECT_NEAR(got[i].mean, want[i].sum / static_cast<double>(want[i].count), 1e-9);
      EXPECT_EQ(got_ref[i].start, got[i].start);
      EXPECT_EQ(got_ref[i].count, got[i].count);
      EXPECT_EQ(got_ref[i].mean, got[i].mean);  // bit-exact: pushdown vs decode
    }

    // Whole-window aggregates push down to block summaries; same
    // bit-exactness contract against the reference engine.
    const auto agg = db.aggregate(f);
    const auto agg_ref = ref.aggregate(f);
    EXPECT_EQ(agg.count, agg_ref.count);
    EXPECT_EQ(agg.sum, agg_ref.sum);
    EXPECT_EQ(agg.sum_sq, agg_ref.sum_sq);
    EXPECT_EQ(agg.min, agg_ref.min);
    EXPECT_EQ(agg.max, agg_ref.max);
  }
  EXPECT_GT(db.query_stats().pushdown_chunks, 0u);
}

TEST(MoneqBridge, StoreNodeSamplesLandsBatchAtNodeLocation) {
  EnvDatabase db;
  std::vector<moneq::Sample> samples;
  samples.push_back({SimTime::from_seconds(1.0), "chip_core", moneq::Quantity::kPowerWatts, 40.0});
  samples.push_back({SimTime::from_seconds(1.0), "dram", moneq::Quantity::kPowerWatts, 11.0});
  samples.push_back({SimTime::from_seconds(2.0), "chip_core", moneq::Quantity::kPowerWatts, 42.0});
  const auto result = moneq::store_node_samples(db, 33, samples);
  EXPECT_TRUE(result.all_accepted());
  EXPECT_EQ(db.size(), 3u);

  // Rank 33 = card 1 on board 1 (32 cards per board).
  EXPECT_EQ(moneq::node_location(33).to_string(), "R00-M0-N01-J01");
  QueryFilter f;
  f.location_prefix = moneq::node_location(33);
  f.metric = "moneq_chip_core";
  const auto rows = db.query(f);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[1].value, 42.0);
}

TEST(MoneqBridge, RecordUnifiedStoresOneRecordPerMetric) {
  EnvDatabase db;
  std::map<moneq::UnifiedMetric, double> snapshot;
  snapshot[moneq::UnifiedMetric::kTotalPowerWatts] = 118.0;
  snapshot[moneq::UnifiedMetric::kDieTempCelsius] = 61.0;
  const auto result =
      moneq::record_unified(db, rack_location(3), SimTime::from_seconds(5.0), snapshot);
  EXPECT_TRUE(result.all_accepted());
  QueryFilter f;
  f.metric = "total_power_w";
  const auto rows = db.query(f);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].value, 118.0);
  EXPECT_EQ(rows[0].location.to_string(), "R03");
}

}  // namespace
}  // namespace envmon::tsdb
