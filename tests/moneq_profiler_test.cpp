#include "moneq/profiler.hpp"

#include <gtest/gtest.h>

#include "bgq/emon.hpp"
#include "bgq/machine.hpp"
#include "moneq/backend_bgq.hpp"
#include "workloads/library.hpp"

namespace envmon::moneq {
namespace {

using sim::Duration;
using sim::SimTime;

struct Fixture {
  sim::Engine engine;
  bgq::BgqMachine machine;
  bgq::EmonSession emon{machine.board(0)};
  BgqBackend backend{emon};
  smpi::World world{32};
  smpi::FileSystemModel fs;
  MemoryOutput output;
  NodeProfiler profiler{engine, world, 0};

  Fixture() { EXPECT_TRUE(profiler.add_backend(backend).is_ok()); }
};

TEST(Profiler, RequiresBackendBeforeInitialize) {
  sim::Engine engine;
  smpi::World world(1);
  NodeProfiler p(engine, world, 0);
  const Status s = p.initialize();
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(Profiler, DefaultsToBackendFloorInterval) {
  Fixture f;
  ASSERT_TRUE(f.profiler.initialize().is_ok());
  EXPECT_EQ(f.profiler.polling_interval(), Duration::millis(560));
}

TEST(Profiler, RejectsIntervalBelowFloor) {
  Fixture f;
  const Status s = f.profiler.set_polling_interval(Duration::millis(100));
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
}

TEST(Profiler, AcceptsValidUserInterval) {
  Fixture f;
  ASSERT_TRUE(f.profiler.set_polling_interval(Duration::seconds(2)).is_ok());
  ASSERT_TRUE(f.profiler.initialize().is_ok());
  EXPECT_EQ(f.profiler.polling_interval(), Duration::seconds(2));
}

TEST(Profiler, DoubleInitializeFails) {
  Fixture f;
  ASSERT_TRUE(f.profiler.initialize().is_ok());
  EXPECT_EQ(f.profiler.initialize().code(), StatusCode::kFailedPrecondition);
}

TEST(Profiler, FinalizeBeforeInitializeFails) {
  Fixture f;
  EXPECT_EQ(f.profiler.finalize().code(), StatusCode::kFailedPrecondition);
}

TEST(Profiler, DoubleFinalizeFails) {
  Fixture f;
  ASSERT_TRUE(f.profiler.initialize().is_ok());
  f.engine.run_until(SimTime::from_seconds(5));
  ASSERT_TRUE(f.profiler.finalize().is_ok());
  EXPECT_EQ(f.profiler.finalize().code(), StatusCode::kFailedPrecondition);
}

TEST(Profiler, CollectsAtConfiguredCadence) {
  Fixture f;
  ASSERT_TRUE(f.profiler.initialize().is_ok());
  f.engine.run_until(SimTime::from_seconds(10));
  ASSERT_TRUE(f.profiler.finalize().is_ok());
  // 10 s / 0.56 s = 17 polls; the first (t = 0.56 s) coincides with the
  // completion of EMON generation 0, so every poll records data.
  EXPECT_EQ(f.profiler.overhead().polls, 17u);
  // 17 polls x (3 per domain x 7 + 1 total) samples.
  EXPECT_EQ(f.profiler.samples().size(), 17u * 22u);
}

// A backend that fails its first collects, then recovers — e.g. a daemon
// still starting up.
class FlakyBackend final : public Backend {
 public:
  explicit FlakyBackend(int failures) : failures_left_(failures) {}
  [[nodiscard]] std::string_view name() const override { return "flaky"; }
  [[nodiscard]] PlatformId platform() const override { return PlatformId::kRapl; }
  [[nodiscard]] sim::Duration min_polling_interval() const override {
    return Duration::millis(10);
  }
  [[nodiscard]] Result<std::vector<Sample>> collect(sim::SimTime now,
                                                    sim::CostMeter& meter) override {
    meter.charge(Duration::micros(30));
    if (failures_left_-- > 0) {
      return Status(StatusCode::kUnavailable, "collection source not ready");
    }
    return std::vector<Sample>{{now, "pkg", Quantity::kPowerWatts, 10.0}};
  }
  [[nodiscard]] BackendLimitations limitations() const override { return {}; }

 private:
  int failures_left_;
};

TEST(Profiler, EarlyBackendFailureRecordedNotFatal) {
  sim::Engine engine;
  smpi::World world(1);
  FlakyBackend flaky(3);
  NodeProfiler profiler(engine, world, 0);
  ASSERT_TRUE(profiler.add_backend(flaky).is_ok());
  ASSERT_TRUE(profiler.set_polling_interval(Duration::millis(100)).is_ok());
  ASSERT_TRUE(profiler.initialize().is_ok());
  engine.run_until(SimTime::from_seconds(1));
  ASSERT_TRUE(profiler.finalize().is_ok());
  // Poll 1 failed (attempt + its bounded retry); poll 2's first attempt
  // failed but its retry succeeded, so polls 2..10 all delivered.
  EXPECT_EQ(profiler.samples().size(), 9u);
  // The failure window shows up as one closed gap carrying the backend's
  // failure reason, a health round trip, and exactly one degraded poll.
  EXPECT_EQ(profiler.backend_health(0).state(), BackendState::kHealthy);
  EXPECT_GE(profiler.backend_health(0).retries(), 1u);
  ASSERT_EQ(profiler.gaps().size(), 2u);
  EXPECT_TRUE(profiler.gaps()[0].is_start);
  EXPECT_EQ(profiler.gaps()[0].backend, "flaky");
  EXPECT_EQ(profiler.gaps()[0].reason, "collection source not ready");
  EXPECT_FALSE(profiler.gaps()[1].is_start);
  EXPECT_EQ(profiler.degraded_polls(), 1u);
}

TEST(Profiler, CollectionStopsAfterFinalize) {
  Fixture f;
  ASSERT_TRUE(f.profiler.initialize().is_ok());
  f.engine.run_until(SimTime::from_seconds(5));
  ASSERT_TRUE(f.profiler.finalize().is_ok());
  const auto n = f.profiler.samples().size();
  f.engine.run_until(SimTime::from_seconds(20));
  EXPECT_EQ(f.profiler.samples().size(), n);
}

TEST(Profiler, BufferExhaustionDropsAndCounts) {
  Fixture f;
  ProfilerOptions options;
  options.max_samples = 50;
  NodeProfiler small(f.engine, f.world, 0, options);
  ASSERT_TRUE(small.add_backend(f.backend).is_ok());
  ASSERT_TRUE(small.initialize().is_ok());
  f.engine.run_until(SimTime::from_seconds(10));
  ASSERT_TRUE(small.finalize().is_ok());
  EXPECT_EQ(small.samples().size(), 50u);
  EXPECT_GT(small.dropped_samples(), 0u);
}

TEST(Profiler, TaggingLifecycle) {
  Fixture f;
  ASSERT_TRUE(f.profiler.initialize().is_ok());
  f.engine.run_until(SimTime::from_seconds(1));
  EXPECT_TRUE(f.profiler.start_tag("loop1").is_ok());
  f.engine.run_until(SimTime::from_seconds(2));
  EXPECT_TRUE(f.profiler.end_tag("loop1").is_ok());
  EXPECT_EQ(f.profiler.tags().size(), 2u);
  EXPECT_TRUE(f.profiler.tags()[0].is_start);
  EXPECT_DOUBLE_EQ(f.profiler.tags()[1].t.to_seconds(), 2.0);
}

TEST(Profiler, EndTagWithoutStartFails) {
  Fixture f;
  ASSERT_TRUE(f.profiler.initialize().is_ok());
  EXPECT_EQ(f.profiler.end_tag("nope").code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(f.profiler.start_tag("a").is_ok());
  ASSERT_TRUE(f.profiler.end_tag("a").is_ok());
  EXPECT_EQ(f.profiler.end_tag("a").code(), StatusCode::kFailedPrecondition);
}

TEST(Profiler, TagBeforeInitializeFails) {
  Fixture f;
  EXPECT_EQ(f.profiler.start_tag("early").code(), StatusCode::kFailedPrecondition);
}

TEST(Profiler, NestedAndRepeatedTags) {
  Fixture f;
  ASSERT_TRUE(f.profiler.initialize().is_ok());
  ASSERT_TRUE(f.profiler.start_tag("outer").is_ok());
  ASSERT_TRUE(f.profiler.start_tag("inner").is_ok());
  ASSERT_TRUE(f.profiler.end_tag("inner").is_ok());
  ASSERT_TRUE(f.profiler.start_tag("inner").is_ok());
  ASSERT_TRUE(f.profiler.end_tag("inner").is_ok());
  ASSERT_TRUE(f.profiler.end_tag("outer").is_ok());
  EXPECT_EQ(f.profiler.tags().size(), 6u);
}

TEST(Profiler, OutputFileRendered) {
  Fixture f;
  ASSERT_TRUE(f.profiler.initialize().is_ok());
  f.engine.run_until(SimTime::from_seconds(3));
  ASSERT_TRUE(f.profiler.start_tag("work").is_ok());
  f.engine.run_until(SimTime::from_seconds(4));
  ASSERT_TRUE(f.profiler.end_tag("work").is_ok());
  ASSERT_TRUE(f.profiler.finalize(&f.fs, &f.output).is_ok());
  ASSERT_EQ(f.output.files().size(), 1u);
  const auto& [name, content] = *f.output.files().begin();
  EXPECT_EQ(name, "moneq_node_00000.csv");
  EXPECT_NE(content.find("time_s,domain,quantity,unit,value"), std::string::npos);
  EXPECT_NE(content.find("chip_core"), std::string::npos);
  EXPECT_NE(content.find("#TAG_START"), std::string::npos);
  EXPECT_NE(content.find("#TAG_END"), std::string::npos);
}

TEST(Profiler, OverheadAccountsAllPhases) {
  Fixture f;
  ASSERT_TRUE(f.profiler.initialize().is_ok());
  f.engine.run_until(SimTime::from_seconds(10));
  ASSERT_TRUE(f.profiler.finalize(&f.fs, nullptr).is_ok());
  const auto report = f.profiler.overhead();
  EXPECT_GT(report.initialize.ns(), 0);
  EXPECT_GT(report.collection.ns(), 0);
  EXPECT_GT(report.finalize.ns(), 0);
  EXPECT_EQ(report.total().ns(),
            report.initialize.ns() + report.collection.ns() + report.finalize.ns());
  // 17 polls x 1.10 ms.
  EXPECT_NEAR(report.collection.to_millis(), 17 * 1.10, 0.01);
}

// The paper's Listing 1 flow (Setup Power / user code / Finalize Power)
// on the typed surface that replaced the removed MonEQ_* C shims.
TEST(ListingOne, TypedStatusFlow) {
  Fixture f;
  ASSERT_TRUE(f.profiler.initialize().is_ok());          // Setup Power
  f.engine.run_until(SimTime::from_seconds(5));          // User code
  ASSERT_TRUE(f.profiler.finalize(&f.fs, &f.output).is_ok());  // Finalize Power
  EXPECT_FALSE(f.output.files().empty());
}

TEST(ListingOne, PollingIntervalValidation) {
  Fixture f;
  EXPECT_EQ(f.profiler.set_polling_interval(Duration::from_seconds(-1.0)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(f.profiler.set_polling_interval(Duration::from_seconds(0.1)).code(),
            StatusCode::kOutOfRange);  // below the hardware floor
  EXPECT_TRUE(f.profiler.set_polling_interval(Duration::seconds(1)).is_ok());
  ASSERT_TRUE(f.profiler.initialize().is_ok());
  EXPECT_EQ(f.profiler.set_polling_interval(Duration::seconds(2)).code(),
            StatusCode::kFailedPrecondition);  // too late
}

TEST(ListingOne, TagLifecycle) {
  Fixture f;
  ASSERT_TRUE(f.profiler.initialize().is_ok());
  EXPECT_TRUE(f.profiler.start_tag("loop").is_ok());
  EXPECT_TRUE(f.profiler.end_tag("loop").is_ok());
  EXPECT_EQ(f.profiler.end_tag("loop").code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace envmon::moneq
