// Tests for the Section IV "stated limitations" introspection.

#include <gtest/gtest.h>

#include "bgq/emon.hpp"
#include "bgq/machine.hpp"
#include "moneq/backend_bgq.hpp"
#include "moneq/backend_mic.hpp"
#include "moneq/backend_nvml.hpp"
#include "moneq/backend_rapl.hpp"

namespace envmon::moneq {
namespace {

TEST(Limitations, BgqScopeIsNodeCard) {
  bgq::BgqMachine machine;
  bgq::EmonSession emon(machine.board(0));
  BgqBackend backend(emon);
  const auto l = backend.limitations();
  EXPECT_NE(l.scope.find("32 nodes"), std::string::npos);
  EXPECT_FALSE(l.perturbs_measurement);
  EXPECT_FALSE(l.requires_privilege);
  // Stale by up to two generations: 1.12 s.
  EXPECT_EQ(l.worst_case_staleness.to_millis(), 1120.0);
}

TEST(Limitations, RaplNeedsRootAndHasCeiling) {
  sim::Engine engine;
  rapl::CpuPackage pkg(engine);
  rapl::MsrRaplReader reader(pkg, rapl::Credentials{true, 0});
  RaplBackend backend(reader);
  const auto l = backend.limitations();
  EXPECT_TRUE(l.requires_privilege);
  EXPECT_NE(l.caveats.find("overfill"), std::string::npos);
  EXPECT_EQ(backend.max_polling_interval(), sim::Duration::seconds(60));
}

TEST(Limitations, NvmlAccuracyBandIsFiveWatts) {
  sim::Engine engine;
  nvml::NvmlLibrary lib(engine);
  lib.attach_device(std::make_shared<nvml::GpuDevice>(nvml::k20_spec()));
  (void)lib.init();
  nvml::NvmlDeviceHandle handle;
  (void)lib.device_get_handle_by_index(0, &handle);
  NvmlBackend backend(lib, handle);
  const auto l = backend.limitations();
  EXPECT_DOUBLE_EQ(l.accuracy_band, 5.0);
  EXPECT_NE(l.scope.find("including memory"), std::string::npos);
}

TEST(Limitations, OnlyInbandPhiPerturbs) {
  sim::Engine engine;
  mic::PhiCard card(engine);
  mic::ScifNetwork net;
  mic::SysMgmtService service(card, net, 1);
  auto client = mic::SysMgmtClient::connect(net, 1);
  ASSERT_TRUE(client.is_ok());
  MicInbandBackend api(client.value());
  mic::MicrasDaemon daemon(card);
  MicDaemonBackend dmn(daemon);
  EXPECT_TRUE(api.limitations().perturbs_measurement);
  EXPECT_FALSE(dmn.limitations().perturbs_measurement);
  EXPECT_NE(dmn.limitations().caveats.find("contends"), std::string::npos);
}

}  // namespace
}  // namespace envmon::moneq
