#include "moneq/csv_reader.hpp"

#include <gtest/gtest.h>

#include "moneq/output.hpp"

namespace envmon::moneq {
namespace {

using sim::SimTime;

std::vector<Sample> make_samples() {
  return {
      {SimTime::from_seconds(1.0), "PKG", Quantity::kPowerWatts, 40.0},
      {SimTime::from_seconds(1.0), "die_temp", Quantity::kTemperatureCelsius, 55.0},
      {SimTime::from_seconds(2.0), "PKG", Quantity::kPowerWatts, 42.0},
      {SimTime::from_seconds(3.0), "PKG", Quantity::kPowerWatts, 44.0},
  };
}

std::vector<TagMarker> make_tags() {
  return {
      {SimTime::from_seconds(1.5), "loop", true},
      {SimTime::from_seconds(2.5), "loop", false},
  };
}

TEST(CsvReader, RoundTripThroughRenderer) {
  const auto samples = make_samples();
  const auto tags = make_tags();
  const std::string text = render_node_file(samples, tags);
  const auto parsed = parse_node_file(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status();
  const auto& data = parsed.value();
  ASSERT_EQ(data.samples.size(), samples.size());
  ASSERT_EQ(data.tags.size(), tags.size());
  EXPECT_EQ(data.samples[0].domain, "PKG");
  EXPECT_DOUBLE_EQ(data.samples[0].value, 40.0);
  EXPECT_EQ(data.samples[1].quantity, Quantity::kTemperatureCelsius);
  EXPECT_EQ(data.tags[0].name, "loop");
  EXPECT_TRUE(data.tags[0].is_start);
  EXPECT_FALSE(data.tags[1].is_start);
}

TEST(CsvReader, RejectsWrongHeader) {
  EXPECT_FALSE(parse_node_file("a,b,c\n1,2,3\n").is_ok());
  EXPECT_FALSE(parse_node_file("").is_ok());
}

TEST(CsvReader, RejectsMalformedRows) {
  EXPECT_FALSE(
      parse_node_file("time_s,domain,quantity,unit,value\nnot_a_number,PKG,0,W,1\n").is_ok());
  EXPECT_FALSE(
      parse_node_file("time_s,domain,quantity,unit,value\n1.0,PKG,zero,W,1\n").is_ok());
}

TEST(CsvReader, ExtractSeriesFiltersDomainAndQuantity) {
  const auto data = parse_node_file(render_node_file(make_samples(), make_tags())).value();
  const auto series = extract_series(data, "PKG", Quantity::kPowerWatts);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[2].value, 44.0);
  EXPECT_TRUE(extract_series(data, "PKG", Quantity::kFanRpm).empty());
  EXPECT_TRUE(extract_series(data, "nope", Quantity::kPowerWatts).empty());
}

TEST(CsvReader, MeanBetweenTags) {
  const auto data = parse_node_file(render_node_file(make_samples(), make_tags())).value();
  const auto mean = mean_between_tags(data, "loop", "PKG", Quantity::kPowerWatts);
  ASSERT_TRUE(mean.is_ok());
  EXPECT_DOUBLE_EQ(mean.value(), 42.0);  // only the t=2.0 sample is inside
}

TEST(CsvReader, MeanBetweenTagsMissingTag) {
  const auto data = parse_node_file(render_node_file(make_samples(), {})).value();
  EXPECT_EQ(mean_between_tags(data, "loop", "PKG", Quantity::kPowerWatts).status().code(),
            StatusCode::kNotFound);
}

TEST(CsvReader, HandlesEmptySampleSet) {
  const std::string text = render_node_file({}, {});
  const auto parsed = parse_node_file(text);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_TRUE(parsed.value().samples.empty());
}

}  // namespace
}  // namespace envmon::moneq
