#include <gtest/gtest.h>

#include "tools/powerpack.hpp"
#include "tools/tau.hpp"
#include "workloads/library.hpp"

namespace envmon::tools {
namespace {

using sim::Duration;
using sim::SimTime;

TEST(Tau, StartStopLifecycle) {
  sim::Engine engine;
  rapl::CpuPackage pkg(engine);
  TauPowerProfiler tau(engine, pkg, rapl::Credentials{true, 0});
  ASSERT_TRUE(tau.start().is_ok());
  EXPECT_EQ(tau.start().code(), StatusCode::kFailedPrecondition);
  engine.run_until(SimTime::from_seconds(1));
  ASSERT_TRUE(tau.stop().is_ok());
  EXPECT_EQ(tau.stop().code(), StatusCode::kFailedPrecondition);
}

TEST(Tau, RaplOnlyPermissionSurfacesAtStart) {
  sim::Engine engine;
  rapl::CpuPackage pkg(engine);
  TauPowerProfiler tau(engine, pkg, rapl::Credentials{false, 1000});
  const Status s = tau.start();
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
}

TEST(Tau, AttributesEnergyToRegions) {
  sim::Engine engine;
  rapl::CpuPackage pkg(engine);
  // Low phase then high phase, each 10 s.
  power::ProfileBuilder b;
  b.phase(Duration::seconds(10), "low", {{power::Rail::kCpuCore, 0.1}});
  b.phase(Duration::seconds(10), "high", {{power::Rail::kCpuCore, 0.9}});
  const auto w = std::move(b).build();
  pkg.run_workload(&w, SimTime::zero());

  TauPowerProfiler tau(engine, pkg, rapl::Credentials{true, 0});
  ASSERT_TRUE(tau.start().is_ok());
  ASSERT_TRUE(tau.region_start("low_region").is_ok());
  engine.run_until(SimTime::from_seconds(10));
  ASSERT_TRUE(tau.region_stop("low_region").is_ok());
  ASSERT_TRUE(tau.region_start("high_region").is_ok());
  engine.run_until(SimTime::from_seconds(20));
  ASSERT_TRUE(tau.region_stop("high_region").is_ok());
  ASSERT_TRUE(tau.stop().is_ok());

  double low_w = 0.0, high_w = 0.0;
  for (const auto& p : tau.profiles()) {
    if (p.name == "low_region") low_w = p.mean_power().value();
    if (p.name == "high_region") high_w = p.mean_power().value();
  }
  EXPECT_NEAR(low_w, 1.6 + 0.1 * 42.0 + 1.9, 1.0);
  EXPECT_NEAR(high_w, 1.6 + 0.9 * 42.0 + 1.9, 1.0);
  EXPECT_GT(high_w, low_w + 25.0);
}

TEST(Tau, MismatchedRegionStopFails) {
  sim::Engine engine;
  rapl::CpuPackage pkg(engine);
  TauPowerProfiler tau(engine, pkg, rapl::Credentials{true, 0});
  ASSERT_TRUE(tau.start().is_ok());
  ASSERT_TRUE(tau.region_start("a").is_ok());
  EXPECT_FALSE(tau.region_stop("b").is_ok());
  ASSERT_TRUE(tau.region_stop("a").is_ok());
}

TEST(Tau, OpenRegionAtStopReported) {
  sim::Engine engine;
  rapl::CpuPackage pkg(engine);
  TauPowerProfiler tau(engine, pkg, rapl::Credentials{true, 0});
  ASSERT_TRUE(tau.start().is_ok());
  ASSERT_TRUE(tau.region_start("never_closed").is_ok());
  engine.run_until(SimTime::from_seconds(1));
  EXPECT_EQ(tau.stop().code(), StatusCode::kFailedPrecondition);
}

TEST(Tau, RegionRequiresRunningProfiler) {
  sim::Engine engine;
  rapl::CpuPackage pkg(engine);
  TauPowerProfiler tau(engine, pkg, rapl::Credentials{true, 0});
  EXPECT_EQ(tau.region_start("x").code(), StatusCode::kFailedPrecondition);
}

TEST(Psu, EfficiencyCurveShape) {
  const PsuModel psu;
  EXPECT_DOUBLE_EQ(psu.efficiency(Watts{0.0}), 0.85);
  EXPECT_DOUBLE_EQ(psu.efficiency(Watts{400.0}), 0.90);  // 50% of 800 W
  EXPECT_DOUBLE_EQ(psu.efficiency(Watts{800.0}), 0.87);
  EXPECT_DOUBLE_EQ(psu.efficiency(Watts{2000.0}), 0.87);  // clamped
  // AC input always exceeds DC load.
  for (double w = 10.0; w < 800.0; w += 50.0) {
    EXPECT_GT(psu.ac_input(Watts{w}).value(), w);
  }
}

TEST(WattsUp, OneHertzLogOfWallPower) {
  sim::Engine engine;
  power::DevicePowerModel node;
  node.set_rail(power::Rail::kCpuCore, power::RailModel{Watts{40.0}, Watts{80.0}, Volts{1.0}});
  const auto w = workloads::dgemm({Duration::seconds(30), 1.0, 0.0});
  node.run_workload(&w, SimTime::zero());

  WattsUpMeter meter(engine, node);
  meter.start();
  engine.run_until(SimTime::from_seconds(30));
  meter.stop();
  ASSERT_EQ(meter.log().size(), 30u);
  // DC 120 W through the PSU: ~133-141 W AC.  The final tick lands at
  // the workload's end boundary (idle again), so skip it.
  for (std::size_t i = 0; i + 1 < meter.log().size(); ++i) {
    EXPECT_GT(meter.log()[i].value, 125.0);
    EXPECT_LT(meter.log()[i].value, 150.0);
  }
  // Stopped meter stops logging.
  engine.run_until(SimTime::from_seconds(60));
  EXPECT_EQ(meter.log().size(), 30u);
}

TEST(WattsUp, SeesPsuLossVendorMechanismsDoNot) {
  sim::Engine engine;
  power::DevicePowerModel node;
  node.set_rail(power::Rail::kCpuCore, power::RailModel{Watts{100.0}, Watts{0.0}, Volts{1.0}});
  WattsUpMeter meter(engine, node);
  meter.start();
  engine.run_until(SimTime::from_seconds(5));
  double mean = 0.0;
  for (const auto& p : meter.log()) mean += p.value;
  mean /= static_cast<double>(meter.log().size());
  const double dc = node.total_power_at(engine.now()).value();
  EXPECT_GT(mean, dc * 1.05);  // conversion loss visible at the wall
}

TEST(NiDaq, ResolvesSingleRailAtKilohertz) {
  sim::Engine engine;
  power::DevicePowerModel node;
  node.set_rail(power::Rail::kCpuCore, power::RailModel{Watts{10.0}, Watts{40.0}, Volts{1.0}});
  node.set_rail(power::Rail::kDram, power::RailModel{Watts{5.0}, Watts{20.0}, Volts{1.35}});
  const auto w = workloads::stream({Duration::seconds(2)});
  node.run_workload(&w, SimTime::zero());

  NiDaqChannel dram_channel(engine, node, power::Rail::kDram);
  dram_channel.start();
  engine.run_until(SimTime::from_seconds(2));
  dram_channel.stop();
  ASSERT_EQ(dram_channel.log().size(), 2000u);  // 1 kHz
  // STREAM: dram util 0.95 -> 5 + 19 = 24 W, and the channel sees only
  // that rail (mid-run sample; the final tick lands at the end boundary).
  EXPECT_NEAR(dram_channel.log()[1000].value, 24.0, 0.5);
}

TEST(NiDaq, CapturesTransientsTheNvmlSensorHides) {
  sim::Engine engine;
  power::DevicePowerModel node;
  node.set_rail(power::Rail::kCpuCore, power::RailModel{Watts{10.0}, Watts{100.0}, Volts{1.0}});
  // A 50 ms burst.
  power::ProfileBuilder b;
  b.phase(Duration::millis(475), "idle", {});
  b.phase(Duration::millis(50), "burst", {{power::Rail::kCpuCore, 1.0}});
  b.phase(Duration::millis(475), "idle", {});
  const auto w = std::move(b).build();
  node.run_workload(&w, SimTime::zero());

  NiDaqChannel channel(engine, node, power::Rail::kCpuCore);
  channel.start();
  engine.run_until(SimTime::from_seconds(1));
  double peak = 0.0;
  for (const auto& p : channel.log()) peak = std::max(peak, p.value);
  EXPECT_GT(peak, 105.0);  // the full 110 W burst is visible at 1 kHz
}

}  // namespace
}  // namespace envmon::tools
