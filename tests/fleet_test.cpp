// The fleet engine's contract: same seed → byte-identical output no
// matter how many worker threads advanced the fleet.  These tests are
// also the TSan workload for the engine (ctest -L fleet with
// -DENVMON_TSAN=ON): every assertion doubles as a data-race probe on the
// epoch barrier, the staging buffers, and the ingest queue.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "fleet/api.hpp"
#include "moneq/factory.hpp"
#include "moneq/output.hpp"
#include "tsdb/export.hpp"

namespace envmon {
namespace {

using fleet::FleetConfig;
using fleet::FleetRunner;
using sim::Duration;
using sim::SimTime;

// One complete fleet run; returns {concatenated node files, db csv}.
struct RunOutput {
  std::string files;
  std::string db_csv;
  fleet::FleetReport report;
};

RunOutput run_fleet(FleetConfig config) {
  moneq::MemoryOutput output;
  config.output = &output;
  FleetRunner runner;
  EXPECT_TRUE(runner.configure(std::move(config)).is_ok());
  EXPECT_TRUE(runner.run().is_ok());
  RunOutput out;
  for (const auto& [name, content] : output.files()) {
    out.files += "== " + name + "\n" + content;
  }
  out.db_csv = tsdb::export_csv(runner.database());
  const auto report = runner.report();
  EXPECT_TRUE(report.is_ok());
  out.report = report.value();
  return out;
}

FleetConfig small_fleet() {
  FleetConfig config;
  config.nodes = 12;
  config.capabilities = {moneq::Capability::kBgqEmon, moneq::Capability::kRaplMsr};
  config.epoch = Duration::seconds(1);
  config.horizon = Duration::seconds(8);
  config.polling_interval = Duration::millis(500);
  config.seed = 0xfee7f1ee7ull;
  // Per-sample ingest exercises the heaviest merge path.
  config.ingest = fleet::IngestMode::kPerSample;
  config.database.max_insert_rate_per_second = 1u << 20;  // not under test here
  return config;
}

TEST(Fleet, OneThreadRunProducesData) {
  const RunOutput out = run_fleet(small_fleet());
  EXPECT_EQ(out.report.nodes, 12);
  EXPECT_EQ(out.report.threads, 1);
  EXPECT_EQ(out.report.epochs, 8u);
  EXPECT_GT(out.report.polls, 0u);
  EXPECT_GT(out.report.samples, 0u);
  EXPECT_GT(out.report.records_staged, 0u);
  // Every staged record must land: per-node streams are time-ordered and
  // the barrier merge sorts across nodes, so nothing is out of order.
  EXPECT_EQ(out.report.records_applied, out.report.records_staged);
  EXPECT_EQ(out.report.rejected_out_of_order, 0u);
  EXPECT_EQ(out.report.database_rows, out.report.records_applied);
  EXPECT_NE(out.files.find("== moneq_node_00000.csv"), std::string::npos);
  EXPECT_NE(out.db_csv.find("moneq_"), std::string::npos);
}

TEST(Fleet, DeterministicAcrossThreadCounts) {
  const RunOutput one = run_fleet(small_fleet());
  for (const int threads : {2, 8}) {
    FleetConfig config = small_fleet();
    config.threads = threads;
    const RunOutput many = run_fleet(std::move(config));
    EXPECT_EQ(one.files, many.files) << threads << " threads: node files diverged";
    EXPECT_EQ(one.db_csv, many.db_csv) << threads << " threads: database diverged";
    EXPECT_EQ(one.report.samples, many.report.samples);
    EXPECT_EQ(one.report.records_applied, many.report.records_applied);
  }
}

TEST(Fleet, NodePowerIngestIsDeterministicToo) {
  FleetConfig base = small_fleet();
  base.ingest = fleet::IngestMode::kNodePower;
  const RunOutput one = run_fleet(base);
  EXPECT_GT(one.report.records_applied, 0u);
  // Aggregate mode stages far fewer records than per-sample mode.
  EXPECT_LT(one.report.records_applied, run_fleet(small_fleet()).report.records_applied);
  FleetConfig eight = small_fleet();
  eight.ingest = fleet::IngestMode::kNodePower;
  eight.threads = 8;
  const RunOutput many = run_fleet(std::move(eight));
  EXPECT_EQ(one.db_csv, many.db_csv);
}

TEST(Fleet, FaultStormIsDeterministicUnderEightThreads) {
  // Storm: every third node loses its RAPL MSR for good mid-run, every
  // fourth sees a transient EMON outage.  Schedules are per-node virtual
  // time, so the storm replays identically at any worker count.
  auto storm = [](fault::Injector& injector, int node) {
    if (node % 3 == 0) {
      injector.kill_at(fault::sites::kRaplMsr, SimTime::from_seconds(3));
    }
    if (node % 4 == 0) {
      injector.fail_between(fault::sites::kEmon, SimTime::from_seconds(2),
                            SimTime::from_seconds(5), StatusCode::kUnavailable,
                            "emon generation stalled");
    }
  };
  FleetConfig base = small_fleet();
  base.nodes = 16;
  base.fault_script = storm;
  const RunOutput two = [&] {
    FleetConfig config = base;
    config.threads = 2;
    return run_fleet(std::move(config));
  }();
  const RunOutput eight = [&] {
    FleetConfig config = base;
    config.threads = 8;
    return run_fleet(std::move(config));
  }();
  EXPECT_GT(two.report.degraded_polls, 0u);
  EXPECT_GT(two.report.gap_markers, 0u);
  EXPECT_EQ(two.files, eight.files);
  EXPECT_EQ(two.db_csv, eight.db_csv);
  EXPECT_EQ(two.report.degraded_polls, eight.report.degraded_polls);
  EXPECT_EQ(two.report.gap_markers, eight.report.gap_markers);
}

// FNV-1a over the whole output: cheap to compare across runs without
// holding three copies of a multi-thousand-node fleet's files.
std::uint64_t fnv1a(const std::string& data) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

TEST(Fleet, LargeFleetIsByteIdenticalAcrossThreadCounts) {
  // The 100k-scale oracle at test size: >= 4096 nodes under the PR-3
  // fault storm, work-stealing scheduler with real epoch skew, node
  // files + database digests byte-identical at 1, 2, and 8 threads.
  auto storm = [](fault::Injector& injector, int node) {
    if (node % 3 == 0) {
      injector.kill_at(fault::sites::kRaplMsr, SimTime::from_seconds(1));
    }
    if (node % 4 == 0) {
      injector.fail_between(fault::sites::kEmon, SimTime::from_seconds(1),
                            SimTime::from_seconds(2), StatusCode::kUnavailable,
                            "emon generation stalled");
    }
  };
  auto config_for = [&](int threads) {
    FleetConfig config;
    config.nodes = 4096;
    config.threads = threads;
    config.capabilities = {moneq::Capability::kBgqEmon, moneq::Capability::kRaplMsr};
    config.epoch = Duration::seconds(1);
    config.horizon = Duration::seconds(3);
    config.polling_interval = Duration::millis(500);
    config.seed = 0xfee7f1ee7ull;
    config.ingest = fleet::IngestMode::kNodePower;
    config.database.max_insert_rate_per_second = 1u << 20;
    config.fault_script = storm;
    return config;
  };

  std::uint64_t file_digest = 0;
  std::uint64_t db_digest = 0;
  fleet::FleetReport baseline;
  for (const int threads : {1, 2, 8}) {
    const RunOutput out = run_fleet(config_for(threads));
    EXPECT_EQ(out.report.threads, threads);
    if (threads == 1) {
      EXPECT_EQ(out.report.shards, 1);
      file_digest = fnv1a(out.files);
      db_digest = fnv1a(out.db_csv);
      baseline = out.report;
      EXPECT_GT(baseline.degraded_polls, 0u);
      EXPECT_GT(baseline.gap_markers, 0u);
      continue;
    }
    // Multi-thread runs over-partition so idle workers can steal.
    EXPECT_GT(out.report.shards, threads);
    EXPECT_EQ(fnv1a(out.files), file_digest) << threads << " threads: node files diverged";
    EXPECT_EQ(fnv1a(out.db_csv), db_digest) << threads << " threads: database diverged";
    EXPECT_EQ(out.report.samples, baseline.samples);
    EXPECT_EQ(out.report.degraded_polls, baseline.degraded_polls);
    EXPECT_EQ(out.report.gap_markers, baseline.gap_markers);
    EXPECT_EQ(out.report.liveness_transitions, baseline.liveness_transitions);
    EXPECT_EQ(out.report.nodes_alive, baseline.nodes_alive);
  }
  // The storm quarantines backends, never whole nodes: each node keeps a
  // live backend, so the detector holds the entire fleet Alive.
  EXPECT_EQ(baseline.nodes_alive, 4096);
  EXPECT_EQ(baseline.nodes_dead, 0);
  EXPECT_EQ(baseline.liveness_transitions, 4096u);
}

TEST(Fleet, ReportCarriesSchedulerAndMemoryAccounting) {
  FleetConfig config = small_fleet();
  config.threads = 4;
  config.shards = 8;
  config.epoch_window = 2;
  const RunOutput out = run_fleet(std::move(config));
  EXPECT_EQ(out.report.shards, 8);
  EXPECT_EQ(out.report.nodes_alive, 12);
  EXPECT_EQ(out.report.liveness_transitions, 12u);
  // Linux hosts report RSS; the per-node share derives from it.
  if (out.report.rss_bytes > 0) {
    EXPECT_GE(out.report.peak_rss_bytes, out.report.rss_bytes);
    EXPECT_GT(out.report.bytes_per_node, 0.0);
  }
}

TEST(Fleet, IngestQueueBackpressureBlocksProducer) {
  fleet::IngestQueue queue(1);
  ASSERT_TRUE(queue.push({.epoch = 0, .nodes = {}, .rows = 0}));
  std::atomic<bool> second_push_done{false};
  std::thread producer([&] {
    ASSERT_TRUE(queue.push({.epoch = 1, .nodes = {}, .rows = 0}));
    second_push_done.store(true);
  });
  // The queue is full: the producer must park until we pop.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_push_done.load());
  EXPECT_EQ(queue.depth(), 1u);
  auto first = queue.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->epoch, 0u);
  producer.join();
  EXPECT_TRUE(second_push_done.load());
  EXPECT_EQ(queue.stalls(), 1u);
  EXPECT_GT(queue.stall_seconds(), 0.0);
}

TEST(Fleet, IngestQueueCloseDrainsThenEnds) {
  fleet::IngestQueue queue(4);
  ASSERT_TRUE(queue.push({.epoch = 7, .nodes = {}, .rows = 0}));
  queue.close();
  EXPECT_FALSE(queue.push({.epoch = 8, .nodes = {}, .rows = 0}));
  auto drained = queue.pop();
  ASSERT_TRUE(drained.has_value());
  EXPECT_EQ(drained->epoch, 7u);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(Fleet, RunnerLifecycleIsEnforced) {
  FleetRunner runner;
  EXPECT_EQ(runner.run().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(runner.report().status().code(), StatusCode::kFailedPrecondition);
  FleetConfig config = small_fleet();
  config.horizon = Duration::seconds(1);
  ASSERT_TRUE(runner.configure(config).is_ok());
  EXPECT_EQ(runner.configure(config).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(runner.run().is_ok());
  EXPECT_EQ(runner.run().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(runner.report().is_ok());
}

TEST(Fleet, ConfigValidationRejectsNonsense) {
  auto expect_invalid = [](FleetConfig config) {
    FleetRunner runner;
    EXPECT_EQ(runner.configure(std::move(config)).code(), StatusCode::kInvalidArgument);
  };
  {
    FleetConfig config;
    config.nodes = 0;
    expect_invalid(std::move(config));
  }
  {
    FleetConfig config;
    config.threads = 0;
    expect_invalid(std::move(config));
  }
  {
    FleetConfig config;
    config.epoch = Duration::nanos(0);
    expect_invalid(std::move(config));
  }
  {
    FleetConfig config;
    config.capabilities.clear();
    expect_invalid(std::move(config));
  }
}

TEST(Fleet, FactoryRejectsMissingSubstrate) {
  const moneq::BackendConfig empty;
  for (const auto capability :
       {moneq::Capability::kBgqEmon, moneq::Capability::kRaplMsr, moneq::Capability::kNvml,
        moneq::Capability::kMicSysMgmt, moneq::Capability::kMicDaemon}) {
    const auto result = moneq::make_backend(capability, empty);
    EXPECT_FALSE(result.is_ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(Fleet, ApiVersionIsV2) {
  EXPECT_EQ(fleet::api_version_string(), "envmon.fleet/v2.1");
  EXPECT_EQ(fleet::kApiVersionMajor, 2);
  EXPECT_EQ(fleet::kApiVersionMinor, 1);
}

}  // namespace
}  // namespace envmon
