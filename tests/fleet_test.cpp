// The fleet engine's contract: same seed → byte-identical output no
// matter how many worker threads advanced the fleet.  These tests are
// also the TSan workload for the engine (ctest -L fleet with
// -DENVMON_TSAN=ON): every assertion doubles as a data-race probe on the
// epoch barrier, the staging buffers, and the ingest queue.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "fleet/api.hpp"
#include "moneq/factory.hpp"
#include "moneq/output.hpp"
#include "tsdb/export.hpp"

namespace envmon {
namespace {

using fleet::FleetConfig;
using fleet::FleetRunner;
using sim::Duration;
using sim::SimTime;

// One complete fleet run; returns {concatenated node files, db csv}.
struct RunOutput {
  std::string files;
  std::string db_csv;
  fleet::FleetReport report;
};

RunOutput run_fleet(FleetConfig config) {
  moneq::MemoryOutput output;
  config.output = &output;
  FleetRunner runner;
  EXPECT_TRUE(runner.configure(std::move(config)).is_ok());
  EXPECT_TRUE(runner.run().is_ok());
  RunOutput out;
  for (const auto& [name, content] : output.files()) {
    out.files += "== " + name + "\n" + content;
  }
  out.db_csv = tsdb::export_csv(runner.database());
  const auto report = runner.report();
  EXPECT_TRUE(report.is_ok());
  out.report = report.value();
  return out;
}

FleetConfig small_fleet() {
  FleetConfig config;
  config.nodes = 12;
  config.capabilities = {moneq::Capability::kBgqEmon, moneq::Capability::kRaplMsr};
  config.epoch = Duration::seconds(1);
  config.horizon = Duration::seconds(8);
  config.polling_interval = Duration::millis(500);
  config.seed = 0xfee7f1ee7ull;
  // Per-sample ingest exercises the heaviest merge path.
  config.ingest = fleet::IngestMode::kPerSample;
  config.database.max_insert_rate_per_second = 1u << 20;  // not under test here
  return config;
}

TEST(Fleet, OneThreadRunProducesData) {
  const RunOutput out = run_fleet(small_fleet());
  EXPECT_EQ(out.report.nodes, 12);
  EXPECT_EQ(out.report.threads, 1);
  EXPECT_EQ(out.report.epochs, 8u);
  EXPECT_GT(out.report.polls, 0u);
  EXPECT_GT(out.report.samples, 0u);
  EXPECT_GT(out.report.records_staged, 0u);
  // Every staged record must land: per-node streams are time-ordered and
  // the barrier merge sorts across nodes, so nothing is out of order.
  EXPECT_EQ(out.report.records_applied, out.report.records_staged);
  EXPECT_EQ(out.report.rejected_out_of_order, 0u);
  EXPECT_EQ(out.report.database_rows, out.report.records_applied);
  EXPECT_NE(out.files.find("== moneq_node_00000.csv"), std::string::npos);
  EXPECT_NE(out.db_csv.find("moneq_"), std::string::npos);
}

TEST(Fleet, DeterministicAcrossThreadCounts) {
  const RunOutput one = run_fleet(small_fleet());
  for (const int threads : {2, 8}) {
    FleetConfig config = small_fleet();
    config.threads = threads;
    const RunOutput many = run_fleet(std::move(config));
    EXPECT_EQ(one.files, many.files) << threads << " threads: node files diverged";
    EXPECT_EQ(one.db_csv, many.db_csv) << threads << " threads: database diverged";
    EXPECT_EQ(one.report.samples, many.report.samples);
    EXPECT_EQ(one.report.records_applied, many.report.records_applied);
  }
}

TEST(Fleet, NodePowerIngestIsDeterministicToo) {
  FleetConfig base = small_fleet();
  base.ingest = fleet::IngestMode::kNodePower;
  const RunOutput one = run_fleet(base);
  EXPECT_GT(one.report.records_applied, 0u);
  // Aggregate mode stages far fewer records than per-sample mode.
  EXPECT_LT(one.report.records_applied, run_fleet(small_fleet()).report.records_applied);
  FleetConfig eight = small_fleet();
  eight.ingest = fleet::IngestMode::kNodePower;
  eight.threads = 8;
  const RunOutput many = run_fleet(std::move(eight));
  EXPECT_EQ(one.db_csv, many.db_csv);
}

TEST(Fleet, FaultStormIsDeterministicUnderEightThreads) {
  // Storm: every third node loses its RAPL MSR for good mid-run, every
  // fourth sees a transient EMON outage.  Schedules are per-node virtual
  // time, so the storm replays identically at any worker count.
  auto storm = [](fault::Injector& injector, int node) {
    if (node % 3 == 0) {
      injector.kill_at(fault::sites::kRaplMsr, SimTime::from_seconds(3));
    }
    if (node % 4 == 0) {
      injector.fail_between(fault::sites::kEmon, SimTime::from_seconds(2),
                            SimTime::from_seconds(5), StatusCode::kUnavailable,
                            "emon generation stalled");
    }
  };
  FleetConfig base = small_fleet();
  base.nodes = 16;
  base.fault_script = storm;
  const RunOutput two = [&] {
    FleetConfig config = base;
    config.threads = 2;
    return run_fleet(std::move(config));
  }();
  const RunOutput eight = [&] {
    FleetConfig config = base;
    config.threads = 8;
    return run_fleet(std::move(config));
  }();
  EXPECT_GT(two.report.degraded_polls, 0u);
  EXPECT_GT(two.report.gap_markers, 0u);
  EXPECT_EQ(two.files, eight.files);
  EXPECT_EQ(two.db_csv, eight.db_csv);
  EXPECT_EQ(two.report.degraded_polls, eight.report.degraded_polls);
  EXPECT_EQ(two.report.gap_markers, eight.report.gap_markers);
}

TEST(Fleet, IngestQueueBackpressureBlocksProducer) {
  fleet::IngestQueue queue(1);
  ASSERT_TRUE(queue.push({.epoch = 0, .nodes = {}, .rows = 0}));
  std::atomic<bool> second_push_done{false};
  std::thread producer([&] {
    ASSERT_TRUE(queue.push({.epoch = 1, .nodes = {}, .rows = 0}));
    second_push_done.store(true);
  });
  // The queue is full: the producer must park until we pop.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_push_done.load());
  EXPECT_EQ(queue.depth(), 1u);
  auto first = queue.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->epoch, 0u);
  producer.join();
  EXPECT_TRUE(second_push_done.load());
  EXPECT_EQ(queue.stalls(), 1u);
  EXPECT_GT(queue.stall_seconds(), 0.0);
}

TEST(Fleet, IngestQueueCloseDrainsThenEnds) {
  fleet::IngestQueue queue(4);
  ASSERT_TRUE(queue.push({.epoch = 7, .nodes = {}, .rows = 0}));
  queue.close();
  EXPECT_FALSE(queue.push({.epoch = 8, .nodes = {}, .rows = 0}));
  auto drained = queue.pop();
  ASSERT_TRUE(drained.has_value());
  EXPECT_EQ(drained->epoch, 7u);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(Fleet, RunnerLifecycleIsEnforced) {
  FleetRunner runner;
  EXPECT_EQ(runner.run().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(runner.report().status().code(), StatusCode::kFailedPrecondition);
  FleetConfig config = small_fleet();
  config.horizon = Duration::seconds(1);
  ASSERT_TRUE(runner.configure(config).is_ok());
  EXPECT_EQ(runner.configure(config).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(runner.run().is_ok());
  EXPECT_EQ(runner.run().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(runner.report().is_ok());
}

TEST(Fleet, ConfigValidationRejectsNonsense) {
  auto expect_invalid = [](FleetConfig config) {
    FleetRunner runner;
    EXPECT_EQ(runner.configure(std::move(config)).code(), StatusCode::kInvalidArgument);
  };
  {
    FleetConfig config;
    config.nodes = 0;
    expect_invalid(std::move(config));
  }
  {
    FleetConfig config;
    config.threads = 0;
    expect_invalid(std::move(config));
  }
  {
    FleetConfig config;
    config.epoch = Duration::nanos(0);
    expect_invalid(std::move(config));
  }
  {
    FleetConfig config;
    config.capabilities.clear();
    expect_invalid(std::move(config));
  }
}

TEST(Fleet, FactoryRejectsMissingSubstrate) {
  const moneq::BackendConfig empty;
  for (const auto capability :
       {moneq::Capability::kBgqEmon, moneq::Capability::kRaplMsr, moneq::Capability::kNvml,
        moneq::Capability::kMicSysMgmt, moneq::Capability::kMicDaemon}) {
    const auto result = moneq::make_backend(capability, empty);
    EXPECT_FALSE(result.is_ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(Fleet, ApiVersionIsV2) {
  EXPECT_EQ(fleet::api_version_string(), "envmon.fleet/v2.0");
  EXPECT_EQ(fleet::kApiVersionMajor, 2);
}

}  // namespace
}  // namespace envmon
