// Deterministic fuzzing of the parsing boundaries: random bytes into the
// CSV parser, the IPMB decoder, and the MICRAS pseudo-file parsers must
// never crash and must either parse cleanly or fail with a Status.

#include <gtest/gtest.h>

#include <string>

#include "common/csv.hpp"
#include "common/rng.hpp"
#include "ipmi/bmc.hpp"
#include "ipmi/ipmb.hpp"
#include "mic/micras.hpp"
#include "moneq/csv_reader.hpp"

namespace envmon {
namespace {

std::string random_text(Rng& rng, std::size_t max_len) {
  // Biased toward CSV-relevant characters to reach deeper states.
  static constexpr char kAlphabet[] = "abc123,\"\n\r .:-#";
  std::string s;
  const auto len = rng.uniform_u64(max_len);
  s.reserve(len);
  for (std::uint64_t i = 0; i < len; ++i) {
    s.push_back(kAlphabet[rng.uniform_u64(sizeof(kAlphabet) - 1)]);
  }
  return s;
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, CsvParserNeverCrashes) {
  Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    const std::string input = random_text(rng, 200);
    const auto result = parse_csv(input);
    if (result.is_ok()) {
      // Parsed tables must be structurally sound.
      for (const auto& row : result.value().rows) {
        EXPECT_GE(row.size(), 1u);
      }
    } else {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST_P(FuzzSeeds, IpmbDecoderNeverCrashes) {
  Rng rng(GetParam() ^ 0xabcdef);
  for (int i = 0; i < 500; ++i) {
    std::vector<std::uint8_t> frame;
    const auto len = rng.uniform_u64(24);
    for (std::uint64_t j = 0; j < len; ++j) {
      frame.push_back(static_cast<std::uint8_t>(rng.uniform_u64(256)));
    }
    const auto decoded = ipmi::decode(frame);
    if (decoded.is_ok()) {
      // Anything that decodes must re-encode to the same frame.
      EXPECT_EQ(ipmi::encode(decoded.value()), frame);
    }
  }
}

TEST_P(FuzzSeeds, BmcSurvivesGarbageFrames) {
  Rng rng(GetParam() ^ 0x777);
  ipmi::Bmc bmc;
  (void)bmc.add_sensor(
      {0x01, "t", ipmi::SensorFactors{1.0, 0.0, 0, 0}, [] { return 20.0; }});
  for (int i = 0; i < 300; ++i) {
    std::vector<std::uint8_t> frame;
    const auto len = rng.uniform_u64(16);
    for (std::uint64_t j = 0; j < len; ++j) {
      frame.push_back(static_cast<std::uint8_t>(rng.uniform_u64(256)));
    }
    (void)bmc.submit(frame);  // must not crash; status either way
  }
}

TEST_P(FuzzSeeds, MicrasParsersNeverCrash) {
  Rng rng(GetParam() ^ 0x5151);
  for (int i = 0; i < 300; ++i) {
    const std::string input = random_text(rng, 120);
    (void)mic::parse_power_file(input);
    (void)mic::parse_thermal_file(input);
  }
}

TEST_P(FuzzSeeds, MoneqNodeFileParserNeverCrashes) {
  Rng rng(GetParam() ^ 0x9f9f);
  for (int i = 0; i < 200; ++i) {
    // Sometimes prepend the valid header so the row parser gets reached.
    std::string input = (i % 2 == 0) ? "time_s,domain,quantity,unit,value\n" : "";
    input += random_text(rng, 160);
    (void)moneq::parse_node_file(input);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace envmon
