// Deterministic fuzzing of the parsing boundaries: random bytes into the
// CSV parser, the IPMB decoder, the MICRAS pseudo-file parsers, and the
// sealed-block codecs must never crash and must either parse cleanly or
// fail with a Status (the codecs are total: bounded garbage in, values
// out, never UB).

#include <gtest/gtest.h>

#include <bit>
#include <limits>
#include <string>

#include "common/csv.hpp"
#include "common/rng.hpp"
#include "ipmi/bmc.hpp"
#include "ipmi/ipmb.hpp"
#include "mic/micras.hpp"
#include "moneq/csv_reader.hpp"
#include "tsdb/block.hpp"
#include "tsdb/codec.hpp"

namespace envmon {
namespace {

std::string random_text(Rng& rng, std::size_t max_len) {
  // Biased toward CSV-relevant characters to reach deeper states.
  static constexpr char kAlphabet[] = "abc123,\"\n\r .:-#";
  std::string s;
  const auto len = rng.uniform_u64(max_len);
  s.reserve(len);
  for (std::uint64_t i = 0; i < len; ++i) {
    s.push_back(kAlphabet[rng.uniform_u64(sizeof(kAlphabet) - 1)]);
  }
  return s;
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, CsvParserNeverCrashes) {
  Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    const std::string input = random_text(rng, 200);
    const auto result = parse_csv(input);
    if (result.is_ok()) {
      // Parsed tables must be structurally sound.
      for (const auto& row : result.value().rows) {
        EXPECT_GE(row.size(), 1u);
      }
    } else {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST_P(FuzzSeeds, IpmbDecoderNeverCrashes) {
  Rng rng(GetParam() ^ 0xabcdef);
  for (int i = 0; i < 500; ++i) {
    std::vector<std::uint8_t> frame;
    const auto len = rng.uniform_u64(24);
    for (std::uint64_t j = 0; j < len; ++j) {
      frame.push_back(static_cast<std::uint8_t>(rng.uniform_u64(256)));
    }
    const auto decoded = ipmi::decode(frame);
    if (decoded.is_ok()) {
      // Anything that decodes must re-encode to the same frame.
      EXPECT_EQ(ipmi::encode(decoded.value()), frame);
    }
  }
}

TEST_P(FuzzSeeds, BmcSurvivesGarbageFrames) {
  Rng rng(GetParam() ^ 0x777);
  ipmi::Bmc bmc;
  (void)bmc.add_sensor(
      {0x01, "t", ipmi::SensorFactors{1.0, 0.0, 0, 0}, [] { return 20.0; }});
  for (int i = 0; i < 300; ++i) {
    std::vector<std::uint8_t> frame;
    const auto len = rng.uniform_u64(16);
    for (std::uint64_t j = 0; j < len; ++j) {
      frame.push_back(static_cast<std::uint8_t>(rng.uniform_u64(256)));
    }
    (void)bmc.submit(frame);  // must not crash; status either way
  }
}

TEST_P(FuzzSeeds, MicrasParsersNeverCrash) {
  Rng rng(GetParam() ^ 0x5151);
  for (int i = 0; i < 300; ++i) {
    const std::string input = random_text(rng, 120);
    (void)mic::parse_power_file(input);
    (void)mic::parse_thermal_file(input);
  }
}

TEST_P(FuzzSeeds, MoneqNodeFileParserNeverCrashes) {
  Rng rng(GetParam() ^ 0x9f9f);
  for (int i = 0; i < 200; ++i) {
    // Sometimes prepend the valid header so the row parser gets reached.
    std::string input = (i % 2 == 0) ? "time_s,domain,quantity,unit,value\n" : "";
    input += random_text(rng, 160);
    (void)moneq::parse_node_file(input);
  }
}

TEST_P(FuzzSeeds, TsdbCodecsRoundTripArbitraryStreams) {
  Rng rng(GetParam() ^ 0x70d0);
  for (int round = 0; round < 40; ++round) {
    const std::size_t n = 1 + rng.uniform_u64(300);
    // Timestamps: a random walk with occasional wild jumps, duplicates,
    // and negative deltas; values: raw bit patterns, so NaN payloads,
    // ±inf, denormals, and -0.0 all appear.
    std::vector<std::int64_t> ts;
    std::vector<double> values;
    std::int64_t t = static_cast<std::int64_t>(rng.uniform_u64(1'000'000)) - 500'000;
    for (std::size_t i = 0; i < n; ++i) {
      switch (rng.uniform_u64(4)) {
        case 0: break;  // repeated timestamp
        case 1: t += static_cast<std::int64_t>(rng.uniform_u64(1'000)); break;
        case 2: t -= static_cast<std::int64_t>(rng.uniform_u64(1'000)); break;
        default: t += static_cast<std::int64_t>(rng.uniform_u64(1ull << 40)); break;
      }
      ts.push_back(t);
      values.push_back(std::bit_cast<double>(rng.uniform_u64(
          std::numeric_limits<std::uint64_t>::max())));
    }
    tsdb::BitWriter tw;
    tsdb::DeltaOfDeltaEncoder te;
    for (const std::int64_t v : ts) te.append(v, tw);
    tsdb::BitWriter vw;
    tsdb::XorEncoder ve;
    for (const double v : values) ve.append(v, vw);
    const auto ts_bytes = tw.take();
    const auto value_bytes = vw.take();

    tsdb::BitReader tr(ts_bytes);
    tsdb::DeltaOfDeltaDecoder td;
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(td.next(tr), ts[i]);
    tsdb::BitReader vr(value_bytes);
    tsdb::XorDecoder vd;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(std::bit_cast<std::uint64_t>(vd.next(vr)),
                std::bit_cast<std::uint64_t>(values[i]));
    }
  }
}

TEST_P(FuzzSeeds, TsdbDecodersSurviveGarbageStreams) {
  Rng rng(GetParam() ^ 0xb10c);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint8_t> bytes;
    const auto len = rng.uniform_u64(64);
    for (std::uint64_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<std::uint8_t>(rng.uniform_u64(256)));
    }
    // Bounded decodes over random bytes: arbitrary values, never UB.
    tsdb::BitReader tr(bytes);
    tsdb::DeltaOfDeltaDecoder td;
    for (int i = 0; i < 128; ++i) (void)td.next(tr);
    tsdb::BitReader vr(bytes);
    tsdb::XorDecoder vd;
    for (int i = 0; i < 128; ++i) (void)vd.next(vr);
  }
}

TEST_P(FuzzSeeds, TsdbBlockSealDecodeRoundTripsRandomColumns) {
  Rng rng(GetParam() ^ 0x5ea1);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 1 + rng.uniform_u64(tsdb::Block::kMaxRows);
    std::vector<std::int64_t> ts;
    std::vector<double> values;
    std::vector<std::uint64_t> seq;
    std::int64_t t = 0;
    std::uint64_t q = rng.uniform_u64(1'000);
    for (std::size_t i = 0; i < n; ++i) {
      t += static_cast<std::int64_t>(rng.uniform_u64(1'000'000'000));
      ts.push_back(t);
      values.push_back(std::bit_cast<double>(rng.uniform_u64(
          std::numeric_limits<std::uint64_t>::max())));
      q += 1 + rng.uniform_u64(5);
      seq.push_back(q);
    }
    const tsdb::Block block =
        tsdb::Block::seal(ts, values, seq, /*compress=*/round % 2 == 0);
    std::vector<std::int64_t> ts_out;
    std::vector<double> values_out;
    std::vector<std::uint64_t> seq_out;
    block.decode_timestamps(ts_out);
    block.decode_values(values_out);
    block.decode_seq(seq_out);
    ASSERT_EQ(ts_out, ts);
    ASSERT_EQ(seq_out, seq);
    ASSERT_EQ(values_out.size(), values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      ASSERT_EQ(std::bit_cast<std::uint64_t>(values_out[i]),
                std::bit_cast<std::uint64_t>(values[i]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace envmon
