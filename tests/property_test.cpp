// Property-based suites: invariants that must hold across randomized or
// swept parameter spaces, exercised with TEST_P.

#include <gtest/gtest.h>

#include <algorithm>

#include "bgq/emon.hpp"
#include "bgq/machine.hpp"
#include "common/rng.hpp"
#include "power/profile.hpp"
#include "power/sensor.hpp"
#include "rapl/registers.hpp"
#include "scenarios/scenarios.hpp"
#include "sim/engine.hpp"
#include "smpi/smpi.hpp"
#include "workloads/library.hpp"

namespace envmon {
namespace {

using power::Rail;
using sim::Duration;
using sim::SimTime;

// ---------------------------------------------------------------------
// UtilizationProfile: the analytic mean must equal a fine numerical
// integration for arbitrary random profiles (energy accounting in the
// RAPL model depends on this being exact).
class ProfileIntegralProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProfileIntegralProperty, AnalyticMeanMatchesNumericIntegral) {
  Rng rng(GetParam());
  power::ProfileBuilder b;
  const int phases = 2 + static_cast<int>(rng.uniform_u64(10));
  for (int i = 0; i < phases; ++i) {
    b.phase(Duration::millis(50 + static_cast<std::int64_t>(rng.uniform_u64(3000))), "p",
            {{Rail::kCpuCore, rng.uniform()}, {Rail::kDram, rng.uniform()}});
  }
  const auto profile = std::move(b).build();

  // Random window, possibly extending past the profile end.
  const double total_s = profile.total_duration().to_seconds();
  const double t0 = rng.uniform(0.0, total_s * 0.8);
  const double t1 = t0 + rng.uniform(0.01, total_s);
  const auto d0 = Duration::from_seconds(t0);
  const auto d1 = Duration::from_seconds(t1);

  for (const Rail rail : {Rail::kCpuCore, Rail::kDram}) {
    const double analytic = profile.mean_util(rail, d0, d1);
    // Midpoint rule at 0.1 ms.
    double sum = 0.0;
    std::int64_t n = 0;
    for (std::int64_t t = d0.ns() + 50'000; t < d1.ns(); t += 100'000) {
      sum += profile.util(rail, Duration::nanos(t));
      ++n;
    }
    const double numeric = n > 0 ? sum / static_cast<double>(n) : 0.0;
    EXPECT_NEAR(analytic, numeric, 5e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProfileIntegralProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99, 110, 121,
                                           132));

// ---------------------------------------------------------------------
// Sensor hold stage: without noise/quantization, every output value must
// be a value the input actually took (the sensor cannot fabricate data),
// and refresh timestamps must be non-decreasing.
class SensorHoldProperty : public ::testing::TestWithParam<int> {};

TEST_P(SensorHoldProperty, OutputsComeFromInputs) {
  const int period_ms = GetParam();
  power::SensorOptions o;
  o.update_period = Duration::millis(period_ms);
  o.update_jitter = Duration::millis(period_ms / 10);
  power::SensorPipeline sensor(o, Rng(7));

  Rng rng(static_cast<std::uint64_t>(period_ms) * 1337);
  std::vector<double> inputs;
  std::optional<SimTime> last_refresh;
  for (int i = 0; i < 500; ++i) {
    const auto t = SimTime::from_ns(static_cast<std::int64_t>(i) * 7'000'000);
    const double input = std::round(rng.uniform(0.0, 100.0) * 8.0);  // distinct-ish values
    inputs.push_back(input);
    const double output = sensor.sample(t, input);
    EXPECT_NE(std::find(inputs.begin(), inputs.end(), output), inputs.end())
        << "sensor fabricated value " << output;
    if (sensor.last_refresh()) {
      if (last_refresh) {
        EXPECT_GE(sensor.last_refresh()->ns(), last_refresh->ns());
      }
      last_refresh = sensor.last_refresh();
      EXPECT_LE(last_refresh->ns(), t.ns());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Periods, SensorHoldProperty, ::testing::Values(10, 35, 60, 100, 250));

// ---------------------------------------------------------------------
// EMON generations: for any generation period, a read at time t returns
// a generation that (a) has completed, (b) is at most two periods old,
// and (c) whose staggered sample instants all precede t.
class EmonGenerationProperty : public ::testing::TestWithParam<int> {};

TEST_P(EmonGenerationProperty, StalenessBounds) {
  const int period_ms = GetParam();
  bgq::BgqMachine machine;
  bgq::EmonOptions options;
  options.generation_period = Duration::millis(period_ms);
  bgq::EmonSession emon(machine.board(0), options);

  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    const double t_s = rng.uniform(0.0, 60.0);
    const auto now = SimTime::from_seconds(t_s);
    const auto reading = emon.read(now);
    if (!reading.is_ok()) {
      EXPECT_LT(now.ns(), 2 * options.generation_period.ns());
      continue;
    }
    const auto gen_start = reading.value().generation_start;
    EXPECT_LE(gen_start.ns() + options.generation_period.ns(), now.ns());  // completed
    EXPECT_GE(gen_start.ns(), now.ns() - 2 * options.generation_period.ns());  // fresh-ish
    for (const auto& d : reading.value().domains) {
      EXPECT_LE(d.sampled_at.ns(), now.ns());
      EXPECT_GE(d.sampled_at.ns(), gen_start.ns());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Periods, EmonGenerationProperty,
                         ::testing::Values(100, 280, 560, 1000, 5000));

// ---------------------------------------------------------------------
// FileSystemModel: write time is monotone in file count and in bytes.
class FilesystemMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(FilesystemMonotonicity, MonotoneInFilesAndBytes) {
  smpi::FileSystemModel fs;
  const int n = GetParam();
  const auto t_n = fs.time_to_write(n, Bytes{1e5});
  const auto t_more_files = fs.time_to_write(n * 2, Bytes{1e5});
  const auto t_more_bytes = fs.time_to_write(n, Bytes{1e7});
  EXPECT_GE(t_more_files.ns(), t_n.ns());
  EXPECT_GE(t_more_bytes.ns(), t_n.ns());
}

INSTANTIATE_TEST_SUITE_P(Counts, FilesystemMonotonicity,
                         ::testing::Values(1, 8, 32, 200, 512, 700, 1024, 4096));

// ---------------------------------------------------------------------
// smpi collectives: costs are monotone in world size.
TEST(SmpiProperty, CollectiveCostsMonotoneInSize) {
  int prev_barrier = -1;
  for (const int size : {1, 2, 8, 64, 512, 4096, 49152}) {
    const smpi::World w(size);
    const auto barrier = static_cast<int>(w.barrier_cost().ns());
    EXPECT_GE(barrier, prev_barrier);
    prev_barrier = barrier;
    EXPECT_GE(w.gather_cost(Bytes{1e4}).ns(), w.reduce_cost(Bytes{8}).ns());
  }
}

// ---------------------------------------------------------------------
// RAPL power-limit field: decode(encode(x)) is within one quantum for a
// sweep of limits.
class PowerLimitRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(PowerLimitRoundTrip, WithinOneQuantum) {
  const rapl::PowerUnits units;
  rapl::PowerLimit limit;
  limit.watts = GetParam();
  limit.enabled = true;
  limit.window_seconds = 1.0;
  const auto round = rapl::decode_power_limit(rapl::encode_power_limit(limit, units), units);
  EXPECT_NEAR(round.watts, limit.watts, units.watts_per_unit());
  EXPECT_TRUE(round.enabled);
}

INSTANTIATE_TEST_SUITE_P(Watts, PowerLimitRoundTrip,
                         ::testing::Values(1.0, 15.5, 45.0, 95.0, 130.25, 250.0, 400.0));

// ---------------------------------------------------------------------
// Determinism: an identical scenario run twice produces bit-identical
// sample streams (the whole simulation is seeded).
TEST(DeterminismProperty, PhiScenarioIsReproducible) {
  const auto a = scenarios::run_phi_noop(scenarios::PhiCollector::kMicrasDaemon,
                                         Duration::seconds(30));
  const auto b = scenarios::run_phi_noop(scenarios::PhiCollector::kMicrasDaemon,
                                         Duration::seconds(30));
  ASSERT_EQ(a.power_samples.size(), b.power_samples.size());
  for (std::size_t i = 0; i < a.power_samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.power_samples[i], b.power_samples[i]);
  }
}

TEST(DeterminismProperty, RaplScenarioIsReproducible) {
  const auto a = scenarios::run_rapl_gauss({Duration::seconds(2), Duration::seconds(8),
                                            Duration::seconds(2), Duration::millis(100)});
  const auto b = scenarios::run_rapl_gauss({Duration::seconds(2), Duration::seconds(8),
                                            Duration::seconds(2), Duration::millis(100)});
  ASSERT_EQ(a.pkg_power.size(), b.pkg_power.size());
  for (std::size_t i = 0; i < a.pkg_power.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.pkg_power[i].value, b.pkg_power[i].value);
  }
}

// ---------------------------------------------------------------------
// Engine: execution order equals timestamp order regardless of insertion
// order, for random schedules.
class EngineOrderProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineOrderProperty, ExecutionSortedByTime) {
  Rng rng(GetParam());
  sim::Engine engine;
  std::vector<std::int64_t> fired;
  for (int i = 0; i < 300; ++i) {
    const auto when = SimTime::from_ns(static_cast<std::int64_t>(rng.uniform_u64(1'000'000)));
    engine.schedule_at(when, [&fired, &engine] { fired.push_back(engine.now().ns()); });
  }
  engine.run();
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  EXPECT_EQ(fired.size(), 300u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineOrderProperty, ::testing::Values(3, 14, 159, 2653));

// ---------------------------------------------------------------------
// Device energy conservation: total energy over a span equals the sum of
// the energies over any partition of that span.
class EnergyPartitionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EnergyPartitionProperty, EnergyIsAdditiveOverPartitions) {
  Rng rng(GetParam());
  power::DevicePowerModel dev;
  dev.set_rail(Rail::kCpuCore, power::RailModel{Watts{5.0}, Watts{50.0}, Volts{1.0}});
  dev.set_rail(Rail::kDram, power::RailModel{Watts{2.0}, Watts{20.0}, Volts{1.35}});
  const auto w = workloads::gaussian_elimination({Duration::seconds(20)});
  dev.run_workload(&w, SimTime::from_seconds(1));

  const auto t0 = SimTime::zero();
  const auto t1 = SimTime::from_seconds(30);
  const double whole = dev.total_energy_between(t0, t1).value();

  // Random partition into ~10 segments.
  std::vector<double> cuts = {0.0, 30.0};
  for (int i = 0; i < 9; ++i) cuts.push_back(rng.uniform(0.0, 30.0));
  std::sort(cuts.begin(), cuts.end());
  double parts = 0.0;
  for (std::size_t i = 1; i < cuts.size(); ++i) {
    parts += dev.total_energy_between(SimTime::from_seconds(cuts[i - 1]),
                                      SimTime::from_seconds(cuts[i]))
                 .value();
  }
  EXPECT_NEAR(parts, whole, 1e-6 * whole);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnergyPartitionProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace envmon
