// Tests for the sealed-block storage format: the bit-level codecs
// (codec.hpp), block sealing and decode (block.hpp), the two-tier
// series (series.hpp), and the database-level contracts that ride on
// them — seal invariance, retention over blocks, pushdown accounting,
// and the memory-footprint roll-up.  `ctest -L tsdb` runs just these.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "tsdb/block.hpp"
#include "tsdb/codec.hpp"
#include "tsdb/database.hpp"
#include "tsdb/series.hpp"

namespace envmon::tsdb {
namespace {

using sim::Duration;
using sim::SimTime;

// ---------------------------------------------------------------- bits

TEST(BitStream, RoundTripsMixedWidthFields) {
  BitWriter w;
  w.put_bit(true);
  w.put_bits(0b1011, 4);
  w.put_bits(0xDEADBEEFCAFEBABEull, 64);
  w.put_bits(0, 1);
  w.put_bits(0x7F, 7);
  const auto bytes = w.take();

  BitReader r(bytes);
  EXPECT_TRUE(r.get_bit());
  EXPECT_EQ(r.get_bits(4), 0b1011u);
  EXPECT_EQ(r.get_bits(64), 0xDEADBEEFCAFEBABEull);
  EXPECT_FALSE(r.get_bit());
  EXPECT_EQ(r.get_bits(7), 0x7Fu);
  EXPECT_FALSE(r.exhausted());
}

TEST(BitStream, ReadsPastEndYieldZerosAndSetExhausted) {
  BitWriter w;
  w.put_bits(0b101, 3);
  const auto bytes = w.take();
  BitReader r(bytes);
  EXPECT_EQ(r.get_bits(3), 0b101u);
  // The partial final byte pads with zeros; past the byte it's all
  // zeros with exhausted() raised — never UB.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.get_bits(7), 0u);
  EXPECT_TRUE(r.exhausted());
}

TEST(BitStream, SeekRepositionsTheCursor) {
  BitWriter w;
  w.put_bits(0xAA, 8);
  w.put_bits(0x55, 8);
  const auto bytes = w.take();
  BitReader r(bytes);
  r.seek(8);
  EXPECT_EQ(r.get_bits(8), 0x55u);
  r.seek(0);
  EXPECT_EQ(r.get_bits(8), 0xAAu);
}

// ------------------------------------------------------ delta-of-delta

std::vector<std::int64_t> dod_round_trip(const std::vector<std::int64_t>& in) {
  BitWriter w;
  DeltaOfDeltaEncoder enc;
  for (const std::int64_t v : in) enc.append(v, w);
  const auto bytes = w.take();
  BitReader r(bytes);
  DeltaOfDeltaDecoder dec;
  std::vector<std::int64_t> out;
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) out.push_back(dec.next(r));
  EXPECT_FALSE(r.exhausted());
  return out;
}

TEST(DeltaOfDelta, FixedIntervalTicksCostOneBitPerRow) {
  std::vector<std::int64_t> ts;
  for (int i = 0; i < 1000; ++i) ts.push_back(1'000'000'000ll + i * 300'000'000'000ll);
  BitWriter w;
  DeltaOfDeltaEncoder enc;
  for (const std::int64_t v : ts) enc.append(v, w);
  // 64 raw + one delta bucket + 998 single '0' bits, rounded to bytes.
  EXPECT_LT(w.bit_size(), 64u + 64u + 1000u);
  EXPECT_EQ(dod_round_trip(ts), ts);
}

TEST(DeltaOfDelta, RoundTripsIrregularStreams) {
  const std::vector<std::vector<std::int64_t>> cases = {
      {},                      // empty
      {0},                     // single row
      {-5},                    // single negative
      {7, 7, 7, 7},            // repeated timestamps (duplicates allowed)
      {100, 50, 0, -50},       // negative deltas
      {0, 1, 1'000'000'000'000ll, 1'000'000'000'001ll},  // huge jump (escape path)
      {std::numeric_limits<std::int64_t>::min(), 0,
       std::numeric_limits<std::int64_t>::max()},  // extreme wraparound deltas
  };
  for (const auto& c : cases) EXPECT_EQ(dod_round_trip(c), c);
}

TEST(DeltaOfDelta, RandomWalkRoundTripsExactly) {
  std::mt19937_64 rng(42);
  std::vector<std::int64_t> ts;
  std::int64_t t = -1'000'000;
  for (int i = 0; i < 5000; ++i) {
    t += static_cast<std::int64_t>(rng() % 1'000'003) - 500'000;
    ts.push_back(t);
  }
  EXPECT_EQ(dod_round_trip(ts), ts);
}

TEST(DeltaOfDelta, TruncatedStreamDecodesWithoutCrashing) {
  std::vector<std::int64_t> ts;
  for (int i = 0; i < 100; ++i) ts.push_back(i * 1'000'000'007ll);
  BitWriter w;
  DeltaOfDeltaEncoder enc;
  for (const std::int64_t v : ts) enc.append(v, w);
  auto bytes = w.take();
  for (std::size_t keep = 0; keep <= bytes.size(); keep += 3) {
    BitReader r(std::span<const std::uint8_t>(bytes.data(), keep));
    DeltaOfDeltaDecoder dec;
    for (int i = 0; i < 100; ++i) (void)dec.next(r);  // total: values arbitrary
  }
}

// ----------------------------------------------------------------- xor

std::vector<double> xor_round_trip(const std::vector<double>& in) {
  BitWriter w;
  XorEncoder enc;
  for (const double v : in) enc.append(v, w);
  const auto bytes = w.take();
  BitReader r(bytes);
  XorDecoder dec;
  std::vector<double> out;
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) out.push_back(dec.next(r));
  return out;
}

void expect_bitwise_equal(const std::vector<double>& got, const std::vector<double>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(got[i]), std::bit_cast<std::uint64_t>(want[i]))
        << "index " << i;
  }
}

TEST(XorCodec, RoundTripsSpecialValuesBitwise) {
  const std::vector<double> values = {
      0.0,
      -0.0,
      1.0,
      -1.0,
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::signaling_NaN(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::lowest(),
      std::numeric_limits<double>::epsilon(),
      6.02214076e23,
  };
  expect_bitwise_equal(xor_round_trip(values), values);
}

TEST(XorCodec, IdenticalRunsCostOneBitPerValue) {
  std::vector<double> values(512, 21.75);
  BitWriter w;
  XorEncoder enc;
  for (const double v : values) enc.append(v, w);
  EXPECT_LT(w.bit_size(), 64u + 512u);
  expect_bitwise_equal(xor_round_trip(values), values);
}

TEST(XorCodec, SlowDriftRoundTripsExactly) {
  std::mt19937_64 rng(7);
  std::normal_distribution<double> step(0.0, 0.3);
  std::vector<double> values;
  double v = 55.0;  // a plausible input-power reading, watts
  for (int i = 0; i < 4096; ++i) {
    v += step(rng);
    values.push_back(v);
  }
  const auto out = xor_round_trip(values);
  expect_bitwise_equal(out, values);
}

TEST(XorCodec, RandomBitPatternsRoundTripExactly) {
  std::mt19937_64 rng(0xfeed);
  std::vector<double> values;
  for (int i = 0; i < 2000; ++i) values.push_back(std::bit_cast<double>(rng()));
  expect_bitwise_equal(xor_round_trip(values), values);
}

TEST(XorCodec, TruncatedStreamDecodesWithoutCrashing) {
  std::vector<double> values;
  for (int i = 0; i < 64; ++i) values.push_back(1.0 + 0.001 * i);
  BitWriter w;
  XorEncoder enc;
  for (const double v : values) enc.append(v, w);
  auto bytes = w.take();
  for (std::size_t keep = 0; keep <= bytes.size(); ++keep) {
    BitReader r(std::span<const std::uint8_t>(bytes.data(), keep));
    XorDecoder dec;
    for (int i = 0; i < 64; ++i) (void)dec.next(r);
  }
}

// --------------------------------------------------------------- block

Block make_block(std::size_t rows, bool compress, std::uint64_t seq0 = 0) {
  std::vector<std::int64_t> ts;
  std::vector<double> values;
  std::vector<std::uint64_t> seq;
  std::mt19937_64 rng(rows * 31 + seq0);
  std::normal_distribution<double> step(0.0, 0.5);
  double v = 40.0;
  for (std::size_t i = 0; i < rows; ++i) {
    ts.push_back(static_cast<std::int64_t>(i) * 560'000'000ll);  // MonEQ tick
    v += step(rng);
    values.push_back(v);
    seq.push_back(seq0 + i * 7);  // ascending, gappy
  }
  return Block::seal(ts, values, seq, compress);
}

TEST(Block, CompressedAndRawDecodeIdentically) {
  for (const std::size_t rows : {1u, 15u, 16u, 17u, 100u, 4096u}) {
    const Block c = make_block(rows, true);
    const Block r = make_block(rows, false);
    std::vector<std::int64_t> ts_c, ts_r;
    std::vector<double> v_c, v_r;
    std::vector<std::uint64_t> q_c, q_r;
    c.decode_timestamps(ts_c);
    r.decode_timestamps(ts_r);
    c.decode_values(v_c);
    r.decode_values(v_r);
    c.decode_seq(q_c);
    r.decode_seq(q_r);
    EXPECT_EQ(ts_c, ts_r);
    expect_bitwise_equal(v_c, v_r);
    EXPECT_EQ(q_c, q_r);
    EXPECT_EQ(c.rows(), rows);
    EXPECT_EQ(c.summary().rows, r.summary().rows);
    EXPECT_EQ(c.summary().value_sum, r.summary().value_sum);  // bit-exact
  }
}

TEST(Block, SubchunkDecodeMatchesFullDecodeSlice) {
  const Block b = make_block(1000, true);
  std::vector<double> full;
  b.decode_values(full);
  double chunk[Block::kSubchunkRows];
  for (std::size_t c = 0; c < b.subchunk_count(); ++c) {
    b.decode_subchunk_values(c, chunk);
    const std::size_t begin = c * Block::kSubchunkRows;
    for (std::size_t i = 0; i < b.subchunk_rows(c); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(chunk[i]),
                std::bit_cast<std::uint64_t>(full[begin + i]));
    }
  }
}

TEST(Block, SubchunkSumsAreTheCanonicalFolds) {
  // 200 rows: twelve full 16-row subchunks (4-lane tree fold) plus one
  // 8-row tail (left-to-right fold) — the canonical grammar in
  // simd.hpp, which every dispatch variant reproduces bit for bit.
  const Block b = make_block(200, true);
  std::vector<double> full;
  b.decode_values(full);
  for (std::size_t c = 0; c < b.subchunk_count(); ++c) {
    const std::size_t begin = c * Block::kSubchunkRows;
    const std::size_t n = b.subchunk_rows(c);
    double sum = 0.0;
    if (n == Block::kSubchunkRows) {
      double lane[4] = {0.0, 0.0, 0.0, 0.0};
      for (std::size_t i = 0; i < n; ++i) lane[i % 4] += full[begin + i];
      sum = (lane[0] + lane[1]) + (lane[2] + lane[3]);
    } else {
      for (std::size_t i = 0; i < n; ++i) sum += full[begin + i];
    }
    EXPECT_EQ(std::bit_cast<std::uint64_t>(sum),
              std::bit_cast<std::uint64_t>(b.subchunk_sum(c)));  // identical fold
  }
}

TEST(Block, SummaryTracksNaNAwareMinMax) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<std::int64_t> ts = {0, 1, 2, 3, 4};
  const std::vector<double> values = {nan, 3.0, -2.0, nan, 7.0};
  const std::vector<std::uint64_t> seq = {0, 1, 2, 3, 4};
  const Block b = Block::seal(ts, values, seq, true);
  EXPECT_EQ(b.summary().rows, 5u);
  EXPECT_EQ(b.summary().finite_rows, 3u);
  EXPECT_EQ(b.summary().value_min, -2.0);
  EXPECT_EQ(b.summary().value_max, 7.0);
  EXPECT_TRUE(std::isnan(b.summary().value_sum));  // NaN participates in sums
}

TEST(Block, SmoothStreamsCompressWellBelowRawFootprint) {
  const Block c = make_block(4096, true);
  const Block r = make_block(4096, false);
  // Raw is 24 B/row before overheads; the gate for the full engine is
  // 8 B/row, so a single smooth block should sit far below raw.
  EXPECT_LT(c.bytes_used() * 3, r.bytes_used());
}

// -------------------------------------------------------------- series

TEST(Series, AutoSealsAtBlockCapacity) {
  Series s(board_location(0, 0, 0), 0, true);
  bool sealed = false;
  for (std::size_t i = 0; i < Block::kMaxRows; ++i) {
    sealed = s.append(static_cast<std::int64_t>(i), 1.0, i);
  }
  EXPECT_TRUE(sealed);  // the 4096th append sealed the head
  EXPECT_EQ(s.block_count(), 1u);
  EXPECT_EQ(s.head_rows(), 0u);
  EXPECT_EQ(s.size(), Block::kMaxRows);
}

TEST(Series, SealHeadHonorsMinRows) {
  Series s(board_location(0, 0, 0), 0, true);
  for (int i = 0; i < 10; ++i) s.append(i, 1.0, static_cast<std::uint64_t>(i));
  EXPECT_FALSE(s.seal_head(11));  // too few rows
  EXPECT_EQ(s.block_count(), 0u);
  EXPECT_TRUE(s.seal_head(10));
  EXPECT_EQ(s.block_count(), 1u);
  EXPECT_EQ(s.head_rows(), 0u);
}

TEST(Series, DropBeforeDropsWholeBlocksAndRebuildsTheBoundary) {
  Series s(board_location(0, 0, 0), 0, true);
  // 3 sealed blocks of 100 rows at ts = row index, then a 50-row head.
  for (int b = 0; b < 3; ++b) {
    for (int i = 0; i < 100; ++i) {
      const int row = b * 100 + i;
      s.append(row, static_cast<double>(row), static_cast<std::uint64_t>(row));
    }
    s.seal_head(1);
  }
  for (int i = 300; i < 350; ++i) s.append(i, static_cast<double>(i), static_cast<std::uint64_t>(i));
  ASSERT_EQ(s.block_count(), 3u);
  ASSERT_EQ(s.size(), 350u);

  // Cutoff inside block 1: block 0 drops whole, block 1 is rebuilt.
  EXPECT_EQ(s.drop_before(150), 150u);
  EXPECT_EQ(s.size(), 200u);
  ASSERT_EQ(s.block_count(), 2u);  // rebuilt boundary + the untouched block
  ASSERT_NE(s.block(0), nullptr);
  EXPECT_EQ(s.block(0)->rows(), 50u);  // the re-materialized boundary
  EXPECT_EQ(s.front_ts_ns(), 150);
  std::vector<std::int64_t> ts;
  s.block(0)->decode_timestamps(ts);
  EXPECT_EQ(ts.front(), 150);
  EXPECT_EQ(ts.back(), 199);

  // Cutoff beyond all blocks: everything sealed drops, head is trimmed.
  EXPECT_EQ(s.drop_before(320), 170u);
  EXPECT_EQ(s.block_count(), 0u);
  EXPECT_EQ(s.size(), 30u);
  EXPECT_EQ(s.front_ts_ns(), 320);
}

TEST(Series, HeadRangeBinarySearchesBothBounds) {
  Series s(board_location(0, 0, 0), 0, false);
  for (int i = 0; i < 100; ++i) s.append(i * 10, 1.0, static_cast<std::uint64_t>(i));
  const auto all = s.head_range(std::nullopt, std::nullopt);
  EXPECT_EQ(all.size(), 100u);
  const auto mid = s.head_range(250, 500);  // 250 rounds up to row 25
  EXPECT_EQ(mid.first, 25u);
  EXPECT_EQ(mid.last, 51u);  // inclusive upper bound
  const auto none = s.head_range(2000, std::nullopt);
  EXPECT_EQ(none.size(), 0u);
}

// ------------------------------------------------------------ database

Record rec(double t_s, int board, const char* metric, double value) {
  return Record{SimTime::from_seconds(t_s), board_location(0, 0, board), metric, value};
}

TEST(EnvDatabaseBlocks, SealingNeverChangesQueryOrDownsampleResults) {
  // Sealing converts the head into a block with the same row positions,
  // so the subchunk aggregation grid — and every computed result — is
  // preserved bit-exactly.  Cache disabled: both sides must recompute.
  DatabaseOptions opts;
  opts.downsample_cache_capacity = 0;
  EnvDatabase db(opts);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(db.insert(rec(0.5 * i, i % 4, "power_w", 40.0 + 0.25 * (i % 13))).is_ok());
  }
  QueryFilter f;
  f.metric = "power_w";
  const auto rows_before = db.query(f);
  const auto buckets_before = db.downsample(f, Duration::seconds(30));
  const auto agg_before = db.aggregate(f);

  ASSERT_GT(db.seal_blocks(), 0u);
  ASSERT_GT(db.sealed_block_count(), 0u);

  const auto rows_after = db.query(f);
  ASSERT_EQ(rows_after.size(), rows_before.size());
  for (std::size_t i = 0; i < rows_before.size(); ++i) {
    EXPECT_EQ(rows_after[i].timestamp, rows_before[i].timestamp);
    EXPECT_EQ(rows_after[i].value, rows_before[i].value);
  }
  const auto buckets_after = db.downsample(f, Duration::seconds(30));
  ASSERT_EQ(buckets_after.size(), buckets_before.size());
  for (std::size_t i = 0; i < buckets_before.size(); ++i) {
    EXPECT_EQ(buckets_after[i].mean, buckets_before[i].mean);  // bit-exact
    EXPECT_EQ(buckets_after[i].count, buckets_before[i].count);
  }
  const auto agg_after = db.aggregate(f);
  EXPECT_EQ(agg_after.sum, agg_before.sum);
  EXPECT_EQ(agg_after.min, agg_before.min);
  EXPECT_EQ(agg_after.max, agg_before.max);
}

TEST(EnvDatabaseBlocks, SealKeepsMemoizedDownsampleResultsValid) {
  EnvDatabase db;
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(db.insert(rec(1.0 * i, i % 2, "power_w", 20.0 + i)).is_ok());
  }
  QueryFilter f;
  f.metric = "power_w";
  const auto before = db.downsample(f, Duration::seconds(60));
  ASSERT_GT(db.seal_blocks(), 0u);
  // Sealing is not a mutation: the memoized result stays valid and must
  // be served from cache.
  const auto hits = db.query_stats().cache_hits;
  const auto after = db.downsample(f, Duration::seconds(60));
  EXPECT_EQ(db.query_stats().cache_hits, hits + 1);
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after[i].mean, before[i].mean);
  }
}

TEST(EnvDatabaseBlocks, DownsamplePushdownServesFullSubchunksFromSums) {
  EnvDatabase db;
  // 1 Hz samples, 64 s buckets: every bucket fully covers 4 subchunks.
  for (int i = 0; i < 2048; ++i) {
    ASSERT_TRUE(db.insert(rec(1.0 * i, 0, "power_w", 40.0 + 0.1 * (i % 7))).is_ok());
  }
  db.seal_blocks();
  QueryFilter f;
  f.metric = "power_w";
  const auto before = db.query_stats();
  const auto buckets = db.downsample(f, Duration::seconds(64));
  const auto& after = db.query_stats();
  EXPECT_EQ(buckets.size(), 32u);
  EXPECT_GT(after.pushdown_chunks, before.pushdown_chunks);
  EXPECT_GT(after.pushdown_rows, before.pushdown_rows);
  // Fully aligned buckets: everything but stray boundary chunks pushes down.
  EXPECT_GT(after.pushdown_rows - before.pushdown_rows, 2048u / 2);
}

TEST(EnvDatabaseBlocks, RetentionInvalidatesDownsampleCache) {
  DatabaseOptions opts;
  opts.retention = Duration::seconds(100);
  EnvDatabase db(opts);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db.insert(rec(1.0 * i, 0, "power_w", 1.0 * i)).is_ok());
  }
  db.seal_blocks();
  QueryFilter f;
  f.metric = "power_w";
  const auto before = db.downsample(f, Duration::seconds(10));
  ASSERT_EQ(before.size(), 10u);
  EXPECT_EQ(before.front().count, 10u);

  // Advancing time to 160 s moves the cutoff to 60 s: the first 60
  // sealed rows drop (the boundary block is re-materialized) and the
  // cached result must not be served stale.
  ASSERT_TRUE(db.insert(rec(160.0, 0, "power_w", 0.0)).is_ok());
  const auto misses_before = db.query_stats().cache_misses;
  const auto after = db.downsample(f, Duration::seconds(10));
  EXPECT_EQ(db.query_stats().cache_misses, misses_before + 1);
  ASSERT_EQ(after.size(), 5u);  // buckets 60..90 plus the one at 160
  EXPECT_EQ(after.front().start, SimTime::from_seconds(60.0));
  EXPECT_EQ(after.front().count, 10u);
  const auto rows = db.query(f);
  EXPECT_EQ(rows.size(), 41u);  // rows 60..99 survive, plus the new record
  EXPECT_EQ(rows.front().timestamp, SimTime::from_seconds(60.0));
}

TEST(EnvDatabaseBlocks, RetentionAndRateWindowInteractAcrossBlocks) {
  // Regression: retention drops sealed rows, but the ingest-rate window
  // must keep counting them until they age out of the *window* — a
  // vacuum cannot retroactively free ingest budget.
  DatabaseOptions opts;
  opts.max_insert_rate_per_second = 10.0;
  opts.rate_window = Duration::seconds(10);  // budget: 100 per window
  opts.retention = Duration::seconds(1);     // much shorter than the window
  EnvDatabase db(opts);
  // 100 records in the first second exhaust the window budget.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db.insert(rec(0.01 * i, 0, "power_w", 1.0)).is_ok());
  }
  db.seal_blocks();
  EXPECT_FALSE(db.insert(rec(5.0, 0, "power_w", 1.0)).is_ok());  // budget full

  // At t = 10.495 s half the window has aged out, so the insert lands —
  // and retention (cutoff 9.495 s) then drops every original row.
  ASSERT_TRUE(db.insert(rec(10.495, 0, "power_w", 1.0)).is_ok());
  EXPECT_EQ(db.size(), 1u);
  // The dropped rows still occupy the rate window: only 49 more fit.
  int accepted = 0;
  for (int i = 0; i < 60; ++i) {
    if (db.insert(rec(10.495, 0, "power_w", 1.0)).is_ok()) ++accepted;
  }
  EXPECT_EQ(accepted, 49);
}

TEST(EnvDatabaseBlocks, BytesUsedAccountsDownsampleCacheEntries) {
  DatabaseOptions opts;
  EnvDatabase db(opts);
  for (int i = 0; i < 256; ++i) {
    ASSERT_TRUE(db.insert(rec(1.0 * i, i % 4, "power_w", 1.0 * i)).is_ok());
  }
  const auto before = db.bytes_used();
  // Distinct widths -> distinct cache entries, each holding buckets.
  for (int w = 1; w <= 8; ++w) {
    (void)db.downsample(QueryFilter{}, Duration::seconds(w));
  }
  EXPECT_GT(db.bytes_used(), before);  // cache footprint is visible now
  EXPECT_GT(db.query_stats().cache_misses, 0u);
}

TEST(EnvDatabaseBlocks, BatchReservesHeadForRunsWithoutChangingResults) {
  // One batch with long same-series runs (the collector layout) must
  // land identically to record-at-a-time inserts.
  std::vector<Record> batch;
  for (int board = 0; board < 4; ++board) {
    for (int i = 0; i < 100; ++i) {
      batch.push_back(rec(10.0 * board + 0.1 * i, board, "power_w", 40.0 + i));
    }
  }
  std::stable_sort(batch.begin(), batch.end(), [](const Record& a, const Record& b) {
    return a.timestamp.ns() < b.timestamp.ns();
  });
  EnvDatabase via_batch;
  EnvDatabase via_single;
  EXPECT_TRUE(via_batch.insert_batch(batch).all_accepted());
  for (const auto& r : batch) ASSERT_TRUE(via_single.insert(r).is_ok());
  const auto a = via_batch.query(QueryFilter{});
  const auto b = via_single.query(QueryFilter{});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].timestamp, b[i].timestamp);
    EXPECT_EQ(a[i].value, b[i].value);
    EXPECT_EQ(a[i].location, b[i].location);
  }
}

TEST(EnvDatabaseBlocks, ParallelQueryMatchesSerialAcrossThreadCounts) {
  // The worker pool decodes scan parts concurrently and merges on the
  // insertion sequence, so output is byte-identical at any thread count.
  // This is the TSan workload for the parallel executor.
  DatabaseOptions serial_opts;
  DatabaseOptions parallel_opts;
  parallel_opts.query_threads = 4;
  parallel_opts.parallel_query_min_rows = 1;  // engage the pool even here
  EnvDatabase serial(serial_opts);
  EnvDatabase parallel(parallel_opts);
  for (int i = 0; i < 4000; ++i) {
    const Record r = rec(0.25 * i, i % 8, i % 2 == 0 ? "power_w" : "temp_c",
                         20.0 + 0.5 * (i % 37));
    ASSERT_TRUE(serial.insert(r).is_ok());
    ASSERT_TRUE(parallel.insert(r).is_ok());
  }
  serial.seal_blocks();
  parallel.seal_blocks();

  for (const char* metric : {"power_w", "temp_c"}) {
    QueryFilter f;
    f.metric = metric;
    const auto a = serial.query(f);
    const auto b = parallel.query(f);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].timestamp, b[i].timestamp);
      EXPECT_EQ(a[i].location, b[i].location);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i].value),
                std::bit_cast<std::uint64_t>(b[i].value));
    }
  }
}

}  // namespace
}  // namespace envmon::tsdb
