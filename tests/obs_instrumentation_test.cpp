// End-to-end checks that the instrumentation hooks actually fire: the
// engine, profiler, backends, and tsdb all publish to the default
// registry, and a traced profiler run yields a nested poll/query
// timeline on the virtual clock.

#include <gtest/gtest.h>

#include "moneq/backend_rapl.hpp"
#include "moneq/profiler.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "rapl/reader.hpp"
#include "sim/engine.hpp"
#include "tsdb/database.hpp"
#include "tsdb/export.hpp"

namespace envmon {
namespace {

using obs::Snapshot;

const Snapshot::CounterRow* find_counter(const Snapshot& snap, std::string_view name,
                                         std::string_view labels = "") {
  for (const auto& row : snap.counters) {
    if (row.name == name && row.labels == labels) return &row;
  }
  return nullptr;
}

const Snapshot::HistogramRow* find_histogram(const Snapshot& snap, std::string_view name,
                                             std::string_view labels = "") {
  for (const auto& row : snap.histograms) {
    if (row.name == name && row.labels == labels) return &row;
  }
  return nullptr;
}

TEST(ObsInstrumentation, EngineCountsDispatchedEvents) {
  obs::default_registry().reset_values();
  sim::Engine engine;
  int fired = 0;
  engine.schedule_after(sim::Duration::seconds(1), [&] { ++fired; });
  engine.schedule_after(sim::Duration::seconds(2), [&] { ++fired; });
  engine.run();
  ASSERT_EQ(fired, 2);
  const auto snap = obs::default_registry().snapshot();
  const auto* events = find_counter(snap, "envmon_sim_events_total");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->value, engine.events_executed());
}

TEST(ObsInstrumentation, ProfilerRecordsBackendLatencyAndCounts) {
  obs::default_registry().reset_values();
  sim::Engine engine;
  obs::Tracer tracer([&engine] { return engine.now(); });

  rapl::CpuPackage package(engine);
  rapl::MsrRaplReader reader(package, rapl::Credentials{true, 0});
  moneq::RaplBackend backend(reader);

  smpi::World world(1);
  moneq::ProfilerOptions options;
  options.tracer = &tracer;
  moneq::NodeProfiler profiler(engine, world, 0, options);
  ASSERT_TRUE(profiler.add_backend(backend).is_ok());
  ASSERT_TRUE(profiler.set_polling_interval(sim::Duration::millis(100)).is_ok());
  ASSERT_TRUE(profiler.initialize().is_ok());
  engine.run_until(sim::SimTime::from_seconds(2.0));
  ASSERT_TRUE(profiler.finalize().is_ok());

  const auto snap = obs::default_registry().snapshot();
  const std::string labels = "backend=\"rapl_msr\"";
  const auto* queries = find_counter(snap, "envmon_backend_queries_total", labels);
  const auto* errors = find_counter(snap, "envmon_backend_query_errors_total", labels);
  const auto* polls = find_counter(snap, "envmon_profiler_polls_total");
  const auto* samples = find_counter(snap, "envmon_profiler_samples_total");
  const auto* latency = find_histogram(snap, "envmon_backend_query_latency_ms", labels);
  ASSERT_NE(queries, nullptr);
  ASSERT_NE(errors, nullptr);
  ASSERT_NE(polls, nullptr);
  ASSERT_NE(samples, nullptr);
  ASSERT_NE(latency, nullptr);

  const auto report = profiler.overhead();
  EXPECT_EQ(polls->value, report.polls);
  EXPECT_EQ(queries->value, report.polls);  // one backend -> one query per poll
  EXPECT_EQ(errors->value, 0u);
  EXPECT_EQ(samples->value, profiler.samples().size());
  EXPECT_EQ(latency->count, report.polls);
  // The paper's MSR cost is ~0.03 ms/query; a RAPL collect() makes a
  // handful of MSR reads, so the mean must sit well below NVML's 1.3 ms.
  const double mean_ms = latency->sum / static_cast<double>(latency->count);
  EXPECT_GT(mean_ms, 0.0);
  EXPECT_LT(mean_ms, 1.0);

  // The traced timeline nests backend queries inside polls.
  const auto spans = tracer.spans();
  ASSERT_FALSE(spans.empty());
  std::size_t poll_spans = 0, query_spans = 0;
  for (const auto& s : spans) {
    if (s.name == "moneq.poll") {
      ++poll_spans;
      EXPECT_EQ(s.depth, 0);
    } else if (s.name == "backend.query") {
      ++query_spans;
      EXPECT_EQ(s.detail, "rapl_msr");
      EXPECT_EQ(s.depth, 1);
      EXPECT_NE(s.parent, 0u);
    }
  }
  EXPECT_EQ(poll_spans, report.polls);
  EXPECT_EQ(query_spans, report.polls);
}

TEST(ObsInstrumentation, ProfilerCountsDroppedSamplesAndHighWater) {
  obs::default_registry().reset_values();
  sim::Engine engine;
  rapl::CpuPackage package(engine);
  rapl::MsrRaplReader reader(package, rapl::Credentials{true, 0});
  moneq::RaplBackend backend(reader);

  smpi::World world(1);
  moneq::ProfilerOptions options;
  options.max_samples = 4;  // force drops
  moneq::NodeProfiler profiler(engine, world, 0, options);
  ASSERT_TRUE(profiler.add_backend(backend).is_ok());
  ASSERT_TRUE(profiler.set_polling_interval(sim::Duration::millis(100)).is_ok());
  ASSERT_TRUE(profiler.initialize().is_ok());
  engine.run_until(sim::SimTime::from_seconds(2.0));
  ASSERT_TRUE(profiler.finalize().is_ok());
  ASSERT_GT(profiler.dropped_samples(), 0u);

  const auto snap = obs::default_registry().snapshot();
  const auto* dropped = find_counter(snap, "envmon_profiler_dropped_samples_total");
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(dropped->value, profiler.dropped_samples());
  for (const auto& g : snap.gauges) {
    if (g.name == "envmon_profiler_buffer_high_water") {
      EXPECT_DOUBLE_EQ(g.value, 4.0);
    }
  }
}

TEST(ObsInstrumentation, TsdbCountsInsertsRejectionsAndExports) {
  obs::default_registry().reset_values();
  sim::Engine engine;
  obs::Tracer tracer([&engine] { return engine.now(); });
  tsdb::EnvDatabase db;
  db.attach_tracer(&tracer);

  const tsdb::Location loc = tsdb::rack_location(0);
  ASSERT_TRUE(db.insert({sim::SimTime::from_seconds(1.0), loc, "power_w", 40.0}).is_ok());
  ASSERT_TRUE(db.insert({sim::SimTime::from_seconds(2.0), loc, "power_w", 41.0}).is_ok());
  EXPECT_FALSE(db.insert({sim::SimTime::from_seconds(0.5), loc, "power_w", 39.0}).is_ok());
  const std::string csv = tsdb::export_csv(db);
  EXPECT_NE(csv.find("power_w"), std::string::npos);

  const auto snap = obs::default_registry().snapshot();
  const auto* inserts = find_counter(snap, "envmon_tsdb_inserts_total");
  const auto* rejected = find_counter(snap, "envmon_tsdb_rejected_inserts_total");
  const auto* exported = find_counter(snap, "envmon_tsdb_export_rows_total");
  ASSERT_NE(inserts, nullptr);
  ASSERT_NE(rejected, nullptr);
  ASSERT_NE(exported, nullptr);
  EXPECT_EQ(inserts->value, 2u);
  EXPECT_EQ(rejected->value, 1u);
  EXPECT_EQ(exported->value, 2u);

  // Inserts land on the tracer's event ring at their record timestamps.
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "tsdb.insert");
  EXPECT_EQ(events[0].t, sim::SimTime::from_seconds(1.0));
}

TEST(ObsInstrumentation, DisablingObsSkipsRegistration) {
  obs::set_enabled(false);
  obs::default_registry().reset_values();
  sim::Engine engine;  // constructed with obs off: no handles
  engine.schedule_after(sim::Duration::seconds(1), [] {});
  engine.run();
  obs::set_enabled(true);

  const auto snap = obs::default_registry().snapshot();
  const auto* events = find_counter(snap, "envmon_sim_events_total");
  // The series may exist from earlier tests, but this engine must not
  // have advanced it past the reset.
  if (events != nullptr) {
    EXPECT_EQ(events->value, 0u);
  }
}

}  // namespace
}  // namespace envmon
