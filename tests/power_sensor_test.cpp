#include "power/sensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "power/thermal.hpp"

namespace envmon::power {
namespace {

using sim::Duration;
using sim::SimTime;

SensorPipeline make(SensorOptions o, std::uint64_t seed = 1) {
  return SensorPipeline(o, Rng(seed));
}

TEST(Sensor, PassthroughWhenUnconfigured) {
  auto s = make({});
  EXPECT_DOUBLE_EQ(s.sample(SimTime::zero(), 42.0), 42.0);
  EXPECT_DOUBLE_EQ(s.sample(SimTime::from_seconds(1), 99.0), 99.0);
}

TEST(Sensor, SlewApproachesStepExponentially) {
  SensorOptions o;
  o.slew_tau = Duration::seconds(1);
  auto s = make(o);
  // Initialize at 0, then step input to 100.
  EXPECT_DOUBLE_EQ(s.sample(SimTime::zero(), 0.0), 0.0);
  const double after_1tau = s.sample(SimTime::from_seconds(1), 100.0);
  EXPECT_NEAR(after_1tau, 100.0 * (1.0 - std::exp(-1.0)), 1e-9);
  const double after_5tau = s.sample(SimTime::from_seconds(5), 100.0);
  EXPECT_GT(after_5tau, 99.0);
}

TEST(Sensor, SlewFirstSampleTracksInput) {
  SensorOptions o;
  o.slew_tau = Duration::seconds(1);
  auto s = make(o);
  EXPECT_DOUBLE_EQ(s.sample(SimTime::zero(), 44.0), 44.0);
}

TEST(Sensor, FiveSecondRampMatchesNvmlStory) {
  // tau = 1.7 s (the K20 board sensor): ~95% of the step within 5 s —
  // "it takes about 5 seconds before the power consumption levels off".
  SensorOptions o;
  o.slew_tau = Duration::millis(1700);
  auto s = make(o);
  (void)s.sample(SimTime::zero(), 44.0);
  double v = 0.0;
  for (double t = 0.1; t <= 5.0; t += 0.1) {
    v = s.sample(SimTime::from_seconds(t), 56.0);
  }
  EXPECT_GT(v, 44.0 + 0.93 * 12.0);
  EXPECT_LT(v, 56.0);
}

TEST(Sensor, HoldRefreshesOnSchedule) {
  SensorOptions o;
  o.update_period = Duration::millis(60);
  auto s = make(o);
  EXPECT_DOUBLE_EQ(s.sample(SimTime::zero(), 10.0), 10.0);
  // 30 ms later the sensor has not refreshed: still 10.
  EXPECT_DOUBLE_EQ(s.sample(SimTime::from_ns(30'000'000), 20.0), 10.0);
  // 70 ms: one refresh has passed.
  EXPECT_DOUBLE_EQ(s.sample(SimTime::from_ns(70'000'000), 20.0), 20.0);
}

TEST(Sensor, HoldReportsRefreshAge) {
  SensorOptions o;
  o.update_period = Duration::millis(100);
  auto s = make(o);
  (void)s.sample(SimTime::zero(), 1.0);
  (void)s.sample(SimTime::from_ns(250'000'000), 2.0);
  ASSERT_TRUE(s.last_refresh().has_value());
  // Last refresh instant is on the 100 ms grid, at or before 250 ms.
  EXPECT_LE(s.last_refresh()->ns(), 250'000'000);
  EXPECT_GE(s.last_refresh()->ns(), 150'000'000);
}

TEST(Sensor, QuantizeRoundsToStep) {
  SensorOptions o;
  o.quantum = 0.5;
  auto s = make(o);
  EXPECT_DOUBLE_EQ(s.sample(SimTime::zero(), 10.26), 10.5);
  EXPECT_DOUBLE_EQ(s.sample(SimTime::from_seconds(1), 10.24), 10.0);
}

TEST(Sensor, ClampBounds) {
  SensorOptions o;
  o.min_value = 0.0;
  o.max_value = 100.0;
  auto s = make(o);
  EXPECT_DOUBLE_EQ(s.sample(SimTime::zero(), -5.0), 0.0);
  EXPECT_DOUBLE_EQ(s.sample(SimTime::from_seconds(1), 500.0), 100.0);
}

TEST(Sensor, NoiseIsZeroMean) {
  SensorOptions o;
  o.noise_sigma = 2.0;
  auto s = make(o, 99);
  double sum = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    sum += s.sample(SimTime::from_ns(static_cast<std::int64_t>(i) * 1'000'000), 50.0);
  }
  EXPECT_NEAR(sum / n, 50.0, 0.1);
}

TEST(Sensor, NoiseWithinAccuracyBand) {
  // The NVML +/-5 W spec as a 3-sigma band: nearly all samples within.
  SensorOptions o;
  o.noise_sigma = 5.0 / 3.0;
  auto s = make(o, 7);
  int outside = 0;
  const int n = 10'000;
  for (int i = 0; i < n; ++i) {
    const double v = s.sample(SimTime::from_ns(static_cast<std::int64_t>(i) * 1'000'000), 100.0);
    if (std::fabs(v - 100.0) > 5.0) ++outside;
  }
  EXPECT_LT(outside, n / 100);  // < 1% beyond 3 sigma (expect ~0.3%)
}

TEST(Sensor, DeterministicGivenSeed) {
  SensorOptions o;
  o.noise_sigma = 1.0;
  auto a = make(o, 5);
  auto b = make(o, 5);
  for (int i = 0; i < 100; ++i) {
    const auto t = SimTime::from_ns(static_cast<std::int64_t>(i) * 1'000'000);
    EXPECT_DOUBLE_EQ(a.sample(t, 10.0), b.sample(t, 10.0));
  }
}

TEST(Sensor, ResetClearsState) {
  SensorOptions o;
  o.slew_tau = Duration::seconds(10);
  auto s = make(o);
  (void)s.sample(SimTime::zero(), 100.0);
  s.reset();
  // After reset, the first sample re-initializes to the input value.
  EXPECT_DOUBLE_EQ(s.sample(SimTime::from_seconds(1), 5.0), 5.0);
  EXPECT_FALSE(s.last_refresh().has_value());
}

TEST(Thermal, ApproachesSteadyState) {
  ThermalOptions o;
  o.ambient = Celsius{36.0};
  o.resistance_c_per_w = 0.22;
  o.capacity_j_per_c = 260.0;
  o.initial = Celsius{40.0};
  ThermalModel m(o);
  (void)m.step(SimTime::zero(), Watts{130.0});
  Celsius temp{};
  for (double t = 1.0; t <= 600.0; t += 1.0) {
    temp = m.step(SimTime::from_seconds(t), Watts{130.0});
  }
  EXPECT_NEAR(temp.value(), m.steady_state(Watts{130.0}).value(), 0.5);
  EXPECT_NEAR(m.steady_state(Watts{130.0}).value(), 36.0 + 0.22 * 130.0, 1e-9);
}

TEST(Thermal, MonotonicRiseUnderConstantLoad) {
  ThermalModel m(ThermalOptions{});
  (void)m.step(SimTime::zero(), Watts{100.0});
  double prev = m.temperature().value();
  for (double t = 1.0; t <= 60.0; t += 1.0) {
    const double cur = m.step(SimTime::from_seconds(t), Watts{100.0}).value();
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(Thermal, CoolsWhenLoadRemoved) {
  ThermalModel m(ThermalOptions{});
  (void)m.step(SimTime::zero(), Watts{200.0});
  for (double t = 1.0; t <= 120.0; t += 1.0) {
    (void)m.step(SimTime::from_seconds(t), Watts{200.0});
  }
  const double hot = m.temperature().value();
  for (double t = 121.0; t <= 600.0; t += 1.0) {
    (void)m.step(SimTime::from_seconds(t), Watts{0.0});
  }
  EXPECT_LT(m.temperature().value(), hot);
  EXPECT_NEAR(m.temperature().value(), 25.0, 1.0);  // back to ambient
}

TEST(Thermal, ZeroDtIsNoop) {
  ThermalModel m(ThermalOptions{});
  const double t0 = m.step(SimTime::from_seconds(1), Watts{100.0}).value();
  const double t1 = m.step(SimTime::from_seconds(1), Watts{100.0}).value();
  EXPECT_DOUBLE_EQ(t0, t1);
}

}  // namespace
}  // namespace envmon::power
