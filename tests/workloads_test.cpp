#include "workloads/library.hpp"

#include <gtest/gtest.h>

namespace envmon::workloads {
namespace {

using power::Rail;
using sim::Duration;

TEST(Mmps, NetworkDominated) {
  const auto p = mmps({Duration::seconds(600), 6});
  EXPECT_EQ(p.total_duration(), Duration::seconds(600));
  // Interconnect load exceeds memory load throughout.
  for (double t = 10.0; t < 600.0; t += 50.0) {
    EXPECT_GT(p.util(Rail::kNetwork, Duration::from_seconds(t)),
              p.util(Rail::kDram, Duration::from_seconds(t)));
  }
}

TEST(Mmps, SweepShiftsLoadTowardLinks) {
  const auto p = mmps({Duration::seconds(600), 6});
  EXPECT_GT(p.util(Rail::kOptics, Duration::seconds(590)),
            p.util(Rail::kOptics, Duration::seconds(10)));
  EXPECT_LT(p.util(Rail::kCpuCore, Duration::seconds(590)),
            p.util(Rail::kCpuCore, Duration::seconds(10)));
}

TEST(Mmps, RejectsBadSegments) {
  EXPECT_THROW(mmps({Duration::seconds(60), 0}), std::invalid_argument);
}

TEST(GaussianElimination, CycleStructure) {
  GaussianEliminationOptions o;
  o.total = Duration::seconds(40);
  const auto p = gaussian_elimination(o);
  // cycle = 3.0 + 0.5 + 0.15 = 3.65 s -> 10 cycles, 30 phases.
  EXPECT_EQ(p.phases().size(), 30u);
  // Compute phase is higher than the pivot dip.
  const double compute = p.util(Rail::kCpuCore, Duration::from_seconds(1.0));
  const double dip = p.util(Rail::kCpuCore, Duration::from_seconds(3.2));
  const double spike = p.util(Rail::kCpuCore, Duration::from_seconds(3.6));
  EXPECT_GT(compute, dip);
  EXPECT_GT(spike, compute);  // the "tiny spikes" between drops
}

TEST(GaussianElimination, DipDepthParameterized) {
  GaussianEliminationOptions shallow;
  shallow.dip_depth = 0.05;
  GaussianEliminationOptions deep;
  deep.dip_depth = 0.5;
  const auto ps = gaussian_elimination(shallow);
  const auto pd = gaussian_elimination(deep);
  EXPECT_GT(ps.util(Rail::kCpuCore, Duration::from_seconds(3.2)),
            pd.util(Rail::kCpuCore, Duration::from_seconds(3.2)));
}

TEST(GaussianElimination, RejectsTooShortTotal) {
  GaussianEliminationOptions o;
  o.total = Duration::seconds(1);
  EXPECT_THROW(gaussian_elimination(o), std::invalid_argument);
}

TEST(GpuNoop, LightSteadyLoad) {
  const auto p = gpu_noop({Duration::seconds(12)});
  EXPECT_EQ(p.phases().size(), 1u);
  const double sm = p.util(Rail::kCpuCore, Duration::seconds(5));
  EXPECT_GT(sm, 0.0);
  EXPECT_LT(sm, 0.3);  // a noop kernel keeps clocks up, nothing more
}

TEST(GpuVectorAdd, PhaseOrdering) {
  GpuVectorAddOptions o;
  const auto p = gpu_vector_add(o);
  // Host generation: device nearly idle.
  EXPECT_LT(p.util(Rail::kCpuCore, Duration::seconds(5)), 0.2);
  EXPECT_LT(p.util(Rail::kDram, Duration::seconds(5)), 0.05);
  // Transfer phase: PCIe saturated.
  EXPECT_GT(p.util(Rail::kPcie, Duration::seconds(11)), 0.9);
  // Compute: bandwidth-bound — GDDR util exceeds SM util.
  const auto t_compute = Duration::seconds(30);
  EXPECT_GT(p.util(Rail::kDram, t_compute), p.util(Rail::kCpuCore, t_compute));
  EXPECT_GT(p.util(Rail::kDram, t_compute), 0.85);
}

TEST(OffloadGauss, DataGenThenCompute) {
  const auto p = offload_gauss({});
  EXPECT_EQ(p.total_duration(), Duration::seconds(250));
  // Cards nearly idle during the first ~100 s.
  EXPECT_LT(p.util(Rail::kCpuCore, Duration::seconds(50)), 0.05);
  // Then the compute plateau.
  EXPECT_GT(p.util(Rail::kCpuCore, Duration::seconds(150)), 0.9);
}

TEST(NoopBusyloop, ConstantLightLoad) {
  const auto p = noop_busyloop(Duration::seconds(120));
  EXPECT_DOUBLE_EQ(p.util(Rail::kCpuCore, Duration::seconds(60)), 0.10);
  EXPECT_DOUBLE_EQ(p.util(Rail::kDram, Duration::seconds(60)), 0.0);
}

TEST(Idle, AllRailsZero) {
  const auto p = idle(Duration::seconds(10));
  for (const Rail r : power::kAllRails) {
    EXPECT_DOUBLE_EQ(p.util(r, Duration::seconds(5)), 0.0);
  }
}

TEST(Dgemm, ComputeBound) {
  const auto p = dgemm({Duration::seconds(30), 0.97, 0.55});
  EXPECT_GT(p.util(Rail::kCpuCore, Duration::seconds(10)),
            p.util(Rail::kDram, Duration::seconds(10)));
}

TEST(Stream, MemoryBound) {
  const auto p = stream({Duration::seconds(30)});
  EXPECT_GT(p.util(Rail::kDram, Duration::seconds(10)),
            p.util(Rail::kCpuCore, Duration::seconds(10)));
}

}  // namespace
}  // namespace envmon::workloads
