// End-to-end shape assertions: every figure and table of the paper, run
// through the scenarios the bench harness renders, with its qualitative
// claims regression-tested.

#include <gtest/gtest.h>

#include "analysis/series_ops.hpp"
#include "common/stats.hpp"
#include "scenarios/scenarios.hpp"

namespace envmon::scenarios {
namespace {

using sim::Duration;
using sim::SimTime;

// Shortened Fig 1/2 run shared by the BG/Q assertions (the full 1500 s
// version is rendered by the bench).
const BgqRunResult& short_bgq_run() {
  static const BgqRunResult result = [] {
    BgqMmpsOptions o;
    o.job_duration = Duration::seconds(500);
    o.idle_margin = Duration::seconds(200);
    o.env_poll_interval = Duration::seconds(60);
    return run_bgq_mmps(o);
  }();
  return result;
}

TEST(Fig1, IdleVisibleBeforeAndAfterJob) {
  const auto& r = short_bgq_run();
  ASSERT_GT(r.bpm_input_power.size(), 5u);
  // "The idle period before and after the job is clearly observable."
  const double idle_before =
      analysis::mean_in_window(r.bpm_input_power, SimTime::zero(), SimTime::from_seconds(190));
  const double active = analysis::mean_in_window(
      r.bpm_input_power, SimTime::from_seconds(260), SimTime::from_seconds(650));
  const double idle_after = analysis::mean_in_window(
      r.bpm_input_power, SimTime::from_seconds(760), SimTime::from_seconds(900));
  EXPECT_GT(active, idle_before + 300.0);
  EXPECT_NEAR(idle_after, idle_before, 0.05 * idle_before);
}

TEST(Fig2, MonEqSeesNoIdleAndMorePoints) {
  const auto& r = short_bgq_run();
  // MonEQ runs with the job: no idle margin in its series, and far more
  // points than the environmental database collected.
  const auto* node_card = [&]() -> const DomainSeries* {
    for (const auto& d : r.moneq_domains) {
      if (d.name == "node_card") return &d;
    }
    return nullptr;
  }();
  ASSERT_NE(node_card, nullptr);
  EXPECT_GT(node_card->points.size(), 10 * r.bpm_input_power.size());
  RunningStats stats;
  for (const auto& p : node_card->points) stats.add(p.value);
  // The very first sample may mix idle and job readings: EMON returns
  // the previous generation, whose staggered domain samples straddle the
  // job launch — the exact inconsistency §II-A warns about.  By the
  // second poll the data is fully at job power; no idle shoulder exists.
  ASSERT_GE(node_card->points.size(), 2u);
  EXPECT_GT(node_card->points[1].value, 0.8 * stats.mean());
  EXPECT_GT(node_card->points.front().value, 690.0);  // never a pure-idle point
}

TEST(Fig2, SevenDomainsPlusNodeCardStack) {
  const auto& r = short_bgq_run();
  EXPECT_EQ(r.moneq_domains.size(), 8u);  // 7 domains + node_card
  // The node_card line sits on top of every individual domain.
  double chip_core_mean = 0.0, node_card_mean = 0.0;
  for (const auto& d : r.moneq_domains) {
    RunningStats s;
    for (const auto& p : d.points) s.add(p.value);
    if (d.name == "chip_core") chip_core_mean = s.mean();
    if (d.name == "node_card") node_card_mean = s.mean();
  }
  EXPECT_GT(chip_core_mean, 500.0);
  EXPECT_GT(node_card_mean, chip_core_mean);
}

TEST(Fig2Fig1, TotalsAgreeBetweenBpmAndMonEq) {
  const auto& r = short_bgq_run();
  // "the power consumption of the node card matches that of the data
  // collected at the BPM in terms of total power consumption" — modulo
  // rack overhead and conversion, the job delta must agree within ~15%.
  const double bpm_active = analysis::mean_in_window(
      r.bpm_input_power, SimTime::from_seconds(260), SimTime::from_seconds(650));
  const double bpm_idle =
      analysis::mean_in_window(r.bpm_input_power, SimTime::zero(), SimTime::from_seconds(190));
  const double bpm_job_delta_dc = (bpm_active - bpm_idle) * 0.92;  // back to DC

  const auto* node_card = [&]() -> const DomainSeries* {
    for (const auto& d : r.moneq_domains) {
      if (d.name == "node_card") return &d;
    }
    return nullptr;
  }();
  ASSERT_NE(node_card, nullptr);
  RunningStats moneq;
  for (const auto& p : node_card->points) moneq.add(p.value);
  // The whole rack ran the job (32 boards); MonEQ sees one board.
  const double idle_board = 698.0;  // calibrated idle of one board
  const double moneq_job_delta = (moneq.mean() - idle_board) * 32.0;
  EXPECT_NEAR(bpm_job_delta_dc, moneq_job_delta, 0.15 * moneq_job_delta);
}

TEST(TableIII, OverheadRowsMatchPaperShape) {
  const auto r32 = run_moneq_overhead(32);
  const auto r512 = run_moneq_overhead(512);
  const auto r1024 = run_moneq_overhead(1024);

  // Collection identical across scales (same per-node work).
  EXPECT_DOUBLE_EQ(r32.collection_s, r512.collection_s);
  EXPECT_DOUBLE_EQ(r512.collection_s, r1024.collection_s);
  EXPECT_NEAR(r32.collection_s, 0.398, 0.02);  // paper: 0.3871 at 1.10 ms

  // Initialization nearly flat, slightly growing (2.7 -> 3.3 ms).
  EXPECT_NEAR(r32.init_s, 0.0027, 0.0004);
  EXPECT_NEAR(r1024.init_s, 0.0032, 0.0004);
  EXPECT_GT(r1024.init_s, r32.init_s);

  // Finalize flat to 512 then roughly doubles (0.151/0.155/0.335).
  EXPECT_NEAR(r32.finalize_s, 0.151, 0.02);
  EXPECT_NEAR(r512.finalize_s, 0.155, 0.02);
  EXPECT_NEAR(r1024.finalize_s, 0.335, 0.06);

  // Total overhead ~0.4% at the 1K scale (paper: "about 0.4%").
  EXPECT_NEAR(r1024.total_s / r1024.app_runtime_s, 0.004, 0.001);
}

TEST(Fig3, RaplGaussShowsIdleActiveAndDips) {
  RaplGaussOptions o;
  o.workload = Duration::seconds(30);
  const auto r = run_rapl_gauss(o);
  ASSERT_GT(r.pkg_power.size(), 100u);

  const double idle = analysis::mean_in_window(r.pkg_power, SimTime::from_seconds(2),
                                               SimTime::from_seconds(7));
  const double active = analysis::mean_in_window(r.pkg_power, SimTime::from_seconds(10),
                                                 SimTime::from_seconds(36));
  EXPECT_LT(idle, 6.0);       // a few watts at idle
  EXPECT_GT(active, 35.0);    // tens of watts under Gaussian elimination
  EXPECT_LT(active, 60.0);    // Fig 3's axis tops at 60 W

  // The rhythmic ~5 W drops: active-phase minima sit several watts below
  // the plateau.
  double plateau = 0.0, dip_floor = 1e9;
  for (const auto& p : r.pkg_power) {
    const double t = p.t.to_seconds();
    if (t > 9.0 && t < 37.0) {
      plateau = std::max(plateau, p.value);
      dip_floor = std::min(dip_floor, p.value);
    }
  }
  EXPECT_GT(plateau - dip_floor, 3.0);
  EXPECT_LT(plateau - dip_floor, 9.0);

  EXPECT_NEAR(r.mean_query_cost_ms, 0.03, 1e-6);  // direct MSR access
}

TEST(Fig4, NoopRampTakesAboutFiveSeconds) {
  const auto r = run_nvml_noop();
  ASSERT_GT(r.board_power.size(), 100u);
  // Starts near the 44 W idle floor, plateaus in the mid-50s.
  EXPECT_NEAR(r.board_power.front().value, 44.0, 4.0);
  const double plateau = analysis::mean_in_window(
      r.board_power, SimTime::from_seconds(9), SimTime::from_seconds(12.4));
  EXPECT_NEAR(plateau, 56.0, 3.0);
  // "it takes about 5 seconds before the power consumption levels off".
  // Smooth the +/-5 W sensor noise first so the settle detector sees the
  // ramp, not individual noise spikes.
  const auto smoothed = analysis::resample_mean(r.board_power, Duration::seconds(1));
  const auto settle = analysis::settle_time(smoothed, 2.0);
  ASSERT_TRUE(settle.found);
  EXPECT_GT(settle.t.to_seconds(), 1.5);
  EXPECT_LT(settle.t.to_seconds(), 8.0);
}

TEST(Fig5, VecaddPhasesAndTemperature) {
  const auto r = run_nvml_vecadd(Duration::seconds(60));
  // Host generation: power still near the noop plateau (GPU idle-ish).
  const double during_gen = analysis::mean_in_window(
      r.board_power, SimTime::from_seconds(6), SimTime::from_seconds(9));
  EXPECT_LT(during_gen, 70.0);
  // Compute plateau well above 100 W ("increases dramatically").
  const double compute = analysis::mean_in_window(
      r.board_power, SimTime::from_seconds(30), SimTime::from_seconds(65));
  EXPECT_GT(compute, 110.0);
  EXPECT_LT(compute, 155.0);
  // Temperature rises steadily through the run.
  ASSERT_GT(r.die_temp.size(), 100u);
  const double t_early = analysis::mean_in_window(r.die_temp, SimTime::from_seconds(1),
                                                  SimTime::from_seconds(10));
  const double t_late = analysis::mean_in_window(r.die_temp, SimTime::from_seconds(55),
                                                 SimTime::from_seconds(70));
  EXPECT_GT(t_late, t_early + 8.0);
  EXPECT_LT(t_late, 75.0);  // Fig 5's right axis tops at ~65 C

  EXPECT_NEAR(r.mean_query_cost_ms, 1.3, 1e-6);
}

TEST(Fig7, ApiDistributionAboveDaemonAndSignificant) {
  const auto api = run_phi_noop(PhiCollector::kInbandApi, Duration::seconds(60));
  const auto daemon = run_phi_noop(PhiCollector::kMicrasDaemon, Duration::seconds(60));
  ASSERT_GT(api.power_samples.size(), 50u);
  ASSERT_GT(daemon.power_samples.size(), 50u);

  const auto api_box = boxplot_stats(api.power_samples);
  const auto daemon_box = boxplot_stats(daemon.power_samples);
  // "while slight, there is a statistically significant difference".
  EXPECT_GT(api_box.median, daemon_box.median + 1.0);
  EXPECT_LT(api_box.median, daemon_box.median + 6.0);
  const auto t = welch_t_test(api.power_samples, daemon.power_samples);
  EXPECT_LT(t.p_value, 0.001);

  // Both distributions live in the Fig 7 plot range.
  EXPECT_GT(daemon_box.whisker_low, 108.0);
  EXPECT_LT(api_box.whisker_high, 124.0);

  // And the per-query costs are the paper's 14.2 ms vs 0.04 ms.
  EXPECT_NEAR(api.mean_query_cost_ms, 14.2, 1e-6);
  EXPECT_NEAR(daemon.mean_query_cost_ms, 0.04, 1e-6);
}

TEST(Fig7, OutOfBandPathDoesNotPerturb) {
  const auto oob = run_phi_noop(PhiCollector::kOutOfBandIpmb, Duration::seconds(60));
  const auto daemon = run_phi_noop(PhiCollector::kMicrasDaemon, Duration::seconds(60));
  ASSERT_GT(oob.power_samples.size(), 50u);
  RunningStats o, d;
  for (const double v : oob.power_samples) o.add(v);
  for (const double v : daemon.power_samples) d.add(v);
  // IPMB readings are coarse (2 W codes) but unbiased relative to the
  // daemon baseline.
  EXPECT_NEAR(o.mean(), d.mean(), 1.5);
}

TEST(Fig8, StampedeSumShowsDatagenThenComputeJump) {
  const auto r = run_phi_stampede_gauss(128);
  ASSERT_GT(r.sum_power.size(), 100u);
  // ~100 s of data generation at the low plateau...
  const double datagen = analysis::mean_in_window(r.sum_power, SimTime::from_seconds(20),
                                                  SimTime::from_seconds(90));
  // ...then the compute plateau.
  const double compute = analysis::mean_in_window(r.sum_power, SimTime::from_seconds(120),
                                                  SimTime::from_seconds(240));
  EXPECT_GT(compute, 2.5 * datagen);  // "Clearly shown is the point where
                                      // data generation stops"
  EXPECT_GT(compute, 20'000.0);       // Fig 8 peaks near 25,000 W
  EXPECT_LT(compute, 28'000.0);
  EXPECT_GT(datagen, 4'000.0);        // not zero: cards idle hot
  EXPECT_LT(datagen, 9'000.0);

  // The jump lands at the end of data generation (~100-110 s).
  const auto rise = analysis::first_rise_above(r.sum_power, (datagen + compute) / 2.0);
  ASSERT_TRUE(rise.found);
  EXPECT_GT(rise.t.to_seconds(), 95.0);
  EXPECT_LT(rise.t.to_seconds(), 115.0);
}

TEST(OverheadTable, CostOrderingAcrossMechanisms) {
  // §II's cross-platform cost comparison:
  //   MSR (0.03) < MICRAS (0.04) << EMON (1.10) < NVML (1.3) << SCIF (14.2)
  const auto rapl = run_rapl_gauss({Duration::seconds(2), Duration::seconds(8),
                                    Duration::seconds(2), Duration::millis(100)});
  const auto noop = run_nvml_noop(Duration::seconds(3));
  const auto api = run_phi_noop(PhiCollector::kInbandApi, Duration::seconds(10));
  const auto daemon = run_phi_noop(PhiCollector::kMicrasDaemon, Duration::seconds(10));
  EXPECT_LT(rapl.mean_query_cost_ms, daemon.mean_query_cost_ms);
  EXPECT_LT(daemon.mean_query_cost_ms, 1.10);
  EXPECT_LT(1.10, noop.mean_query_cost_ms);
  EXPECT_LT(noop.mean_query_cost_ms, api.mean_query_cost_ms);
}

}  // namespace
}  // namespace envmon::scenarios
