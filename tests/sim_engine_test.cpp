#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace envmon::sim {
namespace {

TEST(SimTime, Arithmetic) {
  const SimTime t = SimTime::zero() + Duration::seconds(2);
  EXPECT_EQ(t.ns(), 2'000'000'000);
  EXPECT_EQ((t - SimTime::zero()).to_seconds(), 2.0);
  EXPECT_EQ((t - Duration::millis(500)).ns(), 1'500'000'000);
}

TEST(Duration, Conversions) {
  EXPECT_EQ(Duration::millis(560).ns(), 560'000'000);
  EXPECT_DOUBLE_EQ(Duration::micros(30).to_millis(), 0.03);
  EXPECT_DOUBLE_EQ(Duration::from_seconds(1.5).to_seconds(), 1.5);
  EXPECT_EQ(Duration::seconds(3) / Duration::seconds(1), 3);
}

TEST(Engine, StartsAtZero) {
  Engine e;
  EXPECT_EQ(e.now(), SimTime::zero());
  EXPECT_EQ(e.pending_events(), 0u);
}

TEST(Engine, RunsEventAtScheduledTime) {
  Engine e;
  SimTime fired;
  e.schedule_at(SimTime::from_seconds(1.5), [&] { fired = e.now(); });
  e.run();
  EXPECT_DOUBLE_EQ(fired.to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(e.now().to_seconds(), 1.5);
}

TEST(Engine, ScheduleAfterIsRelative) {
  Engine e;
  e.schedule_at(SimTime::from_seconds(1.0), [&] {
    e.schedule_after(Duration::seconds(2), [] {});
  });
  e.run();
  EXPECT_DOUBLE_EQ(e.now().to_seconds(), 3.0);
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine e;
  e.schedule_at(SimTime::from_seconds(1.0), [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(SimTime::from_seconds(0.5), [] {}), std::logic_error);
}

TEST(Engine, EqualTimestampsRunInInsertionOrder) {
  Engine e;
  std::vector<int> order;
  const SimTime t = SimTime::from_seconds(1.0);
  e.schedule_at(t, [&] { order.push_back(1); });
  e.schedule_at(t, [&] { order.push_back(2); });
  e.schedule_at(t, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, RunUntilAdvancesClockEvenWithoutEvents) {
  Engine e;
  e.run_until(SimTime::from_seconds(10.0));
  EXPECT_DOUBLE_EQ(e.now().to_seconds(), 10.0);
}

TEST(Engine, RunUntilStopsAtHorizon) {
  Engine e;
  int fired = 0;
  e.schedule_at(SimTime::from_seconds(5.0), [&] { ++fired; });
  e.run_until(SimTime::from_seconds(2.0));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(e.pending_events(), 1u);
  e.run_until(SimTime::from_seconds(5.0));  // inclusive horizon
  EXPECT_EQ(fired, 1);
}

TEST(Engine, RunUntilPastThrows) {
  Engine e;
  e.run_until(SimTime::from_seconds(2.0));
  EXPECT_THROW(e.run_until(SimTime::from_seconds(1.0)), std::logic_error);
}

TEST(Engine, CancelledEventDoesNotRun) {
  Engine e;
  int fired = 0;
  TimerHandle h = e.schedule_at(SimTime::from_seconds(1.0), [&] { ++fired; });
  EXPECT_TRUE(h.active());
  h.cancel();
  EXPECT_FALSE(h.active());
  e.run();
  EXPECT_EQ(fired, 0);
}

TEST(Engine, PeriodicTimerFiresOnGrid) {
  Engine e;
  std::vector<double> times;
  e.schedule_periodic(Duration::millis(560), [&] { times.push_back(e.now().to_seconds()); });
  e.run_until(SimTime::from_seconds(2.0));
  ASSERT_EQ(times.size(), 3u);  // 0.56, 1.12, 1.68
  EXPECT_DOUBLE_EQ(times[0], 0.56);
  EXPECT_DOUBLE_EQ(times[2], 1.68);
}

TEST(Engine, PeriodicTimerCancelStopsFiring) {
  Engine e;
  int fired = 0;
  TimerHandle h = e.schedule_periodic(Duration::seconds(1), [&] { ++fired; });
  e.run_until(SimTime::from_seconds(3.5));
  EXPECT_EQ(fired, 3);
  h.cancel();
  e.run_until(SimTime::from_seconds(10.0));
  EXPECT_EQ(fired, 3);
}

TEST(Engine, PeriodicTimerCanCancelItself) {
  Engine e;
  int fired = 0;
  TimerHandle h;
  h = e.schedule_periodic(Duration::seconds(1), [&] {
    if (++fired == 2) h.cancel();
  });
  e.run_until(SimTime::from_seconds(10.0));
  EXPECT_EQ(fired, 2);
}

TEST(Engine, NonPositivePeriodicIntervalThrows) {
  Engine e;
  EXPECT_THROW(e.schedule_periodic(Duration::nanos(0), [] {}), std::invalid_argument);
  EXPECT_THROW(e.schedule_periodic(Duration::nanos(-5), [] {}), std::invalid_argument);
}

TEST(Engine, NestedSchedulingFromEvent) {
  Engine e;
  std::vector<double> times;
  e.schedule_at(SimTime::from_seconds(1.0), [&] {
    times.push_back(e.now().to_seconds());
    e.schedule_after(Duration::seconds(1), [&] { times.push_back(e.now().to_seconds()); });
  });
  e.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
}

TEST(Engine, EventCountTracksExecution) {
  Engine e;
  for (int i = 1; i <= 5; ++i) {
    e.schedule_at(SimTime::from_seconds(i), [] {});
  }
  e.run();
  EXPECT_EQ(e.events_executed(), 5u);
}

TEST(Engine, ManyEventsStressOrdering) {
  Engine e;
  std::vector<double> times;
  // Insert out of order; must execute sorted.
  for (int i = 999; i >= 0; --i) {
    e.schedule_at(SimTime::from_ns(i * 1000), [&, i] {
      times.push_back(static_cast<double>(i));
    });
  }
  e.run();
  ASSERT_EQ(times.size(), 1000u);
  for (std::size_t i = 1; i < times.size(); ++i) EXPECT_LT(times[i - 1], times[i]);
}

}  // namespace
}  // namespace envmon::sim
