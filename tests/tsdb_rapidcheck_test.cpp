// RapidCheck mirror of the core codec/fold properties (compiled only
// when the root CMakeLists.txt probe could fetch RapidCheck; see
// tests/tsdb_property_test.cpp for the always-on in-repo harness).
// RapidCheck adds what the mini-harness lacks: generator-driven input
// distribution and automatic shrinking of failing cases to minimal
// counterexamples.  The invariants are intentionally the same — a
// failure here should reproduce under the in-repo harness and vice
// versa.

#include <gtest/gtest.h>
#include <rapidcheck/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "tsdb/codec.hpp"
#include "tsdb/simd.hpp"

namespace envmon::tsdb {
namespace {

constexpr std::size_t kRows = 16;  // Block::kSubchunkRows

std::vector<simd::Variant> compiled_variants() {
  std::vector<simd::Variant> out;
  for (std::size_t i = 0; i < simd::kVariantCount; ++i) {
    const auto v = static_cast<simd::Variant>(i);
    if (simd::variant_available(v)) out.push_back(v);
  }
  return out;
}

RC_GTEST_PROP(RcCodec, DeltaOfDeltaRoundtripsOnAllVariants,
              (const std::vector<std::int64_t>& vals)) {
  RC_PRE(!vals.empty());
  BitWriter w;
  DeltaOfDeltaEncoder enc;
  for (const std::int64_t v : vals) enc.append(v, w);
  const auto& stream = w.bytes();

  BitReader r(stream);
  DeltaOfDeltaDecoder dec;
  for (const std::int64_t v : vals) RC_ASSERT(dec.next(r) == v);

  std::vector<std::int64_t> out(vals.size());
  for (const simd::Variant v : compiled_variants()) {
    simd::kernels(v).decode_dod(stream.data(), stream.size(), vals.size(), out.data());
    RC_ASSERT(out == vals);
  }
}

RC_GTEST_PROP(RcCodec, XorColumnRoundtripsOnAllVariants,
              (const std::vector<std::uint64_t>& patterns)) {
  RC_PRE(!patterns.empty());
  std::vector<double> vals(patterns.size());
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    vals[i] = std::bit_cast<double>(patterns[i]);
  }

  BitWriter w;
  std::vector<std::uint32_t> offsets;
  for (std::size_t begin = 0; begin < vals.size(); begin += kRows) {
    offsets.push_back(static_cast<std::uint32_t>(w.bit_size()));
    XorEncoder enc;
    const std::size_t end = std::min(begin + kRows, vals.size());
    for (std::size_t i = begin; i < end; ++i) enc.append(vals[i], w);
  }
  const auto& stream = w.bytes();

  std::vector<double> out(vals.size());
  for (const simd::Variant v : compiled_variants()) {
    simd::kernels(v).decode_xor_column(stream.data(), stream.size(), offsets.data(),
                                       offsets.size(), vals.size(), out.data());
    for (std::size_t i = 0; i < vals.size(); ++i) {
      RC_ASSERT(std::bit_cast<std::uint64_t>(out[i]) == patterns[i]);
    }
  }
}

RC_GTEST_PROP(RcSimd, FoldsAgreeAcrossVariants, (const std::vector<std::uint64_t>& patterns)) {
  double v[kRows];
  const std::size_t n = std::min(patterns.size(), kRows);
  for (std::size_t i = 0; i < n; ++i) v[i] = std::bit_cast<double>(patterns[i]);

  simd::SubchunkFold want;
  simd::kernels(simd::Variant::kScalar).fold_subchunk(v, n, want);
  for (const simd::Variant var : compiled_variants()) {
    simd::SubchunkFold got;
    simd::kernels(var).fold_subchunk(v, n, got);
    RC_ASSERT(std::bit_cast<std::uint64_t>(got.sum) == std::bit_cast<std::uint64_t>(want.sum));
    RC_ASSERT(std::bit_cast<std::uint64_t>(got.sum_sq) ==
              std::bit_cast<std::uint64_t>(want.sum_sq));
    RC_ASSERT(got.finite == want.finite);
    if (want.finite > 0) {
      RC_ASSERT(std::bit_cast<std::uint64_t>(got.min) == std::bit_cast<std::uint64_t>(want.min));
      RC_ASSERT(std::bit_cast<std::uint64_t>(got.max) == std::bit_cast<std::uint64_t>(want.max));
    }
    RC_ASSERT(std::bit_cast<std::uint64_t>(simd::kernels(var).sum_subchunk(v, n)) ==
              std::bit_cast<std::uint64_t>(want.sum));
  }
}

}  // namespace
}  // namespace envmon::tsdb
