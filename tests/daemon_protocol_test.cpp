// Protocol-layer tests for envmond (DESIGN.md §14): codec round-trips,
// hostile-input robustness (garbage, truncation, bit flips), version
// negotiation, and the SessionCore violation taxonomy.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "daemon/protocol.hpp"
#include "daemon/session.hpp"
#include "sim/time.hpp"

namespace envmon::daemon {
namespace {

tsdb::Record make_record(std::int64_t ns, std::string metric, double value,
                         int rack = 0, int card = 0) {
  tsdb::Record rec;
  rec.timestamp = sim::SimTime::from_ns(ns);
  rec.location = {rack, 0, 1, card};
  rec.metric = std::move(metric);
  rec.value = value;
  return rec;
}

std::optional<ErrorReply> error_of(const SessionCore::Action& action) {
  if (action.replies.empty()) return std::nullopt;
  return decode_error(action.replies.back());
}

// ---------------------------------------------------------------- framing

TEST(DaemonFraming, RoundTripAndChecksum) {
  const std::vector<std::uint8_t> payload{1, 2, 3, 250, 251, 252};
  auto framed = frame(payload);
  ASSERT_EQ(framed.size(), kFrameHeaderBytes + payload.size());

  const auto header = decode_frame_header(std::span(framed).first(kFrameHeaderBytes));
  EXPECT_EQ(header.payload_len, payload.size());
  EXPECT_TRUE(frame_payload_ok(header, std::span(framed).subspan(kFrameHeaderBytes)));

  framed[kFrameHeaderBytes + 2] ^= 0x40;  // flip one payload bit
  EXPECT_FALSE(frame_payload_ok(header, std::span(framed).subspan(kFrameHeaderBytes)));
}

// ----------------------------------------------------------- codec round-trips

TEST(DaemonCodec, HelloRoundTrip) {
  Hello in;
  in.ver_min = 1;
  in.ver_max = 2;
  in.caps_requested = kCapDictSync | kCapDurableFlush;
  in.tenant = "acceptance";
  const auto out = decode_hello(encode_hello(in));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->ver_min, in.ver_min);
  EXPECT_EQ(out->ver_max, in.ver_max);
  EXPECT_EQ(out->caps_requested, in.caps_requested);
  EXPECT_EQ(out->tenant, in.tenant);
}

TEST(DaemonCodec, HelloReplyRoundTrip) {
  HelloReply in;
  in.version = 2;
  in.caps_granted = kCapDictSync;
  in.session_id = 42;
  in.max_frame_bytes = 1 << 20;
  in.max_batch_rows = 4096;
  in.credit_window_rows = 65536;
  const auto out = decode_hello_reply(encode_hello_reply(in));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->version, in.version);
  EXPECT_EQ(out->caps_granted, in.caps_granted);
  EXPECT_EQ(out->session_id, in.session_id);
  EXPECT_EQ(out->max_frame_bytes, in.max_frame_bytes);
  EXPECT_EQ(out->max_batch_rows, in.max_batch_rows);
  EXPECT_EQ(out->credit_window_rows, in.credit_window_rows);
}

TEST(DaemonCodec, BatchReplyCarriesTypedRejectCounts) {
  BatchReply in;
  in.batch_seq = 7;
  in.accepted = 90;
  in.rejected.emplace_back(StatusCode::kInvalidArgument, 6);
  in.rejected.emplace_back(StatusCode::kResourceExhausted, 3);
  in.rejected.emplace_back(StatusCode::kUnavailable, 1);
  in.credits_released = 100;
  const auto out = decode_batch_reply(encode_batch_reply(in));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->batch_seq, in.batch_seq);
  EXPECT_EQ(out->accepted, in.accepted);
  ASSERT_EQ(out->rejected.size(), 3u);
  EXPECT_EQ(out->rejected[0].first, StatusCode::kInvalidArgument);
  EXPECT_EQ(out->rejected[0].second, 6u);
  EXPECT_EQ(out->rejected[1].first, StatusCode::kResourceExhausted);
  EXPECT_EQ(out->rejected[2].first, StatusCode::kUnavailable);
  EXPECT_EQ(out->credits_released, 100u);
}

TEST(DaemonCodec, ErrorReplyMapsToTypedStatus) {
  const auto out = decode_error(
      encode_error(ErrorReply{StatusCode::kResourceExhausted, "window overrun"}));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->code, StatusCode::kResourceExhausted);
  const Status s = out->to_status();
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(s.message(), "window overrun");
}

TEST(DaemonCodec, ControlFramesRoundTrip) {
  EXPECT_EQ(decode_ping(encode_ping(77)).value_or(0), 77u);
  EXPECT_EQ(decode_pong(encode_pong(78)).value_or(0), 78u);
  const auto flush = decode_flush(encode_flush(FlushRequest{9}));
  ASSERT_TRUE(flush.has_value());
  EXPECT_EQ(flush->token, 9u);
  const auto freply = decode_flush_reply(encode_flush_reply(FlushReply{9, 1234, true}));
  ASSERT_TRUE(freply.has_value());
  EXPECT_EQ(freply->rows_total, 1234u);
  EXPECT_TRUE(freply->durable);
}

TEST(DaemonCodec, InsertBatchInlineNamesRoundTrip) {
  std::vector<tsdb::Record> records;
  for (int i = 0; i < 10; ++i) {
    records.push_back(make_record(1000 + i, "input_power_watts", 100.5 + i, i % 3, i));
  }
  const auto payload = encode_insert_batch(5, records, /*dict_sync=*/false, {});
  const auto out = decode_insert_batch(payload, /*dict_sync=*/false, {});
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->batch_seq, 5u);
  ASSERT_EQ(out->records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(out->records[i].timestamp.ns(), records[i].timestamp.ns());
    EXPECT_EQ(out->records[i].location, records[i].location);
    EXPECT_EQ(out->records[i].metric, records[i].metric);
    EXPECT_EQ(out->records[i].value, records[i].value);
  }
}

TEST(DaemonCodec, InsertBatchDictionaryRoundTrip) {
  const std::vector<std::string> dictionary{"input_power_watts", "coolant_flow_lpm"};
  std::vector<tsdb::Record> records;
  std::vector<std::uint32_t> ids;
  for (int i = 0; i < 6; ++i) {
    records.push_back(make_record(2000 + i, dictionary[static_cast<std::size_t>(i % 2)],
                                  1.0 * i));
    ids.push_back(static_cast<std::uint32_t>(i % 2));
  }
  const auto payload = encode_insert_batch(1, records, /*dict_sync=*/true, ids);
  const auto out = decode_insert_batch(payload, /*dict_sync=*/true, dictionary);
  ASSERT_TRUE(out.has_value());
  ASSERT_EQ(out->records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(out->records[i].metric, records[i].metric);
  }
}

TEST(DaemonCodec, InsertBatchUndefinedMetricIdIsTyped) {
  const std::vector<std::string> dictionary{"watts"};
  const auto records = std::vector<tsdb::Record>{make_record(1, "watts", 1.0)};
  const auto payload = encode_insert_batch(1, records, true, {7});
  BatchDecodeError err;
  EXPECT_FALSE(decode_insert_batch(payload, true, dictionary, &err).has_value());
  EXPECT_TRUE(err.bad_metric_id);
  EXPECT_EQ(err.metric_id, 7u);
}

TEST(DaemonCodec, InsertBatchHostileRowCountRejectedCheaply) {
  // Claims 2^31 rows in a tiny payload; the decoder must refuse before
  // reserving anything.
  tsdb::wire::Writer w;
  w.u8(static_cast<std::uint8_t>(FrameType::kInsertBatch));
  w.u64(1);
  w.u32(1u << 31);
  BatchDecodeError err;
  EXPECT_FALSE(decode_insert_batch(w.take(), false, {}, &err).has_value());
  EXPECT_TRUE(err.structural);
}

TEST(DaemonCodec, TruncatedFramesNeverDecode) {
  const auto records = std::vector<tsdb::Record>{make_record(1, "watts", 1.0),
                                                 make_record(2, "watts", 2.0)};
  const auto whole = encode_insert_batch(3, records, false, {});
  for (std::size_t cut = 1; cut < whole.size(); ++cut) {
    const std::span<const std::uint8_t> part(whole.data(), whole.size() - cut);
    EXPECT_FALSE(decode_insert_batch(part, false, {}).has_value());
  }
  const auto hello = encode_hello(Hello{1, 2, 0, "t"});
  for (std::size_t cut = 1; cut < hello.size(); ++cut) {
    EXPECT_FALSE(
        decode_hello(std::span(hello.data(), hello.size() - cut)).has_value());
  }
}

TEST(DaemonCodec, FuzzedPayloadsNeverCrash) {
  std::mt19937 rng(0xE7F0D5);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<std::size_t> len(0, 96);
  const std::vector<std::string> dictionary{"watts"};
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::uint8_t> junk(len(rng));
    for (auto& b : junk) b = static_cast<std::uint8_t>(byte(rng));
    (void)decode_hello(junk);
    (void)decode_hello_reply(junk);
    (void)decode_metric_def(junk);
    (void)decode_insert_batch(junk, round % 2 == 0, dictionary);
    (void)decode_batch_reply(junk);
    (void)decode_flush(junk);
    (void)decode_flush_reply(junk);
    (void)decode_ping(junk);
    (void)decode_pong(junk);
    (void)decode_error(junk);
  }
}

TEST(DaemonCodec, MutatedValidFramesNeverCrash) {
  std::vector<tsdb::Record> records;
  for (int i = 0; i < 4; ++i) records.push_back(make_record(10 + i, "watts", 1.0 * i));
  const auto base = encode_insert_batch(1, records, false, {});
  std::mt19937 rng(0xBADF00D);
  std::uniform_int_distribution<std::size_t> pos(0, base.size() - 1);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int round = 0; round < 2000; ++round) {
    auto mutated = base;
    mutated[pos(rng)] = static_cast<std::uint8_t>(byte(rng));
    (void)decode_insert_batch(mutated, false, {});
  }
}

// ------------------------------------------------------------- status wire

TEST(DaemonStatus, WireValuesAreFrozen) {
  // On-wire numbers (DESIGN.md §14.5).  Changing any of these breaks
  // deployed producers — the test pins them.
  EXPECT_EQ(status_code_to_wire(StatusCode::kOk), 0);
  EXPECT_EQ(status_code_to_wire(StatusCode::kInvalidArgument), 1);
  EXPECT_EQ(status_code_to_wire(StatusCode::kNotFound), 2);
  EXPECT_EQ(status_code_to_wire(StatusCode::kPermissionDenied), 3);
  EXPECT_EQ(status_code_to_wire(StatusCode::kUnavailable), 4);
  EXPECT_EQ(status_code_to_wire(StatusCode::kOutOfRange), 5);
  EXPECT_EQ(status_code_to_wire(StatusCode::kFailedPrecondition), 6);
  EXPECT_EQ(status_code_to_wire(StatusCode::kResourceExhausted), 7);
  EXPECT_EQ(status_code_to_wire(StatusCode::kUnsupported), 8);
  EXPECT_EQ(status_code_to_wire(StatusCode::kInternal), 9);
  EXPECT_EQ(status_code_to_wire(StatusCode::kUnauthenticated), 10);
  EXPECT_EQ(status_code_to_wire(StatusCode::kAborted), 11);
  EXPECT_EQ(status_code_to_wire(StatusCode::kDataLoss), 12);
}

TEST(DaemonStatus, UnknownWireValueDecodesAsInternal) {
  EXPECT_EQ(status_code_from_wire(999), StatusCode::kInternal);
  for (std::uint16_t v = 0; v < kStatusCodeCount; ++v) {
    EXPECT_EQ(status_code_to_wire(status_code_from_wire(v)), v);
  }
}

// ------------------------------------------------------------- state machine

SessionCore::Config small_config() {
  SessionCore::Config cfg;
  cfg.max_batch_rows = 8;
  cfg.credit_window_rows = 16;
  cfg.session_id = 1;
  return cfg;
}

SessionCore::Action do_hello(SessionCore& core, std::uint32_t ver_min = 1,
                             std::uint32_t ver_max = 2,
                             std::uint32_t caps = kCapDictSync | kCapDurableFlush) {
  return core.on_frame(encode_hello(Hello{ver_min, ver_max, caps, "tenant"}));
}

TEST(DaemonSession, NegotiatesHighestCommonVersion) {
  SessionCore core(small_config());
  const auto action = do_hello(core);
  ASSERT_EQ(action.replies.size(), 1u);
  const auto reply = decode_hello_reply(action.replies[0]);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->version, kProtocolVersionMax);
  EXPECT_EQ(reply->caps_granted, kCapDictSync | kCapDurableFlush);
  EXPECT_TRUE(core.handshaken());
}

TEST(DaemonSession, DowngradesToV1WithoutCapabilities) {
  SessionCore core(small_config());
  const auto action = do_hello(core, 1, 1);
  const auto reply = decode_hello_reply(action.replies.at(0));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->version, 1u);
  EXPECT_EQ(reply->caps_granted, 0u);  // v1 predates every capability
}

TEST(DaemonSession, RejectsDisjointVersionRange) {
  SessionCore core(small_config());
  const auto action = do_hello(core, 99, 120);
  const auto err = error_of(action);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, StatusCode::kUnsupported);
  EXPECT_TRUE(action.close);
  EXPECT_TRUE(core.closed());
}

TEST(DaemonSession, RequiresHelloFirst) {
  SessionCore core(small_config());
  const auto action = core.on_frame(encode_ping(1));
  const auto err = error_of(action);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, StatusCode::kFailedPrecondition);
  EXPECT_EQ(core.protocol_errors(), 1u);
}

TEST(DaemonSession, RejectsDuplicateHello) {
  SessionCore core(small_config());
  (void)do_hello(core);
  const auto action = do_hello(core);
  ASSERT_TRUE(error_of(action).has_value());
  EXPECT_EQ(error_of(action)->code, StatusCode::kFailedPrecondition);
}

TEST(DaemonSession, EnforcesBatchSequence) {
  SessionCore core(small_config());
  (void)do_hello(core, 1, 2, 0);  // inline metric names
  const auto records = std::vector<tsdb::Record>{make_record(1, "watts", 1.0)};
  auto ok = core.on_frame(encode_insert_batch(1, records, false, {}));
  ASSERT_TRUE(ok.batch.has_value());
  // Skipping seq 2 is a violation: the stream lost a frame somewhere.
  const auto action = core.on_frame(encode_insert_batch(3, records, false, {}));
  ASSERT_TRUE(error_of(action).has_value());
  EXPECT_EQ(error_of(action)->code, StatusCode::kFailedPrecondition);
  EXPECT_TRUE(core.closed());
}

TEST(DaemonSession, EnforcesCreditWindow) {
  SessionCore core(small_config());  // window: 16 rows
  (void)do_hello(core, 1, 2, 0);  // inline metric names
  std::vector<tsdb::Record> eight;
  for (int i = 0; i < 8; ++i) eight.push_back(make_record(i, "watts", 1.0));
  ASSERT_TRUE(core.on_frame(encode_insert_batch(1, eight, false, {})).batch.has_value());
  ASSERT_TRUE(core.on_frame(encode_insert_batch(2, eight, false, {})).batch.has_value());
  EXPECT_EQ(core.outstanding_rows(), 16u);
  const auto action = core.on_frame(encode_insert_batch(3, eight, false, {}));
  ASSERT_TRUE(error_of(action).has_value());
  EXPECT_EQ(error_of(action)->code, StatusCode::kResourceExhausted);
}

TEST(DaemonSession, ReleasedCreditsReopenTheWindow) {
  SessionCore core(small_config());
  (void)do_hello(core, 1, 2, 0);  // inline metric names
  std::vector<tsdb::Record> eight;
  for (int i = 0; i < 8; ++i) eight.push_back(make_record(i, "watts", 1.0));
  (void)core.on_frame(encode_insert_batch(1, eight, false, {}));
  (void)core.on_frame(encode_insert_batch(2, eight, false, {}));
  core.release_credits(8);
  EXPECT_EQ(core.outstanding_rows(), 8u);
  EXPECT_TRUE(core.on_frame(encode_insert_batch(3, eight, false, {})).batch.has_value());
}

TEST(DaemonSession, RejectsOversizedBatch) {
  SessionCore core(small_config());  // max_batch_rows: 8
  (void)do_hello(core, 1, 2, 0);  // inline metric names
  std::vector<tsdb::Record> nine;
  for (int i = 0; i < 9; ++i) nine.push_back(make_record(i, "watts", 1.0));
  const auto action = core.on_frame(encode_insert_batch(1, nine, false, {}));
  ASSERT_TRUE(error_of(action).has_value());
  EXPECT_EQ(error_of(action)->code, StatusCode::kOutOfRange);
}

TEST(DaemonSession, MetricDefRequiresCapability) {
  SessionCore core(small_config());
  (void)do_hello(core, 1, 1);  // v1: dict sync never granted
  const auto action = core.on_frame(encode_metric_def(MetricDef{0, "watts"}));
  ASSERT_TRUE(error_of(action).has_value());
  EXPECT_EQ(error_of(action)->code, StatusCode::kUnsupported);
}

TEST(DaemonSession, MetricRedefinitionIsFatal) {
  SessionCore core(small_config());
  (void)do_hello(core);
  EXPECT_FALSE(core.on_frame(encode_metric_def(MetricDef{0, "watts"})).close);
  // Same id, same name: idempotent re-announcement is fine.
  EXPECT_FALSE(core.on_frame(encode_metric_def(MetricDef{0, "watts"})).close);
  const auto action = core.on_frame(encode_metric_def(MetricDef{0, "amps"}));
  ASSERT_TRUE(error_of(action).has_value());
  EXPECT_EQ(error_of(action)->code, StatusCode::kFailedPrecondition);
}

TEST(DaemonSession, UndefinedDictionaryIdIsFatal) {
  SessionCore core(small_config());
  (void)do_hello(core);
  const auto records = std::vector<tsdb::Record>{make_record(1, "watts", 1.0)};
  const auto action = core.on_frame(encode_insert_batch(1, records, true, {3}));
  ASSERT_TRUE(error_of(action).has_value());
  EXPECT_EQ(error_of(action)->code, StatusCode::kInvalidArgument);
}

TEST(DaemonSession, GoodbyeClosesCleanly) {
  SessionCore core(small_config());
  (void)do_hello(core);
  const auto action = core.on_frame(encode_goodbye());
  EXPECT_TRUE(action.goodbye);
  EXPECT_TRUE(action.close);
  EXPECT_TRUE(core.closed());
  EXPECT_EQ(core.protocol_errors(), 0u);
}

TEST(DaemonSession, BatchReplyMirrorsInsertResult) {
  SessionCore core(small_config());
  (void)do_hello(core);
  tsdb::EnvDatabase::BatchResult result;
  result.accepted = 5;
  result.rejected_out_of_order = 2;
  const auto reply = decode_batch_reply(core.make_batch_reply(4, result, 7));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->batch_seq, 4u);
  EXPECT_EQ(reply->accepted, 5u);
  ASSERT_EQ(reply->rejected.size(), 1u);  // zero-count codes are elided
  EXPECT_EQ(reply->rejected[0].first, StatusCode::kInvalidArgument);
  EXPECT_EQ(reply->rejected[0].second, 2u);
  EXPECT_EQ(reply->credits_released, 7u);
}

TEST(DaemonSession, CapabilityGatingByVersion) {
  EXPECT_EQ(caps_allowed_for(1), 0u);
  EXPECT_EQ(caps_allowed_for(2) & kCapDictSync, kCapDictSync);
  EXPECT_EQ(caps_allowed_for(2) & kCapDurableFlush, kCapDurableFlush);
}

}  // namespace
}  // namespace envmon::daemon
