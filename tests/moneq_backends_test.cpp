#include <gtest/gtest.h>

#include "ipmi/bmc.hpp"
#include "mic/smc.hpp"
#include "moneq/backend_bgq.hpp"
#include "moneq/backend_mic.hpp"
#include "moneq/backend_nvml.hpp"
#include "moneq/backend_rapl.hpp"
#include "workloads/library.hpp"

namespace envmon::moneq {
namespace {

using sim::Duration;
using sim::SimTime;

TEST(BgqBackend, EmitsAllDomainsPlusNodeCard) {
  sim::Engine engine;
  bgq::BgqMachine machine;
  bgq::EmonSession emon(machine.board(0));
  BgqBackend backend(emon);
  sim::CostMeter meter;
  const auto r = backend.collect(SimTime::from_seconds(2), meter);
  ASSERT_TRUE(r.is_ok());
  // 7 domains x (power, voltage, current) + node_card power.
  EXPECT_EQ(r.value().size(), 22u);
  bool found_node_card = false;
  double domain_sum = 0.0, node_card = 0.0;
  for (const auto& s : r.value()) {
    if (s.domain == "node_card") {
      found_node_card = true;
      node_card = s.value;
    } else if (s.quantity == Quantity::kPowerWatts) {
      domain_sum += s.value;
    }
  }
  ASSERT_TRUE(found_node_card);
  EXPECT_NEAR(node_card, domain_sum, 1e-6);  // the Fig 2 top line
  EXPECT_NEAR(meter.total().to_millis(), 1.10, 1e-9);
}

TEST(BgqBackend, PropagatesEarlyUnavailability) {
  sim::Engine engine;
  bgq::BgqMachine machine;
  bgq::EmonSession emon(machine.board(0));
  BgqBackend backend(emon);
  sim::CostMeter meter;
  const auto r = backend.collect(SimTime::from_ns(1000), meter);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  // The failed query still cost wall time.
  EXPECT_GT(meter.total().ns(), 0);
}

TEST(BgqBackend, MinIntervalIsEmonGeneration) {
  sim::Engine engine;
  bgq::BgqMachine machine;
  bgq::EmonSession emon(machine.board(0));
  BgqBackend backend(emon);
  EXPECT_EQ(backend.min_polling_interval(), Duration::millis(560));
  EXPECT_EQ(backend.platform(), PlatformId::kBgq);
}

TEST(RaplBackend, FirstCollectEnergyOnlyThenPower) {
  sim::Engine engine;
  rapl::CpuPackage pkg(engine);
  const auto w = workloads::dgemm({Duration::seconds(100), 0.8, 0.4});
  pkg.run_workload(&w, SimTime::zero());
  rapl::MsrRaplReader reader(pkg, rapl::Credentials{true, 0});
  RaplBackend backend(reader);
  sim::CostMeter meter;

  engine.run_until(SimTime::from_seconds(1));
  const auto first = backend.collect(engine.now(), meter);
  ASSERT_TRUE(first.is_ok());
  for (const auto& s : first.value()) {
    EXPECT_EQ(s.quantity, Quantity::kEnergyJoules) << s.domain;
  }

  engine.run_until(SimTime::from_seconds(2));
  const auto second = backend.collect(engine.now(), meter);
  ASSERT_TRUE(second.is_ok());
  bool found_pkg_power = false;
  for (const auto& s : second.value()) {
    if (s.domain == "PKG" && s.quantity == Quantity::kPowerWatts) {
      found_pkg_power = true;
      // DGEMM at 0.8 core / 0.4 dram: pkg ~ 1.6+33.6 + 1.9+2.6 = 39.7 W.
      EXPECT_NEAR(s.value, 39.7, 1.5);
    }
  }
  EXPECT_TRUE(found_pkg_power);
}

TEST(RaplBackend, PermissionDeniedSurfaces) {
  sim::Engine engine;
  rapl::CpuPackage pkg(engine);
  rapl::MsrRaplReader reader(pkg, rapl::Credentials{false, 1000});
  RaplBackend backend(reader);
  sim::CostMeter meter;
  const auto r = backend.collect(SimTime::from_seconds(1), meter);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kPermissionDenied);
}

TEST(RaplBackend, IntervalLimitsMatchPaper) {
  sim::Engine engine;
  rapl::CpuPackage pkg(engine);
  rapl::MsrRaplReader reader(pkg, rapl::Credentials{true, 0});
  RaplBackend backend(reader);
  EXPECT_EQ(backend.min_polling_interval(), Duration::millis(60));
  EXPECT_EQ(backend.max_polling_interval(), Duration::seconds(60));
}

TEST(NvmlBackend, CollectsPowerTempMemoryFan) {
  sim::Engine engine;
  nvml::NvmlLibrary library(engine);
  library.attach_device(std::make_shared<nvml::GpuDevice>(nvml::k20_spec()));
  (void)library.init();
  nvml::NvmlDeviceHandle handle;
  (void)library.device_get_handle_by_index(0, &handle);
  NvmlBackend backend(library, handle);
  sim::CostMeter meter;
  engine.run_until(SimTime::from_seconds(1));
  const auto r = backend.collect(engine.now(), meter);
  ASSERT_TRUE(r.is_ok());
  ASSERT_EQ(r.value().size(), 5u);  // power, temp, used, free, fan
  EXPECT_EQ(r.value()[0].domain, "board");
  EXPECT_NEAR(r.value()[0].value, 44.0, 6.0);
  // Four device queries at 1.3 ms each.
  EXPECT_NEAR(meter.total().to_millis(), 4 * 1.3, 1e-6);
}

TEST(NvmlBackend, UnsupportedGpuSurfacesError) {
  sim::Engine engine;
  nvml::NvmlLibrary library(engine);
  library.attach_device(std::make_shared<nvml::GpuDevice>(nvml::m2090_spec()));
  (void)library.init();
  nvml::NvmlDeviceHandle handle;
  (void)library.device_get_handle_by_index(0, &handle);
  NvmlBackend backend(library, handle);
  sim::CostMeter meter;
  const auto r = backend.collect(SimTime::from_seconds(1), meter);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

struct PhiFixture {
  sim::Engine engine;
  mic::PhiCard card{engine};
  mic::ScifNetwork net;
  mic::SysMgmtService service{card, net, 1};
  mic::MicrasDaemon daemon{card};
};

TEST(MicInbandBackend, CollectsAndCharges) {
  PhiFixture f;
  auto client = mic::SysMgmtClient::connect(f.net, 1);
  ASSERT_TRUE(client.is_ok());
  MicInbandBackend backend(client.value());
  sim::CostMeter meter;
  f.engine.run_until(SimTime::from_seconds(1));
  const auto r = backend.collect(f.engine.now(), meter);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().size(), 2u);  // card power + die temp
  EXPECT_NEAR(meter.total().to_millis(), 2 * 14.2, 1e-6);
  EXPECT_EQ(f.card.inband_queries_served(), 2u);
}

TEST(MicDaemonBackend, CollectsRailsAndThermals) {
  PhiFixture f;
  f.daemon.start();
  MicDaemonBackend backend(f.daemon);
  sim::CostMeter meter;
  f.engine.run_until(SimTime::from_seconds(1));
  const auto r = backend.collect(f.engine.now(), meter);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().size(), 8u);  // 4 power rails + 4 temperatures
  EXPECT_NEAR(meter.total().to_millis(), 2 * 0.04, 1e-6);  // two file reads
  EXPECT_EQ(f.card.inband_queries_served(), 0u);           // no perturbation
}

TEST(MicDaemonBackend, DaemonDownSurfaces) {
  PhiFixture f;  // daemon not started
  MicDaemonBackend backend(f.daemon);
  sim::CostMeter meter;
  const auto r = backend.collect(SimTime::from_seconds(1), meter);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace envmon::moneq
