#include "analysis/render.hpp"
#include "analysis/series_ops.hpp"

#include <gtest/gtest.h>

namespace envmon::analysis {
namespace {

using sim::Duration;
using sim::SimTime;
using sim::TracePoint;

std::vector<TracePoint> ramp(double start_s, double end_s, double step_s, double slope) {
  std::vector<TracePoint> pts;
  for (double t = start_s; t < end_s; t += step_s) {
    pts.push_back({SimTime::from_seconds(t), slope * t});
  }
  return pts;
}

TEST(Resample, AveragesWithinBuckets) {
  std::vector<TracePoint> pts;
  for (int i = 0; i < 10; ++i) {
    pts.push_back({SimTime::from_seconds(i), i < 5 ? 10.0 : 20.0});
  }
  const auto out = resample_mean(pts, Duration::seconds(5));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].value, 10.0);
  EXPECT_DOUBLE_EQ(out[1].value, 20.0);
}

TEST(Resample, EmptyBucketsHoldPreviousValue) {
  std::vector<TracePoint> pts = {{SimTime::from_seconds(0), 5.0},
                                 {SimTime::from_seconds(10), 9.0}};
  const auto out = resample_mean(pts, Duration::seconds(2));
  ASSERT_EQ(out.size(), 6u);
  EXPECT_DOUBLE_EQ(out[1].value, 5.0);  // held
  EXPECT_DOUBLE_EQ(out[5].value, 9.0);
}

TEST(Resample, EmptyInput) {
  EXPECT_TRUE(resample_mean({}, Duration::seconds(1)).empty());
}

TEST(Integrate, ConstantPower) {
  std::vector<TracePoint> pts;
  for (int i = 0; i <= 10; ++i) pts.push_back({SimTime::from_seconds(i), 50.0});
  EXPECT_DOUBLE_EQ(integrate(pts), 500.0);  // 50 W x 10 s
}

TEST(Integrate, TrapezoidOnRamp) {
  const auto pts = ramp(0.0, 10.001, 1.0, 2.0);  // v = 2t, 0..10
  EXPECT_NEAR(integrate(pts), 100.0, 1e-9);      // integral of 2t = t^2
}

TEST(Integrate, FewPoints) {
  EXPECT_DOUBLE_EQ(integrate({}), 0.0);
  const std::vector<TracePoint> one = {{SimTime::zero(), 5.0}};
  EXPECT_DOUBLE_EQ(integrate(one), 0.0);
}

TEST(MeanInWindow, FiltersByTime) {
  std::vector<TracePoint> pts;
  for (int i = 0; i < 10; ++i) pts.push_back({SimTime::from_seconds(i), double(i)});
  EXPECT_DOUBLE_EQ(mean_in_window(pts, SimTime::from_seconds(2), SimTime::from_seconds(4)),
                   3.0);
  EXPECT_DOUBLE_EQ(mean_in_window(pts, SimTime::from_seconds(50), SimTime::from_seconds(60)),
                   0.0);
}

TEST(FirstRiseAbove, FindsCrossing) {
  const auto pts = ramp(0.0, 10.0, 0.5, 1.0);
  const auto c = first_rise_above(pts, 4.2);
  ASSERT_TRUE(c.found);
  EXPECT_DOUBLE_EQ(c.t.to_seconds(), 4.5);
  EXPECT_FALSE(first_rise_above(pts, 100.0).found);
}

TEST(SettleTime, DetectsExponentialSettling) {
  // Exponential approach to 56 from 44 with tau=1.7 s, sampled at 100 ms:
  // the Fig 4 measurement.
  std::vector<TracePoint> pts;
  for (double t = 0.0; t < 12.5; t += 0.1) {
    pts.push_back({SimTime::from_seconds(t), 56.0 - 12.0 * std::exp(-t / 1.7)});
  }
  const auto c = settle_time(pts, 0.5);
  ASSERT_TRUE(c.found);
  // Settles within 0.5 W of plateau around t = tau*ln(12/0.5) ~= 5.4 s.
  EXPECT_GT(c.t.to_seconds(), 3.5);
  EXPECT_LT(c.t.to_seconds(), 7.0);
}

TEST(SettleTime, FlatSeriesSettlesImmediately) {
  std::vector<TracePoint> pts;
  for (int i = 0; i < 20; ++i) pts.push_back({SimTime::from_seconds(i), 10.0});
  const auto c = settle_time(pts, 0.5);
  ASSERT_TRUE(c.found);
  EXPECT_DOUBLE_EQ(c.t.to_seconds(), 0.0);
}

TEST(SumSeries, PointwiseSum) {
  std::vector<std::vector<TracePoint>> series(3);
  for (int s = 0; s < 3; ++s) {
    for (int i = 0; i < 5; ++i) {
      series[static_cast<std::size_t>(s)].push_back(
          {SimTime::from_seconds(i), 10.0 * (s + 1)});
    }
  }
  const auto sum = sum_series(series);
  ASSERT_EQ(sum.size(), 5u);
  EXPECT_DOUBLE_EQ(sum[0].value, 60.0);
}

TEST(SumSeries, TruncatesToShortest) {
  std::vector<std::vector<TracePoint>> series(2);
  series[0] = ramp(0, 10, 1, 1.0);
  series[1] = ramp(0, 5, 1, 1.0);
  EXPECT_EQ(sum_series(series).size(), 5u);
  EXPECT_TRUE(sum_series({}).empty());
}

TEST(RenderChart, ContainsTitleAxesAndGlyphs) {
  const auto pts = ramp(0.0, 10.0, 0.5, 5.0);
  ChartOptions o;
  o.title = "Fig X";
  o.y_label = "Watts";
  const std::string chart = render_chart(pts, o);
  EXPECT_NE(chart.find("Fig X"), std::string::npos);
  EXPECT_NE(chart.find("Watts"), std::string::npos);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find("time (s)"), std::string::npos);
}

TEST(RenderChartMulti, LegendListsSeries) {
  std::vector<NamedSeries> series(2);
  series[0] = {"alpha", ramp(0, 10, 1, 1.0)};
  series[1] = {"beta", ramp(0, 10, 1, 2.0)};
  const std::string chart = render_chart_multi(series, {});
  EXPECT_NE(chart.find("legend:"), std::string::npos);
  EXPECT_NE(chart.find("alpha"), std::string::npos);
  EXPECT_NE(chart.find("beta"), std::string::npos);
}

TEST(RenderChart, EmptySeriesDoesNotCrash) {
  const std::string chart = render_chart({}, {});
  EXPECT_FALSE(chart.empty());
}

TEST(TableRenderer, AlignsColumns) {
  TableRenderer t({"Domain", "Description"});
  t.add_row({"PKG", "Whole CPU package."});
  t.add_row({"DRAM", "Sum of socket's DIMM power(s)."});
  const std::string out = t.render();
  EXPECT_NE(out.find("| PKG "), std::string::npos);
  EXPECT_NE(out.find("| Domain"), std::string::npos);
  // Every line has the same width.
  std::size_t width = 0;
  std::size_t start = 0;
  while (start < out.size()) {
    const auto end = out.find('\n', start);
    const std::size_t len = end - start;
    if (width == 0) width = len;
    EXPECT_EQ(len, width);
    start = end + 1;
  }
}

TEST(RenderBoxplot, ShowsMedianAndScale) {
  std::vector<double> a, b;
  for (int i = 0; i < 100; ++i) {
    a.push_back(113.0 + 0.01 * i);
    b.push_back(116.0 + 0.01 * i);
  }
  const std::vector<BoxplotSeries> series = {{"Daemon", boxplot_stats(a)},
                                             {"API", boxplot_stats(b)}};
  const std::string out = render_boxplot(series);
  EXPECT_NE(out.find("Daemon"), std::string::npos);
  EXPECT_NE(out.find("API"), std::string::npos);
  EXPECT_NE(out.find('M'), std::string::npos);
  EXPECT_NE(out.find("scale:"), std::string::npos);
}

}  // namespace
}  // namespace envmon::analysis
