#include "mic/mpss.hpp"

#include <gtest/gtest.h>

#include "workloads/library.hpp"

namespace envmon::mic {
namespace {

using sim::Duration;
using sim::SimTime;

struct Fixture {
  sim::Engine engine;
  ScifNetwork network;
  PhiCard card0{engine};
  PhiCard card1{engine};
  SysMgmtService service0{card0, network, 1};
  SysMgmtService service1{card1, network, 2};
  MpssHost host{network};
};

TEST(Mpss, AddCardRequiresBootedAgent) {
  Fixture f;
  EXPECT_TRUE(f.host.add_card(1, PhiSpec{}).is_ok());
  EXPECT_TRUE(f.host.add_card(2, PhiSpec{}).is_ok());
  const Status again = f.host.add_card(1, PhiSpec{});
  EXPECT_EQ(again.code(), StatusCode::kInvalidArgument);
  const Status unbooted = f.host.add_card(9, PhiSpec{});
  EXPECT_EQ(unbooted.code(), StatusCode::kUnavailable);
  EXPECT_EQ(f.host.card_count(), 2u);
}

TEST(Mpss, StatusReflectsCardState) {
  Fixture f;
  ASSERT_TRUE(f.host.add_card(1, PhiSpec{}).is_ok());
  const auto w = workloads::dgemm({Duration::seconds(60), 0.9, 0.5});
  f.card0.run_workload(&w, SimTime::zero());
  f.card0.set_memory_used(gibibytes(3.0));
  f.engine.run_until(SimTime::from_seconds(30));

  const auto s = f.host.status(0, f.engine.now());
  ASSERT_TRUE(s.is_ok()) << s.status();
  EXPECT_EQ(s.value().state, "online");
  EXPECT_GT(s.value().power.value(), 180.0);  // loaded card
  EXPECT_GT(s.value().die_temp.value(), 45.0);
  EXPECT_DOUBLE_EQ(s.value().memory_used.value(), gibibytes(3.0).value());
  EXPECT_GT(s.value().fan_rpm, 1800.0);
}

TEST(Mpss, StatusChargesInbandCost) {
  Fixture f;
  ASSERT_TRUE(f.host.add_card(1, PhiSpec{}).is_ok());
  (void)f.host.status(0, f.engine.now());
  // Four SysMgmt queries at 14.2 ms each.
  EXPECT_NEAR(f.host.cost().total().to_millis(), 4 * 14.2, 1e-6);
  EXPECT_EQ(f.card0.inband_queries_served(), 4u);
}

TEST(Mpss, SweepMarksDeadCardsLost) {
  Fixture f;
  ASSERT_TRUE(f.host.add_card(1, PhiSpec{}).is_ok());
  ASSERT_TRUE(f.host.add_card(2, PhiSpec{}).is_ok());
  f.network.close(2, kSysMgmtPort);  // card 1's OS crashed
  const auto fleet = f.host.sweep(f.engine.now());
  ASSERT_EQ(fleet.size(), 2u);
  EXPECT_EQ(fleet[0].state, "online");
  EXPECT_EQ(fleet[1].state, "lost");
}

TEST(Mpss, InfoTextListsSpec) {
  Fixture f;
  ASSERT_TRUE(f.host.add_card(1, PhiSpec{}).is_ok());
  const auto info = f.host.info(0);
  ASSERT_TRUE(info.is_ok());
  EXPECT_NE(info.value().find("Cores            : 61"), std::string::npos);
  EXPECT_NE(info.value().find("Threads          : 244"), std::string::npos);
  EXPECT_FALSE(f.host.info(5).is_ok());
}

TEST(Mpss, BadIndexStatus) {
  Fixture f;
  const auto s = f.host.status(0, f.engine.now());
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace envmon::mic
