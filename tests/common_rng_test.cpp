#include "common/rng.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace envmon {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ReseedResetsStream) {
  Rng a(42);
  const std::uint64_t first = a.next_u64();
  a.next_u64();
  a.reseed(42);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform(-5.0, 3.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 100'000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(Rng, UniformU64Bounds) {
  Rng rng(13);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.uniform_u64(17), 17u);
  }
  EXPECT_EQ(rng.uniform_u64(0), 0u);
  EXPECT_EQ(rng.uniform_u64(1), 0u);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 200'000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(19);
  RunningStats stats;
  for (int i = 0; i < 100'000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.fork();
  // The child stream should not track the parent.
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ForkDeterministicGivenParentState) {
  Rng p1(29), p2(29);
  Rng c1 = p1.fork();
  Rng c2 = p2.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c1.next_u64(), c2.next_u64());
}

}  // namespace
}  // namespace envmon
