#include "power/profile.hpp"

#include <gtest/gtest.h>

#include "power/component.hpp"

namespace envmon::power {
namespace {

using sim::Duration;
using sim::SimTime;

UtilizationProfile two_phase() {
  ProfileBuilder b;
  b.phase(Duration::seconds(10), "low", {{Rail::kCpuCore, 0.2}});
  b.phase(Duration::seconds(10), "high", {{Rail::kCpuCore, 0.8}, {Rail::kDram, 0.5}});
  return std::move(b).build();
}

TEST(Profile, UtilWithinPhases) {
  const auto p = two_phase();
  EXPECT_DOUBLE_EQ(p.util(Rail::kCpuCore, Duration::seconds(5)), 0.2);
  EXPECT_DOUBLE_EQ(p.util(Rail::kCpuCore, Duration::seconds(15)), 0.8);
  EXPECT_DOUBLE_EQ(p.util(Rail::kDram, Duration::seconds(5)), 0.0);
  EXPECT_DOUBLE_EQ(p.util(Rail::kDram, Duration::seconds(15)), 0.5);
}

TEST(Profile, PhaseBoundaryBelongsToNextPhase) {
  const auto p = two_phase();
  EXPECT_DOUBLE_EQ(p.util(Rail::kCpuCore, Duration::seconds(10)), 0.8);
}

TEST(Profile, OutsideProfileIsIdle) {
  const auto p = two_phase();
  EXPECT_DOUBLE_EQ(p.util(Rail::kCpuCore, Duration::seconds(-1)), 0.0);
  EXPECT_DOUBLE_EQ(p.util(Rail::kCpuCore, Duration::seconds(20)), 0.0);
  EXPECT_DOUBLE_EQ(p.util(Rail::kCpuCore, Duration::seconds(100)), 0.0);
}

TEST(Profile, TotalDuration) {
  EXPECT_EQ(two_phase().total_duration(), Duration::seconds(20));
  EXPECT_TRUE(UtilizationProfile{}.empty());
}

TEST(Profile, PhaseLabels) {
  const auto p = two_phase();
  ASSERT_NE(p.phase_at(Duration::seconds(1)), nullptr);
  EXPECT_STREQ(p.phase_at(Duration::seconds(1))->label, "low");
  EXPECT_STREQ(p.phase_at(Duration::seconds(11))->label, "high");
  EXPECT_EQ(p.phase_at(Duration::seconds(25)), nullptr);
}

TEST(Profile, MeanUtilExactAcrossBoundary) {
  const auto p = two_phase();
  // [5 s, 15 s): 5 s at 0.2 + 5 s at 0.8 = mean 0.5.
  EXPECT_DOUBLE_EQ(p.mean_util(Rail::kCpuCore, Duration::seconds(5), Duration::seconds(15)),
                   0.5);
}

TEST(Profile, MeanUtilIncludesIdleOverhang) {
  const auto p = two_phase();
  // [10 s, 30 s): 10 s at 0.8 + 10 s idle = 0.4.
  EXPECT_DOUBLE_EQ(p.mean_util(Rail::kCpuCore, Duration::seconds(10), Duration::seconds(30)),
                   0.4);
}

TEST(Profile, MeanUtilDegenerateWindow) {
  const auto p = two_phase();
  EXPECT_DOUBLE_EQ(p.mean_util(Rail::kCpuCore, Duration::seconds(5), Duration::seconds(5)),
                   0.0);
  EXPECT_DOUBLE_EQ(p.mean_util(Rail::kCpuCore, Duration::seconds(9), Duration::seconds(3)),
                   0.0);
}

TEST(Profile, RejectsBadUtilization) {
  ProfileBuilder b;
  b.phase(Duration::seconds(1), "bad", {{Rail::kCpuCore, 1.5}});
  EXPECT_THROW(std::move(b).build(), std::invalid_argument);
}

TEST(Profile, RejectsNonPositiveDuration) {
  ProfileBuilder b;
  b.phase(Duration::nanos(0), "zero", {});
  EXPECT_THROW(std::move(b).build(), std::invalid_argument);
}

TEST(ProfileBuilder, RepeatLastReplicatesCycle) {
  ProfileBuilder b;
  b.phase(Duration::seconds(2), "a", {{Rail::kCpuCore, 0.5}});
  b.phase(Duration::seconds(1), "b", {{Rail::kCpuCore, 0.9}});
  b.repeat_last(2, 3);  // 4 cycles total
  const auto p = std::move(b).build();
  EXPECT_EQ(p.phases().size(), 8u);
  EXPECT_EQ(p.total_duration(), Duration::seconds(12));
  EXPECT_DOUBLE_EQ(p.util(Rail::kCpuCore, Duration::seconds(4)), 0.5);  // cycle 2 "a"
  EXPECT_DOUBLE_EQ(p.util(Rail::kCpuCore, Duration::from_seconds(5.5)), 0.9);  // cycle 2 "b"
}

TEST(ProfileBuilder, RepeatLastValidatesCount) {
  ProfileBuilder b;
  b.phase(Duration::seconds(1), "a", {});
  EXPECT_THROW(b.repeat_last(2, 1), std::invalid_argument);
  EXPECT_THROW(b.repeat_last(0, 1), std::invalid_argument);
}

TEST(DevicePower, RailModelLinearInUtil) {
  const RailModel m{Watts{10.0}, Watts{40.0}, Volts{1.0}};
  EXPECT_DOUBLE_EQ(m.at_util(0.0).value(), 10.0);
  EXPECT_DOUBLE_EQ(m.at_util(1.0).value(), 50.0);
  EXPECT_DOUBLE_EQ(m.at_util(0.5).value(), 30.0);
}

TEST(DevicePower, IdleWithoutWorkload) {
  DevicePowerModel dev;
  dev.set_rail(Rail::kCpuCore, RailModel{Watts{5.0}, Watts{20.0}, Volts{1.0}});
  dev.set_rail(Rail::kDram, RailModel{Watts{2.0}, Watts{8.0}, Volts{1.35}});
  EXPECT_DOUBLE_EQ(dev.total_power_at(SimTime::from_seconds(100)).value(), 7.0);
}

TEST(DevicePower, WorkloadOffsetRespected) {
  DevicePowerModel dev;
  dev.set_rail(Rail::kCpuCore, RailModel{Watts{5.0}, Watts{20.0}, Volts{1.0}});
  const auto p = two_phase();
  dev.run_workload(&p, SimTime::from_seconds(100));
  EXPECT_DOUBLE_EQ(dev.rail_power_at(Rail::kCpuCore, SimTime::from_seconds(99)).value(), 5.0);
  EXPECT_DOUBLE_EQ(dev.rail_power_at(Rail::kCpuCore, SimTime::from_seconds(105)).value(),
                   5.0 + 0.2 * 20.0);
  EXPECT_DOUBLE_EQ(dev.rail_power_at(Rail::kCpuCore, SimTime::from_seconds(115)).value(),
                   5.0 + 0.8 * 20.0);
  EXPECT_DOUBLE_EQ(dev.rail_power_at(Rail::kCpuCore, SimTime::from_seconds(125)).value(), 5.0);
}

TEST(DevicePower, EnergyMatchesPowerIntegral) {
  DevicePowerModel dev;
  dev.set_rail(Rail::kCpuCore, RailModel{Watts{5.0}, Watts{20.0}, Volts{1.0}});
  const auto p = two_phase();
  dev.run_workload(&p, SimTime::zero());
  // 10 s at 9 W + 10 s at 21 W = 300 J on the core rail.
  const Joules e =
      dev.rail_energy_between(Rail::kCpuCore, SimTime::zero(), SimTime::from_seconds(20));
  EXPECT_DOUBLE_EQ(e.value(), 300.0);
}

TEST(DevicePower, CurrentFromVoltage) {
  DevicePowerModel dev;
  dev.set_rail(Rail::kDram, RailModel{Watts{13.5}, Watts{0.0}, Volts{1.35}});
  EXPECT_DOUBLE_EQ(dev.rail_current_at(Rail::kDram, SimTime::zero()).value(), 10.0);
  // Rails without a voltage report zero current rather than dividing by 0.
  dev.set_rail(Rail::kSram, RailModel{Watts{5.0}, Watts{0.0}, Volts{0.0}});
  EXPECT_DOUBLE_EQ(dev.rail_current_at(Rail::kSram, SimTime::zero()).value(), 0.0);
}

}  // namespace
}  // namespace envmon::power
