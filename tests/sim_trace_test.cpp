#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include "sim/cost.hpp"

namespace envmon::sim {
namespace {

TEST(TraceSink, RecordsAndRetrieves) {
  TraceSink sink;
  sink.record("power", SimTime::from_seconds(1.0), 42.0);
  sink.record("power", SimTime::from_seconds(2.0), 43.0);
  ASSERT_TRUE(sink.has_series("power"));
  const auto pts = sink.series("power");
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts[1].value, 43.0);
  EXPECT_DOUBLE_EQ(pts[1].t.to_seconds(), 2.0);
}

TEST(TraceSink, UnknownSeriesIsEmpty) {
  const TraceSink sink;
  EXPECT_FALSE(sink.has_series("nope"));
  EXPECT_TRUE(sink.series("nope").empty());
}

TEST(TraceSink, MultipleSeriesIndependent) {
  TraceSink sink;
  sink.record("a", SimTime::zero(), 1.0);
  sink.record("b", SimTime::zero(), 2.0);
  sink.record("a", SimTime::from_seconds(1), 3.0);
  EXPECT_EQ(sink.series("a").size(), 2u);
  EXPECT_EQ(sink.series("b").size(), 1u);
  EXPECT_EQ(sink.total_points(), 3u);
  const auto names = sink.series_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
}

TEST(TraceSink, ValuesExtraction) {
  TraceSink sink;
  sink.record("s", SimTime::zero(), 5.0);
  sink.record("s", SimTime::from_seconds(1), 7.0);
  EXPECT_EQ(sink.values("s"), (std::vector<double>{5.0, 7.0}));
}

TEST(TraceSink, ClearEmpties) {
  TraceSink sink;
  sink.record("s", SimTime::zero(), 1.0);
  sink.clear();
  EXPECT_EQ(sink.total_points(), 0u);
}

TEST(CostMeter, AccumulatesChargesAndQueries) {
  CostMeter m;
  m.charge(Duration::micros(30));
  m.charge(Duration::micros(30));
  m.charge(Duration::micros(30));
  EXPECT_EQ(m.queries(), 3u);
  EXPECT_DOUBLE_EQ(m.total().to_millis(), 0.09);
  EXPECT_DOUBLE_EQ(m.mean_per_query().to_millis(), 0.03);
}

TEST(CostMeter, OverheadFraction) {
  CostMeter m;
  // 362 EMON reads at 1.10 ms against a 202.78 s runtime: the paper's
  // ~0.19% collection overhead.
  for (int i = 0; i < 362; ++i) m.charge(Duration::micros(1100));
  const double frac = m.overhead_fraction(Duration::from_seconds(202.78));
  EXPECT_NEAR(frac, 0.0019, 0.0002);
}

TEST(CostMeter, EmptyMeterIsZero) {
  const CostMeter m;
  EXPECT_EQ(m.queries(), 0u);
  EXPECT_EQ(m.total().ns(), 0);
  EXPECT_EQ(m.mean_per_query().ns(), 0);
  EXPECT_DOUBLE_EQ(m.overhead_fraction(Duration::seconds(1)), 0.0);
}

TEST(CostMeter, ResetClears) {
  CostMeter m;
  m.charge(Duration::seconds(1));
  m.reset();
  EXPECT_EQ(m.queries(), 0u);
  EXPECT_EQ(m.total().ns(), 0);
}

}  // namespace
}  // namespace envmon::sim
