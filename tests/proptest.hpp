#pragma once
// Minimal in-repo property-test harness — the base layer of the
// property pyramid locking down the vectorized decode engine
// (DESIGN.md §15).
//
// RapidCheck is the richer engine when the build could fetch it
// (ENVMON_HAVE_RAPIDCHECK, tests/tsdb_rapidcheck_test.cpp), but tier-1
// must build hermetically offline — so the universal invariants run on
// this dependency-free harness: each ENVMON_PROP() body executes N
// generated cases, every case seeded deterministically from (base
// seed, case index), and a failure prints the pair to replay with:
//
//   ENVMON_PROP_CASES=<n>   cases per property (overrides the default)
//   ENVMON_PROP_SEED=<n>    base seed
//
// ci/check.sh runs the `prop` ctest label at high case counts in the
// Bench configuration and again under ASan/UBSan.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <random>

namespace envmon::proptest {

inline std::uint64_t base_seed() {
  static const std::uint64_t seed = [] {
    if (const char* env = std::getenv("ENVMON_PROP_SEED"); env != nullptr && *env != '\0') {
      return static_cast<std::uint64_t>(std::strtoull(env, nullptr, 0));
    }
    return std::uint64_t{0xe9b0'75d8'c01d'cafeull};
  }();
  return seed;
}

inline std::size_t case_count(std::size_t default_cases) {
  if (const char* env = std::getenv("ENVMON_PROP_CASES"); env != nullptr && *env != '\0') {
    const unsigned long long n = std::strtoull(env, nullptr, 0);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return default_cases;
}

// Deterministic per-case generator.  Every draw helper is stable given
// (base seed, case index), so a failure replays exactly.
class Rng {
 public:
  Rng(std::uint64_t base, std::uint64_t case_index)
      : engine_(base ^ (0x9e37'79b9'7f4a'7c15ull * (case_index + 1))) {}

  [[nodiscard]] std::uint64_t u64() { return engine_(); }

  // Uniform in [lo, hi] inclusive.
  [[nodiscard]] std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + engine_() % (hi - lo + 1);
  }
  [[nodiscard]] std::size_t index(std::size_t bound) {  // [0, bound)
    return static_cast<std::size_t>(engine_() % bound);
  }
  [[nodiscard]] bool chance(unsigned percent) { return engine_() % 100 < percent; }

  // All 2^64 bit patterns: NaN payloads, ±inf, denormals, -0.0 —
  // the codecs must treat every one as opaque bits.
  [[nodiscard]] double any_double() {
    double d;
    if (chance(25)) {
      switch (index(5)) {
        case 0: d = std::numeric_limits<double>::quiet_NaN(); break;
        case 1: d = std::numeric_limits<double>::infinity(); break;
        case 2: d = -std::numeric_limits<double>::infinity(); break;
        case 3: d = chance(50) ? 0.0 : -0.0; break;
        default: d = std::numeric_limits<double>::denorm_min(); break;
      }
      return d;
    }
    const std::uint64_t bits = engine_();
    std::memcpy(&d, &bits, 8);
    return d;
  }

  // Sensor-shaped: slow drift with occasional steps and repeats.  Kept
  // within a bounded magnitude so flat-fold oracles stay well within
  // absolute NEAR tolerances.
  [[nodiscard]] double smooth_step(double current) {
    if (current < -1.0e5 || current > 1.0e5) return 9.125;
    if (chance(55)) return current;  // repeated reading (XOR's 1-bit case)
    if (chance(10)) return current * -1.5 + 7.0;
    return current + static_cast<double>(static_cast<std::int64_t>(engine_() % 2001) - 1000) *
                         0.001;
  }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace envmon::proptest

// Defines a gtest TEST whose body runs once per generated case with a
// fresh deterministic Rng.  The body is an ordinary function scope with
// `rng` (envmon::proptest::Rng&) and `prop_case` (std::size_t) bound.
#define ENVMON_PROP(Suite, Name, default_cases)                                           \
  static void Suite##_##Name##_property(envmon::proptest::Rng& rng, std::size_t prop_case); \
  TEST(Suite, Name) {                                                                     \
    const std::size_t cases = envmon::proptest::case_count(default_cases);                \
    for (std::size_t i = 0; i < cases; ++i) {                                             \
      SCOPED_TRACE(::testing::Message() << "replay: ENVMON_PROP_SEED="                    \
                                        << envmon::proptest::base_seed()                  \
                                        << " case=" << i);                                \
      envmon::proptest::Rng rng(envmon::proptest::base_seed(), i);                        \
      Suite##_##Name##_property(rng, i);                                                  \
      if (::testing::Test::HasFatalFailure()) return;                                     \
    }                                                                                     \
  }                                                                                       \
  static void Suite##_##Name##_property([[maybe_unused]] envmon::proptest::Rng& rng,      \
                                        [[maybe_unused]] std::size_t prop_case)
