#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include "sched/pricing.hpp"

namespace envmon::sched {
namespace {

using sim::Duration;
using sim::SimTime;

SimTime hours(double h) { return SimTime::from_seconds(h * 3600.0); }

TEST(Pricing, ValidatesPeriods) {
  EXPECT_FALSE(ElectricityPricing::create({}).is_ok());
  EXPECT_FALSE(ElectricityPricing::create({{1.0, 50.0, "late-start"}}).is_ok());
  EXPECT_FALSE(ElectricityPricing::create({{0.0, 50.0, "a"}, {0.0, 60.0, "dup"}}).is_ok());
  EXPECT_FALSE(ElectricityPricing::create({{0.0, -5.0, "neg"}}).is_ok());
  EXPECT_TRUE(ElectricityPricing::create({{0.0, 40.0, "flat"}}).is_ok());
}

TEST(Pricing, RatesByHourAndDayWrap) {
  const auto p = ElectricityPricing::default_day_ahead();
  EXPECT_DOUBLE_EQ(p.usd_per_mwh_at(hours(3)), 34.0);
  EXPECT_DOUBLE_EQ(p.usd_per_mwh_at(hours(12)), 88.0);
  EXPECT_DOUBLE_EQ(p.usd_per_mwh_at(hours(23)), 34.0);
  EXPECT_DOUBLE_EQ(p.usd_per_mwh_at(hours(24 + 12)), 88.0);  // next day
  EXPECT_TRUE(p.is_peak_at(hours(12)));
  EXPECT_FALSE(p.is_peak_at(hours(3)));
}

TEST(Pricing, CostIntegratesAcrossBoundaries) {
  const auto p = ElectricityPricing::default_day_ahead();
  // 1 MW from 5:00 to 7:00: one off-peak hour + one on-peak hour.
  const double cost = p.cost_usd(1e6, hours(5), hours(7));
  EXPECT_NEAR(cost, 34.0 + 88.0, 1e-9);
  EXPECT_DOUBLE_EQ(p.cost_usd(1e6, hours(7), hours(5)), 0.0);
  EXPECT_DOUBLE_EQ(p.cost_usd(0.0, hours(5), hours(7)), 0.0);
}

TEST(Pricing, NextCheaperTime) {
  const auto p = ElectricityPricing::default_day_ahead();
  // At noon (on-peak), the next cheaper time is 22:00.
  EXPECT_DOUBLE_EQ(p.next_cheaper_time(hours(12)).to_seconds(), hours(22).to_seconds());
  // At 3:00 (already cheapest), there is no cheaper time.
  EXPECT_DOUBLE_EQ(p.next_cheaper_time(hours(3)).to_seconds(), hours(3).to_seconds());
}

Job make_job(int id, int boards, double dur_hours, double watts_per_board,
             double submit_hours) {
  Job j;
  j.id = id;
  j.name = "job" + std::to_string(id);
  j.boards = boards;
  j.duration = Duration::from_seconds(dur_hours * 3600.0);
  j.watts_per_board = watts_per_board;
  j.submit = hours(submit_hours);
  return j;
}

TEST(Scheduler, ValidatesJobs) {
  sim::Engine engine;
  Scheduler sched(engine, ElectricityPricing::default_day_ahead(), {});
  EXPECT_FALSE(sched.submit(make_job(1, 0, 1.0, 1500.0, 0.0)).is_ok());
  EXPECT_FALSE(sched.submit(make_job(1, 64, 1.0, 1500.0, 0.0)).is_ok());  // > 32 boards
  Job zero = make_job(1, 4, 0.0, 1500.0, 0.0);
  EXPECT_FALSE(sched.submit(zero).is_ok());
}

TEST(Scheduler, FcfsRunsImmediatelyWhenCapacityFree) {
  sim::Engine engine;
  Scheduler sched(engine, ElectricityPricing::default_day_ahead(), {});
  ASSERT_TRUE(sched.submit(make_job(1, 16, 2.0, 1500.0, 0.0)).is_ok());
  ASSERT_TRUE(sched.submit(make_job(2, 16, 2.0, 1500.0, 0.0)).is_ok());
  sched.run_to_completion();
  ASSERT_EQ(sched.completed().size(), 2u);
  EXPECT_DOUBLE_EQ(sched.completed()[0].wait().to_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(sched.completed()[1].wait().to_seconds(), 0.0);  // fits alongside
}

TEST(Scheduler, CapacityQueuesJobs) {
  sim::Engine engine;
  Scheduler sched(engine, ElectricityPricing::default_day_ahead(), {});
  ASSERT_TRUE(sched.submit(make_job(1, 32, 2.0, 1500.0, 0.0)).is_ok());
  ASSERT_TRUE(sched.submit(make_job(2, 32, 1.0, 1500.0, 0.0)).is_ok());
  sched.run_to_completion();
  ASSERT_EQ(sched.completed().size(), 2u);
  // Job 2 waited for job 1's two hours.
  EXPECT_DOUBLE_EQ(sched.completed()[1].wait().to_seconds(), 2.0 * 3600.0);
  const auto s = sched.summary();
  EXPECT_DOUBLE_EQ(s.makespan.to_seconds(), 3.0 * 3600.0);
}

TEST(Scheduler, PowerAwareDefersHungryJobOnPeak) {
  sim::Engine engine;
  SchedulerOptions options;
  options.policy = Policy::kPowerAware;
  options.peak_power_budget_watts = 24'000.0;
  Scheduler sched(engine, ElectricityPricing::default_day_ahead(), options);
  // Submitted at noon (on-peak): 32 boards x 1.5 kW = 48 kW > budget.
  ASSERT_TRUE(sched.submit(make_job(1, 32, 2.0, 1500.0, 12.0)).is_ok());
  sched.run_to_completion();
  ASSERT_EQ(sched.completed().size(), 1u);
  // Deferred to 22:00 when off-peak begins.
  EXPECT_DOUBLE_EQ(sched.completed()[0].start.to_seconds(), hours(22).to_seconds());
  EXPECT_DOUBLE_EQ(sched.summary().peak_on_peak_watts, 0.0);
}

TEST(Scheduler, PowerAwareStartsSmallJobOnPeak) {
  sim::Engine engine;
  SchedulerOptions options;
  options.policy = Policy::kPowerAware;
  options.peak_power_budget_watts = 24'000.0;
  Scheduler sched(engine, ElectricityPricing::default_day_ahead(), options);
  // 8 boards x 1.5 kW = 12 kW <= budget: runs immediately even on-peak.
  ASSERT_TRUE(sched.submit(make_job(1, 8, 1.0, 1500.0, 12.0)).is_ok());
  sched.run_to_completion();
  EXPECT_DOUBLE_EQ(sched.completed()[0].wait().to_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(sched.summary().peak_on_peak_watts, 12'000.0);
}

TEST(Scheduler, PowerAwareCheaperThanFcfsForPeakArrivals) {
  const auto run = [](Policy policy) {
    sim::Engine engine;
    SchedulerOptions options;
    options.policy = policy;
    options.peak_power_budget_watts = 20'000.0;
    Scheduler sched(engine, ElectricityPricing::default_day_ahead(), options);
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(
          sched.submit(make_job(i, 16, 1.5, 1800.0, 8.0 + 0.25 * i)).is_ok());
    }
    sched.run_to_completion();
    return sched.summary();
  };
  const auto fcfs = run(Policy::kFcfs);
  const auto aware = run(Policy::kPowerAware);
  EXPECT_LT(aware.total_job_cost_usd, fcfs.total_job_cost_usd * 0.7);
  EXPECT_NEAR(aware.total_energy_mwh, fcfs.total_energy_mwh, 1e-9);  // same work
  EXPECT_GT(aware.mean_wait.to_seconds(), fcfs.mean_wait.to_seconds());  // the price
}

TEST(Scheduler, BudgetReleasedWhenJobsFinish) {
  sim::Engine engine;
  SchedulerOptions options;
  options.policy = Policy::kPowerAware;
  options.peak_power_budget_watts = 26'000.0;
  Scheduler sched(engine, ElectricityPricing::default_day_ahead(), options);
  // First 16-board job (24 kW) fills the budget; second must wait for
  // the first to finish (its end is still on-peak) — not for off-peak,
  // because capacity/budget free up at hour 13.
  ASSERT_TRUE(sched.submit(make_job(1, 16, 1.0, 1500.0, 12.0)).is_ok());
  ASSERT_TRUE(sched.submit(make_job(2, 16, 1.0, 1500.0, 12.0)).is_ok());
  sched.run_to_completion();
  ASSERT_EQ(sched.completed().size(), 2u);
  EXPECT_DOUBLE_EQ(sched.completed()[1].start.to_seconds(), hours(13).to_seconds());
}

}  // namespace
}  // namespace envmon::sched
