#include "rapl/package.hpp"
#include "rapl/reader.hpp"
#include "rapl/registers.hpp"

#include <gtest/gtest.h>

#include "workloads/library.hpp"

namespace envmon::rapl {
namespace {

using sim::Duration;
using sim::SimTime;

TEST(PowerUnits, DefaultEncoding) {
  const PowerUnits u;
  EXPECT_NEAR(u.joules_per_unit(), 15.26e-6, 0.01e-6);  // the paper's 15.26 uJ
  EXPECT_DOUBLE_EQ(u.watts_per_unit(), 0.125);
  const PowerUnits round = PowerUnits::decode(u.encode());
  EXPECT_EQ(round.power_exp, u.power_exp);
  EXPECT_EQ(round.energy_exp, u.energy_exp);
  EXPECT_EQ(round.time_exp, u.time_exp);
}

TEST(PowerLimit, EncodeDecodeRoundTrip) {
  const PowerUnits u;
  PowerLimit limit;
  limit.watts = 95.0;
  limit.window_seconds = 1.0;
  limit.enabled = true;
  const PowerLimit round = decode_power_limit(encode_power_limit(limit, u), u);
  EXPECT_NEAR(round.watts, 95.0, u.watts_per_unit());
  EXPECT_TRUE(round.enabled);
  EXPECT_NEAR(round.window_seconds, 1.0, 0.5);
}

TEST(MsrFile, ReadUnknownRegisterFails) {
  MsrFile f;
  EXPECT_FALSE(f.read(0x611).is_ok());
  f.write(0x611, 42);
  ASSERT_TRUE(f.read(0x611).is_ok());
  EXPECT_EQ(f.read(0x611).value(), 42u);
}

TEST(MsrDevice, RootOnlyByDefault) {
  sim::Engine engine;
  CpuPackage pkg(engine);
  MsrDevice dev = pkg.make_device(0);
  // Unprivileged read fails: "The MSR driver must be given the correct
  // read-only, root-only access before it is accessible".
  const auto denied = dev.pread(kMsrRaplPowerUnit, Credentials{false, 1000});
  ASSERT_FALSE(denied.is_ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);
  // Root succeeds.
  EXPECT_TRUE(dev.pread(kMsrRaplPowerUnit, Credentials{true, 0}).is_ok());
}

TEST(MsrDevice, RelaxedModeAllowsUserRead) {
  sim::Engine engine;
  CpuPackage pkg(engine);
  MsrDevice dev = pkg.make_device(0);
  dev.set_mode(DeviceMode{true, true, true});
  EXPECT_TRUE(dev.pread(kMsrRaplPowerUnit, Credentials{false, 1000}).is_ok());
}

TEST(MsrDevice, ChargesThirtyMicrosecondsPerRead) {
  sim::Engine engine;
  CpuPackage pkg(engine);
  MsrDevice dev = pkg.make_device(0);
  sim::CostMeter meter;
  (void)dev.pread(kMsrRaplPowerUnit, Credentials{true, 0}, &meter);
  EXPECT_DOUBLE_EQ(meter.total().to_millis(), 0.03);  // the paper's figure
}

TEST(MsrDevice, PathNamesLogicalCpu) {
  sim::Engine engine;
  CpuPackage pkg(engine);
  EXPECT_EQ(pkg.make_device(3).path(), "/dev/cpu/3/msr");
}

TEST(CpuPackage, IdlePowerIsSumOfIdleRails) {
  sim::Engine engine;
  CpuPackage pkg(engine);
  const double idle = pkg.domain_power(RaplDomain::kPackage, SimTime::zero()).value();
  EXPECT_NEAR(idle, 1.6 + 1.9, 1e-9);  // cores idle + uncore idle
}

TEST(CpuPackage, DomainHierarchyPkgGreaterThanParts) {
  sim::Engine engine;
  CpuPackage pkg(engine);
  const auto w = workloads::dgemm({Duration::seconds(100), 0.95, 0.5});
  pkg.run_workload(&w, SimTime::zero());
  const auto t = SimTime::from_seconds(50);
  const double p_pkg = pkg.domain_power(RaplDomain::kPackage, t).value();
  const double p_pp0 = pkg.domain_power(RaplDomain::kPp0, t).value();
  const double p_pp1 = pkg.domain_power(RaplDomain::kPp1, t).value();
  EXPECT_GT(p_pkg, p_pp0 + p_pp1);
  EXPECT_GT(p_pp0, 0.9 * 0.95 * 42.0);  // cores dominate a DGEMM
}

TEST(CpuPackage, EnergyIntegralConsistentWithPower) {
  sim::Engine engine;
  CpuPackage pkg(engine);
  const auto w = workloads::dgemm({Duration::seconds(10), 0.5, 0.5});
  pkg.run_workload(&w, SimTime::zero());
  const double joules =
      pkg.domain_energy_since_start(RaplDomain::kPp0, SimTime::from_seconds(10)).value();
  // Constant power 1.6 + 0.5*42 = 22.6 W over 10 s.
  EXPECT_NEAR(joules, 226.0, 1e-6);
}

TEST(CpuPackage, CounterAdvancesMonotonicallyBetweenRefreshes) {
  sim::Engine engine;
  CpuPackage pkg(engine);
  pkg.refresh(SimTime::from_seconds(1.0));
  const auto a = pkg.raw_counter(RaplDomain::kPackage);
  pkg.refresh(SimTime::from_seconds(2.0));
  const auto b = pkg.raw_counter(RaplDomain::kPackage);
  EXPECT_GT(b, a);
}

TEST(CpuPackage, UpdateGranularityHoldsCounterStill) {
  sim::Engine engine;
  CpuPackage pkg(engine);
  // Two refreshes a few hundred nanoseconds apart fall inside the same
  // ~1 ms update window: the visible counter must not move.
  pkg.refresh(SimTime::from_ns(5'000'000));
  const auto a = pkg.raw_counter(RaplDomain::kPackage);
  pkg.refresh(SimTime::from_ns(5'000'400));
  EXPECT_EQ(pkg.raw_counter(RaplDomain::kPackage), a);
}

TEST(CpuPackage, PowerLimitRoundTripThroughMsr) {
  sim::Engine engine;
  CpuPackage pkg(engine);
  pkg.set_power_limit(PowerLimit{80.0, 1.0, true});
  const PowerLimit read = pkg.power_limit();
  EXPECT_NEAR(read.watts, 80.0, 0.125);
  EXPECT_TRUE(read.enabled);
}

TEST(EnergyAccountant, SimpleDelta) {
  EnergyAccountant acc(15.26e-6);
  EXPECT_DOUBLE_EQ(acc.advance(1000).value(), 0.0);  // first reading: baseline
  const Joules d = acc.advance(2000);
  EXPECT_NEAR(d.value(), 1000 * 15.26e-6, 1e-9);
  EXPECT_NEAR(acc.total().value(), d.value(), 1e-12);
}

TEST(EnergyAccountant, HandlesSingleWrap) {
  EnergyAccountant acc(1.0);
  (void)acc.advance(0xffffff00u);
  const Joules d = acc.advance(0x00000100u);
  EXPECT_DOUBLE_EQ(d.value(), 512.0);  // 256 up to wrap + 256 after
  EXPECT_EQ(acc.wraps_assumed(), 1u);
}

TEST(MsrRaplReader, ReadsEnergyAsRoot) {
  sim::Engine engine;
  CpuPackage pkg(engine);
  MsrRaplReader reader(pkg, Credentials{true, 0});
  engine.run_until(SimTime::from_seconds(1));
  const auto s = reader.read_energy(RaplDomain::kPackage, engine.now());
  ASSERT_TRUE(s.is_ok());
  // ~3.5 W idle for 1 s = ~3.5 J.
  EXPECT_NEAR(s.value().energy.value(), 3.5, 0.2);
}

TEST(MsrRaplReader, PermissionDeniedWithoutRoot) {
  sim::Engine engine;
  CpuPackage pkg(engine);
  MsrRaplReader reader(pkg, Credentials{false, 1000});
  const auto s = reader.read_energy(RaplDomain::kPackage, SimTime::zero());
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.status().code(), StatusCode::kPermissionDenied);
  // After the operator relaxes the device mode, reads succeed.
  MsrRaplReader relaxed(pkg, Credentials{false, 1000});
  relaxed.allow_unprivileged_read();
  EXPECT_TRUE(relaxed.read_energy(RaplDomain::kPackage, SimTime::zero()).is_ok());
}

TEST(MsrRaplReader, AveragePowerOverWindowMatchesModel) {
  sim::Engine engine;
  CpuPackage pkg(engine);
  const auto w = workloads::dgemm({Duration::seconds(100), 0.8, 0.4});
  pkg.run_workload(&w, SimTime::zero());
  MsrRaplReader reader(pkg, Credentials{true, 0});
  EnergyAccountant acc(pkg.config().units.joules_per_unit());

  engine.run_until(SimTime::from_seconds(10));
  (void)acc.advance(reader.read_energy(RaplDomain::kPp0, engine.now()).value().raw);
  engine.run_until(SimTime::from_seconds(20));
  const Joules delta =
      acc.advance(reader.read_energy(RaplDomain::kPp0, engine.now()).value().raw);
  const double avg_w = delta.value() / 10.0;
  EXPECT_NEAR(avg_w, 1.6 + 0.8 * 42.0, 0.2);
}

// Property sweep: wraparound corrupts long sampling intervals but not
// short ones — the "overfill" rule of §II-B.
class WrapSweep : public ::testing::TestWithParam<int> {};

TEST_P(WrapSweep, EnergyAccountingAccuracyByInterval) {
  const int interval_s = GetParam();
  sim::Engine engine;
  PackageConfig config;
  // A hot server package (~130 W) wraps the 32-bit counter every ~8.4
  // minutes; intervals beyond that undercount.
  config.cores = power::RailModel{Watts{30.0}, Watts{100.0}, Volts{1.0}};
  CpuPackage pkg(engine, config);
  const auto w = workloads::dgemm({Duration::seconds(3600), 1.0, 0.0});
  pkg.run_workload(&w, SimTime::zero());
  MsrRaplReader reader(pkg, Credentials{true, 0});
  EnergyAccountant acc(pkg.config().units.joules_per_unit());

  const int total_s = 2400;
  for (int t = 0; t <= total_s; t += interval_s) {
    engine.run_until(SimTime::from_seconds(t));
    (void)acc.advance(reader.read_energy(RaplDomain::kPackage, engine.now()).value().raw);
  }
  const double truth =
      pkg.domain_energy_since_start(RaplDomain::kPackage, SimTime::from_seconds(total_s))
          .value();
  const double measured = acc.total().value();
  const double wrap_seconds = 4294967296.0 * pkg.config().units.joules_per_unit() / 131.9;
  if (interval_s < wrap_seconds * 0.9) {
    EXPECT_NEAR(measured, truth, 0.01 * truth) << "interval " << interval_s;
  } else {
    EXPECT_LT(measured, 0.9 * truth) << "interval " << interval_s;  // corrupted
  }
}

INSTANTIATE_TEST_SUITE_P(Intervals, WrapSweep, ::testing::Values(10, 30, 60, 120, 240, 300,
                                                                 400, 600, 800, 1200));

TEST(PerfRaplReader, RequiresKernel314) {
  sim::Engine engine;
  CpuPackage pkg(engine);
  const auto old = PerfRaplReader::open(pkg, KernelVersion{3, 13});
  ASSERT_FALSE(old.is_ok());
  EXPECT_EQ(old.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(PerfRaplReader::open(pkg, KernelVersion{3, 14}).is_ok());
  EXPECT_TRUE(PerfRaplReader::open(pkg, KernelVersion{4, 0}).is_ok());
}

TEST(PerfRaplReader, NoWrapAndHigherCost) {
  sim::Engine engine;
  PackageConfig config;
  config.cores = power::RailModel{Watts{30.0}, Watts{100.0}, Volts{1.0}};
  CpuPackage pkg(engine, config);
  const auto w = workloads::dgemm({Duration::seconds(3600), 1.0, 0.0});
  pkg.run_workload(&w, SimTime::zero());
  auto reader = PerfRaplReader::open(pkg, KernelVersion{3, 14});
  ASSERT_TRUE(reader.is_ok());

  // A 1200 s gap, far past the MSR wrap horizon, still reads correctly:
  // the kernel accumulates 64-bit.
  engine.run_until(SimTime::from_seconds(1200));
  const auto e = reader.value().read_energy(RaplDomain::kPackage, engine.now());
  ASSERT_TRUE(e.is_ok());
  const double truth =
      pkg.domain_energy_since_start(RaplDomain::kPackage, engine.now()).value();
  EXPECT_NEAR(e.value().value(), truth, 0.01 * truth);
  // Going through the kernel costs more than a direct MSR read.
  EXPECT_GT(reader.value().cost().mean_per_query().ns(),
            Duration::micros(30).ns());
}

}  // namespace
}  // namespace envmon::rapl
