#include "common/config.hpp"

#include <gtest/gtest.h>

namespace envmon {
namespace {

constexpr const char* kSample = R"(
# monitoring deployment knobs
top_level = ok

[bgq]
env_poll_seconds = 240
record_board_voltages = true

[rapl]
interval_ms = 100.5
domains = PKG,PP0,DRAM   ; inline comment stripped
)";

TEST(Config, ParsesSectionsAndKeys) {
  const auto c = Config::parse(kSample);
  ASSERT_TRUE(c.is_ok()) << c.status();
  EXPECT_TRUE(c.value().has("bgq", "env_poll_seconds"));
  EXPECT_TRUE(c.value().has("rapl", "interval_ms"));
  EXPECT_FALSE(c.value().has("bgq", "interval_ms"));
  EXPECT_EQ(c.value().size(), 5u);
}

TEST(Config, TypedGetters) {
  const auto c = Config::parse(kSample).value();
  EXPECT_EQ(c.get_int("bgq", "env_poll_seconds", 0).value(), 240);
  EXPECT_DOUBLE_EQ(c.get_double("rapl", "interval_ms", 0.0).value(), 100.5);
  EXPECT_TRUE(c.get_bool("bgq", "record_board_voltages", false).value());
  EXPECT_EQ(c.get_string("rapl", "domains", "").value(), "PKG,PP0,DRAM");
}

TEST(Config, DefaultsWhenAbsent) {
  const auto c = Config::parse(kSample).value();
  EXPECT_EQ(c.get_int("bgq", "missing", 42).value(), 42);
  EXPECT_EQ(c.get_string("nope", "missing", "fallback").value(), "fallback");
  EXPECT_FALSE(c.get_bool("nope", "missing", false).value());
}

TEST(Config, TypeErrorsSurface) {
  const auto c = Config::parse("[s]\nk = not_a_number\nf = 1.5\n").value();
  EXPECT_FALSE(c.get_double("s", "k", 0.0).is_ok());
  EXPECT_FALSE(c.get_int("s", "f", 0).is_ok());  // non-integral
  EXPECT_FALSE(c.get_bool("s", "k", false).is_ok());
}

TEST(Config, BooleanSpellings) {
  const auto c =
      Config::parse("[b]\na=true\nb=YES\nc=on\nd=1\ne=false\nf=No\ng=off\nh=0\n").value();
  for (const char* k : {"a", "b", "c", "d"}) {
    EXPECT_TRUE(c.get_bool("b", k, false).value()) << k;
  }
  for (const char* k : {"e", "f", "g", "h"}) {
    EXPECT_FALSE(c.get_bool("b", k, true).value()) << k;
  }
}

TEST(Config, TopLevelKeysLiveInEmptySection) {
  const auto c = Config::parse(kSample).value();
  EXPECT_EQ(c.get_string("", "top_level", "").value(), "ok");
}

TEST(Config, RejectsMalformedInput) {
  EXPECT_FALSE(Config::parse("[unclosed\nk=v\n").is_ok());
  EXPECT_FALSE(Config::parse("[]\n").is_ok());
  EXPECT_FALSE(Config::parse("just a bare line\n").is_ok());
  EXPECT_FALSE(Config::parse("[s]\n= value_without_key\n").is_ok());
}

TEST(Config, LaterKeyWins) {
  const auto c = Config::parse("[s]\nk = 1\nk = 2\n").value();
  EXPECT_EQ(c.get_int("s", "k", 0).value(), 2);
}

TEST(Config, EmptyInputIsEmptyConfig) {
  const auto c = Config::parse("");
  ASSERT_TRUE(c.is_ok());
  EXPECT_EQ(c.value().size(), 0u);
  EXPECT_TRUE(c.value().sections().empty());
}

}  // namespace
}  // namespace envmon
