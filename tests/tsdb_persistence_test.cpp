// Tests for the durable tiered storage layer (DESIGN.md §13): WAL
// crash recovery, segment checksums and quarantine, content-addressed
// dedup with refcounted drops, eviction, and the fuzz harness that
// feeds the recovery path garbage bytes.  A database destroyed without
// close() models kill -9: the destructor writes nothing, so the next
// open() sees exactly what a dead process would have left behind.
// `ctest -L persist` runs just these.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "tsdb/database.hpp"
#include "tsdb/wal.hpp"
#include "tsdb/wire.hpp"

namespace envmon::tsdb {
namespace {

using sim::Duration;
using sim::SimTime;

// ------------------------------------------------------------- fixture

struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/envmon_persist_XXXXXX";
    path = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

DatabaseOptions durable_options() {
  DatabaseOptions o;
  o.max_insert_rate_per_second = 1e15;  // rate ceiling is not under test
  return o;
}

Record make_record(std::int64_t ts_ns, int rack, int card, const std::string& metric,
                   double value) {
  Record r;
  r.timestamp = SimTime::from_ns(ts_ns);
  r.location = Location{rack, 0, 0, card};
  r.metric = metric;
  r.value = value;
  return r;
}

// A deterministic multi-series workload: `rows` records round-robined
// over 4 (rack, card) shards and 2 metrics, timestamps 1ms apart.
std::vector<Record> workload(std::size_t rows, std::int64_t start_ns = 0) {
  std::vector<Record> out;
  out.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    const auto ts = start_ns + static_cast<std::int64_t>(i) * 1'000'000;
    out.push_back(make_record(ts, static_cast<int>(i % 2), static_cast<int>((i / 2) % 2),
                              i % 3 == 0 ? "coolant_flow_lpm" : "input_power_watts",
                              std::sin(static_cast<double>(i) * 0.1) * 100.0));
  }
  return out;
}

// FNV-1a over every field of every row — byte-identical result check.
std::uint64_t digest(const std::vector<Record>& rows) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const Record& r : rows) {
    mix(static_cast<std::uint64_t>(r.timestamp.ns()));
    mix(static_cast<std::uint64_t>(r.location.rack) << 32 |
        static_cast<std::uint32_t>(r.location.card));
    for (const char c : r.metric) mix(static_cast<std::uint8_t>(c));
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(r.value));
    std::memcpy(&bits, &r.value, sizeof(bits));
    mix(bits);
  }
  return h;
}

std::vector<Record> query_all(const EnvDatabase& db) { return db.query(QueryFilter{}); }

// Flips one byte in `path` at `offset`.
void corrupt_byte(const std::string& path, std::uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5a);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&byte, 1);
}

std::vector<std::string> files_matching(const std::string& dir, const std::string& prefix) {
  std::vector<std::string> out;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) == 0) out.push_back(entry.path().string());
  }
  return out;
}

// ------------------------------------------------------ crash recovery

TEST(Persistence, RecoversByteIdenticalAfterKill9) {
  TempDir dir;
  std::uint64_t before;
  std::size_t rows_before;
  {
    auto db = std::make_unique<EnvDatabase>(durable_options());
    ASSERT_TRUE(db->open(dir.path).is_ok());
    const auto rows = workload(10'000);
    ASSERT_TRUE(db->insert_batch(rows).all_accepted());
    db->seal_blocks(1);
    // Keep the head non-empty too: sealed + head rows both recover.
    ASSERT_TRUE(db->insert_batch(workload(500, 10'000LL * 1'000'000)).all_accepted());
    before = digest(query_all(*db));
    rows_before = db->size();
    // kill -9: destroy without close().
  }
  EnvDatabase db(durable_options());
  ASSERT_TRUE(db.open(dir.path).is_ok());
  EXPECT_TRUE(db.recovery_info().recovered);
  EXPECT_EQ(db.size(), rows_before);
  EXPECT_EQ(digest(query_all(db)), before);
  EXPECT_GT(db.recovery_info().rows_recovered, 0u);
}

TEST(Persistence, SingleInsertPathIsLoggedToo) {
  TempDir dir;
  std::uint64_t before;
  {
    EnvDatabase db(durable_options());
    ASSERT_TRUE(db.open(dir.path).is_ok());
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(db.insert(make_record(i * 1'000'000, 0, 0, "input_power_watts",
                                        static_cast<double>(i)))
                      .is_ok());
    }
    before = digest(query_all(db));
  }
  EnvDatabase db(durable_options());
  ASSERT_TRUE(db.open(dir.path).is_ok());
  EXPECT_EQ(db.size(), 200u);
  EXPECT_EQ(digest(query_all(db)), before);
}

TEST(Persistence, ReopenAndAppendRoundTrip) {
  TempDir dir;
  {
    EnvDatabase db(durable_options());
    ASSERT_TRUE(db.open(dir.path).is_ok());
    ASSERT_TRUE(db.insert_batch(workload(5'000)).all_accepted());
    db.seal_blocks(1);
    ASSERT_TRUE(db.close().is_ok());  // clean shutdown: checkpoint only
  }
  std::uint64_t before;
  {
    EnvDatabase db(durable_options());
    ASSERT_TRUE(db.open(dir.path).is_ok());
    EXPECT_EQ(db.size(), 5'000u);
    EXPECT_GT(db.metric_count(), 0u);
    EXPECT_GT(db.series_count(), 0u);
    // Appends continue where the recovered sequence left off.
    ASSERT_TRUE(db.insert_batch(workload(5'000, 5'000LL * 1'000'000)).all_accepted());
    before = digest(query_all(db));
    ASSERT_TRUE(db.close().is_ok());
  }
  EnvDatabase db(durable_options());
  ASSERT_TRUE(db.open(dir.path).is_ok());
  EXPECT_EQ(db.size(), 10'000u);
  EXPECT_EQ(digest(query_all(db)), before);
}

TEST(Persistence, CleanCloseLeavesExactlyOneWal) {
  TempDir dir;
  {
    EnvDatabase db(durable_options());
    ASSERT_TRUE(db.open(dir.path).is_ok());
    ASSERT_TRUE(db.insert_batch(workload(2'000)).all_accepted());
    ASSERT_TRUE(db.close().is_ok());
  }
  EXPECT_EQ(files_matching(dir.path, "wal-").size(), 1u);
}

TEST(Persistence, WalRotationKeepsOneWalAndRecovers) {
  TempDir dir;
  auto options = durable_options();
  options.durability.wal_rotate_bytes = 4096;  // rotate constantly
  std::uint64_t before;
  {
    EnvDatabase db(options);
    ASSERT_TRUE(db.open(dir.path).is_ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(db.insert_batch(workload(100, i * 100LL * 1'000'000)).all_accepted());
    }
    EXPECT_EQ(files_matching(dir.path, "wal-").size(), 1u);
    before = digest(query_all(db));
  }
  EnvDatabase db(options);
  ASSERT_TRUE(db.open(dir.path).is_ok());
  EXPECT_EQ(db.size(), 5'000u);
  EXPECT_EQ(digest(query_all(db)), before);
}

TEST(Persistence, FsyncPoliciesAllRecover) {
  for (const FsyncPolicy policy :
       {FsyncPolicy::kNone, FsyncPolicy::kOnSeal, FsyncPolicy::kAlways}) {
    TempDir dir;
    auto options = durable_options();
    options.durability.fsync_policy = policy;
    std::uint64_t before;
    {
      EnvDatabase db(options);
      ASSERT_TRUE(db.open(dir.path).is_ok());
      ASSERT_TRUE(db.insert_batch(workload(3'000)).all_accepted());
      db.seal_blocks(1);
      ASSERT_TRUE(db.flush().is_ok());
      before = digest(query_all(db));
    }
    EnvDatabase db(options);
    ASSERT_TRUE(db.open(dir.path).is_ok());
    EXPECT_EQ(db.size(), 3'000u) << "policy " << static_cast<int>(policy);
    EXPECT_EQ(digest(query_all(db)), before);
  }
}

// ------------------------------------------------- torn / corrupt WALs

TEST(Persistence, TornWalTailIsTruncated) {
  TempDir dir;
  std::uint64_t before;
  {
    EnvDatabase db(durable_options());
    ASSERT_TRUE(db.open(dir.path).is_ok());
    ASSERT_TRUE(db.insert_batch(workload(1'000)).all_accepted());
    before = digest(query_all(db));
  }
  // A torn final frame: the length prefix of a record whose bytes never
  // made it out of the page cache.
  const auto wals = files_matching(dir.path, "wal-");
  ASSERT_EQ(wals.size(), 1u);
  {
    std::ofstream f(wals.front(), std::ios::app | std::ios::binary);
    const std::uint32_t claim = 100;
    f.write(reinterpret_cast<const char*>(&claim), sizeof(claim));
    f.write("torn", 4);
  }
  EnvDatabase db(durable_options());
  ASSERT_TRUE(db.open(dir.path).is_ok());
  EXPECT_TRUE(db.recovery_info().wal_truncated);
  EXPECT_EQ(db.size(), 1'000u);  // every whole record survives
  EXPECT_EQ(digest(query_all(db)), before);
}

TEST(Persistence, CorruptWalTailRecoversTheCleanPrefix) {
  TempDir dir;
  {
    EnvDatabase db(durable_options());
    ASSERT_TRUE(db.open(dir.path).is_ok());
    // Two separate insert calls -> two kInsertBatch frames.
    ASSERT_TRUE(db.insert_batch(workload(1'000)).all_accepted());
    ASSERT_TRUE(db.insert_batch(workload(1'000, 1'000LL * 1'000'000)).all_accepted());
  }
  const auto wals = files_matching(dir.path, "wal-");
  ASSERT_EQ(wals.size(), 1u);
  // Flip a byte near the end: inside the last frame's payload.
  const auto size = std::filesystem::file_size(wals.front());
  corrupt_byte(wals.front(), size - 16);
  EnvDatabase db(durable_options());
  ASSERT_TRUE(db.open(dir.path).is_ok());
  EXPECT_TRUE(db.recovery_info().wal_truncated);
  // The clean prefix (at least the first batch) survives; nothing past
  // the corruption does, and nothing is half-applied.
  EXPECT_GE(db.size(), 1'000u);
  EXPECT_LT(db.size(), 2'000u);
  const auto rows = query_all(db);
  EXPECT_EQ(rows.size(), db.size());
}

// ----------------------------------------- checksums, quarantine, dedup

TEST(Persistence, CorruptSegmentPayloadIsQuarantinedNotFatal) {
  TempDir dir;
  std::size_t rows_total;
  {
    EnvDatabase db(durable_options());
    ASSERT_TRUE(db.open(dir.path).is_ok());
    ASSERT_TRUE(db.insert_batch(workload(4'000)).all_accepted());
    db.seal_blocks(1);
    rows_total = db.size();
    ASSERT_TRUE(db.close().is_ok());
  }
  const auto segments = files_matching(dir.path, "segment-");
  ASSERT_FALSE(segments.empty());
  // Past the 24-byte segment header and 32-byte extent header: inside
  // the first extent's payload, whose CRC no longer matches.
  corrupt_byte(segments.front(), 60);
  EnvDatabase db(durable_options());
  ASSERT_TRUE(db.open(dir.path).is_ok());
  const auto rows = query_all(db);
  // The damaged block is quarantined: its rows vanish from results, the
  // rest of the store still answers, and the failure is counted.
  EXPECT_LT(rows.size(), rows_total);
  EXPECT_GT(rows.size(), 0u);
  EXPECT_GE(db.durable_stats().quarantined, 1u);
}

TEST(Persistence, IdenticalBlocksAcrossSeriesDedupToOneExtent) {
  TempDir dir;
  EnvDatabase db(durable_options());
  ASSERT_TRUE(db.open(dir.path).is_ok());
  // Two series with byte-identical columns (seq differs, but seq rides
  // the per-reference sidecar, not the content-addressed payload).
  std::vector<Record> rows;
  for (int i = 0; i < 2'000; ++i) {
    const auto ts = static_cast<std::int64_t>(i) * 1'000'000;
    rows.push_back(make_record(ts, 0, 0, "input_power_watts", static_cast<double>(i % 97)));
    rows.push_back(make_record(ts, 1, 0, "input_power_watts", static_cast<double>(i % 97)));
  }
  ASSERT_TRUE(db.insert_batch(rows).all_accepted());
  db.seal_blocks(1);
  const auto stats = db.durable_stats();
  EXPECT_GE(stats.dedup_hits, 1u);
  EXPECT_EQ(stats.extents_appended, stats.dedup_hits > 0 ? 1u : 2u);
  // Both series still answer independently.
  QueryFilter f;
  f.location_prefix = Location{1, -1, -1, -1};
  EXPECT_EQ(db.query(f).size(), 2'000u);
  ASSERT_TRUE(db.close().is_ok());

  // Dedup also survives reopen: the recovered store re-references one
  // extent twice.
  EnvDatabase db2(durable_options());
  ASSERT_TRUE(db2.open(dir.path).is_ok());
  EXPECT_EQ(db2.size(), 4'000u);
  EXPECT_EQ(db2.query(f).size(), 2'000u);
}

TEST(Persistence, RetentionReleasesRefsAndUnlinksDeadSegments) {
  TempDir dir;
  auto options = durable_options();
  options.retention = Duration::seconds(10);
  options.durability.segment_rotate_bytes = 1;  // one extent per segment
  EnvDatabase db(options);
  ASSERT_TRUE(db.open(dir.path).is_ok());
  ASSERT_TRUE(db.insert_batch(workload(8'000)).all_accepted());
  db.seal_blocks(1);
  const auto disk_before = db.durable_stats().disk_bytes;
  ASSERT_GT(disk_before, 0u);
  // One record far in the future expires everything sealed above.
  ASSERT_TRUE(db.insert(make_record(1'000'000'000'000, 0, 0, "input_power_watts", 1.0)).is_ok());
  db.vacuum();
  const auto stats = db.durable_stats();
  EXPECT_GE(stats.segments_deleted, 1u);
  EXPECT_LT(stats.disk_bytes, disk_before);
  EXPECT_EQ(db.size(), 1u);
}

TEST(Persistence, RetentionThenKill9DoesNotLoseTheDatabase) {
  // The lethal sequence: a checkpoint references sealed extents, then
  // retention kills every block in their segments, then kill -9.  The
  // segment files must outlive every WAL record referencing them (the
  // unlink is deferred behind a fresh checkpoint), or recovery rejects
  // the only WAL and the whole database silently evaporates.
  TempDir dir;
  auto options = durable_options();
  options.retention = Duration::seconds(10);
  options.durability.segment_rotate_bytes = 1;  // one extent per segment
  {
    EnvDatabase db(options);
    ASSERT_TRUE(db.open(dir.path).is_ok());
    ASSERT_TRUE(db.insert_batch(workload(6'000)).all_accepted());
    db.seal_blocks(1);
    ASSERT_TRUE(db.close().is_ok());  // checkpoint now references the extents
  }
  std::uint64_t before;
  std::size_t rows_before;
  {
    EnvDatabase db(options);
    ASSERT_TRUE(db.open(dir.path).is_ok());
    ASSERT_EQ(db.size(), 6'000u);
    // One far-future record expires every sealed block above: whole
    // segments go dead while the current WAL still references them.
    ASSERT_TRUE(
        db.insert(make_record(1'000'000'000'000, 0, 0, "input_power_watts", 7.0)).is_ok());
    ASSERT_TRUE(
        db.insert_batch(workload(500, 1'000'000'000'000 + 1'000'000)).all_accepted());
    EXPECT_GE(db.durable_stats().segments_deleted, 1u);  // files were reclaimed
    before = digest(query_all(db));
    rows_before = db.size();
    // kill -9 right after the retention wave.
  }
  EnvDatabase db(options);
  ASSERT_TRUE(db.open(dir.path).is_ok());
  EXPECT_TRUE(db.recovery_info().recovered);
  EXPECT_EQ(db.size(), rows_before);
  EXPECT_EQ(digest(query_all(db)), before);
}

TEST(Persistence, TrailingSlashDirRoundTrips) {
  // "data/" and "data" must name the same store: path-string comparisons
  // in the WAL cleanup once saw "data//wal-..." != "data/wal-..." and
  // deleted the checkpoint they had just written.
  TempDir dir;
  const std::string slashed = dir.path + "/";
  std::uint64_t before;
  {
    EnvDatabase db(durable_options());
    ASSERT_TRUE(db.open(slashed).is_ok());
    ASSERT_TRUE(db.insert_batch(workload(2'000)).all_accepted());
    db.seal_blocks(1);
    before = digest(query_all(db));
    ASSERT_TRUE(db.close().is_ok());
  }
  EXPECT_EQ(files_matching(dir.path, "wal-").size(), 1u);
  EnvDatabase db(durable_options());
  ASSERT_TRUE(db.open(slashed).is_ok());
  EXPECT_EQ(db.size(), 2'000u);
  EXPECT_EQ(digest(query_all(db)), before);
}

TEST(Persistence, OversizedWalFrameIsRejectedAtAppend) {
  // The reader treats frames past kWalMaxFrameBytes as corruption, so
  // the writer must refuse them up front — otherwise an oversized
  // checkpoint writes "successfully" and recovery silently starts
  // fresh.
  TempDir dir;
  const std::string path = dir.path + "/wal-000001.log";
  WalWriter w;
  ASSERT_TRUE(w.create(path).is_ok());
  const std::vector<std::uint8_t> big(kWalMaxFrameBytes, 0);  // +type byte > ceiling
  EXPECT_FALSE(w.append(WalRecordType::kInsertBatch, big).is_ok());
  EXPECT_EQ(w.frames_written(), 0u);
  ASSERT_TRUE(w.close().is_ok());
  // Nothing of the rejected frame landed: the log is clean and empty,
  // not truncated-at-corruption.
  WalReader r;
  ASSERT_TRUE(r.open(path).is_ok());
  EXPECT_FALSE(r.next().has_value());
  EXPECT_FALSE(r.truncated());
}

TEST(Persistence, UnreadableSegmentFileIsNeverClobbered) {
  // A stray file wearing a segment name but failing header validation
  // is left in place for inspection — and its id must never be handed
  // back to rotate(), whose create() would O_TRUNC the evidence.
  TempDir dir;
  const std::string stray = dir.path + "/segment-000001.seg";
  const std::string junk = "not a segment at all; preserve me for inspection";
  {
    std::ofstream f(stray, std::ios::binary);
    f << junk;
  }
  {
    EnvDatabase db(durable_options());
    ASSERT_TRUE(db.open(dir.path).is_ok());
    ASSERT_TRUE(db.insert_batch(workload(4'000)).all_accepted());
    db.seal_blocks(1);  // rotate() allocates fresh segment ids
    ASSERT_TRUE(db.close().is_ok());
  }
  std::ifstream f(stray, std::ios::binary);
  const std::string back((std::istreambuf_iterator<char>(f)),
                         std::istreambuf_iterator<char>());
  EXPECT_EQ(back, junk);
}

TEST(Persistence, CorruptSealFrameLeavesNoPhantomSeries) {
  TempDir dir;
  std::uint64_t before;
  std::size_t series_before;
  {
    EnvDatabase db(durable_options());
    ASSERT_TRUE(db.open(dir.path).is_ok());
    ASSERT_TRUE(db.insert_batch(workload(1'000)).all_accepted());
    before = digest(query_all(db));
    series_before = db.series_count();
  }
  // Hand-append a CRC-valid kSeal frame for a series no insert ever
  // created, referencing an extent that resolves nowhere.  Replay must
  // reject the frame wholesale — validation registers nothing.
  const auto wals = files_matching(dir.path, "wal-");
  ASSERT_EQ(wals.size(), 1u);
  {
    WalWriter w;
    ASSERT_TRUE(
        w.open_for_append(wals.front(), std::filesystem::file_size(wals.front())).is_ok());
    wire::Writer p;
    for (int i = 0; i < 4; ++i) p.i32(7);  // location no insert ever used
    p.u32(0);                              // a real metric id
    p.u32(16);                             // rows
    p.u32(16);                             // finite_rows
    p.i64(0);                              // ts_min
    p.i64(15);                             // ts_max
    p.u64(0);                              // seq_first
    p.u64(15);                             // seq_last
    for (int i = 0; i < 4; ++i) p.f64(1.0);  // min/max/sum/sum_sq
    p.u32(1);                              // segment id
    p.u64(24);                             // offset
    p.u32(64);                             // length
    p.u32(0);                              // crc
    p.u64(0);                              // hash.hi
    p.u64(0);                              // hash.lo
    p.blob({});                            // seq sidecar
    ASSERT_TRUE(w.append(WalRecordType::kSeal, p.span()).is_ok());
    ASSERT_TRUE(w.close().is_ok());
  }
  EnvDatabase db(durable_options());
  ASSERT_TRUE(db.open(dir.path).is_ok());
  EXPECT_TRUE(db.recovery_info().wal_truncated);
  EXPECT_EQ(db.series_count(), series_before);  // no phantom in index or gauge
  EXPECT_EQ(digest(query_all(db)), before);
}

// ------------------------------------------------------------ eviction

TEST(Persistence, EvictionBoundsResidencyAndColdQueriesAreByteIdentical) {
  TempDir dir;
  auto evicting = durable_options();
  evicting.durability.max_resident_sealed_bytes = 1;  // evict everything clean
  std::uint64_t hot_digest;
  {
    // Control: same workload, no eviction.
    EnvDatabase control(durable_options());
    const auto rows = workload(12'000);
    ASSERT_TRUE(control.insert_batch(rows).all_accepted());
    control.seal_blocks(1);
    hot_digest = digest(query_all(control));
  }
  EnvDatabase db(evicting);
  ASSERT_TRUE(db.open(dir.path).is_ok());
  ASSERT_TRUE(db.insert_batch(workload(12'000)).all_accepted());
  db.seal_blocks(1);
  // The eviction pass at the write boundary dropped the sealed tier.
  ASSERT_TRUE(db.insert(make_record(12'000LL * 1'000'000, 0, 0, "input_power_watts", 0.0)).is_ok());
  EXPECT_EQ(db.durable_stats().resident_sealed_bytes, 0u);
  auto rows = query_all(db);
  rows.pop_back();  // the sentinel row the control never saw
  EXPECT_EQ(digest(rows), hot_digest);
  EXPECT_GE(db.durable_stats().cold_loads, 1u);
}

TEST(Persistence, ExplicitEvictionReportsBlocksAndIsRepeatable) {
  TempDir dir;
  EnvDatabase db(durable_options());
  ASSERT_TRUE(db.open(dir.path).is_ok());
  ASSERT_TRUE(db.insert_batch(workload(10'000)).all_accepted());
  db.seal_blocks(1);
  const std::size_t evicted = db.evict_sealed_blocks(0);
  EXPECT_GE(evicted, 1u);
  EXPECT_EQ(db.evict_sealed_blocks(0), 0u);  // already cold
  EXPECT_EQ(query_all(db).size(), 10'000u);  // queries re-materialize
}

// ----------------------------------------------------------------- fuzz

TEST(Persistence, GarbageFilesNeverCrashOpen) {
  std::mt19937_64 rng(0xE27Bu);
  for (int round = 0; round < 8; ++round) {
    TempDir dir;
    // A directory full of garbage that only *looks* like a store.
    for (const char* name : {"wal-000001.log", "segment-000001.seg", "wal-000007.log"}) {
      std::ofstream f(dir.path + "/" + name, std::ios::binary);
      const std::size_t n = static_cast<std::size_t>(rng() % 4096);
      for (std::size_t i = 0; i < n; ++i) {
        const char b = static_cast<char>(rng());
        f.write(&b, 1);
      }
    }
    EnvDatabase db(durable_options());
    ASSERT_TRUE(db.open(dir.path).is_ok());  // fresh start, garbage ignored
    EXPECT_EQ(db.size(), 0u);
    ASSERT_TRUE(db.insert_batch(workload(100)).all_accepted());
    EXPECT_EQ(query_all(db).size(), 100u);
  }
}

TEST(Persistence, RandomDamageYieldsAPrefixNeverACrash) {
  std::mt19937_64 rng(0x5EEDu);
  for (int round = 0; round < 10; ++round) {
    TempDir dir;
    std::size_t rows_written;
    {
      EnvDatabase db(durable_options());
      ASSERT_TRUE(db.open(dir.path).is_ok());
      ASSERT_TRUE(db.insert_batch(workload(3'000)).all_accepted());
      db.seal_blocks(1);
      ASSERT_TRUE(db.insert_batch(workload(500, 3'000LL * 1'000'000)).all_accepted());
      rows_written = db.size();
    }
    // Random damage: truncate or bit-flip any store file.
    for (const auto& entry : std::filesystem::directory_iterator(dir.path)) {
      const auto size = std::filesystem::file_size(entry.path());
      if (size == 0 || rng() % 2 == 0) continue;
      if (rng() % 2 == 0) {
        std::filesystem::resize_file(entry.path(), rng() % size);
      } else {
        corrupt_byte(entry.path().string(), rng() % size);
      }
    }
    EnvDatabase db(durable_options());
    ASSERT_TRUE(db.open(dir.path).is_ok());
    // Whatever survived is a clean, queryable prefix — damage can cost
    // rows (truncated WAL, quarantined blocks) but never corrupt them.
    const auto rows = query_all(db);
    EXPECT_LE(rows.size(), rows_written);
    for (std::size_t i = 1; i < rows.size(); ++i) {
      EXPECT_GE(rows[i].timestamp.ns(), rows[i - 1].timestamp.ns());
    }
    // And the recovered store still accepts writes.
    const auto next_ts = rows.empty() ? 0 : rows.back().timestamp.ns();
    ASSERT_TRUE(db.insert_batch(workload(100, next_ts + 1'000'000)).all_accepted());
  }
}

// -------------------------------------------------------- introspection

TEST(Persistence, NonDurableDatabaseReportsZerosAndFlushFails) {
  EnvDatabase db(durable_options());
  EXPECT_FALSE(db.durable());
  EXPECT_FALSE(db.flush().is_ok());
  EXPECT_TRUE(db.close().is_ok());  // close is a no-op, not an error
  const auto stats = db.durable_stats();
  EXPECT_EQ(stats.wal_bytes, 0u);
  EXPECT_EQ(stats.segments_open, 0u);
  ASSERT_TRUE(db.insert_batch(workload(100)).all_accepted());  // still works
}

TEST(Persistence, OpenRequiresAnEmptyDatabase) {
  TempDir dir;
  EnvDatabase db(durable_options());
  ASSERT_TRUE(db.insert_batch(workload(10)).all_accepted());
  EXPECT_FALSE(db.open(dir.path).is_ok());
}

TEST(Persistence, DurableStatsAndMetricsTrackTheStore) {
  TempDir dir;
  EnvDatabase db(durable_options());
  ASSERT_TRUE(db.open(dir.path).is_ok());
  ASSERT_TRUE(db.insert_batch(workload(5'000)).all_accepted());
  db.seal_blocks(1);
  ASSERT_TRUE(db.flush().is_ok());
  const auto stats = db.durable_stats();
  EXPECT_GT(stats.wal_bytes, 0u);
  EXPECT_GT(stats.wal_frames, 0u);
  EXPECT_GE(stats.segments_open, 1u);
  EXPECT_GE(stats.extents_appended, 1u);
  EXPECT_GT(stats.disk_bytes, 0u);
  EXPECT_GE(db.recovery_info().recovery_seconds, 0.0);
}

}  // namespace
}  // namespace envmon::tsdb
