#include "bgq/emon.hpp"
#include "bgq/env_monitor.hpp"
#include "bgq/machine.hpp"

#include <gtest/gtest.h>

#include "workloads/library.hpp"

namespace envmon::bgq {
namespace {

using sim::Duration;
using sim::SimTime;

TEST(Topology, MiraRackCounts) {
  const Topology t;
  EXPECT_EQ(t.boards_per_rack(), 32);
  EXPECT_EQ(t.total_nodes(), 1024);  // "a total of 1,024 nodes per rack"
}

TEST(Machine, BoardEnumeration) {
  BgqMachine m;
  EXPECT_EQ(m.board_count(), 32u);
  EXPECT_EQ(m.board(0).midplane(), 0);
  EXPECT_EQ(m.board(16).midplane(), 1);  // two midplanes of 16 boards
  EXPECT_EQ(m.board(17).board(), 1);
}

TEST(Machine, RejectsBadTopology) {
  Topology t;
  t.racks = 0;
  EXPECT_THROW(BgqMachine{t}, std::invalid_argument);
}

TEST(Machine, IdleBoardPowerInCalibratedRange) {
  BgqMachine m;
  const Watts idle = m.board(0).total_power(SimTime::zero());
  EXPECT_GT(idle.value(), 550.0);
  EXPECT_LT(idle.value(), 850.0);
}

TEST(Machine, MmpsRaisesBoardTowardTwoKilowatts) {
  BgqMachine m;
  const auto w = workloads::mmps({Duration::seconds(600), 6});
  m.run_workload(&w, SimTime::zero());
  const Watts active = m.board(0).total_power(SimTime::from_seconds(300));
  EXPECT_GT(active.value(), 1700.0);
  EXPECT_LT(active.value(), 2400.0);
}

TEST(Machine, ChipCoreIsLargestDomainUnderMmps) {
  BgqMachine m;
  const auto w = workloads::mmps({Duration::seconds(600), 6});
  m.run_workload(&w, SimTime::zero());
  const auto t = SimTime::from_seconds(300);
  const Watts chip = m.board(0).domain_power(Domain::kChipCore, t);
  for (const Domain d : kAllDomains) {
    if (d == Domain::kChipCore) continue;
    EXPECT_GT(chip.value(), m.board(0).domain_power(d, t).value()) << to_string(d);
  }
}

TEST(Machine, WorkloadOnBoardSubsetOnly) {
  BgqMachine m;
  const auto w = workloads::dgemm({Duration::seconds(100), 0.9, 0.5});
  m.run_workload(&w, SimTime::zero(), 0, 4);
  const auto t = SimTime::from_seconds(50);
  EXPECT_GT(m.board(0).total_power(t).value(), m.board(4).total_power(t).value() + 300.0);
}

TEST(Machine, BpmInputExceedsDcByConversionLoss) {
  BgqMachine m;
  const auto t = SimTime::zero();
  const double dc = m.bpm_output_power(0, t).value();
  const double ac = m.bpm_input_power(0, t).value();
  EXPECT_NEAR(ac * 0.92, dc, 1.0);
  EXPECT_GT(ac, dc);
}

TEST(Machine, BpmCurrentAt480Volts) {
  BgqMachine m;
  const auto t = SimTime::zero();
  EXPECT_NEAR(m.bpm_input_current(0, t).value() * 480.0, m.bpm_input_power(0, t).value(),
              1e-6);
}

TEST(Emon, NoDataBeforeFirstGeneration) {
  BgqMachine m;
  EmonSession emon(m.board(0));
  const auto r = emon.read(SimTime::from_ns(100));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

TEST(Emon, ReturnsCompletedGenerationOnly) {
  BgqMachine m;
  EmonSession emon(m.board(0));
  // At t = 1.3 s, generation 1 (0.56-1.12 s) is complete; generation 2 is
  // in flight.  The reading must come from generation 1.
  const auto r = emon.read(SimTime::from_seconds(1.3));
  ASSERT_TRUE(r.is_ok());
  EXPECT_DOUBLE_EQ(r.value().generation_start.to_seconds(), 0.56);
}

TEST(Emon, StaleDataWithinGeneration) {
  BgqMachine m;
  EmonSession emon(m.board(0));
  const auto a = emon.read(SimTime::from_seconds(1.20));
  const auto b = emon.read(SimTime::from_seconds(1.60));
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  // Both reads land in the same generation window: identical snapshots.
  EXPECT_EQ(a.value().generation_start.ns(), b.value().generation_start.ns());
  EXPECT_DOUBLE_EQ(a.value().total_power().value(), b.value().total_power().value());
}

TEST(Emon, DomainsNotSampledSimultaneously) {
  BgqMachine m;
  EmonSession emon(m.board(0));
  const auto r = emon.read(SimTime::from_seconds(2.0));
  ASSERT_TRUE(r.is_ok());
  const auto& domains = r.value().domains;
  // Staggered sampling: the inconsistency the paper warns about when
  // "code begins to stress both the CPU and memory at the same time".
  EXPECT_LT(domains.front().sampled_at, domains.back().sampled_at);
}

TEST(Emon, ChargesQueryCost) {
  BgqMachine m;
  EmonSession emon(m.board(0));
  (void)emon.read(SimTime::from_seconds(2.0));
  (void)emon.read(SimTime::from_seconds(3.0));
  EXPECT_EQ(emon.cost().queries(), 2u);
  EXPECT_NEAR(emon.cost().mean_per_query().to_millis(), 1.10, 1e-9);
}

TEST(Emon, TotalMatchesBoardPowerClosely) {
  BgqMachine m;
  const auto w = workloads::mmps({Duration::seconds(600), 6});
  m.run_workload(&w, SimTime::zero());
  EmonSession emon(m.board(0));
  const auto r = emon.read(SimTime::from_seconds(300.0));
  ASSERT_TRUE(r.is_ok());
  const double direct = m.board(0).total_power(SimTime::from_seconds(300.0)).value();
  // Within a few percent: staleness + stagger, not systematic error.
  EXPECT_NEAR(r.value().total_power().value(), direct, 0.05 * direct);
}

TEST(EnvMonitor, RejectsOutOfRangeInterval) {
  sim::Engine engine;
  BgqMachine m;
  tsdb::EnvDatabase db;
  EnvMonitorOptions o;
  o.interval = Duration::seconds(30);  // below the 60 s floor
  EXPECT_FALSE(EnvMonitor::create(engine, m, db, o).is_ok());
  o.interval = Duration::seconds(3600);  // above the 1800 s ceiling
  EXPECT_FALSE(EnvMonitor::create(engine, m, db, o).is_ok());
  o.interval = Duration::seconds(60);
  EXPECT_TRUE(EnvMonitor::create(engine, m, db, o).is_ok());
  o.interval = Duration::seconds(1800);
  EXPECT_TRUE(EnvMonitor::create(engine, m, db, o).is_ok());
}

TEST(EnvMonitor, RecordsBpmPowerPerInterval) {
  sim::Engine engine;
  BgqMachine m;
  tsdb::EnvDatabase db;
  EnvMonitorOptions o;
  o.interval = Duration::seconds(240);
  o.record_board_voltages = false;
  auto monitor = EnvMonitor::create(engine, m, db, o);
  ASSERT_TRUE(monitor.is_ok());
  monitor.value()->start();
  engine.run_until(SimTime::from_seconds(1000));
  EXPECT_EQ(monitor.value()->polls_completed(), 4u);  // 240, 480, 720, 960

  tsdb::QueryFilter f;
  f.metric = kMetricBpmInputPower;
  const auto rows = db.query(f);
  ASSERT_EQ(rows.size(), 4u);
  // Idle rack: BPM input around (idle boards + overhead) / efficiency.
  const double expected = m.bpm_input_power(0, SimTime::zero()).value();
  for (const auto& rec : rows) {
    EXPECT_NEAR(rec.value, expected, 0.02 * expected);
  }
}

TEST(EnvMonitor, RecordsCoolantAndFans) {
  sim::Engine engine;
  BgqMachine m;
  tsdb::EnvDatabase db;
  EnvMonitorOptions o;
  o.interval = Duration::seconds(120);
  o.record_board_voltages = false;
  auto monitor = EnvMonitor::create(engine, m, db, o);
  ASSERT_TRUE(monitor.is_ok());
  monitor.value()->start();
  engine.run_until(SimTime::from_seconds(600));
  for (const char* metric : {kMetricCoolantTempC, kMetricCoolantFlowLpm, kMetricFanSpeedRpm,
                             kMetricBpmInputCurrent, kMetricBpmOutputPower}) {
    tsdb::QueryFilter f;
    f.metric = metric;
    EXPECT_FALSE(db.query(f).empty()) << metric;
  }
}

TEST(EnvMonitor, StopHaltsPolling) {
  sim::Engine engine;
  BgqMachine m;
  tsdb::EnvDatabase db;
  auto monitor = EnvMonitor::create(engine, m, db, {Duration::seconds(60), 1, false});
  ASSERT_TRUE(monitor.is_ok());
  monitor.value()->start();
  engine.run_until(SimTime::from_seconds(150));
  monitor.value()->stop();
  const auto polls = monitor.value()->polls_completed();
  engine.run_until(SimTime::from_seconds(600));
  EXPECT_EQ(monitor.value()->polls_completed(), polls);
}

}  // namespace
}  // namespace envmon::bgq
