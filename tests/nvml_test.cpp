#include "nvml/api.hpp"
#include "nvml/device.hpp"

#include <gtest/gtest.h>

#include "workloads/library.hpp"

namespace envmon::nvml {
namespace {

using sim::Duration;
using sim::SimTime;

struct Fixture {
  sim::Engine engine;
  NvmlLibrary library{engine};
  NvmlDeviceHandle handle;

  explicit Fixture(GpuSpec spec = k20_spec()) {
    library.attach_device(std::make_shared<GpuDevice>(std::move(spec)));
    EXPECT_EQ(library.init(), NvmlReturn::kSuccess);
    EXPECT_EQ(library.device_get_handle_by_index(0, &handle), NvmlReturn::kSuccess);
  }
};

TEST(GpuSpec, K20MatchesPaper) {
  const GpuSpec s = k20_spec();
  EXPECT_DOUBLE_EQ(s.peak_tflops_fp64, 1.17);  // "1.17 teraFLOPS at double precision"
  EXPECT_DOUBLE_EQ(s.memory.value(), gibibytes(5.0).value());  // "5 GB of GDDR5"
  EXPECT_EQ(s.cuda_cores, 2496);                               // "2496 CUDA cores"
  EXPECT_TRUE(s.supports_power_readings());
}

TEST(GpuDevice, IdleBoardAround44Watts) {
  GpuDevice dev(k20_spec());
  EXPECT_NEAR(dev.true_board_power(SimTime::zero()).value(), 44.0, 1.0);
}

TEST(GpuDevice, VecaddComputeAround130Watts) {
  GpuDevice dev(k20_spec());
  const auto w = workloads::gpu_vector_add({});
  dev.run_workload(&w, SimTime::zero());
  const double p = dev.true_board_power(SimTime::from_seconds(30)).value();
  EXPECT_GT(p, 115.0);
  EXPECT_LT(p, 150.0);
}

TEST(GpuDevice, MemoryAccountingClamped) {
  GpuDevice dev(k20_spec());
  dev.set_memory_used(gibibytes(2.0));
  EXPECT_DOUBLE_EQ(dev.memory_used().value(), gibibytes(2.0).value());
  EXPECT_DOUBLE_EQ(dev.memory_free().value(), gibibytes(3.0).value());
  dev.set_memory_used(gibibytes(100.0));  // over capacity: clamp
  EXPECT_DOUBLE_EQ(dev.memory_used().value(), gibibytes(5.0).value());
  dev.set_memory_used(Bytes{-5.0});
  EXPECT_DOUBLE_EQ(dev.memory_used().value(), 0.0);
}

TEST(NvmlApi, UninitializedReturnsError) {
  sim::Engine engine;
  NvmlLibrary lib(engine);
  lib.attach_device(std::make_shared<GpuDevice>(k20_spec()));
  unsigned count = 0;
  EXPECT_EQ(lib.device_get_count(&count), NvmlReturn::kUninitialized);
  NvmlDeviceHandle h;
  EXPECT_EQ(lib.device_get_handle_by_index(0, &h), NvmlReturn::kUninitialized);
}

TEST(NvmlApi, InitShutdownLifecycle) {
  Fixture f;
  EXPECT_EQ(f.library.shutdown(), NvmlReturn::kSuccess);
  EXPECT_EQ(f.library.shutdown(), NvmlReturn::kUninitialized);
  unsigned mw = 0;
  EXPECT_EQ(f.library.device_get_power_usage(f.handle, &mw), NvmlReturn::kUninitialized);
}

TEST(NvmlApi, HandlesInvalidatedByReinit) {
  Fixture f;
  (void)f.library.shutdown();
  (void)f.library.init();
  unsigned mw = 0;
  // The old epoch's handle no longer resolves.
  EXPECT_EQ(f.library.device_get_power_usage(f.handle, &mw), NvmlReturn::kInvalidArgument);
}

TEST(NvmlApi, DeviceCountAndName) {
  Fixture f;
  unsigned count = 0;
  EXPECT_EQ(f.library.device_get_count(&count), NvmlReturn::kSuccess);
  EXPECT_EQ(count, 1u);
  std::string name;
  EXPECT_EQ(f.library.device_get_name(f.handle, &name), NvmlReturn::kSuccess);
  EXPECT_EQ(name, "Tesla K20");
}

TEST(NvmlApi, BadIndexNotFound) {
  Fixture f;
  NvmlDeviceHandle h;
  EXPECT_EQ(f.library.device_get_handle_by_index(7, &h), NvmlReturn::kNotFound);
}

TEST(NvmlApi, NullOutParamInvalid) {
  Fixture f;
  EXPECT_EQ(f.library.device_get_power_usage(f.handle, nullptr),
            NvmlReturn::kInvalidArgument);
  EXPECT_EQ(f.library.device_get_count(nullptr), NvmlReturn::kInvalidArgument);
}

TEST(NvmlApi, PowerQueryReportsMilliwatts) {
  Fixture f;
  f.engine.run_until(SimTime::from_seconds(1));
  unsigned mw = 0;
  ASSERT_EQ(f.library.device_get_power_usage(f.handle, &mw), NvmlReturn::kSuccess);
  EXPECT_NEAR(static_cast<double>(mw) / 1000.0, 44.0, 6.0);  // idle +/- accuracy band
}

TEST(NvmlApi, PowerUnsupportedOnFermi) {
  Fixture f(m2090_spec());
  unsigned mw = 0;
  // "The only NVIDIA GPUs which support power data collection are those
  // based on the Kepler architecture."
  EXPECT_EQ(f.library.device_get_power_usage(f.handle, &mw), NvmlReturn::kNotSupported);
}

TEST(NvmlApi, QueryCostIsAboutOnePointThreeMs) {
  Fixture f;
  f.engine.run_until(SimTime::from_seconds(1));
  unsigned mw = 0;
  (void)f.library.device_get_power_usage(f.handle, &mw);
  (void)f.library.device_get_power_usage(f.handle, &mw);
  EXPECT_DOUBLE_EQ(f.library.cost().mean_per_query().to_millis(), 1.3);
}

TEST(NvmlApi, TemperatureAndFan) {
  Fixture f;
  f.engine.run_until(SimTime::from_seconds(1));
  unsigned celsius = 0;
  ASSERT_EQ(f.library.device_get_temperature(f.handle, TemperatureSensor::kGpuDie, &celsius),
            NvmlReturn::kSuccess);
  EXPECT_GT(celsius, 30u);
  EXPECT_LT(celsius, 70u);
  unsigned fan = 0;
  ASSERT_EQ(f.library.device_get_fan_speed(f.handle, &fan), NvmlReturn::kSuccess);
  EXPECT_GE(fan, 30u);
  EXPECT_LE(fan, 100u);
}

TEST(NvmlApi, MemoryInfoConsistent) {
  Fixture f;
  f.library.device_for_testing(0)->set_memory_used(gibibytes(1.5));
  NvmlMemoryInfo info;
  ASSERT_EQ(f.library.device_get_memory_info(f.handle, &info), NvmlReturn::kSuccess);
  EXPECT_EQ(info.total_bytes, info.used_bytes + info.free_bytes);
  EXPECT_EQ(info.used_bytes, static_cast<std::uint64_t>(gibibytes(1.5).value()));
}

TEST(NvmlApi, ClockInfo) {
  Fixture f;
  unsigned mhz = 0;
  ASSERT_EQ(f.library.device_get_clock_info(f.handle, ClockType::kSm, &mhz),
            NvmlReturn::kSuccess);
  EXPECT_EQ(mhz, 706u);
  ASSERT_EQ(f.library.device_get_clock_info(f.handle, ClockType::kMem, &mhz),
            NvmlReturn::kSuccess);
  EXPECT_EQ(mhz, 2600u);
}

TEST(NvmlApi, PowerManagementLimitRoundTrip) {
  Fixture f;
  unsigned mw = 0;
  ASSERT_EQ(f.library.device_get_power_management_limit(f.handle, &mw), NvmlReturn::kSuccess);
  EXPECT_EQ(mw, 225'000u);  // defaults to TDP
  ASSERT_EQ(f.library.device_set_power_management_limit(f.handle, 150'000),
            NvmlReturn::kSuccess);
  (void)f.library.device_get_power_management_limit(f.handle, &mw);
  EXPECT_EQ(mw, 150'000u);
  // Cannot exceed TDP or be zero.
  EXPECT_EQ(f.library.device_set_power_management_limit(f.handle, 500'000),
            NvmlReturn::kInvalidArgument);
  EXPECT_EQ(f.library.device_set_power_management_limit(f.handle, 0),
            NvmlReturn::kInvalidArgument);
}

TEST(NvmlApi, SensorRampTakesSeconds) {
  Fixture f;
  const auto w = workloads::dgemm({Duration::seconds(60), 1.0, 1.0});
  f.library.device_for_testing(0)->run_workload(&w, SimTime::zero());
  // Right after the step the sensed value lags the true value.
  f.engine.run_until(SimTime::from_ns(200'000'000));  // 0.2 s in
  unsigned early_mw = 0;
  (void)f.library.device_get_power_usage(f.handle, &early_mw);
  f.engine.run_until(SimTime::from_seconds(10));
  unsigned late_mw = 0;
  (void)f.library.device_get_power_usage(f.handle, &late_mw);
  EXPECT_GT(late_mw, early_mw + 30'000);  // rises by tens of watts over seconds
}

TEST(NvmlApi, TemperatureRisesUnderLoad) {
  Fixture f;
  const auto w = workloads::gpu_vector_add({});
  f.library.device_for_testing(0)->run_workload(&w, SimTime::zero());
  unsigned t_early = 0, t_late = 0;
  f.engine.run_until(SimTime::from_seconds(15));
  (void)f.library.device_get_temperature(f.handle, TemperatureSensor::kGpuDie, &t_early);
  f.engine.run_until(SimTime::from_seconds(90));
  (void)f.library.device_get_temperature(f.handle, TemperatureSensor::kGpuDie, &t_late);
  EXPECT_GT(t_late, t_early);  // the Fig 5 steady rise
}

}  // namespace
}  // namespace envmon::nvml
