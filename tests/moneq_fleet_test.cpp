// Multi-node MonEQ integration: one profiler per node of a midplane job,
// one output file per node ("each of these is accounted for individually
// within the file produced for the node"), all parseable and mutually
// consistent.

#include <gtest/gtest.h>

#include <memory>

#include "bgq/emon.hpp"
#include "bgq/machine.hpp"
#include "moneq/backend_bgq.hpp"
#include "moneq/csv_reader.hpp"
#include "moneq/profiler.hpp"
#include "workloads/library.hpp"

namespace envmon::moneq {
namespace {

using sim::Duration;
using sim::SimTime;

struct Fleet {
  static constexpr int kBoards = 8;

  sim::Engine engine;
  bgq::BgqMachine machine;
  workloads::MmpsOptions mmps_options{Duration::seconds(60), 6};
  power::UtilizationProfile workload = workloads::mmps(mmps_options);
  smpi::World world{kBoards * 32};
  smpi::FileSystemModel fs;
  MemoryOutput output;
  std::vector<std::unique_ptr<bgq::EmonSession>> sessions;
  std::vector<std::unique_ptr<BgqBackend>> backends;
  std::vector<std::unique_ptr<NodeProfiler>> profilers;

  Fleet() {
    machine.run_workload(&workload, SimTime::zero(), 0, kBoards);
    // One MonEQ agent per node board (the finest EMON granularity).
    for (int b = 0; b < kBoards; ++b) {
      sessions.push_back(std::make_unique<bgq::EmonSession>(machine.board(
          static_cast<std::size_t>(b))));
      backends.push_back(std::make_unique<BgqBackend>(*sessions.back()));
      profilers.push_back(std::make_unique<NodeProfiler>(engine, world, b));
      EXPECT_TRUE(profilers.back()->add_backend(*backends.back()).is_ok());
      EXPECT_TRUE(profilers.back()->initialize().is_ok());
    }
    engine.run_until(SimTime::from_seconds(60));
    for (auto& p : profilers) {
      EXPECT_TRUE(p->finalize(&fs, &output).is_ok());
    }
  }
};

TEST(MoneqFleet, OneFilePerNode) {
  Fleet fleet;
  EXPECT_EQ(fleet.output.files().size(), static_cast<std::size_t>(Fleet::kBoards));
  EXPECT_TRUE(fleet.output.files().contains("moneq_node_00000.csv"));
  EXPECT_TRUE(fleet.output.files().contains("moneq_node_00007.csv"));
}

TEST(MoneqFleet, EveryFileParsesAndAgrees) {
  Fleet fleet;
  double first_mean = 0.0;
  for (const auto& [name, content] : fleet.output.files()) {
    const auto parsed = parse_node_file(content);
    ASSERT_TRUE(parsed.is_ok()) << name << ": " << parsed.status();
    const auto series = extract_series(parsed.value(), "node_card", Quantity::kPowerWatts);
    ASSERT_GT(series.size(), 50u) << name;
    double mean = 0.0;
    for (const auto& p : series) mean += p.value;
    mean /= static_cast<double>(series.size());
    // All boards run the same workload: node-card means agree closely.
    if (first_mean == 0.0) {
      first_mean = mean;
    } else {
      EXPECT_NEAR(mean, first_mean, 0.02 * first_mean) << name;
    }
  }
  EXPECT_GT(first_mean, 1500.0);  // MMPS-level power, not idle
}

TEST(MoneqFleet, IdenticalOverheadAcrossHomogeneousNodes) {
  Fleet fleet;
  // "if every node in a system has two GPUs, then every node will spend
  // the same amount of time collecting data" — homogeneous here too.
  const auto reference = fleet.profilers.front()->overhead();
  for (const auto& p : fleet.profilers) {
    EXPECT_EQ(p->overhead().collection.ns(), reference.collection.ns());
    EXPECT_EQ(p->overhead().polls, reference.polls);
    EXPECT_EQ(p->overhead().initialize.ns(), reference.initialize.ns());
    EXPECT_EQ(p->overhead().finalize.ns(), reference.finalize.ns());
  }
}

}  // namespace
}  // namespace envmon::moneq
