// Failure injection across the stack: devices fall off the bus, daemons
// die mid-run, permissions get revoked — the profiler must degrade
// gracefully, never fabricate data, and keep error records.

#include <gtest/gtest.h>

#include "bgq/emon.hpp"
#include "bgq/machine.hpp"
#include "mic/micras.hpp"
#include "moneq/backend_bgq.hpp"
#include "moneq/backend_mic.hpp"
#include "moneq/backend_nvml.hpp"
#include "moneq/profiler.hpp"
#include "nvml/api.hpp"
#include "workloads/library.hpp"

namespace envmon {
namespace {

using sim::Duration;
using sim::SimTime;

TEST(FailureInjection, NvmlDeviceLostMidRun) {
  sim::Engine engine;
  nvml::NvmlLibrary library(engine);
  library.attach_device(std::make_shared<nvml::GpuDevice>(nvml::k20_spec()));
  (void)library.init();
  nvml::NvmlDeviceHandle handle;
  (void)library.device_get_handle_by_index(0, &handle);

  moneq::NvmlBackend backend(library, handle);
  smpi::World world(1);
  moneq::NodeProfiler profiler(engine, world, 0);
  ASSERT_TRUE(profiler.add_backend(backend).is_ok());
  ASSERT_TRUE(profiler.set_polling_interval(Duration::millis(100)).is_ok());
  ASSERT_TRUE(profiler.initialize().is_ok());

  engine.run_until(SimTime::from_seconds(2));
  const std::size_t before_loss = profiler.samples().size();
  EXPECT_GT(before_loss, 0u);

  library.mark_device_lost(0);  // XID: the board falls off the bus
  engine.run_until(SimTime::from_seconds(4));
  ASSERT_TRUE(profiler.finalize().is_ok());

  // No samples fabricated after the loss; errors recorded instead.
  EXPECT_EQ(profiler.samples().size(), before_loss);
  ASSERT_FALSE(profiler.collection_errors().empty());
  EXPECT_EQ(profiler.collection_errors().front().code(), StatusCode::kUnavailable);
}

TEST(FailureInjection, NvmlLostDeviceApiSurface) {
  sim::Engine engine;
  nvml::NvmlLibrary library(engine);
  library.attach_device(std::make_shared<nvml::GpuDevice>(nvml::k20_spec()));
  (void)library.init();
  nvml::NvmlDeviceHandle handle;
  (void)library.device_get_handle_by_index(0, &handle);
  library.mark_device_lost(0);
  unsigned mw = 0;
  EXPECT_EQ(library.device_get_power_usage(handle, &mw), nvml::NvmlReturn::kGpuIsLost);
  std::string name;
  EXPECT_EQ(library.device_get_name(handle, &name), nvml::NvmlReturn::kGpuIsLost);
}

TEST(FailureInjection, MicrasDaemonDiesAndRestarts) {
  sim::Engine engine;
  mic::PhiCard card(engine);
  mic::MicrasDaemon daemon(card);
  daemon.start();

  moneq::MicDaemonBackend backend(daemon);
  smpi::World world(1);
  moneq::NodeProfiler profiler(engine, world, 0);
  ASSERT_TRUE(profiler.add_backend(backend).is_ok());
  ASSERT_TRUE(profiler.set_polling_interval(Duration::millis(200)).is_ok());
  ASSERT_TRUE(profiler.initialize().is_ok());

  engine.run_until(SimTime::from_seconds(2));
  const std::size_t healthy = profiler.samples().size();
  daemon.stop();  // oom-killed, say
  engine.run_until(SimTime::from_seconds(4));
  EXPECT_EQ(profiler.samples().size(), healthy);  // nothing fabricated
  EXPECT_FALSE(profiler.collection_errors().empty());

  daemon.start();  // restarted by init
  engine.run_until(SimTime::from_seconds(6));
  ASSERT_TRUE(profiler.finalize().is_ok());
  EXPECT_GT(profiler.samples().size(), healthy);  // collection resumed
}

TEST(FailureInjection, ErrorLogIsBounded) {
  sim::Engine engine;
  mic::PhiCard card(engine);
  mic::MicrasDaemon daemon(card);  // never started: every poll fails
  moneq::MicDaemonBackend backend(daemon);
  smpi::World world(1);
  moneq::NodeProfiler profiler(engine, world, 0);
  ASSERT_TRUE(profiler.add_backend(backend).is_ok());
  ASSERT_TRUE(profiler.set_polling_interval(Duration::millis(50)).is_ok());
  ASSERT_TRUE(profiler.initialize().is_ok());
  engine.run_until(SimTime::from_seconds(30));  // 600 failing polls
  ASSERT_TRUE(profiler.finalize().is_ok());
  EXPECT_LE(profiler.collection_errors().size(), 64u);  // capped, not unbounded
}

TEST(FailureInjection, EmonBeforeFirstGenerationViaProfiler) {
  // A profiler polling faster than data exists must record the
  // unavailability, then recover once generations complete.
  sim::Engine engine;
  bgq::BgqMachine machine;
  bgq::EmonOptions options;
  options.generation_period = Duration::seconds(2);  // slow generations
  bgq::EmonSession emon(machine.board(0), options);
  moneq::BgqBackend backend(emon);
  smpi::World world(32);
  moneq::NodeProfiler profiler(engine, world, 0);
  ASSERT_TRUE(profiler.add_backend(backend).is_ok());
  ASSERT_TRUE(profiler.set_polling_interval(Duration::seconds(2)).is_ok());
  ASSERT_TRUE(profiler.initialize().is_ok());
  engine.run_until(SimTime::from_seconds(9));
  ASSERT_TRUE(profiler.finalize().is_ok());
  // Poll at t=2 s: generation 0 completes exactly then — data flows from
  // the first poll; polls at 4, 6, 8 s all succeed.
  EXPECT_TRUE(profiler.collection_errors().empty());
  EXPECT_EQ(profiler.samples().size(), 4u * 22u);
}

}  // namespace
}  // namespace envmon
