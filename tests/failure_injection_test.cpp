// Failure scenarios across the stack, driven by fault::Injector: devices
// fall off the bus, daemons die mid-run, permissions get revoked — the
// profiler must degrade gracefully, never fabricate data, and keep
// error records.  (These started as ad-hoc scenarios poking vendor-model
// internals; they now script the same failures through the injector so
// each run replays bit-identically.)

#include <gtest/gtest.h>

#include "bgq/emon.hpp"
#include "bgq/machine.hpp"
#include "fault/injector.hpp"
#include "mic/micras.hpp"
#include "moneq/backend_bgq.hpp"
#include "moneq/backend_mic.hpp"
#include "moneq/backend_nvml.hpp"
#include "moneq/profiler.hpp"
#include "nvml/api.hpp"
#include "workloads/library.hpp"

namespace envmon {
namespace {

using sim::Duration;
using sim::SimTime;

TEST(FailureInjection, NvmlDeviceLostMidRun) {
  sim::Engine engine;
  fault::Injector injector(engine);
  nvml::NvmlLibrary library(engine);
  library.attach_device(std::make_shared<nvml::GpuDevice>(nvml::k20_spec()));
  library.attach_fault_hook(injector);
  (void)library.init();
  nvml::NvmlDeviceHandle handle;
  (void)library.device_get_handle_by_index(0, &handle);

  // XID: the board falls off the bus at t = 2 s and never comes back.
  injector.kill_at(fault::sites::kNvml, SimTime::from_seconds(2));

  moneq::NvmlBackend backend(library, handle);
  smpi::World world(1);
  moneq::NodeProfiler profiler(engine, world, 0);
  ASSERT_TRUE(profiler.add_backend(backend).is_ok());
  ASSERT_TRUE(profiler.set_polling_interval(Duration::millis(100)).is_ok());
  ASSERT_TRUE(profiler.initialize().is_ok());

  engine.run_until(SimTime::from_seconds(2));
  const std::size_t before_loss = profiler.samples().size();
  EXPECT_GT(before_loss, 0u);

  engine.run_until(SimTime::from_seconds(4));
  ASSERT_TRUE(profiler.finalize().is_ok());

  // No samples fabricated after the loss; the failures land in the
  // health machinery, and the backend ends the run quarantined with its
  // gap still marked.
  EXPECT_EQ(profiler.samples().size(), before_loss);
  EXPECT_GT(profiler.degraded_polls(), 0u);
  EXPECT_EQ(profiler.backend_health(0).state(), moneq::BackendState::kQuarantined);
  ASSERT_EQ(profiler.gaps().size(), 2u);  // finalize closed the open gap
  EXPECT_DOUBLE_EQ(profiler.gaps()[0].t.to_seconds(), 2.0);
}

TEST(FailureInjection, NvmlLostDeviceApiSurface) {
  sim::Engine engine;
  nvml::NvmlLibrary library(engine);
  library.attach_device(std::make_shared<nvml::GpuDevice>(nvml::k20_spec()));
  (void)library.init();
  nvml::NvmlDeviceHandle handle;
  (void)library.device_get_handle_by_index(0, &handle);
  library.mark_device_lost(0);
  unsigned mw = 0;
  EXPECT_EQ(library.device_get_power_usage(handle, &mw), nvml::NvmlReturn::kGpuIsLost);
  std::string name;
  EXPECT_EQ(library.device_get_name(handle, &name), nvml::NvmlReturn::kGpuIsLost);
}

TEST(FailureInjection, MicrasDaemonDiesAndRestarts) {
  sim::Engine engine;
  fault::Injector injector(engine);
  mic::PhiCard card(engine);
  mic::MicrasDaemon daemon(card);
  daemon.start();
  daemon.attach_fault_hook(injector);
  // oom-killed at 2 s, restarted by init at 4 s.
  injector.fail_between(fault::sites::kMicras, SimTime::from_seconds(2),
                        SimTime::from_seconds(4), StatusCode::kUnavailable,
                        "micras daemon not running");

  moneq::MicDaemonBackend backend(daemon);
  smpi::World world(1);
  moneq::NodeProfiler profiler(engine, world, 0);
  ASSERT_TRUE(profiler.add_backend(backend).is_ok());
  ASSERT_TRUE(profiler.set_polling_interval(Duration::millis(200)).is_ok());
  ASSERT_TRUE(profiler.initialize().is_ok());

  engine.run_until(SimTime::from_seconds(2));
  const std::size_t healthy = profiler.samples().size();
  engine.run_until(SimTime::from_seconds(4));
  EXPECT_EQ(profiler.samples().size(), healthy);  // nothing fabricated
  EXPECT_GT(profiler.degraded_polls(), 0u);

  // Quarantine backoff holds the first probe at 3.4 s (still dark), so
  // collection resumes with the 5.4 s probe after the daemon restarts.
  engine.run_until(SimTime::from_seconds(6));
  ASSERT_TRUE(profiler.finalize().is_ok());
  EXPECT_GT(profiler.samples().size(), healthy);  // collection resumed
  EXPECT_EQ(profiler.backend_health(0).state(), moneq::BackendState::kHealthy);
}

TEST(FailureInjection, PersistentFailureAccountingIsBounded) {
  sim::Engine engine;
  mic::PhiCard card(engine);
  mic::MicrasDaemon daemon(card);  // never started: every poll fails
  moneq::MicDaemonBackend backend(daemon);
  smpi::World world(1);
  moneq::ProfilerOptions options;
  // Disable quarantine so all 600 polls genuinely reach the backend —
  // this test is about bounded failure accounting, not the state machine.
  options.degradation.polls_to_quarantine = 1 << 20;
  moneq::NodeProfiler profiler(engine, world, 0, options);
  ASSERT_TRUE(profiler.add_backend(backend).is_ok());
  ASSERT_TRUE(profiler.set_polling_interval(Duration::millis(50)).is_ok());
  ASSERT_TRUE(profiler.initialize().is_ok());
  engine.run_until(SimTime::from_seconds(30));  // 600 failing polls
  ASSERT_TRUE(profiler.finalize().is_ok());
  // 600 failures collapse into one degraded-poll count and a single gap
  // pair — per-failure state stays O(1) no matter how long the outage.
  EXPECT_EQ(profiler.degraded_polls(), 600u);
  EXPECT_EQ(profiler.backend_health(0).consecutive_failures(), 600);
  EXPECT_EQ(profiler.samples().size(), 0u);
  EXPECT_EQ(profiler.gaps().size(), 2u);  // one gap spanning the whole run
}

TEST(FailureInjection, EmonBeforeFirstGenerationViaProfiler) {
  // A profiler polling faster than data exists must record the
  // unavailability, then recover once generations complete.
  sim::Engine engine;
  bgq::BgqMachine machine;
  bgq::EmonOptions options;
  options.generation_period = Duration::seconds(2);  // slow generations
  bgq::EmonSession emon(machine.board(0), options);
  moneq::BgqBackend backend(emon);
  smpi::World world(32);
  moneq::NodeProfiler profiler(engine, world, 0);
  ASSERT_TRUE(profiler.add_backend(backend).is_ok());
  ASSERT_TRUE(profiler.set_polling_interval(Duration::seconds(2)).is_ok());
  ASSERT_TRUE(profiler.initialize().is_ok());
  engine.run_until(SimTime::from_seconds(9));
  ASSERT_TRUE(profiler.finalize().is_ok());
  // Poll at t=2 s: generation 0 completes exactly then — data flows from
  // the first poll; polls at 4, 6, 8 s all succeed.
  EXPECT_EQ(profiler.degraded_polls(), 0u);
  EXPECT_TRUE(profiler.gaps().empty());
  EXPECT_EQ(profiler.samples().size(), 4u * 22u);
}

}  // namespace
}  // namespace envmon
