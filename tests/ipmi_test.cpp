#include "ipmi/bmc.hpp"
#include "ipmi/ipmb.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace envmon::ipmi {
namespace {

IpmbMessage sensor_request(std::uint8_t rs_addr, std::uint8_t sensor) {
  IpmbMessage req;
  req.rs_addr = rs_addr;
  req.net_fn = static_cast<std::uint8_t>(NetFn::kSensorEvent);
  req.rq_addr = 0x81;
  req.rq_seq = 5;
  req.cmd = kCmdGetSensorReading;
  req.data = {sensor};
  return req;
}

TEST(IpmbChecksum, TwosComplementZeroSum) {
  const std::uint8_t bytes[] = {0x20, 0x18};
  const std::uint8_t ck = ipmb_checksum(bytes, 2);
  EXPECT_EQ(static_cast<std::uint8_t>(0x20 + 0x18 + ck), 0);
}

TEST(IpmbCodec, EncodeDecodeRoundTrip) {
  const IpmbMessage msg = sensor_request(0x30, 0x10);
  const auto frame = encode(msg);
  const auto decoded = decode(frame);
  ASSERT_TRUE(decoded.is_ok());
  const auto& d = decoded.value();
  EXPECT_EQ(d.rs_addr, msg.rs_addr);
  EXPECT_EQ(d.net_fn, msg.net_fn);
  EXPECT_EQ(d.rq_addr, msg.rq_addr);
  EXPECT_EQ(d.rq_seq, msg.rq_seq);
  EXPECT_EQ(d.cmd, msg.cmd);
  EXPECT_EQ(d.data, msg.data);
}

TEST(IpmbCodec, RejectsShortFrame) {
  const std::vector<std::uint8_t> frame = {1, 2, 3};
  EXPECT_FALSE(decode(frame).is_ok());
}

TEST(IpmbCodec, DetectsHeaderCorruption) {
  auto frame = encode(sensor_request(0x30, 0x10));
  frame[1] ^= 0x04;  // flip a netFn bit
  const auto r = decode(frame);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(IpmbCodec, DetectsBodyCorruption) {
  auto frame = encode(sensor_request(0x30, 0x10));
  frame[frame.size() - 2] ^= 0xff;  // corrupt last data byte
  EXPECT_FALSE(decode(frame).is_ok());
}

// Property: random messages survive the codec bit-exactly.
class IpmbRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IpmbRoundTrip, RandomMessage) {
  Rng rng(GetParam());
  IpmbMessage msg;
  msg.rs_addr = static_cast<std::uint8_t>(rng.uniform_u64(256));
  msg.net_fn = static_cast<std::uint8_t>(rng.uniform_u64(64));
  msg.rs_lun = static_cast<std::uint8_t>(rng.uniform_u64(4));
  msg.rq_addr = static_cast<std::uint8_t>(rng.uniform_u64(256));
  msg.rq_seq = static_cast<std::uint8_t>(rng.uniform_u64(64));
  msg.rq_lun = static_cast<std::uint8_t>(rng.uniform_u64(4));
  msg.cmd = static_cast<std::uint8_t>(rng.uniform_u64(256));
  const auto len = rng.uniform_u64(32);
  for (std::uint64_t i = 0; i < len; ++i) {
    msg.data.push_back(static_cast<std::uint8_t>(rng.uniform_u64(256)));
  }
  const auto decoded = decode(encode(msg));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().data, msg.data);
  EXPECT_EQ(decoded.value().net_fn, msg.net_fn);
  EXPECT_EQ(decoded.value().rq_seq, msg.rq_seq);
  EXPECT_EQ(decoded.value().rs_lun, msg.rs_lun);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IpmbRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(IpmbMessage, ResponseSwapsAddresses) {
  const IpmbMessage req = sensor_request(0x30, 0x10);
  const IpmbMessage resp = req.make_response(kCcOk, {0x42});
  EXPECT_EQ(resp.rs_addr, req.rq_addr);
  EXPECT_EQ(resp.rq_addr, req.rs_addr);
  EXPECT_EQ(resp.net_fn, req.net_fn | 1);
  EXPECT_TRUE(resp.is_response());
  EXPECT_EQ(resp.rq_seq, req.rq_seq);
  ASSERT_EQ(resp.data.size(), 2u);
  EXPECT_EQ(resp.data[0], kCcOk);
}

TEST(SensorFactors, LinearDecode) {
  const SensorFactors f{2.0, 10.0, 0, 0};  // value = 2*raw + 10
  EXPECT_DOUBLE_EQ(f.decode(0), 10.0);
  EXPECT_DOUBLE_EQ(f.decode(100), 210.0);
}

TEST(SensorFactors, EncodeClampsAndRounds) {
  const SensorFactors f{2.0, 0.0, 0, 0};
  EXPECT_EQ(f.encode(113.0), 57);   // 56.5 rounds to 57... lround(56.5)=57
  EXPECT_EQ(f.encode(-5.0), 0);
  EXPECT_EQ(f.encode(10'000.0), 255);
}

TEST(SensorFactors, EncodeDecodeWithinHalfStep) {
  const SensorFactors f{2.0, 0.0, 0, 0};
  for (double v = 0.0; v < 500.0; v += 7.3) {
    EXPECT_NEAR(f.decode(f.encode(v)), v, 1.0);  // half of 2 W step
  }
}

TEST(SensorController, GetDeviceId) {
  SensorController smc(0x30, 0x2c);
  IpmbMessage req;
  req.rs_addr = 0x30;
  req.net_fn = static_cast<std::uint8_t>(NetFn::kApp);
  req.rq_addr = 0x20;
  req.cmd = kCmdGetDeviceId;
  const auto resp = smc.handle(req);
  ASSERT_GE(resp.data.size(), 2u);
  EXPECT_EQ(resp.data[0], kCcOk);
  EXPECT_EQ(resp.data[1], 0x2c);
}

TEST(SensorController, ReadsRegisteredSensor) {
  SensorController smc(0x30, 0x2c);
  double value = 120.0;
  ASSERT_TRUE(smc.add_sensor({0x10, "power", SensorFactors{2.0, 0.0, 0, 0},
                              [&] { return value; }})
                  .is_ok());
  const auto resp = smc.handle(sensor_request(0x30, 0x10));
  ASSERT_GE(resp.data.size(), 2u);
  EXPECT_EQ(resp.data[0], kCcOk);
  EXPECT_EQ(resp.data[1], 60);  // 120 W / 2 W per count
}

TEST(SensorController, UnknownSensorCompletionCode) {
  SensorController smc(0x30, 0x2c);
  const auto resp = smc.handle(sensor_request(0x30, 0x99));
  ASSERT_FALSE(resp.data.empty());
  EXPECT_EQ(resp.data[0], kCcInvalidSensor);
}

TEST(SensorController, UnknownCommandCompletionCode) {
  SensorController smc(0x30, 0x2c);
  IpmbMessage req = sensor_request(0x30, 0x10);
  req.cmd = 0x77;
  const auto resp = smc.handle(req);
  EXPECT_EQ(resp.data[0], kCcInvalidCommand);
}

TEST(SensorController, RejectsDuplicateAndNullSensors) {
  SensorController smc(0x30, 0x2c);
  ASSERT_TRUE(smc.add_sensor({0x10, "a", {}, [] { return 0.0; }}).is_ok());
  EXPECT_FALSE(smc.add_sensor({0x10, "b", {}, [] { return 0.0; }}).is_ok());
  EXPECT_FALSE(smc.add_sensor({0x11, "c", {}, nullptr}).is_ok());
}

TEST(Bmc, RoutesToSatellite) {
  Bmc bmc;
  SensorController smc(0x30, 0x2c);
  ASSERT_TRUE(
      smc.add_sensor({0x10, "power", SensorFactors{2.0, 0.0, 0, 0}, [] { return 116.0; }})
          .is_ok());
  bmc.register_satellite(&smc, 0x30);

  IpmbClient client(bmc, 0x81);
  const auto r = client.read_sensor(smc, 0x10);
  ASSERT_TRUE(r.is_ok()) << r.status();
  EXPECT_NEAR(r.value(), 116.0, 1.0);
}

TEST(Bmc, UnknownSatelliteAddress) {
  Bmc bmc;
  const auto frame = encode(sensor_request(0x55, 0x10));
  const auto r = bmc.submit(frame);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Bmc, AnswersOwnSensors) {
  Bmc bmc;
  ASSERT_TRUE(
      bmc.add_sensor({0x01, "inlet_temp", SensorFactors{1.0, 0.0, 0, 0}, [] { return 22.0; }})
          .is_ok());
  IpmbClient client(bmc, 0x81);
  const auto r = client.read_sensor(bmc, 0x01);
  ASSERT_TRUE(r.is_ok());
  EXPECT_NEAR(r.value(), 22.0, 0.5);
}

TEST(Bmc, RejectsCorruptFrame) {
  Bmc bmc;
  auto frame = encode(sensor_request(0x20, 0x01));
  frame[2] ^= 0x01;  // break checksum1
  EXPECT_FALSE(bmc.submit(frame).is_ok());
}

TEST(IpmbClient, SequenceNumbersAdvance) {
  Bmc bmc;
  ASSERT_TRUE(
      bmc.add_sensor({0x01, "t", SensorFactors{1.0, 0.0, 0, 0}, [] { return 1.0; }}).is_ok());
  IpmbClient client(bmc, 0x81);
  for (int i = 0; i < 70; ++i) {  // wraps the 6-bit sequence space
    EXPECT_TRUE(client.read_sensor(bmc, 0x01).is_ok());
  }
}

}  // namespace
}  // namespace envmon::ipmi
