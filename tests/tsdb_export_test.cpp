#include "tsdb/export.hpp"

#include <gtest/gtest.h>

namespace envmon::tsdb {
namespace {

using sim::SimTime;

EnvDatabase sample_db() {
  EnvDatabase db;
  (void)db.insert({SimTime::from_seconds(100), rack_location(0), "bpm_input_power_watts",
                   28'800.5});
  (void)db.insert({SimTime::from_seconds(100), board_location(0, 1, 4), "domain_voltage",
                   1.35});
  (void)db.insert({SimTime::from_seconds(340), rack_location(0), "bpm_input_power_watts",
                   70'100.25});
  return db;
}

TEST(TsdbExport, RoundTrip) {
  const EnvDatabase db = sample_db();
  const std::string csv = export_csv(db);
  EnvDatabase restored;
  const auto n = import_csv(csv, restored);
  ASSERT_TRUE(n.is_ok()) << n.status();
  EXPECT_EQ(n.value(), 3u);
  EXPECT_EQ(restored.size(), db.size());
  const auto rows = restored.query({});
  EXPECT_EQ(rows[1].location.to_string(), "R00-M1-N04");
  EXPECT_DOUBLE_EQ(rows[2].value, 70'100.25);
  EXPECT_DOUBLE_EQ(rows[2].timestamp.to_seconds(), 340.0);
}

TEST(TsdbExport, FilterLimitsExport) {
  const EnvDatabase db = sample_db();
  QueryFilter f;
  f.metric = "bpm_input_power_watts";
  const std::string csv = export_csv(db, f);
  EnvDatabase restored;
  ASSERT_TRUE(import_csv(csv, restored).is_ok());
  EXPECT_EQ(restored.size(), 2u);
}

TEST(TsdbExport, ImportRejectsGarbage) {
  EnvDatabase db;
  EXPECT_FALSE(import_csv("nonsense\n1,2\n", db).is_ok());
  EXPECT_FALSE(import_csv("timestamp_s,location,metric,value\nx,R00,m,1\n", db).is_ok());
  EXPECT_FALSE(import_csv("timestamp_s,location,metric,value\n1,BAD-LOC,m,1\n", db).is_ok());
  EXPECT_FALSE(import_csv("timestamp_s,location,metric,value\n1,R00,m\n", db).is_ok());
}

TEST(TsdbExport, ImportRespectsDbOrderingRules) {
  EnvDatabase db;
  // Out-of-order rows are rejected by the database itself.
  const char* csv =
      "timestamp_s,location,metric,value\n"
      "100,R00,m,1\n"
      "50,R00,m,2\n";
  const auto r = import_csv(csv, db);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(TsdbExport, EmptyDatabaseExportsHeaderOnly) {
  EnvDatabase db;
  const std::string csv = export_csv(db);
  EXPECT_EQ(csv, "timestamp_s,location,metric,value\n");
  EnvDatabase restored;
  const auto n = import_csv(csv, restored);
  ASSERT_TRUE(n.is_ok());
  EXPECT_EQ(n.value(), 0u);
}

}  // namespace
}  // namespace envmon::tsdb
