// The observability layer's contracts (DESIGN.md §11):
//
//   * Prometheus export escapes label values and HELP text, so a value
//     carrying backslashes, quotes, or newlines cannot corrupt the
//     exposition format.
//   * Histogram::quantile interpolates like histogram_quantile(), so the
//     benches can read p99 straight off their latency histograms.
//   * merge_snapshot / FleetTelemetry fold per-node registry partitions
//     up the BG/Q packaging tree deterministically: the fleet rollup's
//     JSON rendering is byte-identical at 1, 2, and 8 worker threads.
//   * FlightRecorder is a bounded ring (per event class), its post-mortem
//     dump is golden-testable, and a scripted quarantine produces the
//     same dump at any worker count.
//   * Self-scrape rows land in the environmental database each epoch
//     under the reserved envmon.self.* namespace, queryable like any
//     other series but exempt from the modeled ingest-rate ceiling.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fleet/api.hpp"
#include "moneq/output.hpp"
#include "obs/export.hpp"
#include "obs/fleet_telemetry.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "tsdb/database.hpp"

namespace envmon {
namespace {

using fleet::FleetConfig;
using fleet::FleetRunner;
using sim::Duration;
using sim::SimTime;

// ---------------------------------------------------------------------------
// Prometheus label-value escaping (regression: values used to be pasted
// into the label body verbatim).

TEST(PrometheusEscaping, EscapeLabelValue) {
  EXPECT_EQ(obs::escape_label_value("plain"), "plain");
  EXPECT_EQ(obs::escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::escape_label_value("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(obs::escape_label_value("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(obs::escape_label_value("\\\"\n"), "\\\\\\\"\\n");
}

TEST(PrometheusEscaping, LabelHelperRendersEscapedPair) {
  EXPECT_EQ(obs::label("backend", "rapl_msr"), "backend=\"rapl_msr\"");
  EXPECT_EQ(obs::label("path", "C:\\msr"), "path=\"C:\\\\msr\"");
}

TEST(PrometheusEscaping, ExportSurvivesHostileValues) {
  obs::Registry registry;
  registry.counter("evil_total", "help with\nnewline and \\ backslash",
                   obs::label("path", "a\\b\"c\nd"))
      .inc(3);
  const std::string text = obs::export_prometheus(registry.snapshot());

  // HELP text is escaped per the exposition spec.
  EXPECT_NE(text.find("# HELP evil_total help with\\nnewline and \\\\ backslash"),
            std::string::npos);
  // The label value round-trips with \\, \", and \n escapes.
  EXPECT_NE(text.find("evil_total{path=\"a\\\\b\\\"c\\nd\"} 3"), std::string::npos);
  // No line of the output is a bare continuation of a broken series line:
  // every line starts with '#' or the metric name.
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    if (!line.empty()) {
      EXPECT_TRUE(line[0] == '#' || line.rfind("evil_total", 0) == 0)
          << "corrupted exposition line: " << line;
    }
    start = end + 1;
  }
}

// ---------------------------------------------------------------------------
// Histogram::quantile — histogram_quantile() semantics.

TEST(HistogramQuantile, InterpolatesWithinBuckets) {
  obs::Histogram h({1.0, 2.0, 4.0});
  for (const double v : {0.5, 1.5, 3.0, 8.0}) h.observe(v);

  // rank 0.5 of 4 lands mid-way through the first bucket [0, 1).
  EXPECT_DOUBLE_EQ(h.quantile(0.125), 0.5);
  // rank 1.0 is exactly the first bucket's upper bound.
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 1.0);
  // rank 2.0 exhausts bucket (1, 2].
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
  // rank 3.0 exhausts bucket (2, 4].
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 4.0);
  // rank 4.0 lands in the +Inf bucket: clamp to the largest finite bound.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
  // p is clamped to [0, 1].
  EXPECT_DOUBLE_EQ(h.quantile(-0.5), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
}

TEST(HistogramQuantile, EmptyHistogramReturnsZero) {
  obs::Histogram h({1.0, 2.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
  h.observe(1.5);
  EXPECT_GT(h.quantile(0.99), 0.0);
  h.reset();
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
}

// ---------------------------------------------------------------------------
// merge_snapshot — the rollup tree's one primitive.

TEST(MergeSnapshot, SumsSharedSeriesAndUnionsDisjointOnes) {
  obs::Registry a;
  a.counter("polls_total", "h").inc(1);
  a.gauge("fill", "h").set(2.5);
  obs::Registry b;
  b.counter("polls_total", "h").inc(41);
  b.counter("drops_total", "h").inc(7);
  b.gauge("fill", "h").set(1.5);

  obs::Snapshot into = a.snapshot();
  EXPECT_EQ(obs::merge_snapshot(into, b.snapshot()), 0u);

  ASSERT_EQ(into.counters.size(), 2u);  // sorted: drops_total, polls_total
  EXPECT_EQ(into.counters[0].name, "drops_total");
  EXPECT_EQ(into.counters[0].value, 7u);
  EXPECT_EQ(into.counters[1].name, "polls_total");
  EXPECT_EQ(into.counters[1].value, 42u);
  ASSERT_EQ(into.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(into.gauges[0].value, 4.0);  // fleet gauge = sum over nodes
}

TEST(MergeSnapshot, HistogramBucketsAddAndMismatchedBoundsAreSkipped) {
  obs::Registry a;
  a.histogram("lat_ms", "h", {1.0, 2.0}).observe(0.5);
  a.histogram("other_ms", "h", {1.0}).observe(0.5);
  obs::Registry b;
  b.histogram("lat_ms", "h", {1.0, 2.0}).observe(1.5);
  b.histogram("other_ms", "h", {8.0}).observe(0.5);  // mismatched layout

  obs::Snapshot into = a.snapshot();
  EXPECT_EQ(obs::merge_snapshot(into, b.snapshot()), 1u);

  ASSERT_EQ(into.histograms.size(), 2u);
  const auto& lat = into.histograms[0];
  EXPECT_EQ(lat.name, "lat_ms");
  EXPECT_EQ(lat.count, 2u);
  EXPECT_DOUBLE_EQ(lat.sum, 2.0);
  EXPECT_EQ(lat.bucket_counts[0], 1u);  // 0.5 in (.., 1]
  EXPECT_EQ(lat.bucket_counts[1], 1u);  // 1.5 in (1, 2]
  // The mismatched series keeps the first-seen layout untouched.
  EXPECT_EQ(into.histograms[1].count, 1u);
  EXPECT_EQ(into.histograms[1].bounds, std::vector<double>{1.0});
}

// ---------------------------------------------------------------------------
// FlightRecorder — bounded rings per event class.

TEST(FlightRecorder, RingWraparoundKeepsNewestWindow) {
  obs::FlightRecorder recorder(4);
  for (int i = 0; i < 7; ++i) {
    recorder.record(SimTime::from_seconds(i), i, "fault", "fault.inject");
  }
  EXPECT_EQ(recorder.capacity(), 4u);
  EXPECT_EQ(recorder.recorded(), 7u);
  EXPECT_EQ(recorder.dropped(), 3u);

  const auto window = recorder.events();
  ASSERT_EQ(window.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(window[static_cast<std::size_t>(i)].node, 3 + i);  // oldest first
    EXPECT_EQ(window[static_cast<std::size_t>(i)].seq, static_cast<std::uint64_t>(3 + i));
  }
}

TEST(FlightRecorder, TimingEventsLiveInTheirOwnRing) {
  obs::FlightRecorder recorder(2);
  recorder.record(SimTime::from_seconds(1), 0, "health", "backend.health");
  recorder.record(SimTime::from_seconds(2), -1, "queue", "queue.stall", "",
                  obs::EventClass::kTiming);
  recorder.record(SimTime::from_seconds(3), -1, "queue", "queue.stall", "",
                  obs::EventClass::kTiming);
  recorder.record(SimTime::from_seconds(4), -1, "queue", "queue.stall", "",
                  obs::EventClass::kTiming);

  // Three timing events through a capacity-2 ring evict one timing event —
  // and cannot touch the deterministic record.
  EXPECT_EQ(recorder.recorded(), 1u);
  EXPECT_EQ(recorder.dropped(), 0u);
  EXPECT_EQ(recorder.timing_recorded(), 3u);
  EXPECT_EQ(recorder.timing_dropped(), 1u);
  EXPECT_EQ(recorder.events().size(), 1u);
  EXPECT_EQ(recorder.timing_events().size(), 2u);
}

TEST(FlightRecorder, PostMortemGoldenOutput) {
  obs::FlightRecorder node0(8);
  obs::FlightRecorder fleetwide(8);
  node0.record(SimTime::from_seconds(1), 0, "fault", "fault.inject", "rapl_msr: kill \"hard\"");
  fleetwide.record(SimTime::from_seconds(2), -1, "tsdb", "tsdb.seal", "epoch 2: sealed 3 blocks");
  node0.record(SimTime::from_seconds(2), 0, "health", "backend.health",
               "rapl_msr: degraded -> quarantined");
  // Timing events are excluded from the dump by default.
  fleetwide.record(SimTime::from_seconds(3), -1, "queue", "queue.stall", "epoch 3",
                   obs::EventClass::kTiming);

  const obs::FlightRecorder* recorders[] = {&node0, &fleetwide};
  const std::string dump = obs::dump_post_mortem("manual", recorders);
  const std::string golden =
      "{\n"
      "  \"trigger\": \"manual\",\n"
      "  \"events\": [\n"
      "    {\"t_ns\": 1000000000, \"node\": 0, \"category\": \"fault\", "
      "\"name\": \"fault.inject\", \"detail\": \"rapl_msr: kill \\\"hard\\\"\"},\n"
      "    {\"t_ns\": 2000000000, \"node\": -1, \"category\": \"tsdb\", "
      "\"name\": \"tsdb.seal\", \"detail\": \"epoch 2: sealed 3 blocks\"},\n"
      "    {\"t_ns\": 2000000000, \"node\": 0, \"category\": \"health\", "
      "\"name\": \"backend.health\", \"detail\": \"rapl_msr: degraded -> quarantined\"}\n"
      "  ],\n"
      "  \"recorded\": 3,\n"
      "  \"dropped\": 0\n"
      "}\n";
  EXPECT_EQ(dump, golden);

  const std::string empty_dump = obs::dump_post_mortem("manual", {});
  EXPECT_EQ(empty_dump,
            "{\n  \"trigger\": \"manual\",\n  \"events\": [],\n"
            "  \"recorded\": 0,\n  \"dropped\": 0\n}\n");
}

// ---------------------------------------------------------------------------
// The fleet-level contracts: rollup + post-mortem determinism across
// worker counts, and the envmon.self.* self-scrape.

struct TelemetryRun {
  std::string rollup_json;
  std::string post_mortem;
  fleet::FleetReport report;
};

// Same storm as tests/fleet_test.cpp: every third node loses its RAPL
// MSR for good at t=2s, which forces healthy -> degraded -> quarantined
// after polls_to_quarantine consecutive failures — a deterministic
// post-mortem trigger.
TelemetryRun run_storm_fleet(int threads) {
  FleetConfig config;
  config.nodes = 12;
  config.threads = threads;
  config.capabilities = {moneq::Capability::kBgqEmon, moneq::Capability::kRaplMsr};
  config.epoch = Duration::seconds(1);
  config.horizon = Duration::seconds(6);
  config.polling_interval = Duration::millis(500);
  config.seed = 0xfee7f1ee7ull;
  config.ingest = fleet::IngestMode::kNodePower;
  config.database.max_insert_rate_per_second = 1u << 20;
  config.fault_script = [](fault::Injector& injector, int node) {
    if (node % 3 == 0) {
      injector.kill_at(fault::sites::kRaplMsr, SimTime::from_seconds(2));
    }
  };
  moneq::MemoryOutput output;
  config.output = &output;

  FleetRunner runner;
  EXPECT_TRUE(runner.configure(std::move(config)).is_ok());
  EXPECT_TRUE(runner.run().is_ok());

  TelemetryRun out;
  EXPECT_NE(runner.telemetry(), nullptr);
  out.rollup_json = obs::export_json(runner.telemetry()->fleet_rollup());
  out.post_mortem = runner.post_mortem();
  const auto report = runner.report();
  EXPECT_TRUE(report.is_ok());
  out.report = report.value();
  return out;
}

TEST(FleetTelemetry, RollupAndPostMortemAreByteIdenticalAcrossThreadCounts) {
  const TelemetryRun one = run_storm_fleet(1);

  // The storm quarantined backends, so the run produced a post-mortem.
  EXPECT_TRUE(one.report.post_mortem_triggered);
  EXPECT_NE(one.report.post_mortem_trigger.find("backend quarantined"), std::string::npos);
  EXPECT_NE(one.post_mortem.find("-> quarantined"), std::string::npos);
  EXPECT_NE(one.post_mortem.find("fault.inject"), std::string::npos);
  EXPECT_GT(one.report.recorder_events, 0u);
  EXPECT_GT(one.rollup_json.size(), 2u);

  for (const int threads : {2, 8}) {
    const TelemetryRun many = run_storm_fleet(threads);
    EXPECT_EQ(one.rollup_json, many.rollup_json)
        << threads << " threads: fleet rollup diverged";
    EXPECT_EQ(one.post_mortem, many.post_mortem)
        << threads << " threads: post-mortem diverged";
    EXPECT_EQ(one.report.post_mortem_trigger, many.report.post_mortem_trigger);
    EXPECT_EQ(one.report.recorder_events, many.report.recorder_events);
  }
}

TEST(FleetTelemetry, RollupTreeIsConsistent) {
  FleetConfig config;
  config.nodes = 12;
  config.capabilities = {moneq::Capability::kBgqEmon};
  config.epoch = Duration::seconds(1);
  config.horizon = Duration::seconds(4);
  config.polling_interval = Duration::millis(500);
  config.ingest = fleet::IngestMode::kNodePower;
  config.database.max_insert_rate_per_second = 0.0;
  moneq::MemoryOutput output;
  config.output = &output;

  FleetRunner runner;
  ASSERT_TRUE(runner.configure(std::move(config)).is_ok());
  ASSERT_TRUE(runner.run().is_ok());
  const obs::FleetTelemetry* telemetry = runner.telemetry();
  ASSERT_NE(telemetry, nullptr);

  // 12 nodes fit in one board of one rack, so every level of the tree
  // rolls up to the same snapshot.
  EXPECT_EQ(telemetry->node_count(), 12);
  EXPECT_EQ(telemetry->board_count(), 1);
  EXPECT_EQ(telemetry->rack_count(), 1);
  EXPECT_EQ(obs::export_json(telemetry->board_rollup(0)), obs::export_json(telemetry->fleet_rollup()));
  EXPECT_EQ(obs::export_json(telemetry->rack_rollup(0)), obs::export_json(telemetry->fleet_rollup()));
  EXPECT_EQ(telemetry->folds(), 4u);  // one fold per epoch
  EXPECT_EQ(telemetry->merge_skipped(), 0u);

  // The fleet counter is the sum of the per-node captures: per-node
  // attribution survives the rollup.
  std::uint64_t node_sum = 0;
  for (int rank = 0; rank < telemetry->node_count(); ++rank) {
    for (const auto& c : telemetry->node_capture(rank).counters) {
      if (c.name == "envmon_profiler_polls_total") node_sum += c.value;
    }
  }
  EXPECT_GT(node_sum, 0u);
  std::uint64_t fleet_value = 0;
  for (const auto& c : telemetry->fleet_rollup().counters) {
    if (c.name == "envmon_profiler_polls_total") fleet_value = c.value;
  }
  EXPECT_EQ(fleet_value, node_sum);
}

TEST(FleetTelemetry, SelfScrapeRowsAreQueryableAndBypassRateCeiling) {
  FleetConfig config;
  config.nodes = 4;
  config.capabilities = {moneq::Capability::kBgqEmon};
  config.epoch = Duration::seconds(1);
  config.horizon = Duration::seconds(4);
  config.polling_interval = Duration::millis(500);
  // Per-sample ingest against a starved rate ceiling: most node rows get
  // rate-limited, while every self-scrape row must still land.
  config.ingest = fleet::IngestMode::kPerSample;
  config.database.max_insert_rate_per_second = 1.0;
  moneq::MemoryOutput output;
  config.output = &output;

  FleetRunner runner;
  ASSERT_TRUE(runner.configure(std::move(config)).is_ok());
  ASSERT_TRUE(runner.run().is_ok());
  const auto report = runner.report().value();
  ASSERT_GT(report.self_scrape_rows, 0u);
  // The ceiling bit: real node traffic was rejected, self rows were not.
  EXPECT_GT(report.rejected_rate_limited, 0u);

  // One row per epoch for a fleet-level counter, at the reserved rack.
  tsdb::QueryFilter filter;
  filter.metric = "envmon.self.envmon_profiler_polls_total";
  const auto rows = runner.database().query(filter);
  ASSERT_EQ(rows.size(), static_cast<std::size_t>(report.epochs));
  std::uint64_t epoch = 1;
  double previous = -1.0;
  for (const auto& row : rows) {
    EXPECT_EQ(row.location, tsdb::rack_location(fleet::kSelfTelemetryRack));
    EXPECT_EQ(row.timestamp, SimTime::from_seconds(static_cast<double>(epoch)));
    EXPECT_GE(row.value, previous);  // counters only grow
    previous = row.value;
    ++epoch;
  }
  // The last scrape equals the final fleet rollup: the scrape *is* the
  // rollup, rendered as records.
  std::uint64_t fleet_value = 0;
  for (const auto& c : runner.telemetry()->fleet_rollup().counters) {
    if (c.name == "envmon_profiler_polls_total") fleet_value = c.value;
  }
  EXPECT_GT(fleet_value, 0u);
  EXPECT_DOUBLE_EQ(rows.back().value, static_cast<double>(fleet_value));

  // Flat-scan oracle: the aggregate over the same filter sees exactly the
  // rows query() returned, and a location-ranged scan under the reserved
  // rack returns only envmon.self.* series.
  const auto agg = runner.database().aggregate(filter);
  EXPECT_EQ(agg.count, rows.size());
  EXPECT_DOUBLE_EQ(agg.max, rows.back().value);
  tsdb::QueryFilter rack_filter;
  rack_filter.location_prefix = tsdb::rack_location(fleet::kSelfTelemetryRack);
  const auto self_rows = runner.database().query(rack_filter);
  EXPECT_EQ(self_rows.size(), report.self_scrape_rows);
  for (const auto& row : self_rows) {
    EXPECT_TRUE(tsdb::is_self_metric(row.metric)) << row.metric;
  }
}

TEST(FleetTelemetry, SelfScrapeCanBeDisabled) {
  FleetConfig config;
  config.nodes = 2;
  config.capabilities = {moneq::Capability::kBgqEmon};
  config.epoch = Duration::seconds(1);
  config.horizon = Duration::seconds(2);
  config.ingest = fleet::IngestMode::kNodePower;
  config.database.max_insert_rate_per_second = 0.0;
  config.self_scrape = false;
  moneq::MemoryOutput output;
  config.output = &output;

  FleetRunner runner;
  ASSERT_TRUE(runner.configure(std::move(config)).is_ok());
  ASSERT_TRUE(runner.run().is_ok());
  EXPECT_EQ(runner.report().value().self_scrape_rows, 0u);
  tsdb::QueryFilter filter;
  filter.location_prefix = tsdb::rack_location(fleet::kSelfTelemetryRack);
  EXPECT_TRUE(runner.database().query(filter).empty());
  // Telemetry itself is still on: the rollup exists.
  ASSERT_NE(runner.telemetry(), nullptr);
  EXPECT_GT(runner.telemetry()->folds(), 0u);
}

// ---------------------------------------------------------------------------
// The tsdb end of the reserved namespace, in isolation.

TEST(SelfNamespace, RecordsBypassAndDoNotConsumeRateBudget) {
  EXPECT_TRUE(tsdb::is_self_metric("envmon.self.envmon_profiler_polls_total"));
  EXPECT_FALSE(tsdb::is_self_metric("input_power_watts"));
  EXPECT_FALSE(tsdb::is_self_metric("envmon.selfish"));

  tsdb::DatabaseOptions options;
  options.max_insert_rate_per_second = 1.0;  // budget: 60 rows / 60 s window
  tsdb::EnvDatabase db(options);
  const tsdb::Location loc = tsdb::card_location(0, 0, 0, 0);

  // 200 self rows sail past a ceiling that allows only 60 normal rows.
  for (int i = 0; i < 200; ++i) {
    const tsdb::Record record{SimTime::from_ns((i) * 1'000'000), loc, "envmon.self.test_total",
                              static_cast<double>(i)};
    ASSERT_TRUE(db.insert(record).is_ok()) << "self row " << i << " rejected";
  }
  // ...and consumed none of the budget: 30 normal rows still fit.
  for (int i = 0; i < 30; ++i) {
    const tsdb::Record record{SimTime::from_ns((200 + i) * 1'000'000), loc, "input_power_watts",
                              1.0};
    ASSERT_TRUE(db.insert(record).is_ok()) << "normal row " << i << " rejected";
  }
  // The ceiling still applies to normal traffic: pushing well past the
  // window budget gets rejected with kResourceExhausted.
  std::size_t rejected = 0;
  for (int i = 0; i < 60; ++i) {
    const tsdb::Record record{SimTime::from_ns((230 + i) * 1'000'000), loc, "input_power_watts",
                              1.0};
    const Status status = db.insert(record);
    if (!status.is_ok()) {
      EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u);
  EXPECT_EQ(db.size(), 200u + 30u + (60u - rejected));

  // Batch path: a mixed batch rate-limits only the normal rows.
  std::vector<tsdb::Record> batch;
  for (int i = 0; i < 10; ++i) {
    batch.push_back({SimTime::from_ns((300 + i) * 1'000'000), loc, "envmon.self.test_total", 1.0});
  }
  for (int i = 0; i < 10; ++i) {
    batch.push_back({SimTime::from_ns((310 + i) * 1'000'000), loc, "input_power_watts", 1.0});
  }
  const auto result = db.insert_batch(batch);
  EXPECT_GE(result.accepted, 10u);  // every self row landed
  EXPECT_EQ(result.accepted + result.rejected_rate_limited, 20u);
  EXPECT_GT(result.rejected_rate_limited, 0u);
}

}  // namespace
}  // namespace envmon
