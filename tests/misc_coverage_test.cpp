// Coverage sweep for paths the focused suites do not reach: the logger,
// disk output, explicit vacuuming, engine bookkeeping, and renderer
// corner cases.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/csv.hpp"
#include "common/log.hpp"
#include "moneq/output.hpp"
#include "sim/engine.hpp"
#include "tsdb/database.hpp"

namespace envmon {
namespace {

TEST(Log, LevelGateAndRestore) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold messages are discarded (observable only as "does not
  // crash / does not print", exercised for coverage).
  ENVMON_LOG(kDebug) << "suppressed " << 42;
  ENVMON_LOG(kError) << "emitted";
  set_log_level(LogLevel::kOff);
  ENVMON_LOG(kError) << "also suppressed";
  set_log_level(before);
}

TEST(CsvWriter, WriteRowVectorForm) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"a", "b,c", "d"});
  w.write_row({});
  EXPECT_EQ(os.str(), "a,\"b,c\",d\n\n");
  EXPECT_EQ(w.rows_written(), 2u);
}

TEST(DiskOutput, WritesAndFails) {
  const auto dir = std::filesystem::temp_directory_path() / "envmon_diskout_test";
  std::filesystem::create_directories(dir);
  moneq::DiskOutput ok(dir.string());
  ASSERT_TRUE(ok.write("f.csv", "hello\n").is_ok());
  std::ifstream in(dir / "f.csv");
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "hello\n");
  std::filesystem::remove_all(dir);

  moneq::DiskOutput bad("/nonexistent_dir_for_envmon_test");
  const Status s = bad.write("f.csv", "x");
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
}

TEST(EnvDatabase, ExplicitVacuumWithoutRetentionIsNoop) {
  tsdb::EnvDatabase db;
  (void)db.insert({sim::SimTime::from_seconds(1), tsdb::rack_location(0), "m", 1.0});
  db.vacuum();
  EXPECT_EQ(db.size(), 1u);
}

TEST(Engine, AdvanceIsRunUntilSugar) {
  sim::Engine e;
  int fired = 0;
  e.schedule_after(sim::Duration::seconds(5), [&] { ++fired; });
  e.advance(sim::Duration::seconds(4));
  EXPECT_EQ(fired, 0);
  e.advance(sim::Duration::seconds(1));
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(e.now().to_seconds(), 5.0);
}

TEST(Engine, CancelAfterFireIsHarmless) {
  sim::Engine e;
  sim::TimerHandle h = e.schedule_after(sim::Duration::seconds(1), [] {});
  e.run();
  EXPECT_TRUE(h.active());  // one-shot handles stay "active" post-fire...
  h.cancel();               // ...and cancelling afterwards is a no-op
  EXPECT_FALSE(h.active());
}

TEST(Engine, DefaultTimerHandleInactive) {
  const sim::TimerHandle h;
  EXPECT_FALSE(h.active());
}

TEST(NodeFileName, ZeroPadded) {
  EXPECT_EQ(moneq::node_file_name(0), "moneq_node_00000.csv");
  EXPECT_EQ(moneq::node_file_name(49151), "moneq_node_49151.csv");
}

}  // namespace
}  // namespace envmon
