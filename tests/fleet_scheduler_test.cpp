// ShardScheduler contract tests: every (shard, epoch) advances exactly
// once under exclusive ownership, epochs merge strictly in order, the
// skew window bounds how far any shard runs ahead, and a slow shard's
// work is stolen by whichever worker is free.  The steal path is forced
// deterministically here (an injected slow shard), because a real fleet
// on a quiet machine may never need to steal.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "fleet/scheduler.hpp"

namespace envmon {
namespace {

using fleet::ShardScheduler;

TEST(ShardScheduler, CompletesEveryEpochInOrderExactlyOnce) {
  ShardScheduler::Options options;
  options.shards = 6;
  options.workers = 3;
  options.epochs = 12;
  options.window = 4;

  std::mutex mutex;
  std::vector<std::uint64_t> completed;
  std::vector<std::vector<std::uint64_t>> advanced(6);
  ShardScheduler::Callbacks callbacks;
  callbacks.advance = [&](int shard, std::uint64_t epoch) {
    const std::scoped_lock lock(mutex);
    advanced[static_cast<std::size_t>(shard)].push_back(epoch);
    return Status::ok();
  };
  callbacks.complete = [&](std::uint64_t epoch) {
    const std::scoped_lock lock(mutex);
    completed.push_back(epoch);
    return Status::ok();
  };

  ShardScheduler scheduler(options, std::move(callbacks));
  ASSERT_TRUE(scheduler.run().is_ok());

  // complete(E) ran exactly once per epoch, in strictly increasing order.
  ASSERT_EQ(completed.size(), 12u);
  for (std::size_t i = 0; i < completed.size(); ++i) EXPECT_EQ(completed[i], i + 1);
  // Every shard advanced through every epoch, in order.
  for (const auto& epochs : advanced) {
    ASSERT_EQ(epochs.size(), 12u);
    for (std::size_t i = 0; i < epochs.size(); ++i) EXPECT_EQ(epochs[i], i + 1);
  }
  EXPECT_EQ(scheduler.stats().epochs_completed, 12u);
}

TEST(ShardScheduler, SlowShardIsStolenFromItsHomeWorker) {
  // Worker 0's home block is shards {0, 1}; shard 0 is artificially slow.
  // Worker 1 races through its own block and must pick up shard 1 (a
  // steal) while worker 0 is still parked inside shard 0's advance.
  ShardScheduler::Options options;
  options.shards = 4;
  options.workers = 2;
  options.epochs = 6;
  options.window = 2;

  std::atomic<int> stolen_shard_advances{0};
  ShardScheduler::Callbacks callbacks;
  callbacks.advance = [&](int shard, std::uint64_t) {
    if (shard == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(15));
    } else if (shard == 1) {
      stolen_shard_advances.fetch_add(1, std::memory_order_relaxed);
    }
    return Status::ok();
  };
  callbacks.complete = [&](std::uint64_t) { return Status::ok(); };

  ShardScheduler scheduler(options, std::move(callbacks));
  EXPECT_EQ(scheduler.home_worker(0), 0);
  EXPECT_EQ(scheduler.home_worker(1), 0);
  EXPECT_EQ(scheduler.home_worker(2), 1);
  EXPECT_EQ(scheduler.home_worker(3), 1);
  ASSERT_TRUE(scheduler.run().is_ok());

  EXPECT_EQ(stolen_shard_advances.load(), 6);
  EXPECT_GT(scheduler.stats().steals, 0u);
  EXPECT_EQ(scheduler.stats().epochs_completed, 6u);
}

TEST(ShardScheduler, ShardOwnershipIsExclusiveAndWindowBounded) {
  ShardScheduler::Options options;
  options.shards = 8;
  options.workers = 4;
  options.epochs = 16;
  options.window = 2;

  std::vector<std::atomic<int>> in_flight(8);
  std::atomic<std::uint64_t> merged{0};
  std::atomic<bool> overlapped{false};
  std::atomic<bool> window_violated{false};
  ShardScheduler::Callbacks callbacks;
  callbacks.advance = [&](int shard, std::uint64_t epoch) {
    if (in_flight[static_cast<std::size_t>(shard)].fetch_add(1) != 0) overlapped.store(true);
    // The claim rule admits epoch <= completed + window, and completed
    // only grows afterwards.
    if (epoch > merged.load() + options.window) window_violated.store(true);
    std::this_thread::yield();
    in_flight[static_cast<std::size_t>(shard)].fetch_sub(1);
    return Status::ok();
  };
  callbacks.complete = [&](std::uint64_t epoch) {
    merged.store(epoch);
    return Status::ok();
  };

  ShardScheduler scheduler(options, std::move(callbacks));
  ASSERT_TRUE(scheduler.run().is_ok());
  EXPECT_FALSE(overlapped.load()) << "two workers owned one shard at once";
  EXPECT_FALSE(window_violated.load()) << "a shard ran past the epoch-skew window";
  EXPECT_EQ(merged.load(), 16u);
}

TEST(ShardScheduler, SingleWorkerNeverSteals) {
  ShardScheduler::Options options;
  options.shards = 3;
  options.workers = 1;
  options.epochs = 5;
  options.window = 4;

  ShardScheduler::Callbacks callbacks;
  callbacks.advance = [](int, std::uint64_t) { return Status::ok(); };
  callbacks.complete = [](std::uint64_t) { return Status::ok(); };
  ShardScheduler scheduler(options, std::move(callbacks));
  ASSERT_TRUE(scheduler.run().is_ok());
  EXPECT_EQ(scheduler.stats().steals, 0u);
  EXPECT_EQ(scheduler.stats().epochs_completed, 5u);
}

TEST(ShardScheduler, AdvanceErrorAbortsTheRun) {
  ShardScheduler::Options options;
  options.shards = 4;
  options.workers = 2;
  options.epochs = 10;
  options.window = 4;

  ShardScheduler::Callbacks callbacks;
  callbacks.advance = [&](int shard, std::uint64_t epoch) {
    if (shard == 2 && epoch == 3) {
      return Status(StatusCode::kInternal, "substrate exploded");
    }
    return Status::ok();
  };
  callbacks.complete = [](std::uint64_t) { return Status::ok(); };
  ShardScheduler scheduler(options, std::move(callbacks));
  const Status status = scheduler.run();
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_LT(scheduler.stats().epochs_completed, 10u);
}

TEST(ShardScheduler, CompleteErrorAbortsTheRun) {
  ShardScheduler::Options options;
  options.shards = 2;
  options.workers = 2;
  options.epochs = 8;
  options.window = 4;

  ShardScheduler::Callbacks callbacks;
  callbacks.advance = [](int, std::uint64_t) { return Status::ok(); };
  callbacks.complete = [](std::uint64_t epoch) {
    return epoch == 4 ? Status(StatusCode::kUnavailable, "ingest gone") : Status::ok();
  };
  ShardScheduler scheduler(options, std::move(callbacks));
  EXPECT_EQ(scheduler.run().code(), StatusCode::kUnavailable);
  EXPECT_EQ(scheduler.stats().epochs_completed, 3u);
}

TEST(ShardScheduler, FinalizeRunsOncePerShard) {
  ShardScheduler::Options options;
  options.shards = 5;
  options.workers = 2;
  options.epochs = 3;
  options.window = 2;

  std::vector<std::atomic<int>> finalized(5);
  ShardScheduler::Callbacks callbacks;
  callbacks.advance = [](int, std::uint64_t) { return Status::ok(); };
  callbacks.complete = [](std::uint64_t) { return Status::ok(); };
  callbacks.finalize = [&](int shard) {
    finalized[static_cast<std::size_t>(shard)].fetch_add(1);
    return Status::ok();
  };
  ShardScheduler scheduler(options, std::move(callbacks));
  ASSERT_TRUE(scheduler.run().is_ok());
  for (const auto& count : finalized) EXPECT_EQ(count.load(), 1);
}

}  // namespace
}  // namespace envmon
