// Graceful degradation under injected faults: the health state machine's
// transitions, the bounded retry budget, gap markers surviving the
// round trip through the node-file CSV, and each instrumented surface
// honoring its fault hook.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "ipmi/bmc.hpp"
#include "mic/micras.hpp"
#include "moneq/backend_mic.hpp"
#include "moneq/backend_nvml.hpp"
#include "moneq/csv_reader.hpp"
#include "moneq/health.hpp"
#include "moneq/output.hpp"
#include "moneq/profiler.hpp"
#include "nvml/api.hpp"
#include "rapl/reader.hpp"
#include "tsdb/database.hpp"
#include "workloads/library.hpp"

namespace envmon {
namespace {

using sim::Duration;
using sim::SimTime;
using moneq::BackendHealth;
using moneq::BackendState;
using moneq::DegradationPolicy;

DegradationPolicy tight_policy() {
  DegradationPolicy policy;
  policy.retries_per_poll = 0;
  policy.polls_to_quarantine = 2;
  policy.backoff_base = Duration::seconds(1);
  policy.backoff_factor = 2.0;
  policy.backoff_cap = Duration::seconds(4);
  return policy;
}

TEST(BackendHealth, TransitionsThroughQuarantineAndRecovery) {
  BackendHealth health(tight_policy());
  EXPECT_EQ(health.state(), BackendState::kHealthy);

  health.on_poll_failure(SimTime::from_seconds(0.0));
  EXPECT_EQ(health.state(), BackendState::kDegraded);
  EXPECT_EQ(health.consecutive_failures(), 1);

  health.on_poll_failure(SimTime::from_seconds(0.1));
  EXPECT_EQ(health.state(), BackendState::kQuarantined);
  EXPECT_EQ(health.quarantined_until(), SimTime::from_seconds(1.1));
  EXPECT_FALSE(health.should_poll(SimTime::from_seconds(1.0)));
  EXPECT_TRUE(health.should_poll(SimTime::from_seconds(1.1)));  // the probe

  // Probe fails: re-quarantine with doubled backoff.
  health.on_poll_failure(SimTime::from_seconds(1.1));
  EXPECT_EQ(health.state(), BackendState::kQuarantined);
  EXPECT_EQ(health.quarantined_until(), SimTime::from_seconds(3.1));

  // Probe answers: recovered, then healthy on the next success — and the
  // backoff resets, so a fresh quarantine starts at the base again.
  health.on_poll_success(SimTime::from_seconds(3.1));
  EXPECT_EQ(health.state(), BackendState::kRecovered);
  health.on_poll_success(SimTime::from_seconds(3.2));
  EXPECT_EQ(health.state(), BackendState::kHealthy);
  health.on_poll_failure(SimTime::from_seconds(5.0));
  health.on_poll_failure(SimTime::from_seconds(5.1));
  EXPECT_EQ(health.quarantined_until(), SimTime::from_seconds(6.1));
}

TEST(BackendHealth, BackoffDoublesUpToCap) {
  BackendHealth health(tight_policy());
  health.on_poll_failure(SimTime::from_seconds(0.0));
  health.on_poll_failure(SimTime::from_seconds(0.1));  // quarantine, 1 s
  SimTime probe = health.quarantined_until();
  std::vector<double> windows;
  for (int i = 0; i < 4; ++i) {
    health.on_poll_failure(probe);  // failed probe
    windows.push_back((health.quarantined_until() - probe).to_seconds());
    probe = health.quarantined_until();
  }
  EXPECT_EQ(windows, (std::vector<double>{2.0, 4.0, 4.0, 4.0}));  // capped at 4 s
}

TEST(BackendHealth, RetryBudgetExhaustionStopsRetries) {
  DegradationPolicy policy;
  policy.retries_per_poll = 3;
  policy.retry_budget = Duration::millis(10);
  BackendHealth health(policy);

  EXPECT_TRUE(health.may_retry(0));
  EXPECT_FALSE(health.may_retry(3));  // per-poll bound
  health.spend_retry(Duration::millis(6));
  EXPECT_TRUE(health.may_retry(0));  // 6 ms < 10 ms: room left
  health.spend_retry(Duration::millis(6));
  EXPECT_FALSE(health.may_retry(0));  // budget gone, for good
  EXPECT_EQ(health.retries(), 2u);
  EXPECT_EQ(health.retry_budget_spent(), Duration::millis(12));
}

TEST(Resilience, ProfilerQuarantinesAndRecoversAroundFaultWindow) {
  sim::Engine engine;
  fault::Injector injector(engine);
  mic::PhiCard card(engine);
  mic::MicrasDaemon daemon(card);
  daemon.start();
  daemon.attach_fault_hook(injector);
  injector.fail_between(fault::sites::kMicras, SimTime::from_seconds(2),
                        SimTime::from_seconds(4), StatusCode::kUnavailable,
                        "daemon restarting");

  moneq::MicDaemonBackend backend(daemon);
  smpi::World world(1);
  moneq::NodeProfiler profiler(engine, world, 0);
  ASSERT_TRUE(profiler.add_backend(backend).is_ok());
  ASSERT_TRUE(profiler.set_polling_interval(Duration::millis(200)).is_ok());
  ASSERT_TRUE(profiler.initialize().is_ok());

  // Defaults: quarantine after 3 failed polls (2.0, 2.2, 2.4 s), probe
  // at 3.4 s still lands in the window, so backoff doubles; the probe at
  // 5.4 s answers and collection resumes.
  engine.run_until(SimTime::from_seconds(3));
  EXPECT_EQ(profiler.backend_health(0).state(), BackendState::kQuarantined);
  const std::size_t during_outage = profiler.samples().size();

  engine.run_until(SimTime::from_seconds(7));
  ASSERT_TRUE(profiler.finalize().is_ok());
  EXPECT_EQ(profiler.backend_health(0).state(), BackendState::kHealthy);
  EXPECT_GT(profiler.samples().size(), during_outage);
  EXPECT_GT(profiler.degraded_polls(), 0u);

  // One contiguous gap: opened at the first failed poll, closed when the
  // successful probe at 5.4 s brought the backend back.
  ASSERT_EQ(profiler.gaps().size(), 2u);
  EXPECT_TRUE(profiler.gaps()[0].is_start);
  EXPECT_EQ(profiler.gaps()[0].backend, "mic_micras_daemon");
  EXPECT_EQ(profiler.gaps()[0].reason, "daemon restarting");
  EXPECT_DOUBLE_EQ(profiler.gaps()[0].t.to_seconds(), 2.0);
  EXPECT_FALSE(profiler.gaps()[1].is_start);
  EXPECT_DOUBLE_EQ(profiler.gaps()[1].t.to_seconds(), 5.4);
}

TEST(Resilience, GapMarkersRoundTripThroughCsvReader) {
  sim::Engine engine;
  fault::Injector injector(engine);
  mic::PhiCard card(engine);
  mic::MicrasDaemon daemon(card);
  daemon.start();
  daemon.attach_fault_hook(injector);
  // The outage outlives the run: finalize() must close the open gap so
  // the file stays balanced.
  injector.fail_between(fault::sites::kMicras, SimTime::from_seconds(1),
                        SimTime::from_seconds(100), StatusCode::kUnavailable,
                        "card fell off the bus");

  moneq::MicDaemonBackend backend(daemon);
  smpi::World world(1);
  moneq::NodeProfiler profiler(engine, world, 0);
  ASSERT_TRUE(profiler.add_backend(backend).is_ok());
  ASSERT_TRUE(profiler.set_polling_interval(Duration::millis(200)).is_ok());
  ASSERT_TRUE(profiler.initialize().is_ok());
  engine.run_until(SimTime::from_seconds(3));

  moneq::MemoryOutput out;
  ASSERT_TRUE(profiler.finalize(nullptr, &out).is_ok());
  const auto parsed = moneq::parse_node_file(out.files().at(moneq::node_file_name(0)));
  ASSERT_TRUE(parsed.is_ok());

  const auto& gaps = parsed.value().gaps;
  ASSERT_EQ(gaps.size(), profiler.gaps().size());
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_TRUE(gaps[0].is_start);
  EXPECT_EQ(gaps[0].backend, "mic_micras_daemon");
  EXPECT_EQ(gaps[0].reason, "card fell off the bus");
  EXPECT_DOUBLE_EQ(gaps[0].t.to_seconds(), 1.0);
  EXPECT_FALSE(gaps[1].is_start);
  EXPECT_DOUBLE_EQ(gaps[1].t.to_seconds(), 3.0);  // closed at finalize
  // The samples before the outage parsed back too: a gap marks missing
  // data, it does not eat the data that exists.
  EXPECT_EQ(parsed.value().samples.size(), profiler.samples().size());
}

TEST(Resilience, RaplMsrHookFailsDelaysAndCorrupts) {
  sim::Engine engine;
  fault::Injector injector(engine);
  rapl::CpuPackage package(engine);
  rapl::MsrRaplReader reader(package, rapl::Credentials{true, 0});
  reader.attach_fault_hook(injector);

  ASSERT_TRUE(reader.read_energy(rapl::RaplDomain::kPackage, engine.now()).is_ok());

  injector.fail_next(fault::sites::kRaplMsr, StatusCode::kPermissionDenied,
                     "msr mode reverted");
  const auto denied = reader.read_energy(rapl::RaplDomain::kPackage, engine.now());
  ASSERT_FALSE(denied.is_ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);

  // A latency spike is charged to the reader's meter even though the
  // read succeeds.
  const Duration before = reader.cost().total();
  injector.delay_between(fault::sites::kRaplMsr, engine.now(),
                         engine.now() + Duration::seconds(1), Duration::millis(5));
  ASSERT_TRUE(reader.read_energy(rapl::RaplDomain::kPackage, engine.now()).is_ok());
  EXPECT_GE((reader.cost().total() - before).to_millis(), 5.0);
  engine.run_until(engine.now() + Duration::seconds(2));

  // Stuck-at-zero corruption lands on the raw counter.
  injector.corrupt_between(fault::sites::kRaplMsr, engine.now(),
                           engine.now() + Duration::seconds(1), 0.0);
  const auto stuck = reader.read_energy(rapl::RaplDomain::kPackage, engine.now());
  ASSERT_TRUE(stuck.is_ok());
  EXPECT_EQ(stuck.value().raw, 0u);
}

TEST(Resilience, NvmlHookMapsInjectedStatusToNvmlReturns) {
  sim::Engine engine;
  fault::Injector injector(engine);
  nvml::NvmlLibrary library(engine);
  library.attach_device(std::make_shared<nvml::GpuDevice>(nvml::k20_spec()));
  library.attach_fault_hook(injector);
  ASSERT_EQ(library.init(), nvml::NvmlReturn::kSuccess);
  nvml::NvmlDeviceHandle handle;
  ASSERT_EQ(library.device_get_handle_by_index(0, &handle), nvml::NvmlReturn::kSuccess);

  unsigned mw = 0;
  injector.fail_next(fault::sites::kNvml, StatusCode::kUnsupported, "no such counter");
  EXPECT_EQ(library.device_get_power_usage(handle, &mw), nvml::NvmlReturn::kNotSupported);
  injector.fail_next(fault::sites::kNvml, StatusCode::kUnavailable, "fell off the bus");
  EXPECT_EQ(library.device_get_power_usage(handle, &mw), nvml::NvmlReturn::kGpuIsLost);
  EXPECT_EQ(library.device_get_power_usage(handle, &mw), nvml::NvmlReturn::kSuccess);
  EXPECT_GT(mw, 0u);
}

TEST(Resilience, TsdbHookRejectsInsertsDuringOutage) {
  sim::Engine engine;
  fault::Injector injector(engine);
  tsdb::EnvDatabase db;
  db.attach_fault_hook(injector);
  const tsdb::Location loc{0, 0, 4, 17};

  ASSERT_TRUE(db.insert({SimTime::from_seconds(1), loc, "input_power_watts", 100.0}).is_ok());

  injector.fail_next(fault::sites::kTsdb, StatusCode::kUnavailable, "db2 server down");
  const Status rejected =
      db.insert({SimTime::from_seconds(2), loc, "input_power_watts", 101.0});
  ASSERT_FALSE(rejected.is_ok());
  EXPECT_EQ(rejected.code(), StatusCode::kUnavailable);
  EXPECT_EQ(db.rejected_inserts(), 1u);
  EXPECT_EQ(db.size(), 1u);

  // A whole batch is lost to one outage window: the bulk INSERT fails as
  // a unit, not row by row.
  std::vector<tsdb::Record> batch{
      {SimTime::from_seconds(3), loc, "input_power_watts", 102.0},
      {SimTime::from_seconds(3), loc, "coolant_flow_lpm", 7.0},
  };
  injector.fail_next(fault::sites::kTsdb, StatusCode::kUnavailable, "db2 server down");
  const auto result = db.insert_batch(batch);
  EXPECT_EQ(result.accepted, 0u);
  EXPECT_EQ(result.rejected_unavailable, 2u);
  EXPECT_FALSE(result.all_accepted());
  EXPECT_EQ(db.size(), 1u);
}

TEST(Resilience, IpmbHookDropsFrames) {
  sim::Engine engine;
  fault::Injector injector(engine);
  ipmi::Bmc bmc;
  bmc.attach_fault_hook(injector);

  injector.fail_next(fault::sites::kIpmb, StatusCode::kUnavailable, "bus stuck");
  const auto dropped = bmc.submit({0x01, 0x02});
  ASSERT_FALSE(dropped.is_ok());
  EXPECT_EQ(dropped.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(dropped.status().message(), "bus stuck");

  // With the fault spent, the same garbage frame reaches the BMC and is
  // rejected for what it is — malformed — not for the bus.
  const auto malformed = bmc.submit({0x01, 0x02});
  ASSERT_FALSE(malformed.is_ok());
  EXPECT_NE(malformed.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace envmon
