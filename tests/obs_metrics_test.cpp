// The metrics registry: lock-free observation under contention, bucket
// boundary (`le`) semantics, idempotent registration, and golden tests
// for both exporter formats.

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace envmon::obs {
namespace {

TEST(ObsCounter, ConcurrentIncrementsFromMultipleThreads) {
  Registry registry;
  Counter& counter = registry.counter("test_total", "test");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.inc();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(ObsHistogram, ConcurrentObservesKeepCountAndSumConsistent) {
  Registry registry;
  Histogram& h = registry.histogram("test_ms", "test", {1.0, 10.0});
  constexpr int kThreads = 4;
  constexpr int kObservations = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kObservations; ++i) h.observe(2.0);
    });
  }
  for (auto& th : threads) th.join();
  const auto n = static_cast<std::uint64_t>(kThreads) * kObservations;
  EXPECT_EQ(h.count(), n);
  EXPECT_DOUBLE_EQ(h.sum(), 2.0 * static_cast<double>(n));
  EXPECT_EQ(h.bucket_count(1), n);  // all land in (1, 10]
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(ObsGauge, SetMaxActsAsHighWaterMark) {
  Gauge g;
  g.set_max(3.0);
  g.set_max(7.0);
  g.set_max(5.0);  // below the mark: ignored
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  g.set(1.0);  // plain set still overrides
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(ObsHistogram, BucketBoundariesUseLeSemantics) {
  Registry registry;
  Histogram& h = registry.histogram("test_ms", "test", {1.0, 2.0, 4.0});
  h.observe(0.5);  // <= 1
  h.observe(1.0);  // <= 1 (boundary value belongs to its own bucket)
  h.observe(1.5);  // <= 2
  h.observe(2.0);  // <= 2
  h.observe(4.0);  // <= 4
  h.observe(9.0);  // +Inf
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 6u);
}

TEST(ObsHistogram, ExponentialBounds) {
  const auto bounds = Histogram::exponential_bounds(0.5, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 0.5);
  EXPECT_DOUBLE_EQ(bounds[3], 4.0);
}

TEST(ObsHistogram, RejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(ObsRegistry, RegistrationIsIdempotentPerNameAndLabels) {
  Registry registry;
  Counter& a = registry.counter("requests_total", "help", "backend=\"rapl\"");
  Counter& b = registry.counter("requests_total", "other help", "backend=\"rapl\"");
  Counter& c = registry.counter("requests_total", "help", "backend=\"nvml\"");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  a.inc(2);
  EXPECT_EQ(b.value(), 2u);
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsRegistry, ResetValuesZeroesButKeepsHandles) {
  Registry registry;
  Counter& counter = registry.counter("n_total", "n");
  Histogram& h = registry.histogram("h_ms", "h", {1.0});
  counter.inc(5);
  h.observe(0.5);
  registry.reset_values();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  counter.inc();  // the handle is still live
  EXPECT_EQ(counter.value(), 1u);
}

TEST(ObsExport, PrometheusGolden) {
  Registry registry;
  registry.counter("test_requests_total", "Requests issued", "backend=\"rapl\"").inc(3);
  registry.gauge("test_depth", "Queue depth").set(2.5);
  Histogram& h = registry.histogram("test_latency_ms", "Latency", {1.0, 5.0});
  h.observe(0.5);
  h.observe(3.0);
  h.observe(10.0);

  const std::string expected =
      "# HELP test_requests_total Requests issued\n"
      "# TYPE test_requests_total counter\n"
      "test_requests_total{backend=\"rapl\"} 3\n"
      "# HELP test_depth Queue depth\n"
      "# TYPE test_depth gauge\n"
      "test_depth 2.5\n"
      "# HELP test_latency_ms Latency\n"
      "# TYPE test_latency_ms histogram\n"
      "test_latency_ms_bucket{le=\"1\"} 1\n"
      "test_latency_ms_bucket{le=\"5\"} 2\n"
      "test_latency_ms_bucket{le=\"+Inf\"} 3\n"
      "test_latency_ms_sum 13.5\n"
      "test_latency_ms_count 3\n";
  EXPECT_EQ(export_prometheus(registry), expected);
}

TEST(ObsExport, PrometheusEmitsOneHeaderPerLabeledFamily) {
  Registry registry;
  registry.counter("multi_total", "Multi", "backend=\"a\"").inc(1);
  registry.counter("multi_total", "Multi", "backend=\"b\"").inc(2);
  const std::string out = export_prometheus(registry);
  // One HELP/TYPE pair, two series.
  EXPECT_EQ(out,
            "# HELP multi_total Multi\n"
            "# TYPE multi_total counter\n"
            "multi_total{backend=\"a\"} 1\n"
            "multi_total{backend=\"b\"} 2\n");
}

TEST(ObsExport, JsonGolden) {
  Registry registry;
  registry.counter("test_requests_total", "Requests issued", "backend=\"rapl\"").inc(3);
  registry.gauge("test_depth", "Queue depth").set(2.5);
  Histogram& h = registry.histogram("test_latency_ms", "Latency", {1.0, 5.0});
  h.observe(0.5);
  h.observe(3.0);
  h.observe(10.0);

  const std::string expected =
      R"({"counters":[{"name":"test_requests_total","labels":"backend=\"rapl\"","value":3}],)"
      R"("gauges":[{"name":"test_depth","labels":"","value":2.5}],)"
      R"("histograms":[{"name":"test_latency_ms","labels":"","buckets":[)"
      R"({"le":"1","count":1},{"le":"5","count":1},{"le":"+Inf","count":1}],)"
      R"("count":3,"sum":13.5,"mean":4.5}]})";
  EXPECT_EQ(export_json(registry), expected);
}

TEST(ObsExport, EmptyRegistry) {
  Registry registry;
  EXPECT_EQ(export_prometheus(registry), "");
  EXPECT_EQ(export_json(registry), R"({"counters":[],"gauges":[],"histograms":[]})");
}

TEST(ObsEnabled, ToggleRoundTrips) {
  ASSERT_TRUE(enabled());  // the build-wide default
  set_enabled(false);
  EXPECT_FALSE(enabled());
  set_enabled(true);
  EXPECT_TRUE(enabled());
}

}  // namespace
}  // namespace envmon::obs
