#include "common/status.hpp"

#include <gtest/gtest.h>

namespace envmon {
namespace {

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_EQ(s.code(), StatusCode::kOk);
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status s(StatusCode::kPermissionDenied, "msr device requires root");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(s.message(), "msr device requires root");
  EXPECT_EQ(s.to_string(), "PERMISSION_DENIED: msr device requires root");
}

TEST(Status, AllCodesHaveNames) {
  for (const auto code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kPermissionDenied, StatusCode::kUnavailable, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kResourceExhausted,
        StatusCode::kUnsupported, StatusCode::kInternal}) {
    EXPECT_NE(to_string(code), "UNKNOWN");
  }
}

TEST(Result, HoldsValue) {
  const Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(Result, HoldsError) {
  const Result<int> r = Status(StatusCode::kNotFound, "no such sensor");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, ValueOrPassesThroughOnSuccess) {
  const Result<double> r = 3.5;
  EXPECT_DOUBLE_EQ(r.value_or(0.0), 3.5);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("large payload");
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "large payload");
}

}  // namespace
}  // namespace envmon
