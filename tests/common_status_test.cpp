#include "common/status.hpp"

#include <gtest/gtest.h>

namespace envmon {
namespace {

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_EQ(s.code(), StatusCode::kOk);
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status s(StatusCode::kPermissionDenied, "msr device requires root");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(s.message(), "msr device requires root");
  EXPECT_EQ(s.to_string(), "PERMISSION_DENIED: msr device requires root");
}

TEST(Status, AllCodesHaveNames) {
  for (const auto code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kPermissionDenied, StatusCode::kUnavailable, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kResourceExhausted,
        StatusCode::kUnsupported, StatusCode::kInternal}) {
    EXPECT_NE(to_string(code), "UNKNOWN");
  }
}

TEST(Result, HoldsValue) {
  const Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(Result, HoldsError) {
  const Result<int> r = Status(StatusCode::kNotFound, "no such sensor");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, ValueOrPassesThroughOnSuccess) {
  const Result<double> r = 3.5;
  EXPECT_DOUBLE_EQ(r.value_or(0.0), 3.5);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("large payload");
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "large payload");
}

TEST(Status, FactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::invalid_argument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::not_found("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::permission_denied("x").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(Status::unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::out_of_range("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::failed_precondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::resource_exhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::unauthenticated("x").code(), StatusCode::kUnauthenticated);
  EXPECT_EQ(Status::aborted("x").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::data_loss("x").code(), StatusCode::kDataLoss);
}

TEST(Status, WireMappingRoundTripsEveryCode) {
  // The numeric values are the envmond on-wire representation
  // (DESIGN.md §14.5) and are frozen; unknown values decode as
  // kInternal rather than crashing or aliasing a real code.
  for (std::uint16_t v = 0; v < kStatusCodeCount; ++v) {
    const StatusCode code = status_code_from_wire(v);
    EXPECT_EQ(status_code_to_wire(code), v);
  }
  EXPECT_EQ(status_code_from_wire(kStatusCodeCount), StatusCode::kInternal);
  EXPECT_EQ(status_code_from_wire(0xFFFF), StatusCode::kInternal);
}

}  // namespace
}  // namespace envmon
