#include "common/units.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace envmon {
namespace {

TEST(Units, DefaultConstructedIsZero) {
  EXPECT_EQ(Watts{}.value(), 0.0);
  EXPECT_EQ(Joules{}.value(), 0.0);
  EXPECT_EQ(Seconds{}.value(), 0.0);
}

TEST(Units, AdditionAndSubtraction) {
  const Watts a{10.0}, b{2.5};
  EXPECT_DOUBLE_EQ((a + b).value(), 12.5);
  EXPECT_DOUBLE_EQ((a - b).value(), 7.5);
}

TEST(Units, ScalarMultiplicationBothSides) {
  const Watts w{3.0};
  EXPECT_DOUBLE_EQ((w * 2.0).value(), 6.0);
  EXPECT_DOUBLE_EQ((2.0 * w).value(), 6.0);
  EXPECT_DOUBLE_EQ((w / 2.0).value(), 1.5);
}

TEST(Units, RatioOfLikeQuantitiesIsDimensionless) {
  const double ratio = Watts{50.0} / Watts{25.0};
  EXPECT_DOUBLE_EQ(ratio, 2.0);
}

TEST(Units, CompoundAssignment) {
  Watts w{1.0};
  w += Watts{2.0};
  EXPECT_DOUBLE_EQ(w.value(), 3.0);
  w -= Watts{0.5};
  EXPECT_DOUBLE_EQ(w.value(), 2.5);
  w *= 4.0;
  EXPECT_DOUBLE_EQ(w.value(), 10.0);
}

TEST(Units, PowerTimesTimeIsEnergy) {
  const Joules e = Watts{100.0} * Seconds{5.0};
  EXPECT_DOUBLE_EQ(e.value(), 500.0);
  EXPECT_DOUBLE_EQ((Seconds{5.0} * Watts{100.0}).value(), 500.0);
}

TEST(Units, EnergyOverTimeIsPower) {
  EXPECT_DOUBLE_EQ((Joules{500.0} / Seconds{5.0}).value(), 100.0);
}

TEST(Units, VoltageTimesCurrentIsPower) {
  EXPECT_DOUBLE_EQ((Volts{48.0} * Amps{2.0}).value(), 96.0);
  EXPECT_DOUBLE_EQ((Amps{2.0} * Volts{48.0}).value(), 96.0);
  EXPECT_DOUBLE_EQ((Watts{96.0} / Volts{48.0}).value(), 2.0);
}

TEST(Units, Comparisons) {
  EXPECT_LT(Watts{1.0}, Watts{2.0});
  EXPECT_GE(Celsius{40.0}, Celsius{40.0});
  EXPECT_NE(Volts{1.0}, Volts{1.5});
}

TEST(Units, ByteHelpers) {
  EXPECT_DOUBLE_EQ(kibibytes(1.0).value(), 1024.0);
  EXPECT_DOUBLE_EQ(mebibytes(1.0).value(), 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(gibibytes(5.0).value(), 5.0 * 1024.0 * 1024.0 * 1024.0);
}

TEST(Units, FrequencyHelpers) {
  EXPECT_DOUBLE_EQ(megahertz(706).value(), 706e6);
  EXPECT_DOUBLE_EQ(gigahertz(2.6).value(), 2.6e9);
}

TEST(Units, Negation) { EXPECT_DOUBLE_EQ((-Watts{5.0}).value(), -5.0); }

TEST(Units, StreamFormatting) {
  std::ostringstream os;
  os << Watts{42.0};
  EXPECT_EQ(os.str(), "42 W");
}

}  // namespace
}  // namespace envmon
