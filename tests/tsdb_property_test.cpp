// Property suite for the vectorized decode & fold engine (ctest label
// `prop`; DESIGN.md §15).  Every invariant here is universally
// quantified over generated inputs rather than pinned examples:
//
//  * codec roundtrip — delta-of-delta over arbitrary (wrapping) int64
//    streams and XOR over arbitrary 64-bit patterns decode back exactly,
//    through the reference decoders AND through every compiled dispatch
//    variant;
//  * decode totality — garbage bytes with garbage offsets decode to
//    *identical* bits on every variant and never read out of bounds
//    (ci/check.sh re-runs this suite under ASan/UBSan);
//  * fold grammar — each variant's subchunk folds are bit-identical to
//    an independent transcription of the canonical grammar in simd.hpp,
//    for every lane count 0..16 including NaN/±inf/±0 mixes;
//  * sealed blocks — compressed and raw seals of the same rows produce
//    bit-identical summaries and subchunk sums, and range/cursor reads
//    agree with full decodes;
//  * engine oracle — query/downsample/aggregate results match a flat
//    mirror scan and are bit-identical across the default, reference
//    (raw + no pushdown), and parallel-query engines;
//  * retention — vacuum keeps exactly the rows at or after the cutoff,
//    bit-preserved, and is idempotent.
//
// Case counts scale with ENVMON_PROP_CASES (proptest.hpp); ci/check.sh
// raises them in the Bench configuration.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "proptest.hpp"
#include "tsdb/block.hpp"
#include "tsdb/codec.hpp"
#include "tsdb/database.hpp"
#include "tsdb/simd.hpp"

namespace envmon::tsdb {
namespace {

using envmon::proptest::Rng;
using sim::Duration;
using sim::SimTime;

constexpr std::size_t kRows = Block::kSubchunkRows;

std::vector<simd::Variant> compiled_variants() {
  std::vector<simd::Variant> out;
  for (std::size_t i = 0; i < simd::kVariantCount; ++i) {
    const auto v = static_cast<simd::Variant>(i);
    if (simd::variant_available(v)) out.push_back(v);
  }
  return out;
}

std::uint64_t bits_of(double d) { return std::bit_cast<std::uint64_t>(d); }

// EXPECT_EQ on doubles fails on NaN == NaN; the engine's contract is
// about bit patterns, so compare those.
void expect_bits_eq(double actual, double expected, const char* what) {
  EXPECT_EQ(bits_of(actual), bits_of(expected)) << what;
}

// ---------------------------------------------------------------------
// Codec roundtrip
// ---------------------------------------------------------------------

ENVMON_PROP(PropCodec, DeltaOfDeltaRoundtripsOnAllVariants, 120) {
  const std::size_t rows = 1 + rng.index(3 * kRows + 5);
  std::vector<std::int64_t> vals(rows);
  std::uint64_t cur = rng.u64();
  std::uint64_t delta = rng.range(0, 2'000'000'000) - 1'000'000'000ull;
  for (auto& v : vals) {
    switch (rng.index(4)) {
      case 0: break;                                      // perfect tick (0-bit row)
      case 1: delta += rng.range(0, 2000) - 1000ull; break;  // jitter buckets
      case 2: delta = rng.u64() >> rng.index(64); break;  // regime jump / escape
      default: break;
    }
    cur += delta;  // uint64: wraparound is the codec's own arithmetic
    v = static_cast<std::int64_t>(cur);
  }

  BitWriter w;
  DeltaOfDeltaEncoder enc;
  for (const std::int64_t v : vals) enc.append(v, w);
  const auto& stream = w.bytes();

  BitReader r(stream);
  DeltaOfDeltaDecoder dec;
  for (std::size_t i = 0; i < rows; ++i) {
    ASSERT_EQ(dec.next(r), vals[i]) << "reference decoder, row " << i;
  }

  std::vector<std::int64_t> out(rows);
  for (const simd::Variant v : compiled_variants()) {
    std::fill(out.begin(), out.end(), std::int64_t{-1});
    simd::kernels(v).decode_dod(stream.data(), stream.size(), rows, out.data());
    for (std::size_t i = 0; i < rows; ++i) {
      ASSERT_EQ(out[i], vals[i]) << simd::variant_name(v) << ", row " << i;
    }
  }
}

ENVMON_PROP(PropCodec, XorColumnRoundtripsAnyBitPatternsOnAllVariants, 120) {
  const std::size_t rows = 1 + rng.index(5 * kRows + 7);
  std::vector<double> vals(rows);
  double walk = 21.5;
  for (auto& v : vals) {
    if (rng.chance(40)) {
      v = rng.any_double();  // arbitrary bits incl. NaN payloads, ±inf, -0.0
    } else {
      walk = rng.smooth_step(walk);
      v = walk;
    }
  }

  // Encode exactly as Block::seal lays out the value column: the XOR
  // state restarts at every subchunk and the restart bit offset is
  // recorded for random access.
  BitWriter w;
  std::vector<std::uint32_t> offsets;
  for (std::size_t begin = 0; begin < rows; begin += kRows) {
    offsets.push_back(static_cast<std::uint32_t>(w.bit_size()));
    XorEncoder enc;
    const std::size_t end = std::min(begin + kRows, rows);
    for (std::size_t i = begin; i < end; ++i) enc.append(vals[i], w);
  }
  const auto& stream = w.bytes();

  BitReader r(stream);
  for (std::size_t c = 0; c < offsets.size(); ++c) {
    r.seek(offsets[c]);
    XorDecoder dec;
    const std::size_t end = std::min((c + 1) * kRows, rows);
    for (std::size_t i = c * kRows; i < end; ++i) {
      const double got = dec.next(r);
      ASSERT_EQ(bits_of(got), bits_of(vals[i])) << "reference decoder, row " << i;
    }
  }

  std::vector<double> out(rows);
  for (const simd::Variant v : compiled_variants()) {
    const simd::Kernels& k = simd::kernels(v);
    std::fill(out.begin(), out.end(), -7.25);
    k.decode_xor_column(stream.data(), stream.size(), offsets.data(), offsets.size(), rows,
                        out.data());
    for (std::size_t i = 0; i < rows; ++i) {
      ASSERT_EQ(bits_of(out[i]), bits_of(vals[i])) << simd::variant_name(v) << ", row " << i;
    }
    // Single-subchunk decode from a random restart offset.
    const std::size_t c = rng.index(offsets.size());
    const std::size_t begin = c * kRows;
    const std::size_t n = std::min(begin + kRows, rows) - begin;
    double chunk[kRows];
    k.decode_xor_subchunk(stream.data(), stream.size(), offsets[c], n, chunk);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(bits_of(chunk[i]), bits_of(vals[begin + i]))
          << simd::variant_name(v) << ", subchunk " << c << ", lane " << i;
    }
  }
}

// ---------------------------------------------------------------------
// Decode totality: garbage in, identical garbage out, no OOB
// ---------------------------------------------------------------------

ENVMON_PROP(PropCodec, GarbageDecodesIdenticallyOnAllVariants, 150) {
  std::vector<std::uint8_t> stream(rng.index(160));
  for (auto& b : stream) b = static_cast<std::uint8_t>(rng.u64());
  const std::size_t rows = 1 + rng.index(4 * kRows);

  // Garbage restart offsets too — including offsets past the end of the
  // stream, which must decode as a zero-padded tail.
  const std::size_t chunks = (rows + kRows - 1) / kRows;
  std::vector<std::uint32_t> offsets(chunks);
  for (auto& o : offsets) {
    o = static_cast<std::uint32_t>(rng.range(0, stream.size() * 8 + 256));
  }

  std::vector<double> ref(rows);
  BitReader r(stream);
  for (std::size_t c = 0; c < chunks; ++c) {
    r.seek(offsets[c]);
    XorDecoder dec;
    const std::size_t end = std::min((c + 1) * kRows, rows);
    for (std::size_t i = c * kRows; i < end; ++i) ref[i] = dec.next(r);
  }

  std::vector<double> out(rows);
  for (const simd::Variant v : compiled_variants()) {
    std::fill(out.begin(), out.end(), 0.0);
    simd::kernels(v).decode_xor_column(stream.data(), stream.size(), offsets.data(), chunks,
                                       rows, out.data());
    for (std::size_t i = 0; i < rows; ++i) {
      ASSERT_EQ(bits_of(out[i]), bits_of(ref[i])) << simd::variant_name(v) << ", row " << i;
    }
  }

  BitReader dr(stream);
  DeltaOfDeltaDecoder ddec;
  std::vector<std::int64_t> dref(rows);
  for (auto& v : dref) v = ddec.next(dr);
  std::vector<std::int64_t> dout(rows);
  for (const simd::Variant v : compiled_variants()) {
    std::fill(dout.begin(), dout.end(), std::int64_t{0});
    simd::kernels(v).decode_dod(stream.data(), stream.size(), rows, dout.data());
    for (std::size_t i = 0; i < rows; ++i) {
      ASSERT_EQ(dout[i], dref[i]) << simd::variant_name(v) << ", row " << i;
    }
  }
}

// ---------------------------------------------------------------------
// Canonical fold grammar (simd.hpp): independent transcription
// ---------------------------------------------------------------------

constexpr std::uint64_t kCanonicalNan = 0x7ff8000000000000ull;

double canonical(double d) { return d != d ? std::bit_cast<double>(kCanonicalNan) : d; }

simd::SubchunkFold grammar_fold(const double* v, std::size_t n) {
  simd::SubchunkFold out;
  if (n == kRows) {
    double lane[4] = {0.0, 0.0, 0.0, 0.0};
    double lane_sq[4] = {0.0, 0.0, 0.0, 0.0};
    for (std::size_t i = 0; i < kRows; ++i) {
      lane[i % 4] += v[i];
      lane_sq[i % 4] += v[i] * v[i];
    }
    out.sum = canonical((lane[0] + lane[1]) + (lane[2] + lane[3]));
    out.sum_sq = canonical((lane_sq[0] + lane_sq[1]) + (lane_sq[2] + lane_sq[3]));
  } else {
    double sum = 0.0, sum_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += v[i];
      sum_sq += v[i] * v[i];
    }
    out.sum = canonical(sum);
    out.sum_sq = canonical(sum_sq);
  }
  bool first = true;
  bool neg_zero = false, pos_zero = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (v[i] != v[i]) continue;  // min/max skip NaN
    if (first || v[i] < out.min) out.min = v[i];
    if (first || v[i] > out.max) out.max = v[i];
    first = false;
    ++out.finite;
    if (v[i] == 0.0) (std::signbit(v[i]) ? neg_zero : pos_zero) = true;
  }
  // Canonical zero signs make the fold order-independent when both
  // zeros are present: min resolves to the -0.0 that was seen, max to
  // the +0.0 — never a sign that was not in the input.
  if (out.finite > 0) {
    if (out.min == 0.0) out.min = neg_zero ? -0.0 : 0.0;
    if (out.max == 0.0) out.max = pos_zero ? 0.0 : -0.0;
  }
  return out;
}

ENVMON_PROP(PropSimd, FoldsMatchGrammarBitwiseOnEveryLaneCount, 250) {
  double v[kRows];
  const std::size_t n = rng.index(kRows + 1);  // 0..16: tails and full chunks
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = rng.chance(50) ? rng.any_double()
                          : static_cast<double>(rng.range(0, 4000)) * 0.125 - 250.0;
  }
  const simd::SubchunkFold want = grammar_fold(v, n);
  for (const simd::Variant var : compiled_variants()) {
    const simd::Kernels& k = simd::kernels(var);
    simd::SubchunkFold got;
    k.fold_subchunk(v, n, got);
    const char* name = simd::variant_name(var);
    expect_bits_eq(got.sum, want.sum, name);
    expect_bits_eq(got.sum_sq, want.sum_sq, name);
    EXPECT_EQ(got.finite, want.finite) << name;
    if (want.finite > 0) {
      expect_bits_eq(got.min, want.min, name);
      expect_bits_eq(got.max, want.max, name);
    }
    expect_bits_eq(k.sum_subchunk(v, n), want.sum, name);
  }
}

// ---------------------------------------------------------------------
// Sealed blocks: compressed ≡ raw, ranges ≡ full decode
// ---------------------------------------------------------------------

ENVMON_PROP(PropBlock, CompressedAndRawSealsAgreeBitwise, 60) {
  const std::size_t rows = 1 + rng.index(5 * kRows + 3);
  std::vector<std::int64_t> ts(rows);
  std::vector<double> values(rows);
  std::vector<std::uint64_t> seq(rows);
  std::int64_t t = static_cast<std::int64_t>(rng.range(0, 1'000'000));
  for (std::size_t i = 0; i < rows; ++i) {
    t += static_cast<std::int64_t>(rng.range(0, 1'000'000'000));  // ascending, dups allowed
    ts[i] = t;
    values[i] = rng.chance(30) ? rng.any_double()
                               : static_cast<double>(rng.range(0, 100'000)) * 0.01;
    seq[i] = 1000 + 3 * static_cast<std::uint64_t>(i);  // strictly ascending
  }

  const Block compressed = Block::seal(ts, values, seq, /*compress=*/true);
  const Block raw = Block::seal(ts, values, seq, /*compress=*/false);

  const BlockSummary& cs = compressed.summary();
  const BlockSummary& rs = raw.summary();
  EXPECT_EQ(cs.rows, rows);
  EXPECT_EQ(cs.finite_rows, rs.finite_rows);
  EXPECT_EQ(cs.ts_min, rs.ts_min);
  EXPECT_EQ(cs.ts_max, rs.ts_max);
  expect_bits_eq(cs.value_min, rs.value_min, "summary min");
  expect_bits_eq(cs.value_max, rs.value_max, "summary max");
  expect_bits_eq(cs.value_sum, rs.value_sum, "summary sum");
  expect_bits_eq(cs.value_sum_sq, rs.value_sum_sq, "summary sum_sq");
  ASSERT_EQ(compressed.subchunk_count(), raw.subchunk_count());

  // Summaries and subchunk sums are exactly the canonical grammar over
  // the input rows — recomputed here per variant via FoldCombine.
  for (const simd::Variant var : compiled_variants()) {
    const simd::Kernels& k = simd::kernels(var);
    simd::FoldCombine combine;
    for (std::size_t c = 0; c < compressed.subchunk_count(); ++c) {
      const std::size_t n = compressed.subchunk_rows(c);
      simd::SubchunkFold fold;
      k.fold_subchunk(values.data() + c * kRows, n, fold);
      expect_bits_eq(compressed.subchunk_sum(c), fold.sum, simd::variant_name(var));
      combine.add(fold);
    }
    const simd::SubchunkFold total = combine.finish();
    expect_bits_eq(cs.value_sum, total.sum, simd::variant_name(var));
    expect_bits_eq(cs.value_sum_sq, total.sum_sq, simd::variant_name(var));
    EXPECT_EQ(cs.finite_rows, total.finite) << simd::variant_name(var);
    if (total.finite > 0) {
      expect_bits_eq(cs.value_min, total.min, simd::variant_name(var));
      expect_bits_eq(cs.value_max, total.max, simd::variant_name(var));
    }
  }

  for (const Block* b : {&compressed, &raw}) {
    std::vector<std::int64_t> got_ts;
    std::vector<double> got_values;
    std::vector<std::uint64_t> got_seq;
    b->decode_timestamps(got_ts);
    b->decode_values(got_values);
    b->decode_seq(got_seq);
    ASSERT_EQ(got_ts, ts);
    ASSERT_EQ(got_seq, seq);
    ASSERT_EQ(got_values.size(), rows);
    for (std::size_t i = 0; i < rows; ++i) {
      ASSERT_EQ(bits_of(got_values[i]), bits_of(values[i])) << "row " << i;
    }

    // Random [begin, end) range reads against the full decode, through
    // both the one-shot range API and a reused cursor.
    BlockValueCursor cursor(*b);
    for (int probe = 0; probe < 4; ++probe) {
      const std::size_t begin = rng.index(rows + 1);
      const std::size_t end = begin + rng.index(rows - begin + 1);
      std::vector<double> range(end - begin, -1.0);
      b->decode_values_range(begin, end, range.data());
      for (std::size_t i = begin; i < end; ++i) {
        ASSERT_EQ(bits_of(range[i - begin]), bits_of(values[i])) << "range row " << i;
      }
      std::vector<double> via_cursor(end - begin, -2.0);
      cursor.read(begin, end, via_cursor.data());
      for (std::size_t i = begin; i < end; ++i) {
        ASSERT_EQ(bits_of(via_cursor[i - begin]), bits_of(values[i])) << "cursor row " << i;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Engine oracle: three engines vs a flat mirror scan
// ---------------------------------------------------------------------

bool flat_matches(const Record& r, const QueryFilter& f) {
  if (f.location_prefix && !f.location_prefix->contains(r.location)) return false;
  if (f.metric && r.metric != *f.metric) return false;
  if (f.from && r.timestamp < *f.from) return false;
  if (f.to && r.timestamp > *f.to) return false;
  return true;
}

Location random_location(Rng& rng) {
  const int rack = static_cast<int>(rng.index(3));
  const int midplane = static_cast<int>(rng.index(2));
  const int board = static_cast<int>(rng.index(4));
  switch (rng.index(3)) {
    case 0: return rack_location(rack);
    case 1: return midplane_location(rack, midplane);
    default: return board_location(rack, midplane, board);
  }
}

QueryFilter random_filter(Rng& rng, const char* const (&metrics)[3]) {
  QueryFilter f;
  if (rng.chance(70)) f.location_prefix = random_location(rng);
  if (rng.chance(60)) f.metric = metrics[rng.index(3)];
  if (rng.chance(10)) f.metric = "absent_metric";
  if (rng.chance(60)) f.from = SimTime::from_seconds(static_cast<double>(rng.index(60)));
  if (rng.chance(60)) {
    f.to = SimTime::from_seconds(static_cast<double>(20 + rng.index(80)));
  }
  return f;
}

ENVMON_PROP(PropEngine, QueryDownsampleAggregateMatchFlatOracle, 6) {
  DatabaseOptions ref_opts;
  ref_opts.compress_blocks = false;
  ref_opts.aggregation_pushdown = false;
  DatabaseOptions mt_opts;
  mt_opts.query_threads = 4;
  mt_opts.parallel_query_min_rows = 1;
  EnvDatabase db;
  EnvDatabase ref(ref_opts);
  EnvDatabase mt(mt_opts);

  const char* metrics[3] = {"power_w", "temp_c", "flow_lpm"};
  const std::size_t rows = 120 + rng.index(200);
  const std::size_t seal_at = rng.index(rows);
  std::vector<Record> mirror;
  double t = 0.0;
  double walk = 40.0;
  for (std::size_t i = 0; i < rows; ++i) {
    t += 0.05 * static_cast<double>(rng.index(5));  // duplicates and gaps
    walk = rng.smooth_step(walk);
    const Record r{SimTime::from_seconds(t), random_location(rng),
                   metrics[rng.index(3)], walk};
    ASSERT_TRUE(db.insert(r).is_ok());
    ASSERT_TRUE(ref.insert(r).is_ok());
    ASSERT_TRUE(mt.insert(r).is_ok());
    mirror.push_back(r);
    if (i == seal_at) {  // queries straddle sealed blocks and heads
      db.seal_blocks();
      ref.seal_blocks();
      mt.seal_blocks();
    }
  }

  for (int fi = 0; fi < 5; ++fi) {
    const QueryFilter f = fi == 0 ? QueryFilter{} : random_filter(rng, metrics);
    std::vector<Record> expected;
    for (const auto& r : mirror) {
      if (flat_matches(r, f)) expected.push_back(r);
    }

    const auto actual = db.query(f);
    const auto from_ref = ref.query(f);
    const auto from_mt = mt.query(f);
    ASSERT_EQ(actual.size(), expected.size());
    ASSERT_EQ(from_ref.size(), expected.size());
    ASSERT_EQ(from_mt.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(actual[i].timestamp, expected[i].timestamp);
      ASSERT_EQ(actual[i].location, expected[i].location);
      ASSERT_EQ(actual[i].metric, expected[i].metric);
      ASSERT_EQ(bits_of(actual[i].value), bits_of(expected[i].value));
      ASSERT_EQ(from_ref[i].timestamp, actual[i].timestamp);
      ASSERT_EQ(bits_of(from_ref[i].value), bits_of(actual[i].value));
      ASSERT_EQ(from_mt[i].timestamp, actual[i].timestamp);
      ASSERT_EQ(bits_of(from_mt[i].value), bits_of(actual[i].value));
    }

    const Duration width = Duration::seconds(static_cast<std::int64_t>(1 + rng.index(9)));
    struct Want {
      SimTime start;
      double sum = 0.0;
      std::size_t count = 0;
    };
    std::vector<Want> want;
    for (const auto& r : expected) {
      const std::int64_t ns = r.timestamp.ns(), wns = width.ns();
      std::int64_t idx = ns / wns;
      if (ns % wns != 0 && ns < 0) --idx;  // floor
      const SimTime start = SimTime::from_ns(idx * wns);
      if (want.empty() || want.back().start != start) want.push_back({start, 0.0, 0});
      want.back().sum += r.value;
      ++want.back().count;
    }
    const auto got = db.downsample(f, width);
    const auto got_ref = ref.downsample(f, width);
    ASSERT_EQ(got.size(), want.size());
    ASSERT_EQ(got_ref.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got[i].start, want[i].start);
      ASSERT_EQ(got[i].count, want[i].count);
      // The mean is defined at subchunk granularity, so the flat fold
      // agrees only to rounding; bit-exactness is asserted between the
      // pushdown engine and the raw-block reference engine.
      EXPECT_NEAR(got[i].mean, want[i].sum / static_cast<double>(want[i].count), 1e-9);
      ASSERT_EQ(got_ref[i].start, got[i].start);
      ASSERT_EQ(got_ref[i].count, got[i].count);
      ASSERT_EQ(bits_of(got_ref[i].mean), bits_of(got[i].mean));
    }

    const auto agg = db.aggregate(f);
    const auto agg_ref = ref.aggregate(f);
    EXPECT_EQ(agg.count, expected.size());
    EXPECT_EQ(agg_ref.count, agg.count);
    expect_bits_eq(agg_ref.sum, agg.sum, "aggregate sum");
    expect_bits_eq(agg_ref.sum_sq, agg.sum_sq, "aggregate sum_sq");
    expect_bits_eq(agg_ref.min, agg.min, "aggregate min");
    expect_bits_eq(agg_ref.max, agg.max, "aggregate max");
  }
}

// ---------------------------------------------------------------------
// Retention: exact cutoff, bit-preserved survivors, idempotent vacuum
// ---------------------------------------------------------------------

ENVMON_PROP(PropEngine, RetentionKeepsExactlyTheUnexpiredRowsBitwise, 12) {
  const Duration retention =
      Duration::from_seconds(0.5 + 0.25 * static_cast<double>(rng.index(200)));
  DatabaseOptions opts;
  opts.retention = retention;
  EnvDatabase db(opts);
  EnvDatabase unretained;

  const char* metrics[3] = {"power_w", "temp_c", "flow_lpm"};
  const std::size_t rows = 80 + rng.index(160);
  std::vector<Record> mirror;
  double t = 0.0;
  for (std::size_t i = 0; i < rows; ++i) {
    t += 0.2 * static_cast<double>(rng.index(6));
    const Record r{SimTime::from_seconds(t), random_location(rng), metrics[rng.index(3)],
                   static_cast<double>(rng.range(0, 1000)) * 0.5};
    ASSERT_TRUE(db.insert(r).is_ok());
    ASSERT_TRUE(unretained.insert(r).is_ok());
    mirror.push_back(r);
    if (rng.chance(5)) db.seal_blocks();  // retention crosses sealed blocks too
  }

  // vacuum() drops rows strictly before newest - retention, so the
  // survivor set is exactly computable from the mirror.
  const std::int64_t cutoff = mirror.back().timestamp.ns() - retention.ns();
  std::vector<Record> expected;
  for (const auto& r : mirror) {
    if (r.timestamp.ns() >= cutoff) expected.push_back(r);
  }

  const auto survivors = db.query({});
  ASSERT_EQ(survivors.size(), expected.size());
  ASSERT_EQ(db.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(survivors[i].timestamp, expected[i].timestamp);
    ASSERT_EQ(survivors[i].location, expected[i].location);
    ASSERT_EQ(survivors[i].metric, expected[i].metric);
    ASSERT_EQ(bits_of(survivors[i].value), bits_of(expected[i].value));
  }

  // Survivors are untouched by retention: bit-identical to the same
  // rows in the engine that never vacuumed.
  const auto all = unretained.query({});
  ASSERT_EQ(all.size(), mirror.size());
  const std::size_t dropped = mirror.size() - expected.size();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(all[dropped + i].timestamp, survivors[i].timestamp);
    ASSERT_EQ(bits_of(all[dropped + i].value), bits_of(survivors[i].value));
  }

  // Idempotence: vacuuming again with the same newest row drops nothing.
  db.vacuum();
  const auto again = db.query({});
  ASSERT_EQ(again.size(), survivors.size());
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    ASSERT_EQ(again[i].timestamp, survivors[i].timestamp);
    ASSERT_EQ(bits_of(again[i].value), bits_of(survivors[i].value));
  }
}

}  // namespace
}  // namespace envmon::tsdb
