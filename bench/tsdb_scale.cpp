// Fleet-scale exercise of the environmental database's storage engine.
//
// The paper's central scaling observation (§II-A) is that the BG/Q
// environmental database is ingest-bound: "a shorter polling interval
// ... would exceed the server's processing capacity".  This bench
// drives the DB2 stand-in at fleet scale — >= 1M records across 256
// node-board locations x the 7 BG/Q power domains — through three
// engines over the identical record stream and seal schedule:
//
//   dbN : compressed blocks, aggregation pushdown, parallel queries
//   db1 : same storage, queries pinned to one thread
//   ref : raw (uncompressed) blocks, no pushdown, serial — the
//         flat-scan reference the others must match byte for byte
//
// and gates on:
//
//   gate 1: >= 1M records ingested,
//   gate 2: filtered queries touch >= 10x fewer rows than full scans
//           would (rows-scanned reduction, from EnvDatabase::query_stats),
//   gate 3: query results agree with the analytically expected counts,
//   gate 4: compressed footprint <= 8.0 bytes/record fully sealed,
//   gate 5: query()/downsample()/aggregate() results are byte-identical
//           across dbN / db1 / ref (any thread count, pushdown on/off),
//   gate 6: downsample pushdown serves > 50% of aggregated rows from
//           subchunk summaries, with p99 no worse than the flat baseline.
//
// Results land in BENCH_tsdb.json (ingest rec/s, query p50/p99 ms,
// bytes/record raw + compressed, pushdown fraction, parallel scan
// p50/p99) to seed the perf trajectory; re-run from the repo root via
// `./build/bench/tsdb_scale` or `ctest --test-dir build -C Bench -L
// bench` to regenerate.

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bgq/domains.hpp"
#include "bgq/env_monitor.hpp"
#include "obs/metrics.hpp"
#include "tsdb/codec.hpp"
#include "tsdb/database.hpp"
#include "tsdb/simd.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using envmon::sim::Duration;
using envmon::sim::SimTime;
namespace tsdb = envmon::tsdb;

constexpr int kRacks = 16;
constexpr int kMidplanes = 2;
constexpr int kBoards = 8;  // per midplane -> 16*2*8 = 256 locations
constexpr int kSteps = 600;
constexpr int kSealEverySteps = 150;  // epoch-style seal cadence
constexpr std::size_t kLocationCount = static_cast<std::size_t>(kRacks * kMidplanes * kBoards);

// Latency buckets for the quantile readouts: ~1 us to ~220 ms at 30%
// steps, tight enough that interpolated p99s track the raw samples while
// leaving headroom over every latency gate below.
std::vector<double> latency_buckets() {
  return envmon::obs::Histogram::exponential_bounds(0.001, 1.3, 48);
}

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

bool identical_rows(const std::vector<tsdb::Record>& a, const std::vector<tsdb::Record>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].timestamp != b[i].timestamp || !(a[i].location == b[i].location) ||
        a[i].metric != b[i].metric ||
        std::bit_cast<std::uint64_t>(a[i].value) != std::bit_cast<std::uint64_t>(b[i].value)) {
      return false;
    }
  }
  return true;
}

// Decode-path speedup: the dispatched simd kernels against the
// row-at-a-time reference decoders over one sensor-shaped value column
// (the codec_decode microbench's workload at reduced size), so the
// headline scale numbers carry the decode trajectory too.  CPU time,
// not wall time, so the ratio survives background load on shared
// hosts; bench/codec_decode holds the full per-variant breakdown.
struct DecodeSpeedup {
  double ref_mrows_per_s = 0.0;
  double dispatched_mrows_per_s = 0.0;
  double speedup = 0.0;
  bool any_simd = false;
};

double cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

DecodeSpeedup measure_decode_speedup() {
  constexpr std::size_t kRows = std::size_t{1} << 19;
  constexpr std::size_t kSubchunkRows = 16;
  std::vector<double> values(kRows);
  std::mt19937_64 rng(0x5eed);
  double v = 1.2;
  for (auto& out : values) {
    const std::uint64_t roll = rng() % 100;
    if (roll < 55) {
      // repeat
    } else if (roll < 90) {
      v += 0.0005 * static_cast<double>(static_cast<std::int64_t>(rng() % 9) - 4);
    } else {
      v = 1.2 + 0.01 * static_cast<double>(rng() % 8);
    }
    out = v;
  }
  tsdb::BitWriter w;
  std::vector<std::uint32_t> offsets;
  for (std::size_t begin = 0; begin < kRows; begin += kSubchunkRows) {
    offsets.push_back(static_cast<std::uint32_t>(w.bit_size()));
    tsdb::XorEncoder enc;
    const std::size_t end = std::min(begin + kSubchunkRows, kRows);
    for (std::size_t i = begin; i < end; ++i) enc.append(values[i], w);
  }
  const std::vector<std::uint8_t> stream = w.take();

  const auto best_of = [](int reps, auto&& fn) {
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
      const double t0 = cpu_seconds();
      fn();
      best = std::min(best, cpu_seconds() - t0);
    }
    return best;
  };

  std::vector<double> out(kRows);
  const double ref_s = best_of(5, [&] {
    tsdb::BitReader r(stream);
    for (std::size_t c = 0; c < offsets.size(); ++c) {
      r.seek(offsets[c]);
      tsdb::XorDecoder dec;
      const std::size_t end = std::min((c + 1) * kSubchunkRows, kRows);
      for (std::size_t i = c * kSubchunkRows; i < end; ++i) out[i] = dec.next(r);
    }
  });
  const double disp_s = best_of(5, [&] {
    namespace simd = tsdb::simd;
    simd::active().decode_xor_column(stream.data(), stream.size(), offsets.data(),
                                     offsets.size(), kRows, out.data());
  });

  DecodeSpeedup d;
  d.ref_mrows_per_s = static_cast<double>(kRows) / ref_s / 1e6;
  d.dispatched_mrows_per_s = static_cast<double>(kRows) / disp_s / 1e6;
  d.speedup = ref_s / disp_s;
  d.any_simd = tsdb::simd::variant_available(tsdb::simd::Variant::kSse42) ||
               tsdb::simd::variant_available(tsdb::simd::Variant::kAvx2);
  return d;
}

bool identical_buckets(const std::vector<tsdb::EnvDatabase::Bucket>& a,
                       const std::vector<tsdb::EnvDatabase::Bucket>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].start != b[i].start || a[i].count != b[i].count ||
        std::bit_cast<std::uint64_t>(a[i].mean) != std::bit_cast<std::uint64_t>(b[i].mean)) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  using envmon::bgq::kAllDomains;

  std::printf("== Environmental database at fleet scale ==\n\n");

  // Metric names as the environmental monitor writes them.
  std::vector<std::string> metrics;
  for (const auto d : kAllDomains) {
    metrics.push_back(std::string(envmon::bgq::kMetricDomainVoltage) + "." +
                      std::string(to_string(d)));
  }

  const std::size_t hw = std::max<std::size_t>(std::thread::hardware_concurrency(), 2);
  tsdb::DatabaseOptions parallel_opts;
  parallel_opts.max_insert_rate_per_second = 0.0;  // measure the engine, not the DB2 ceiling
  parallel_opts.query_threads = std::min<std::size_t>(hw, 8);
  tsdb::DatabaseOptions serial_opts = parallel_opts;
  serial_opts.query_threads = 1;
  tsdb::DatabaseOptions ref_opts = serial_opts;
  ref_opts.compress_blocks = false;
  ref_opts.aggregation_pushdown = false;

  tsdb::EnvDatabase db(parallel_opts);   // the engine under test
  tsdb::EnvDatabase db1(serial_opts);    // same storage, serial queries
  tsdb::EnvDatabase ref(ref_opts);       // flat-scan reference

  // Domain voltages drift in discrete regulator steps every ~15 polls —
  // environmental values change far slower than the collection cadence
  // (the production database samples every 240 s), so long same-value
  // runs are the common case the XOR codec sees.
  const auto sample = [](int step, int board, std::size_t domain) {
    return 1.2 + 0.01 * static_cast<double>(domain) + 0.0005 * static_cast<double>(board % 4) +
           0.002 * static_cast<double>((step / 15) % 5);
  };
  std::vector<tsdb::Record> batch;
  batch.reserve(kLocationCount * kAllDomains.size());
  const auto fill_batch = [&](int step) {
    const SimTime now = SimTime::from_seconds(step);
    batch.clear();
    for (int r = 0; r < kRacks; ++r) {
      for (int m = 0; m < kMidplanes; ++m) {
        for (int b = 0; b < kBoards; ++b) {
          const tsdb::Location loc = tsdb::board_location(r, m, b);
          for (std::size_t d = 0; d < metrics.size(); ++d) {
            batch.push_back({now, loc, metrics[d], sample(step, b, d)});
          }
        }
      }
    }
  };

  // --- Ingest: one batch per poll step, env-monitor style; heads seal
  // --- into blocks on a fixed step cadence (the ingest worker's epoch
  // --- seals), identically across all three engines. -------------------
  const auto ingest_t0 = Clock::now();
  for (int step = 0; step < kSteps; ++step) {
    fill_batch(step);
    const auto result = db.insert_batch(batch);
    if (!result.all_accepted()) {
      std::printf("FAIL: batch at step %d rejected %zu records\n", step, result.rejected());
      return 1;
    }
    if ((step + 1) % kSealEverySteps == 0) db.seal_blocks();
  }
  db.seal_blocks();  // final flush: footprint measured fully sealed
  const double ingest_s = ms_since(ingest_t0) / 1e3;
  const double ingest_rate = static_cast<double>(db.size()) / ingest_s;

  // Mirror the stream and seal schedule into the other two engines
  // (untimed — they exist for equivalence and footprint comparison).
  for (int step = 0; step < kSteps; ++step) {
    fill_batch(step);
    (void)db1.insert_batch(batch);
    (void)ref.insert_batch(batch);
    if ((step + 1) % kSealEverySteps == 0) {
      db1.seal_blocks();
      ref.seal_blocks();
    }
  }
  db1.seal_blocks();
  ref.seal_blocks();

  const double bytes_per_record_compressed =
      static_cast<double>(db.bytes_used()) / static_cast<double>(db.size());
  const double bytes_per_record_raw =
      static_cast<double>(ref.bytes_used()) / static_cast<double>(ref.size());

  std::printf("records ingested    : %zu (%zu locations x %zu metrics x %d steps)\n",
              db.size(), kLocationCount, metrics.size(), kSteps);
  std::printf("series / metrics    : %zu / %zu\n", db.series_count(), db.metric_count());
  std::printf("sealed blocks       : %zu (%llu seals)\n", db.sealed_block_count(),
              static_cast<unsigned long long>(db.query_stats().blocks_sealed));
  std::printf("ingest wall time    : %.3f s  (%.2fM rec/s)\n", ingest_s, ingest_rate / 1e6);
  std::printf("bytes per record    : %.1f compressed / %.1f raw  (%.1fx smaller)\n\n",
              bytes_per_record_compressed, bytes_per_record_raw,
              bytes_per_record_raw / bytes_per_record_compressed);

  // --- Mixed query load: range scans + downsamples. --------------------
  const std::uint64_t rows_before = db.query_stats().rows_scanned;
  envmon::obs::Histogram query_latency(latency_buckets());
  std::uint64_t queries = 0;
  bool results_ok = true;
  bool identical_ok = true;

  // Range scans: one metric under one board, 100-step window -> exactly
  // 100 rows each (one record per step per series).  Every result is
  // checked byte-identical across the three engines.
  for (int i = 0; i < 120; ++i) {
    tsdb::QueryFilter f;
    f.location_prefix = tsdb::board_location(i % kRacks, i % kMidplanes, i % kBoards);
    f.metric = metrics[static_cast<std::size_t>(i) % metrics.size()];
    f.from = SimTime::from_seconds(100 + i);
    f.to = SimTime::from_seconds(100 + i + 99);
    const auto t0 = Clock::now();
    const auto rows = db.query(f);
    query_latency.observe(ms_since(t0));
    ++queries;
    if (rows.size() != 100) {
      std::printf("FAIL: range query %d returned %zu rows (want 100)\n", i, rows.size());
      results_ok = false;
    }
    if (i % 10 == 0 &&
        (!identical_rows(rows, db1.query(f)) || !identical_rows(rows, ref.query(f)))) {
      std::printf("FAIL: range query %d differs across engines\n", i);
      identical_ok = false;
    }
  }

  // Downsamples: one metric across a whole midplane (8 series), 60 s
  // buckets over the full run; each filter runs twice back to back, so
  // half of these exercise the LRU result cache.  Pushdown (dbN) and
  // full decode (ref) must produce bit-identical buckets.
  const std::uint64_t pushdown_rows_before = db.query_stats().pushdown_rows;
  const std::uint64_t scanned_before_downsample = db.query_stats().rows_scanned;
  envmon::obs::Histogram downsample_latency(latency_buckets());
  for (int i = 0; i < 80; ++i) {
    tsdb::QueryFilter f;
    f.location_prefix = tsdb::midplane_location((i / 2) % kRacks, (i / 2) % kMidplanes);
    f.metric = metrics[static_cast<std::size_t>(i / 2) % metrics.size()];
    const auto t0 = Clock::now();
    const auto buckets = db.downsample(f, Duration::seconds(60));
    const double ms = ms_since(t0);
    query_latency.observe(ms);
    downsample_latency.observe(ms);
    ++queries;
    if (buckets.size() != kSteps / 60) {
      std::printf("FAIL: downsample %d produced %zu buckets (want %d)\n", i, buckets.size(),
                  kSteps / 60);
      results_ok = false;
    }
    if (i % 2 == 0 && !identical_buckets(buckets, ref.downsample(f, Duration::seconds(60)))) {
      std::printf("FAIL: downsample %d differs from the reference engine\n", i);
      identical_ok = false;
    }
  }
  const std::uint64_t pushdown_rows =
      db.query_stats().pushdown_rows - pushdown_rows_before;
  const std::uint64_t aggregated_rows =
      db.query_stats().rows_scanned - scanned_before_downsample;
  const double pushdown_fraction =
      static_cast<double>(pushdown_rows) /
      static_cast<double>(std::max<std::uint64_t>(aggregated_rows, 1));

  // Whole-window aggregates ride the same summary pushdown.
  for (int i = 0; i < 8; ++i) {
    tsdb::QueryFilter f;
    f.metric = metrics[static_cast<std::size_t>(i) % metrics.size()];
    const auto a = db.aggregate(f);
    const auto b = ref.aggregate(f);
    if (a.count != b.count ||
        std::bit_cast<std::uint64_t>(a.sum) != std::bit_cast<std::uint64_t>(b.sum) ||
        std::bit_cast<std::uint64_t>(a.min) != std::bit_cast<std::uint64_t>(b.min) ||
        std::bit_cast<std::uint64_t>(a.max) != std::bit_cast<std::uint64_t>(b.max)) {
      std::printf("FAIL: aggregate %d differs from the reference engine\n", i);
      identical_ok = false;
    }
  }

  const std::uint64_t rows_scanned = db.query_stats().rows_scanned - rows_before;
  const std::uint64_t full_scan_rows = queries * db.size();
  const double reduction =
      static_cast<double>(full_scan_rows) / static_cast<double>(std::max<std::uint64_t>(rows_scanned, 1));
  const double p50 = query_latency.quantile(0.50);
  const double p99 = query_latency.quantile(0.99);
  const double downsample_p50 = downsample_latency.quantile(0.50);
  const double downsample_p99 = downsample_latency.quantile(0.99);

  // --- Parallel executor: full-metric scans, 153,600 rows each, decoded
  // --- across the worker pool on dbN and serially on db1. --------------
  envmon::obs::Histogram parallel_latency(latency_buckets());
  envmon::obs::Histogram serial_latency(latency_buckets());
  for (int i = 0; i < 10; ++i) {
    tsdb::QueryFilter f;
    f.metric = metrics[static_cast<std::size_t>(i) % metrics.size()];
    const auto t0 = Clock::now();
    const auto rows_n = db.query(f);
    parallel_latency.observe(ms_since(t0));
    const auto t1 = Clock::now();
    const auto rows_1 = db1.query(f);
    serial_latency.observe(ms_since(t1));
    if (rows_n.size() != kLocationCount * static_cast<std::size_t>(kSteps)) {
      std::printf("FAIL: full-metric scan %d returned %zu rows\n", i, rows_n.size());
      results_ok = false;
    }
    if (!identical_rows(rows_n, rows_1)) {
      std::printf("FAIL: full-metric scan %d differs between 1 and %zu threads\n", i,
                  parallel_opts.query_threads);
      identical_ok = false;
    }
  }
  const double parallel_p50 = parallel_latency.quantile(0.50);
  const double parallel_p99 = parallel_latency.quantile(0.99);
  const double serial_scan_p50 = serial_latency.quantile(0.50);

  std::printf("queries executed    : %llu (120 range + 80 downsample)\n",
              static_cast<unsigned long long>(queries));
  std::printf("query p50 / p99     : %.4f / %.4f ms\n", p50, p99);
  std::printf("downsample p50 / p99: %.4f / %.4f ms\n", downsample_p50, downsample_p99);
  std::printf("pushdown fraction   : %.2f of aggregated rows from subchunk sums\n",
              pushdown_fraction);
  std::printf("full-metric scan    : %.2f ms serial, %.2f ms with %zu threads\n",
              serial_scan_p50, parallel_p50, parallel_opts.query_threads);
  std::printf("rows scanned        : %llu (flat scan would touch %llu)\n",
              static_cast<unsigned long long>(rows_scanned),
              static_cast<unsigned long long>(full_scan_rows));
  std::printf("rows-scanned reduction: %.0fx  (gate: >= 10x)\n", reduction);
  std::printf("downsample cache    : %llu hits / %llu misses\n\n",
              static_cast<unsigned long long>(db.query_stats().cache_hits),
              static_cast<unsigned long long>(db.query_stats().cache_misses));

  const DecodeSpeedup decode = measure_decode_speedup();
  const char* decode_variant = tsdb::simd::variant_name(tsdb::simd::dispatched_variant());
  const char* decode_gate =
      !decode.any_simd ? "skipped_no_simd" : (decode.speedup >= 2.0 ? "pass" : "fail");
  std::printf("decode throughput   : %.1f Mrows/s dispatched (%s) vs %.1f reference, %.2fx\n",
              decode.dispatched_mrows_per_s, decode_variant, decode.ref_mrows_per_s,
              decode.speedup);

  const bool ingest_ok = db.size() >= 1'000'000;
  const bool reduction_ok = reduction >= 10.0;
  const bool compression_ok = bytes_per_record_compressed <= 8.0;
  const bool pushdown_ok = pushdown_fraction > 0.5;
  const bool downsample_latency_ok = downsample_p99 <= 0.25;
  const bool decode_ok = !decode.any_simd || decode.speedup >= 2.0;
  std::printf(">= 1M records ingested    : %s\n", ingest_ok ? "PASS" : "FAIL");
  std::printf(">= 10x scan reduction     : %s\n", reduction_ok ? "PASS" : "FAIL");
  std::printf("query results correct     : %s\n", results_ok ? "PASS" : "FAIL");
  std::printf("<= 8.0 bytes/record       : %s (%.2f)\n", compression_ok ? "PASS" : "FAIL",
              bytes_per_record_compressed);
  std::printf("byte-identical engines    : %s\n", identical_ok ? "PASS" : "FAIL");
  std::printf("> 50%% pushdown fraction   : %s (%.2f)\n", pushdown_ok ? "PASS" : "FAIL",
              pushdown_fraction);
  std::printf("downsample p99 <= 0.25 ms : %s (%.4f)\n",
              downsample_latency_ok ? "PASS" : "FAIL", downsample_p99);
  std::printf(">= 2x decode speedup      : %s (%.2fx)\n",
              !decode.any_simd ? "SKIP (no SIMD variant on this host)"
                               : (decode_ok ? "PASS" : "FAIL"),
              decode.speedup);

  std::FILE* out = std::fopen("BENCH_tsdb.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n"
                 "  \"ingest_records\": %zu,\n"
                 "  \"ingest_wall_s\": %.4f,\n"
                 "  \"ingest_records_per_s\": %.0f,\n"
                 "  \"bytes_per_record\": %.1f,\n"
                 "  \"bytes_per_record_compressed\": %.2f,\n"
                 "  \"compression_ratio\": %.1f,\n"
                 "  \"locations\": %zu,\n"
                 "  \"metrics\": %zu,\n"
                 "  \"series\": %zu,\n"
                 "  \"sealed_blocks\": %zu,\n"
                 "  \"query_count\": %llu,\n"
                 "  \"query_p50_ms\": %.4f,\n"
                 "  \"query_p99_ms\": %.4f,\n"
                 "  \"downsample_p50_ms\": %.4f,\n"
                 "  \"downsample_p99_ms\": %.4f,\n"
                 "  \"pushdown_fraction\": %.3f,\n"
                 "  \"parallel_scan_p50_ms\": %.4f,\n"
                 "  \"parallel_scan_p99_ms\": %.4f,\n"
                 "  \"serial_scan_p50_ms\": %.4f,\n"
                 "  \"query_threads\": %zu,\n"
                 "  \"rows_scanned\": %llu,\n"
                 "  \"full_scan_rows\": %llu,\n"
                 "  \"rows_scanned_reduction\": %.1f,\n"
                 "  \"downsample_cache_hits\": %llu,\n"
                 "  \"decode_variant\": \"%s\",\n"
                 "  \"decode_reference_mrows_per_s\": %.1f,\n"
                 "  \"decode_dispatched_mrows_per_s\": %.1f,\n"
                 "  \"decode_speedup_vs_reference\": %.2f,\n"
                 "  \"decode_speedup_gate\": \"%s\"\n"
                 "}\n",
                 db.size(), ingest_s, ingest_rate, bytes_per_record_raw,
                 bytes_per_record_compressed,
                 bytes_per_record_raw / bytes_per_record_compressed, kLocationCount,
                 metrics.size(), db.series_count(), db.sealed_block_count(),
                 static_cast<unsigned long long>(queries), p50, p99, downsample_p50,
                 downsample_p99, pushdown_fraction, parallel_p50, parallel_p99,
                 serial_scan_p50, parallel_opts.query_threads,
                 static_cast<unsigned long long>(rows_scanned),
                 static_cast<unsigned long long>(full_scan_rows), reduction,
                 static_cast<unsigned long long>(db.query_stats().cache_hits),
                 decode_variant, decode.ref_mrows_per_s, decode.dispatched_mrows_per_s,
                 decode.speedup, decode_gate);
    std::fclose(out);
    std::printf("\nwrote BENCH_tsdb.json\n");
  }

  return (ingest_ok && reduction_ok && results_ok && compression_ok && identical_ok &&
          pushdown_ok && downsample_latency_ok && decode_ok)
             ? 0
             : 1;
}
