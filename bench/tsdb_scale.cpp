// Fleet-scale exercise of the environmental database's storage engine.
//
// The paper's central scaling observation (§II-A) is that the BG/Q
// environmental database is ingest-bound: "a shorter polling interval
// ... would exceed the server's processing capacity".  This bench
// drives the DB2 stand-in at fleet scale — >= 1M records across 256
// node-board locations x the 7 BG/Q power domains — then runs a mixed
// range-scan / downsample query load, and gates on the sharded engine
// actually beating a flat scan:
//
//   gate 1: >= 1M records ingested,
//   gate 2: filtered queries touch >= 10x fewer rows than full scans
//           would (rows-scanned reduction, from EnvDatabase::query_stats),
//   gate 3: query results agree with the analytically expected counts.
//
// Results land in BENCH_tsdb.json (ingest rec/s, query p50/p99 ms,
// bytes/record, reduction factor) to seed the perf trajectory; re-run
// from the repo root via `./build/bench/tsdb_scale` or
// `ctest --test-dir build -C Bench -L bench` to regenerate.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bgq/domains.hpp"
#include "bgq/env_monitor.hpp"
#include "tsdb/database.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using envmon::sim::Duration;
using envmon::sim::SimTime;
namespace tsdb = envmon::tsdb;

constexpr int kRacks = 16;
constexpr int kMidplanes = 2;
constexpr int kBoards = 8;  // per midplane -> 16*2*8 = 256 locations
constexpr int kSteps = 600;
constexpr std::size_t kLocationCount = static_cast<std::size_t>(kRacks * kMidplanes * kBoards);

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

int main() {
  using envmon::bgq::kAllDomains;

  std::printf("== Environmental database at fleet scale ==\n\n");

  // Metric names as the environmental monitor writes them.
  std::vector<std::string> metrics;
  for (const auto d : kAllDomains) {
    metrics.push_back(std::string(envmon::bgq::kMetricDomainVoltage) + "." +
                      std::string(to_string(d)));
  }

  tsdb::DatabaseOptions options;
  options.max_insert_rate_per_second = 0.0;  // measure the engine, not the DB2 ceiling
  tsdb::EnvDatabase db(options);

  // --- Ingest: one batch per poll step, env-monitor style. -------------
  std::vector<tsdb::Record> batch;
  batch.reserve(kLocationCount * kAllDomains.size());
  const auto ingest_t0 = Clock::now();
  for (int step = 0; step < kSteps; ++step) {
    const SimTime now = SimTime::from_seconds(step);
    batch.clear();
    for (int r = 0; r < kRacks; ++r) {
      for (int m = 0; m < kMidplanes; ++m) {
        for (int b = 0; b < kBoards; ++b) {
          const tsdb::Location loc = tsdb::board_location(r, m, b);
          for (std::size_t d = 0; d < metrics.size(); ++d) {
            const double value =
                1.2 + 0.01 * static_cast<double>(d) + 1e-4 * static_cast<double>(step % 97);
            batch.push_back({now, loc, metrics[d], value});
          }
        }
      }
    }
    const auto result = db.insert_batch(batch);
    if (!result.all_accepted()) {
      std::printf("FAIL: batch at step %d rejected %zu records\n", step, result.rejected());
      return 1;
    }
  }
  const double ingest_s = ms_since(ingest_t0) / 1e3;
  const double ingest_rate = static_cast<double>(db.size()) / ingest_s;
  const double bytes_per_record =
      static_cast<double>(db.bytes_used()) / static_cast<double>(db.size());

  std::printf("records ingested    : %zu (%zu locations x %zu metrics x %d steps)\n",
              db.size(), kLocationCount, metrics.size(), kSteps);
  std::printf("series / metrics    : %zu / %zu\n", db.series_count(), db.metric_count());
  std::printf("ingest wall time    : %.3f s  (%.2fM rec/s)\n", ingest_s, ingest_rate / 1e6);
  std::printf("bytes per record    : %.1f\n\n", bytes_per_record);

  // --- Mixed query load: range scans + downsamples. --------------------
  const std::uint64_t rows_before = db.query_stats().rows_scanned;
  std::vector<double> latencies_ms;
  std::uint64_t queries = 0;
  bool results_ok = true;

  // Range scans: one metric under one board, 100-step window -> exactly
  // 100 rows each (one record per step per series).
  for (int i = 0; i < 120; ++i) {
    tsdb::QueryFilter f;
    f.location_prefix = tsdb::board_location(i % kRacks, i % kMidplanes, i % kBoards);
    f.metric = metrics[static_cast<std::size_t>(i) % metrics.size()];
    f.from = SimTime::from_seconds(100 + i);
    f.to = SimTime::from_seconds(100 + i + 99);
    const auto t0 = Clock::now();
    const auto rows = db.query(f);
    latencies_ms.push_back(ms_since(t0));
    ++queries;
    if (rows.size() != 100) {
      std::printf("FAIL: range query %d returned %zu rows (want 100)\n", i, rows.size());
      results_ok = false;
    }
  }

  // Downsamples: one metric across a whole midplane (8 series), 60 s
  // buckets over the full run; each filter runs twice back to back, so
  // half of these exercise the LRU result cache.
  for (int i = 0; i < 80; ++i) {
    tsdb::QueryFilter f;
    f.location_prefix = tsdb::midplane_location((i / 2) % kRacks, (i / 2) % kMidplanes);
    f.metric = metrics[static_cast<std::size_t>(i / 2) % metrics.size()];
    const auto t0 = Clock::now();
    const auto buckets = db.downsample(f, Duration::seconds(60));
    latencies_ms.push_back(ms_since(t0));
    ++queries;
    if (buckets.size() != kSteps / 60) {
      std::printf("FAIL: downsample %d produced %zu buckets (want %d)\n", i, buckets.size(),
                  kSteps / 60);
      results_ok = false;
    }
  }

  const std::uint64_t rows_scanned = db.query_stats().rows_scanned - rows_before;
  const std::uint64_t full_scan_rows = queries * db.size();
  const double reduction =
      static_cast<double>(full_scan_rows) / static_cast<double>(std::max<std::uint64_t>(rows_scanned, 1));
  std::vector<double> sorted = latencies_ms;
  const double p50 = percentile(sorted, 0.50);
  const double p99 = percentile(sorted, 0.99);

  std::printf("queries executed    : %llu (120 range + 80 downsample)\n",
              static_cast<unsigned long long>(queries));
  std::printf("query p50 / p99     : %.4f / %.4f ms\n", p50, p99);
  std::printf("rows scanned        : %llu (flat scan would touch %llu)\n",
              static_cast<unsigned long long>(rows_scanned),
              static_cast<unsigned long long>(full_scan_rows));
  std::printf("rows-scanned reduction: %.0fx  (gate: >= 10x)\n", reduction);
  std::printf("downsample cache    : %llu hits / %llu misses\n\n",
              static_cast<unsigned long long>(db.query_stats().cache_hits),
              static_cast<unsigned long long>(db.query_stats().cache_misses));

  const bool ingest_ok = db.size() >= 1'000'000;
  const bool reduction_ok = reduction >= 10.0;
  std::printf(">= 1M records ingested : %s\n", ingest_ok ? "PASS" : "FAIL");
  std::printf(">= 10x scan reduction  : %s\n", reduction_ok ? "PASS" : "FAIL");
  std::printf("query results correct  : %s\n", results_ok ? "PASS" : "FAIL");

  std::FILE* out = std::fopen("BENCH_tsdb.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n"
                 "  \"ingest_records\": %zu,\n"
                 "  \"ingest_wall_s\": %.4f,\n"
                 "  \"ingest_records_per_s\": %.0f,\n"
                 "  \"bytes_per_record\": %.1f,\n"
                 "  \"locations\": %zu,\n"
                 "  \"metrics\": %zu,\n"
                 "  \"series\": %zu,\n"
                 "  \"query_count\": %llu,\n"
                 "  \"query_p50_ms\": %.4f,\n"
                 "  \"query_p99_ms\": %.4f,\n"
                 "  \"rows_scanned\": %llu,\n"
                 "  \"full_scan_rows\": %llu,\n"
                 "  \"rows_scanned_reduction\": %.1f,\n"
                 "  \"downsample_cache_hits\": %llu\n"
                 "}\n",
                 db.size(), ingest_s, ingest_rate, bytes_per_record, kLocationCount,
                 metrics.size(), db.series_count(), static_cast<unsigned long long>(queries),
                 p50, p99, static_cast<unsigned long long>(rows_scanned),
                 static_cast<unsigned long long>(full_scan_rows), reduction,
                 static_cast<unsigned long long>(db.query_stats().cache_hits));
    std::fclose(out);
    std::printf("\nwrote BENCH_tsdb.json\n");
  }

  return (ingest_ok && reduction_ok && results_ok) ? 0 : 1;
}
