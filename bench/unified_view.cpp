// The Section IV unification prototype in action: the same DGEMM-class
// compute load on all four platforms, compared on one metric schema.
// "In certain cases, it's not possible to gather the exact same type of
// data between two devices" (§II) — the unified view makes both the
// comparison and the gaps explicit.

#include <cstdio>
#include <memory>

#include "analysis/render.hpp"
#include "bgq/emon.hpp"
#include "bgq/machine.hpp"
#include "common/strings.hpp"
#include "moneq/backend_bgq.hpp"
#include "moneq/backend_mic.hpp"
#include "moneq/backend_nvml.hpp"
#include "moneq/backend_rapl.hpp"
#include "moneq/unified.hpp"
#include "rapl/reader.hpp"
#include "workloads/library.hpp"

int main() {
  using namespace envmon;
  using moneq::UnifiedMetric;
  using moneq::UnifiedSampler;

  std::printf("== Unified cross-platform view under compute load ==\n\n");

  sim::Engine engine;
  const auto cpu_load = workloads::dgemm({sim::Duration::seconds(120), 0.9, 0.5});
  const auto gpu_load = workloads::gpu_vector_add(
      {sim::Duration::seconds(2), sim::Duration::seconds(1), sim::Duration::seconds(117)});
  const auto phi_load = workloads::offload_gauss(
      {sim::Duration::seconds(2), sim::Duration::seconds(1), sim::Duration::seconds(117)});
  const auto bgq_load = workloads::dgemm({sim::Duration::seconds(120), 0.9, 0.5});

  bgq::BgqMachine machine;
  machine.run_workload(&bgq_load, sim::SimTime::zero());
  bgq::EmonSession emon(machine.board(0));
  moneq::BgqBackend bgq_backend(emon);

  rapl::CpuPackage pkg(engine);
  pkg.run_workload(&cpu_load, sim::SimTime::zero());
  rapl::MsrRaplReader reader(pkg, rapl::Credentials{true, 0});
  moneq::RaplBackend rapl_backend(reader);

  nvml::NvmlLibrary lib(engine);
  lib.attach_device(std::make_shared<nvml::GpuDevice>(nvml::k20_spec()));
  (void)lib.init();
  nvml::NvmlDeviceHandle handle;
  (void)lib.device_get_handle_by_index(0, &handle);
  lib.device_for_testing(0)->run_workload(&gpu_load, sim::SimTime::zero());
  moneq::NvmlBackend nvml_backend(lib, handle);

  mic::PhiCard card(engine);
  card.run_workload(&phi_load, sim::SimTime::zero());
  mic::MicrasDaemon daemon(card);
  daemon.start();
  moneq::MicDaemonBackend mic_backend(daemon);

  UnifiedSampler samplers[] = {UnifiedSampler(bgq_backend), UnifiedSampler(rapl_backend),
                               UnifiedSampler(nvml_backend), UnifiedSampler(mic_backend)};
  const char* labels[] = {"Blue Gene/Q (node card)", "RAPL (socket)", "NVML (K20)",
                          "Xeon Phi (card)"};

  sim::CostMeter meter;
  // Warm the differencing backends, then snapshot mid-load.
  engine.run_until(sim::SimTime::from_seconds(30));
  for (auto& s : samplers) (void)s.sample(engine.now(), meter);
  engine.run_until(sim::SimTime::from_seconds(60));

  const UnifiedMetric metrics[] = {
      UnifiedMetric::kTotalPowerWatts,    UnifiedMetric::kProcessorPowerWatts,
      UnifiedMetric::kMemoryPowerWatts,   UnifiedMetric::kDieTempCelsius,
      UnifiedMetric::kMemoryUsedBytes,    UnifiedMetric::kFanPercentOrRpm,
  };
  analysis::TableRenderer table({"Metric", labels[0], labels[1], labels[2], labels[3]});
  std::vector<std::map<UnifiedMetric, double>> values;
  for (auto& s : samplers) {
    auto snap = s.sample(engine.now(), meter);
    values.push_back(snap.is_ok() ? snap.value() : std::map<UnifiedMetric, double>{});
  }
  for (const auto metric : metrics) {
    std::vector<std::string> row{std::string(to_string(metric))};
    for (std::size_t i = 0; i < 4; ++i) {
      if (!samplers[i].supports(metric)) {
        row.push_back("unavailable");
      } else if (!values[i].contains(metric)) {
        row.push_back("(no data)");
      } else {
        row.push_back(format_double(values[i].at(metric), 1));
      }
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Collection cost for the two unified snapshots: %.2f ms total.\n\n",
              meter.total().to_millis());
  std::printf("Exactly the paper's conclusion in one table: total power is the only\n"
              "row with four numbers; the BG/Q splits planes but has no temperature;\n"
              "the accelerators have temperatures but fold memory into the board.\n");
  return 0;
}
