// Figure 2: power as observed from the data collected by MonEQ across
// the 7 BG/Q domains, captured at 560 ms.  The top line is the node
// card; the idle period is no longer visible (MonEQ runs with the job)
// and there are many more data points than the BPM view of Figure 1.

#include <cstdio>
#include <vector>

#include "analysis/render.hpp"
#include "scenarios/scenarios.hpp"

int main() {
  using namespace envmon;

  std::printf("== Figure 2: MonEQ 7-domain power at 560 ms (node card scope) ==\n\n");

  scenarios::BgqMmpsOptions options;
  const auto result = scenarios::run_bgq_mmps(options);

  // Order the series like the paper's legend: node card on top, then the
  // domains descending.
  std::vector<analysis::NamedSeries> series;
  for (const char* name : {"node_card", "chip_core", "dram", "link_chip_core",
                           "hss_network", "optics", "pci_express", "sram"}) {
    for (const auto& d : result.moneq_domains) {
      if (d.name == name) {
        analysis::NamedSeries s;
        s.name = d.name;
        // Thin the 560 ms series for the ASCII plot; the CSV keeps all.
        for (std::size_t i = 0; i < d.points.size(); i += 10) s.points.push_back(d.points[i]);
        series.push_back(std::move(s));
      }
    }
  }
  analysis::ChartOptions chart;
  chart.title = "MonEQ mean power (W) by domain vs seconds since job start";
  chart.height = 20;
  std::printf("%s\n", analysis::render_chart_multi(series, chart).c_str());

  std::size_t moneq_points = 0;
  for (const auto& d : result.moneq_domains) moneq_points += d.points.size();
  std::printf("MonEQ samples: %zu power points across 8 series (BPM view of the same\n"
              "job: %zu points) -- 'many more data points than observed from the BPM'\n",
              moneq_points, result.bpm_input_power.size());
  std::printf("collection overhead: %llu polls x %.2f ms = %.3f s over a %.0f s job"
              " = %.2f%%\n  (paper: 1.10 ms per collection, ~0.19%% overhead)\n",
              static_cast<unsigned long long>(result.moneq_overhead.polls),
              result.moneq_overhead.collection.to_millis() /
                  static_cast<double>(result.moneq_overhead.polls),
              result.moneq_overhead.collection.to_seconds(),
              result.job_duration.to_seconds(),
              100.0 * result.moneq_overhead.collection.to_seconds() /
                  result.job_duration.to_seconds());

  std::printf("\ncsv header: time_s");
  for (const auto& d : result.moneq_domains) std::printf(",%s", d.name.c_str());
  std::printf("\n");
  if (!result.moneq_domains.empty()) {
    const std::size_t n = result.moneq_domains.front().points.size();
    for (std::size_t i = 0; i < n; i += 25) {  // thinned for the log
      std::printf("csv:%.2f", result.moneq_domains.front().points[i].t.to_seconds());
      for (const auto& d : result.moneq_domains) {
        std::printf(",%.1f", i < d.points.size() ? d.points[i].value : 0.0);
      }
      std::printf("\n");
    }
  }
  return 0;
}
