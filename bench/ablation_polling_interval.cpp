// Ablation: MonEQ polling interval vs overhead and data volume.
//
// MonEQ defaults to "the lowest polling interval possible for the given
// hardware"; users may set anything valid.  This sweep quantifies the
// trade-off the paper discusses: faster polling means more data points
// and more collection overhead, with per-platform floors (560 ms EMON,
// 60 ms RAPL/NVML) and a RAPL-only ceiling (60 s overfill).

#include <cstdio>

#include "analysis/render.hpp"
#include "bgq/emon.hpp"
#include "bgq/machine.hpp"
#include "common/strings.hpp"
#include "moneq/backend_bgq.hpp"
#include "moneq/backend_rapl.hpp"
#include "moneq/profiler.hpp"
#include "rapl/reader.hpp"
#include "workloads/library.hpp"

namespace {

using namespace envmon;

void sweep_bgq() {
  std::printf("-- BG/Q EMON backend, 202.7 s toy app --\n");
  analysis::TableRenderer table({"interval", "accepted", "polls", "samples",
                                 "collection (s)", "overhead"});
  for (const double interval_ms : {100.0, 560.0, 1000.0, 5000.0, 30000.0}) {
    sim::Engine engine;
    bgq::BgqMachine machine;
    const auto w = workloads::dgemm({sim::Duration::from_seconds(202.7), 0.9, 0.5});
    machine.run_workload(&w, engine.now());
    bgq::EmonSession emon(machine.board(0));
    moneq::BgqBackend backend(emon);
    smpi::World world(32);
    moneq::NodeProfiler profiler(engine, world, 0);
    (void)profiler.add_backend(backend);
    const Status s =
        profiler.set_polling_interval(sim::Duration::from_seconds(interval_ms / 1000.0));
    if (!s.is_ok()) {
      table.add_row({format_double(interval_ms / 1000.0, 2) + " s", "REJECTED (" +
                     std::string(to_string(s.code())) + ")", "-", "-", "-", "-"});
      continue;
    }
    (void)profiler.initialize();
    engine.run_until(engine.now() + sim::Duration::from_seconds(202.7));
    (void)profiler.finalize();
    const auto report = profiler.overhead();
    table.add_row({format_double(interval_ms / 1000.0, 2) + " s", "yes",
                   std::to_string(report.polls), std::to_string(profiler.samples().size()),
                   format_double(report.collection.to_seconds(), 4),
                   format_double(100.0 * report.collection.to_seconds() / 202.7, 3) + " %"});
  }
  std::printf("%s\n", table.render().c_str());
}

void sweep_rapl() {
  std::printf("-- RAPL msr backend, 202.7 s toy app --\n");
  analysis::TableRenderer table({"interval", "accepted", "polls", "samples",
                                 "collection (s)", "overhead"});
  for (const double interval_s : {0.01, 0.06, 0.1, 1.0, 10.0, 59.0, 61.0}) {
    sim::Engine engine;
    rapl::CpuPackage pkg(engine);
    const auto w = workloads::dgemm({sim::Duration::from_seconds(202.7), 0.9, 0.5});
    pkg.run_workload(&w, engine.now());
    rapl::MsrRaplReader reader(pkg, rapl::Credentials{true, 0});
    moneq::RaplBackend backend(reader);
    smpi::World world(1);
    moneq::NodeProfiler profiler(engine, world, 0);
    (void)profiler.add_backend(backend);
    const Status s = profiler.set_polling_interval(sim::Duration::from_seconds(interval_s));
    if (!s.is_ok()) {
      table.add_row({format_double(interval_s, 2) + " s",
                     "REJECTED (" + std::string(to_string(s.code())) + ")", "-", "-", "-",
                     "-"});
      continue;
    }
    (void)profiler.initialize();
    engine.run_until(engine.now() + sim::Duration::from_seconds(202.7));
    (void)profiler.finalize();
    const auto report = profiler.overhead();
    table.add_row({format_double(interval_s, 2) + " s", "yes", std::to_string(report.polls),
                   std::to_string(profiler.samples().size()),
                   format_double(report.collection.to_seconds(), 4),
                   format_double(100.0 * report.collection.to_seconds() / 202.7, 4) + " %"});
  }
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main() {
  std::printf("== Ablation: polling interval vs overhead and data volume ==\n\n");
  sweep_bgq();
  sweep_rapl();
  std::printf("Notes: the 0.10 s BG/Q request and the 0.01 s RAPL request are rejected\n"
              "(below the hardware floor); the 61 s RAPL request is rejected (counter\n"
              "overfill ceiling). The 560 ms default costs ~0.2%% on BG/Q -- the\n"
              "paper's 0.19%% collection overhead.\n");
  return 0;
}
