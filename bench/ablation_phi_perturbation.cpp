// Ablation: Xeon Phi in-band measurement bias vs query rate.
//
// Fig 7's API-above-daemon shift exists because each SysMgmt query wakes
// cores on the card.  The bias therefore grows with the polling rate:
// the instrument perturbs the observable in proportion to how often you
// look.  The daemon path stays flat — its reads run in the application's
// existing time slice.

#include <cstdio>

#include "analysis/render.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "scenarios/scenarios.hpp"

int main() {
  using namespace envmon;

  std::printf("== Ablation: in-band query rate vs measured-power bias ==\n\n");

  // Daemon baseline at a moderate rate.
  const auto baseline = scenarios::run_phi_noop(scenarios::PhiCollector::kMicrasDaemon,
                                                sim::Duration::seconds(120),
                                                sim::Duration::millis(500));
  RunningStats base_stats;
  for (const double v : baseline.power_samples) base_stats.add(v);

  analysis::TableRenderer table({"API polling interval", "mean power (W)",
                                 "bias vs daemon (W)", "API time overhead"});
  for (const int interval_ms : {2000, 1000, 500, 250, 100, 50}) {
    const auto run = scenarios::run_phi_noop(scenarios::PhiCollector::kInbandApi,
                                             sim::Duration::seconds(120),
                                             sim::Duration::millis(interval_ms));
    RunningStats stats;
    for (const double v : run.power_samples) stats.add(v);
    table.add_row({std::to_string(interval_ms) + " ms", format_double(stats.mean(), 2),
                   format_double(stats.mean() - base_stats.mean(), 2),
                   format_double(100.0 * 14.2 / interval_ms, 1) + " %"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("daemon baseline: %.2f W (flat in the polling rate)\n\n", base_stats.mean());
  std::printf("Reading: at 50 ms the API eats %.0f%% of the application's time AND\n"
              "biases the measurement by several watts; Fig 7's shift is the 500 ms\n"
              "point of this curve. 'It's not necessarily intuitive that the API would\n"
              "have a greater base overhead than collecting the data directly from the\n"
              "daemon running on the card' (paper, Section IV).\n",
              100.0 * 14.2 / 50.0);
  return 0;
}
