// envmond ingestion bench: daemon path vs in-process insert_batch.
//
// The daemon (DESIGN.md §14) promises that putting a Unix socket and a
// wire protocol between producers and the store costs bounded
// throughput and zero fidelity: N concurrent network clients yield
// exactly the database some single-writer interleaving would have
// produced, and the frame log replays that interleaving byte-for-byte.
// This bench measures the cost and gates the promises:
//
//   gate 1: multi-client daemon ingest sustains >= 50% of the
//           in-process insert_batch row rate for the same workload,
//   gate 2: a single daemon client produces a database digest
//           byte-identical to the in-process path fed the same rows,
//   gate 3: replaying the multi-client frame log reproduces the live
//           database digest, twice (deterministic fixture).
//
// Results land in BENCH_daemon.json; re-run via
// `./build/bench/daemon_ingest` from the repo root.
//
// Extra mode for the ci/check.sh daemon smoke:
//   daemon_ingest --smoke [socket]   tiny multi-client run; with a
//       socket path it targets an already-running envmond, otherwise
//       it spins an in-process server and also checks replay identity.
//
// Timestamps: the store enforces a global watermark (insert_batch
// rejects rows older than the newest accepted timestamp), so the
// workload uses the fleet's epoch model — a batch is one collection
// epoch and every row in it carries the epoch timestamp, identical
// across clients.  Equal timestamps always pass the watermark; only a
// client lagging a full epoch behind the fleet loses that batch, which
// the accept ratio reports.  The server's credit window is set to one
// batch so producers pace themselves against the pump and stay in step.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "daemon/client.hpp"
#include "daemon/digest.hpp"
#include "daemon/framelog.hpp"
#include "daemon/server.hpp"
#include "tsdb/database.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using envmon::sim::SimTime;
namespace daemon = envmon::daemon;
namespace tsdb = envmon::tsdb;

constexpr std::uint32_t kClients = 4;
constexpr std::uint64_t kBatchRows = 4096;
constexpr std::uint64_t kBatchesPerClient = 16;
constexpr std::uint64_t kRowsPerClient = kBatchRows * kBatchesPerClient;

const char* kMetrics[3] = {"input_power_watts", "coolant_flow_lpm", "board_temp_c"};

// Row i of client c in epoch `batch`: the timestamp is the epoch's
// (shared across clients, see the watermark note above), location keys
// the client so every client owns disjoint series, and the value is a
// pure function of (c, i).
tsdb::Record stream_row(std::uint32_t client, std::uint64_t batch, std::uint64_t i) {
  tsdb::Record r;
  r.timestamp = SimTime::from_ns(static_cast<std::int64_t>(batch) * 1'000'000);
  r.location = tsdb::Location{static_cast<int>(client), static_cast<int>(i % 4), 0,
                              static_cast<int>((i / 4) % 4)};
  r.metric = kMetrics[i % 3];
  r.value = static_cast<double>(((i + client) * 2654435761u) % 100'000) / 100.0;
  return r;
}

std::vector<tsdb::Record> batch_rows(std::uint32_t client, std::uint64_t batch,
                                     std::uint64_t rows_per_batch) {
  std::vector<tsdb::Record> out;
  out.reserve(rows_per_batch);
  const std::uint64_t first = batch * rows_per_batch;
  for (std::uint64_t i = first; i < first + rows_per_batch; ++i) {
    out.push_back(stream_row(client, batch, i));
  }
  return out;
}

tsdb::DatabaseOptions base_options() {
  tsdb::DatabaseOptions o;
  o.max_insert_rate_per_second = 0.0;  // measure the path, not the rate model
  return o;
}

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/envmond_bench_XXXXXX";
    char* got = mkdtemp(tmpl);
    path = (got != nullptr) ? got : "/tmp";
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

// ------------------------------------------------------- client drive

// Streams `batches` batches of client c's rows through `client`;
// returns false on any protocol failure.
bool drive_client(daemon::Client& client, std::uint32_t c, std::uint64_t batches,
                  std::uint64_t rows_per_batch) {
  for (std::uint64_t b = 0; b < batches; ++b) {
    const auto rows = batch_rows(c, b, rows_per_batch);
    if (!client.send_batch(rows).is_ok()) return false;
  }
  return client.drain().is_ok();
}

struct DaemonRunResult {
  bool ok = false;
  double seconds = 0.0;
  std::uint64_t rows_sent = 0;
  std::uint64_t rows_accepted = 0;
};

// Runs `clients` concurrent producers against the server at
// `socket_path`, each streaming its full per-client stream.
DaemonRunResult run_clients(const std::string& socket_path, std::uint32_t clients,
                            std::uint64_t batches, std::uint64_t rows_per_batch) {
  DaemonRunResult result;
  std::vector<std::unique_ptr<daemon::Client>> handles;
  for (std::uint32_t c = 0; c < clients; ++c) {
    daemon::Client::Options copt;
    copt.socket_path = socket_path;
    copt.tenant = "bench";
    handles.push_back(std::make_unique<daemon::Client>(copt));
  }
  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  std::vector<int> oks(clients, 0);
  for (std::uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      daemon::Client& cl = *handles[c];
      if (!cl.connect().is_ok()) return;
      if (!drive_client(cl, c, batches, rows_per_batch)) return;
      if (!cl.close().is_ok()) return;
      oks[c] = 1;
    });
  }
  for (auto& t : threads) t.join();
  result.seconds = seconds_since(t0);
  result.ok = true;
  for (std::uint32_t c = 0; c < clients; ++c) {
    if (oks[c] == 0) result.ok = false;
    result.rows_sent += handles[c]->totals().rows_sent;
    result.rows_accepted += handles[c]->totals().rows_accepted;
  }
  return result;
}

// ------------------------------------------------------------- smoke

// Tiny multi-client run for ci/check.sh.  With a socket path it targets
// an external envmond (protocol-level checks only); without one it
// spins an in-process server and additionally gates replay identity.
int run_smoke(const char* socket_arg) {
  constexpr std::uint64_t kSmokeBatches = 4;
  constexpr std::uint64_t kSmokeRows = 256;

  if (socket_arg != nullptr) {
    const auto run = run_clients(socket_arg, 3, kSmokeBatches, kSmokeRows);
    if (!run.ok) {
      std::fprintf(stderr, "smoke: client run against %s failed\n", socket_arg);
      return 1;
    }
    // Against a shared external daemon we can only assert protocol
    // health: every row acked one way or the other, none lost.
    std::printf("smoke: external daemon ok (%llu rows sent, %llu accepted)\n",
                static_cast<unsigned long long>(run.rows_sent),
                static_cast<unsigned long long>(run.rows_accepted));
    return 0;
  }

  TempDir tmp;
  tsdb::EnvDatabase db(base_options());
  daemon::ServerOptions sopt;
  sopt.socket_path = tmp.path + "/smoke.sock";
  sopt.frame_log_path = tmp.path + "/smoke.evfl";
  sopt.credit_window_rows = kSmokeRows;  // one epoch in flight per client
  daemon::Server server(db, sopt);
  if (!server.start().is_ok()) {
    std::fprintf(stderr, "smoke: server start failed\n");
    return 1;
  }
  const auto run = run_clients(sopt.socket_path, 3, kSmokeBatches, kSmokeRows);
  server.stop();
  if (!run.ok || run.rows_sent == 0) {
    std::fprintf(stderr, "smoke: client run failed\n");
    return 1;
  }
  tsdb::EnvDatabase replayed(base_options());
  const auto st = daemon::replay_frame_log(sopt.frame_log_path, replayed);
  if (!st.is_ok()) {
    std::fprintf(stderr, "smoke: replay failed: %s\n", st.to_string().c_str());
    return 1;
  }
  if (daemon::database_digest(replayed) != daemon::database_digest(db)) {
    std::fprintf(stderr, "smoke: replay digest mismatch\n");
    return 1;
  }
  std::printf("smoke: in-process daemon ok (%llu rows, replay identical)\n",
              static_cast<unsigned long long>(run.rows_accepted));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--smoke") == 0) {
    return run_smoke(argc >= 3 ? argv[2] : nullptr);
  }

  TempDir tmp;
  const std::uint64_t total_rows = static_cast<std::uint64_t>(kClients) * kRowsPerClient;

  // ---- phase 1: in-process baseline -------------------------------
  // Batch-major interleaving (batch 0 of every client, then batch 1,
  // ...) keeps timestamps nondecreasing under the global watermark and
  // is exactly the fair round-robin the daemon's pump approximates.
  std::printf("daemon ingest bench: %u clients x %llu rows\n", kClients,
              static_cast<unsigned long long>(kRowsPerClient));
  tsdb::EnvDatabase inproc_db(base_options());
  std::uint64_t inproc_accepted = 0;
  std::vector<std::vector<tsdb::Record>> prebuilt;
  for (std::uint64_t b = 0; b < kBatchesPerClient; ++b) {
    for (std::uint32_t c = 0; c < kClients; ++c) {
      prebuilt.push_back(batch_rows(c, b, kBatchRows));
    }
  }
  const auto t_inproc = Clock::now();
  for (const auto& rows : prebuilt) {
    inproc_accepted += inproc_db.insert_batch(rows).accepted;
  }
  const double inproc_s = seconds_since(t_inproc);
  prebuilt.clear();
  prebuilt.shrink_to_fit();
  const double inproc_rate = static_cast<double>(total_rows) / inproc_s;
  std::printf("  in-process insert_batch : %.2f Mrows/s (%.3f s, %llu accepted)\n",
              inproc_rate / 1e6, inproc_s, static_cast<unsigned long long>(inproc_accepted));

  // ---- phase 2: single-client byte identity -----------------------
  tsdb::EnvDatabase single_ref(base_options());
  for (std::uint64_t b = 0; b < kBatchesPerClient; ++b) {
    single_ref.insert_batch(batch_rows(0, b, kBatchRows));
  }
  tsdb::EnvDatabase single_db(base_options());
  daemon::ServerOptions single_opt;
  single_opt.socket_path = tmp.path + "/single.sock";
  single_opt.credit_window_rows = kBatchRows;
  daemon::Server single_server(single_db, single_opt);
  if (!single_server.start().is_ok()) {
    std::fprintf(stderr, "single-client server start failed\n");
    return 2;
  }
  const auto single_run = run_clients(single_opt.socket_path, 1, kBatchesPerClient, kBatchRows);
  single_server.stop();
  const bool single_identical =
      single_run.ok && daemon::database_digest(single_db) == daemon::database_digest(single_ref);
  std::printf("  single-client digest    : %s\n", single_identical ? "identical" : "MISMATCH");

  // ---- phase 3: multi-client daemon throughput --------------------
  tsdb::EnvDatabase daemon_db(base_options());
  daemon::ServerOptions sopt;
  sopt.socket_path = tmp.path + "/bench.sock";
  sopt.frame_log_path = tmp.path + "/bench.evfl";
  sopt.credit_window_rows = kBatchRows;  // one epoch in flight per client
  daemon::Server server(daemon_db, sopt);
  if (!server.start().is_ok()) {
    std::fprintf(stderr, "bench server start failed\n");
    return 2;
  }
  const auto run = run_clients(sopt.socket_path, kClients, kBatchesPerClient, kBatchRows);
  server.stop();
  const auto server_stats = server.stats();
  if (!run.ok) {
    std::fprintf(stderr, "multi-client run failed\n");
    return 2;
  }
  const double daemon_rate = static_cast<double>(run.rows_sent) / run.seconds;
  const double ratio = daemon_rate / inproc_rate;
  const double accept_ratio =
      static_cast<double>(run.rows_accepted) / static_cast<double>(run.rows_sent);
  std::printf("  daemon ingest           : %.2f Mrows/s (%.3f s, %u clients)\n",
              daemon_rate / 1e6, run.seconds, kClients);
  std::printf("  daemon/in-process ratio : %.2f\n", ratio);
  std::printf("  accept ratio            : %.4f (%llu/%llu rows)\n", accept_ratio,
              static_cast<unsigned long long>(run.rows_accepted),
              static_cast<unsigned long long>(run.rows_sent));

  // ---- phase 4: deterministic replay ------------------------------
  const std::uint64_t live_digest = daemon::database_digest(daemon_db);
  std::uint64_t replay_digest1 = 0;
  std::uint64_t replay_digest2 = 0;
  daemon::ReplayStats rstats;
  {
    tsdb::EnvDatabase replayed(base_options());
    const auto st = daemon::replay_frame_log(sopt.frame_log_path, replayed, &rstats);
    if (!st.is_ok()) {
      std::fprintf(stderr, "replay failed: %s\n", st.to_string().c_str());
      return 2;
    }
    replay_digest1 = daemon::database_digest(replayed);
  }
  {
    tsdb::EnvDatabase replayed(base_options());
    if (!daemon::replay_frame_log(sopt.frame_log_path, replayed).is_ok()) return 2;
    replay_digest2 = daemon::database_digest(replayed);
  }
  const bool replay_identical = replay_digest1 == live_digest;
  const bool replay_deterministic = replay_digest1 == replay_digest2;
  std::printf("  frame-log replay        : %s (%llu frames, %llu sessions)\n",
              replay_identical ? "identical" : "MISMATCH",
              static_cast<unsigned long long>(rstats.frames),
              static_cast<unsigned long long>(rstats.sessions));

  // ---- gates ------------------------------------------------------
  const bool throughput_ok = ratio >= 0.50;
  std::printf("\ndaemon >= 50%% in-process  : %s (%.0f%%)\n", throughput_ok ? "PASS" : "FAIL",
              ratio * 100.0);
  std::printf("single-client identical   : %s\n", single_identical ? "PASS" : "FAIL");
  std::printf("replay identical to live  : %s\n", replay_identical ? "PASS" : "FAIL");
  std::printf("replay deterministic      : %s\n", replay_deterministic ? "PASS" : "FAIL");

  std::FILE* out = std::fopen("BENCH_daemon.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n"
                 "  \"clients\": %u,\n"
                 "  \"rows_per_client\": %llu,\n"
                 "  \"inproc_rows_per_s\": %.0f,\n"
                 "  \"daemon_rows_per_s\": %.0f,\n"
                 "  \"throughput_ratio\": %.3f,\n"
                 "  \"accept_ratio\": %.4f,\n"
                 "  \"daemon_ingest_s\": %.4f,\n"
                 "  \"frames_replayed\": %llu,\n"
                 "  \"batches_replayed\": %llu,\n"
                 "  \"server_protocol_errors\": %llu,\n"
                 "  \"single_client_identical\": %s,\n"
                 "  \"replay_identical\": %s,\n"
                 "  \"replay_deterministic\": %s\n"
                 "}\n",
                 kClients, static_cast<unsigned long long>(kRowsPerClient), inproc_rate,
                 daemon_rate, ratio, accept_ratio, run.seconds,
                 static_cast<unsigned long long>(rstats.frames),
                 static_cast<unsigned long long>(rstats.batches),
                 static_cast<unsigned long long>(server_stats.protocol_errors),
                 single_identical ? "true" : "false", replay_identical ? "true" : "false",
                 replay_deterministic ? "true" : "false");
    std::fclose(out);
    std::printf("\nwrote BENCH_daemon.json\n");
  }

  return (throughput_ok && single_identical && replay_identical && replay_deterministic) ? 0 : 2;
}
