// Durable tiered-storage bench: WAL overhead, crash recovery, dedup.
//
// The BG/Q environmental database's whole point (paper §II-A) is that
// collected data *survives*: DB2 keeps the sensor history on disk and
// serves it back after any restart.  This bench measures what the
// durable layer (DESIGN.md §13) costs and gates what it must guarantee:
//
//   gate 1: WAL + segment writes cost <= 150% over pure in-memory
//           ingest at the default kOnSeal fsync policy,
//   gate 2: a crashed store (destroyed without close()) reopens with
//           byte-identical query results — same FNV-1a digest,
//   gate 3: content-addressed dedup stores the 8-tenant duplicate-series
//           workload in <= 2/8 of its logical extent bytes,
//   gate 4: a cold query over a fully evicted store returns the same
//           digest as the hot store, and cold-start recovery of a
//           ~200k-row WAL completes in < 2 s.
//
// Results land in BENCH_durability.json; re-run via
// `./build/bench/durability` from the repo root.
//
// Two extra modes drive the ci/check.sh crash-recovery smoke:
//   durability --writer <dir>   deterministic infinite ingest under
//                               FsyncPolicy::kAlways until killed
//   durability --verify <dir>   reopen <dir>, regenerate the stream
//                               prefix, compare digests; exit 0 on match

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "tsdb/database.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using envmon::sim::Duration;
using envmon::sim::SimTime;
namespace tsdb = envmon::tsdb;

// ------------------------------------------------ deterministic stream

const char* kMetrics[3] = {"input_power_watts", "coolant_flow_lpm", "board_temp_c"};

// Row i of the canonical stream: strictly increasing timestamps, 16
// locations x 3 metrics, value a pure function of i.  Writer and
// verifier regenerate the identical stream from the index alone.
tsdb::Record stream_row(std::uint64_t i) {
  tsdb::Record r;
  r.timestamp = SimTime::from_ns(static_cast<std::int64_t>(i) * 1'000'000);
  r.location = tsdb::Location{static_cast<int>(i % 4), 0, 0, static_cast<int>((i / 4) % 4)};
  r.metric = kMetrics[i % 3];
  r.value = static_cast<double>((i * 2654435761u) % 100'000) / 100.0;
  return r;
}

std::vector<tsdb::Record> stream_rows(std::uint64_t first, std::uint64_t count) {
  std::vector<tsdb::Record> out;
  out.reserve(count);
  for (std::uint64_t i = first; i < first + count; ++i) out.push_back(stream_row(i));
  return out;
}

// FNV-1a over every field of every row — the byte-identical gate.
std::uint64_t digest(const std::vector<tsdb::Record>& rows) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const tsdb::Record& r : rows) {
    mix(static_cast<std::uint64_t>(r.timestamp.ns()));
    mix(static_cast<std::uint64_t>(r.location.rack) << 32 |
        static_cast<std::uint32_t>(r.location.card));
    for (const char c : r.metric) mix(static_cast<std::uint8_t>(c));
    std::uint64_t bits;
    std::memcpy(&bits, &r.value, sizeof(bits));
    mix(bits);
  }
  return h;
}

tsdb::DatabaseOptions base_options() {
  tsdb::DatabaseOptions o;
  o.max_insert_rate_per_second = 0.0;  // measure storage, not the rate model
  return o;
}

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// ------------------------------------------------- writer/verify modes

// Deterministic ingest until killed: one 512-row batch at a time, every
// batch fsynced (kAlways), so kill -9 can land anywhere and recovery
// must still produce a clean prefix of the stream.
int run_writer(const std::string& dir) {
  auto options = base_options();
  options.durability.fsync_policy = tsdb::FsyncPolicy::kAlways;
  tsdb::EnvDatabase db(options);
  if (!db.open(dir).is_ok()) {
    std::fprintf(stderr, "writer: cannot open %s\n", dir.c_str());
    return 2;
  }
  std::uint64_t next = db.size();  // resume the stream where it left off
  std::printf("writer: ingesting from row %llu\n", static_cast<unsigned long long>(next));
  std::fflush(stdout);
  for (;;) {
    const auto rows = stream_rows(next, 512);
    if (!db.insert_batch(rows).all_accepted()) {
      std::fprintf(stderr, "writer: rejected insert at row %llu\n",
                   static_cast<unsigned long long>(next));
      return 2;
    }
    next += rows.size();
    if (next % (512 * 64) == 0) db.seal_blocks(1);
  }
}

// Reopens the crashed store and checks the recovered rows are exactly a
// byte-identical prefix of the canonical stream.
int run_verify(const std::string& dir) {
  tsdb::EnvDatabase db(base_options());
  const auto t0 = Clock::now();
  if (!db.open(dir).is_ok()) {
    std::fprintf(stderr, "verify: cannot open %s\n", dir.c_str());
    return 2;
  }
  const double recovery_s = seconds_since(t0);
  const auto recovered = db.query(tsdb::QueryFilter{});
  const auto expected = stream_rows(0, recovered.size());
  const std::uint64_t got = digest(recovered);
  const std::uint64_t want = digest(expected);
  std::printf("verify: %zu rows recovered in %.3f s (wal frames %llu, truncated %s)\n",
              recovered.size(), recovery_s,
              static_cast<unsigned long long>(db.recovery_info().wal_frames_replayed),
              db.recovery_info().wal_truncated ? "yes" : "no");
  std::printf("verify: digest %016llx vs expected %016llx -> %s\n",
              static_cast<unsigned long long>(got), static_cast<unsigned long long>(want),
              got == want ? "MATCH" : "MISMATCH");
  if (recovered.empty()) {
    std::fprintf(stderr, "verify: nothing recovered\n");
    return 1;
  }
  return got == want ? 0 : 1;
}

// ------------------------------------------------------ the bench body

struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/envmon_durability_XXXXXX";
    path = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

constexpr std::uint64_t kRows = 200'000;

double ingest_seconds(tsdb::EnvDatabase& db) {
  const auto t0 = Clock::now();
  for (std::uint64_t first = 0; first < kRows; first += 4096) {
    db.insert_batch(stream_rows(first, 4096));
  }
  db.seal_blocks(1);
  return seconds_since(t0);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--writer") == 0) return run_writer(argv[2]);
  if (argc == 3 && std::strcmp(argv[1], "--verify") == 0) return run_verify(argv[2]);

  std::printf("=== durable tiered storage: WAL overhead, recovery, dedup ===\n\n");

  // --- gate 1: WAL overhead ------------------------------------------
  tsdb::EnvDatabase memory_db(base_options());
  const double memory_s = ingest_seconds(memory_db);

  TempDir durable_dir;
  double durable_s = 0.0;
  std::uint64_t wal_bytes = 0, disk_bytes = 0, crash_digest = 0;
  {
    auto db = std::make_unique<tsdb::EnvDatabase>(base_options());
    if (!db->open(durable_dir.path).is_ok()) return 2;
    durable_s = ingest_seconds(*db);
    const auto stats = db->durable_stats();
    wal_bytes = stats.wal_bytes;
    disk_bytes = stats.disk_bytes;
    crash_digest = digest(db->query(tsdb::QueryFilter{}));
    // Destroyed without close(): the kill -9 model.
  }
  const double overhead_pct = (durable_s - memory_s) / memory_s * 100.0;
  std::printf("ingest %llu rows       : %.3f s memory, %.3f s durable (%+.1f%%)\n",
              static_cast<unsigned long long>(kRows), memory_s, durable_s, overhead_pct);
  std::printf("wal bytes / disk bytes: %.1f MB / %.1f MB\n",
              static_cast<double>(wal_bytes) / 1e6, static_cast<double>(disk_bytes) / 1e6);

  // --- gate 2 + 4: crash recovery, cold queries, recovery time -------
  tsdb::EnvDatabase recovered(base_options());
  const auto recover_t0 = Clock::now();
  if (!recovered.open(durable_dir.path).is_ok()) return 2;
  const double recovery_s = seconds_since(recover_t0);
  const bool recovery_identical = digest(recovered.query(tsdb::QueryFilter{})) == crash_digest;
  std::printf("crash recovery        : %.3f s, %llu wal frames, digest %s\n", recovery_s,
              static_cast<unsigned long long>(recovered.recovery_info().wal_frames_replayed),
              recovery_identical ? "MATCH" : "MISMATCH");

  recovered.evict_sealed_blocks(0);
  const auto cold_t0 = Clock::now();
  const auto cold_rows = recovered.query(tsdb::QueryFilter{});
  const double cold_query_s = seconds_since(cold_t0);
  const auto hot_t0 = Clock::now();
  const bool cold_identical = digest(recovered.query(tsdb::QueryFilter{})) == crash_digest &&
                              digest(cold_rows) == crash_digest;
  const double hot_query_s = seconds_since(hot_t0);
  const std::uint64_t cold_loads = recovered.durable_stats().cold_loads;
  std::printf("cold / hot full query : %.3f s / %.3f s (%llu cold block loads), digest %s\n",
              cold_query_s, hot_query_s, static_cast<unsigned long long>(cold_loads),
              cold_identical ? "MATCH" : "MISMATCH");

  // Recovery time vs WAL length: replay cost scales with the un-
  // checkpointed suffix, so a freshly-checkpointed store reopens fast.
  double checkpointed_recovery_s = 0.0;
  if (!recovered.close().is_ok()) return 2;
  {
    tsdb::EnvDatabase db(base_options());
    const auto t0 = Clock::now();
    if (!db.open(durable_dir.path).is_ok()) return 2;
    checkpointed_recovery_s = seconds_since(t0);
  }
  std::printf("recovery vs wal length: %.3f s replaying ~%llu rows, %.3f s from checkpoint\n",
              recovery_s, static_cast<unsigned long long>(kRows), checkpointed_recovery_s);

  // --- gate 3: multi-tenant dedup ------------------------------------
  TempDir dedup_dir;
  double dedup_ratio = 0.0, dedup_disk_ratio = 0.0;
  {
    tsdb::EnvDatabase db(base_options());
    if (!db.open(dedup_dir.path).is_ok()) return 2;
    // 8 tenants (racks) sampling identical hardware: per-timestep the
    // value columns repeat tenant to tenant, so every tenant's sealed
    // payload is byte-identical to tenant 0's.
    constexpr int kTenants = 8;
    constexpr std::uint64_t kPerTenantRows = 16'384;
    for (std::uint64_t i = 0; i < kPerTenantRows; ++i) {
      for (int t = 0; t < kTenants; ++t) {
        tsdb::Record r;
        r.timestamp = SimTime::from_ns(static_cast<std::int64_t>(i) * 1'000'000);
        r.location = tsdb::Location{t, 0, 0, 0};
        r.metric = kMetrics[0];
        r.value = static_cast<double>((i * 40503u) % 1000);
        if (!db.insert(r).is_ok()) return 2;
      }
    }
    db.seal_blocks(1);
    const auto stats = db.durable_stats();
    const std::uint64_t seals = stats.extents_appended + stats.dedup_hits;
    dedup_ratio = seals == 0 ? 0.0
                             : static_cast<double>(stats.dedup_hits) / static_cast<double>(seals);
    const std::uint64_t logical = stats.disk_bytes * seals / std::max<std::uint64_t>(
                                      stats.extents_appended, 1);
    dedup_disk_ratio = logical == 0 ? 1.0
                                    : static_cast<double>(stats.disk_bytes) /
                                          static_cast<double>(logical);
    std::printf("dedup (8 tenants)     : %.2f of seals deduplicated, %.2f of logical bytes "
                "stored\n",
                dedup_ratio, dedup_disk_ratio);
  }

  const bool overhead_ok = overhead_pct <= 150.0;
  const bool dedup_ok = dedup_disk_ratio <= 0.25;
  const bool cold_start_ok = recovery_s < 2.0;
  std::printf("\nWAL overhead <= 150%%      : %s (%.1f%%)\n", overhead_ok ? "PASS" : "FAIL",
              overhead_pct);
  std::printf("crash recovery identical  : %s\n", recovery_identical ? "PASS" : "FAIL");
  std::printf("dedup <= 0.25 disk ratio  : %s (%.2f)\n", dedup_ok ? "PASS" : "FAIL",
              dedup_disk_ratio);
  std::printf("cold queries identical    : %s\n", cold_identical ? "PASS" : "FAIL");
  std::printf("recovery < 2 s            : %s (%.3f s)\n", cold_start_ok ? "PASS" : "FAIL",
              recovery_s);

  std::FILE* out = std::fopen("BENCH_durability.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n"
                 "  \"ingest_rows\": %llu,\n"
                 "  \"memory_ingest_s\": %.4f,\n"
                 "  \"durable_ingest_s\": %.4f,\n"
                 "  \"wal_overhead_pct\": %.1f,\n"
                 "  \"wal_bytes\": %llu,\n"
                 "  \"segment_disk_bytes\": %llu,\n"
                 "  \"recovery_replay_s\": %.4f,\n"
                 "  \"recovery_checkpoint_s\": %.4f,\n"
                 "  \"recovery_identical\": %s,\n"
                 "  \"cold_query_s\": %.4f,\n"
                 "  \"hot_query_s\": %.4f,\n"
                 "  \"cold_block_loads\": %llu,\n"
                 "  \"cold_identical\": %s,\n"
                 "  \"dedup_hit_ratio\": %.3f,\n"
                 "  \"dedup_disk_ratio\": %.3f\n"
                 "}\n",
                 static_cast<unsigned long long>(kRows), memory_s, durable_s, overhead_pct,
                 static_cast<unsigned long long>(wal_bytes),
                 static_cast<unsigned long long>(disk_bytes), recovery_s,
                 checkpointed_recovery_s, recovery_identical ? "true" : "false", cold_query_s,
                 hot_query_s, static_cast<unsigned long long>(cold_loads),
                 cold_identical ? "true" : "false", dedup_ratio, dedup_disk_ratio);
    std::fclose(out);
    std::printf("\nwrote BENCH_durability.json\n");
  }

  return (overhead_ok && recovery_identical && dedup_ok && cold_identical && cold_start_ok)
             ? 0
             : 1;
}
