// Decode-path microbench for the vectorized codec engine (simd.hpp).
//
// Lays out one sealed-block value column (XOR streams restarted every
// 16 rows, restart offsets recorded — exactly Block::seal's layout) and
// one delta-of-delta timestamp stream over sensor-shaped data, then
// times every decode implementation over the identical bytes:
//
//   reference  : the row-at-a-time codec.hpp decoders (XorDecoder /
//                DeltaOfDeltaDecoder over BitReader) — the pre-SIMD
//                engine's hot loop, kept as the baseline
//   scalar/sse42/avx2 : each compiled simd::Kernels variant
//   dispatched : simd::active(), whatever startup dispatch picked
//
// Every timed decode is also checked bit-identical to the reference
// output — a variant that got fast by being wrong fails the run.
//
// Gate: the dispatched XOR column decode must clear 2x the reference
// throughput.  When no SIMD variant is compiled in or supported (plain
// scalar dispatch), the gate reports `skipped_no_simd` and the bench
// exits 0 without claiming the speedup — a scalar-only host cannot
// vacuously pass a vectorization gate.
//
// Results land in BENCH_codec.json (rows/s and MB/s per variant,
// speedups, gate verdict); regenerate via `./build/bench/codec_decode`
// or `ctest --test-dir build -C Bench -L bench`.  `--smoke` runs a
// small workload, checks identity, and skips the JSON + perf gate —
// ci/check.sh drives that after tier-1 on every configuration.

#include <algorithm>
#include <bit>
#include <chrono>
#include <ctime>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "tsdb/codec.hpp"
#include "tsdb/simd.hpp"

namespace {

using Clock = std::chrono::steady_clock;
namespace tsdb = envmon::tsdb;
namespace simd = envmon::tsdb::simd;

constexpr std::size_t kSubchunkRows = 16;

struct Column {
  std::vector<double> values;
  std::vector<std::uint8_t> stream;
  std::vector<std::uint32_t> offsets;  // restart bit offset per subchunk
};

struct DodStream {
  std::vector<std::int64_t> values;
  std::vector<std::uint8_t> stream;
};

// Sensor-shaped values: long same-value runs (the XOR codec's 1-bit
// case dominates production streams), small mantissa drifts, occasional
// regulator steps.
Column make_column(std::size_t rows, std::uint64_t seed) {
  Column col;
  col.values.resize(rows);
  std::mt19937_64 rng(seed);
  double v = 1.2;
  for (auto& out : col.values) {
    const std::uint64_t roll = rng() % 100;
    if (roll < 55) {
      // repeat
    } else if (roll < 90) {
      v += 0.0005 * static_cast<double>(static_cast<std::int64_t>(rng() % 9) - 4);
    } else {
      v = 1.2 + 0.01 * static_cast<double>(rng() % 8);
    }
    out = v;
  }
  tsdb::BitWriter w;
  for (std::size_t begin = 0; begin < rows; begin += kSubchunkRows) {
    col.offsets.push_back(static_cast<std::uint32_t>(w.bit_size()));
    tsdb::XorEncoder enc;
    const std::size_t end = std::min(begin + kSubchunkRows, rows);
    for (std::size_t i = begin; i < end; ++i) enc.append(col.values[i], w);
  }
  col.stream = w.take();
  return col;
}

// Near-fixed-interval ticks with jitter: the timestamp stream the paper's
// 240 s polling cadence produces.
DodStream make_dod(std::size_t rows, std::uint64_t seed) {
  DodStream s;
  s.values.resize(rows);
  std::mt19937_64 rng(seed);
  std::int64_t t = 1'000'000'000;
  for (auto& out : s.values) {
    t += 240'000'000'000 + static_cast<std::int64_t>(rng() % 2'000'001) - 1'000'000;
    out = t;
  }
  tsdb::BitWriter w;
  tsdb::DeltaOfDeltaEncoder enc;
  for (const std::int64_t v : s.values) enc.append(v, w);
  s.stream = w.take();
  return s;
}

// Best-of-N CPU seconds for `fn` (which must decode `rows` rows).
// CPU time, not wall time: decode microbenches run on shared build
// hosts where other tenants steal the core, and a wall clock would
// charge their timeslices to whichever decoder was unlucky enough to
// be running.  CLOCK_PROCESS_CPUTIME_ID counts only this process's
// execution, so the reference/variant ratio the gate checks survives
// background load.
double cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = cpu_seconds();
    fn();
    best = std::min(best, cpu_seconds() - t0);
  }
  return best;
}

bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

struct Throughput {
  double rows_per_s = 0.0;
  double mb_per_s = 0.0;
};

Throughput throughput(std::size_t rows, std::size_t stream_bytes, double seconds) {
  Throughput t;
  t.rows_per_s = static_cast<double>(rows) / seconds;
  t.mb_per_s = static_cast<double>(stream_bytes) / seconds / (1024.0 * 1024.0);
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  const std::size_t rows = smoke ? (std::size_t{1} << 15) : (std::size_t{1} << 21);
  const int reps = smoke ? 2 : 7;

  std::printf("== Codec decode throughput (%zu rows%s) ==\n\n", rows, smoke ? ", smoke" : "");

  const Column col = make_column(rows, 0x5eed);
  const DodStream dod = make_dod(rows, 0xd0d);
  const std::size_t chunks = col.offsets.size();

  // --- Reference: the row-at-a-time pre-SIMD decode loop. --------------
  std::vector<double> ref_values(rows);
  const double ref_xor_s = best_seconds(reps, [&] {
    tsdb::BitReader r(col.stream);
    for (std::size_t c = 0; c < chunks; ++c) {
      r.seek(col.offsets[c]);
      tsdb::XorDecoder dec;
      const std::size_t end = std::min((c + 1) * kSubchunkRows, rows);
      for (std::size_t i = c * kSubchunkRows; i < end; ++i) ref_values[i] = dec.next(r);
    }
  });
  if (!bits_equal(ref_values, col.values)) {
    std::printf("FAIL: reference XOR decode does not round-trip\n");
    return 1;
  }

  std::vector<std::int64_t> ref_ts(rows);
  const double ref_dod_s = best_seconds(reps, [&] {
    tsdb::BitReader r(dod.stream);
    tsdb::DeltaOfDeltaDecoder dec;
    for (std::size_t i = 0; i < rows; ++i) ref_ts[i] = dec.next(r);
  });
  if (ref_ts != dod.values) {
    std::printf("FAIL: reference delta-of-delta decode does not round-trip\n");
    return 1;
  }

  const Throughput ref_xor = throughput(rows, col.stream.size(), ref_xor_s);
  const Throughput ref_dod = throughput(rows, dod.stream.size(), ref_dod_s);
  std::printf("%-12s xor %8.1f Mrows/s %8.1f MB/s   dod %8.1f Mrows/s %8.1f MB/s\n",
              "reference", ref_xor.rows_per_s / 1e6, ref_xor.mb_per_s,
              ref_dod.rows_per_s / 1e6, ref_dod.mb_per_s);

  // --- Every compiled variant plus the startup dispatch. ---------------
  struct Row {
    std::string name;
    Throughput xor_tp;
    Throughput dod_tp;
  };
  std::vector<Row> table;
  bool identical = true;
  std::vector<double> out_values(rows);
  std::vector<std::int64_t> out_ts(rows);

  const auto measure = [&](const char* name, const simd::Kernels& k) {
    const double xor_s = best_seconds(reps, [&] {
      k.decode_xor_column(col.stream.data(), col.stream.size(), col.offsets.data(), chunks,
                          rows, out_values.data());
    });
    if (!bits_equal(out_values, col.values)) {
      std::printf("FAIL: %s XOR decode differs from the reference bits\n", name);
      identical = false;
    }
    const double dod_s = best_seconds(reps, [&] {
      k.decode_dod(dod.stream.data(), dod.stream.size(), rows, out_ts.data());
    });
    if (out_ts != dod.values) {
      std::printf("FAIL: %s delta-of-delta decode differs from the reference\n", name);
      identical = false;
    }
    Row row{name, throughput(rows, col.stream.size(), xor_s),
            throughput(rows, dod.stream.size(), dod_s)};
    std::printf("%-12s xor %8.1f Mrows/s %8.1f MB/s   dod %8.1f Mrows/s %8.1f MB/s\n",
                name, row.xor_tp.rows_per_s / 1e6, row.xor_tp.mb_per_s,
                row.dod_tp.rows_per_s / 1e6, row.dod_tp.mb_per_s);
    table.push_back(row);
    return row;
  };

  bool any_simd = false;
  for (std::size_t i = 0; i < simd::kVariantCount; ++i) {
    const auto v = static_cast<simd::Variant>(i);
    if (!simd::variant_available(v)) continue;
    if (v != simd::Variant::kScalar) any_simd = true;
    measure(simd::variant_name(v), simd::kernels(v));
  }
  const Row dispatched = measure("dispatched", simd::active());
  const char* variant = simd::variant_name(simd::dispatched_variant());

  const double xor_speedup = dispatched.xor_tp.rows_per_s / ref_xor.rows_per_s;
  const double dod_speedup = dispatched.dod_tp.rows_per_s / ref_dod.rows_per_s;
  std::printf("\ndispatched variant      : %s\n", variant);
  std::printf("xor speedup vs reference: %.2fx\n", xor_speedup);
  std::printf("dod speedup vs reference: %.2fx\n", dod_speedup);
  std::printf("byte-identical decodes  : %s\n", identical ? "PASS" : "FAIL");

  if (smoke) {
    // Tier-1 smoke: identity only — timing gates need the Bench config.
    return identical ? 0 : 1;
  }

  const char* gate = "pass";
  bool gate_ok = true;
  if (!any_simd) {
    gate = "skipped_no_simd";
    std::printf(">= 2x decode speedup    : SKIP (no SIMD variant on this host)\n");
  } else if (xor_speedup >= 2.0) {
    std::printf(">= 2x decode speedup    : PASS (%.2fx)\n", xor_speedup);
  } else {
    gate = "fail";
    gate_ok = false;
    std::printf(">= 2x decode speedup    : FAIL (%.2fx)\n", xor_speedup);
  }

  std::FILE* out = std::fopen("BENCH_codec.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n"
                 "  \"rows\": %zu,\n"
                 "  \"value_stream_bytes\": %zu,\n"
                 "  \"ts_stream_bytes\": %zu,\n"
                 "  \"dispatched_variant\": \"%s\",\n"
                 "  \"xor_reference_mrows_per_s\": %.1f,\n"
                 "  \"xor_reference_mb_per_s\": %.1f,\n"
                 "  \"dod_reference_mrows_per_s\": %.1f,\n"
                 "  \"dod_reference_mb_per_s\": %.1f,\n",
                 rows, col.stream.size(), dod.stream.size(), variant,
                 ref_xor.rows_per_s / 1e6, ref_xor.mb_per_s, ref_dod.rows_per_s / 1e6,
                 ref_dod.mb_per_s);
    for (const Row& r : table) {
      std::fprintf(out,
                   "  \"xor_%s_mrows_per_s\": %.1f,\n"
                   "  \"xor_%s_mb_per_s\": %.1f,\n"
                   "  \"dod_%s_mrows_per_s\": %.1f,\n",
                   r.name.c_str(), r.xor_tp.rows_per_s / 1e6, r.name.c_str(), r.xor_tp.mb_per_s,
                   r.name.c_str(), r.dod_tp.rows_per_s / 1e6);
    }
    std::fprintf(out,
                 "  \"xor_speedup_vs_reference\": %.2f,\n"
                 "  \"dod_speedup_vs_reference\": %.2f,\n"
                 "  \"speedup_gate\": \"%s\"\n"
                 "}\n",
                 xor_speedup, dod_speedup, gate);
    std::fclose(out);
    std::printf("\nwrote BENCH_codec.json\n");
  }

  return (identical && gate_ok) ? 0 : 1;
}
