// Ablation: on-peak power budget vs electricity cost vs wait time.
//
// The paper's motivating use of environmental data (§I, ref [2]):
// power-aware scheduling that trades job wait time for cheaper energy.
// Sweeping the on-peak power budget maps the trade-off curve — from
// FCFS-equivalent (budget = infinity) to "defer everything to off-peak"
// (budget = 0).

#include <cstdio>

#include "analysis/render.hpp"
#include "common/strings.hpp"
#include "sched/scheduler.hpp"

namespace {

using namespace envmon;

sched::Scheduler::Summary run_with_budget(double budget_watts) {
  sim::Engine engine;
  sched::SchedulerOptions options;
  options.policy = sched::Policy::kPowerAware;
  options.peak_power_budget_watts = budget_watts;
  sched::Scheduler scheduler(engine, sched::ElectricityPricing::default_day_ahead(),
                             options);
  // A morning's worth of work arriving during on-peak hours: a mix of
  // half-rack computations and small debug jobs.
  int id = 0;
  for (int wave = 0; wave < 3; ++wave) {
    const double t = 7.0 + wave * 2.0;
    (void)scheduler.submit({++id, "prod", 16, sim::Duration::from_seconds(2.0 * 3600),
                            1800.0, sim::SimTime::from_seconds(t * 3600)});
    (void)scheduler.submit({++id, "prod", 16, sim::Duration::from_seconds(1.5 * 3600),
                            1600.0, sim::SimTime::from_seconds((t + 0.5) * 3600)});
    (void)scheduler.submit({++id, "debug", 2, sim::Duration::from_seconds(0.5 * 3600),
                            1200.0, sim::SimTime::from_seconds((t + 0.75) * 3600)});
  }
  scheduler.run_to_completion();
  return scheduler.summary();
}

}  // namespace

int main() {
  std::printf("== Ablation: on-peak power budget vs cost vs wait ==\n\n");
  std::printf("Workload: 9 jobs (6 half-rack production + 3 debug) arriving 07:00-12:00\n"
              "Tariff: $34/MWh off-peak, $88/MWh on-peak (06:00-22:00)\n\n");

  analysis::TableRenderer table({"on-peak budget", "job energy cost ($)", "mean wait (h)",
                                 "makespan (h)", "peak on-peak job power (kW)"});
  const double budgets[] = {1e9, 60'000.0, 30'000.0, 12'000.0, 0.0};
  double fcfs_cost = 0.0;
  for (const double budget : budgets) {
    const auto s = run_with_budget(budget);
    if (budget == 1e9) fcfs_cost = s.total_job_cost_usd;
    table.add_row({budget >= 1e9 ? "unlimited (=FCFS)"
                                 : format_double(budget / 1000.0, 0) + " kW",
                   format_double(s.total_job_cost_usd, 2),
                   format_double(s.mean_wait.to_seconds() / 3600.0, 2),
                   format_double(s.makespan.to_seconds() / 3600.0, 2),
                   format_double(s.peak_on_peak_watts / 1000.0, 1)});
  }
  std::printf("%s\n", table.render().c_str());

  const auto zero = run_with_budget(0.0);
  std::printf("Savings at budget 0 vs FCFS: %.1f%% of the job energy bill (the SC'13\n"
              "system the paper cites reported up to 23%% including idle power and\n"
              "smarter partial deferral).\n",
              100.0 * (fcfs_cost - zero.total_job_cost_usd) / fcfs_cost);
  return 0;
}
