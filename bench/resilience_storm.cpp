// Fault storm against a three-backend node, gating the graceful-
// degradation guarantees the fault model documents (DESIGN.md):
//
//   gate 1 (deterministic replay): the same seed produces a
//           byte-identical node file — same gap markers, same samples —
//           across two independent storm runs;
//   gate 2 (blast-radius isolation): a storm that kills the NVML board
//           leaves the surviving backends' sample rows byte-identical
//           to a fault-free run;
//   gate 3 (bounded overhead): the collection overhead under the storm
//           stays within the retry budget + injected stalls of the
//           fault-free cost, and under 1% of the application runtime.
//
// The storm exercises every fault kind the injector scripts: a
// transient error on the first poll, seeded flapping, latency spikes,
// corrupt readings, then permanent device loss.  Results land in
// BENCH_resilience.json; re-run via `./build/bench/resilience_storm` or
// `ctest --test-dir build -C Bench -L bench`.

#include <chrono>
#include <cstdio>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bgq/emon.hpp"
#include "bgq/machine.hpp"
#include "fault/injector.hpp"
#include "mic/micras.hpp"
#include "moneq/backend_bgq.hpp"
#include "moneq/backend_mic.hpp"
#include "moneq/backend_nvml.hpp"
#include "moneq/output.hpp"
#include "moneq/profiler.hpp"
#include "nvml/api.hpp"
#include "workloads/library.hpp"

namespace {

using envmon::sim::Duration;
using envmon::sim::SimTime;
namespace fault = envmon::fault;
namespace moneq = envmon::moneq;

constexpr double kRunSeconds = 30.0;
constexpr std::uint64_t kStormSeed = 42;

struct RunResult {
  std::string file;  // rendered node file
  std::vector<moneq::GapMarker> gaps;
  Duration collection{};
  std::uint64_t polls = 0;
  std::uint64_t degraded_polls = 0;
  std::uint64_t injected_total = 0;
  moneq::BackendState nvml_state = moneq::BackendState::kHealthy;
};

RunResult run_once(bool storm) {
  envmon::sim::Engine engine;
  fault::Injector injector(engine, kStormSeed);

  // Survivors: the EMON session and the MICRAS daemon.
  envmon::bgq::BgqMachine machine;
  envmon::bgq::EmonSession emon(machine.board(0));
  moneq::BgqBackend bgq_backend(emon);
  envmon::mic::PhiCard card(engine);
  envmon::mic::MicrasDaemon daemon(card);
  daemon.start();
  moneq::MicDaemonBackend mic_backend(daemon);

  // The victim: an NVML board.
  envmon::nvml::NvmlLibrary library(engine);
  library.attach_device(std::make_shared<envmon::nvml::GpuDevice>(envmon::nvml::k20_spec()));
  (void)library.init();
  envmon::nvml::NvmlDeviceHandle handle;
  (void)library.device_get_handle_by_index(0, &handle);
  moneq::NvmlBackend nvml_backend(library, handle);

  if (storm) {
    // Survivors keep their hooks attached with nothing scripted — an
    // attached-but-clean site must behave exactly like a detached one.
    emon.attach_fault_hook(injector);
    daemon.attach_fault_hook(injector);
    library.attach_fault_hook(injector);

    injector.fail_next(fault::sites::kNvml, envmon::StatusCode::kUnavailable,
                       "transient driver hiccup");
    injector.flap_between(fault::sites::kNvml, SimTime::from_seconds(3),
                          SimTime::from_seconds(8), 0.35,
                          envmon::StatusCode::kUnavailable, "flaky driver");
    injector.delay_between(fault::sites::kNvml, SimTime::from_seconds(4),
                           SimTime::from_seconds(7), Duration::millis(2));
    injector.corrupt_between(fault::sites::kNvml, SimTime::from_seconds(8.4),
                             SimTime::from_seconds(9.6), 1.05);
    injector.kill_at(fault::sites::kNvml, SimTime::from_seconds(10),
                     "XID 79: GPU fell off the bus");
  }

  envmon::smpi::World world(1);
  moneq::NodeProfiler profiler(engine, world, 0);
  if (!profiler.add_backend(bgq_backend).is_ok() ||
      !profiler.add_backend(mic_backend).is_ok() ||
      !profiler.add_backend(nvml_backend).is_ok() ||
      !profiler.set_polling_interval(Duration::millis(600)).is_ok() ||
      !profiler.initialize().is_ok()) {
    std::fprintf(stderr, "profiler setup failed\n");
    std::exit(2);
  }

  engine.run_until(SimTime::from_seconds(kRunSeconds));
  moneq::MemoryOutput out;
  if (!profiler.finalize(nullptr, &out).is_ok()) {
    std::fprintf(stderr, "finalize failed\n");
    std::exit(2);
  }

  RunResult result;
  result.file = out.files().at(moneq::node_file_name(0));
  result.gaps = profiler.gaps();
  result.collection = profiler.overhead().collection;
  result.polls = profiler.overhead().polls;
  result.degraded_polls = profiler.degraded_polls();
  result.injected_total = injector.injected_total();
  result.nvml_state = profiler.backend_health(2).state();
  return result;
}

// Sample rows of the surviving backends: every data row whose domain is
// not one the NVML backend emits, excluding #TAG/#GAP sentinel rows.
// (The MICRAS die_temp rows share the NVML domain name, so they sit out
// the comparison; its seven other domains stay in.)
std::string surviving_rows(const std::string& file) {
  static const std::set<std::string> nvml_domains = {"board", "die_temp", "mem_used",
                                                     "mem_free", "fan"};
  std::ostringstream kept;
  std::istringstream lines(file);
  std::string line;
  while (std::getline(lines, line)) {
    std::istringstream fields(line);
    std::string t, domain, quantity;
    if (!std::getline(fields, t, ',') || !std::getline(fields, domain, ',') ||
        !std::getline(fields, quantity, ',')) {
      continue;
    }
    if (!quantity.empty() && quantity.front() == '#') continue;  // tag / gap marker
    if (nvml_domains.contains(domain)) continue;
    kept << line << '\n';
  }
  return kept.str();
}

bool same_gaps(const std::vector<moneq::GapMarker>& a,
               const std::vector<moneq::GapMarker>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].t != b[i].t || a[i].backend != b[i].backend ||
        a[i].is_start != b[i].is_start || a[i].reason != b[i].reason) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  std::printf("== Resilience storm: 3 backends, NVML killed mid-run ==\n\n");
  const auto wall_t0 = std::chrono::steady_clock::now();

  const RunResult clean = run_once(false);
  const RunResult storm_a = run_once(true);
  const RunResult storm_b = run_once(true);  // same seed: must replay exactly

  // --- gate 1: deterministic replay ------------------------------------
  const bool replay_ok =
      storm_a.file == storm_b.file && same_gaps(storm_a.gaps, storm_b.gaps);

  // --- gate 2: surviving backends untouched ----------------------------
  const std::string clean_rows = surviving_rows(clean.file);
  const bool isolation_ok =
      !clean_rows.empty() && clean_rows == surviving_rows(storm_a.file);
  // Sanity: the storm actually bit — faults injected, gaps marked, the
  // victim still dark at shutdown.
  const bool storm_bit = storm_a.injected_total > 0 && !storm_a.gaps.empty() &&
                         storm_a.degraded_polls > 0 &&
                         storm_a.nvml_state == moneq::BackendState::kQuarantined;

  // --- gate 3: bounded overhead ----------------------------------------
  // Budget: the degradation policy's lifetime retry budget plus every
  // scripted stall (5 delayed polls x up to 5 NVML calls x 2 ms).
  const moneq::DegradationPolicy policy;
  const Duration budget = policy.retry_budget + Duration::millis(50);
  const double clean_ms = clean.collection.to_millis();
  const double storm_ms = storm_a.collection.to_millis();
  const double storm_fraction = storm_a.collection.to_seconds() / kRunSeconds;
  const bool overhead_ok =
      storm_ms <= clean_ms + budget.to_millis() && storm_fraction < 0.01;

  std::printf("polls per run            : %llu\n",
              static_cast<unsigned long long>(storm_a.polls));
  std::printf("faults injected          : %llu\n",
              static_cast<unsigned long long>(storm_a.injected_total));
  std::printf("gap markers              : %zu\n", storm_a.gaps.size());
  std::printf("degraded polls           : %llu\n",
              static_cast<unsigned long long>(storm_a.degraded_polls));
  std::printf("victim end state         : %s\n",
              std::string(moneq::to_string(storm_a.nvml_state)).c_str());
  std::printf("collection, clean        : %.3f ms\n", clean_ms);
  std::printf("collection, storm        : %.3f ms (%.4f%% of runtime)\n", storm_ms,
              storm_fraction * 100.0);
  std::printf("\n");
  std::printf("deterministic replay     : %s\n", replay_ok ? "PASS" : "FAIL");
  std::printf("survivors byte-identical : %s\n", isolation_ok ? "PASS" : "FAIL");
  std::printf("storm actually bit       : %s\n", storm_bit ? "PASS" : "FAIL");
  std::printf("overhead within budget   : %s\n", overhead_ok ? "PASS" : "FAIL");

  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - wall_t0)
          .count();

  std::FILE* out = std::fopen("BENCH_resilience.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"bench\": \"resilience_storm\",\n");
    std::fprintf(out, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(kStormSeed));
    std::fprintf(out, "  \"run_seconds\": %.1f,\n", kRunSeconds);
    std::fprintf(out, "  \"polls\": %llu,\n",
                 static_cast<unsigned long long>(storm_a.polls));
    std::fprintf(out, "  \"faults_injected\": %llu,\n",
                 static_cast<unsigned long long>(storm_a.injected_total));
    std::fprintf(out, "  \"gap_markers\": %zu,\n", storm_a.gaps.size());
    std::fprintf(out, "  \"degraded_polls\": %llu,\n",
                 static_cast<unsigned long long>(storm_a.degraded_polls));
    std::fprintf(out, "  \"collection_ms_clean\": %.3f,\n", clean_ms);
    std::fprintf(out, "  \"collection_ms_storm\": %.3f,\n", storm_ms);
    std::fprintf(out, "  \"storm_overhead_fraction\": %.6f,\n", storm_fraction);
    std::fprintf(out, "  \"deterministic_replay\": %s,\n", replay_ok ? "true" : "false");
    std::fprintf(out, "  \"survivors_byte_identical\": %s,\n",
                 isolation_ok ? "true" : "false");
    std::fprintf(out, "  \"overhead_within_budget\": %s,\n",
                 overhead_ok ? "true" : "false");
    std::fprintf(out, "  \"wall_ms\": %.1f\n", wall_ms);
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("\nwrote BENCH_resilience.json\n");
  }

  return (replay_ok && isolation_ok && storm_bit && overhead_ok) ? 0 : 1;
}
