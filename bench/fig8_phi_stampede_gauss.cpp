// Figure 8: sum of power consumption for a Gaussian elimination workload
// running on 128 Xeon Phi cards on Stampede.  Data generation takes
// place for about the first 100 seconds; after the transfer, computation
// begins and the summed power jumps.

#include <cstdio>

#include "analysis/render.hpp"
#include "analysis/series_ops.hpp"
#include "scenarios/scenarios.hpp"

int main() {
  using namespace envmon;

  std::printf("== Figure 8: sum power, Gaussian elimination on 128 Xeon Phis ==\n\n");

  const auto result = scenarios::run_phi_stampede_gauss(128);

  analysis::ChartOptions chart;
  chart.title = "Sum of card power (W) across 128 Xeon Phis vs time since start";
  chart.y_label = "Sum Power (Watts)";
  chart.height = 18;
  // Thin for the ASCII chart.
  std::vector<sim::TracePoint> thinned;
  for (std::size_t i = 0; i < result.sum_power.size(); i += 4) {
    thinned.push_back(result.sum_power[i]);
  }
  std::printf("%s\n", analysis::render_chart(thinned, chart).c_str());

  const double datagen = analysis::mean_in_window(
      result.sum_power, sim::SimTime::from_seconds(20), sim::SimTime::from_seconds(90));
  const double compute = analysis::mean_in_window(
      result.sum_power, sim::SimTime::from_seconds(120), sim::SimTime::from_seconds(245));
  const auto rise = analysis::first_rise_above(result.sum_power, (datagen + compute) / 2.0);
  std::printf("data-generation plateau : %8.0f W  (paper figure: ~5,000-7,000 W)\n", datagen);
  std::printf("compute plateau         : %8.0f W  (paper figure: ~22,000-25,000 W)\n",
              compute);
  std::printf("jump at                 : %8.1f s  (paper: 'for about the first 100"
              " seconds')\n",
              rise.found ? rise.t.to_seconds() : -1.0);
  std::printf("cards                   : %8d\n", result.cards);

  std::printf("\ncsv:time_s,sum_power_w\n");
  for (std::size_t i = 0; i < result.sum_power.size(); i += 2) {
    std::printf("csv:%.1f,%.0f\n", result.sum_power[i].t.to_seconds(),
                result.sum_power[i].value);
  }
  return 0;
}
