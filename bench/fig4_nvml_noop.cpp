// Figure 4: power consumption of a NOOP workload on a NVIDIA K20 GPU
// captured at 100 ms — a gradual increase until finally leveling off
// (about 5 seconds), then constant for the rest of the run.

#include <cstdio>

#include "analysis/render.hpp"
#include "analysis/series_ops.hpp"
#include "scenarios/scenarios.hpp"

int main() {
  using namespace envmon;

  std::printf("== Figure 4: NVML board power, NOOP kernels on a K20 at 100 ms ==\n\n");

  const auto result = scenarios::run_nvml_noop();  // 12.5 s, as plotted

  analysis::ChartOptions chart;
  chart.title = "NVML board power (W) vs time since start";
  chart.y_label = "Power (Watts)";
  std::printf("%s\n", analysis::render_chart(result.board_power, chart).c_str());

  const double start = result.board_power.empty() ? 0.0 : result.board_power.front().value;
  const double plateau = analysis::mean_in_window(
      result.board_power, sim::SimTime::from_seconds(9), sim::SimTime::from_seconds(12.4));
  const auto smoothed =
      analysis::resample_mean(result.board_power, sim::Duration::seconds(1));
  const auto settle = analysis::settle_time(smoothed, 2.0);
  std::printf("starting power : %6.2f W  (paper figure: ~44 W)\n", start);
  std::printf("plateau        : %6.2f W  (paper figure: ~55-56 W)\n", plateau);
  std::printf("level-off time : %6.2f s  (paper: 'about 5 seconds before the power\n"
              "                            consumption levels off')\n",
              settle.found ? settle.t.to_seconds() : -1.0);
  std::printf("per-query cost : %6.3f ms (paper: 'about 1.3 ms')\n",
              result.mean_query_cost_ms);

  std::printf("\ncsv:time_s,board_power_w\n");
  for (const auto& p : result.board_power) {
    std::printf("csv:%.1f,%.2f\n", p.t.to_seconds(), p.value);
  }
  return 0;
}
