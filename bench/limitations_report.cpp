// The Section IV "looking forward" feature, implemented: every backend
// publishes its limitations programmatically, so none of them "had to be
// deduced from careful experimentation".

#include <cstdio>
#include <memory>

#include "analysis/render.hpp"
#include "bgq/emon.hpp"
#include "bgq/machine.hpp"
#include "common/strings.hpp"
#include "moneq/backend_bgq.hpp"
#include "moneq/backend_mic.hpp"
#include "moneq/backend_nvml.hpp"
#include "moneq/backend_rapl.hpp"
#include "rapl/reader.hpp"

int main() {
  using namespace envmon;

  std::printf("== Stated limitations of every collection mechanism (Section IV ask) ==\n\n");

  sim::Engine engine;

  bgq::BgqMachine machine;
  bgq::EmonSession emon(machine.board(0));
  moneq::BgqBackend bgq_backend(emon);

  rapl::CpuPackage pkg(engine);
  rapl::MsrRaplReader reader(pkg, rapl::Credentials{true, 0});
  moneq::RaplBackend rapl_backend(reader);

  nvml::NvmlLibrary nvml_lib(engine);
  nvml_lib.attach_device(std::make_shared<nvml::GpuDevice>(nvml::k20_spec()));
  (void)nvml_lib.init();
  nvml::NvmlDeviceHandle handle;
  (void)nvml_lib.device_get_handle_by_index(0, &handle);
  moneq::NvmlBackend nvml_backend(nvml_lib, handle);

  mic::PhiCard card(engine);
  mic::ScifNetwork net;
  mic::SysMgmtService service(card, net, 1);
  auto client = mic::SysMgmtClient::connect(net, 1);
  moneq::MicInbandBackend mic_api_backend(client.value());
  mic::MicrasDaemon daemon(card);
  daemon.start();
  moneq::MicDaemonBackend mic_daemon_backend(daemon);

  const moneq::Backend* backends[] = {&bgq_backend, &rapl_backend, &nvml_backend,
                                      &mic_api_backend, &mic_daemon_backend};

  analysis::TableRenderer table({"Backend", "Scope", "Access", "Min poll", "Max poll",
                                 "Staleness", "Perturbs?", "Root?"});
  for (const auto* b : backends) {
    const auto l = b->limitations();
    const auto max = b->max_polling_interval();
    table.add_row({std::string(b->name()), l.scope, l.access_path,
                   format_double(b->min_polling_interval().to_millis(), 0) + " ms",
                   max.ns() > 0 ? format_double(max.to_seconds(), 0) + " s" : "none",
                   format_double(l.worst_case_staleness.to_millis(), 0) + " ms",
                   l.perturbs_measurement ? "YES" : "no",
                   l.requires_privilege ? "YES" : "no"});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Caveats on record:\n");
  for (const auto* b : backends) {
    const auto l = b->limitations();
    if (!l.caveats.empty()) {
      std::printf("  %-18s %s\n", std::string(b->name()).c_str(), l.caveats.c_str());
    }
    if (!l.accuracy_note.empty()) {
      std::printf("  %-18s accuracy: %s\n", "", l.accuracy_note.c_str());
    }
  }
  return 0;
}
