// Figure 5: power consumption and temperature of a vector add workload
// on the K20 — the same gradual ramp for the first few seconds while the
// host generates data, a rapid increase once the kernel starts, and a
// steadily increasing die temperature.

#include <cstdio>
#include <vector>

#include "analysis/render.hpp"
#include "analysis/series_ops.hpp"
#include "scenarios/scenarios.hpp"

int main() {
  using namespace envmon;

  std::printf("== Figure 5: NVML power + temperature, vector add on a K20 ==\n\n");

  const auto result = scenarios::run_nvml_vecadd();  // 10 s gen + 2 s xfer + 88 s compute

  std::vector<analysis::NamedSeries> series(2);
  series[0].name = "power_w";
  for (std::size_t i = 0; i < result.board_power.size(); i += 5) {
    series[0].points.push_back(result.board_power[i]);
  }
  series[1].name = "temp_c";
  for (std::size_t i = 0; i < result.die_temp.size(); i += 5) {
    series[1].points.push_back(result.die_temp[i]);
  }
  analysis::ChartOptions chart;
  chart.title = "Board power (W, *) and die temperature (C, +) vs time";
  chart.height = 18;
  std::printf("%s\n", analysis::render_chart_multi(series, chart).c_str());

  const double gen = analysis::mean_in_window(result.board_power, sim::SimTime::from_seconds(5),
                                              sim::SimTime::from_seconds(9));
  const double compute = analysis::mean_in_window(
      result.board_power, sim::SimTime::from_seconds(30), sim::SimTime::from_seconds(95));
  const double t0 = analysis::mean_in_window(result.die_temp, sim::SimTime::from_seconds(1),
                                             sim::SimTime::from_seconds(5));
  const double t1 = analysis::mean_in_window(result.die_temp, sim::SimTime::from_seconds(90),
                                             sim::SimTime::from_seconds(100));
  std::printf("host-generation plateau : %6.1f W (paper: 'level value of about 55 Watts')\n",
              gen);
  std::printf("compute plateau         : %6.1f W (paper figure: ~125-150 W)\n", compute);
  std::printf("temperature rise        : %5.1f C -> %5.1f C (paper figure: ~40 -> ~65 C,\n"
              "                          'Temperature shows steady increase')\n",
              t0, t1);

  std::printf("\ncsv:time_s,board_power_w,die_temp_c\n");
  const std::size_t n = std::min(result.board_power.size(), result.die_temp.size());
  for (std::size_t i = 0; i < n; i += 10) {
    std::printf("csv:%.1f,%.2f,%.1f\n", result.board_power[i].t.to_seconds(),
                result.board_power[i].value, result.die_temp[i].value);
  }
  return 0;
}
