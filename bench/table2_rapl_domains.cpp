// Table II: list of available RAPL sensors (domains), regenerated from
// the register model, plus the live register inventory of a simulated
// package.

#include <cstdio>
#include <string>

#include "analysis/render.hpp"
#include "rapl/package.hpp"
#include "rapl/registers.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace envmon;
  using rapl::RaplDomain;

  std::printf("== Table II: list of available RAPL sensors ==\n\n");

  analysis::TableRenderer table({"Domain", "Description", "Energy-status MSR"});
  char msr[16];
  for (const auto d : {RaplDomain::kPackage, RaplDomain::kPp0, RaplDomain::kPp1,
                       RaplDomain::kDram}) {
    std::snprintf(msr, sizeof(msr), "0x%03x", rapl::energy_status_msr(d));
    table.add_row({std::string(to_string(d)) +
                       (d == RaplDomain::kPackage ? " (PKG)"
                        : d == RaplDomain::kPp0   ? " (Power Plane 0)"
                        : d == RaplDomain::kPp1   ? " (Power Plane 1)"
                                                  : ""),
                   rapl::description(d), msr});
  }
  std::printf("%s\n", table.render().c_str());

  // Verify against the emulated hardware: every listed register exists.
  sim::Engine engine;
  rapl::CpuPackage pkg(engine);
  const auto units_raw = pkg.msr_file().read(rapl::kMsrRaplPowerUnit);
  const auto units = rapl::PowerUnits::decode(units_raw.value_or(0));
  std::printf("MSR_RAPL_POWER_UNIT: energy unit = %.2f uJ (paper: 15.26 uJ),"
              " power unit = %.3f W, time unit = %.2f ms\n",
              units.joules_per_unit() * 1e6, units.watts_per_unit(),
              units.seconds_per_unit() * 1e3);
  for (const auto d : {RaplDomain::kPackage, RaplDomain::kPp0, RaplDomain::kPp1,
                       RaplDomain::kDram}) {
    std::printf("  %-4s energy-status register present: %s\n", to_string(d),
                pkg.msr_file().has(rapl::energy_status_msr(d)) ? "yes" : "NO");
  }
  return 0;
}
