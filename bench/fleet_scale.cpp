// Fleet collection at Mira-ish scale: 1024 nodes behind the parallel
// fleet engine (src/fleet/), gating the two properties the engine was
// built for:
//
//   gate 1 (determinism): the same seed must produce byte-identical
//           per-node files and database contents at 1, 2, and 8 worker
//           threads — parallelism must be unobservable in the output.
//   gate 2 (throughput): sharding must actually buy wall time.  On a
//           machine with >= 8 hardware threads the 8-worker run must be
//           >= 4x the 1-worker run (the ISSUE's headline number).  On
//           smaller hosts the same binary still gates, scaled to the
//           parallelism that physically exists: >= 0.45x per available
//           hardware thread, and on a single-core host — where extra
//           workers can only add scheduling overhead — the 8-worker run
//           must stay within 40% of the sequential one (lockstep epochs
//           must not collapse under oversubscription).  The measured
//           hardware_concurrency is recorded in BENCH_fleet.json so the
//           number is interpretable wherever it was produced.
//   gate 3 (self-overhead): the observability layer must stay out of the
//           way — telemetry capture + rollup folds + self-scrape rows
//           must cost <= 1% of the sequential run's wall time.  The
//           fleet rollup's JSON rendering joins gate 1's digests.
//
// Regenerate BENCH_fleet.json via `./build/bench/fleet_scale` or
// `ctest --test-dir build -C Bench -L bench`.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>

#include "fleet/api.hpp"
#include "moneq/output.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "tsdb/export.hpp"

namespace {

namespace fleet = envmon::fleet;
namespace moneq = envmon::moneq;
using envmon::sim::Duration;

constexpr int kNodes = 1024;
constexpr std::int64_t kHorizonSeconds = 120;

// FNV-1a, so output digests are stable and printable.
std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

struct RunResult {
  std::uint64_t files_digest = 0;
  std::uint64_t db_digest = 0;
  std::uint64_t rollup_digest = 0;
  double wall_seconds = 0.0;
  double node_seconds_per_second = 0.0;
  std::size_t records_applied = 0;
  std::uint64_t ingest_stalls = 0;
  double telemetry_seconds = 0.0;
  double telemetry_fraction = 0.0;
  std::size_t self_scrape_rows = 0;
  double epoch_p99_s = 0.0;
};

RunResult run(int threads) {
  // The epoch histogram is process-global and idempotently re-acquired
  // by the runner; reset it so the p99 below reads this run only.
  envmon::obs::Histogram& epoch_seconds = envmon::obs::default_registry().histogram(
      "envmon_fleet_epoch_seconds", "Wall time per fleet lockstep epoch",
      envmon::obs::Histogram::exponential_bounds(1e-5, 4.0, 12));
  epoch_seconds.reset();
  fleet::FleetConfig config;
  config.nodes = kNodes;
  config.threads = threads;
  config.capabilities = {moneq::Capability::kBgqEmon};
  config.epoch = Duration::seconds(5);
  config.horizon = Duration::seconds(kHorizonSeconds);
  config.polling_interval = Duration::seconds(1);
  config.seed = 0x4d69726121ull;  // same fleet, every run
  // Board-level power records, the environmental database's granularity.
  config.ingest = fleet::IngestMode::kNodePower;
  config.database.max_insert_rate_per_second = 0.0;  // measure the engine
  moneq::MemoryOutput output;
  config.output = &output;

  fleet::FleetRunner runner;
  if (const auto s = runner.configure(std::move(config)); !s.is_ok()) {
    std::printf("FAIL: configure(%d threads): %s\n", threads, s.to_string().c_str());
    return {};
  }
  if (const auto s = runner.run(); !s.is_ok()) {
    std::printf("FAIL: run(%d threads): %s\n", threads, s.to_string().c_str());
    return {};
  }

  RunResult r;
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const auto& [name, content] : output.files()) {
    h = fnv1a(fnv1a(h, name), content);
  }
  r.files_digest = h;
  r.db_digest = fnv1a(0xcbf29ce484222325ull, envmon::tsdb::export_csv(runner.database()));
  // The fleet-wide rolled-up snapshot rides the determinism gate too:
  // its JSON rendering must be byte-identical at any worker count.
  r.rollup_digest = fnv1a(0xcbf29ce484222325ull,
                          envmon::obs::export_json(runner.telemetry()->fleet_rollup()));
  const auto report = runner.report().value();
  r.wall_seconds = report.wall_seconds;
  r.node_seconds_per_second = report.node_seconds_per_second;
  r.records_applied = report.records_applied;
  r.ingest_stalls = report.ingest_stalls;
  r.telemetry_seconds = report.telemetry_seconds;
  r.telemetry_fraction =
      report.wall_seconds > 0.0 ? report.telemetry_seconds / report.wall_seconds : 0.0;
  r.self_scrape_rows = report.self_scrape_rows;
  r.epoch_p99_s = epoch_seconds.quantile(0.99);
  return r;
}

}  // namespace

int main() {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("== Parallel fleet collection at %d nodes ==\n\n", kNodes);
  std::printf("hardware threads    : %u\n", hw);
  std::printf("virtual horizon     : %lld s per node (%.1f node-hours)\n\n",
              static_cast<long long>(kHorizonSeconds),
              static_cast<double>(kNodes) * static_cast<double>(kHorizonSeconds) / 3600.0);

  const int thread_counts[] = {1, 2, 8};
  RunResult results[3];
  for (int i = 0; i < 3; ++i) {
    results[i] = run(thread_counts[i]);
    if (results[i].records_applied == 0) return 1;
    std::printf("%d thread%s: %.3f s wall, %.0f node-s/s, %zu records, files %016llx db %016llx\n",
                thread_counts[i], thread_counts[i] == 1 ? " " : "s",
                results[i].wall_seconds, results[i].node_seconds_per_second,
                results[i].records_applied,
                static_cast<unsigned long long>(results[i].files_digest),
                static_cast<unsigned long long>(results[i].db_digest));
  }

  const bool deterministic =
      results[0].files_digest == results[1].files_digest &&
      results[1].files_digest == results[2].files_digest &&
      results[0].db_digest == results[1].db_digest &&
      results[1].db_digest == results[2].db_digest &&
      results[0].rollup_digest == results[1].rollup_digest &&
      results[1].rollup_digest == results[2].rollup_digest;

  // Telemetry self-overhead gate: capture + fold + self-scrape must cost
  // <= 1% of the sequential run's wall time (the 1-thread run is the
  // clean read — multi-worker runs overlap capture across shards, so
  // their summed seconds over a shorter wall overstate the share).
  const double telemetry_fraction = results[0].telemetry_fraction;
  const bool overhead_ok = telemetry_fraction <= 0.01;

  const double speedup_2 = results[1].node_seconds_per_second / results[0].node_seconds_per_second;
  const double speedup_8 = results[2].node_seconds_per_second / results[0].node_seconds_per_second;

  // Hardware-aware throughput gate (see header comment).
  double required = 0.0;
  const char* gate_desc = nullptr;
  if (hw >= 8) {
    required = 4.0;
    gate_desc = ">= 4x at 8 threads (8+ hardware threads)";
  } else if (hw >= 2) {
    required = 0.45 * static_cast<double>(std::min(hw, 8u));
    gate_desc = ">= 0.45x per hardware thread at 8 workers";
  } else {
    required = 0.6;
    gate_desc = "within 40% of sequential at 8 workers (single-core host)";
  }
  const bool throughput_ok = speedup_8 >= required;

  std::printf("\nspeedup 2 / 8 threads : %.2fx / %.2fx\n", speedup_2, speedup_8);
  std::printf("throughput gate       : %s -> %s (%.2fx vs %.2fx required)\n", gate_desc,
              throughput_ok ? "PASS" : "FAIL", speedup_8, required);
  std::printf("determinism gate      : %s (files, db, fleet rollup)\n",
              deterministic ? "PASS" : "FAIL");
  std::printf("telemetry overhead    : %s (%.3f%% of 1t wall, gate <= 1%%; %zu self rows)\n",
              overhead_ok ? "PASS" : "FAIL", telemetry_fraction * 100.0,
              results[0].self_scrape_rows);
  std::printf("epoch p99             : %.4f s (1t, via Histogram::quantile)\n",
              results[0].epoch_p99_s);

  std::FILE* out = std::fopen("BENCH_fleet.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n"
                 "  \"nodes\": %d,\n"
                 "  \"horizon_s\": %lld,\n"
                 "  \"hardware_concurrency\": %u,\n"
                 "  \"wall_s_1t\": %.3f,\n"
                 "  \"wall_s_2t\": %.3f,\n"
                 "  \"wall_s_8t\": %.3f,\n"
                 "  \"node_s_per_s_1t\": %.0f,\n"
                 "  \"node_s_per_s_2t\": %.0f,\n"
                 "  \"node_s_per_s_8t\": %.0f,\n"
                 "  \"speedup_2t\": %.2f,\n"
                 "  \"speedup_8t\": %.2f,\n"
                 "  \"speedup_8t_required\": %.2f,\n"
                 "  \"records_applied\": %zu,\n"
                 "  \"ingest_stalls_8t\": %llu,\n"
                 "  \"telemetry_s_1t\": %.4f,\n"
                 "  \"telemetry_fraction_1t\": %.5f,\n"
                 "  \"telemetry_fraction_8t\": %.5f,\n"
                 "  \"self_scrape_rows\": %zu,\n"
                 "  \"epoch_p99_s_1t\": %.4f,\n"
                 "  \"deterministic_1_2_8\": %s,\n"
                 "  \"throughput_gate\": %s,\n"
                 "  \"telemetry_overhead_gate\": %s\n"
                 "}\n",
                 kNodes, static_cast<long long>(kHorizonSeconds), hw,
                 results[0].wall_seconds, results[1].wall_seconds, results[2].wall_seconds,
                 results[0].node_seconds_per_second, results[1].node_seconds_per_second,
                 results[2].node_seconds_per_second, speedup_2, speedup_8, required,
                 results[0].records_applied,
                 static_cast<unsigned long long>(results[2].ingest_stalls),
                 results[0].telemetry_seconds, results[0].telemetry_fraction,
                 results[2].telemetry_fraction, results[0].self_scrape_rows,
                 results[0].epoch_p99_s, deterministic ? "true" : "false",
                 throughput_ok ? "true" : "false", overhead_ok ? "true" : "false");
    std::fclose(out);
    std::printf("\nwrote BENCH_fleet.json\n");
  }

  return deterministic && throughput_ok && overhead_ok ? 0 : 1;
}
