// Fleet collection at 100k-node scale behind the work-stealing shard
// scheduler (src/fleet/), gating the properties the engine was built
// for:
//
//   gate 1 (determinism): the same seed must produce byte-identical
//           per-node files and database contents at 1, 2, and 8 worker
//           threads — parallelism must be unobservable in the output.
//   gate 2 (throughput): sharding must actually buy wall time.  On a
//           machine with >= 8 hardware threads the 8-worker run must be
//           >= 3x the 1-worker run.  On 2-7 hardware threads the gate
//           scales to what physically exists (>= 0.45x per hardware
//           thread).  On a single-core host a parallel speedup is
//           *unmeasurable* — the JSON records "skipped_single_core"
//           rather than a vacuous pass — but oversubscription must
//           still be cheap: the 8-worker run must stay within 40% of
//           the sequential one.  The measured hardware_concurrency is
//           recorded so the numbers are interpretable anywhere.
//   gate 3 (memory): 100k nodes must actually fit.  The sequential
//           run's resident-set growth per node must stay under a fixed
//           envelope plus the node's rendered CSV (lazy construction,
//           shared defaults, sample spooling, and write-time release
//           are what keep it there).
//   gate 4 (self-overhead): telemetry capture + rollup folds +
//           self-scrape rows must cost <= 1% of the sequential run's
//           wall time (<= 2.5% for the short-horizon smoke shape).
//
// Regenerate BENCH_fleet.json via `./build/bench/fleet_scale` (full
// size; several minutes of virtual fleet).  `--smoke` runs a 4096-node
// short-horizon variant for CI and does NOT touch BENCH_fleet.json.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "fleet/api.hpp"
#include "moneq/output.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "tsdb/export.hpp"

namespace {

namespace fleet = envmon::fleet;
namespace moneq = envmon::moneq;
using envmon::sim::Duration;

// FNV-1a, so output digests are stable and printable.
std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

// Streams node files into a digest instead of storing them: at 100k
// nodes the rendered files would hold hundreds of MB that the bench
// only ever hashes.  The runner writes files in rank order, so the
// running digest is as deterministic as the files themselves.
class DigestOutput final : public moneq::OutputTarget {
 public:
  envmon::Status write(const std::string& filename, const std::string& content) override {
    digest_ = fnv1a(fnv1a(digest_, filename), content);
    ++files_;
    return envmon::Status::ok();
  }
  [[nodiscard]] std::uint64_t digest() const { return digest_; }
  [[nodiscard]] std::size_t files() const { return files_; }

 private:
  std::uint64_t digest_ = 0xcbf29ce484222325ull;
  std::size_t files_ = 0;
};

// Shapes keep the seed bench's poll:epoch ratio (several polls per
// merge) so the self-overhead gate measures steady-state telemetry cost
// rather than the capture:simulation ratio of an artificially sparse
// polling schedule.
struct BenchShape {
  int nodes = 100000;
  std::int64_t horizon_s = 60;
  std::int64_t epoch_s = 10;
  std::int64_t polling_s = 1;
  bool smoke = false;
};

struct RunResult {
  std::uint64_t files_digest = 0;
  std::uint64_t db_digest = 0;
  std::uint64_t rollup_digest = 0;
  double wall_seconds = 0.0;
  double node_seconds_per_second = 0.0;
  std::size_t records_applied = 0;
  std::uint64_t ingest_stalls = 0;
  std::uint64_t shard_steals = 0;
  double window_wait_seconds = 0.0;
  double telemetry_seconds = 0.0;
  double telemetry_fraction = 0.0;
  std::size_t self_scrape_rows = 0;
  double epoch_p99_s = 0.0;
  double bytes_per_node = 0.0;
  std::uint64_t peak_rss_bytes = 0;
  int nodes_alive = 0;
};

RunResult run(const BenchShape& shape, int threads) {
  // The epoch histogram is process-global and idempotently re-acquired
  // by the runner; reset it so the p99 below reads this run only.
  envmon::obs::Histogram& epoch_seconds = envmon::obs::default_registry().histogram(
      "envmon_fleet_epoch_seconds", "Wall time between fleet epoch merges",
      envmon::obs::Histogram::exponential_bounds(1e-5, 4.0, 12));
  epoch_seconds.reset();
  fleet::FleetConfig config;
  config.nodes = shape.nodes;
  config.threads = threads;
  config.capabilities = {moneq::Capability::kBgqEmon};
  config.epoch = Duration::seconds(shape.epoch_s);
  config.horizon = Duration::seconds(shape.horizon_s);
  config.polling_interval = Duration::seconds(shape.polling_s);
  config.seed = 0x4d69726121ull;  // same fleet, every run
  // Board-level power records, the environmental database's granularity.
  config.ingest = fleet::IngestMode::kNodePower;
  config.database.max_insert_rate_per_second = 0.0;  // measure the engine
  DigestOutput output;
  config.output = &output;

  fleet::FleetRunner runner;
  if (const auto s = runner.configure(std::move(config)); !s.is_ok()) {
    std::printf("FAIL: configure(%d threads): %s\n", threads, s.to_string().c_str());
    return {};
  }
  if (const auto s = runner.run(); !s.is_ok()) {
    std::printf("FAIL: run(%d threads): %s\n", threads, s.to_string().c_str());
    return {};
  }

  RunResult r;
  r.files_digest = output.digest();
  r.db_digest = fnv1a(0xcbf29ce484222325ull, envmon::tsdb::export_csv(runner.database()));
  // The fleet-wide rolled-up snapshot rides the determinism gate too:
  // its JSON rendering must be byte-identical at any worker count.
  r.rollup_digest = fnv1a(0xcbf29ce484222325ull,
                          envmon::obs::export_json(runner.telemetry()->fleet_rollup()));
  const auto report = runner.report().value();
  r.wall_seconds = report.wall_seconds;
  r.node_seconds_per_second = report.node_seconds_per_second;
  r.records_applied = report.records_applied;
  r.ingest_stalls = report.ingest_stalls;
  r.shard_steals = report.shard_steals;
  r.window_wait_seconds = report.window_wait_seconds;
  r.telemetry_seconds = report.telemetry_seconds;
  r.telemetry_fraction =
      report.wall_seconds > 0.0 ? report.telemetry_seconds / report.wall_seconds : 0.0;
  r.self_scrape_rows = report.self_scrape_rows;
  r.epoch_p99_s = epoch_seconds.quantile(0.99);
  r.bytes_per_node = report.bytes_per_node;
  r.peak_rss_bytes = report.peak_rss_bytes;
  r.nodes_alive = report.nodes_alive;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  BenchShape shape;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      shape.smoke = true;
      shape.nodes = 4096;
      shape.horizon_s = 30;
      shape.epoch_s = 10;
      shape.polling_s = 1;
    } else if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      shape.nodes = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--horizon") == 0 && i + 1 < argc) {
      shape.horizon_s = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--epoch") == 0 && i + 1 < argc) {
      shape.epoch_s = std::atoll(argv[++i]);
    } else {
      std::printf("usage: %s [--smoke] [--nodes N] [--horizon SECONDS]\n", argv[0]);
      return 2;
    }
  }
  if (shape.nodes <= 0 || shape.horizon_s <= 0) {
    std::printf("FAIL: nodes and horizon must be positive\n");
    return 2;
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("== Work-stealing fleet collection at %d nodes%s ==\n\n", shape.nodes,
              shape.smoke ? " (smoke)" : "");
  std::printf("hardware threads    : %u\n", hw);
  std::printf("virtual horizon     : %lld s per node (%.1f node-hours)\n\n",
              static_cast<long long>(shape.horizon_s),
              static_cast<double>(shape.nodes) * static_cast<double>(shape.horizon_s) / 3600.0);

  const int thread_counts[] = {1, 2, 8};
  RunResult results[3];
  for (int i = 0; i < 3; ++i) {
    results[i] = run(shape, thread_counts[i]);
    if (results[i].records_applied == 0) return 1;
    std::printf(
        "%d thread%s: %.3f s wall, %.0f node-s/s, %zu records, %llu steals, files %016llx db "
        "%016llx\n",
        thread_counts[i], thread_counts[i] == 1 ? " " : "s", results[i].wall_seconds,
        results[i].node_seconds_per_second, results[i].records_applied,
        static_cast<unsigned long long>(results[i].shard_steals),
        static_cast<unsigned long long>(results[i].files_digest),
        static_cast<unsigned long long>(results[i].db_digest));
  }

  const bool deterministic =
      results[0].files_digest == results[1].files_digest &&
      results[1].files_digest == results[2].files_digest &&
      results[0].db_digest == results[1].db_digest &&
      results[1].db_digest == results[2].db_digest &&
      results[0].rollup_digest == results[1].rollup_digest &&
      results[1].rollup_digest == results[2].rollup_digest;

  // Telemetry self-overhead gate: capture + fold + self-scrape must cost
  // <= 1% of the sequential run's wall time (the 1-thread run is the
  // clean read — multi-worker runs overlap capture across shards, so
  // their summed seconds over a shorter wall overstate the share).  The
  // smoke shape runs only 3 epochs, so the one-time cold snapshot builds
  // at the first merge are amortized over a third of the horizon; its
  // gate is proportionally looser.
  const double overhead_budget = shape.smoke ? 0.025 : 0.01;
  const double telemetry_fraction = results[0].telemetry_fraction;
  const bool overhead_ok = telemetry_fraction <= overhead_budget;

  // Memory gate: per-node resident growth on the sequential run (the
  // first run of the process — later runs inherit allocator reuse and
  // would under-report).  The budget is a fixed per-node envelope
  // (vendor substrate, profiler, one epoch's sample buffer) plus the
  // rendered CSV every node must retain until the post-run rank-order
  // write: ~24 rows per poll at ~40 bytes each, horizon/polling polls.
  // Zero means /proc was unavailable; the gate reports skipped rather
  // than wrong.
  const double polls_per_node =
      static_cast<double>(shape.horizon_s) / static_cast<double>(shape.polling_s) + 2.0;
  const double kBytesPerNodeBudget = 40.0 * 1024.0 + polls_per_node * 24.0 * 40.0;
  const double bytes_per_node = results[0].bytes_per_node;
  const bool memory_measured = bytes_per_node > 0.0;
  const bool memory_ok = !memory_measured || bytes_per_node <= kBytesPerNodeBudget;

  const double speedup_2 = results[1].node_seconds_per_second / results[0].node_seconds_per_second;
  const double speedup_8 = results[2].node_seconds_per_second / results[0].node_seconds_per_second;

  // Hardware-aware throughput gate (see header comment).  On a single
  // core a parallel speedup cannot be measured — the JSON says so
  // explicitly instead of emitting a vacuous `true` — but 8 workers
  // must still stay within 40% of sequential (oversubscription bound).
  const bool single_core = hw < 2;
  double required = 0.0;
  const char* gate_desc = nullptr;
  if (hw >= 8) {
    required = 3.0;
    gate_desc = ">= 3x at 8 threads (8+ hardware threads)";
  } else if (hw >= 2) {
    required = 0.45 * static_cast<double>(std::min(hw, 8u));
    gate_desc = ">= 0.45x per hardware thread at 8 workers";
  } else {
    required = 0.6;
    gate_desc = "within 40% of sequential at 8 workers (single-core host)";
  }
  const bool throughput_ok = speedup_8 >= required;
  const char* speedup_gate_json =
      single_core ? "\"skipped_single_core\"" : (throughput_ok ? "true" : "false");

  std::printf("\nspeedup 2 / 8 threads : %.2fx / %.2fx\n", speedup_2, speedup_8);
  std::printf("throughput gate       : %s -> %s (%.2fx vs %.2fx required)%s\n", gate_desc,
              throughput_ok ? "PASS" : "FAIL", speedup_8, required,
              single_core ? " [speedup unmeasurable on 1 core]" : "");
  std::printf("determinism gate      : %s (files, db, fleet rollup)\n",
              deterministic ? "PASS" : "FAIL");
  if (memory_measured) {
    std::printf("memory gate           : %s (%.0f bytes/node, budget %.0f; peak RSS %.0f MB)\n",
                memory_ok ? "PASS" : "FAIL", bytes_per_node, kBytesPerNodeBudget,
                static_cast<double>(results[0].peak_rss_bytes) / (1024.0 * 1024.0));
  } else {
    std::printf("memory gate           : SKIPPED (no /proc/self/status)\n");
  }
  std::printf("telemetry overhead    : %s (%.3f%% of 1t wall, gate <= %.1f%%; %zu self rows)\n",
              overhead_ok ? "PASS" : "FAIL", telemetry_fraction * 100.0,
              overhead_budget * 100.0, results[0].self_scrape_rows);
  std::printf("epoch p99             : %.4f s (1t, via Histogram::quantile)\n",
              results[0].epoch_p99_s);
  std::printf("liveness              : %d/%d nodes alive at horizon\n", results[0].nodes_alive,
              shape.nodes);

  // The smoke variant exists for CI wiring: it must never overwrite the
  // checked-in full-size BENCH_fleet.json.
  if (!shape.smoke) {
    std::FILE* out = std::fopen("BENCH_fleet.json", "w");
    if (out != nullptr) {
      std::fprintf(out,
                   "{\n"
                   "  \"nodes\": %d,\n"
                   "  \"horizon_s\": %lld,\n"
                   "  \"hardware_concurrency\": %u,\n"
                   "  \"wall_s_1t\": %.3f,\n"
                   "  \"wall_s_2t\": %.3f,\n"
                   "  \"wall_s_8t\": %.3f,\n"
                   "  \"node_s_per_s_1t\": %.0f,\n"
                   "  \"node_s_per_s_2t\": %.0f,\n"
                   "  \"node_s_per_s_8t\": %.0f,\n"
                   "  \"speedup_2t\": %.2f,\n"
                   "  \"speedup_8t\": %.2f,\n"
                   "  \"speedup_8t_required\": %.2f,\n"
                   "  \"speedup_gate\": %s,\n"
                   "  \"shard_steals_8t\": %llu,\n"
                   "  \"window_wait_s_8t\": %.4f,\n"
                   "  \"records_applied\": %zu,\n"
                   "  \"ingest_stalls_8t\": %llu,\n"
                   "  \"telemetry_s_1t\": %.4f,\n"
                   "  \"telemetry_fraction_1t\": %.5f,\n"
                   "  \"telemetry_fraction_8t\": %.5f,\n"
                   "  \"self_scrape_rows\": %zu,\n"
                   "  \"epoch_p99_s_1t\": %.4f,\n"
                   "  \"bytes_per_node_1t\": %.0f,\n"
                   "  \"bytes_per_node_budget\": %.0f,\n"
                   "  \"peak_rss_mb_1t\": %.0f,\n"
                   "  \"memory_gate\": %s,\n"
                   "  \"deterministic_1_2_8\": %s,\n"
                   "  \"telemetry_overhead_gate\": %s\n"
                   "}\n",
                   shape.nodes, static_cast<long long>(shape.horizon_s), hw,
                   results[0].wall_seconds, results[1].wall_seconds, results[2].wall_seconds,
                   results[0].node_seconds_per_second, results[1].node_seconds_per_second,
                   results[2].node_seconds_per_second, speedup_2, speedup_8, required,
                   speedup_gate_json,
                   static_cast<unsigned long long>(results[2].shard_steals),
                   results[2].window_wait_seconds, results[0].records_applied,
                   static_cast<unsigned long long>(results[2].ingest_stalls),
                   results[0].telemetry_seconds, results[0].telemetry_fraction,
                   results[2].telemetry_fraction, results[0].self_scrape_rows,
                   results[0].epoch_p99_s, bytes_per_node, kBytesPerNodeBudget,
                   static_cast<double>(results[0].peak_rss_bytes) / (1024.0 * 1024.0),
                   memory_measured ? (memory_ok ? "true" : "false") : "\"skipped_no_procfs\"",
                   deterministic ? "true" : "false", overhead_ok ? "true" : "false");
      std::fclose(out);
      std::printf("\nwrote BENCH_fleet.json\n");
    }
  }

  return deterministic && throughput_ok && memory_ok && overhead_ok ? 0 : 1;
}
