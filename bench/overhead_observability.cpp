// The paper's "overhead of collection" methodology, turned on our own
// telemetry: how much does the self-observability layer cost, and do
// the latency histograms it produces agree with the per-query costs the
// paper measured for each vendor mechanism?
//
// Part 1 times the fig3 RAPL Gauss scenario (real wall-clock time, many
// repetitions, best-of to shed scheduler noise) with instrumentation
// enabled vs disabled; the claim is < 5 % overhead, i.e. cheap enough
// to leave on.
//
// Part 2 runs one MonEQ profiler over three vendor mechanisms and reads
// the per-backend query-latency histograms back out of the Prometheus
// export: their means must reproduce the paper's ordering
// RAPL (0.03 ms) << NVML (1.3 ms) < Phi SysMgmt API (14.2 ms).
//
// Part 3 turns the question on the fleet engine: per-node registry
// partitions, epoch rollup folds, flight recorders, and the
// envmon.self.* self-scrape together must cost <= 1% of the fleet run's
// wall time (DESIGN.md §11's overhead budget).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "fleet/api.hpp"
#include "mic/card.hpp"
#include "mic/scif.hpp"
#include "mic/sysmgmt.hpp"
#include "moneq/backend_mic.hpp"
#include "moneq/backend_nvml.hpp"
#include "moneq/backend_rapl.hpp"
#include "moneq/profiler.hpp"
#include "moneq/output.hpp"
#include "nvml/api.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "rapl/reader.hpp"
#include "scenarios/scenarios.hpp"
#include "workloads/library.hpp"

namespace {

using Clock = std::chrono::steady_clock;

// Best-of-N wall time for one fig3 run, in microseconds.
double best_run_micros(int reps) {
  double best = 1e18;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = Clock::now();
    const auto result = envmon::scenarios::run_rapl_gauss({});
    const auto t1 = Clock::now();
    if (result.pkg_power.empty()) std::abort();  // keep the run observable
    const double us =
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(t1 - t0)
            .count();
    if (us < best) best = us;
  }
  return best;
}

const envmon::obs::Snapshot::HistogramRow* find_latency(
    const envmon::obs::Snapshot& snap, const std::string& backend) {
  for (const auto& row : snap.histograms) {
    if (row.name == "envmon_backend_query_latency_ms" &&
        row.labels == "backend=\"" + backend + "\"") {
      return &row;
    }
  }
  return nullptr;
}

double mean_ms(const envmon::obs::Snapshot::HistogramRow* row) {
  return (row == nullptr || row->count == 0) ? 0.0
                                             : row->sum / static_cast<double>(row->count);
}

}  // namespace

int main() {
  using namespace envmon;

  std::printf("== Observability self-overhead (fig3 RAPL Gauss scenario) ==\n\n");

  constexpr int kReps = 40;
  // Warm-up: page in code and registry before either timed pass.
  obs::set_enabled(true);
  (void)best_run_micros(3);

  const double with_obs = best_run_micros(kReps);
  obs::set_enabled(false);
  (void)best_run_micros(3);
  const double without_obs = best_run_micros(kReps);
  obs::set_enabled(true);

  const double overhead_pct = (with_obs - without_obs) / without_obs * 100.0;
  std::printf("uninstrumented run : %9.1f us (best of %d)\n", without_obs, kReps);
  std::printf("instrumented run   : %9.1f us (best of %d)\n", with_obs, kReps);
  std::printf("self-overhead      : %9.2f %%  (target: < 5 %%)\n", overhead_pct);
  std::printf("verdict            : %s\n\n", overhead_pct < 5.0 ? "PASS" : "FAIL");

  std::printf("== Per-backend query-latency histograms (one profiler, 3 mechanisms) ==\n\n");
  obs::default_registry().reset_values();
  {
    sim::Engine engine;

    // Host CPU via RAPL.
    rapl::CpuPackage package(engine);
    rapl::MsrRaplReader reader(package, rapl::Credentials{true, 0});
    moneq::RaplBackend cpu_backend(reader);

    // GPU via NVML.
    nvml::NvmlLibrary library(engine);
    library.attach_device(std::make_shared<nvml::GpuDevice>(nvml::k20_spec()));
    (void)library.init();
    nvml::NvmlDeviceHandle gpu;
    (void)library.device_get_handle_by_index(0, &gpu);
    moneq::NvmlBackend gpu_backend(library, gpu, "gpu_board");

    // Xeon Phi via the in-band SysMgmt API (the 14.2 ms path).
    mic::PhiCard card(engine);
    mic::ScifNetwork network;
    const mic::ScifNodeId card_node = 1;
    mic::SysMgmtService service(card, network, card_node);
    auto client = mic::SysMgmtClient::connect(network, card_node);
    if (!client.is_ok()) {
      std::printf("FAIL: SysMgmt connect: %s\n", client.status().to_string().c_str());
      return 1;
    }
    moneq::MicInbandBackend phi_backend(client.value());

    const auto cpu_work = workloads::dgemm({sim::Duration::seconds(60), 0.8, 0.5});
    package.run_workload(&cpu_work, engine.now());

    smpi::World world(1);
    moneq::NodeProfiler profiler(engine, world, 0);
    if (!profiler.add_backend(cpu_backend).is_ok() ||
        !profiler.add_backend(gpu_backend).is_ok() ||
        !profiler.add_backend(phi_backend).is_ok() ||
        !profiler.set_polling_interval(sim::Duration::millis(200)).is_ok() ||
        !profiler.initialize().is_ok()) {
      std::printf("FAIL: profiler assembly\n");
      return 1;
    }
    engine.run_until(sim::SimTime::from_seconds(60.0));
    if (!profiler.finalize().is_ok()) {
      std::printf("FAIL: finalize\n");
      return 1;
    }
  }

  std::printf("%s\n", obs::export_prometheus().c_str());

  const auto snap = obs::default_registry().snapshot();
  const double rapl = mean_ms(find_latency(snap, "rapl_msr"));
  const double nvml = mean_ms(find_latency(snap, "nvml"));
  const double phi = mean_ms(find_latency(snap, "mic_sysmgmt_api"));
  std::printf("mean per-poll collection cost:\n");
  std::printf("  rapl_msr        : %7.3f ms  (paper per query: ~0.03 ms)\n", rapl);
  std::printf("  nvml            : %7.3f ms  (paper per query: ~1.3 ms)\n", nvml);
  std::printf("  mic_sysmgmt_api : %7.3f ms  (paper per query: ~14.2 ms)\n", phi);
  const bool ordered = rapl > 0.0 && rapl * 5.0 < nvml && nvml < phi;
  std::printf("ordering RAPL << NVML < Phi API: %s\n", ordered ? "PASS" : "FAIL");

  std::printf("\n== Fleet telemetry self-overhead (256 nodes, 2 workers) ==\n\n");
  fleet::FleetConfig config;
  config.nodes = 256;
  config.threads = 2;
  config.capabilities = {moneq::Capability::kBgqEmon};
  config.epoch = sim::Duration::seconds(5);
  config.horizon = sim::Duration::seconds(120);
  config.polling_interval = sim::Duration::millis(250);  // MonEQ's default cadence
  config.ingest = fleet::IngestMode::kPerSample;
  config.database.max_insert_rate_per_second = 0.0;
  // A representative run, not a degenerate one: nodes render their
  // output files and every sample rides the ingest path, so the budget
  // is measured against the work a real fleet run does.
  moneq::MemoryOutput fleet_output;
  config.output = &fleet_output;

  fleet::FleetRunner runner;
  if (!runner.configure(std::move(config)).is_ok() || !runner.run().is_ok()) {
    std::printf("FAIL: fleet run\n");
    return 1;
  }
  const auto report = runner.report().value();
  const double fleet_fraction =
      report.wall_seconds > 0.0 ? report.telemetry_seconds / report.wall_seconds : 0.0;
  std::printf("fleet wall time    : %9.3f s\n", report.wall_seconds);
  std::printf("telemetry time     : %9.4f s (capture + fold + self-scrape)\n",
              report.telemetry_seconds);
  std::printf("self-scrape rows   : %9zu  recorder events: %llu\n", report.self_scrape_rows,
              static_cast<unsigned long long>(report.recorder_events));
  std::printf("fleet self-overhead: %9.3f %%  (budget: <= 1 %%)\n", fleet_fraction * 100.0);
  const bool fleet_ok = fleet_fraction <= 0.01;
  std::printf("verdict            : %s\n", fleet_ok ? "PASS" : "FAIL");

  return (overhead_pct < 5.0 && ordered && fleet_ok) ? 0 : 1;
}
