// The Section III tool comparison: MonEQ vs PAPI vs TAU vs PowerPack.
//
// Regenerates the support matrix the paper walks through in prose, then
// runs the same Gaussian-elimination workload under each tool on the
// same simulated package and compares what they report and what they
// cost.

#include <cstdio>

#include "analysis/render.hpp"
#include "common/strings.hpp"
#include "moneq/backend_rapl.hpp"
#include "moneq/profiler.hpp"
#include "rapl/reader.hpp"
#include "tools/papi.hpp"
#include "tools/powerpack.hpp"
#include "tools/tau.hpp"
#include "workloads/library.hpp"

namespace {

using namespace envmon;

void print_support_matrix() {
  analysis::TableRenderer table({"Tool", "BG/Q", "RAPL", "NVML", "Xeon Phi", "Notes"});
  table.add_row({"MonEQ (this work)", "yes", "yes", "yes", "yes",
                 "2-line API, SIGALRM polling, tagging, per-node files"});
  table.add_row({"PAPI 5", "no", "yes", "yes", "yes",
                 "event sets; caller polls at designated intervals"});
  table.add_row({"TAU 2.23", "no", "yes", "no", "no",
                 "RAPL through the MSR drivers only"});
  table.add_row({"PowerPack 3.0", "no", "no", "no", "no",
                 "WattsUp + NI meters; no new-generation interfaces"});
  std::printf("%s\n", table.render().c_str());
}

void run_comparison() {
  const auto workload =
      workloads::gaussian_elimination({sim::Duration::seconds(40),
                                       sim::Duration::from_seconds(3.0),
                                       sim::Duration::from_seconds(0.5),
                                       sim::Duration::from_seconds(0.15), 0.14});
  const auto interval = sim::Duration::millis(100);
  const auto span = sim::Duration::seconds(40);

  analysis::TableRenderer table({"Tool", "mean PKG power (W)", "queries",
                                 "collection cost (ms)", "notes"});

  {  // MonEQ
    sim::Engine engine;
    rapl::CpuPackage pkg(engine);
    pkg.run_workload(&workload, engine.now());
    rapl::MsrRaplReader reader(pkg, rapl::Credentials{true, 0});
    moneq::RaplBackend backend(reader);
    smpi::World world(1);
    moneq::NodeProfiler profiler(engine, world, 0);
    (void)profiler.add_backend(backend);
    (void)profiler.set_polling_interval(interval);
    (void)profiler.initialize();
    engine.run_until(engine.now() + span);
    (void)profiler.finalize();
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& s : profiler.samples()) {
      if (s.domain == "PKG" && s.quantity == moneq::Quantity::kPowerWatts) {
        sum += s.value;
        ++n;
      }
    }
    table.add_row({"MonEQ", format_double(sum / static_cast<double>(n), 2),
                   std::to_string(profiler.overhead().polls),
                   format_double(profiler.overhead().collection.to_millis(), 2),
                   "timer-driven; also wrote the per-node file"});
  }

  {  // PAPI-style caller polling
    sim::Engine engine;
    rapl::CpuPackage pkg(engine);
    pkg.run_workload(&workload, engine.now());
    tools::PapiLibrary papi(engine);
    papi.add_rapl_component(pkg, rapl::Credentials{true, 0});
    (void)papi.library_init();
    int eventset = 0;
    (void)papi.create_eventset(&eventset);
    (void)papi.add_event(eventset, "rapl:::PACKAGE_ENERGY:PACKAGE0");
    (void)papi.start(eventset);
    std::vector<long long> values;
    long long last_nj = 0;
    double sum_w = 0.0;
    std::size_t n = 0;
    const auto steps = span / interval;
    for (std::int64_t i = 1; i <= steps; ++i) {
      engine.run_until(sim::SimTime::zero() + i * interval);
      if (papi.read(eventset, &values) == tools::kPapiOk) {
        sum_w += static_cast<double>(values[0] - last_nj) * 1e-9 / interval.to_seconds();
        last_nj = values[0];
        ++n;
      }
    }
    (void)papi.stop(eventset, &values);
    table.add_row({"PAPI (rapl component)", format_double(sum_w / static_cast<double>(n), 2),
                   std::to_string(n + 2),
                   format_double(papi.cost().total().to_millis(), 2),
                   "caller-driven reads; energy in nJ"});
  }

  {  // TAU region profiling
    sim::Engine engine;
    rapl::CpuPackage pkg(engine);
    pkg.run_workload(&workload, engine.now());
    tools::TauPowerProfiler tau(engine, pkg, rapl::Credentials{true, 0}, interval);
    (void)tau.start();
    (void)tau.region_start("gauss_elim");
    engine.run_until(engine.now() + span);
    (void)tau.region_stop("gauss_elim");
    (void)tau.stop();
    for (const auto& p : tau.profiles()) {
      if (p.name != "gauss_elim") continue;
      table.add_row({"TAU (RAPL via MSR)", format_double(p.mean_power().value(), 2),
                     std::to_string(p.samples),
                     format_double(tau.cost().total().to_millis(), 2),
                     "attributed to the instrumented region"});
    }
  }

  {  // PowerPack-style wall meter
    sim::Engine engine;
    rapl::CpuPackage pkg(engine);
    pkg.run_workload(&workload, engine.now());
    // The WattsUp sees the whole node behind the PSU; the node model here
    // is CPU + DRAM + a 38 W rest-of-node floor folded into a device.
    power::DevicePowerModel node;
    node.set_rail(power::Rail::kCpuCore, power::RailModel{Watts{1.6}, Watts{42.0}, Volts{1.0}});
    node.set_rail(power::Rail::kDram, power::RailModel{Watts{1.3}, Watts{9.5}, Volts{1.35}});
    node.set_rail(power::Rail::kBoard, power::RailModel{Watts{38.0}, Watts{0.0}, Volts{12.0}});
    node.run_workload(&workload, engine.now());
    tools::WattsUpMeter meter(engine, node);
    meter.start();
    engine.run_until(engine.now() + span);
    meter.stop();
    double sum = 0.0;
    for (const auto& p : meter.log()) sum += p.value;
    table.add_row({"PowerPack (WattsUp)",
                   format_double(sum / static_cast<double>(meter.log().size()), 2),
                   std::to_string(meter.log().size()), "0.00",
                   "AC wall power incl. PSU loss; 1 Hz; no component split"});
  }

  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main() {
  std::printf("== Section III: power profiling tools compared ==\n\n");
  print_support_matrix();
  run_comparison();
  std::printf("Readings: the three RAPL-based tools agree on mean package power; the\n"
              "wall meter reads ~2x higher because it sees the whole node through the\n"
              "PSU. PowerPack needs no software access at all -- and can attribute\n"
              "nothing below the plug.\n");
  return 0;
}
