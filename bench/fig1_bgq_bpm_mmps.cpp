// Figure 1: power as observed from the data collected at the bulk power
// supplies while the MMPS benchmark runs — environmental-database
// samples every ~2.5 minutes (the cadence of the paper's timestamp axis),
// with the idle period before and after the job clearly observable.
//
// The job occupies one midplane (16 node boards); the y-axis is the
// per-BPM share of the rack's AC input, which is what the environmental
// database reports per supply.

#include <cstdio>

#include "analysis/render.hpp"
#include "analysis/series_ops.hpp"
#include "scenarios/scenarios.hpp"

namespace {
// Modeled BPM population of one rack (shared AC->48V shelves).
constexpr double kBpmsPerRack = 36.0;
}  // namespace

int main() {
  using namespace envmon;

  std::printf("== Figure 1: BPM input power, MMPS job, environmental database ==\n\n");

  scenarios::BgqMmpsOptions options;
  options.job_duration = sim::Duration::seconds(1500);
  options.idle_margin = sim::Duration::seconds(600);
  options.env_poll_interval = sim::Duration::seconds(150);
  options.job_boards = 16;  // one midplane
  const auto result = scenarios::run_bgq_mmps(options);

  std::vector<sim::TracePoint> per_bpm;
  per_bpm.reserve(result.bpm_input_power.size());
  for (const auto& p : result.bpm_input_power) {
    per_bpm.push_back({p.t, p.value / kBpmsPerRack});
  }

  analysis::ChartOptions chart;
  chart.title = "Per-BPM input power (W) vs time -- idle / MMPS on one midplane / idle";
  chart.y_label = "Input Power (Watts)";
  std::printf("%s\n", analysis::render_chart(per_bpm, chart).c_str());

  std::printf("samples collected by the environmental database: %zu\n", per_bpm.size());
  const double idle = analysis::mean_in_window(per_bpm, sim::SimTime::zero(),
                                               sim::SimTime::from_seconds(590));
  const double active =
      analysis::mean_in_window(per_bpm, sim::SimTime::from_seconds(700),
                               sim::SimTime::from_seconds(2090));
  const double idle_after = analysis::mean_in_window(
      per_bpm, sim::SimTime::from_seconds(2250), sim::SimTime::from_seconds(2700));
  std::printf("idle plateau (before) : %8.1f W   (paper figure floor:   ~850 W)\n", idle);
  std::printf("MMPS plateau          : %8.1f W   (paper figure plateau: ~1600-1700 W)\n",
              active);
  std::printf("idle plateau (after)  : %8.1f W\n", idle_after);
  std::printf("shape check           : idle visible before AND after the job [%s]\n",
              active > idle * 1.3 && idle_after < active / 1.3 ? "ok" : "FAIL");
  std::printf("\nNote: absolute watts depend on how many supplies share the load; the\n"
              "reproduced result is the shape -- sparse ~2.5-minute samples, visible\n"
              "idle shoulders, flat job plateau (compare the dense 560 ms MonEQ view\n"
              "of the same job in Figure 2).\n");

  std::printf("\ncsv:time_s,per_bpm_input_power_w\n");
  for (const auto& p : per_bpm) {
    std::printf("csv:%.0f,%.1f\n", p.t.to_seconds(), p.value);
  }
  return 0;
}
