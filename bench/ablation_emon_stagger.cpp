// Ablation: EMON's non-simultaneous domain sampling.
//
// Paper §II-A: "the underlying power measurement infrastructure does not
// measure all domains at the exact same time.  This may result in some
// inconsistent cases, such as the case when a piece of code begins to
// stress both the CPU and memory at the same time."
//
// We build exactly that code: a workload whose CPU and memory phases
// step up at the same instant, then measure the apparent lag between the
// chip-core and DRAM domains in the EMON stream, as a function of the
// stagger span.

#include <cstdio>

#include "analysis/stats_ext.hpp"
#include "analysis/render.hpp"
#include "bgq/emon.hpp"
#include "bgq/machine.hpp"
#include "common/strings.hpp"
#include "power/profile.hpp"
#include "workloads/library.hpp"

int main() {
  using namespace envmon;
  using power::Rail;

  std::printf("== Ablation: EMON domain stagger vs apparent CPU/DRAM inconsistency ==\n\n");

  // Square wave: CPU and DRAM step together every ~4.123 s.  The odd
  // period keeps the step edges incommensurate with the EMON generation
  // grid, so edges land uniformly within generations.
  power::ProfileBuilder b;
  b.phase(sim::Duration::millis(4123), "low", {{Rail::kCpuCore, 0.1}, {Rail::kDram, 0.1}});
  b.phase(sim::Duration::millis(4123), "high", {{Rail::kCpuCore, 0.9}, {Rail::kDram, 0.9}});
  b.repeat_last(2, 30);
  const auto workload = std::move(b).build();

  analysis::TableRenderer table({"generation period", "stagger span", "inconsistent reads",
                                 "of total", "note"});
  for (const std::int64_t period_ms : {560, 1120, 2240}) {
    bgq::BgqMachine machine;
    machine.run_workload(&workload, sim::SimTime::zero());
    bgq::EmonOptions options;
    options.generation_period = sim::Duration::millis(period_ms);
    bgq::EmonSession emon(machine.board(0), options);

    // Poll every generation; count reads where chip core and DRAM sit on
    // opposite sides of a step (one high, one low).
    int inconsistent = 0, total = 0;
    for (double t = 2.0 * static_cast<double>(period_ms) / 1000.0; t < 240.0;
         t += static_cast<double>(period_ms) / 1000.0) {
      const auto reading = emon.read(sim::SimTime::from_seconds(t));
      if (!reading.is_ok()) continue;
      const auto& domains = reading.value().domains;
      const double chip = domains[bgq::domain_index(bgq::Domain::kChipCore)].power().value();
      const double dram = domains[bgq::domain_index(bgq::Domain::kDram)].power().value();
      // Normalized positions between each domain's low/high plateaus.
      const double chip_pos = (chip - 438.0) / (1222.0 - 438.0);  // 0.1 vs 0.9 util
      const double dram_pos = (dram - 212.0) / (708.0 - 212.0);
      ++total;
      if ((chip_pos > 0.5) != (dram_pos > 0.5)) ++inconsistent;
    }
    const double span_ms = static_cast<double>(period_ms) * 0.7;  // modeled stagger window
    table.add_row({std::to_string(period_ms) + " ms", format_double(span_ms, 0) + " ms",
                   std::to_string(inconsistent),
                   format_double(100.0 * inconsistent / std::max(1, total), 1) + " %",
                   inconsistent > 0 ? "CPU/DRAM disagree at step edges" : "-"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("The longer the generation (and so the stagger span), the more reads\n"
              "catch the chip-core and DRAM domains on opposite sides of a load step\n"
              "-- the 'inconsistent cases' the paper warns EMON users about. The\n"
              "fraction scales with stagger_span / step_period.\n");
  return 0;
}
