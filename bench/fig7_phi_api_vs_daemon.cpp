// Figure 7: boxplot of power data for both the SysMgmt API ("in-band")
// and MICRAS daemon capture methods on the Xeon Phi running a no-op
// workload.  The API distribution sits a few watts above the daemon's —
// a slight but statistically significant difference, because servicing
// each in-band query wakes cores on the card.

#include <cstdio>
#include <vector>

#include "analysis/render.hpp"
#include "common/stats.hpp"
#include "scenarios/scenarios.hpp"

int main() {
  using namespace envmon;

  std::printf("== Figure 7: Xeon Phi power, SysMgmt API vs MICRAS daemon ==\n\n");

  const auto api =
      scenarios::run_phi_noop(scenarios::PhiCollector::kInbandApi, sim::Duration::seconds(120));
  const auto daemon = scenarios::run_phi_noop(scenarios::PhiCollector::kMicrasDaemon,
                                              sim::Duration::seconds(120));

  const std::vector<analysis::BoxplotSeries> series = {
      {"API (in-band)", boxplot_stats(api.power_samples)},
      {"Daemon", boxplot_stats(daemon.power_samples)},
  };
  std::printf("%s\n", analysis::render_boxplot(series).c_str());

  const auto t = welch_t_test(api.power_samples, daemon.power_samples);
  std::printf("API median    : %7.2f W   (paper boxplot: upper box, ~115-118 W)\n",
              series[0].stats.median);
  std::printf("Daemon median : %7.2f W   (paper boxplot: lower box, ~112-115 W)\n",
              series[1].stats.median);
  std::printf("median shift  : %7.2f W   (paper: 'while slight, ... statistically\n"
              "                             significant difference')\n",
              series[0].stats.median - series[1].stats.median);
  std::printf("Welch t-test  : t = %.1f, dof = %.0f, p = %.2e  [%s]\n", t.t, t.dof,
              t.p_value, t.p_value < 0.001 ? "significant" : "NOT significant");
  std::printf("query costs   : API %.2f ms vs daemon %.3f ms per query\n"
              "                (paper: 'a staggering 14.2 ms' vs 'about 0.04 ms')\n",
              api.mean_query_cost_ms, daemon.mean_query_cost_ms);
  std::printf("overhead at the paper's ~100 ms polling: API %.1f%%, daemon %.3f%%\n"
              "                (paper: 'about 14%%' vs 'nearly the same ... as RAPL')\n",
              100.0 * api.mean_query_cost_ms / 100.0,
              100.0 * daemon.mean_query_cost_ms / 100.0);

  std::printf("\ncsv:method,sample_w\n");
  for (const double v : api.power_samples) std::printf("csv:api,%.2f\n", v);
  for (const double v : daemon.power_samples) std::printf("csv:daemon,%.2f\n", v);
  return 0;
}
