// Table I: comparison of environmental data available for the Intel Xeon
// Phi, NVIDIA GPUs, Blue Gene/Q, and RAPL — regenerated from the
// capability registry the MonEQ backends publish.

#include <cstdio>
#include <string>

#include "analysis/render.hpp"
#include "moneq/capability.hpp"

int main() {
  using namespace envmon;
  using moneq::PlatformId;

  std::printf("== Table I: environmental data available per platform ==\n\n");

  analysis::TableRenderer table(
      {"Group", "Sensor", "Xeon Phi", "NVML", "Blue Gene/Q", "RAPL"});
  std::string last_group;
  for (const auto row : moneq::all_sensor_rows()) {
    std::string group{moneq::row_group(row)};
    if (group == last_group) {
      group.clear();
    } else {
      last_group = group;
    }
    table.add_row({group, std::string(moneq::row_label(row)),
                   std::string(to_string(moneq::availability(PlatformId::kXeonPhi, row))),
                   std::string(to_string(moneq::availability(PlatformId::kNvml, row))),
                   std::string(to_string(moneq::availability(PlatformId::kBgq, row))),
                   std::string(to_string(moneq::availability(PlatformId::kRapl, row)))});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Paper cross-check (Section IV prose):\n");
  std::printf("  * total power consumption is the only universally available datum\n");
  std::printf("  * memory power is separable only on Blue Gene/Q (DRAM domain) and RAPL\n");
  std::printf("  * temperature exists on the accelerators; BG/Q exposes it only in the\n");
  std::printf("    rack-level environmental data; RAPL not at all\n");
  std::printf("  * fans are N/A for the water-cooled BG/Q and for a bare CPU socket\n");
  return 0;
}
