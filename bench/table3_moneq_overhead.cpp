// Table III: time overhead for MonEQ in seconds on Mira — the toy
// application with a fixed ~202.7 s runtime profiled at the most
// frequent interval possible (560 ms), at 32 / 512 / 1024 nodes.

#include <cstdio>

#include "analysis/render.hpp"
#include "common/strings.hpp"
#include "scenarios/scenarios.hpp"

int main() {
  using namespace envmon;

  std::printf("== Table III: time overhead for MonEQ in seconds on Mira ==\n\n");

  const double runtimes[3] = {202.78, 202.73, 202.74};  // the paper's rows
  const int scales[3] = {32, 512, 1024};
  scenarios::MoneqOverheadRow rows[3];
  for (int i = 0; i < 3; ++i) {
    rows[i] = scenarios::run_moneq_overhead(scales[i],
                                            sim::Duration::from_seconds(runtimes[i]));
  }

  analysis::TableRenderer table({"", "32 Nodes", "512 Nodes", "1024 Nodes"});
  const auto fmt = [](double v, int prec) { return format_double(v, prec); };
  table.add_row({"Application Runtime", fmt(rows[0].app_runtime_s, 2),
                 fmt(rows[1].app_runtime_s, 2), fmt(rows[2].app_runtime_s, 2)});
  table.add_row({"Time for Initialization", fmt(rows[0].init_s, 4), fmt(rows[1].init_s, 4),
                 fmt(rows[2].init_s, 4)});
  table.add_row({"Time for Finalize", fmt(rows[0].finalize_s, 4), fmt(rows[1].finalize_s, 4),
                 fmt(rows[2].finalize_s, 4)});
  table.add_row({"Time for Collection", fmt(rows[0].collection_s, 4),
                 fmt(rows[1].collection_s, 4), fmt(rows[2].collection_s, 4)});
  table.add_row({"Total Time for MonEQ", fmt(rows[0].total_s, 4), fmt(rows[1].total_s, 4),
                 fmt(rows[2].total_s, 4)});
  std::printf("%s\n", table.render().c_str());

  std::printf("Paper reference values:\n");
  std::printf("  Initialization 0.0027 / 0.0032 / 0.0033; Finalize 0.1510 / 0.1550 /"
              " 0.3347;\n  Collection 0.3871 (all); Total 0.5409 / 0.5455 / 0.7251\n\n");
  std::printf("Shape checks: collection scale-invariant [%s]; init nearly flat [%s];\n"
              "finalize flat to 512 then ~2x at 1024 [%s]; total overhead at 1K ~0.4%%"
              " [measured %.2f%%]\n",
              rows[0].collection_s == rows[2].collection_s ? "ok" : "FAIL",
              (rows[2].init_s - rows[0].init_s) < 0.001 ? "ok" : "FAIL",
              (rows[2].finalize_s / rows[1].finalize_s) > 1.8 ? "ok" : "FAIL",
              100.0 * rows[2].total_s / rows[2].app_runtime_s);
  return 0;
}
