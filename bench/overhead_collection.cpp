// The Section II cross-platform collection-cost comparison:
//
//   mechanism        paper's per-query cost    overhead
//   RAPL MSR         0.03 ms                   --
//   MICRAS daemon    0.04 ms                   ~= RAPL
//   BG/Q EMON        1.10 ms                   0.19%
//   NVML             1.3 ms                    1.25%
//   Phi SCIF API     14.2 ms                   14%
//
// Two measurements per mechanism:
//   * the modeled virtual-time cost charged to the profiled application
//     (printed as a table; this is the paper's number), and
//   * the real host wall-clock of our emulated query path, via
//     google-benchmark (how expensive the simulation itself is).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "analysis/render.hpp"
#include "bgq/emon.hpp"
#include "bgq/machine.hpp"
#include "common/strings.hpp"
#include "ipmi/bmc.hpp"
#include "mic/micras.hpp"
#include "mic/smc.hpp"
#include "mic/sysmgmt.hpp"
#include "nvml/api.hpp"
#include "rapl/reader.hpp"

namespace {

using namespace envmon;

void print_virtual_cost_table() {
  sim::Engine engine;

  bgq::BgqMachine machine;
  bgq::EmonSession emon(machine.board(0));
  (void)emon.read(sim::SimTime::from_seconds(2));

  rapl::CpuPackage pkg(engine);
  rapl::MsrRaplReader msr(pkg, rapl::Credentials{true, 0});
  (void)msr.read_energy(rapl::RaplDomain::kPackage, sim::SimTime::from_seconds(1));

  nvml::NvmlLibrary nvml_lib(engine);
  nvml_lib.attach_device(std::make_shared<nvml::GpuDevice>(nvml::k20_spec()));
  (void)nvml_lib.init();
  nvml::NvmlDeviceHandle handle;
  (void)nvml_lib.device_get_handle_by_index(0, &handle);
  unsigned mw = 0;
  (void)nvml_lib.device_get_power_usage(handle, &mw);

  mic::PhiCard card(engine);
  mic::ScifNetwork net;
  mic::SysMgmtService service(card, net, 1);
  auto scif_client = mic::SysMgmtClient::connect(net, 1);
  (void)scif_client.value().power(engine.now());
  mic::MicrasDaemon daemon(card);
  daemon.start();
  sim::CostMeter daemon_meter;
  (void)daemon.read_file(mic::kPowerFile, engine.now(), &daemon_meter);

  std::printf("== Per-query collection cost charged to the application ==\n\n");
  analysis::TableRenderer table(
      {"Mechanism", "measured (ms)", "paper (ms)", "overhead at paper's rate"});
  table.add_row({"RAPL MSR read", format_double(msr.cost().mean_per_query().to_millis(), 3),
                 "0.03", "--"});
  table.add_row({"Phi MICRAS daemon read",
                 format_double(daemon_meter.mean_per_query().to_millis(), 3), "0.04",
                 "~= RAPL"});
  table.add_row({"BG/Q EMON read", format_double(emon.cost().mean_per_query().to_millis(), 3),
                 "1.10", "0.19% at 560 ms"});
  table.add_row({"NVML device query",
                 format_double(nvml_lib.cost().mean_per_query().to_millis(), 3), "1.3",
                 "1.25% at ~100 ms"});
  table.add_row({"Phi SysMgmt API (SCIF)",
                 format_double(scif_client.value().cost().mean_per_query().to_millis(), 3),
                 "14.2", "14% at ~100 ms"});
  std::printf("%s\n", table.render().c_str());
  std::printf("Ordering check: MSR < daemon << EMON < NVML << SCIF API [%s]\n\n",
              msr.cost().mean_per_query() < daemon_meter.mean_per_query() &&
                      daemon_meter.mean_per_query() < emon.cost().mean_per_query() &&
                      emon.cost().mean_per_query() < nvml_lib.cost().mean_per_query() &&
                      nvml_lib.cost().mean_per_query() <
                          scif_client.value().cost().mean_per_query()
                  ? "ok"
                  : "FAIL");
}

// --- host wall-clock of the emulated query paths ---

void BM_EmonRead(benchmark::State& state) {
  bgq::BgqMachine machine;
  bgq::EmonSession emon(machine.board(0));
  std::int64_t t = 2'000'000'000;
  for (auto _ : state) {
    auto r = emon.read(sim::SimTime::from_ns(t));
    benchmark::DoNotOptimize(r);
    t += 560'000'000;
  }
}
BENCHMARK(BM_EmonRead);

void BM_MsrRead(benchmark::State& state) {
  sim::Engine engine;
  rapl::CpuPackage pkg(engine);
  rapl::MsrRaplReader reader(pkg, rapl::Credentials{true, 0});
  std::int64_t t = 1'000'000'000;
  for (auto _ : state) {
    auto r = reader.read_energy(rapl::RaplDomain::kPackage, sim::SimTime::from_ns(t));
    benchmark::DoNotOptimize(r);
    t += 100'000'000;
  }
}
BENCHMARK(BM_MsrRead);

void BM_NvmlPowerQuery(benchmark::State& state) {
  sim::Engine engine;
  nvml::NvmlLibrary lib(engine);
  lib.attach_device(std::make_shared<nvml::GpuDevice>(nvml::k20_spec()));
  (void)lib.init();
  nvml::NvmlDeviceHandle handle;
  (void)lib.device_get_handle_by_index(0, &handle);
  engine.run_until(sim::SimTime::from_seconds(1));
  for (auto _ : state) {
    unsigned mw = 0;
    benchmark::DoNotOptimize(lib.device_get_power_usage(handle, &mw));
    benchmark::DoNotOptimize(mw);
  }
}
BENCHMARK(BM_NvmlPowerQuery);

void BM_ScifApiQuery(benchmark::State& state) {
  sim::Engine engine;
  mic::PhiCard card(engine);
  mic::ScifNetwork net;
  mic::SysMgmtService service(card, net, 1);
  auto client = mic::SysMgmtClient::connect(net, 1);
  engine.run_until(sim::SimTime::from_seconds(1));
  for (auto _ : state) {
    auto r = client.value().power(engine.now());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ScifApiQuery);

void BM_MicrasFileRead(benchmark::State& state) {
  sim::Engine engine;
  mic::PhiCard card(engine);
  mic::MicrasDaemon daemon(card);
  daemon.start();
  engine.run_until(sim::SimTime::from_seconds(1));
  for (auto _ : state) {
    auto text = daemon.read_file(mic::kPowerFile, engine.now());
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_MicrasFileRead);

void BM_IpmbSensorRead(benchmark::State& state) {
  sim::Engine engine;
  mic::PhiCard card(engine);
  ipmi::Bmc bmc;
  mic::Smc smc(card);
  smc.attach_to_bmc(bmc);
  ipmi::IpmbClient client(bmc, 0x81);
  for (auto _ : state) {
    auto r = client.read_sensor(smc, mic::kSmcSensorPower);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_IpmbSensorRead);

}  // namespace

int main(int argc, char** argv) {
  print_virtual_cost_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
