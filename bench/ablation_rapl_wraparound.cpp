// Ablation: where does the RAPL 32-bit energy-status "overfill" corrupt
// energy integration?
//
// The paper warns that "a sampling of more than about 60 seconds will
// result in erroneous data".  The wrap horizon is 2^32 energy units
// (15.26 uJ each = 65.5 kJ) divided by package power, so the safe
// interval depends on the draw: a hot dual-socket node crosses ~60 s
// around 1 kW; our single ~132 W package wraps near 500 s.  The sweep
// shows exact accounting below the horizon and catastrophic undercount
// beyond it — and that the perf_event path (64-bit kernel accumulation)
// never corrupts.

#include <cstdio>

#include "analysis/render.hpp"
#include "common/strings.hpp"
#include "rapl/reader.hpp"
#include "workloads/library.hpp"

int main() {
  using namespace envmon;

  std::printf("== Ablation: RAPL counter wraparound vs sampling interval ==\n\n");

  const int total_s = 2400;
  const int intervals[] = {1, 5, 15, 30, 60, 120, 240, 400, 500, 600, 900, 1200, 2400};

  analysis::TableRenderer table({"interval (s)", "true energy (kJ)", "MSR-diff energy (kJ)",
                                 "error", "wraps assumed", "verdict"});

  double wrap_horizon_s = 0.0;
  for (const int interval : intervals) {
    sim::Engine engine;
    rapl::PackageConfig config;
    config.cores = power::RailModel{Watts{30.0}, Watts{100.0}, Volts{1.0}};
    rapl::CpuPackage pkg(engine, config);
    const auto w = workloads::dgemm({sim::Duration::seconds(3600), 1.0, 0.0});
    pkg.run_workload(&w, sim::SimTime::zero());
    rapl::MsrRaplReader reader(pkg, rapl::Credentials{true, 0});
    rapl::EnergyAccountant acc(pkg.config().units.joules_per_unit());

    for (int t = 0; t <= total_s; t += interval) {
      engine.run_until(sim::SimTime::from_seconds(t));
      auto s = reader.read_energy(rapl::RaplDomain::kPackage, engine.now());
      if (s.is_ok()) (void)acc.advance(s.value().raw);
    }
    const double truth =
        pkg.domain_energy_since_start(rapl::RaplDomain::kPackage,
                                      sim::SimTime::from_seconds(total_s))
            .value();
    const double measured = acc.total().value();
    const double err = (measured - truth) / truth;
    const double pkg_watts = truth / total_s;
    wrap_horizon_s = 4294967296.0 * pkg.config().units.joules_per_unit() / pkg_watts;

    table.add_row({std::to_string(interval), format_double(truth / 1000.0, 1),
                   format_double(measured / 1000.0, 1),
                   format_double(100.0 * err, 2) + " %",
                   std::to_string(acc.wraps_assumed()),
                   std::abs(err) < 0.01 ? "accurate" : "CORRUPTED"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("wrap horizon at this package's draw: %.0f s (= 2^32 x 15.26 uJ / %.0f W)\n",
              wrap_horizon_s, 4294967296.0 * 15.2587890625e-6 / wrap_horizon_s);
  std::printf("paper's '60 seconds' guidance corresponds to ~1.1 kW of monitored power\n"
              "(e.g. a dual-socket node's PKG+DRAM domains summed at full tilt).\n\n");

  // The perf path at the worst interval.
  {
    sim::Engine engine;
    rapl::PackageConfig config;
    config.cores = power::RailModel{Watts{30.0}, Watts{100.0}, Volts{1.0}};
    rapl::CpuPackage pkg(engine, config);
    const auto w = workloads::dgemm({sim::Duration::seconds(3600), 1.0, 0.0});
    pkg.run_workload(&w, sim::SimTime::zero());
    auto perf = rapl::PerfRaplReader::open(pkg, rapl::KernelVersion{3, 14});
    engine.run_until(sim::SimTime::from_seconds(total_s));
    const double e = perf.value().read_energy(rapl::RaplDomain::kPackage, engine.now())
                         .value_or(Joules{0.0})
                         .value();
    const double truth = pkg.domain_energy_since_start(rapl::RaplDomain::kPackage,
                                                       engine.now())
                             .value();
    std::printf("perf_event path, one read after %d s: %.1f kJ vs truth %.1f kJ"
                " (error %.3f%%)\n    -> the kernel's 64-bit accumulation never overfills\n",
                total_s, e / 1000.0, truth / 1000.0, 100.0 * (e - truth) / truth);
  }
  return 0;
}
