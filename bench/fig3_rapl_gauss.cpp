// Figure 3: power consumption of a Gaussian elimination workload
// captured at 100 ms for the whole CPU package via RAPL.  Capture starts
// before and terminates after program execution; the workload shows a
// rhythmic ~5 W drop with tiny spikes between drops.

#include <cstdio>

#include "analysis/render.hpp"
#include "analysis/series_ops.hpp"
#include "scenarios/scenarios.hpp"

int main() {
  using namespace envmon;

  std::printf("== Figure 3: RAPL PKG power, Gaussian elimination at 100 ms ==\n\n");

  scenarios::RaplGaussOptions options;  // 8 s idle, 50 s workload, 10 s idle
  const auto result = scenarios::run_rapl_gauss(options);

  analysis::ChartOptions chart;
  chart.title = "RAPL package power (W) vs time -- idle / GE / idle";
  chart.y_label = "Power (Watts)";
  chart.height = 18;
  std::printf("%s\n", analysis::render_chart(result.pkg_power, chart).c_str());

  const double idle = analysis::mean_in_window(result.pkg_power, sim::SimTime::from_seconds(2),
                                               sim::SimTime::from_seconds(7));
  // The GE profile builds whole pivot cycles (3.65 s each): 13 cycles =
  // 47.45 s of active workload starting at the 8 s idle lead.
  const double active = analysis::mean_in_window(
      result.pkg_power, sim::SimTime::from_seconds(10), sim::SimTime::from_seconds(54));
  // Dip depth as median minus 5th percentile of the active window: the
  // pivot dips occupy ~14% of each cycle, so p5 lands inside them while
  // the median sits on the compute plateau (robust to sensor noise).
  std::vector<double> active_watts;
  for (const auto& p : result.pkg_power) {
    const double t = p.t.to_seconds();
    if (t > 9.0 && t < 54.0) active_watts.push_back(p.value);
  }
  const std::vector<double> qs = {0.05, 0.5};
  const auto q = quantiles(active_watts, qs);
  const double dip = q[0], plateau = q[1];
  std::printf("idle package power : %6.2f W   (paper figure: a few watts)\n", idle);
  std::printf("active mean        : %6.2f W   (paper figure: ~45-50 W)\n", active);
  std::printf("rhythmic drop depth: %6.2f W   (paper: 'rhythmic drop of about 5 Watts')\n",
              plateau - dip);
  std::printf("per-query cost     : %6.3f ms  (paper: 'about 0.03 ms per query')\n",
              result.mean_query_cost_ms);

  std::printf("\ncsv:time_s,pkg_power_w\n");
  for (std::size_t i = 0; i < result.pkg_power.size(); i += 5) {
    std::printf("csv:%.1f,%.2f\n", result.pkg_power[i].t.to_seconds(),
                result.pkg_power[i].value);
  }
  return 0;
}
