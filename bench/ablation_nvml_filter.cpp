// Ablation: the NVML board sensor's low-pass behaviour.
//
// Fig 4's ~5 s level-off comes from the sensor's internal filtering, not
// the silicon (the SMs clock up in microseconds).  Sweeping the filter
// time constant shows how the visible ramp scales with tau, and how much
// of a short transient the sensor hides — why NVML data is a poor tool
// for kernel-scale power attribution.

#include <cstdio>

#include "analysis/render.hpp"
#include "analysis/series_ops.hpp"
#include "common/strings.hpp"
#include "nvml/device.hpp"
#include "power/sensor.hpp"
#include "workloads/library.hpp"

int main() {
  using namespace envmon;

  std::printf("== Ablation: NVML sensor filter constant vs visible ramp ==\n\n");

  analysis::TableRenderer table({"tau (s)", "settle time to +/-1 W (s)",
                                 "peak of a 0.5 s / 100 W transient seen (W)"});
  for (const double tau_s : {0.0, 0.25, 0.85, 1.7, 3.4, 6.8}) {
    power::SensorOptions o;
    if (tau_s > 0.0) o.slew_tau = sim::Duration::from_seconds(tau_s);
    o.update_period = sim::Duration::millis(60);

    // Step response 44 -> 144 W, sampled at 100 ms like the paper.
    power::SensorPipeline step_sensor(o, Rng(1));
    std::vector<sim::TracePoint> series;
    (void)step_sensor.sample(sim::SimTime::zero(), 44.0);
    for (double t = 0.1; t < 30.0; t += 0.1) {
      series.push_back({sim::SimTime::from_seconds(t),
                        step_sensor.sample(sim::SimTime::from_seconds(t), 144.0)});
    }
    const auto settle = analysis::settle_time(series, 1.0);

    // A 0.5 s, +100 W transient on the idle floor.
    power::SensorPipeline pulse_sensor(o, Rng(2));
    (void)pulse_sensor.sample(sim::SimTime::zero(), 44.0);
    double peak = 0.0;
    for (double t = 0.05; t < 5.0; t += 0.05) {
      const double truth = (t >= 1.0 && t < 1.5) ? 144.0 : 44.0;
      peak = std::max(peak, pulse_sensor.sample(sim::SimTime::from_seconds(t), truth));
    }

    table.add_row({format_double(tau_s, 2),
                   settle.found ? format_double(settle.t.to_seconds(), 1) : "-",
                   format_double(peak, 1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("The shipped K20 model uses tau = 1.7 s: settle ~5 s (the paper's Fig 4\n"
              "'about 5 seconds'), and a 0.5 s kernel burst shows barely a quarter of\n"
              "its true amplitude. With tau = 0 the sensor would track instantly --\n"
              "the ramp in Fig 4 is a measurement artifact, not GPU physics.\n");
  return 0;
}
