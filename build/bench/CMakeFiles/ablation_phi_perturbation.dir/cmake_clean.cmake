file(REMOVE_RECURSE
  "CMakeFiles/ablation_phi_perturbation.dir/ablation_phi_perturbation.cpp.o"
  "CMakeFiles/ablation_phi_perturbation.dir/ablation_phi_perturbation.cpp.o.d"
  "ablation_phi_perturbation"
  "ablation_phi_perturbation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_phi_perturbation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
