# Empty compiler generated dependencies file for ablation_phi_perturbation.
# This may be replaced when dependencies are built.
