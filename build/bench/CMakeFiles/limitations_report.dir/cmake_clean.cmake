file(REMOVE_RECURSE
  "CMakeFiles/limitations_report.dir/limitations_report.cpp.o"
  "CMakeFiles/limitations_report.dir/limitations_report.cpp.o.d"
  "limitations_report"
  "limitations_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limitations_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
