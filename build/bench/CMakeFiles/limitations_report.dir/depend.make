# Empty dependencies file for limitations_report.
# This may be replaced when dependencies are built.
