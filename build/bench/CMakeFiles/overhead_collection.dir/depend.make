# Empty dependencies file for overhead_collection.
# This may be replaced when dependencies are built.
