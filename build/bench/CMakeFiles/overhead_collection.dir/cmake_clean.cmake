file(REMOVE_RECURSE
  "CMakeFiles/overhead_collection.dir/overhead_collection.cpp.o"
  "CMakeFiles/overhead_collection.dir/overhead_collection.cpp.o.d"
  "overhead_collection"
  "overhead_collection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_collection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
