# Empty compiler generated dependencies file for table2_rapl_domains.
# This may be replaced when dependencies are built.
