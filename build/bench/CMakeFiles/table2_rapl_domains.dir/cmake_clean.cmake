file(REMOVE_RECURSE
  "CMakeFiles/table2_rapl_domains.dir/table2_rapl_domains.cpp.o"
  "CMakeFiles/table2_rapl_domains.dir/table2_rapl_domains.cpp.o.d"
  "table2_rapl_domains"
  "table2_rapl_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_rapl_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
