# Empty compiler generated dependencies file for ablation_emon_stagger.
# This may be replaced when dependencies are built.
