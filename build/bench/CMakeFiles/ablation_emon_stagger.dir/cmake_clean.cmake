file(REMOVE_RECURSE
  "CMakeFiles/ablation_emon_stagger.dir/ablation_emon_stagger.cpp.o"
  "CMakeFiles/ablation_emon_stagger.dir/ablation_emon_stagger.cpp.o.d"
  "ablation_emon_stagger"
  "ablation_emon_stagger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_emon_stagger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
