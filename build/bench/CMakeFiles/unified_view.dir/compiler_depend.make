# Empty compiler generated dependencies file for unified_view.
# This may be replaced when dependencies are built.
