file(REMOVE_RECURSE
  "CMakeFiles/unified_view.dir/unified_view.cpp.o"
  "CMakeFiles/unified_view.dir/unified_view.cpp.o.d"
  "unified_view"
  "unified_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unified_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
