file(REMOVE_RECURSE
  "CMakeFiles/ablation_power_capping.dir/ablation_power_capping.cpp.o"
  "CMakeFiles/ablation_power_capping.dir/ablation_power_capping.cpp.o.d"
  "ablation_power_capping"
  "ablation_power_capping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_power_capping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
