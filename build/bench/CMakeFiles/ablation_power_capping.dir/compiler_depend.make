# Empty compiler generated dependencies file for ablation_power_capping.
# This may be replaced when dependencies are built.
