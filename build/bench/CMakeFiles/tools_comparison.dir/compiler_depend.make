# Empty compiler generated dependencies file for tools_comparison.
# This may be replaced when dependencies are built.
