file(REMOVE_RECURSE
  "CMakeFiles/tools_comparison.dir/tools_comparison.cpp.o"
  "CMakeFiles/tools_comparison.dir/tools_comparison.cpp.o.d"
  "tools_comparison"
  "tools_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tools_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
