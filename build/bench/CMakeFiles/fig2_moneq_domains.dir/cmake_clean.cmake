file(REMOVE_RECURSE
  "CMakeFiles/fig2_moneq_domains.dir/fig2_moneq_domains.cpp.o"
  "CMakeFiles/fig2_moneq_domains.dir/fig2_moneq_domains.cpp.o.d"
  "fig2_moneq_domains"
  "fig2_moneq_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_moneq_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
