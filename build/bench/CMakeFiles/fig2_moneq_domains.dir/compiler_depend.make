# Empty compiler generated dependencies file for fig2_moneq_domains.
# This may be replaced when dependencies are built.
