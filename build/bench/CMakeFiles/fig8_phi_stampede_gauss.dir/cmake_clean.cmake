file(REMOVE_RECURSE
  "CMakeFiles/fig8_phi_stampede_gauss.dir/fig8_phi_stampede_gauss.cpp.o"
  "CMakeFiles/fig8_phi_stampede_gauss.dir/fig8_phi_stampede_gauss.cpp.o.d"
  "fig8_phi_stampede_gauss"
  "fig8_phi_stampede_gauss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_phi_stampede_gauss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
