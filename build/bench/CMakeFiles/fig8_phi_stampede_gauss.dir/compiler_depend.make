# Empty compiler generated dependencies file for fig8_phi_stampede_gauss.
# This may be replaced when dependencies are built.
