file(REMOVE_RECURSE
  "CMakeFiles/fig7_phi_api_vs_daemon.dir/fig7_phi_api_vs_daemon.cpp.o"
  "CMakeFiles/fig7_phi_api_vs_daemon.dir/fig7_phi_api_vs_daemon.cpp.o.d"
  "fig7_phi_api_vs_daemon"
  "fig7_phi_api_vs_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_phi_api_vs_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
