
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_phi_api_vs_daemon.cpp" "bench/CMakeFiles/fig7_phi_api_vs_daemon.dir/fig7_phi_api_vs_daemon.cpp.o" "gcc" "bench/CMakeFiles/fig7_phi_api_vs_daemon.dir/fig7_phi_api_vs_daemon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenarios/CMakeFiles/envmon_scenarios.dir/DependInfo.cmake"
  "/root/repo/build/src/tools/CMakeFiles/envmon_tools.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/envmon_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/moneq/CMakeFiles/envmon_moneq.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/envmon_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/envmon_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/bgq/CMakeFiles/envmon_bgq.dir/DependInfo.cmake"
  "/root/repo/build/src/rapl/CMakeFiles/envmon_rapl.dir/DependInfo.cmake"
  "/root/repo/build/src/nvml/CMakeFiles/envmon_nvml.dir/DependInfo.cmake"
  "/root/repo/build/src/mic/CMakeFiles/envmon_mic.dir/DependInfo.cmake"
  "/root/repo/build/src/smpi/CMakeFiles/envmon_smpi.dir/DependInfo.cmake"
  "/root/repo/build/src/ipmi/CMakeFiles/envmon_ipmi.dir/DependInfo.cmake"
  "/root/repo/build/src/tsdb/CMakeFiles/envmon_tsdb.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/envmon_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/envmon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/envmon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
