# Empty compiler generated dependencies file for fig7_phi_api_vs_daemon.
# This may be replaced when dependencies are built.
