file(REMOVE_RECURSE
  "CMakeFiles/ablation_nvml_filter.dir/ablation_nvml_filter.cpp.o"
  "CMakeFiles/ablation_nvml_filter.dir/ablation_nvml_filter.cpp.o.d"
  "ablation_nvml_filter"
  "ablation_nvml_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nvml_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
