file(REMOVE_RECURSE
  "CMakeFiles/fig4_nvml_noop.dir/fig4_nvml_noop.cpp.o"
  "CMakeFiles/fig4_nvml_noop.dir/fig4_nvml_noop.cpp.o.d"
  "fig4_nvml_noop"
  "fig4_nvml_noop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_nvml_noop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
