# Empty compiler generated dependencies file for fig4_nvml_noop.
# This may be replaced when dependencies are built.
