# Empty dependencies file for fig5_nvml_vecadd.
# This may be replaced when dependencies are built.
