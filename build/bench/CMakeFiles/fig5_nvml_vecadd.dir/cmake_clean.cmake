file(REMOVE_RECURSE
  "CMakeFiles/fig5_nvml_vecadd.dir/fig5_nvml_vecadd.cpp.o"
  "CMakeFiles/fig5_nvml_vecadd.dir/fig5_nvml_vecadd.cpp.o.d"
  "fig5_nvml_vecadd"
  "fig5_nvml_vecadd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_nvml_vecadd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
