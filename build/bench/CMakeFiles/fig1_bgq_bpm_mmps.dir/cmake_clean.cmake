file(REMOVE_RECURSE
  "CMakeFiles/fig1_bgq_bpm_mmps.dir/fig1_bgq_bpm_mmps.cpp.o"
  "CMakeFiles/fig1_bgq_bpm_mmps.dir/fig1_bgq_bpm_mmps.cpp.o.d"
  "fig1_bgq_bpm_mmps"
  "fig1_bgq_bpm_mmps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_bgq_bpm_mmps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
