# Empty dependencies file for fig1_bgq_bpm_mmps.
# This may be replaced when dependencies are built.
