# Empty dependencies file for ablation_rapl_wraparound.
# This may be replaced when dependencies are built.
