file(REMOVE_RECURSE
  "CMakeFiles/ablation_rapl_wraparound.dir/ablation_rapl_wraparound.cpp.o"
  "CMakeFiles/ablation_rapl_wraparound.dir/ablation_rapl_wraparound.cpp.o.d"
  "ablation_rapl_wraparound"
  "ablation_rapl_wraparound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rapl_wraparound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
