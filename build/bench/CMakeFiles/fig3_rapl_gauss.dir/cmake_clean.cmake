file(REMOVE_RECURSE
  "CMakeFiles/fig3_rapl_gauss.dir/fig3_rapl_gauss.cpp.o"
  "CMakeFiles/fig3_rapl_gauss.dir/fig3_rapl_gauss.cpp.o.d"
  "fig3_rapl_gauss"
  "fig3_rapl_gauss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_rapl_gauss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
