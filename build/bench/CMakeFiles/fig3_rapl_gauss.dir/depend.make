# Empty dependencies file for fig3_rapl_gauss.
# This may be replaced when dependencies are built.
