
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/moneq/backend_bgq.cpp" "src/moneq/CMakeFiles/envmon_moneq.dir/backend_bgq.cpp.o" "gcc" "src/moneq/CMakeFiles/envmon_moneq.dir/backend_bgq.cpp.o.d"
  "/root/repo/src/moneq/backend_mic.cpp" "src/moneq/CMakeFiles/envmon_moneq.dir/backend_mic.cpp.o" "gcc" "src/moneq/CMakeFiles/envmon_moneq.dir/backend_mic.cpp.o.d"
  "/root/repo/src/moneq/backend_nvml.cpp" "src/moneq/CMakeFiles/envmon_moneq.dir/backend_nvml.cpp.o" "gcc" "src/moneq/CMakeFiles/envmon_moneq.dir/backend_nvml.cpp.o.d"
  "/root/repo/src/moneq/backend_rapl.cpp" "src/moneq/CMakeFiles/envmon_moneq.dir/backend_rapl.cpp.o" "gcc" "src/moneq/CMakeFiles/envmon_moneq.dir/backend_rapl.cpp.o.d"
  "/root/repo/src/moneq/capability.cpp" "src/moneq/CMakeFiles/envmon_moneq.dir/capability.cpp.o" "gcc" "src/moneq/CMakeFiles/envmon_moneq.dir/capability.cpp.o.d"
  "/root/repo/src/moneq/capi.cpp" "src/moneq/CMakeFiles/envmon_moneq.dir/capi.cpp.o" "gcc" "src/moneq/CMakeFiles/envmon_moneq.dir/capi.cpp.o.d"
  "/root/repo/src/moneq/csv_reader.cpp" "src/moneq/CMakeFiles/envmon_moneq.dir/csv_reader.cpp.o" "gcc" "src/moneq/CMakeFiles/envmon_moneq.dir/csv_reader.cpp.o.d"
  "/root/repo/src/moneq/output.cpp" "src/moneq/CMakeFiles/envmon_moneq.dir/output.cpp.o" "gcc" "src/moneq/CMakeFiles/envmon_moneq.dir/output.cpp.o.d"
  "/root/repo/src/moneq/profiler.cpp" "src/moneq/CMakeFiles/envmon_moneq.dir/profiler.cpp.o" "gcc" "src/moneq/CMakeFiles/envmon_moneq.dir/profiler.cpp.o.d"
  "/root/repo/src/moneq/unified.cpp" "src/moneq/CMakeFiles/envmon_moneq.dir/unified.cpp.o" "gcc" "src/moneq/CMakeFiles/envmon_moneq.dir/unified.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/envmon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/envmon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/envmon_power.dir/DependInfo.cmake"
  "/root/repo/build/src/smpi/CMakeFiles/envmon_smpi.dir/DependInfo.cmake"
  "/root/repo/build/src/bgq/CMakeFiles/envmon_bgq.dir/DependInfo.cmake"
  "/root/repo/build/src/rapl/CMakeFiles/envmon_rapl.dir/DependInfo.cmake"
  "/root/repo/build/src/nvml/CMakeFiles/envmon_nvml.dir/DependInfo.cmake"
  "/root/repo/build/src/mic/CMakeFiles/envmon_mic.dir/DependInfo.cmake"
  "/root/repo/build/src/tsdb/CMakeFiles/envmon_tsdb.dir/DependInfo.cmake"
  "/root/repo/build/src/ipmi/CMakeFiles/envmon_ipmi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
