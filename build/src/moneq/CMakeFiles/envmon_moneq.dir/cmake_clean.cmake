file(REMOVE_RECURSE
  "CMakeFiles/envmon_moneq.dir/backend_bgq.cpp.o"
  "CMakeFiles/envmon_moneq.dir/backend_bgq.cpp.o.d"
  "CMakeFiles/envmon_moneq.dir/backend_mic.cpp.o"
  "CMakeFiles/envmon_moneq.dir/backend_mic.cpp.o.d"
  "CMakeFiles/envmon_moneq.dir/backend_nvml.cpp.o"
  "CMakeFiles/envmon_moneq.dir/backend_nvml.cpp.o.d"
  "CMakeFiles/envmon_moneq.dir/backend_rapl.cpp.o"
  "CMakeFiles/envmon_moneq.dir/backend_rapl.cpp.o.d"
  "CMakeFiles/envmon_moneq.dir/capability.cpp.o"
  "CMakeFiles/envmon_moneq.dir/capability.cpp.o.d"
  "CMakeFiles/envmon_moneq.dir/capi.cpp.o"
  "CMakeFiles/envmon_moneq.dir/capi.cpp.o.d"
  "CMakeFiles/envmon_moneq.dir/csv_reader.cpp.o"
  "CMakeFiles/envmon_moneq.dir/csv_reader.cpp.o.d"
  "CMakeFiles/envmon_moneq.dir/output.cpp.o"
  "CMakeFiles/envmon_moneq.dir/output.cpp.o.d"
  "CMakeFiles/envmon_moneq.dir/profiler.cpp.o"
  "CMakeFiles/envmon_moneq.dir/profiler.cpp.o.d"
  "CMakeFiles/envmon_moneq.dir/unified.cpp.o"
  "CMakeFiles/envmon_moneq.dir/unified.cpp.o.d"
  "libenvmon_moneq.a"
  "libenvmon_moneq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/envmon_moneq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
