file(REMOVE_RECURSE
  "libenvmon_moneq.a"
)
