# Empty compiler generated dependencies file for envmon_moneq.
# This may be replaced when dependencies are built.
