file(REMOVE_RECURSE
  "CMakeFiles/envmon_analysis.dir/render.cpp.o"
  "CMakeFiles/envmon_analysis.dir/render.cpp.o.d"
  "CMakeFiles/envmon_analysis.dir/series_ops.cpp.o"
  "CMakeFiles/envmon_analysis.dir/series_ops.cpp.o.d"
  "CMakeFiles/envmon_analysis.dir/stats_ext.cpp.o"
  "CMakeFiles/envmon_analysis.dir/stats_ext.cpp.o.d"
  "libenvmon_analysis.a"
  "libenvmon_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/envmon_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
