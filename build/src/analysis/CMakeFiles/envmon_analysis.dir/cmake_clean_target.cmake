file(REMOVE_RECURSE
  "libenvmon_analysis.a"
)
