# Empty compiler generated dependencies file for envmon_analysis.
# This may be replaced when dependencies are built.
