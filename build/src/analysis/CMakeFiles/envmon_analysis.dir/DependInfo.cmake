
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/render.cpp" "src/analysis/CMakeFiles/envmon_analysis.dir/render.cpp.o" "gcc" "src/analysis/CMakeFiles/envmon_analysis.dir/render.cpp.o.d"
  "/root/repo/src/analysis/series_ops.cpp" "src/analysis/CMakeFiles/envmon_analysis.dir/series_ops.cpp.o" "gcc" "src/analysis/CMakeFiles/envmon_analysis.dir/series_ops.cpp.o.d"
  "/root/repo/src/analysis/stats_ext.cpp" "src/analysis/CMakeFiles/envmon_analysis.dir/stats_ext.cpp.o" "gcc" "src/analysis/CMakeFiles/envmon_analysis.dir/stats_ext.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/envmon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/envmon_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
