# Empty dependencies file for envmon_sim.
# This may be replaced when dependencies are built.
