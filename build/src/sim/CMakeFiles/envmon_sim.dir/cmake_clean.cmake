file(REMOVE_RECURSE
  "CMakeFiles/envmon_sim.dir/engine.cpp.o"
  "CMakeFiles/envmon_sim.dir/engine.cpp.o.d"
  "CMakeFiles/envmon_sim.dir/trace.cpp.o"
  "CMakeFiles/envmon_sim.dir/trace.cpp.o.d"
  "libenvmon_sim.a"
  "libenvmon_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/envmon_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
