file(REMOVE_RECURSE
  "libenvmon_sim.a"
)
