# Empty dependencies file for envmon_bgq.
# This may be replaced when dependencies are built.
