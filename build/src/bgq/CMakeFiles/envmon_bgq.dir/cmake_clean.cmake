file(REMOVE_RECURSE
  "CMakeFiles/envmon_bgq.dir/emon.cpp.o"
  "CMakeFiles/envmon_bgq.dir/emon.cpp.o.d"
  "CMakeFiles/envmon_bgq.dir/env_monitor.cpp.o"
  "CMakeFiles/envmon_bgq.dir/env_monitor.cpp.o.d"
  "CMakeFiles/envmon_bgq.dir/machine.cpp.o"
  "CMakeFiles/envmon_bgq.dir/machine.cpp.o.d"
  "libenvmon_bgq.a"
  "libenvmon_bgq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/envmon_bgq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
