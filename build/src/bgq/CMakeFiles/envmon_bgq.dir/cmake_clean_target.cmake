file(REMOVE_RECURSE
  "libenvmon_bgq.a"
)
