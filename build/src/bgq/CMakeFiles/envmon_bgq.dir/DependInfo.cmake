
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgq/emon.cpp" "src/bgq/CMakeFiles/envmon_bgq.dir/emon.cpp.o" "gcc" "src/bgq/CMakeFiles/envmon_bgq.dir/emon.cpp.o.d"
  "/root/repo/src/bgq/env_monitor.cpp" "src/bgq/CMakeFiles/envmon_bgq.dir/env_monitor.cpp.o" "gcc" "src/bgq/CMakeFiles/envmon_bgq.dir/env_monitor.cpp.o.d"
  "/root/repo/src/bgq/machine.cpp" "src/bgq/CMakeFiles/envmon_bgq.dir/machine.cpp.o" "gcc" "src/bgq/CMakeFiles/envmon_bgq.dir/machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/envmon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/envmon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/envmon_power.dir/DependInfo.cmake"
  "/root/repo/build/src/tsdb/CMakeFiles/envmon_tsdb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
