file(REMOVE_RECURSE
  "CMakeFiles/envmon_rapl.dir/msr.cpp.o"
  "CMakeFiles/envmon_rapl.dir/msr.cpp.o.d"
  "CMakeFiles/envmon_rapl.dir/package.cpp.o"
  "CMakeFiles/envmon_rapl.dir/package.cpp.o.d"
  "CMakeFiles/envmon_rapl.dir/reader.cpp.o"
  "CMakeFiles/envmon_rapl.dir/reader.cpp.o.d"
  "libenvmon_rapl.a"
  "libenvmon_rapl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/envmon_rapl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
