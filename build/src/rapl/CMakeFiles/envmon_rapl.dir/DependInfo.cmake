
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rapl/msr.cpp" "src/rapl/CMakeFiles/envmon_rapl.dir/msr.cpp.o" "gcc" "src/rapl/CMakeFiles/envmon_rapl.dir/msr.cpp.o.d"
  "/root/repo/src/rapl/package.cpp" "src/rapl/CMakeFiles/envmon_rapl.dir/package.cpp.o" "gcc" "src/rapl/CMakeFiles/envmon_rapl.dir/package.cpp.o.d"
  "/root/repo/src/rapl/reader.cpp" "src/rapl/CMakeFiles/envmon_rapl.dir/reader.cpp.o" "gcc" "src/rapl/CMakeFiles/envmon_rapl.dir/reader.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/envmon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/envmon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/envmon_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
