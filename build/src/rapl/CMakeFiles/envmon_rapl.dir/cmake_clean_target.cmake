file(REMOVE_RECURSE
  "libenvmon_rapl.a"
)
