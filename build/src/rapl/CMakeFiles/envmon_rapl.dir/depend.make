# Empty dependencies file for envmon_rapl.
# This may be replaced when dependencies are built.
