# Empty dependencies file for envmon_sched.
# This may be replaced when dependencies are built.
