file(REMOVE_RECURSE
  "CMakeFiles/envmon_sched.dir/pricing.cpp.o"
  "CMakeFiles/envmon_sched.dir/pricing.cpp.o.d"
  "CMakeFiles/envmon_sched.dir/scheduler.cpp.o"
  "CMakeFiles/envmon_sched.dir/scheduler.cpp.o.d"
  "libenvmon_sched.a"
  "libenvmon_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/envmon_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
