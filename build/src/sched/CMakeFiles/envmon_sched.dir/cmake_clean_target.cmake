file(REMOVE_RECURSE
  "libenvmon_sched.a"
)
