file(REMOVE_RECURSE
  "CMakeFiles/envmon_ipmi.dir/bmc.cpp.o"
  "CMakeFiles/envmon_ipmi.dir/bmc.cpp.o.d"
  "CMakeFiles/envmon_ipmi.dir/ipmb.cpp.o"
  "CMakeFiles/envmon_ipmi.dir/ipmb.cpp.o.d"
  "libenvmon_ipmi.a"
  "libenvmon_ipmi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/envmon_ipmi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
