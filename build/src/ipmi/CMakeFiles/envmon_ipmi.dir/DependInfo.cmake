
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ipmi/bmc.cpp" "src/ipmi/CMakeFiles/envmon_ipmi.dir/bmc.cpp.o" "gcc" "src/ipmi/CMakeFiles/envmon_ipmi.dir/bmc.cpp.o.d"
  "/root/repo/src/ipmi/ipmb.cpp" "src/ipmi/CMakeFiles/envmon_ipmi.dir/ipmb.cpp.o" "gcc" "src/ipmi/CMakeFiles/envmon_ipmi.dir/ipmb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/envmon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
