file(REMOVE_RECURSE
  "libenvmon_ipmi.a"
)
