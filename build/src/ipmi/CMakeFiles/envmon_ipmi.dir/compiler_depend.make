# Empty compiler generated dependencies file for envmon_ipmi.
# This may be replaced when dependencies are built.
