file(REMOVE_RECURSE
  "CMakeFiles/envmon_mic.dir/card.cpp.o"
  "CMakeFiles/envmon_mic.dir/card.cpp.o.d"
  "CMakeFiles/envmon_mic.dir/micras.cpp.o"
  "CMakeFiles/envmon_mic.dir/micras.cpp.o.d"
  "CMakeFiles/envmon_mic.dir/mpss.cpp.o"
  "CMakeFiles/envmon_mic.dir/mpss.cpp.o.d"
  "CMakeFiles/envmon_mic.dir/scif.cpp.o"
  "CMakeFiles/envmon_mic.dir/scif.cpp.o.d"
  "CMakeFiles/envmon_mic.dir/smc.cpp.o"
  "CMakeFiles/envmon_mic.dir/smc.cpp.o.d"
  "CMakeFiles/envmon_mic.dir/sysmgmt.cpp.o"
  "CMakeFiles/envmon_mic.dir/sysmgmt.cpp.o.d"
  "libenvmon_mic.a"
  "libenvmon_mic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/envmon_mic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
