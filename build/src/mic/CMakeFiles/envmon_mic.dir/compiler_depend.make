# Empty compiler generated dependencies file for envmon_mic.
# This may be replaced when dependencies are built.
