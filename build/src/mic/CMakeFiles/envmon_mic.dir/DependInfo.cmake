
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mic/card.cpp" "src/mic/CMakeFiles/envmon_mic.dir/card.cpp.o" "gcc" "src/mic/CMakeFiles/envmon_mic.dir/card.cpp.o.d"
  "/root/repo/src/mic/micras.cpp" "src/mic/CMakeFiles/envmon_mic.dir/micras.cpp.o" "gcc" "src/mic/CMakeFiles/envmon_mic.dir/micras.cpp.o.d"
  "/root/repo/src/mic/mpss.cpp" "src/mic/CMakeFiles/envmon_mic.dir/mpss.cpp.o" "gcc" "src/mic/CMakeFiles/envmon_mic.dir/mpss.cpp.o.d"
  "/root/repo/src/mic/scif.cpp" "src/mic/CMakeFiles/envmon_mic.dir/scif.cpp.o" "gcc" "src/mic/CMakeFiles/envmon_mic.dir/scif.cpp.o.d"
  "/root/repo/src/mic/smc.cpp" "src/mic/CMakeFiles/envmon_mic.dir/smc.cpp.o" "gcc" "src/mic/CMakeFiles/envmon_mic.dir/smc.cpp.o.d"
  "/root/repo/src/mic/sysmgmt.cpp" "src/mic/CMakeFiles/envmon_mic.dir/sysmgmt.cpp.o" "gcc" "src/mic/CMakeFiles/envmon_mic.dir/sysmgmt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/envmon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/envmon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/envmon_power.dir/DependInfo.cmake"
  "/root/repo/build/src/ipmi/CMakeFiles/envmon_ipmi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
