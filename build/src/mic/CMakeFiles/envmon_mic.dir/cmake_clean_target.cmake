file(REMOVE_RECURSE
  "libenvmon_mic.a"
)
