file(REMOVE_RECURSE
  "CMakeFiles/envmon_tsdb.dir/database.cpp.o"
  "CMakeFiles/envmon_tsdb.dir/database.cpp.o.d"
  "CMakeFiles/envmon_tsdb.dir/export.cpp.o"
  "CMakeFiles/envmon_tsdb.dir/export.cpp.o.d"
  "CMakeFiles/envmon_tsdb.dir/location.cpp.o"
  "CMakeFiles/envmon_tsdb.dir/location.cpp.o.d"
  "libenvmon_tsdb.a"
  "libenvmon_tsdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/envmon_tsdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
