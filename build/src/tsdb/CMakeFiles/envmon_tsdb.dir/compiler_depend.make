# Empty compiler generated dependencies file for envmon_tsdb.
# This may be replaced when dependencies are built.
