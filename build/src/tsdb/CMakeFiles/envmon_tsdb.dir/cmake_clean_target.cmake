file(REMOVE_RECURSE
  "libenvmon_tsdb.a"
)
