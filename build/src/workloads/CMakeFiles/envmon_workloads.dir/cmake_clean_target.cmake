file(REMOVE_RECURSE
  "libenvmon_workloads.a"
)
