file(REMOVE_RECURSE
  "CMakeFiles/envmon_workloads.dir/library.cpp.o"
  "CMakeFiles/envmon_workloads.dir/library.cpp.o.d"
  "libenvmon_workloads.a"
  "libenvmon_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/envmon_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
