# Empty dependencies file for envmon_workloads.
# This may be replaced when dependencies are built.
