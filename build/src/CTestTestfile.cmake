# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("tsdb")
subdirs("power")
subdirs("workloads")
subdirs("ipmi")
subdirs("bgq")
subdirs("rapl")
subdirs("nvml")
subdirs("mic")
subdirs("smpi")
subdirs("moneq")
subdirs("analysis")
subdirs("tools")
subdirs("sched")
subdirs("scenarios")
