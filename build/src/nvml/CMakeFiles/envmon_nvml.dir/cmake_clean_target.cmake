file(REMOVE_RECURSE
  "libenvmon_nvml.a"
)
