
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nvml/api.cpp" "src/nvml/CMakeFiles/envmon_nvml.dir/api.cpp.o" "gcc" "src/nvml/CMakeFiles/envmon_nvml.dir/api.cpp.o.d"
  "/root/repo/src/nvml/device.cpp" "src/nvml/CMakeFiles/envmon_nvml.dir/device.cpp.o" "gcc" "src/nvml/CMakeFiles/envmon_nvml.dir/device.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/envmon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/envmon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/envmon_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
