# Empty dependencies file for envmon_nvml.
# This may be replaced when dependencies are built.
