file(REMOVE_RECURSE
  "CMakeFiles/envmon_nvml.dir/api.cpp.o"
  "CMakeFiles/envmon_nvml.dir/api.cpp.o.d"
  "CMakeFiles/envmon_nvml.dir/device.cpp.o"
  "CMakeFiles/envmon_nvml.dir/device.cpp.o.d"
  "libenvmon_nvml.a"
  "libenvmon_nvml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/envmon_nvml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
