file(REMOVE_RECURSE
  "libenvmon_scenarios.a"
)
