# Empty dependencies file for envmon_scenarios.
# This may be replaced when dependencies are built.
