file(REMOVE_RECURSE
  "CMakeFiles/envmon_scenarios.dir/scenarios.cpp.o"
  "CMakeFiles/envmon_scenarios.dir/scenarios.cpp.o.d"
  "libenvmon_scenarios.a"
  "libenvmon_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/envmon_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
