# Empty compiler generated dependencies file for envmon_common.
# This may be replaced when dependencies are built.
