file(REMOVE_RECURSE
  "libenvmon_common.a"
)
