file(REMOVE_RECURSE
  "CMakeFiles/envmon_common.dir/config.cpp.o"
  "CMakeFiles/envmon_common.dir/config.cpp.o.d"
  "CMakeFiles/envmon_common.dir/csv.cpp.o"
  "CMakeFiles/envmon_common.dir/csv.cpp.o.d"
  "CMakeFiles/envmon_common.dir/log.cpp.o"
  "CMakeFiles/envmon_common.dir/log.cpp.o.d"
  "CMakeFiles/envmon_common.dir/rng.cpp.o"
  "CMakeFiles/envmon_common.dir/rng.cpp.o.d"
  "CMakeFiles/envmon_common.dir/stats.cpp.o"
  "CMakeFiles/envmon_common.dir/stats.cpp.o.d"
  "CMakeFiles/envmon_common.dir/strings.cpp.o"
  "CMakeFiles/envmon_common.dir/strings.cpp.o.d"
  "libenvmon_common.a"
  "libenvmon_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/envmon_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
