# Empty dependencies file for envmon_power.
# This may be replaced when dependencies are built.
