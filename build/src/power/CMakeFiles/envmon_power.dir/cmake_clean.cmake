file(REMOVE_RECURSE
  "CMakeFiles/envmon_power.dir/component.cpp.o"
  "CMakeFiles/envmon_power.dir/component.cpp.o.d"
  "CMakeFiles/envmon_power.dir/profile.cpp.o"
  "CMakeFiles/envmon_power.dir/profile.cpp.o.d"
  "CMakeFiles/envmon_power.dir/sensor.cpp.o"
  "CMakeFiles/envmon_power.dir/sensor.cpp.o.d"
  "CMakeFiles/envmon_power.dir/thermal.cpp.o"
  "CMakeFiles/envmon_power.dir/thermal.cpp.o.d"
  "libenvmon_power.a"
  "libenvmon_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/envmon_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
