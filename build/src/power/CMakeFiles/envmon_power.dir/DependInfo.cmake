
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/component.cpp" "src/power/CMakeFiles/envmon_power.dir/component.cpp.o" "gcc" "src/power/CMakeFiles/envmon_power.dir/component.cpp.o.d"
  "/root/repo/src/power/profile.cpp" "src/power/CMakeFiles/envmon_power.dir/profile.cpp.o" "gcc" "src/power/CMakeFiles/envmon_power.dir/profile.cpp.o.d"
  "/root/repo/src/power/sensor.cpp" "src/power/CMakeFiles/envmon_power.dir/sensor.cpp.o" "gcc" "src/power/CMakeFiles/envmon_power.dir/sensor.cpp.o.d"
  "/root/repo/src/power/thermal.cpp" "src/power/CMakeFiles/envmon_power.dir/thermal.cpp.o" "gcc" "src/power/CMakeFiles/envmon_power.dir/thermal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/envmon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/envmon_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
