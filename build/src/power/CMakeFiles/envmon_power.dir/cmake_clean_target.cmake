file(REMOVE_RECURSE
  "libenvmon_power.a"
)
