file(REMOVE_RECURSE
  "CMakeFiles/envmon_smpi.dir/smpi.cpp.o"
  "CMakeFiles/envmon_smpi.dir/smpi.cpp.o.d"
  "libenvmon_smpi.a"
  "libenvmon_smpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/envmon_smpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
