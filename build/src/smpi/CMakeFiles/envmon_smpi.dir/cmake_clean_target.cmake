file(REMOVE_RECURSE
  "libenvmon_smpi.a"
)
