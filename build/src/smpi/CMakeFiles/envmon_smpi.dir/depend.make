# Empty dependencies file for envmon_smpi.
# This may be replaced when dependencies are built.
