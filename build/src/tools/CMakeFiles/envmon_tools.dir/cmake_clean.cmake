file(REMOVE_RECURSE
  "CMakeFiles/envmon_tools.dir/papi.cpp.o"
  "CMakeFiles/envmon_tools.dir/papi.cpp.o.d"
  "CMakeFiles/envmon_tools.dir/powerpack.cpp.o"
  "CMakeFiles/envmon_tools.dir/powerpack.cpp.o.d"
  "CMakeFiles/envmon_tools.dir/tau.cpp.o"
  "CMakeFiles/envmon_tools.dir/tau.cpp.o.d"
  "libenvmon_tools.a"
  "libenvmon_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/envmon_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
