# Empty dependencies file for envmon_tools.
# This may be replaced when dependencies are built.
