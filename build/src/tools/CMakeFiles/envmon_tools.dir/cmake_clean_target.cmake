file(REMOVE_RECURSE
  "libenvmon_tools.a"
)
