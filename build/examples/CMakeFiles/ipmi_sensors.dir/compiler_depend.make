# Empty compiler generated dependencies file for ipmi_sensors.
# This may be replaced when dependencies are built.
