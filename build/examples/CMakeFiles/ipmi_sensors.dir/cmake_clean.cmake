file(REMOVE_RECURSE
  "CMakeFiles/ipmi_sensors.dir/ipmi_sensors.cpp.o"
  "CMakeFiles/ipmi_sensors.dir/ipmi_sensors.cpp.o.d"
  "ipmi_sensors"
  "ipmi_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipmi_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
