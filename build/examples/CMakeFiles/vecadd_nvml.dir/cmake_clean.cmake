file(REMOVE_RECURSE
  "CMakeFiles/vecadd_nvml.dir/vecadd_nvml.cpp.o"
  "CMakeFiles/vecadd_nvml.dir/vecadd_nvml.cpp.o.d"
  "vecadd_nvml"
  "vecadd_nvml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vecadd_nvml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
