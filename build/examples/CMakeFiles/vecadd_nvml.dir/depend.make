# Empty dependencies file for vecadd_nvml.
# This may be replaced when dependencies are built.
