file(REMOVE_RECURSE
  "CMakeFiles/multi_device_node.dir/multi_device_node.cpp.o"
  "CMakeFiles/multi_device_node.dir/multi_device_node.cpp.o.d"
  "multi_device_node"
  "multi_device_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_device_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
