# Empty dependencies file for multi_device_node.
# This may be replaced when dependencies are built.
