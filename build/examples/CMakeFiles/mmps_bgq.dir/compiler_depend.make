# Empty compiler generated dependencies file for mmps_bgq.
# This may be replaced when dependencies are built.
