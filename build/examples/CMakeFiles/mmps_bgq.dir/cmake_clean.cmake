file(REMOVE_RECURSE
  "CMakeFiles/mmps_bgq.dir/mmps_bgq.cpp.o"
  "CMakeFiles/mmps_bgq.dir/mmps_bgq.cpp.o.d"
  "mmps_bgq"
  "mmps_bgq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmps_bgq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
