# Empty compiler generated dependencies file for power_aware_sched.
# This may be replaced when dependencies are built.
