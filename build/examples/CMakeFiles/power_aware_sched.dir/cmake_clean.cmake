file(REMOVE_RECURSE
  "CMakeFiles/power_aware_sched.dir/power_aware_sched.cpp.o"
  "CMakeFiles/power_aware_sched.dir/power_aware_sched.cpp.o.d"
  "power_aware_sched"
  "power_aware_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_aware_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
