# Empty dependencies file for phi_inband_vs_daemon.
# This may be replaced when dependencies are built.
