file(REMOVE_RECURSE
  "CMakeFiles/phi_inband_vs_daemon.dir/phi_inband_vs_daemon.cpp.o"
  "CMakeFiles/phi_inband_vs_daemon.dir/phi_inband_vs_daemon.cpp.o.d"
  "phi_inband_vs_daemon"
  "phi_inband_vs_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phi_inband_vs_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
