file(REMOVE_RECURSE
  "CMakeFiles/gauss_rapl.dir/gauss_rapl.cpp.o"
  "CMakeFiles/gauss_rapl.dir/gauss_rapl.cpp.o.d"
  "gauss_rapl"
  "gauss_rapl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gauss_rapl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
