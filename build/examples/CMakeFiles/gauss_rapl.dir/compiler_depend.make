# Empty compiler generated dependencies file for gauss_rapl.
# This may be replaced when dependencies are built.
