# Empty dependencies file for papi_eventset.
# This may be replaced when dependencies are built.
