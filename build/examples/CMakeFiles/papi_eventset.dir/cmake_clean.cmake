file(REMOVE_RECURSE
  "CMakeFiles/papi_eventset.dir/papi_eventset.cpp.o"
  "CMakeFiles/papi_eventset.dir/papi_eventset.cpp.o.d"
  "papi_eventset"
  "papi_eventset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papi_eventset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
