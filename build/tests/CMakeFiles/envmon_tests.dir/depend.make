# Empty dependencies file for envmon_tests.
# This may be replaced when dependencies are built.
