
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_stats_ext_test.cpp" "tests/CMakeFiles/envmon_tests.dir/analysis_stats_ext_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/analysis_stats_ext_test.cpp.o.d"
  "/root/repo/tests/analysis_test.cpp" "tests/CMakeFiles/envmon_tests.dir/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/analysis_test.cpp.o.d"
  "/root/repo/tests/bgq_test.cpp" "tests/CMakeFiles/envmon_tests.dir/bgq_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/bgq_test.cpp.o.d"
  "/root/repo/tests/common_config_test.cpp" "tests/CMakeFiles/envmon_tests.dir/common_config_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/common_config_test.cpp.o.d"
  "/root/repo/tests/common_csv_test.cpp" "tests/CMakeFiles/envmon_tests.dir/common_csv_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/common_csv_test.cpp.o.d"
  "/root/repo/tests/common_rng_test.cpp" "tests/CMakeFiles/envmon_tests.dir/common_rng_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/common_rng_test.cpp.o.d"
  "/root/repo/tests/common_stats_test.cpp" "tests/CMakeFiles/envmon_tests.dir/common_stats_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/common_stats_test.cpp.o.d"
  "/root/repo/tests/common_status_test.cpp" "tests/CMakeFiles/envmon_tests.dir/common_status_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/common_status_test.cpp.o.d"
  "/root/repo/tests/common_strings_test.cpp" "tests/CMakeFiles/envmon_tests.dir/common_strings_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/common_strings_test.cpp.o.d"
  "/root/repo/tests/common_units_test.cpp" "tests/CMakeFiles/envmon_tests.dir/common_units_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/common_units_test.cpp.o.d"
  "/root/repo/tests/failure_injection_test.cpp" "tests/CMakeFiles/envmon_tests.dir/failure_injection_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/failure_injection_test.cpp.o.d"
  "/root/repo/tests/fuzz_test.cpp" "tests/CMakeFiles/envmon_tests.dir/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/fuzz_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/envmon_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/ipmi_test.cpp" "tests/CMakeFiles/envmon_tests.dir/ipmi_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/ipmi_test.cpp.o.d"
  "/root/repo/tests/mic_mpss_test.cpp" "tests/CMakeFiles/envmon_tests.dir/mic_mpss_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/mic_mpss_test.cpp.o.d"
  "/root/repo/tests/mic_test.cpp" "tests/CMakeFiles/envmon_tests.dir/mic_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/mic_test.cpp.o.d"
  "/root/repo/tests/misc_coverage_test.cpp" "tests/CMakeFiles/envmon_tests.dir/misc_coverage_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/misc_coverage_test.cpp.o.d"
  "/root/repo/tests/moneq_backends_test.cpp" "tests/CMakeFiles/envmon_tests.dir/moneq_backends_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/moneq_backends_test.cpp.o.d"
  "/root/repo/tests/moneq_capability_test.cpp" "tests/CMakeFiles/envmon_tests.dir/moneq_capability_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/moneq_capability_test.cpp.o.d"
  "/root/repo/tests/moneq_csv_reader_test.cpp" "tests/CMakeFiles/envmon_tests.dir/moneq_csv_reader_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/moneq_csv_reader_test.cpp.o.d"
  "/root/repo/tests/moneq_fleet_test.cpp" "tests/CMakeFiles/envmon_tests.dir/moneq_fleet_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/moneq_fleet_test.cpp.o.d"
  "/root/repo/tests/moneq_limitations_test.cpp" "tests/CMakeFiles/envmon_tests.dir/moneq_limitations_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/moneq_limitations_test.cpp.o.d"
  "/root/repo/tests/moneq_profiler_test.cpp" "tests/CMakeFiles/envmon_tests.dir/moneq_profiler_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/moneq_profiler_test.cpp.o.d"
  "/root/repo/tests/moneq_unified_test.cpp" "tests/CMakeFiles/envmon_tests.dir/moneq_unified_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/moneq_unified_test.cpp.o.d"
  "/root/repo/tests/nvml_test.cpp" "tests/CMakeFiles/envmon_tests.dir/nvml_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/nvml_test.cpp.o.d"
  "/root/repo/tests/power_profile_test.cpp" "tests/CMakeFiles/envmon_tests.dir/power_profile_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/power_profile_test.cpp.o.d"
  "/root/repo/tests/power_sensor_test.cpp" "tests/CMakeFiles/envmon_tests.dir/power_sensor_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/power_sensor_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/envmon_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/rapl_test.cpp" "tests/CMakeFiles/envmon_tests.dir/rapl_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/rapl_test.cpp.o.d"
  "/root/repo/tests/sched_test.cpp" "tests/CMakeFiles/envmon_tests.dir/sched_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/sched_test.cpp.o.d"
  "/root/repo/tests/sim_engine_test.cpp" "tests/CMakeFiles/envmon_tests.dir/sim_engine_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/sim_engine_test.cpp.o.d"
  "/root/repo/tests/sim_trace_test.cpp" "tests/CMakeFiles/envmon_tests.dir/sim_trace_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/sim_trace_test.cpp.o.d"
  "/root/repo/tests/smpi_test.cpp" "tests/CMakeFiles/envmon_tests.dir/smpi_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/smpi_test.cpp.o.d"
  "/root/repo/tests/tools_papi_test.cpp" "tests/CMakeFiles/envmon_tests.dir/tools_papi_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/tools_papi_test.cpp.o.d"
  "/root/repo/tests/tools_tau_powerpack_test.cpp" "tests/CMakeFiles/envmon_tests.dir/tools_tau_powerpack_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/tools_tau_powerpack_test.cpp.o.d"
  "/root/repo/tests/tsdb_export_test.cpp" "tests/CMakeFiles/envmon_tests.dir/tsdb_export_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/tsdb_export_test.cpp.o.d"
  "/root/repo/tests/tsdb_test.cpp" "tests/CMakeFiles/envmon_tests.dir/tsdb_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/tsdb_test.cpp.o.d"
  "/root/repo/tests/workloads_test.cpp" "tests/CMakeFiles/envmon_tests.dir/workloads_test.cpp.o" "gcc" "tests/CMakeFiles/envmon_tests.dir/workloads_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenarios/CMakeFiles/envmon_scenarios.dir/DependInfo.cmake"
  "/root/repo/build/src/tools/CMakeFiles/envmon_tools.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/envmon_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/moneq/CMakeFiles/envmon_moneq.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/envmon_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/envmon_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/bgq/CMakeFiles/envmon_bgq.dir/DependInfo.cmake"
  "/root/repo/build/src/rapl/CMakeFiles/envmon_rapl.dir/DependInfo.cmake"
  "/root/repo/build/src/nvml/CMakeFiles/envmon_nvml.dir/DependInfo.cmake"
  "/root/repo/build/src/mic/CMakeFiles/envmon_mic.dir/DependInfo.cmake"
  "/root/repo/build/src/smpi/CMakeFiles/envmon_smpi.dir/DependInfo.cmake"
  "/root/repo/build/src/ipmi/CMakeFiles/envmon_ipmi.dir/DependInfo.cmake"
  "/root/repo/build/src/tsdb/CMakeFiles/envmon_tsdb.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/envmon_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/envmon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/envmon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
