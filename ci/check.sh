#!/usr/bin/env bash
# The full pre-merge check, runnable anywhere the toolchain exists:
#
#   1. tier-1: default build + the complete ctest suite (ROADMAP.md's
#      "must stay green" bar);
#   2. the 4096-node fleet bench smoke: determinism across 1/2/8
#      workers, throughput, per-node memory, and telemetry self-overhead
#      gates on the work-stealing scheduler (exit code is the gate);
#   3. crash-recovery smoke: the durability bench writer is SIGKILLed
#      mid-ingest and the store must reopen with a byte-identical
#      prefix of the deterministic stream (DESIGN.md §13's gate);
#   4. daemon smoke: a real envmond process serves three concurrent
#      clients over its Unix socket, then the in-process variant also
#      gates frame-log replay identity (DESIGN.md §14's gate);
#   5. codec decode smoke: every compiled simd variant decodes the
#      sensor-shaped column and timestamp stream bit-identically to the
#      reference decoders (DESIGN.md §15's identity contract; the
#      throughput gate itself runs under the Bench configuration);
#   6. property sweep: the `prop` label re-runs at an elevated case
#      count (the tier-1 pass already ran the defaults);
#   7. ASan+UBSan build of the obs + fleet + persist + daemon + prop
#      labels (the suites that exercise the telemetry rollup, flight
#      recorders, the ingest path, the durable storage layer, the wire
#      protocol, and the randomized codec/fold/engine properties —
#      the garbage-decode properties are the UBSan workload for the
#      bit-level kernels);
#   8. TSan build of the same labels — the fleet suite's 8-worker
#      byte-equality tests and the daemon suite's multi-client
#      server/client runs double as its data-race workload.
#
# Usage: ci/check.sh [--tier1-only]
# Build trees land in build/ (tier 1), build-asan/, and build-tsan/.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
SANITIZED_LABELS='obs|fleet|persist|daemon|prop'
# High-case-count sweep for the dedicated property pass; the sanitizer
# passes keep the default counts so the matrix stays fast.
PROP_SWEEP_CASES=2000

run_suite() {
  local dir="$1"; shift
  local label="$1"; shift
  echo "== ${label}: configure + build (${dir}) =="
  cmake -B "${dir}" -S . "$@" >/dev/null
  cmake --build "${dir}" -j "${JOBS}"
}

run_suite build "tier 1"
echo "== tier 1: ctest (all labels) =="
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo "== fleet bench smoke: 4096 nodes, 1/2/8 workers =="
./build/bench/fleet_scale --smoke

echo "== crash-recovery smoke: kill -9 mid-ingest, reopen, verify digest =="
CRASH_DIR="$(mktemp -d)"
trap 'rm -rf "${CRASH_DIR}"' EXIT
./build/bench/durability --writer "${CRASH_DIR}" &
WRITER_PID=$!
sleep 2
kill -9 "${WRITER_PID}" 2>/dev/null || true
wait "${WRITER_PID}" 2>/dev/null || true
./build/bench/durability --verify "${CRASH_DIR}"

echo "== daemon smoke: envmond process + 3 clients, then replay identity =="
DAEMON_SOCK="${CRASH_DIR}/envmond.sock"
./build/examples/envmond "${DAEMON_SOCK}" &
DAEMON_PID=$!
for _ in $(seq 50); do [[ -S "${DAEMON_SOCK}" ]] && break; sleep 0.1; done
./build/bench/daemon_ingest --smoke "${DAEMON_SOCK}"
kill -TERM "${DAEMON_PID}" 2>/dev/null || true
wait "${DAEMON_PID}" 2>/dev/null || true
./build/bench/daemon_ingest --smoke

echo "== codec decode smoke: all variants bit-identical to the reference =="
./build/bench/codec_decode --smoke

echo "== property sweep: -L prop at ENVMON_PROP_CASES=${PROP_SWEEP_CASES} =="
ENVMON_PROP_CASES="${PROP_SWEEP_CASES}" \
  ctest --test-dir build --output-on-failure -j "${JOBS}" -L prop

if [[ "${1:-}" == "--tier1-only" ]]; then
  echo "OK (tier 1 only)"
  exit 0
fi

run_suite build-asan "ASan+UBSan" -DENVMON_SANITIZE=address
echo "== ASan+UBSan: ctest -L '${SANITIZED_LABELS}' =="
ctest --test-dir build-asan --output-on-failure -j "${JOBS}" -L "${SANITIZED_LABELS}"

run_suite build-tsan "TSan" -DENVMON_TSAN=ON
echo "== TSan: ctest -L '${SANITIZED_LABELS}' =="
ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" -L "${SANITIZED_LABELS}"

echo "OK: tier 1 + sanitized obs/fleet suites all green"
