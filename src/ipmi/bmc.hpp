#pragma once
// Baseboard Management Controller with an IPMB face.
//
// The BMC owns a routing table of satellite management controllers (for
// us: the Xeon Phi's SMC) keyed by slave address, plus its own sensor
// repository.  Sensor readings use the IPMI linear conversion
//   value = (M * raw + B * 10^Bexp) * 10^Rexp
// with 8-bit raw readings, which is why out-of-band data is coarser than
// the in-band paths the paper measures.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "common/status.hpp"
#include "fault/injector.hpp"
#include "ipmi/ipmb.hpp"

namespace envmon::ipmi {

// IPMI sensor-data-record-style linear conversion factors.
struct SensorFactors {
  double m = 1.0;
  double b = 0.0;
  int b_exp = 0;
  int r_exp = 0;

  [[nodiscard]] double decode(std::uint8_t raw) const;
  // Nearest raw code for a physical value, clamped to [0, 255].
  [[nodiscard]] std::uint8_t encode(double value) const;
};

struct SensorDef {
  std::uint8_t number = 0;
  std::string name;
  SensorFactors factors;
  // Pull-based: invoked at request time with no argument; the owner
  // closure captures whatever device state it needs.
  std::function<double()> read;
};

// Anything that can answer IPMB requests (the BMC itself, an SMC, ...).
class ManagementController {
 public:
  virtual ~ManagementController() = default;
  [[nodiscard]] virtual IpmbMessage handle(const IpmbMessage& request) = 0;
};

// A sensor-owning controller: implements GetDeviceId and GetSensorReading
// over its registered sensors.  Both the platform BMC and the card SMC
// are instances of this.
class SensorController : public ManagementController {
 public:
  SensorController(std::uint8_t slave_addr, std::uint8_t device_id)
      : slave_addr_(slave_addr), device_id_(device_id) {}

  Status add_sensor(SensorDef def);
  [[nodiscard]] std::uint8_t slave_addr() const { return slave_addr_; }
  [[nodiscard]] std::optional<SensorFactors> factors(std::uint8_t sensor) const;

  [[nodiscard]] IpmbMessage handle(const IpmbMessage& request) override;

 private:
  std::uint8_t slave_addr_;
  std::uint8_t device_id_;
  std::map<std::uint8_t, SensorDef> sensors_;
};

// The platform BMC: routes requests whose responder address is not its
// own to the registered satellite controller (bridging, as the host-side
// tools do when they query the Phi's SMC through the BMC).
class Bmc : public SensorController {
 public:
  explicit Bmc(std::uint8_t slave_addr = 0x20) : SensorController(slave_addr, 0x01) {}

  void register_satellite(ManagementController* controller, std::uint8_t addr);

  // Entry point for host-side requests: encoded frames in, frames out.
  // Malformed frames yield an error status (a real BMC would drop them).
  [[nodiscard]] Result<std::vector<std::uint8_t>> submit(
      const std::vector<std::uint8_t>& frame);

  /// Routes every submitted frame through `injector` (site
  /// fault::sites::kIpmb by default): an injected failure drops the
  /// frame — the caller sees the status instead of a response.  The bus
  /// has no cost meter, so delay and corruption schedules are ignored.
  void attach_fault_hook(fault::Injector& injector,
                         std::string site = std::string(fault::sites::kIpmb)) {
    fault_hook_.attach(injector, std::move(site));
  }

 private:
  std::map<std::uint8_t, ManagementController*> satellites_;
  fault::Hook fault_hook_;
};

// Convenience client: builds a GetSensorReading request, runs it through
// the BMC, and decodes the reading with the controller's factors.
class IpmbClient {
 public:
  IpmbClient(Bmc& bmc, std::uint8_t own_addr) : bmc_(&bmc), own_addr_(own_addr) {}

  [[nodiscard]] Result<double> read_sensor(const SensorController& target,
                                           std::uint8_t sensor_number);

 private:
  Bmc* bmc_;
  std::uint8_t own_addr_;
  std::uint8_t next_seq_ = 0;
};

}  // namespace envmon::ipmi
