#include "ipmi/bmc.hpp"

#include <algorithm>
#include <cmath>

namespace envmon::ipmi {

namespace {
double pow10i(int e) { return std::pow(10.0, e); }
}  // namespace

double SensorFactors::decode(std::uint8_t raw) const {
  return (m * static_cast<double>(raw) + b * pow10i(b_exp)) * pow10i(r_exp);
}

std::uint8_t SensorFactors::encode(double value) const {
  if (m == 0.0) return 0;
  const double raw = (value / pow10i(r_exp) - b * pow10i(b_exp)) / m;
  return static_cast<std::uint8_t>(std::clamp(std::lround(raw), 0L, 255L));
}

Status SensorController::add_sensor(SensorDef def) {
  if (!def.read) {
    return Status::invalid_argument("sensor has no read callback");
  }
  const auto [_, inserted] = sensors_.emplace(def.number, std::move(def));
  if (!inserted) {
    return Status::invalid_argument("duplicate sensor number");
  }
  return Status::ok();
}

std::optional<SensorFactors> SensorController::factors(std::uint8_t sensor) const {
  const auto it = sensors_.find(sensor);
  if (it == sensors_.end()) return std::nullopt;
  return it->second.factors;
}

IpmbMessage SensorController::handle(const IpmbMessage& request) {
  if (request.net_fn == static_cast<std::uint8_t>(NetFn::kApp) &&
      request.cmd == kCmdGetDeviceId) {
    // Minimal GetDeviceId response: device id, revision, fw 1.0, IPMI 1.5.
    return request.make_response(kCcOk, {device_id_, 0x00, 0x01, 0x00, 0x51});
  }
  if (request.net_fn == static_cast<std::uint8_t>(NetFn::kSensorEvent) &&
      request.cmd == kCmdGetSensorReading) {
    if (request.data.empty()) return request.make_response(kCcInvalidSensor);
    const auto it = sensors_.find(request.data[0]);
    if (it == sensors_.end()) return request.make_response(kCcInvalidSensor);
    const double value = it->second.read();
    const std::uint8_t raw = it->second.factors.encode(value);
    // reading, "scanning enabled" flags, thresholds byte.
    return request.make_response(kCcOk, {raw, 0x40, 0x00});
  }
  return request.make_response(kCcInvalidCommand);
}

void Bmc::register_satellite(ManagementController* controller, std::uint8_t addr) {
  satellites_[addr] = controller;
}

Result<std::vector<std::uint8_t>> Bmc::submit(const std::vector<std::uint8_t>& frame) {
  // A faulted bus drops the frame before the BMC even parses it.
  if (fault_hook_.attached()) {
    const fault::Outcome fo = fault_hook_.intercept();
    if (!fo.ok()) return fo.status;
  }
  auto decoded = decode(frame);
  if (!decoded) return decoded.status();
  const IpmbMessage& msg = decoded.value();

  IpmbMessage response;
  if (msg.rs_addr == slave_addr()) {
    response = handle(msg);
  } else {
    const auto it = satellites_.find(msg.rs_addr);
    if (it == satellites_.end()) {
      return Status::not_found("no controller at slave address " + std::to_string(msg.rs_addr));
    }
    response = it->second->handle(msg);
  }
  return encode(response);
}

Result<double> IpmbClient::read_sensor(const SensorController& target,
                                       std::uint8_t sensor_number) {
  IpmbMessage req;
  req.rs_addr = target.slave_addr();
  req.net_fn = static_cast<std::uint8_t>(NetFn::kSensorEvent);
  req.rq_addr = own_addr_;
  req.rq_seq = next_seq_;
  next_seq_ = static_cast<std::uint8_t>((next_seq_ + 1) & 0x3f);
  req.cmd = kCmdGetSensorReading;
  req.data = {sensor_number};

  auto frame = bmc_->submit(encode(req));
  if (!frame) return frame.status();
  auto resp = decode(frame.value());
  if (!resp) return resp.status();
  const auto& data = resp.value().data;
  if (data.empty()) {
    return Status::internal("empty IPMB response");
  }
  if (data[0] != kCcOk) {
    return Status::unavailable("IPMB completion code " + std::to_string(data[0]));
  }
  if (data.size() < 2) {
    return Status::internal("truncated sensor reading response");
  }
  const auto f = target.factors(sensor_number);
  if (!f) {
    return Status::not_found("unknown sensor on target controller");
  }
  return f->decode(data[1]);
}

}  // namespace envmon::ipmi
