#include "ipmi/ipmb.hpp"

namespace envmon::ipmi {

std::uint8_t ipmb_checksum(const std::uint8_t* bytes, std::size_t n) {
  std::uint8_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) sum = static_cast<std::uint8_t>(sum + bytes[i]);
  return static_cast<std::uint8_t>(-sum);
}

IpmbMessage IpmbMessage::make_response(std::uint8_t completion_code,
                                       std::vector<std::uint8_t> payload) const {
  IpmbMessage resp;
  resp.rs_addr = rq_addr;
  resp.net_fn = static_cast<std::uint8_t>(net_fn | 0x01);
  resp.rs_lun = rq_lun;
  resp.rq_addr = rs_addr;
  resp.rq_seq = rq_seq;
  resp.rq_lun = rs_lun;
  resp.cmd = cmd;
  resp.data.reserve(payload.size() + 1);
  resp.data.push_back(completion_code);
  resp.data.insert(resp.data.end(), payload.begin(), payload.end());
  return resp;
}

std::vector<std::uint8_t> encode(const IpmbMessage& msg) {
  std::vector<std::uint8_t> frame;
  frame.reserve(7 + msg.data.size());
  frame.push_back(msg.rs_addr);
  frame.push_back(static_cast<std::uint8_t>((msg.net_fn << 2) | (msg.rs_lun & 0x03)));
  frame.push_back(ipmb_checksum(frame.data(), 2));
  frame.push_back(msg.rq_addr);
  frame.push_back(static_cast<std::uint8_t>((msg.rq_seq << 2) | (msg.rq_lun & 0x03)));
  frame.push_back(msg.cmd);
  frame.insert(frame.end(), msg.data.begin(), msg.data.end());
  frame.push_back(ipmb_checksum(frame.data() + 3, frame.size() - 3));
  return frame;
}

Result<IpmbMessage> decode(const std::vector<std::uint8_t>& frame) {
  if (frame.size() < 7) {
    return Status::invalid_argument("IPMB frame shorter than 7 bytes");
  }
  if (ipmb_checksum(frame.data(), 2) != frame[2]) {
    return Status::invalid_argument("IPMB header checksum mismatch");
  }
  const std::size_t body_len = frame.size() - 3 - 1;  // after cksum1, before cksum2
  if (ipmb_checksum(frame.data() + 3, body_len) != frame.back()) {
    return Status::invalid_argument("IPMB body checksum mismatch");
  }
  IpmbMessage msg;
  msg.rs_addr = frame[0];
  msg.net_fn = static_cast<std::uint8_t>(frame[1] >> 2);
  msg.rs_lun = static_cast<std::uint8_t>(frame[1] & 0x03);
  msg.rq_addr = frame[3];
  msg.rq_seq = static_cast<std::uint8_t>(frame[4] >> 2);
  msg.rq_lun = static_cast<std::uint8_t>(frame[4] & 0x03);
  msg.cmd = frame[5];
  msg.data.assign(frame.begin() + 6, frame.end() - 1);
  return msg;
}

}  // namespace envmon::ipmi
