#pragma once
// IPMB (Intelligent Platform Management Bus) message codec.
//
// The Xeon Phi's out-of-band path sends environmental readings from the
// card's System Management Controller (SMC) to the platform's Baseboard
// Management Controller (BMC) "using the intelligent platform management
// bus (IPMB) protocol" (paper §II-D).  We implement the IPMB v1.0 framing:
//
//   byte 0: rsSA        responder slave address
//   byte 1: netFn<<2 | rsLUN
//   byte 2: checksum1   (covers bytes 0-1)
//   byte 3: rqSA        requester slave address
//   byte 4: rqSeq<<2 | rqLUN
//   byte 5: cmd
//   byte 6..n-2: data
//   byte n-1: checksum2 (covers bytes 3..n-2)
//
// Checksums are 2's-complement: the sum of the covered bytes plus the
// checksum is 0 mod 256.

#include <cstdint>
#include <vector>

#include "common/status.hpp"

namespace envmon::ipmi {

// Network function codes (request forms; responses are code | 1).
enum class NetFn : std::uint8_t {
  kChassis = 0x00,
  kSensorEvent = 0x04,
  kApp = 0x06,
  kStorage = 0x0a,
  kTransport = 0x0c,
};

// Commands used by the environmental path.
inline constexpr std::uint8_t kCmdGetDeviceId = 0x01;       // NetFn App
inline constexpr std::uint8_t kCmdGetSensorReading = 0x2d;  // NetFn Sensor/Event

// IPMI completion codes.
inline constexpr std::uint8_t kCcOk = 0x00;
inline constexpr std::uint8_t kCcInvalidSensor = 0xcb;
inline constexpr std::uint8_t kCcInvalidCommand = 0xc1;
inline constexpr std::uint8_t kCcBusy = 0xc0;

struct IpmbMessage {
  std::uint8_t rs_addr = 0;
  std::uint8_t net_fn = 0;  // 6-bit
  std::uint8_t rs_lun = 0;  // 2-bit
  std::uint8_t rq_addr = 0;
  std::uint8_t rq_seq = 0;  // 6-bit
  std::uint8_t rq_lun = 0;  // 2-bit
  std::uint8_t cmd = 0;
  std::vector<std::uint8_t> data;

  [[nodiscard]] bool is_response() const { return (net_fn & 0x01) != 0; }

  // Builds the matching response frame (netFn|1, addresses swapped, same
  // seq/cmd) with `data` starting with the completion code.
  [[nodiscard]] IpmbMessage make_response(std::uint8_t completion_code,
                                          std::vector<std::uint8_t> payload = {}) const;
};

[[nodiscard]] std::uint8_t ipmb_checksum(const std::uint8_t* bytes, std::size_t n);

[[nodiscard]] std::vector<std::uint8_t> encode(const IpmbMessage& msg);
[[nodiscard]] Result<IpmbMessage> decode(const std::vector<std::uint8_t>& frame);

}  // namespace envmon::ipmi
