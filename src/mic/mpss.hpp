#pragma once
// MPSS-style host tooling for the Xeon Phi.
//
// The Manycore Platform Software Stack ships host utilities (micinfo,
// micsmc) layered on the same in-band plumbing the paper measures.  We
// implement the read-only inventory/status slice: per-card identity,
// live power/thermal/memory readings through the SysMgmt path, and an
// aggregate fleet view — what an operator greps before blaming a card.

#include <string>
#include <vector>

#include "common/status.hpp"
#include "mic/card.hpp"
#include "mic/sysmgmt.hpp"

namespace envmon::mic {

struct CardStatus {
  int index = -1;
  std::string state;  // "online", "lost"
  Watts power{};
  Celsius die_temp{};
  Bytes memory_total{};
  Bytes memory_used{};
  double fan_rpm = 0.0;
};

// Host-side manager over a set of cards reachable through SCIF.
class MpssHost {
 public:
  explicit MpssHost(ScifNetwork& network) : network_(&network) {}

  // Registers a card's SCIF node for management.  The card must already
  // run a SysMgmtService on that node.
  Status add_card(ScifNodeId node, const PhiSpec& spec);

  [[nodiscard]] std::size_t card_count() const { return cards_.size(); }

  // micsmc-style live status of one card (four in-band queries).
  [[nodiscard]] Result<CardStatus> status(std::size_t index, sim::SimTime now);

  // Whole-fleet sweep; unreachable cards are reported as "lost" rather
  // than failing the sweep.
  [[nodiscard]] std::vector<CardStatus> sweep(sim::SimTime now);

  // micinfo-style identity text for one card.
  [[nodiscard]] Result<std::string> info(std::size_t index) const;

  [[nodiscard]] const sim::CostMeter& cost() const { return meter_; }

 private:
  struct ManagedCard {
    ScifNodeId node;
    PhiSpec spec;
  };

  ScifNetwork* network_;
  std::vector<ManagedCard> cards_;
  sim::CostMeter meter_;
};

}  // namespace envmon::mic
