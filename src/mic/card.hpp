#pragma once
// The Intel Xeon Phi (Knights Corner) coprocessor card model.
//
// 61 cores x 4 hardware threads, ~1.2 TF fp64 (paper §II-D).  The card
// runs its own Linux (the coprocessor OS); power limiting internally
// reuses RAPL, which is why the paper finds the MICRAS daemon's query
// cost (~0.04 ms) nearly identical to host RAPL MSR reads (~0.03 ms).
//
// The behaviour that produces Fig 7: an *in-band* SysMgmt query must run
// code on the card ("code that wasn't already executing on the device
// before the call was made must run, collect, and return"), waking cores
// and raising measured power above the daemon-only baseline.  We model
// each in-band query as a transient management-power pulse; the
// steady-state shift under periodic polling is pulse_watts *
// duty_cycle.

#include <cstdint>
#include <deque>

#include "common/rng.hpp"
#include "power/component.hpp"
#include "power/sensor.hpp"
#include "power/thermal.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace envmon::mic {

struct PhiSpec {
  int cores = 61;
  int threads_per_core = 4;
  double peak_tflops_fp64 = 1.2;
  Bytes memory = gibibytes(8.0);
  Watts tdp{245.0};

  [[nodiscard]] int total_threads() const { return cores * threads_per_core; }
};

struct PhiPowerConfig {
  // Calibrated to the Fig 7 plot range (111-119 W around a light no-op
  // load) and the Fig 8 plateau (~180 W/card under Gaussian elimination).
  power::RailModel cores{Watts{85.0}, Watts{100.0}, Volts{1.0}};
  power::RailModel gddr{Watts{10.0}, Watts{42.0}, Volts{1.5}};
  power::RailModel board{Watts{8.5}, Watts{0.0}, Volts{12.0}};
  power::RailModel pcie{Watts{2.0}, Watts{9.0}, Volts{3.3}};

  // Transient draw of servicing one in-band management query.  With the
  // card sensor's ~50 ms refresh, periodic polling sees this on nearly
  // every sample: the ~3 W distribution shift of Fig 7.
  Watts query_pulse{3.2};
  sim::Duration query_pulse_width = sim::Duration::millis(210);

  // The card's internal sensor (RAPL-derived): ~50 ms refresh, ~0.5 W
  // resolution, light noise.
  sim::Duration sensor_update = sim::Duration::millis(50);
  double sensor_noise_sigma = 0.35;
  double sensor_quantum = 0.1;  // reports in tenths of a watt
  std::uint64_t seed = 0x9d11;
};

class PhiCard {
 public:
  PhiCard(sim::Engine& engine, PhiSpec spec = {}, PhiPowerConfig config = {});

  [[nodiscard]] const PhiSpec& spec() const { return spec_; }

  void run_workload(const power::UtilizationProfile* profile, sim::SimTime start) {
    model_.run_workload(profile, start);
  }

  // True electrical power including any management-query pulses.
  [[nodiscard]] Watts true_power(sim::SimTime t) const;

  // The internal (RAPL-derived) sensor both collection paths read.
  [[nodiscard]] Watts sensed_power(sim::SimTime t);

  [[nodiscard]] Celsius die_temperature(sim::SimTime t);
  [[nodiscard]] double fan_speed_rpm(sim::SimTime t);
  [[nodiscard]] Bytes memory_used() const { return memory_used_; }
  void set_memory_used(Bytes b) { memory_used_ = b; }

  // Called by the in-band path when a query lands on the card.
  void register_inband_query(sim::SimTime t);
  [[nodiscard]] std::uint64_t inband_queries_served() const { return inband_queries_; }

  [[nodiscard]] sim::Engine& engine() { return *engine_; }

 private:
  [[nodiscard]] Watts management_power(sim::SimTime t) const;
  void purge_old_pulses(sim::SimTime t);

  sim::Engine* engine_;
  PhiSpec spec_;
  PhiPowerConfig config_;
  power::DevicePowerModel model_;
  power::SensorPipeline sensor_;
  power::ThermalModel thermal_;
  Bytes memory_used_{};
  std::deque<sim::SimTime> pulses_;  // start times of recent query pulses
  std::uint64_t inband_queries_ = 0;
};

}  // namespace envmon::mic
