#include "mic/smc.hpp"

namespace envmon::mic {

Smc::Smc(PhiCard& card, std::uint8_t slave_addr)
    : ipmi::SensorController(slave_addr, 0x2c), card_(&card) {
  using ipmi::SensorDef;
  using ipmi::SensorFactors;

  // Power: 2 W per count covers 0-510 W (the card's TDP with margin).
  (void)add_sensor(SensorDef{
      kSmcSensorPower,
      "card_power_watts",
      SensorFactors{2.0, 0.0, 0, 0},
      [card = card_] { return card->sensed_power(card->engine().now()).value(); },
  });
  (void)add_sensor(SensorDef{
      kSmcSensorDieTemp,
      "die_temp_celsius",
      SensorFactors{1.0, 0.0, 0, 0},
      [card = card_] { return card->die_temperature(card->engine().now()).value(); },
  });
  (void)add_sensor(SensorDef{
      kSmcSensorFan,
      "fan_speed_rpm",
      SensorFactors{50.0, 0.0, 0, 0},
      [card = card_] { return card->fan_speed_rpm(card->engine().now()); },
  });
  (void)add_sensor(SensorDef{
      kSmcSensorMemUsed,
      "memory_used_mib",
      SensorFactors{64.0, 0.0, 0, 0},
      [card = card_] { return card->memory_used().value() / (1024.0 * 1024.0); },
  });
}

void Smc::attach_to_bmc(ipmi::Bmc& bmc) { bmc.register_satellite(this, slave_addr()); }

}  // namespace envmon::mic
