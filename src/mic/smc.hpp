#pragma once
// The Xeon Phi System Management Controller and the out-of-band path.
//
// Paper §II-D: the out-of-band method "starts with the same capabilities
// in the coprocessors, but sends the information to the Xeon Phi's
// System Management Controller (SMC).  The SMC can then respond to
// queries from the platform's Baseboard Management Controller (BMC)
// using the intelligent platform management bus (IPMB) protocol to pass
// the information upstream to the user."
//
// The SMC is a SensorController (ipmi module) whose sensors read the
// card's state without disturbing it — out-of-band queries never wake
// application cores, at the price of 8-bit IPMI sensor resolution.

#include <memory>

#include "ipmi/bmc.hpp"
#include "mic/card.hpp"

namespace envmon::mic {

// IPMI sensor numbers exposed by the SMC.
inline constexpr std::uint8_t kSmcSensorPower = 0x10;      // watts, 2 W/count
inline constexpr std::uint8_t kSmcSensorDieTemp = 0x11;    // degrees C, 1 C/count
inline constexpr std::uint8_t kSmcSensorFan = 0x12;        // RPM, 50 RPM/count
inline constexpr std::uint8_t kSmcSensorMemUsed = 0x13;    // MiB, 64 MiB/count

class Smc : public ipmi::SensorController {
 public:
  // The SMC samples the card's sensor state at request time via the
  // engine the card is attached to (pull model: BMC bridges a request,
  // SMC reads registers, responds).
  Smc(PhiCard& card, std::uint8_t slave_addr = 0x30);

  // Registers this SMC as a satellite controller on the platform BMC.
  void attach_to_bmc(ipmi::Bmc& bmc);

 private:
  PhiCard* card_;
};

}  // namespace envmon::mic
