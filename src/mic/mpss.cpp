#include "mic/mpss.hpp"

#include <cstdio>

namespace envmon::mic {

Status MpssHost::add_card(ScifNodeId node, const PhiSpec& spec) {
  if (!network_->has_listener(node, kSysMgmtPort)) {
    return Status::unavailable("no SysMgmt agent on SCIF node " + std::to_string(node) +
                      " (is the coprocessor OS booted?)");
  }
  for (const auto& c : cards_) {
    if (c.node == node) {
      return Status::invalid_argument("card already registered");
    }
  }
  cards_.push_back(ManagedCard{node, spec});
  return Status::ok();
}

Result<CardStatus> MpssHost::status(std::size_t index, sim::SimTime now) {
  if (index >= cards_.size()) {
    return Status::not_found("no card at index " + std::to_string(index));
  }
  const ManagedCard& card = cards_[index];
  auto client = SysMgmtClient::connect(*network_, card.node);
  if (!client) return client.status();

  CardStatus status;
  status.index = static_cast<int>(index);
  const auto before = client.value().cost().total();
  auto power = client.value().power(now);
  if (!power) return power.status();
  auto temp = client.value().die_temperature(now);
  if (!temp) return temp.status();
  auto mem = client.value().memory_used(now);
  if (!mem) return mem.status();
  auto fan = client.value().fan_speed(now);
  if (!fan) return fan.status();
  meter_.charge(client.value().cost().total() - before);

  status.state = "online";
  status.power = power.value();
  status.die_temp = temp.value();
  status.memory_total = card.spec.memory;
  status.memory_used = mem.value();
  status.fan_rpm = fan.value().value();
  return status;
}

std::vector<CardStatus> MpssHost::sweep(sim::SimTime now) {
  std::vector<CardStatus> out;
  out.reserve(cards_.size());
  for (std::size_t i = 0; i < cards_.size(); ++i) {
    auto s = status(i, now);
    if (s.is_ok()) {
      out.push_back(s.value());
    } else {
      CardStatus lost;
      lost.index = static_cast<int>(i);
      lost.state = "lost";
      out.push_back(lost);
    }
  }
  return out;
}

Result<std::string> MpssHost::info(std::size_t index) const {
  if (index >= cards_.size()) {
    return Status::not_found("no card at index " + std::to_string(index));
  }
  const PhiSpec& spec = cards_[index].spec;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "mic%zu:\n"
                "  Cores            : %d\n"
                "  Threads          : %d\n"
                "  Peak DP          : %.2f TFLOPS\n"
                "  GDDR capacity    : %.0f MiB\n"
                "  TDP              : %.0f W\n"
                "  SCIF node        : %d\n",
                index, spec.cores, spec.total_threads(), spec.peak_tflops_fp64,
                spec.memory.value() / (1024.0 * 1024.0), spec.tdp.value(),
                cards_[index].node);
  return std::string(buf);
}

}  // namespace envmon::mic
