#include "mic/micras.hpp"

#include <cmath>
#include <cstdio>

#include "common/strings.hpp"

namespace envmon::mic {

MicrasDaemon::MicrasDaemon(PhiCard& card, MicrasCosts costs) : card_(&card), costs_(costs) {}

Result<std::string> MicrasDaemon::read_file(std::string_view path, sim::SimTime now,
                                            sim::CostMeter* meter) {
  if (!running_) {
    return Status::unavailable("MICRAS daemon is not running");
  }
  // Scheduled faults hit before the read is served: a stalled open()
  // still burns the application's time on the card.
  const fault::Outcome fo = fault_hook_.intercept();
  if (fo.extra_latency.ns() > 0 && meter != nullptr) meter->charge(fo.extra_latency);
  if (!fo.ok()) return fo.status;
  if (meter != nullptr) meter->charge(costs_.per_read);
  ++reads_;

  char buf[256];
  if (path == kPowerFile) {
    const double total_uw = card_->sensed_power(now).value() * 1e6;
    // Split across the physical connectors the way the real file does:
    // PCIe slot up to 75 W, the rest over the 2x3/2x4 aux connectors.
    const double pcie_uw = std::min(total_uw, 75e6);
    const double rest = total_uw - pcie_uw;
    std::snprintf(buf, sizeof(buf), "%.0f\n%.0f\n%.0f\n%.0f\n%.0f\n", total_uw, total_uw,
                  pcie_uw, rest * 0.5, rest * 0.5);
    return std::string(buf);
  }
  if (path == kThermalFile) {
    const double die = card_->die_temperature(now).value();
    std::snprintf(buf, sizeof(buf), "%.0f\n%.0f\n%.0f\n%.0f\n", die, die - 8.0, die - 16.0,
                  die - 4.0);
    return std::string(buf);
  }
  if (path == kMemFile) {
    const double total = card_->spec().memory.value();
    const double used = card_->memory_used().value();
    std::snprintf(buf, sizeof(buf), "total: %.0f\nused: %.0f\nfree: %.0f\n", total, used,
                  total - used);
    return std::string(buf);
  }
  if (path == kFanFile) {
    std::snprintf(buf, sizeof(buf), "%.0f\n", card_->fan_speed_rpm(now));
    return std::string(buf);
  }
  return Status::not_found(std::string(path) + ": no such pseudo-file");
}

namespace {

Result<std::vector<double>> parse_lines(std::string_view content, std::size_t expect) {
  std::vector<double> values;
  for (const auto& line : split(content, '\n')) {
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) continue;
    // Accept both bare numbers and "key: value" lines.
    const auto colon = trimmed.find(':');
    const std::string_view num =
        colon == std::string_view::npos ? trimmed : trim(trimmed.substr(colon + 1));
    double v = 0.0;
    if (!parse_double(num, v)) {
      return Status::invalid_argument("unparseable pseudo-file line: " + std::string(line));
    }
    values.push_back(v);
  }
  if (values.size() < expect) {
    return Status::invalid_argument("pseudo-file has too few fields");
  }
  return values;
}

}  // namespace

Result<MicrasPowerReading> parse_power_file(std::string_view content) {
  auto values = parse_lines(content, 5);
  if (!values) return values.status();
  const auto& v = values.value();
  MicrasPowerReading r;
  r.total = Watts{v[0] * 1e-6};
  r.inst = Watts{v[1] * 1e-6};
  r.pcie = Watts{v[2] * 1e-6};
  r.c2x3 = Watts{v[3] * 1e-6};
  r.c2x4 = Watts{v[4] * 1e-6};
  return r;
}

Result<MicrasThermalReading> parse_thermal_file(std::string_view content) {
  auto values = parse_lines(content, 4);
  if (!values) return values.status();
  const auto& v = values.value();
  MicrasThermalReading r;
  r.die = Celsius{v[0]};
  r.gddr = Celsius{v[1]};
  r.intake = Celsius{v[2]};
  r.exhaust = Celsius{v[3]};
  return r;
}

}  // namespace envmon::mic
