#pragma once
// The in-band SysMgmt interface over SCIF.
//
// Paper §II-D: the "in-band" method "uses the symmetric communication
// interface (SCIF) network and the capabilities designed into the
// coprocessor OS and the host driver".  The host-side client opens a
// SCIF connection to the card's system-management agent; every query
// crosses to the card, wakes cores to run collection code (raising the
// card's power — the Fig 7 effect), and returns the reading.  Measured
// cost: ~14.2 ms per query, ~14% overhead when polled at the default
// rate.

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "fault/injector.hpp"
#include "mic/card.hpp"
#include "mic/scif.hpp"
#include "sim/cost.hpp"

namespace envmon::mic {

enum class SysMgmtRequest : std::uint8_t {
  kGetPowerReading = 1,
  kGetDieTemp = 2,
  kGetMemoryUsage = 3,
  kGetFanSpeed = 4,
};

// Wire format: request = [opcode]; response = [status, f64 little-endian].
[[nodiscard]] std::vector<std::uint8_t> encode_request(SysMgmtRequest op);
[[nodiscard]] std::vector<std::uint8_t> encode_response(std::uint8_t status, double value);
[[nodiscard]] Result<double> decode_response(const std::vector<std::uint8_t>& bytes);

// Card-side agent: binds the SysMgmt port on the card's SCIF node.
class SysMgmtService {
 public:
  SysMgmtService(PhiCard& card, ScifNetwork& network, ScifNodeId node);
  ~SysMgmtService();
  SysMgmtService(const SysMgmtService&) = delete;
  SysMgmtService& operator=(const SysMgmtService&) = delete;

  [[nodiscard]] ScifNodeId node() const { return node_; }

 private:
  [[nodiscard]] std::vector<std::uint8_t> handle(const std::vector<std::uint8_t>& request);

  PhiCard* card_;
  ScifNetwork* network_;
  ScifNodeId node_;
};

// Host-side client.
class SysMgmtClient {
 public:
  static Result<SysMgmtClient> connect(ScifNetwork& network, ScifNodeId card_node,
                                       ScifCosts costs = {});

  [[nodiscard]] Result<Watts> power(sim::SimTime now);
  [[nodiscard]] Result<Celsius> die_temperature(sim::SimTime now);
  [[nodiscard]] Result<Bytes> memory_used(sim::SimTime now);
  [[nodiscard]] Result<Rpm> fan_speed(sim::SimTime now);

  /// Routes every SCIF round trip through `injector` (site
  /// fault::sites::kMicScif by default).  Stalls land on the client's
  /// cost meter — the Phi's tens-of-milliseconds in-band holds;
  /// corruption lands on the decoded reading.
  void attach_fault_hook(fault::Injector& injector,
                         std::string site = std::string(fault::sites::kMicScif)) {
    fault_hook_.attach(injector, std::move(site));
  }

  [[nodiscard]] const sim::CostMeter& cost() const { return meter_; }

 private:
  explicit SysMgmtClient(ScifEndpoint endpoint) : endpoint_(std::move(endpoint)) {}

  [[nodiscard]] Result<double> query(SysMgmtRequest op);

  ScifEndpoint endpoint_;
  sim::CostMeter meter_;
  fault::Hook fault_hook_;
};

}  // namespace envmon::mic
