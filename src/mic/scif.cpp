#include "mic/scif.hpp"

namespace envmon::mic {

Status ScifNetwork::listen(ScifNodeId node, ScifPort port, ScifService service) {
  if (!service) {
    return Status::invalid_argument("null SCIF service");
  }
  const auto key = std::make_pair(node, port);
  if (listeners_.contains(key)) {
    return Status::invalid_argument("port " + std::to_string(port) + " already bound on node " +
                      std::to_string(node));
  }
  listeners_.emplace(key, std::move(service));
  return Status::ok();
}

void ScifNetwork::close(ScifNodeId node, ScifPort port) {
  listeners_.erase(std::make_pair(node, port));
}

bool ScifNetwork::has_listener(ScifNodeId node, ScifPort port) const {
  return listeners_.contains(std::make_pair(node, port));
}

Result<ScifEndpoint> ScifEndpoint::connect(ScifNetwork& network, ScifNodeId node,
                                           ScifPort port, ScifCosts costs) {
  if (!network.has_listener(node, port)) {
    return Status::unavailable("scif_connect: no listener on node " + std::to_string(node) + " port " +
                      std::to_string(port));
  }
  return ScifEndpoint(network, node, port, costs);
}

Result<std::vector<std::uint8_t>> ScifEndpoint::call(const std::vector<std::uint8_t>& request,
                                                     sim::CostMeter* meter) {
  const auto it = network_->listeners_.find(std::make_pair(node_, port_));
  if (it == network_->listeners_.end()) {
    return Status::unavailable("SCIF peer closed the connection");
  }
  if (meter != nullptr) meter->charge(costs_.round_trip());
  return it->second(request);
}

}  // namespace envmon::mic
