#pragma once
// The MICRAS daemon and its pseudo-file interface.
//
// Paper §II-D: "the MICRAS daemon is a tool which runs on both the host
// and device platforms. ... On the device ... this daemon exposes access
// to environmental data through pseudo-files mounted on a virtual file
// system.  In this way, when one wishes to collect data, it's simply a
// process of reading the appropriate file and parsing the data."
//
// Key properties the paper measures:
//   * reads cost ~0.04 ms — nearly identical to a host RAPL MSR read,
//     "because the implementation on both is essentially the same; the
//     Xeon Phi actually uses RAPL internally";
//   * the data is only reachable from code running *on the card*, so
//     collection contends with the application;
//   * unlike the in-band path, reading does not wake extra cores, so the
//     measured power baseline stays lower (Fig 7).

#include <map>
#include <string>
#include <string_view>

#include "common/status.hpp"
#include "fault/injector.hpp"
#include "mic/card.hpp"
#include "sim/cost.hpp"

namespace envmon::mic {

// Canonical pseudo-file paths (modeled on /sys/class/micras/*).
inline constexpr const char* kPowerFile = "/sys/class/micras/power";
inline constexpr const char* kThermalFile = "/sys/class/micras/thermal";
inline constexpr const char* kMemFile = "/sys/class/micras/mem";
inline constexpr const char* kFanFile = "/sys/class/micras/fan";

struct MicrasCosts {
  // "about 0.04 ms per query".
  sim::Duration per_read = sim::Duration::micros(40);
};

// The card-side virtual filesystem the daemon mounts.  Contents are
// rendered at open() time from the card's current sensor state, exactly
// like a sysfs show() callback.
class MicrasDaemon {
 public:
  explicit MicrasDaemon(PhiCard& card, MicrasCosts costs = {});

  void start() { running_ = true; }
  void stop() { running_ = false; }
  [[nodiscard]] bool running() const { return running_; }

  // open() + read() + close() of one pseudo-file at virtual time `now`.
  // Fails kUnavailable when the daemon is not running, kNotFound for an
  // unknown path.  Charges per_read to `meter` (the application's time —
  // this code runs on the card, in the app's shadow).
  [[nodiscard]] Result<std::string> read_file(std::string_view path, sim::SimTime now,
                                              sim::CostMeter* meter = nullptr);

  /// Routes every pseudo-file read through `injector` (site
  /// fault::sites::kMicras by default).  The pseudo-files carry text, so
  /// only failures and stalls apply; corruption schedules are ignored.
  void attach_fault_hook(fault::Injector& injector,
                         std::string site = std::string(fault::sites::kMicras)) {
    fault_hook_.attach(injector, std::move(site));
  }

  [[nodiscard]] std::uint64_t reads_served() const { return reads_; }

 private:
  PhiCard* card_;
  MicrasCosts costs_;
  bool running_ = false;
  std::uint64_t reads_ = 0;
  fault::Hook fault_hook_;
};

// Parsers for the pseudo-file formats (micro-watt integer fields, like
// the real MICRAS power file).
struct MicrasPowerReading {
  Watts total{};     // tot0: averaged window
  Watts inst{};      // instantaneous
  Watts pcie{};      // PCIe connector rail
  Watts c2x3{};      // 2x3 aux connector
  Watts c2x4{};      // 2x4 aux connector
};
[[nodiscard]] Result<MicrasPowerReading> parse_power_file(std::string_view content);

struct MicrasThermalReading {
  Celsius die{};
  Celsius gddr{};
  Celsius intake{};   // fan-in
  Celsius exhaust{};  // fan-out
};
[[nodiscard]] Result<MicrasThermalReading> parse_thermal_file(std::string_view content);

}  // namespace envmon::mic
