#pragma once
// SCIF: the Symmetric Communication Interface.
//
// Paper §II-D / Fig 6: SCIF "enables communication between the host and
// the Xeon Phi as well as between Xeon Phi cards within the host.  Its
// primary goal is to provide a uniform API for all communication across
// the PCI Express buses. ... all drivers should expose the same
// interfaces on both the host and on the Xeon Phi", with a user-mode
// library and a kernel-mode driver on each side.
//
// We reproduce the connection-oriented part the SysMgmt path needs:
// nodes (host = 0, cards = 1..N), ports, listeners, connect, and
// synchronous send/recv.  Latency is charged per message segment so that
// a full SysMgmt round trip — user lib, kernel driver, PCIe, card kernel,
// register access, and back — totals the paper's measured 14.2 ms.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/status.hpp"
#include "sim/cost.hpp"
#include "sim/time.hpp"

namespace envmon::mic {

using ScifNodeId = int;
inline constexpr ScifNodeId kHostNode = 0;

using ScifPort = std::uint16_t;
// Well-known port of the card-side system-management agent.
inline constexpr ScifPort kSysMgmtPort = 130;

struct ScifCosts {
  // Host user library <-> host kernel driver (ioctl).
  sim::Duration host_kernel_hop = sim::Duration::micros(900);
  // DMA/doorbell across PCIe, per direction.
  sim::Duration pcie_transit = sim::Duration::micros(1800);
  // Card-side kernel driver + waking the service thread.
  sim::Duration card_kernel_hop = sim::Duration::micros(4200);
  // Register collection on the card once awake.
  sim::Duration card_collection = sim::Duration::micros(400);

  [[nodiscard]] sim::Duration round_trip() const {
    // request: host kernel, pcie, card kernel; collection; reply back.
    return 2 * host_kernel_hop + 2 * pcie_transit + 2 * card_kernel_hop + card_collection;
  }
};

// A service bound to (node, port): takes request bytes, returns reply.
using ScifService = std::function<std::vector<std::uint8_t>(const std::vector<std::uint8_t>&)>;

class ScifNetwork {
 public:
  // scif_bind + scif_listen equivalent.
  Status listen(ScifNodeId node, ScifPort port, ScifService service);
  void close(ScifNodeId node, ScifPort port);

  [[nodiscard]] bool has_listener(ScifNodeId node, ScifPort port) const;

 private:
  friend class ScifEndpoint;
  std::map<std::pair<ScifNodeId, ScifPort>, ScifService> listeners_;
};

// A connected endpoint (scif_open + scif_connect).  Synchronous
// request/response; each call charges the full round-trip cost to the
// caller's meter.
class ScifEndpoint {
 public:
  static Result<ScifEndpoint> connect(ScifNetwork& network, ScifNodeId node, ScifPort port,
                                      ScifCosts costs = {});

  // scif_send + scif_recv pair.
  [[nodiscard]] Result<std::vector<std::uint8_t>> call(const std::vector<std::uint8_t>& request,
                                                       sim::CostMeter* meter = nullptr);

  [[nodiscard]] const ScifCosts& costs() const { return costs_; }

 private:
  ScifEndpoint(ScifNetwork& network, ScifNodeId node, ScifPort port, ScifCosts costs)
      : network_(&network), node_(node), port_(port), costs_(costs) {}

  ScifNetwork* network_;
  ScifNodeId node_;
  ScifPort port_;
  ScifCosts costs_;
};

}  // namespace envmon::mic
