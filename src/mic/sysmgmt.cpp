#include "mic/sysmgmt.hpp"

#include <cstring>

namespace envmon::mic {

std::vector<std::uint8_t> encode_request(SysMgmtRequest op) {
  return {static_cast<std::uint8_t>(op)};
}

std::vector<std::uint8_t> encode_response(std::uint8_t status, double value) {
  std::vector<std::uint8_t> out(1 + sizeof(double));
  out[0] = status;
  std::memcpy(out.data() + 1, &value, sizeof(double));
  return out;
}

Result<double> decode_response(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() != 1 + sizeof(double)) {
    return Status::internal("malformed SysMgmt response");
  }
  if (bytes[0] != 0) {
    return Status::unavailable("SysMgmt agent error code " + std::to_string(bytes[0]));
  }
  double value;
  std::memcpy(&value, bytes.data() + 1, sizeof(double));
  return value;
}

SysMgmtService::SysMgmtService(PhiCard& card, ScifNetwork& network, ScifNodeId node)
    : card_(&card), network_(&network), node_(node) {
  const Status s = network_->listen(
      node_, kSysMgmtPort,
      [this](const std::vector<std::uint8_t>& req) { return handle(req); });
  if (!s.is_ok()) {
    throw std::invalid_argument("SysMgmtService: " + s.to_string());
  }
}

SysMgmtService::~SysMgmtService() { network_->close(node_, kSysMgmtPort); }

std::vector<std::uint8_t> SysMgmtService::handle(const std::vector<std::uint8_t>& request) {
  if (request.size() != 1) return encode_response(1, 0.0);
  const sim::SimTime now = card_->engine().now();
  // Servicing the request runs collection code on the card: the power
  // perturbation the paper observes for the in-band path.
  card_->register_inband_query(now);
  switch (static_cast<SysMgmtRequest>(request[0])) {
    case SysMgmtRequest::kGetPowerReading:
      return encode_response(0, card_->sensed_power(now).value());
    case SysMgmtRequest::kGetDieTemp:
      return encode_response(0, card_->die_temperature(now).value());
    case SysMgmtRequest::kGetMemoryUsage:
      return encode_response(0, card_->memory_used().value());
    case SysMgmtRequest::kGetFanSpeed:
      return encode_response(0, card_->fan_speed_rpm(now));
  }
  return encode_response(2, 0.0);
}

Result<SysMgmtClient> SysMgmtClient::connect(ScifNetwork& network, ScifNodeId card_node,
                                             ScifCosts costs) {
  auto endpoint = ScifEndpoint::connect(network, card_node, kSysMgmtPort, costs);
  if (!endpoint) return endpoint.status();
  return SysMgmtClient(std::move(endpoint).value());
}

Result<double> SysMgmtClient::query(SysMgmtRequest op) {
  // Every reading funnels through this one round trip, so it is the
  // single place scheduled faults can touch the in-band path.
  const fault::Outcome fo = fault_hook_.intercept();
  if (fo.extra_latency.ns() > 0) meter_.charge(fo.extra_latency);
  if (!fo.ok()) return fo.status;
  auto reply = endpoint_.call(encode_request(op), &meter_);
  if (!reply) return reply.status();
  auto value = decode_response(reply.value());
  if (!value) return value.status();
  return fo.corrupt_value(value.value());
}

Result<Watts> SysMgmtClient::power(sim::SimTime /*now*/) {
  auto v = query(SysMgmtRequest::kGetPowerReading);
  if (!v) return v.status();
  return Watts{v.value()};
}

Result<Celsius> SysMgmtClient::die_temperature(sim::SimTime /*now*/) {
  auto v = query(SysMgmtRequest::kGetDieTemp);
  if (!v) return v.status();
  return Celsius{v.value()};
}

Result<Bytes> SysMgmtClient::memory_used(sim::SimTime /*now*/) {
  auto v = query(SysMgmtRequest::kGetMemoryUsage);
  if (!v) return v.status();
  return Bytes{v.value()};
}

Result<Rpm> SysMgmtClient::fan_speed(sim::SimTime /*now*/) {
  auto v = query(SysMgmtRequest::kGetFanSpeed);
  if (!v) return v.status();
  return Rpm{v.value()};
}

}  // namespace envmon::mic
