#include "mic/card.hpp"

namespace envmon::mic {

namespace {

power::SensorOptions make_sensor_options(const PhiPowerConfig& config) {
  power::SensorOptions o;
  o.update_period = config.sensor_update;
  o.update_jitter = sim::Duration::millis(3);
  o.noise_sigma = config.sensor_noise_sigma;
  o.quantum = config.sensor_quantum;
  o.min_value = 0.0;
  return o;
}

power::ThermalOptions make_thermal_options() {
  power::ThermalOptions t;
  t.ambient = Celsius{32.0};
  t.resistance_c_per_w = 0.18;
  t.capacity_j_per_c = 300.0;
  t.initial = Celsius{38.0};
  return t;
}

}  // namespace

PhiCard::PhiCard(sim::Engine& engine, PhiSpec spec, PhiPowerConfig config)
    : engine_(&engine),
      spec_(spec),
      config_(config),
      sensor_(make_sensor_options(config), Rng(config.seed)),
      thermal_(make_thermal_options()) {
  using power::Rail;
  model_.set_rail(Rail::kCpuCore, config_.cores);
  model_.set_rail(Rail::kDram, config_.gddr);
  model_.set_rail(Rail::kBoard, config_.board);
  model_.set_rail(Rail::kPcie, config_.pcie);
}

Watts PhiCard::management_power(sim::SimTime t) const {
  Watts total{0.0};
  for (const sim::SimTime start : pulses_) {
    if (t >= start && t - start < config_.query_pulse_width) {
      total += config_.query_pulse;
    }
  }
  return total;
}

void PhiCard::purge_old_pulses(sim::SimTime t) {
  while (!pulses_.empty() && t - pulses_.front() >= config_.query_pulse_width) {
    pulses_.pop_front();
  }
}

Watts PhiCard::true_power(sim::SimTime t) const {
  return model_.total_power_at(t) + management_power(t);
}

Watts PhiCard::sensed_power(sim::SimTime t) {
  purge_old_pulses(t);
  return Watts{sensor_.sample(t, true_power(t).value())};
}

Celsius PhiCard::die_temperature(sim::SimTime t) { return thermal_.step(t, true_power(t)); }

double PhiCard::fan_speed_rpm(sim::SimTime t) {
  // Passively cooled SKUs exist, but the Stampede cards are actively
  // cooled: firmware curve off die temperature.
  const double temp = die_temperature(t).value();
  return 1800.0 + std::max(0.0, temp - 40.0) * 55.0;
}

void PhiCard::register_inband_query(sim::SimTime t) {
  purge_old_pulses(t);
  pulses_.push_back(t);
  ++inband_queries_;
}

}  // namespace envmon::mic
