#include "nvml/device.hpp"

#include <algorithm>

namespace envmon::nvml {

GpuSpec k20_spec() {
  GpuSpec s;
  s.name = "Tesla K20";
  s.arch = Architecture::kKepler;
  s.peak_tflops_fp64 = 1.17;
  s.memory = gibibytes(5.0);
  s.cuda_cores = 2496;
  s.tdp = Watts{225.0};
  s.sm_clock = megahertz(706);
  s.mem_clock = megahertz(2600);
  return s;
}

GpuSpec k40_spec() {
  GpuSpec s;
  s.name = "Tesla K40";
  s.arch = Architecture::kKepler;
  s.peak_tflops_fp64 = 1.43;
  s.memory = gibibytes(12.0);
  s.cuda_cores = 2880;
  s.tdp = Watts{235.0};
  s.sm_clock = megahertz(745);
  s.mem_clock = megahertz(3004);
  return s;
}

GpuSpec m2090_spec() {
  GpuSpec s;
  s.name = "Tesla M2090";
  s.arch = Architecture::kFermi;
  s.peak_tflops_fp64 = 0.665;
  s.memory = gibibytes(6.0);
  s.cuda_cores = 512;
  s.tdp = Watts{225.0};
  s.sm_clock = megahertz(650);
  s.mem_clock = megahertz(1848);
  return s;
}

namespace {

power::SensorOptions board_power_sensor_options() {
  power::SensorOptions o;
  // The several-second level-off of Fig 4.  With tau ~= 1.7 s the sensor
  // reaches ~95% of a step in ~5 s, matching "it takes about 5 seconds
  // before the power consumption levels off".
  o.slew_tau = sim::Duration::millis(1700);
  // "an update time of about 60ms" (paper §II-C).
  o.update_period = sim::Duration::millis(60);
  o.update_jitter = sim::Duration::millis(4);
  // "the reported accuracy by NVIDIA is +/-5W": treat as a 3-sigma band.
  o.noise_sigma = 5.0 / 3.0;
  // NVML reports milliwatts.
  o.quantum = 0.001;
  o.min_value = 0.0;
  return o;
}

power::ThermalOptions die_thermal_options() {
  power::ThermalOptions t;
  t.ambient = Celsius{36.0};        // chassis air at the GPU inlet
  t.resistance_c_per_w = 0.22;      // ~65 C at ~130 W (Fig 5)
  t.capacity_j_per_c = 260.0;       // minutes-scale rise, like Fig 5
  t.initial = Celsius{40.0};
  return t;
}

}  // namespace

GpuDevice::GpuDevice(GpuSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)),
      power_sensor_(board_power_sensor_options(), Rng(seed)),
      thermal_(die_thermal_options()),
      power_limit_(spec_.tdp) {
  using power::Rail;
  using power::RailModel;
  // Calibrated against the paper's K20 plots: idle board ~44 W, NOOP
  // plateau ~55 W, bandwidth-bound vector add ~130 W, peak ~150 W.
  model_.set_rail(Rail::kCpuCore, RailModel{Watts{10.0}, Watts{60.0}, Volts{1.0}});  // SMs
  model_.set_rail(Rail::kDram, RailModel{Watts{6.0}, Watts{38.0}, Volts{1.5}});      // GDDR5
  model_.set_rail(Rail::kPcie, RailModel{Watts{2.0}, Watts{8.0}, Volts{3.3}});
  model_.set_rail(Rail::kBoard, RailModel{Watts{26.0}, Watts{0.0}, Volts{12.0}});    // VRs, fan
  // Prime the board sensor at the idle draw: the card has been sitting
  // idle before any workload is attached, so the first post-launch read
  // starts the Fig 4 ramp from the idle floor rather than snapping to
  // the loaded value.
  (void)power_sensor_.sample(sim::SimTime::zero(), true_board_power(sim::SimTime::zero()).value());
}

Watts GpuDevice::true_board_power(sim::SimTime t) const { return model_.total_power_at(t); }

Watts GpuDevice::sensed_board_power(sim::SimTime t) {
  return Watts{power_sensor_.sample(t, true_board_power(t).value())};
}

Celsius GpuDevice::die_temperature(sim::SimTime t) {
  return thermal_.step(t, true_board_power(t));
}

double GpuDevice::fan_speed_percent(sim::SimTime t) {
  // Firmware fan curve: 30% floor, ramping above 45 C.
  const double temp = die_temperature(t).value();
  if (temp <= 45.0) return 30.0;
  return std::min(100.0, 30.0 + (temp - 45.0) * 2.2);
}

void GpuDevice::set_memory_used(Bytes used) {
  if (used.value() < 0.0 || used > spec_.memory) {
    used = Bytes{std::clamp(used.value(), 0.0, spec_.memory.value())};
  }
  memory_used_ = used;
}

}  // namespace envmon::nvml
