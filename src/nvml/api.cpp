#include "nvml/api.hpp"

#include <algorithm>
#include <cmath>

namespace envmon::nvml {

const char* nvml_error_string(NvmlReturn r) {
  switch (r) {
    case NvmlReturn::kSuccess: return "Success";
    case NvmlReturn::kUninitialized: return "Uninitialized";
    case NvmlReturn::kInvalidArgument: return "Invalid argument";
    case NvmlReturn::kNotSupported: return "Not supported";
    case NvmlReturn::kNotFound: return "Not found";
    case NvmlReturn::kInsufficientpower: return "Insufficient external power";
    case NvmlReturn::kGpuIsLost: return "GPU is lost";
  }
  return "Unknown error";
}

NvmlLibrary::NvmlLibrary(sim::Engine& engine, NvmlCosts costs)
    : engine_(&engine), costs_(costs) {}

void NvmlLibrary::attach_device(std::shared_ptr<GpuDevice> device) {
  devices_.push_back(std::move(device));
  lost_.push_back(false);
}

void NvmlLibrary::mark_device_lost(std::size_t index) {
  if (index < lost_.size()) lost_[index] = true;
}

NvmlReturn NvmlLibrary::init() {
  initialized_ = true;
  ++epoch_;
  return NvmlReturn::kSuccess;
}

NvmlReturn NvmlLibrary::shutdown() {
  if (!initialized_) return NvmlReturn::kUninitialized;
  initialized_ = false;
  return NvmlReturn::kSuccess;
}

NvmlReturn NvmlLibrary::device_get_count(unsigned* count) {
  if (!initialized_) return NvmlReturn::kUninitialized;
  if (count == nullptr) return NvmlReturn::kInvalidArgument;
  *count = static_cast<unsigned>(devices_.size());
  return NvmlReturn::kSuccess;
}

NvmlReturn NvmlLibrary::device_get_handle_by_index(unsigned index, NvmlDeviceHandle* handle) {
  if (!initialized_) return NvmlReturn::kUninitialized;
  if (handle == nullptr) return NvmlReturn::kInvalidArgument;
  if (index >= devices_.size()) return NvmlReturn::kNotFound;
  *handle = NvmlDeviceHandle{index, epoch_};
  return NvmlReturn::kSuccess;
}

namespace {

// Injected Status -> C API return code, the way the real library folds
// driver errors onto its narrow error enum.
NvmlReturn map_fault_status(StatusCode code) {
  switch (code) {
    case StatusCode::kUnsupported: return NvmlReturn::kNotSupported;
    case StatusCode::kNotFound: return NvmlReturn::kNotFound;
    case StatusCode::kInvalidArgument: return NvmlReturn::kInvalidArgument;
    default: return NvmlReturn::kGpuIsLost;  // device fell off the bus
  }
}

}  // namespace

bool NvmlLibrary::fault_fails(fault::Outcome* outcome, NvmlReturn* error) {
  *outcome = fault_hook_.intercept();
  if (outcome->extra_latency.ns() > 0) meter_.charge(outcome->extra_latency);
  if (outcome->ok()) return false;
  *error = map_fault_status(outcome->status.code());
  return true;
}

GpuDevice* NvmlLibrary::resolve(NvmlDeviceHandle handle, NvmlReturn* error) {
  if (!initialized_) {
    *error = NvmlReturn::kUninitialized;
    return nullptr;
  }
  if (handle.epoch != epoch_ || handle.index >= devices_.size()) {
    *error = NvmlReturn::kInvalidArgument;
    return nullptr;
  }
  if (lost_[handle.index]) {
    *error = NvmlReturn::kGpuIsLost;
    return nullptr;
  }
  *error = NvmlReturn::kSuccess;
  return devices_[handle.index].get();
}

NvmlReturn NvmlLibrary::device_get_name(NvmlDeviceHandle handle, std::string* name) {
  NvmlReturn err;
  GpuDevice* dev = resolve(handle, &err);
  if (dev == nullptr) return err;
  if (name == nullptr) return NvmlReturn::kInvalidArgument;
  *name = dev->spec().name;
  return NvmlReturn::kSuccess;
}

NvmlReturn NvmlLibrary::device_get_power_usage(NvmlDeviceHandle handle, unsigned* milliwatts) {
  NvmlReturn err;
  GpuDevice* dev = resolve(handle, &err);
  if (dev == nullptr) return err;
  if (milliwatts == nullptr) return NvmlReturn::kInvalidArgument;
  // Power readings only exist on Kepler boards (K20/K40 in 2015).
  if (!dev->spec().supports_power_readings()) return NvmlReturn::kNotSupported;
  fault::Outcome fo;
  if (fault_fails(&fo, &err)) return err;
  meter_.charge(costs_.per_query);
  const Watts w = dev->sensed_board_power(engine_->now());
  *milliwatts = static_cast<unsigned>(
      std::lround(std::max(0.0, fo.corrupt_value(w.value() * 1000.0))));
  return NvmlReturn::kSuccess;
}

NvmlReturn NvmlLibrary::device_get_temperature(NvmlDeviceHandle handle,
                                               TemperatureSensor /*sensor*/,
                                               unsigned* celsius) {
  NvmlReturn err;
  GpuDevice* dev = resolve(handle, &err);
  if (dev == nullptr) return err;
  if (celsius == nullptr) return NvmlReturn::kInvalidArgument;
  fault::Outcome fo;
  if (fault_fails(&fo, &err)) return err;
  meter_.charge(costs_.per_query);
  *celsius = static_cast<unsigned>(std::lround(
      std::max(0.0, fo.corrupt_value(dev->die_temperature(engine_->now()).value()))));
  return NvmlReturn::kSuccess;
}

NvmlReturn NvmlLibrary::device_get_memory_info(NvmlDeviceHandle handle, NvmlMemoryInfo* info) {
  NvmlReturn err;
  GpuDevice* dev = resolve(handle, &err);
  if (dev == nullptr) return err;
  if (info == nullptr) return NvmlReturn::kInvalidArgument;
  fault::Outcome fo;
  if (fault_fails(&fo, &err)) return err;
  meter_.charge(costs_.per_query);
  info->total_bytes = static_cast<std::uint64_t>(dev->spec().memory.value());
  info->used_bytes = static_cast<std::uint64_t>(
      std::clamp(fo.corrupt_value(dev->memory_used().value()), 0.0,
                 static_cast<double>(info->total_bytes)));
  info->free_bytes = info->total_bytes - info->used_bytes;
  return NvmlReturn::kSuccess;
}

NvmlReturn NvmlLibrary::device_get_fan_speed(NvmlDeviceHandle handle, unsigned* percent) {
  NvmlReturn err;
  GpuDevice* dev = resolve(handle, &err);
  if (dev == nullptr) return err;
  if (percent == nullptr) return NvmlReturn::kInvalidArgument;
  fault::Outcome fo;
  if (fault_fails(&fo, &err)) return err;
  meter_.charge(costs_.per_query);
  *percent = static_cast<unsigned>(
      std::lround(std::max(0.0, fo.corrupt_value(dev->fan_speed_percent(engine_->now())))));
  return NvmlReturn::kSuccess;
}

NvmlReturn NvmlLibrary::device_get_clock_info(NvmlDeviceHandle handle, ClockType type,
                                              unsigned* mhz) {
  NvmlReturn err;
  GpuDevice* dev = resolve(handle, &err);
  if (dev == nullptr) return err;
  if (mhz == nullptr) return NvmlReturn::kInvalidArgument;
  fault::Outcome fo;
  if (fault_fails(&fo, &err)) return err;
  meter_.charge(costs_.per_query);
  const Hertz clock = type == ClockType::kSm ? dev->spec().sm_clock : dev->spec().mem_clock;
  *mhz = static_cast<unsigned>(std::lround(std::max(0.0, fo.corrupt_value(clock.value() / 1e6))));
  return NvmlReturn::kSuccess;
}

NvmlReturn NvmlLibrary::device_get_power_management_limit(NvmlDeviceHandle handle,
                                                          unsigned* milliwatts) {
  NvmlReturn err;
  GpuDevice* dev = resolve(handle, &err);
  if (dev == nullptr) return err;
  if (milliwatts == nullptr) return NvmlReturn::kInvalidArgument;
  *milliwatts = static_cast<unsigned>(std::lround(dev->power_limit().value() * 1000.0));
  return NvmlReturn::kSuccess;
}

NvmlReturn NvmlLibrary::device_set_power_management_limit(NvmlDeviceHandle handle,
                                                          unsigned milliwatts) {
  NvmlReturn err;
  GpuDevice* dev = resolve(handle, &err);
  if (dev == nullptr) return err;
  const Watts requested{static_cast<double>(milliwatts) / 1000.0};
  if (requested.value() <= 0.0 || requested > dev->spec().tdp) {
    return NvmlReturn::kInvalidArgument;
  }
  dev->set_power_limit(requested);
  return NvmlReturn::kSuccess;
}

}  // namespace envmon::nvml
