#pragma once
// The NVIDIA Management Library surface.
//
// "NVML is a C-based API which allows for the monitoring and
// configuration of NVIDIA GPUs" (paper §II-C).  We reproduce the calling
// conventions of the real library — integer return codes, out-parameters,
// opaque device handles, init/shutdown lifecycle — over the simulated
// devices.  Every device query pays the measured PCI-bus round trip of
// ~1.3 ms (the highest per-query cost of the four in-band mechanisms
// except the Phi's SCIF path).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "nvml/device.hpp"
#include "sim/cost.hpp"
#include "sim/engine.hpp"

namespace envmon::nvml {

enum class NvmlReturn : int {
  kSuccess = 0,
  kUninitialized = 1,
  kInvalidArgument = 2,
  kNotSupported = 3,
  kNotFound = 6,
  kInsufficientpower = 8,
  kGpuIsLost = 15,
};

[[nodiscard]] const char* nvml_error_string(NvmlReturn r);

// Opaque handle, as in the real API.
struct NvmlDeviceHandle {
  std::size_t index = SIZE_MAX;
  std::uint64_t epoch = 0;  // invalidated by shutdown/init cycles
};

struct NvmlMemoryInfo {
  std::uint64_t total_bytes = 0;
  std::uint64_t free_bytes = 0;
  std::uint64_t used_bytes = 0;
};

enum class ClockType { kSm, kMem };
enum class TemperatureSensor { kGpuDie };

struct NvmlCosts {
  // "Each collection takes about 1.3 ms" (library + PCI transfer).
  sim::Duration per_query = sim::Duration::micros(1300);
};

// The library instance.  The real NVML is a process-global; keeping it an
// object makes tests hermetic while the method set mirrors the C API
// one-to-one.
class NvmlLibrary {
 public:
  NvmlLibrary(sim::Engine& engine, NvmlCosts costs = {});

  // Device registration happens before init (simulating attached boards).
  void attach_device(std::shared_ptr<GpuDevice> device);

  // Failure injection: the board falls off the bus (XID-style error).
  // Subsequent queries on its handles return kGpuIsLost.
  void mark_device_lost(std::size_t index);

  // --- lifecycle ---
  NvmlReturn init();
  NvmlReturn shutdown();

  // --- discovery ---
  NvmlReturn device_get_count(unsigned* count);
  NvmlReturn device_get_handle_by_index(unsigned index, NvmlDeviceHandle* handle);
  NvmlReturn device_get_name(NvmlDeviceHandle handle, std::string* name);

  // --- environmental queries (each costs per_query of virtual time) ---
  // Power in milliwatts, as the real nvmlDeviceGetPowerUsage.
  NvmlReturn device_get_power_usage(NvmlDeviceHandle handle, unsigned* milliwatts);
  NvmlReturn device_get_temperature(NvmlDeviceHandle handle, TemperatureSensor sensor,
                                    unsigned* celsius);
  NvmlReturn device_get_memory_info(NvmlDeviceHandle handle, NvmlMemoryInfo* info);
  NvmlReturn device_get_fan_speed(NvmlDeviceHandle handle, unsigned* percent);
  NvmlReturn device_get_clock_info(NvmlDeviceHandle handle, ClockType type, unsigned* mhz);

  // --- power management limits ---
  NvmlReturn device_get_power_management_limit(NvmlDeviceHandle handle, unsigned* milliwatts);
  NvmlReturn device_set_power_management_limit(NvmlDeviceHandle handle, unsigned milliwatts);

  /// Routes every environmental query through `injector` (site
  /// fault::sites::kNvml by default).  Injected statuses map onto the C
  /// API's return codes (kUnavailable -> kGpuIsLost, kUnsupported ->
  /// kNotSupported, ...); corruption lands on the reported reading.
  void attach_fault_hook(fault::Injector& injector,
                         std::string site = std::string(fault::sites::kNvml)) {
    fault_hook_.attach(injector, std::move(site));
  }

  [[nodiscard]] const sim::CostMeter& cost() const { return meter_; }
  [[nodiscard]] GpuDevice* device_for_testing(std::size_t index) {
    return index < devices_.size() ? devices_[index].get() : nullptr;
  }

 private:
  [[nodiscard]] GpuDevice* resolve(NvmlDeviceHandle handle, NvmlReturn* error);
  // Asks the fault hook about the current query.  Returns true (with
  // *error set) when the query must fail; otherwise *outcome carries any
  // scheduled corruption and the stall has been charged to the meter.
  [[nodiscard]] bool fault_fails(fault::Outcome* outcome, NvmlReturn* error);

  sim::Engine* engine_;
  NvmlCosts costs_;
  bool initialized_ = false;
  std::uint64_t epoch_ = 0;
  std::vector<std::shared_ptr<GpuDevice>> devices_;
  std::vector<bool> lost_;
  sim::CostMeter meter_;
  fault::Hook fault_hook_;
};

}  // namespace envmon::nvml
