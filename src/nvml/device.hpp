#pragma once
// NVIDIA GPU device models.
//
// The paper's K20 experiments (Figs 4-5): board-level power only ("the
// power consumption reported is for the entire board including memory"),
// +/-5 W accuracy, ~60 ms sensor update, and a distinctive several-second
// ramp after a kernel starts ("it takes about 5 seconds before the power
// consumption levels off") which we model as a slew stage on the board
// power sensor.  Die temperature follows a first-order thermal model
// (the steady rise of Fig 5).

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "power/component.hpp"
#include "power/sensor.hpp"
#include "power/thermal.hpp"
#include "sim/time.hpp"

namespace envmon::nvml {

enum class Architecture : std::uint8_t { kTesla, kFermi, kKepler };

struct GpuSpec {
  std::string name;
  Architecture arch = Architecture::kKepler;
  double peak_tflops_fp64 = 0.0;
  Bytes memory{};
  int cuda_cores = 0;
  Watts tdp{};
  Hertz sm_clock{};
  Hertz mem_clock{};

  // Power monitoring exists only on Kepler boards (K20/K40 at the time).
  [[nodiscard]] bool supports_power_readings() const { return arch == Architecture::kKepler; }
};

[[nodiscard]] GpuSpec k20_spec();   // 1.17 TF fp64, 5 GB GDDR5, 2496 cores
[[nodiscard]] GpuSpec k40_spec();
[[nodiscard]] GpuSpec m2090_spec();  // Fermi: no power sensor — error-path tests

class GpuDevice {
 public:
  GpuDevice(GpuSpec spec, std::uint64_t seed = 0x6b20);

  [[nodiscard]] const GpuSpec& spec() const { return spec_; }
  [[nodiscard]] power::DevicePowerModel& model() { return model_; }

  void run_workload(const power::UtilizationProfile* profile, sim::SimTime start) {
    model_.run_workload(profile, start);
  }

  // True instantaneous board power (everything on the board, incl. memory).
  [[nodiscard]] Watts true_board_power(sim::SimTime t) const;

  // What the on-board sensor reports (slew + 60 ms hold + +/-5 W band).
  // Must be sampled with non-decreasing t.
  [[nodiscard]] Watts sensed_board_power(sim::SimTime t);

  // Die temperature; advances the thermal state to t.
  [[nodiscard]] Celsius die_temperature(sim::SimTime t);

  // Fan duty derived from die temperature (percent).
  [[nodiscard]] double fan_speed_percent(sim::SimTime t);

  // Memory accounting (driven by whoever simulates allocations).
  void set_memory_used(Bytes used);
  [[nodiscard]] Bytes memory_used() const { return memory_used_; }
  [[nodiscard]] Bytes memory_free() const { return spec_.memory - memory_used_; }

  // Software power cap (nvmlDeviceSetPowerManagementLimit).
  void set_power_limit(Watts w) { power_limit_ = w; }
  [[nodiscard]] Watts power_limit() const { return power_limit_; }

 private:
  GpuSpec spec_;
  power::DevicePowerModel model_;
  power::SensorPipeline power_sensor_;
  power::ThermalModel thermal_;
  Bytes memory_used_{};
  Watts power_limit_;
};

}  // namespace envmon::nvml
