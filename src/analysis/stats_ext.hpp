#pragma once
// Additional statistics on traces: histograms, correlation, and lag
// estimation.  Used by the ablation benches (e.g. quantifying the EMON
// domain-stagger inconsistency and the Fig 5 power/temperature coupling).

#include <span>
#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace envmon::analysis {

struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::size_t> counts;

  [[nodiscard]] std::size_t total() const;
  [[nodiscard]] double bin_width() const {
    return counts.empty() ? 0.0 : (hi - lo) / static_cast<double>(counts.size());
  }
};

// Equal-width histogram over [min, max] of the sample.
[[nodiscard]] Histogram histogram(std::span<const double> values, std::size_t bins);

// ASCII rendering (one row per bin with a proportional bar).
[[nodiscard]] std::string render_histogram(const Histogram& h, int width = 50);

// Pearson correlation of two equally-long value sequences.
[[nodiscard]] double pearson(std::span<const double> a, std::span<const double> b);

// Pearson correlation of two traces sampled on the same grid (truncates
// to the shorter).
[[nodiscard]] double trace_correlation(std::span<const sim::TracePoint> a,
                                       std::span<const sim::TracePoint> b);

// Lag (in samples) that maximizes cross-correlation of b relative to a,
// searched over [-max_lag, +max_lag].  Positive result: b lags a.
[[nodiscard]] int best_lag(std::span<const double> a, std::span<const double> b, int max_lag);

}  // namespace envmon::analysis
