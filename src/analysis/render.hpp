#pragma once
// Text renderers for the bench harness: ASCII line charts (the figures),
// aligned tables (the tables), and boxplots (Fig 7).

#include <span>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "sim/trace.hpp"

namespace envmon::analysis {

struct ChartOptions {
  int width = 78;
  int height = 16;
  std::string title;
  std::string y_label;
  std::string x_label = "time (s)";
};

// Single-series line chart.
[[nodiscard]] std::string render_chart(std::span<const sim::TracePoint> points,
                                       const ChartOptions& options);

// Multi-series chart; each series gets a distinct glyph and a legend row.
struct NamedSeries {
  std::string name;
  std::vector<sim::TracePoint> points;
};
[[nodiscard]] std::string render_chart_multi(std::span<const NamedSeries> series,
                                             const ChartOptions& options);

// Aligned monospace table.
class TableRenderer {
 public:
  explicit TableRenderer(std::vector<std::string> header) : header_(std::move(header)) {}
  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Horizontal ASCII boxplot over a labeled set of samples.
struct BoxplotSeries {
  std::string name;
  BoxplotStats stats;
};
[[nodiscard]] std::string render_boxplot(std::span<const BoxplotSeries> series, int width = 72);

}  // namespace envmon::analysis
