#include "analysis/stats_ext.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/stats.hpp"
#include "common/strings.hpp"

namespace envmon::analysis {

std::size_t Histogram::total() const {
  std::size_t n = 0;
  for (const auto c : counts) n += c;
  return n;
}

Histogram histogram(std::span<const double> values, std::size_t bins) {
  Histogram h;
  if (values.empty() || bins == 0) return h;
  h.lo = *std::min_element(values.begin(), values.end());
  h.hi = *std::max_element(values.begin(), values.end());
  if (h.hi <= h.lo) h.hi = h.lo + 1.0;
  h.counts.assign(bins, 0);
  for (const double v : values) {
    auto idx = static_cast<std::size_t>((v - h.lo) / (h.hi - h.lo) *
                                        static_cast<double>(bins));
    idx = std::min(idx, bins - 1);
    ++h.counts[idx];
  }
  return h;
}

std::string render_histogram(const Histogram& h, int width) {
  std::ostringstream os;
  if (h.counts.empty()) return "(empty histogram)\n";
  const std::size_t peak = *std::max_element(h.counts.begin(), h.counts.end());
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    const double bin_lo = h.lo + static_cast<double>(i) * h.bin_width();
    const auto bar_len =
        peak == 0 ? 0
                  : static_cast<int>(static_cast<double>(h.counts[i]) /
                                     static_cast<double>(peak) * width);
    os << format_double(bin_lo, 2) << " | "
       << std::string(static_cast<std::size_t>(bar_len), '#') << " " << h.counts[i] << "\n";
  }
  return os.str();
}

double pearson(std::span<const double> a, std::span<const double> b) {
  const std::size_t n = std::min(a.size(), b.size());
  if (n < 2) return 0.0;
  RunningStats sa, sb;
  for (std::size_t i = 0; i < n; ++i) {
    sa.add(a[i]);
    sb.add(b[i]);
  }
  double cov = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cov += (a[i] - sa.mean()) * (b[i] - sb.mean());
  }
  cov /= static_cast<double>(n - 1);
  const double denom = sa.stddev() * sb.stddev();
  return denom > 0.0 ? cov / denom : 0.0;
}

double trace_correlation(std::span<const sim::TracePoint> a,
                         std::span<const sim::TracePoint> b) {
  const std::size_t n = std::min(a.size(), b.size());
  std::vector<double> va, vb;
  va.reserve(n);
  vb.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    va.push_back(a[i].value);
    vb.push_back(b[i].value);
  }
  return pearson(va, vb);
}

int best_lag(std::span<const double> a, std::span<const double> b, int max_lag) {
  int best = 0;
  double best_r = -2.0;
  const auto n = static_cast<int>(std::min(a.size(), b.size()));
  for (int lag = -max_lag; lag <= max_lag; ++lag) {
    // Compare a[i] with b[i + lag] over the valid overlap.
    std::vector<double> va, vb;
    for (int i = 0; i < n; ++i) {
      const int j = i + lag;
      if (j < 0 || j >= n) continue;
      va.push_back(a[static_cast<std::size_t>(i)]);
      vb.push_back(b[static_cast<std::size_t>(j)]);
    }
    if (va.size() < 8) continue;
    const double r = pearson(va, vb);
    if (r > best_r) {
      best_r = r;
      best = lag;
    }
  }
  return best;
}

}  // namespace envmon::analysis
