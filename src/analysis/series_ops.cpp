#include "analysis/series_ops.hpp"

#include <algorithm>
#include <cmath>

namespace envmon::analysis {

std::vector<TracePoint> resample_mean(std::span<const TracePoint> points,
                                      sim::Duration bucket) {
  std::vector<TracePoint> out;
  if (points.empty() || bucket.ns() <= 0) return out;
  std::int64_t current_idx = points.front().t.ns() / bucket.ns();
  double sum = 0.0;
  std::size_t count = 0;
  const auto flush = [&] {
    if (count > 0) {
      out.push_back(TracePoint{sim::SimTime::from_ns(current_idx * bucket.ns()),
                               sum / static_cast<double>(count)});
    } else if (!out.empty()) {
      out.push_back(TracePoint{sim::SimTime::from_ns(current_idx * bucket.ns()),
                               out.back().value});
    }
  };
  for (const auto& p : points) {
    const std::int64_t idx = p.t.ns() / bucket.ns();
    while (idx != current_idx) {
      flush();
      ++current_idx;
      sum = 0.0;
      count = 0;
    }
    sum += p.value;
    ++count;
  }
  flush();
  return out;
}

double integrate(std::span<const TracePoint> points) {
  double total = 0.0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    const double dt = (points[i].t - points[i - 1].t).to_seconds();
    total += 0.5 * (points[i].value + points[i - 1].value) * dt;
  }
  return total;
}

double mean_in_window(std::span<const TracePoint> points, sim::SimTime from, sim::SimTime to) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& p : points) {
    if (p.t >= from && p.t <= to) {
      sum += p.value;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

Crossing first_rise_above(std::span<const TracePoint> points, double threshold) {
  for (const auto& p : points) {
    if (p.value > threshold) return Crossing{true, p.t};
  }
  return {};
}

Crossing settle_time(std::span<const TracePoint> points, double band, double tail_fraction) {
  if (points.size() < 4) return {};
  const auto tail_start =
      points.size() - std::max<std::size_t>(1, static_cast<std::size_t>(
                                                   static_cast<double>(points.size()) *
                                                   tail_fraction));
  double plateau = 0.0;
  for (std::size_t i = tail_start; i < points.size(); ++i) plateau += points[i].value;
  plateau /= static_cast<double>(points.size() - tail_start);

  // Last time the series was outside the band; settle is the next point.
  for (std::size_t i = points.size(); i-- > 0;) {
    if (std::fabs(points[i].value - plateau) > band) {
      const std::size_t next = i + 1;
      if (next < points.size()) return Crossing{true, points[next].t};
      return {};
    }
  }
  // Never left the band: settled from the start.
  return Crossing{true, points.front().t};
}

std::vector<TracePoint> sum_series(const std::vector<std::vector<TracePoint>>& series) {
  std::vector<TracePoint> out;
  if (series.empty()) return out;
  std::size_t n = series.front().size();
  for (const auto& s : series) n = std::min(n, s.size());
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (const auto& s : series) sum += s[i].value;
    out.push_back(TracePoint{series.front()[i].t, sum});
  }
  return out;
}

}  // namespace envmon::analysis
