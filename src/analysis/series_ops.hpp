#pragma once
// Operations on sampled time series: the post-processing every figure in
// the paper needs (resampling, integration, phase detection).

#include <span>
#include <vector>

#include "sim/trace.hpp"

namespace envmon::analysis {

using sim::TracePoint;

// Mean value in fixed-width buckets; empty buckets carry the previous
// value (sample-and-hold), matching how the paper's plots render sparse
// environmental-database data.
[[nodiscard]] std::vector<TracePoint> resample_mean(std::span<const TracePoint> points,
                                                    sim::Duration bucket);

// Trapezoidal integral (value * seconds) — energy when values are watts.
[[nodiscard]] double integrate(std::span<const TracePoint> points);

// Mean of values in [from, to].
[[nodiscard]] double mean_in_window(std::span<const TracePoint> points, sim::SimTime from,
                                    sim::SimTime to);

// First time the series crosses `threshold` upward, if any.
struct Crossing {
  bool found = false;
  sim::SimTime t;
};
[[nodiscard]] Crossing first_rise_above(std::span<const TracePoint> points, double threshold);

// Time to settle within `band` of the final plateau (the Fig 4 "takes
// about 5 seconds before the power consumption levels off" metric).
// The plateau is the mean of the last `tail_fraction` of the series.
[[nodiscard]] Crossing settle_time(std::span<const TracePoint> points, double band,
                                   double tail_fraction = 0.2);

// Sum several series point-wise on a common grid (Fig 8's "sum power of
// 128 cards").  Series are sampled on identical grids in our harness;
// mismatched lengths are truncated to the shortest.
[[nodiscard]] std::vector<TracePoint> sum_series(
    const std::vector<std::vector<TracePoint>>& series);

}  // namespace envmon::analysis
