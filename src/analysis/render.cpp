#include "analysis/render.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/strings.hpp"

namespace envmon::analysis {

namespace {

constexpr char kGlyphs[] = {'*', '+', 'o', 'x', '#', '@', '%', '&'};

struct Extent {
  double tmin = 0.0, tmax = 1.0, vmin = 0.0, vmax = 1.0;
};

Extent compute_extent(std::span<const NamedSeries> series) {
  Extent e;
  bool first = true;
  for (const auto& s : series) {
    for (const auto& p : s.points) {
      const double t = p.t.to_seconds();
      if (first) {
        e.tmin = e.tmax = t;
        e.vmin = e.vmax = p.value;
        first = false;
      } else {
        e.tmin = std::min(e.tmin, t);
        e.tmax = std::max(e.tmax, t);
        e.vmin = std::min(e.vmin, p.value);
        e.vmax = std::max(e.vmax, p.value);
      }
    }
  }
  if (e.tmax <= e.tmin) e.tmax = e.tmin + 1.0;
  if (e.vmax <= e.vmin) e.vmax = e.vmin + 1.0;
  // Pad the value range slightly so extremes stay visible.
  const double pad = 0.04 * (e.vmax - e.vmin);
  e.vmin -= pad;
  e.vmax += pad;
  return e;
}

}  // namespace

std::string render_chart_multi(std::span<const NamedSeries> series,
                               const ChartOptions& options) {
  std::ostringstream os;
  if (!options.title.empty()) os << options.title << "\n";
  const Extent e = compute_extent(series);
  const int w = std::max(16, options.width);
  const int h = std::max(4, options.height);

  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % sizeof(kGlyphs)];
    for (const auto& p : series[si].points) {
      const double tx = (p.t.to_seconds() - e.tmin) / (e.tmax - e.tmin);
      const double ty = (p.value - e.vmin) / (e.vmax - e.vmin);
      const int col = std::clamp(static_cast<int>(tx * (w - 1)), 0, w - 1);
      const int row = std::clamp(static_cast<int>((1.0 - ty) * (h - 1)), 0, h - 1);
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = glyph;
    }
  }

  const std::string top = format_double(e.vmax, 1);
  const std::string bottom = format_double(e.vmin, 1);
  const std::size_t label_w = std::max(top.size(), bottom.size());
  for (int row = 0; row < h; ++row) {
    std::string label(label_w, ' ');
    if (row == 0) label = top;
    if (row == h - 1) label = bottom;
    label.resize(label_w, ' ');
    os << label << " |" << grid[static_cast<std::size_t>(row)] << "\n";
  }
  os << std::string(label_w, ' ') << " +" << std::string(static_cast<std::size_t>(w), '-')
     << "\n";
  os << std::string(label_w, ' ') << "  " << format_double(e.tmin, 1) << " .. "
     << format_double(e.tmax, 1) << " " << options.x_label;
  if (!options.y_label.empty()) os << "   [y: " << options.y_label << "]";
  os << "\n";
  if (series.size() > 1) {
    os << "legend:";
    for (std::size_t si = 0; si < series.size(); ++si) {
      os << "  " << kGlyphs[si % sizeof(kGlyphs)] << "=" << series[si].name;
    }
    os << "\n";
  }
  return os.str();
}

std::string render_chart(std::span<const sim::TracePoint> points, const ChartOptions& options) {
  NamedSeries s;
  s.name = options.y_label.empty() ? "series" : options.y_label;
  s.points.assign(points.begin(), points.end());
  return render_chart_multi(std::span<const NamedSeries>(&s, 1), options);
}

std::string TableRenderer::render() const {
  std::vector<std::size_t> widths;
  const auto account = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  account(header_);
  for (const auto& r : rows_) account(r);

  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      os << (i == 0 ? "| " : " | ") << cell
         << std::string(widths[i] - cell.size(), ' ');
    }
    os << " |\n";
  };
  const auto rule = [&] {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      os << (i == 0 ? "+-" : "-+-") << std::string(widths[i], '-');
    }
    os << "-+\n";
  };
  rule();
  emit(header_);
  rule();
  for (const auto& r : rows_) emit(r);
  rule();
  return os.str();
}

std::string render_boxplot(std::span<const BoxplotSeries> series, int width) {
  double lo = 0.0, hi = 1.0;
  bool first = true;
  for (const auto& s : series) {
    const double smin = s.stats.outliers.empty()
                            ? s.stats.whisker_low
                            : std::min(s.stats.min, s.stats.whisker_low);
    const double smax = s.stats.outliers.empty()
                            ? s.stats.whisker_high
                            : std::max(s.stats.max, s.stats.whisker_high);
    if (first) {
      lo = smin;
      hi = smax;
      first = false;
    } else {
      lo = std::min(lo, smin);
      hi = std::max(hi, smax);
    }
  }
  if (hi <= lo) hi = lo + 1.0;
  const double pad = 0.05 * (hi - lo);
  lo -= pad;
  hi += pad;

  std::size_t name_w = 0;
  for (const auto& s : series) name_w = std::max(name_w, s.name.size());

  const int w = std::max(24, width);
  const auto col = [&](double v) {
    return std::clamp(static_cast<int>((v - lo) / (hi - lo) * (w - 1)), 0, w - 1);
  };

  std::ostringstream os;
  for (const auto& s : series) {
    std::string line(static_cast<std::size_t>(w), ' ');
    const int wl = col(s.stats.whisker_low);
    const int q1 = col(s.stats.q1);
    const int med = col(s.stats.median);
    const int q3 = col(s.stats.q3);
    const int wh = col(s.stats.whisker_high);
    for (int i = wl; i <= wh; ++i) line[static_cast<std::size_t>(i)] = '-';
    for (int i = q1; i <= q3; ++i) line[static_cast<std::size_t>(i)] = '=';
    line[static_cast<std::size_t>(wl)] = '|';
    line[static_cast<std::size_t>(wh)] = '|';
    line[static_cast<std::size_t>(med)] = 'M';
    for (const double o : s.stats.outliers) line[static_cast<std::size_t>(col(o))] = 'o';
    std::string name = s.name;
    name.resize(name_w, ' ');
    os << name << " [" << line << "]  median=" << format_double(s.stats.median, 2)
       << " IQR=[" << format_double(s.stats.q1, 2) << ", " << format_double(s.stats.q3, 2)
       << "]\n";
  }
  os << std::string(name_w, ' ') << "  scale: " << format_double(lo, 2) << " .. "
     << format_double(hi, 2) << "\n";
  return os.str();
}

}  // namespace envmon::analysis
