#include "tools/powerpack.hpp"

namespace envmon::tools {

double PsuModel::efficiency(Watts dc_load) const {
  const double f = std::max(0.0, dc_load.value() / rated.value());
  // Piecewise-linear through the three published points, flat outside.
  if (f <= 0.2) return efficiency_at_20pct;
  if (f <= 0.5) {
    const double t = (f - 0.2) / 0.3;
    return efficiency_at_20pct + t * (efficiency_at_50pct - efficiency_at_20pct);
  }
  if (f <= 1.0) {
    const double t = (f - 0.5) / 0.5;
    return efficiency_at_50pct + t * (efficiency_at_100pct - efficiency_at_50pct);
  }
  return efficiency_at_100pct;
}

namespace {

power::SensorOptions wattsup_sensor_options() {
  power::SensorOptions o;
  // +/-1.5% of a ~200 W typical reading, as a 3-sigma band; the display
  // shows integral watts (actually tenths — we keep 0.1 W).
  o.noise_sigma = 1.0;
  o.quantum = 0.1;
  o.min_value = 0.0;
  return o;
}

power::SensorOptions daq_sensor_options() {
  power::SensorOptions o;
  o.noise_sigma = 0.02;  // millivolt-accurate sense channel
  o.quantum = 0.001;
  o.min_value = 0.0;
  return o;
}

}  // namespace

WattsUpMeter::WattsUpMeter(sim::Engine& engine, const power::DevicePowerModel& device,
                           PsuModel psu, std::uint64_t seed)
    : engine_(&engine),
      device_(&device),
      psu_(psu),
      sensor_(wattsup_sensor_options(), Rng(seed)) {}

void WattsUpMeter::start() {
  if (timer_.active()) return;
  timer_ = engine_->schedule_periodic(sim::Duration::seconds(1), [this] { tick(); });
}

void WattsUpMeter::stop() { timer_.cancel(); }

void WattsUpMeter::tick() {
  const Watts dc = device_->total_power_at(engine_->now());
  const Watts ac = psu_.ac_input(dc);
  log_.push_back({engine_->now(), sensor_.sample(engine_->now(), ac.value())});
}

NiDaqChannel::NiDaqChannel(sim::Engine& engine, const power::DevicePowerModel& device,
                           power::Rail rail, sim::Duration sample_period, std::uint64_t seed)
    : engine_(&engine),
      device_(&device),
      rail_(rail),
      period_(sample_period),
      sensor_(daq_sensor_options(), Rng(seed)) {}

void NiDaqChannel::start() {
  if (timer_.active()) return;
  timer_ = engine_->schedule_periodic(period_, [this] { tick(); });
}

void NiDaqChannel::stop() { timer_.cancel(); }

void NiDaqChannel::tick() {
  const Watts w = device_->rail_power_at(rail_, engine_->now());
  log_.push_back({engine_->now(), sensor_.sample(engine_->now(), w.value())});
}

}  // namespace envmon::tools
