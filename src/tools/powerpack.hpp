#pragma once
// PowerPack-style external metering.
//
// Paper §III: "PowerPack is a well-known power profiling tool which
// historically gathered data from hardware tools such as a WattsUp Pro
// meter connected to the power supply and a NI meter connected to the
// CPU/memory/motherboard/etc. ... even as of this latest version
// PowerPack does not allow for the collection of power data from newer
// generation hardware such as Intel RAPL, NVML, or the Xeon Phi."
//
// We model both instruments:
//   * WattsUpMeter — wall-plug AC power of the whole node: everything
//     behind the PSU (its efficiency curve included), 1 Hz sampling,
//     +/-1.5% accuracy, integer-watt display.  Sees everything, resolves
//     nothing.
//   * NiDaqChannel — a sense-resistor channel on one DC rail, kilohertz-
//     capable, millivolt-accurate: resolves one component but requires
//     physically instrumenting the board.
// The comparison bench shows the trade against the vendor mechanisms.

#include <vector>

#include "common/rng.hpp"
#include "power/component.hpp"
#include "power/sensor.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace envmon::tools {

struct PsuModel {
  // Efficiency at load fraction f (of rated power): a flat-top curve,
  // lower at light load — an 80 PLUS-like shape.
  Watts rated{800.0};
  double efficiency_at_20pct = 0.85;
  double efficiency_at_50pct = 0.90;
  double efficiency_at_100pct = 0.87;

  [[nodiscard]] double efficiency(Watts dc_load) const;
  [[nodiscard]] Watts ac_input(Watts dc_load) const {
    return dc_load / efficiency(dc_load);
  }
};

class WattsUpMeter {
 public:
  WattsUpMeter(sim::Engine& engine, const power::DevicePowerModel& device,
               PsuModel psu = {}, std::uint64_t seed = 0x3a77);

  // Starts 1 Hz logging into the internal record (the real device logs
  // to its USB host once per second).
  void start();
  void stop();

  [[nodiscard]] const std::vector<sim::TracePoint>& log() const { return log_; }
  [[nodiscard]] const PsuModel& psu() const { return psu_; }

 private:
  void tick();

  sim::Engine* engine_;
  const power::DevicePowerModel* device_;
  PsuModel psu_;
  power::SensorPipeline sensor_;
  sim::TimerHandle timer_;
  std::vector<sim::TracePoint> log_;
};

class NiDaqChannel {
 public:
  // Instruments one rail of a device; sample_rate up to kilohertz.
  NiDaqChannel(sim::Engine& engine, const power::DevicePowerModel& device,
               power::Rail rail, sim::Duration sample_period = sim::Duration::millis(1),
               std::uint64_t seed = 0xda9);

  void start();
  void stop();

  [[nodiscard]] const std::vector<sim::TracePoint>& log() const { return log_; }
  [[nodiscard]] power::Rail rail() const { return rail_; }

 private:
  void tick();

  sim::Engine* engine_;
  const power::DevicePowerModel* device_;
  power::Rail rail_;
  sim::Duration period_;
  power::SensorPipeline sensor_;
  sim::TimerHandle timer_;
  std::vector<sim::TracePoint> log_;
};

}  // namespace envmon::tools
