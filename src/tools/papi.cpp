#include "tools/papi.hpp"

#include <cmath>

// GCC 12 misfires -Wmaybe-uninitialized on the inlined small-string
// copies made when the enumerate_* Events move into events_; every
// string is constructed before the move.  Scoped to this TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace envmon::tools {

const char* papi_strerror(int code) {
  switch (code) {
    case kPapiOk: return "No error";
    case kPapiEinval: return "Invalid argument";
    case kPapiEnoevnt: return "Event does not exist";
    case kPapiEnocmp: return "Component not found";
    case kPapiEisrun: return "EventSet is currently counting";
    case kPapiEnotrun: return "EventSet is currently not running";
    case kPapiEperm: return "Permission level does not permit operation";
  }
  return "Unknown error";
}

void PapiLibrary::add_rapl_component(rapl::CpuPackage& package, rapl::Credentials creds) {
  pending_.push_back([this, &package, creds] { enumerate_rapl(package, creds); });
}

void PapiLibrary::add_nvml_component(nvml::NvmlLibrary& library) {
  pending_.push_back([this, &library] { enumerate_nvml(library); });
}

void PapiLibrary::add_micpower_component(mic::MicrasDaemon& daemon) {
  pending_.push_back([this, &daemon] { enumerate_micpower(daemon); });
}

int PapiLibrary::library_init() {
  if (initialized_) return kPapiOk;  // PAPI tolerates double init
  for (auto& enumerate : pending_) enumerate();
  pending_.clear();
  initialized_ = true;
  return kPapiOk;
}

void PapiLibrary::enumerate_rapl(rapl::CpuPackage& package, rapl::Credentials creds) {
  auto reader = std::make_unique<rapl::MsrRaplReader>(package, creds);
  rapl::MsrRaplReader* r = reader.get();
  rapl_readers_.push_back(std::move(reader));

  const double unit = package.config().units.joules_per_unit();
  for (const auto domain : {rapl::RaplDomain::kPackage, rapl::RaplDomain::kPp0,
                            rapl::RaplDomain::kPp1, rapl::RaplDomain::kDram}) {
    Event ev;
    ev.info.component = "rapl";
    ev.info.units = "nJ";
    ev.info.name = std::string("rapl:::") +
                   (domain == rapl::RaplDomain::kPackage ? "PACKAGE_ENERGY:PACKAGE0"
                    : domain == rapl::RaplDomain::kPp0   ? "PP0_ENERGY:PACKAGE0"
                    : domain == rapl::RaplDomain::kPp1   ? "PP1_ENERGY:PACKAGE0"
                                                         : "DRAM_ENERGY:PACKAGE0");
    ev.info.description =
        std::string("Energy used by ") + rapl::description(domain);
    // PAPI's rapl component maintains its own wrap-aware accumulation;
    // one accountant per event, captured by the sampler closure.
    auto accountant = std::make_shared<rapl::EnergyAccountant>(unit);
    ev.sample = [r, domain, accountant](sim::SimTime now,
                                        sim::CostMeter& meter) -> Result<long long> {
      const auto before = r->cost().total();
      auto sample = r->read_energy(domain, now);
      meter.charge(r->cost().total() - before);
      if (!sample) return sample.status();
      (void)accountant->advance(sample.value().raw);
      return static_cast<long long>(accountant->total().value() * 1e9);
    };
    events_by_name_[ev.info.name] = events_.size();
    events_.push_back(std::move(ev));
  }
}

void PapiLibrary::enumerate_nvml(nvml::NvmlLibrary& library) {
  unsigned count = 0;
  if (library.device_get_count(&count) != nvml::NvmlReturn::kSuccess) return;
  for (unsigned i = 0; i < count; ++i) {
    nvml::NvmlDeviceHandle handle;
    if (library.device_get_handle_by_index(i, &handle) != nvml::NvmlReturn::kSuccess) {
      continue;
    }
    std::string name;
    (void)library.device_get_name(handle, &name);
    for (auto& c : name) {
      if (c == ' ') c = '_';
    }

    Event power;
    power.info.component = "nvml";
    power.info.units = "mW";
    power.info.name = "nvml:::" + name + ":device_" + std::to_string(i) + ":power";
    power.info.description = "Power usage readings for the device in milliwatts";
    power.sample = [&library, handle](sim::SimTime, sim::CostMeter& meter)
        -> Result<long long> {
      const auto before = library.cost().total();
      unsigned mw = 0;
      const auto rc = library.device_get_power_usage(handle, &mw);
      meter.charge(library.cost().total() - before);
      if (rc != nvml::NvmlReturn::kSuccess) {
        return Status::unavailable(nvml::nvml_error_string(rc));
      }
      return static_cast<long long>(mw);
    };
    events_by_name_[power.info.name] = events_.size();
    events_.push_back(std::move(power));

    Event temp;
    temp.info.component = "nvml";
    temp.info.units = "C";
    temp.info.name = "nvml:::" + name + ":device_" + std::to_string(i) + ":temperature";
    temp.info.description = "GPU die temperature";
    temp.sample = [&library, handle](sim::SimTime, sim::CostMeter& meter)
        -> Result<long long> {
      const auto before = library.cost().total();
      unsigned celsius = 0;
      const auto rc = library.device_get_temperature(
          handle, nvml::TemperatureSensor::kGpuDie, &celsius);
      meter.charge(library.cost().total() - before);
      if (rc != nvml::NvmlReturn::kSuccess) {
        return Status::unavailable(nvml::nvml_error_string(rc));
      }
      return static_cast<long long>(celsius);
    };
    events_by_name_[temp.info.name] = events_.size();
    events_.push_back(std::move(temp));
  }
}

void PapiLibrary::enumerate_micpower(mic::MicrasDaemon& daemon) {
  Event ev;
  ev.info.component = "micpower";
  ev.info.units = "mW";
  ev.info.name = "micpower:::tot0";
  ev.info.description = "Total card power (averaged window) from /sys/class/micras/power";
  ev.sample = [&daemon](sim::SimTime now, sim::CostMeter& meter) -> Result<long long> {
    auto text = daemon.read_file(mic::kPowerFile, now, &meter);
    if (!text) return text.status();
    auto reading = mic::parse_power_file(text.value());
    if (!reading) return reading.status();
    return static_cast<long long>(reading.value().total.value() * 1000.0);
  };
  events_by_name_[ev.info.name] = events_.size();
  events_.push_back(std::move(ev));
}

std::vector<PapiEventInfo> PapiLibrary::enum_events() const {
  std::vector<PapiEventInfo> out;
  out.reserve(events_.size());
  for (const auto& ev : events_) out.push_back(ev.info);
  return out;
}

int PapiLibrary::create_eventset(int* eventset) {
  if (!initialized_ || eventset == nullptr) return kPapiEinval;
  *eventset = next_eventset_++;
  eventsets_[*eventset] = EventSet{};
  return kPapiOk;
}

int PapiLibrary::add_event(int eventset, const std::string& name) {
  const auto set = eventsets_.find(eventset);
  if (set == eventsets_.end()) return kPapiEinval;
  if (set->second.running) return kPapiEisrun;
  const auto ev = events_by_name_.find(name);
  if (ev == events_by_name_.end()) return kPapiEnoevnt;
  set->second.event_indices.push_back(ev->second);
  return kPapiOk;
}

int PapiLibrary::start(int eventset) {
  const auto set = eventsets_.find(eventset);
  if (set == eventsets_.end()) return kPapiEinval;
  if (set->second.running) return kPapiEisrun;
  set->second.start_values.clear();
  for (const std::size_t idx : set->second.event_indices) {
    auto v = events_[idx].sample(engine_->now(), meter_);
    if (!v) {
      return v.status().code() == StatusCode::kPermissionDenied ? kPapiEperm : kPapiEnoevnt;
    }
    set->second.start_values.push_back(v.value());
  }
  set->second.running = true;
  return kPapiOk;
}

int PapiLibrary::read(int eventset, std::vector<long long>* values) {
  if (values == nullptr) return kPapiEinval;
  const auto set = eventsets_.find(eventset);
  if (set == eventsets_.end()) return kPapiEinval;
  if (!set->second.running) return kPapiEnotrun;
  values->clear();
  for (std::size_t i = 0; i < set->second.event_indices.size(); ++i) {
    const std::size_t idx = set->second.event_indices[i];
    auto v = events_[idx].sample(engine_->now(), meter_);
    if (!v) return kPapiEnoevnt;
    // Counter-like units report deltas since start; instantaneous ones
    // report the current value (PAPI's rapl vs nvml behaviour).
    const bool accumulating = events_[idx].info.units == "nJ";
    values->push_back(accumulating ? v.value() - set->second.start_values[i] : v.value());
  }
  return kPapiOk;
}

int PapiLibrary::stop(int eventset, std::vector<long long>* values) {
  const int rc = read(eventset, values);
  if (rc != kPapiOk) return rc;
  eventsets_[eventset].running = false;
  return kPapiOk;
}

int PapiLibrary::cleanup_eventset(int eventset) {
  const auto set = eventsets_.find(eventset);
  if (set == eventsets_.end()) return kPapiEinval;
  if (set->second.running) return kPapiEisrun;
  eventsets_.erase(set);
  return kPapiOk;
}

}  // namespace envmon::tools
