#include "tools/tau.hpp"

namespace envmon::tools {

TauPowerProfiler::TauPowerProfiler(sim::Engine& engine, rapl::CpuPackage& package,
                                   rapl::Credentials creds, sim::Duration interval)
    : engine_(&engine),
      reader_(package, creds),
      accountant_(package.config().units.joules_per_unit()),
      interval_(interval) {}

Status TauPowerProfiler::start() {
  if (running_) {
    return Status::failed_precondition("TAU profiler already running");
  }
  // Baseline read; surfaces permission problems immediately.
  const auto before = reader_.cost().total();
  auto sample = reader_.read_energy(rapl::RaplDomain::kPackage, engine_->now());
  meter_.charge(reader_.cost().total() - before);
  if (!sample) return sample.status();
  (void)accountant_.advance(sample.value().raw);
  last_sample_ = engine_->now();
  timer_ = engine_->schedule_periodic(interval_, [this] { sample_tick(); });
  running_ = true;
  return Status::ok();
}

Status TauPowerProfiler::stop() {
  if (!running_) {
    return Status::failed_precondition("TAU profiler not running");
  }
  sample_tick();  // flush the final partial interval
  timer_.cancel();
  running_ = false;
  if (!stack_.empty()) {
    return Status::failed_precondition("TAU region still open at stop: " + stack_.back());
  }
  return Status::ok();
}

void TauPowerProfiler::sample_tick() {
  const auto before = reader_.cost().total();
  auto sample = reader_.read_energy(rapl::RaplDomain::kPackage, engine_->now());
  meter_.charge(reader_.cost().total() - before);
  if (!sample) return;
  const Joules delta = accountant_.advance(sample.value().raw);
  const sim::SimTime now = engine_->now();

  TauRegionProfile& region = regions_[current_region()];
  region.name = current_region();
  region.pkg_energy += delta;
  region.inclusive_time += now - last_sample_;
  ++region.samples;
  last_sample_ = now;
}

Status TauPowerProfiler::region_start(const std::string& name) {
  if (!running_) {
    return Status::failed_precondition("TAU profiler not running");
  }
  // Attribute the partial interval so far to the enclosing region.
  sample_tick();
  stack_.push_back(name);
  region_entry_[name] = engine_->now();
  return Status::ok();
}

Status TauPowerProfiler::region_stop(const std::string& name) {
  if (stack_.empty() || stack_.back() != name) {
    return Status::failed_precondition("TAU region stop does not match innermost start: " + name);
  }
  sample_tick();  // attribute the tail of the region
  stack_.pop_back();
  return Status::ok();
}

std::vector<TauRegionProfile> TauPowerProfiler::profiles() const {
  std::vector<TauRegionProfile> out;
  out.reserve(regions_.size());
  for (const auto& [_, profile] : regions_) out.push_back(profile);
  return out;
}

}  // namespace envmon::tools
