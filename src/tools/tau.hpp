#pragma once
// A TAU-style power profiler.
//
// Paper §III: "as of version 2.23, TAU also supports power profiling
// collection of RAPL through the MSR drivers.  To the best of our
// knowledge this is the only system that TAU supports for power
// profiling."
//
// We model exactly that: interval-driven RAPL-only collection attributed
// to the currently active timer region (TAU's defining feature is
// attribution to instrumented regions, so the profile is per-region).

#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "rapl/reader.hpp"
#include "sim/engine.hpp"

namespace envmon::tools {

struct TauRegionProfile {
  std::string name;
  sim::Duration inclusive_time{};
  Joules pkg_energy{};
  std::size_t samples = 0;

  [[nodiscard]] Watts mean_power() const {
    const double s = inclusive_time.to_seconds();
    return s > 0.0 ? Watts{pkg_energy.value() / s} : Watts{0.0};
  }
};

class TauPowerProfiler {
 public:
  // RAPL is the only supported mechanism; anything else is the caller's
  // problem (that is the point of the comparison).
  TauPowerProfiler(sim::Engine& engine, rapl::CpuPackage& package, rapl::Credentials creds,
                   sim::Duration interval = sim::Duration::millis(100));

  Status start();
  Status stop();

  // TAU_START / TAU_STOP region timers; regions may nest (a stack).
  Status region_start(const std::string& name);
  Status region_stop(const std::string& name);

  [[nodiscard]] std::vector<TauRegionProfile> profiles() const;
  [[nodiscard]] const sim::CostMeter& cost() const { return meter_; }

 private:
  void sample_tick();
  [[nodiscard]] std::string current_region() const {
    return stack_.empty() ? ".TAU application" : stack_.back();
  }

  sim::Engine* engine_;
  rapl::MsrRaplReader reader_;
  rapl::EnergyAccountant accountant_;
  sim::Duration interval_;
  sim::TimerHandle timer_;
  bool running_ = false;

  std::vector<std::string> stack_;
  std::map<std::string, TauRegionProfile> regions_;
  std::map<std::string, sim::SimTime> region_entry_;
  sim::SimTime last_sample_;
  sim::CostMeter meter_;
};

}  // namespace envmon::tools
