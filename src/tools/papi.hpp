#pragma once
// A PAPI-style component API over the simulated vendor mechanisms.
//
// Paper §III: "PAPI is traditionally known for its ability to gather
// performance data, however the authors have recently begun including
// the ability to collect power data.  PAPI supports collecting power
// consumption information for Intel RAPL, NVML, and the Xeon Phi."
//
// We reproduce the PAPI 5 calling conventions that matter for the
// comparison: components discovered at init, colon-separated event names
// ("rapl:::PACKAGE_ENERGY:PACKAGE0"), event sets that are created,
// populated, started, read, and stopped, and long long sample values
// (energy in nanojoules, power in milliwatts — PAPI's units).  Unlike
// MonEQ there is no built-in timer or output file: the caller polls.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "mic/micras.hpp"
#include "nvml/api.hpp"
#include "rapl/reader.hpp"
#include "sim/cost.hpp"
#include "sim/engine.hpp"

namespace envmon::tools {

// PAPI-style return codes.
inline constexpr int kPapiOk = 0;
inline constexpr int kPapiEinval = -1;   // invalid argument
inline constexpr int kPapiEnoevnt = -7;  // event does not exist
inline constexpr int kPapiEnocmp = -8;   // component not found
inline constexpr int kPapiEisrun = -10;  // event set already running
inline constexpr int kPapiEnotrun = -11; // event set not running
inline constexpr int kPapiEperm = -26;   // permission denied (msr access)

[[nodiscard]] const char* papi_strerror(int code);

struct PapiEventInfo {
  std::string name;        // e.g. "rapl:::PACKAGE_ENERGY:PACKAGE0"
  std::string component;   // "rapl", "nvml", "micpower"
  std::string units;       // "nJ", "mW", "C"
  std::string description;
};

class PapiLibrary {
 public:
  explicit PapiLibrary(sim::Engine& engine) : engine_(&engine) {}

  // Component registration (what linking PAPI with a component does).
  void add_rapl_component(rapl::CpuPackage& package, rapl::Credentials creds);
  void add_nvml_component(nvml::NvmlLibrary& library);
  void add_micpower_component(mic::MicrasDaemon& daemon);

  // PAPI_library_init: enumerates events on the registered components.
  int library_init();
  [[nodiscard]] bool initialized() const { return initialized_; }

  [[nodiscard]] std::vector<PapiEventInfo> enum_events() const;

  // Event sets.
  int create_eventset(int* eventset);
  int add_event(int eventset, const std::string& name);
  int start(int eventset);
  // Reads current values in event order (energy counters accumulate
  // since start; instantaneous metrics report the latest reading).
  int read(int eventset, std::vector<long long>* values);
  int stop(int eventset, std::vector<long long>* values);
  int cleanup_eventset(int eventset);

  [[nodiscard]] const sim::CostMeter& cost() const { return meter_; }

 private:
  struct Event {
    PapiEventInfo info;
    // Returns the current value in PAPI units, charging `meter`.
    std::function<Result<long long>(sim::SimTime, sim::CostMeter&)> sample;
  };
  struct EventSet {
    std::vector<std::size_t> event_indices;
    std::vector<long long> start_values;
    bool running = false;
  };

  void enumerate_rapl(rapl::CpuPackage& package, rapl::Credentials creds);
  void enumerate_nvml(nvml::NvmlLibrary& library);
  void enumerate_micpower(mic::MicrasDaemon& daemon);

  sim::Engine* engine_;
  bool initialized_ = false;

  // Pending component registrations consumed by library_init().
  std::vector<std::function<void()>> pending_;

  std::vector<Event> events_;
  std::map<std::string, std::size_t> events_by_name_;
  std::map<int, EventSet> eventsets_;
  int next_eventset_ = 1;
  sim::CostMeter meter_;

  // Readers owned per component registration.
  std::vector<std::unique_ptr<rapl::MsrRaplReader>> rapl_readers_;
};

}  // namespace envmon::tools
