#pragma once
// The seven Blue Gene/Q power domains.
//
// MonEQ reads "the individual voltage and current data points for each of
// the 7 BG/Q domains" (paper §II-A, Fig 2): chip core, DRAM, link chip
// core, HSS network, optics, PCI Express, and SRAM.  Each domain maps to
// one rail of the generic device power model.

#include <array>
#include <cstdint>
#include <string_view>

#include "power/rail.hpp"

namespace envmon::bgq {

enum class Domain : std::uint8_t {
  kChipCore = 0,
  kDram,
  kLinkChipCore,
  kHssNetwork,
  kOptics,
  kPciExpress,
  kSram,
};

inline constexpr std::size_t kDomainCount = 7;

inline constexpr std::array<Domain, kDomainCount> kAllDomains = {
    Domain::kChipCore,   Domain::kDram,   Domain::kLinkChipCore, Domain::kHssNetwork,
    Domain::kOptics,     Domain::kPciExpress, Domain::kSram,
};

[[nodiscard]] constexpr std::string_view to_string(Domain d) {
  switch (d) {
    case Domain::kChipCore: return "chip_core";
    case Domain::kDram: return "dram";
    case Domain::kLinkChipCore: return "link_chip_core";
    case Domain::kHssNetwork: return "hss_network";
    case Domain::kOptics: return "optics";
    case Domain::kPciExpress: return "pci_express";
    case Domain::kSram: return "sram";
  }
  return "unknown";
}

[[nodiscard]] constexpr power::Rail to_rail(Domain d) {
  switch (d) {
    case Domain::kChipCore: return power::Rail::kCpuCore;
    case Domain::kDram: return power::Rail::kDram;
    case Domain::kLinkChipCore: return power::Rail::kLink;
    case Domain::kHssNetwork: return power::Rail::kNetwork;
    case Domain::kOptics: return power::Rail::kOptics;
    case Domain::kPciExpress: return power::Rail::kPcie;
    case Domain::kSram: return power::Rail::kSram;
  }
  return power::Rail::kBoard;
}

[[nodiscard]] constexpr std::size_t domain_index(Domain d) {
  return static_cast<std::size_t>(d);
}

}  // namespace envmon::bgq
