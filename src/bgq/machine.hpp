#pragma once
// The Blue Gene/Q machine model.
//
// Topology as described in paper §II-A (and the BG/Q redbooks): a rack is
// two midplanes + link cards + service cards; a midplane is 16 node
// boards; a node board carries 32 compute cards (one 18-core A2 chip
// each), so 1,024 nodes per rack.  Power sensing exists at two levels:
//   * bulk power modules (BPMs) convert 480 VAC to 48 VDC per rack and
//     report input/output power into the environmental database;
//   * per node board, the seven power domains are instrumented (EMON's
//     finest granularity — 32 nodes, the paper's key limitation).
//
// Rail calibration targets the paper's plotted magnitudes: a node board
// idles around 0.7 kW and reaches ~2 kW under MMPS (Fig 2).

#include <memory>
#include <vector>

#include "bgq/domains.hpp"
#include "power/component.hpp"
#include "sim/time.hpp"

namespace envmon::bgq {

struct Topology {
  int racks = 1;
  int midplanes_per_rack = 2;
  int boards_per_midplane = 16;
  int nodes_per_board = 32;

  [[nodiscard]] int boards_per_rack() const { return midplanes_per_rack * boards_per_midplane; }
  [[nodiscard]] int total_boards() const { return racks * boards_per_rack(); }
  [[nodiscard]] int total_nodes() const { return total_boards() * nodes_per_board; }
};

// One node board: the EMON measurement unit (32 nodes).
class NodeBoard {
 public:
  NodeBoard(int rack, int midplane, int board);

  [[nodiscard]] int rack() const { return rack_; }
  [[nodiscard]] int midplane() const { return midplane_; }
  [[nodiscard]] int board() const { return board_; }

  [[nodiscard]] power::DevicePowerModel& model() { return model_; }
  [[nodiscard]] const power::DevicePowerModel& model() const { return model_; }

  [[nodiscard]] Watts domain_power(Domain d, sim::SimTime t) const {
    return model_.rail_power_at(to_rail(d), t);
  }
  [[nodiscard]] Watts total_power(sim::SimTime t) const;
  [[nodiscard]] Volts domain_voltage(Domain d) const {
    return model_.rail_voltage(to_rail(d));
  }
  [[nodiscard]] Amps domain_current(Domain d, sim::SimTime t) const {
    return model_.rail_current_at(to_rail(d), t);
  }

 private:
  int rack_, midplane_, board_;
  power::DevicePowerModel model_;
};

// Bulk power module view of a rack: AC input power for the DC the boards
// draw, plus the rack's fixed overhead (fans, service cards, link cards,
// coolant pumps), divided by conversion efficiency.
struct BpmOptions {
  double conversion_efficiency = 0.92;
  Watts rack_fixed_overhead{4200.0};  // fans, service/link cards, clocks
};

class BgqMachine {
 public:
  explicit BgqMachine(Topology topology = {}, BpmOptions bpm = {});

  [[nodiscard]] const Topology& topology() const { return topology_; }
  [[nodiscard]] std::size_t board_count() const { return boards_.size(); }
  [[nodiscard]] NodeBoard& board(std::size_t i) { return *boards_[i]; }
  [[nodiscard]] const NodeBoard& board(std::size_t i) const { return *boards_[i]; }

  // Runs a workload on boards [first, first+count), starting at `start`.
  void run_workload(const power::UtilizationProfile* profile, sim::SimTime start,
                    std::size_t first_board = 0, std::size_t count = SIZE_MAX);

  // DC power drawn by all boards of one rack.
  [[nodiscard]] Watts rack_dc_power(int rack, sim::SimTime t) const;

  // AC input power measured at the rack's BPMs (what the environmental
  // database records in the "input" direction, Fig 1).
  [[nodiscard]] Watts bpm_input_power(int rack, sim::SimTime t) const;
  [[nodiscard]] Amps bpm_input_current(int rack, sim::SimTime t) const;

  // BPM output (DC side): boards + overhead, before conversion loss.
  [[nodiscard]] Watts bpm_output_power(int rack, sim::SimTime t) const;

 private:
  Topology topology_;
  BpmOptions bpm_;
  std::vector<std::unique_ptr<NodeBoard>> boards_;
};

// The published rail calibration for one node board (32 nodes).
[[nodiscard]] power::RailTable<power::RailModel> node_board_rails();

}  // namespace envmon::bgq
