#include "bgq/env_monitor.hpp"

namespace envmon::bgq {

Result<std::unique_ptr<EnvMonitor>> EnvMonitor::create(sim::Engine& engine,
                                                       const BgqMachine& machine,
                                                       tsdb::EnvDatabase& db,
                                                       EnvMonitorOptions options) {
  if (options.interval < kMinEnvInterval || options.interval > kMaxEnvInterval) {
    return Status::out_of_range("environmental polling interval must be within 60-1800 s");
  }
  return std::unique_ptr<EnvMonitor>(new EnvMonitor(engine, machine, db, options));
}

EnvMonitor::EnvMonitor(sim::Engine& engine, const BgqMachine& machine, tsdb::EnvDatabase& db,
                       EnvMonitorOptions options)
    : engine_(&engine), machine_(&machine), db_(&db), options_(options), rng_(options.seed) {
  const int racks = machine_->topology().racks;
  power_sensors_.reserve(static_cast<std::size_t>(racks));
  coolant_.reserve(static_cast<std::size_t>(racks));
  for (int r = 0; r < racks; ++r) {
    power::SensorOptions sensor;
    sensor.noise_sigma = 6.0;   // watts, BPM metering noise
    sensor.quantum = 1.0;       // the database stores integral watts
    sensor.min_value = 0.0;
    power_sensors_.emplace_back(sensor, rng_.fork());

    power::ThermalOptions thermal;
    thermal.ambient = Celsius{18.0};            // facility chilled water
    thermal.resistance_c_per_w = 2.2e-4;        // rack-scale coolant loop
    thermal.capacity_j_per_c = 5.0e5;
    thermal.initial = Celsius{19.0};
    coolant_.emplace_back(thermal);
  }
}

void EnvMonitor::start() {
  if (timer_.active()) return;
  timer_ = engine_->schedule_periodic(options_.interval, [this] { poll_once(); });
}

void EnvMonitor::stop() { timer_.cancel(); }

void EnvMonitor::poll_once() {
  const sim::SimTime now = engine_->now();
  // One poll = one database batch: the control system gathers the whole
  // sensor sweep, then hands it to DB2 in one ingest (rejects, e.g. at
  // the rate ceiling, drop individual records exactly like per-record
  // inserts did).
  std::vector<tsdb::Record> batch;
  const auto racks = static_cast<std::size_t>(machine_->topology().racks);
  batch.reserve(racks * 6 +
                (options_.record_board_voltages ? machine_->board_count() * kDomainCount : 0));
  for (int r = 0; r < machine_->topology().racks; ++r) {
    const auto ri = static_cast<std::size_t>(r);
    const tsdb::Location rack_loc = tsdb::rack_location(r);
    const Watts true_input = machine_->bpm_input_power(r, now);
    const double measured = power_sensors_[ri].sample(now, true_input.value());

    batch.push_back({now, rack_loc, kMetricBpmInputPower, measured});
    batch.push_back({now, rack_loc, kMetricBpmInputCurrent, measured / 480.0});
    batch.push_back(
        {now, rack_loc, kMetricBpmOutputPower, machine_->bpm_output_power(r, now).value()});

    const Celsius coolant = coolant_[ri].step(now, true_input);
    batch.push_back({now, rack_loc, kMetricCoolantTempC, coolant.value()});
    // Flow tracks pump speed, which the control system raises with load.
    const double flow_lpm = 95.0 + 0.0006 * true_input.value();
    batch.push_back({now, rack_loc, kMetricCoolantFlowLpm, flow_lpm});
    const double fan_rpm = 2400.0 + 0.05 * true_input.value() + rng_.normal(0.0, 15.0);
    batch.push_back({now, rack_loc, kMetricFanSpeedRpm, fan_rpm});
  }

  if (options_.record_board_voltages) {
    for (std::size_t b = 0; b < machine_->board_count(); ++b) {
      const NodeBoard& board = machine_->board(b);
      const tsdb::Location loc =
          tsdb::board_location(board.rack(), board.midplane(), board.board());
      for (const Domain d : kAllDomains) {
        batch.push_back({now, loc,
                         std::string(kMetricDomainVoltage) + "." + std::string(to_string(d)),
                         board.domain_voltage(d).value()});
      }
    }
  }
  (void)db_->insert_batch(batch);
  ++polls_;
}

}  // namespace envmon::bgq
