#pragma once
// EMON: the Blue Gene/Q environmental monitoring API.
//
// Paper §II-A: "IBM provides interfaces in the form of an environmental
// monitoring API called EMON that allows one to access power consumption
// data from code running on compute nodes, with a relatively short
// response time.  The power information obtained using EMON is total
// power consumption from the oldest generation of power data.
// Furthermore, the underlying power measurement infrastructure does not
// measure all domains at the exact same time."
//
// Model: per node board, the measurement infrastructure produces a new
// *generation* of per-domain (voltage, current) pairs every
// `generation_period` (560 ms — the finest interval MonEQ can poll at).
// Within a generation the seven domains are sampled at staggered offsets,
// so a generation is not a consistent snapshot — exactly the CPU+memory
// inconsistency the paper warns about.  A read returns the most recent
// *completed* generation and charges the caller the paper's measured
// 1.10 ms query cost.

#include <array>

#include "bgq/machine.hpp"
#include "common/status.hpp"
#include "fault/injector.hpp"
#include "sim/cost.hpp"
#include "sim/time.hpp"

namespace envmon::bgq {

struct DomainReading {
  Domain domain{};
  Volts voltage{};
  Amps current{};
  sim::SimTime sampled_at;  // the staggered instant this domain was measured

  [[nodiscard]] Watts power() const { return voltage * current; }
};

struct EmonReading {
  std::array<DomainReading, kDomainCount> domains{};
  sim::SimTime generation_start;

  [[nodiscard]] Watts total_power() const {
    Watts p{0.0};
    for (const auto& d : domains) p += d.power();
    return p;
  }
};

struct EmonOptions {
  sim::Duration generation_period = sim::Duration::millis(560);
  // Per-query cost charged to the application (paper: ~1.10 ms).
  sim::Duration query_cost = sim::Duration::nanos(1'100'000);
};

class EmonSession {
 public:
  // The session reads one node board; EMON's hard scope limit ("only ...
  // the node card level (every 32 nodes)") is structural: there is no
  // narrower handle to open.
  EmonSession(const NodeBoard& board, EmonOptions options = {});

  // Reads the most recent completed generation at virtual time `now`.
  // Fails with kUnavailable before the first generation completes.
  [[nodiscard]] Result<EmonReading> read(sim::SimTime now);

  /// Routes every generation read through `injector` (site
  /// fault::sites::kEmon by default).  Stalls are charged like query
  /// cost; corruption lands on the per-domain currents.
  void attach_fault_hook(fault::Injector& injector,
                         std::string site = std::string(fault::sites::kEmon)) {
    fault_hook_.attach(injector, std::move(site));
  }

  [[nodiscard]] const sim::CostMeter& cost() const { return cost_; }
  [[nodiscard]] const EmonOptions& options() const { return options_; }

 private:
  const NodeBoard* board_;
  EmonOptions options_;
  std::array<sim::Duration, kDomainCount> stagger_{};
  sim::CostMeter cost_;
  fault::Hook fault_hook_;
};

}  // namespace envmon::bgq
