#include "bgq/machine.hpp"

#include <stdexcept>

namespace envmon::bgq {

power::RailTable<power::RailModel> node_board_rails() {
  using power::Rail;
  using power::RailModel;
  power::RailTable<RailModel> rails{};
  // Idle/dynamic watts for 32 nodes; voltages are the domain rail levels.
  rails[power::rail_index(Rail::kCpuCore)] = RailModel{Watts{340.0}, Watts{980.0}, Volts{0.9}};
  rails[power::rail_index(Rail::kDram)] = RailModel{Watts{150.0}, Watts{620.0}, Volts{1.35}};
  rails[power::rail_index(Rail::kLink)] = RailModel{Watts{58.0}, Watts{210.0}, Volts{1.0}};
  rails[power::rail_index(Rail::kNetwork)] = RailModel{Watts{52.0}, Watts{175.0}, Volts{1.5}};
  rails[power::rail_index(Rail::kOptics)] = RailModel{Watts{42.0}, Watts{130.0}, Volts{2.5}};
  rails[power::rail_index(Rail::kPcie)] = RailModel{Watts{34.0}, Watts{85.0}, Volts{3.3}};
  rails[power::rail_index(Rail::kSram)] = RailModel{Watts{22.0}, Watts{64.0}, Volts{0.8}};
  return rails;
}

NodeBoard::NodeBoard(int rack, int midplane, int board)
    : rack_(rack), midplane_(midplane), board_(board) {
  const auto rails = node_board_rails();
  for (const power::Rail r : power::kAllRails) {
    model_.set_rail(r, rails[power::rail_index(r)]);
  }
}

Watts NodeBoard::total_power(sim::SimTime t) const {
  Watts total{0.0};
  for (const Domain d : kAllDomains) total += domain_power(d, t);
  return total;
}

BgqMachine::BgqMachine(Topology topology, BpmOptions bpm) : topology_(topology), bpm_(bpm) {
  if (topology_.racks <= 0 || topology_.midplanes_per_rack <= 0 ||
      topology_.boards_per_midplane <= 0 || topology_.nodes_per_board <= 0) {
    throw std::invalid_argument("BgqMachine: topology dimensions must be positive");
  }
  if (bpm_.conversion_efficiency <= 0.0 || bpm_.conversion_efficiency > 1.0) {
    throw std::invalid_argument("BgqMachine: conversion efficiency must be in (0,1]");
  }
  boards_.reserve(static_cast<std::size_t>(topology_.total_boards()));
  for (int r = 0; r < topology_.racks; ++r) {
    for (int m = 0; m < topology_.midplanes_per_rack; ++m) {
      for (int n = 0; n < topology_.boards_per_midplane; ++n) {
        boards_.push_back(std::make_unique<NodeBoard>(r, m, n));
      }
    }
  }
}

void BgqMachine::run_workload(const power::UtilizationProfile* profile, sim::SimTime start,
                              std::size_t first_board, std::size_t count) {
  if (first_board >= boards_.size()) {
    throw std::out_of_range("BgqMachine::run_workload: first_board out of range");
  }
  const std::size_t last = (count == SIZE_MAX || first_board + count > boards_.size())
                               ? boards_.size()
                               : first_board + count;
  for (std::size_t i = first_board; i < last; ++i) {
    boards_[i]->model().run_workload(profile, start);
  }
}

Watts BgqMachine::rack_dc_power(int rack, sim::SimTime t) const {
  if (rack < 0 || rack >= topology_.racks) {
    throw std::out_of_range("BgqMachine::rack_dc_power: bad rack index");
  }
  Watts total{0.0};
  const auto per_rack = static_cast<std::size_t>(topology_.boards_per_rack());
  const std::size_t begin = static_cast<std::size_t>(rack) * per_rack;
  for (std::size_t i = begin; i < begin + per_rack; ++i) {
    total += boards_[i]->total_power(t);
  }
  return total;
}

Watts BgqMachine::bpm_output_power(int rack, sim::SimTime t) const {
  return rack_dc_power(rack, t) + bpm_.rack_fixed_overhead;
}

Watts BgqMachine::bpm_input_power(int rack, sim::SimTime t) const {
  return bpm_output_power(rack, t) / bpm_.conversion_efficiency;
}

Amps BgqMachine::bpm_input_current(int rack, sim::SimTime t) const {
  // BPMs are fed at 480 VAC (three-phase, treated as a single equivalent).
  return bpm_input_power(rack, t) / Volts{480.0};
}

}  // namespace envmon::bgq
