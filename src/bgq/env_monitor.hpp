#pragma once
// The Blue Gene environmental monitor: the control-system daemon that
// "periodically samples and gathers environmental data from various
// sensors and stores this collected information together with the
// timestamp and location information" in the environmental database
// (paper §II-A).
//
// Polling interval: ~4 minutes by default, configurable within
// 60-1800 s (the paper's stated range); values outside are rejected.
// Sensors recorded per poll: BPM input/output power and input current
// per rack, per-board domain voltages, coolant temperature and flow,
// and fan speeds — the sensor classes §II-A enumerates.

#include <vector>

#include "bgq/machine.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "power/sensor.hpp"
#include "power/thermal.hpp"
#include "sim/engine.hpp"
#include "tsdb/database.hpp"

namespace envmon::bgq {

// Metric names written to the environmental database.
inline constexpr const char* kMetricBpmInputPower = "bpm_input_power_watts";
inline constexpr const char* kMetricBpmInputCurrent = "bpm_input_current_amps";
inline constexpr const char* kMetricBpmOutputPower = "bpm_output_power_watts";
inline constexpr const char* kMetricCoolantTempC = "coolant_temp_celsius";
inline constexpr const char* kMetricCoolantFlowLpm = "coolant_flow_lpm";
inline constexpr const char* kMetricFanSpeedRpm = "fan_speed_rpm";
inline constexpr const char* kMetricDomainVoltage = "domain_voltage_volts";

struct EnvMonitorOptions {
  sim::Duration interval = sim::Duration::seconds(240);  // "about 4 minutes"
  std::uint64_t seed = 0x5eed0001;
  bool record_board_voltages = true;
};

inline constexpr sim::Duration kMinEnvInterval = sim::Duration::seconds(60);
inline constexpr sim::Duration kMaxEnvInterval = sim::Duration::seconds(1800);

class EnvMonitor {
 public:
  // Fails with kOutOfRange if the interval is outside [60 s, 1800 s].
  static Result<std::unique_ptr<EnvMonitor>> create(sim::Engine& engine,
                                                    const BgqMachine& machine,
                                                    tsdb::EnvDatabase& db,
                                                    EnvMonitorOptions options = {});

  // Starts periodic polling (first sample after one interval).
  void start();
  void stop();

  [[nodiscard]] std::size_t polls_completed() const { return polls_; }

 private:
  EnvMonitor(sim::Engine& engine, const BgqMachine& machine, tsdb::EnvDatabase& db,
             EnvMonitorOptions options);

  void poll_once();

  sim::Engine* engine_;
  const BgqMachine* machine_;
  tsdb::EnvDatabase* db_;
  EnvMonitorOptions options_;
  sim::TimerHandle timer_;
  std::size_t polls_ = 0;

  Rng rng_;
  // Per-rack sensor state.
  std::vector<power::SensorPipeline> power_sensors_;
  std::vector<power::ThermalModel> coolant_;
};

}  // namespace envmon::bgq
