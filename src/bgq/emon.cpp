#include "bgq/emon.hpp"

namespace envmon::bgq {

EmonSession::EmonSession(const NodeBoard& board, EmonOptions options)
    : board_(&board), options_(options) {
  // Domains are measured one after another across the generation window;
  // spread them over the first ~70% of the period in a fixed order.
  const std::int64_t step =
      options_.generation_period.ns() * 7 / (10 * static_cast<std::int64_t>(kDomainCount));
  for (std::size_t i = 0; i < kDomainCount; ++i) {
    stagger_[i] = sim::Duration::nanos(static_cast<std::int64_t>(i) * step);
  }
}

Result<EmonReading> EmonSession::read(sim::SimTime now) {
  const fault::Outcome fo = fault_hook_.intercept();
  if (fo.extra_latency.ns() > 0) cost_.charge(fo.extra_latency);
  if (!fo.ok()) return fo.status;
  cost_.charge(options_.query_cost);

  const std::int64_t period = options_.generation_period.ns();
  // Generation k covers [k*period, (k+1)*period); data becomes available
  // when the generation completes.  The most recent completed generation
  // at time `now` is floor(now/period) - 1.
  const std::int64_t completed = now.ns() / period - 1;
  if (completed < 0) {
    return Status::unavailable("no completed EMON generation yet (first data after " +
                      std::to_string(2.0 * options_.generation_period.to_seconds()) + " s)");
  }
  EmonReading reading;
  reading.generation_start = sim::SimTime::from_ns(completed * period);
  for (const Domain d : kAllDomains) {
    const std::size_t i = domain_index(d);
    const sim::SimTime sampled = reading.generation_start + stagger_[i];
    Amps current = board_->domain_current(d, sampled);
    if (fo.corrupted) current = Amps{fo.corrupt_value(current.value())};
    reading.domains[i] = DomainReading{
        d,
        board_->domain_voltage(d),
        current,
        sampled,
    };
  }
  return reading;
}

}  // namespace envmon::bgq
