#pragma once
// Fleet-wide telemetry: per-node Registry partitions with a
// deterministic hierarchical rollup.
//
// The PR-4 fleet engine gave every node its own virtual-clock partition
// but kept one process-wide metrics registry, so 1024 nodes fold their
// counts into shared atomics and per-node attribution is lost the
// moment it happens.  FleetTelemetry gives each node its *own*
// obs::Registry — the node's profiler and backends register there — and
// a merge tree mirroring the BG/Q packaging hierarchy we already model:
//
//   node (compute card) -> node board (32 cards) -> rack (32 boards)
//        -> fleet
//
// Each epoch a worker snapshots its nodes' registries (capture(), the
// only per-node touch); the epoch-barrier completion step then folds the
// captured snapshots up the tree (fold()).  The fold visits children in
// ascending index order at every level, so every floating-point
// accumulation happens in one fixed order: the rolled-up snapshot is a
// pure function of the node snapshots, byte-identical at any worker
// count.  Per-node registries hold only virtual-clock series (poll
// counts, virtual-ms latencies), which makes the node snapshots — and
// therefore the whole tree — deterministic too.
//
// Merge semantics: counters and histogram buckets add; gauges add
// (a fleet gauge reads as the sum over nodes); histograms with
// mismatched bucket bounds keep the first-seen layout and skip the
// mismatch (counted in merge_skipped()).

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "obs/metrics.hpp"

namespace envmon::obs {

// Children per level of the rollup tree, defaulting to the BG/Q shape
// (32 compute cards per node board, 16 boards x 2 midplanes per rack).
struct RollupTopology {
  int nodes_per_board = 32;
  int boards_per_rack = 32;
};

// Accumulates `from` into `into`.  Both must be sorted by (name, labels)
// — true of every Registry::snapshot().  Returns series skipped because
// of mismatched histogram bucket layouts.
std::size_t merge_snapshot(Snapshot& into, const Snapshot& from);

class FleetTelemetry {
 public:
  explicit FleetTelemetry(int nodes, RollupTopology topology = {});
  FleetTelemetry(const FleetTelemetry&) = delete;
  FleetTelemetry& operator=(const FleetTelemetry&) = delete;

  [[nodiscard]] int node_count() const { return static_cast<int>(node_registries_.size()); }
  [[nodiscard]] int board_count() const { return static_cast<int>(boards_.size()); }
  [[nodiscard]] int rack_count() const { return static_cast<int>(racks_.size()); }

  // The registry partition owned by `rank`.  Hand it to the node's
  // profiler/backends at configure() time.
  [[nodiscard]] Registry& node_registry(int rank) { return *node_registries_[static_cast<std::size_t>(rank)]; }

  // Snapshots `rank`'s registry into its epoch slot.  Called by the
  // worker that owns the rank (each slot has exactly one writer); the
  // snapshot itself locks only that node's registry mutex.
  void capture(int rank);

  // Snapshots `rank`'s registry into a caller-owned buffer instead of the
  // internal slot.  The work-stealing fleet scheduler captures into
  // shard-local deposit buffers so a fast shard's next-epoch capture can
  // never overwrite a slot an unmerged epoch still needs; steady-state
  // refresh is in-place (Registry::snapshot_into).
  void capture_into(int rank, Snapshot& out) const;

  // Folds the captured node snapshots up the tree: boards, racks, fleet.
  // Single-threaded by contract (the scheduler's epoch merge point) and
  // deterministic (fixed child order at every level).
  void fold();

  // Same fold, but reading node snapshots from `nodes` (index = rank,
  // size = node_count()) rather than the internal capture slots.  Used
  // with capture_into() under epoch skew; null entries merge as empty.
  void fold(std::span<const Snapshot* const> nodes);

  // Adopts a capture produced by capture_into() as `rank`'s internal
  // slot.  The work-stealing runner deposits captures shard-locally
  // during the run and moves the final epoch's set here afterwards, so
  // node_capture() still reads the last-folded per-node state.
  void store_capture(int rank, Snapshot&& snapshot) {
    node_snapshots_[static_cast<std::size_t>(rank)] = std::move(snapshot);
  }

  // Rollups from the most recent fold() (empty before the first).
  [[nodiscard]] const Snapshot& board_rollup(int board) const {
    return boards_[static_cast<std::size_t>(board)];
  }
  [[nodiscard]] const Snapshot& rack_rollup(int rack) const {
    return racks_[static_cast<std::size_t>(rack)];
  }
  [[nodiscard]] const Snapshot& fleet_rollup() const { return fleet_; }
  [[nodiscard]] const Snapshot& node_capture(int rank) const {
    return node_snapshots_[static_cast<std::size_t>(rank)];
  }

  [[nodiscard]] std::uint64_t folds() const { return folds_; }
  [[nodiscard]] std::uint64_t merge_skipped() const { return merge_skipped_; }

 private:
  RollupTopology topology_;
  std::vector<std::unique_ptr<Registry>> node_registries_;
  std::vector<Snapshot> node_snapshots_;  // slot[rank], written by capture()
  std::vector<Snapshot> boards_;
  std::vector<Snapshot> racks_;
  Snapshot fleet_;
  std::uint64_t folds_ = 0;
  std::uint64_t merge_skipped_ = 0;

  Counter* folds_metric_ = nullptr;
  Gauge* series_metric_ = nullptr;
};

}  // namespace envmon::obs
