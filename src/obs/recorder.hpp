#pragma once
// The fault flight recorder: a bounded ring buffer of structured events
// on the virtual clock, dumped as a deterministic post-mortem when
// something goes wrong.
//
// The paper's study had no answer to "which node caused that gap" once
// a run was over; the fleet engine needs one.  Each FleetNode owns a
// FlightRecorder fed by its injector (fault injections) and profiler
// (health transitions); the runner owns one more for fleet-level events
// (epoch seals, retention drops, ingest-queue stalls).  Because every
// per-node recorder is advanced only by the worker that owns its node,
// and fleet-level deterministic events come from single-threaded code
// (the ingest thread, the barrier completion step), the merged timeline
// is a pure function of (seed, config) — byte-identical at any worker
// count, the property tests/obs_fleet_telemetry_test.cpp gates.
//
// Events carry an EventClass: kDeterministic events replay exactly;
// kTiming events (queue stalls, deadline misses) depend on wall-clock
// scheduling and live in a separate ring so they can never evict — or
// perturb — the deterministic record.  dump_post_mortem() excludes them
// unless explicitly asked.

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace envmon::obs {

enum class EventClass : std::uint8_t {
  kDeterministic = 0,  // pure function of (seed, config); safe to golden-test
  kTiming = 1,         // wall-clock dependent (stalls, deadline misses)
};

struct RecorderEvent {
  sim::SimTime t;        // virtual time (fleet-level events use the epoch boundary)
  int node = -1;         // fleet rank; -1 for fleet-level events
  std::string category;  // "fault", "health", "seal", "retention", "queue", ...
  std::string name;
  std::string detail;
  std::uint64_t seq = 0;  // per-recorder monotonic; breaks (t, node) ties
};

// Bounded ring of events.  Thread-safe (a mutex on the record path — the
// recorder is a cold path by design: faults, transitions, and seals are
// rare next to samples), but deterministic content requires the caller
// discipline described above.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 256);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void record(sim::SimTime t, int node, std::string_view category, std::string_view name,
              std::string_view detail = "", EventClass event_class = EventClass::kDeterministic);

  // Surviving window of each ring, oldest first.
  [[nodiscard]] std::vector<RecorderEvent> events() const;
  [[nodiscard]] std::vector<RecorderEvent> timing_events() const;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  // Events recorded / evicted by ring wraparound, per class.
  [[nodiscard]] std::uint64_t recorded() const;
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::uint64_t timing_recorded() const;
  [[nodiscard]] std::uint64_t timing_dropped() const;

 private:
  struct Ring {
    std::vector<RecorderEvent> events;
    std::size_t next = 0;  // insertion point once full
    std::uint64_t recorded = 0;
    std::uint64_t dropped = 0;
    std::uint64_t next_seq = 0;
  };

  void push(Ring& ring, sim::SimTime t, int node, std::string_view category,
            std::string_view name, std::string_view detail);
  [[nodiscard]] static std::vector<RecorderEvent> window(const Ring& ring);

  mutable std::mutex mutex_;
  std::size_t capacity_;
  Ring deterministic_;
  Ring timing_;

  Counter* events_metric_ = nullptr;
  Counter* dropped_metric_ = nullptr;
};

// Merges the surviving events of several recorders into one timeline
// ordered by (virtual time, node, per-recorder seq) — deterministic as
// long as each recorder's own content is.
[[nodiscard]] std::vector<RecorderEvent> merge_events(
    std::span<const FlightRecorder* const> recorders, bool include_timing = false);

// Renders the merged timeline as the post-mortem JSON document:
//   {"trigger": ..., "events": [{"t_ns": ..., "node": ..., ...}, ...],
//    "recorded": N, "dropped": M}
// Timestamps are integer nanoseconds, so the output is byte-exact.
// `trigger` says why the dump exists ("backend quarantined: ...",
// "ingest deadline missed", or "manual").
[[nodiscard]] std::string dump_post_mortem(std::string_view trigger,
                                           std::span<const FlightRecorder* const> recorders,
                                           bool include_timing = false);

}  // namespace envmon::obs
