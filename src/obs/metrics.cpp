#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace envmon::obs {

namespace {
std::atomic<bool> g_enabled{true};
}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bucket bounds must be ascending");
  }
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::quantile(double p) const {
  const std::uint64_t total = count();
  if (total == 0 || bounds_.empty()) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double rank = p * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    const double in_bucket =
        static_cast<double>(counts_[i].load(std::memory_order_relaxed));
    if (cumulative + in_bucket >= rank && in_bucket > 0.0) {
      const double lower = i == 0 ? std::min(0.0, bounds_[0]) : bounds_[i - 1];
      const double upper = bounds_[i];
      return lower + (upper - lower) * (rank - cumulative) / in_bucket;
    }
    cumulative += in_bucket;
  }
  // Rank lands in the +Inf bucket: the best bounded estimate is the
  // largest finite bound.
  return bounds_.back();
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> Histogram::exponential_bounds(double start, double factor, int n) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(n));
  double b = start;
  for (int i = 0; i < n; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

const std::vector<double>& Histogram::latency_bounds_ms() {
  static const std::vector<double> kBounds = {0.01, 0.02, 0.05, 0.1, 0.2, 0.5,
                                              1.0,  2.0,  5.0,  10.0, 20.0, 50.0};
  return kBounds;
}

Counter& Registry::counter(std::string_view name, std::string_view help,
                           std::string_view labels) {
  const std::scoped_lock lock(mutex_);
  auto& entry = counters_[Key{std::string(name), std::string(labels)}];
  if (!entry.metric) {
    entry.help = std::string(help);
    entry.metric = &counter_arena_.emplace_back();
    ++layout_version_;
  }
  return *entry.metric;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help,
                       std::string_view labels) {
  const std::scoped_lock lock(mutex_);
  auto& entry = gauges_[Key{std::string(name), std::string(labels)}];
  if (!entry.metric) {
    entry.help = std::string(help);
    entry.metric = &gauge_arena_.emplace_back();
    ++layout_version_;
  }
  return *entry.metric;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               std::vector<double> bounds, std::string_view labels) {
  const std::scoped_lock lock(mutex_);
  auto& entry = histograms_[Key{std::string(name), std::string(labels)}];
  if (!entry.metric) {
    entry.help = std::string(help);
    entry.metric = &histogram_arena_.emplace_back(std::move(bounds));
    ++layout_version_;
  }
  return *entry.metric;
}

namespace {

// True when `rows` already mirrors the map's key sequence, so a refresh
// can overwrite values in place without touching any string.
template <typename Row, typename Map>
bool keys_match(const std::vector<Row>& rows, const Map& entries) {
  if (rows.size() != entries.size()) return false;
  std::size_t i = 0;
  for (const auto& [key, entry] : entries) {
    if (rows[i].name != key.first || rows[i].labels != key.second) return false;
    ++i;
  }
  return true;
}

}  // namespace

Snapshot Registry::snapshot() const {
  Snapshot snap;
  snapshot_into(snap);
  return snap;
}

void Registry::snapshot_into(Snapshot& out) const {
  const std::scoped_lock lock(mutex_);

  // Tagged fast path: `out` was last captured from this registry at the
  // current layout version, so its rows are proven to mirror the maps —
  // refresh values straight through the flat plan pointers without
  // walking the maps or comparing any key string.
  if (out.layout_source == this && out.layout_version == layout_version_) {
    if (plan_version_ != layout_version_) {
      plan_counters_.clear();
      plan_gauges_.clear();
      plan_histograms_.clear();
      for (const auto& [key, entry] : counters_) plan_counters_.push_back(entry.metric);
      for (const auto& [key, entry] : gauges_) plan_gauges_.push_back(entry.metric);
      for (const auto& [key, entry] : histograms_) {
        plan_histograms_.push_back(entry.metric);
      }
      plan_version_ = layout_version_;
    }
    for (std::size_t i = 0; i < plan_counters_.size(); ++i) {
      out.counters[i].value = plan_counters_[i]->value();
    }
    for (std::size_t i = 0; i < plan_gauges_.size(); ++i) {
      out.gauges[i].value = plan_gauges_[i]->value();
    }
    for (std::size_t i = 0; i < plan_histograms_.size(); ++i) {
      const Histogram* h = plan_histograms_[i];
      Snapshot::HistogramRow& row = out.histograms[i];
      for (std::size_t b = 0; b < row.bucket_counts.size(); ++b) {
        row.bucket_counts[b] = h->bucket_count(b);
      }
      row.count = h->count();
      row.sum = h->sum();
    }
    return;
  }

  if (keys_match(out.counters, counters_)) {
    std::size_t i = 0;
    for (const auto& [key, entry] : counters_) out.counters[i++].value = entry.metric->value();
  } else {
    out.counters.clear();
    out.counters.reserve(counters_.size());
    for (const auto& [key, entry] : counters_) {
      out.counters.push_back({key.first, key.second, entry.help, entry.metric->value()});
    }
  }

  if (keys_match(out.gauges, gauges_)) {
    std::size_t i = 0;
    for (const auto& [key, entry] : gauges_) out.gauges[i++].value = entry.metric->value();
  } else {
    out.gauges.clear();
    out.gauges.reserve(gauges_.size());
    for (const auto& [key, entry] : gauges_) {
      out.gauges.push_back({key.first, key.second, entry.help, entry.metric->value()});
    }
  }

  bool hist_fast = keys_match(out.histograms, histograms_);
  if (hist_fast) {
    std::size_t i = 0;
    for (const auto& [key, entry] : histograms_) {
      if (out.histograms[i++].bounds != entry.metric->bounds()) {
        hist_fast = false;
        break;
      }
    }
  }
  if (hist_fast) {
    std::size_t i = 0;
    for (const auto& [key, entry] : histograms_) {
      Snapshot::HistogramRow& row = out.histograms[i++];
      for (std::size_t b = 0; b < row.bucket_counts.size(); ++b) {
        row.bucket_counts[b] = entry.metric->bucket_count(b);
      }
      row.count = entry.metric->count();
      row.sum = entry.metric->sum();
    }
  } else {
    out.histograms.clear();
    out.histograms.reserve(histograms_.size());
    for (const auto& [key, entry] : histograms_) {
      Snapshot::HistogramRow row;
      row.name = key.first;
      row.labels = key.second;
      row.help = entry.help;
      row.bounds = entry.metric->bounds();
      row.bucket_counts.reserve(row.bounds.size() + 1);
      for (std::size_t i = 0; i <= row.bounds.size(); ++i) {
        row.bucket_counts.push_back(entry.metric->bucket_count(i));
      }
      row.count = entry.metric->count();
      row.sum = entry.metric->sum();
      out.histograms.push_back(std::move(row));
    }
  }

  out.layout_source = this;
  out.layout_version = layout_version_;
}

void Registry::reset_values() {
  const std::scoped_lock lock(mutex_);
  for (auto& [key, entry] : counters_) entry.metric->reset();
  for (auto& [key, entry] : gauges_) entry.metric->reset();
  for (auto& [key, entry] : histograms_) entry.metric->reset();
}

Registry& default_registry() {
  static Registry* registry = new Registry();  // leaked: outlives static dtors
  return *registry;
}

}  // namespace envmon::obs
