#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace envmon::obs {

namespace {
std::atomic<bool> g_enabled{true};
}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bucket bounds must be ascending");
  }
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> Histogram::exponential_bounds(double start, double factor, int n) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(n));
  double b = start;
  for (int i = 0; i < n; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

const std::vector<double>& Histogram::latency_bounds_ms() {
  static const std::vector<double> kBounds = {0.01, 0.02, 0.05, 0.1, 0.2, 0.5,
                                              1.0,  2.0,  5.0,  10.0, 20.0, 50.0};
  return kBounds;
}

Counter& Registry::counter(std::string_view name, std::string_view help,
                           std::string_view labels) {
  const std::scoped_lock lock(mutex_);
  auto& entry = counters_[Key{std::string(name), std::string(labels)}];
  if (!entry.metric) {
    entry.help = std::string(help);
    entry.metric = std::make_unique<Counter>();
  }
  return *entry.metric;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help,
                       std::string_view labels) {
  const std::scoped_lock lock(mutex_);
  auto& entry = gauges_[Key{std::string(name), std::string(labels)}];
  if (!entry.metric) {
    entry.help = std::string(help);
    entry.metric = std::make_unique<Gauge>();
  }
  return *entry.metric;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               std::vector<double> bounds, std::string_view labels) {
  const std::scoped_lock lock(mutex_);
  auto& entry = histograms_[Key{std::string(name), std::string(labels)}];
  if (!entry.metric) {
    entry.help = std::string(help);
    entry.metric = std::make_unique<Histogram>(std::move(bounds));
  }
  return *entry.metric;
}

Snapshot Registry::snapshot() const {
  const std::scoped_lock lock(mutex_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [key, entry] : counters_) {
    snap.counters.push_back({key.first, key.second, entry.help, entry.metric->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [key, entry] : gauges_) {
    snap.gauges.push_back({key.first, key.second, entry.help, entry.metric->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [key, entry] : histograms_) {
    Snapshot::HistogramRow row;
    row.name = key.first;
    row.labels = key.second;
    row.help = entry.help;
    row.bounds = entry.metric->bounds();
    row.bucket_counts.reserve(row.bounds.size() + 1);
    for (std::size_t i = 0; i <= row.bounds.size(); ++i) {
      row.bucket_counts.push_back(entry.metric->bucket_count(i));
    }
    row.count = entry.metric->count();
    row.sum = entry.metric->sum();
    snap.histograms.push_back(std::move(row));
  }
  return snap;
}

void Registry::reset_values() {
  const std::scoped_lock lock(mutex_);
  for (auto& [key, entry] : counters_) entry.metric->reset();
  for (auto& [key, entry] : gauges_) entry.metric->reset();
  for (auto& [key, entry] : histograms_) entry.metric->reset();
}

Registry& default_registry() {
  static Registry* registry = new Registry();  // leaked: outlives static dtors
  return *registry;
}

}  // namespace envmon::obs
