#include "obs/recorder.hpp"

#include <algorithm>

#include "obs/export.hpp"

namespace envmon::obs {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  // Rings allocate lazily on the first event: a 100k-node fleet carries
  // one recorder per node, and most nodes never record anything — an
  // upfront reserve would cost gigabytes of empty rings fleet-wide.
  if (enabled()) {
    auto& registry = default_registry();
    events_metric_ = &registry.counter("envmon_recorder_events_total",
                                       "Events captured by flight recorders");
    dropped_metric_ = &registry.counter("envmon_recorder_dropped_total",
                                        "Recorder events evicted by ring wraparound");
  }
}

void FlightRecorder::push(Ring& ring, sim::SimTime t, int node, std::string_view category,
                          std::string_view name, std::string_view detail) {
  RecorderEvent event{t, node, std::string(category), std::string(name), std::string(detail),
                      ring.next_seq++};
  if (ring.events.size() < capacity_) {
    ring.events.push_back(std::move(event));
  } else {
    ring.events[ring.next] = std::move(event);
    ring.next = (ring.next + 1) % capacity_;
    ++ring.dropped;
    if (dropped_metric_ != nullptr) dropped_metric_->inc();
  }
  ++ring.recorded;
  if (events_metric_ != nullptr) events_metric_->inc();
}

void FlightRecorder::record(sim::SimTime t, int node, std::string_view category,
                            std::string_view name, std::string_view detail,
                            EventClass event_class) {
  const std::scoped_lock lock(mutex_);
  push(event_class == EventClass::kDeterministic ? deterministic_ : timing_, t, node,
       category, name, detail);
}

std::vector<RecorderEvent> FlightRecorder::window(const Ring& ring) {
  std::vector<RecorderEvent> out;
  out.reserve(ring.events.size());
  // Oldest first: once the ring has wrapped, `next` points at the oldest
  // surviving event.
  for (std::size_t i = 0; i < ring.events.size(); ++i) {
    out.push_back(ring.events[(ring.next + i) % ring.events.size()]);
  }
  return out;
}

std::vector<RecorderEvent> FlightRecorder::events() const {
  const std::scoped_lock lock(mutex_);
  return window(deterministic_);
}

std::vector<RecorderEvent> FlightRecorder::timing_events() const {
  const std::scoped_lock lock(mutex_);
  return window(timing_);
}

std::uint64_t FlightRecorder::recorded() const {
  const std::scoped_lock lock(mutex_);
  return deterministic_.recorded;
}

std::uint64_t FlightRecorder::dropped() const {
  const std::scoped_lock lock(mutex_);
  return deterministic_.dropped;
}

std::uint64_t FlightRecorder::timing_recorded() const {
  const std::scoped_lock lock(mutex_);
  return timing_.recorded;
}

std::uint64_t FlightRecorder::timing_dropped() const {
  const std::scoped_lock lock(mutex_);
  return timing_.dropped;
}

std::vector<RecorderEvent> merge_events(std::span<const FlightRecorder* const> recorders,
                                        bool include_timing) {
  std::vector<RecorderEvent> merged;
  for (const FlightRecorder* recorder : recorders) {
    if (recorder == nullptr) continue;
    auto window = recorder->events();
    merged.insert(merged.end(), std::make_move_iterator(window.begin()),
                  std::make_move_iterator(window.end()));
    if (include_timing) {
      auto timing = recorder->timing_events();
      merged.insert(merged.end(), std::make_move_iterator(timing.begin()),
                    std::make_move_iterator(timing.end()));
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const RecorderEvent& a, const RecorderEvent& b) {
                     if (a.t.ns() != b.t.ns()) return a.t.ns() < b.t.ns();
                     if (a.node != b.node) return a.node < b.node;
                     return a.seq < b.seq;
                   });
  return merged;
}

std::string dump_post_mortem(std::string_view trigger,
                             std::span<const FlightRecorder* const> recorders,
                             bool include_timing) {
  const std::vector<RecorderEvent> events = merge_events(recorders, include_timing);
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
  for (const FlightRecorder* recorder : recorders) {
    if (recorder == nullptr) continue;
    recorded += recorder->recorded();
    dropped += recorder->dropped();
    if (include_timing) {
      recorded += recorder->timing_recorded();
      dropped += recorder->timing_dropped();
    }
  }

  std::string out = "{\n  \"trigger\": \"" + escape_json(trigger) + "\",\n  \"events\": [";
  bool first = true;
  for (const RecorderEvent& event : events) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"t_ns\": " + std::to_string(event.t.ns()) +
           ", \"node\": " + std::to_string(event.node) + ", \"category\": \"" +
           escape_json(event.category) + "\", \"name\": \"" + escape_json(event.name) +
           "\", \"detail\": \"" + escape_json(event.detail) + "\"}";
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"recorded\": " + std::to_string(recorded) +
         ",\n  \"dropped\": " + std::to_string(dropped) + "\n}\n";
  return out;
}

}  // namespace envmon::obs
