#include "obs/fleet_telemetry.hpp"

#include <algorithm>

namespace envmon::obs {

namespace {

// Key order shared by every Snapshot row type (the registry's map order).
template <typename Row>
bool row_less(const Row& a, const Row& b) {
  if (a.name != b.name) return a.name < b.name;
  return a.labels < b.labels;
}

template <typename Row>
bool same_keys(const std::vector<Row>& a, const std::vector<Row>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].name != b[i].name || a[i].labels != b[i].labels) return false;
  }
  return true;
}

// Sorted two-way merge of `from` into `into`; `accumulate(into_row,
// from_row)` folds matching keys and returns false to skip (mismatched
// histogram layouts).
template <typename Row, typename Accumulate>
std::size_t merge_rows(std::vector<Row>& into, const std::vector<Row>& from,
                       Accumulate accumulate) {
  // Fast path: identical key sequences — the steady state of a
  // homogeneous fleet, where every node registers the same series —
  // accumulate in place with no allocation and no row copies.  This is
  // what keeps 1024-node epoch folds inside the <= 1% overhead budget.
  if (same_keys(into, from)) {
    std::size_t in_place_skipped = 0;
    for (std::size_t i = 0; i < into.size(); ++i) {
      if (!accumulate(into[i], from[i])) ++in_place_skipped;
    }
    return in_place_skipped;
  }
  std::size_t skipped = 0;
  std::vector<Row> merged;
  merged.reserve(into.size() + from.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < into.size() && j < from.size()) {
    if (row_less(into[i], from[j])) {
      merged.push_back(std::move(into[i++]));
    } else if (row_less(from[j], into[i])) {
      merged.push_back(from[j++]);
    } else {
      if (!accumulate(into[i], from[j])) ++skipped;
      merged.push_back(std::move(into[i++]));
      ++j;
    }
  }
  for (; i < into.size(); ++i) merged.push_back(std::move(into[i]));
  for (; j < from.size(); ++j) merged.push_back(from[j]);
  into = std::move(merged);
  return skipped;
}

// Zeroes every value while keeping the row structure (names, labels,
// bounds) intact, so re-folding into a persistent rollup snapshot hits
// the in-place merge path instead of rebuilding strings each epoch.
void zero_values(Snapshot& snapshot) {
  for (auto& c : snapshot.counters) c.value = 0;
  for (auto& g : snapshot.gauges) g.value = 0.0;
  for (auto& h : snapshot.histograms) {
    std::fill(h.bucket_counts.begin(), h.bucket_counts.end(), 0);
    h.count = 0;
    h.sum = 0.0;
  }
}

}  // namespace

std::size_t merge_snapshot(Snapshot& into, const Snapshot& from) {
  std::size_t skipped = 0;
  skipped += merge_rows(into.counters, from.counters,
                        [](Snapshot::CounterRow& a, const Snapshot::CounterRow& b) {
                          a.value += b.value;
                          return true;
                        });
  skipped += merge_rows(into.gauges, from.gauges,
                        [](Snapshot::GaugeRow& a, const Snapshot::GaugeRow& b) {
                          a.value += b.value;
                          return true;
                        });
  skipped += merge_rows(into.histograms, from.histograms,
                        [](Snapshot::HistogramRow& a, const Snapshot::HistogramRow& b) {
                          if (a.bounds != b.bounds) return false;
                          for (std::size_t k = 0; k < a.bucket_counts.size(); ++k) {
                            a.bucket_counts[k] += b.bucket_counts[k];
                          }
                          a.count += b.count;
                          a.sum += b.sum;
                          return true;
                        });
  return skipped;
}

FleetTelemetry::FleetTelemetry(int nodes, RollupTopology topology) : topology_(topology) {
  const int node_count = std::max(nodes, 1);
  topology_.nodes_per_board = std::max(topology_.nodes_per_board, 1);
  topology_.boards_per_rack = std::max(topology_.boards_per_rack, 1);
  node_registries_.reserve(static_cast<std::size_t>(node_count));
  for (int i = 0; i < node_count; ++i) {
    node_registries_.push_back(std::make_unique<Registry>());
  }
  node_snapshots_.resize(static_cast<std::size_t>(node_count));
  const int board_count = (node_count + topology_.nodes_per_board - 1) / topology_.nodes_per_board;
  const int rack_count = (board_count + topology_.boards_per_rack - 1) / topology_.boards_per_rack;
  boards_.resize(static_cast<std::size_t>(board_count));
  racks_.resize(static_cast<std::size_t>(rack_count));
  if (enabled()) {
    auto& registry = default_registry();
    folds_metric_ = &registry.counter("envmon_fleet_rollup_folds_total",
                                      "Hierarchical telemetry rollups performed");
    series_metric_ = &registry.gauge("envmon_fleet_rollup_series",
                                     "Series in the latest fleet-wide rollup");
  }
}

void FleetTelemetry::capture(int rank) {
  // In-place refresh: after the first epoch the slot already mirrors the
  // registry's key sequence, so only values are written.
  node_registries_[static_cast<std::size_t>(rank)]->snapshot_into(
      node_snapshots_[static_cast<std::size_t>(rank)]);
}

void FleetTelemetry::capture_into(int rank, Snapshot& out) const {
  node_registries_[static_cast<std::size_t>(rank)]->snapshot_into(out);
}

void FleetTelemetry::fold() {
  std::vector<const Snapshot*> nodes;
  nodes.reserve(node_snapshots_.size());
  for (const Snapshot& s : node_snapshots_) nodes.push_back(&s);
  fold(nodes);
}

void FleetTelemetry::fold(std::span<const Snapshot* const> nodes) {
  // Rollup snapshots persist across folds: zero the values, keep the
  // structure, and let the in-place merge path do the accumulation.
  // (Registries never remove series, so stale rows cannot linger.)
  for (std::size_t b = 0; b < boards_.size(); ++b) {
    Snapshot& board = boards_[b];
    zero_values(board);
    const std::size_t begin = b * static_cast<std::size_t>(topology_.nodes_per_board);
    const std::size_t end =
        std::min(begin + static_cast<std::size_t>(topology_.nodes_per_board), nodes.size());
    for (std::size_t n = begin; n < end; ++n) {
      if (nodes[n] != nullptr) merge_skipped_ += merge_snapshot(board, *nodes[n]);
    }
  }
  for (std::size_t r = 0; r < racks_.size(); ++r) {
    Snapshot& rack = racks_[r];
    zero_values(rack);
    const std::size_t begin = r * static_cast<std::size_t>(topology_.boards_per_rack);
    const std::size_t end = std::min(
        begin + static_cast<std::size_t>(topology_.boards_per_rack), boards_.size());
    for (std::size_t b = begin; b < end; ++b) {
      merge_skipped_ += merge_snapshot(rack, boards_[b]);
    }
  }
  zero_values(fleet_);
  for (const Snapshot& rack : racks_) {
    merge_skipped_ += merge_snapshot(fleet_, rack);
  }
  ++folds_;
  if (folds_metric_ != nullptr) folds_metric_->inc();
  if (series_metric_ != nullptr) {
    series_metric_->set(static_cast<double>(fleet_.counters.size() + fleet_.gauges.size() +
                                            fleet_.histograms.size()));
  }
}

}  // namespace envmon::obs
