#pragma once
// Self-observability: the metrics registry.
//
// The paper is an observability study — it measures what monitoring
// costs (EMON 1.10 ms, MSR 0.03 ms, NVML 1.3 ms, SCIF 14.2 ms per
// query).  This module turns the same lens on the reproduction itself:
// counters, gauges, and fixed-bucket latency histograms record what the
// engine, backends, profiler, and tsdb actually did during a run.
//
// Design constraints, in order:
//   1. The observation fast path is lock-free: one relaxed atomic RMW
//      per counter increment / histogram observation, so instrumentation
//      is cheap enough to leave enabled in benches (the claim
//      bench/overhead_observability.cpp checks).
//   2. Registration (cold path) takes a mutex and is idempotent: asking
//      for an already-registered (name, labels) pair returns the same
//      metric, so independent components share series safely.
//   3. Export order is deterministic (sorted by name then labels) so
//      exporter output can be golden-tested.

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace envmon::obs {

// Global kill switch consulted by instrumented components when they
// acquire their metric handles (construction/initialize time).  Observing
// through an already-acquired handle is never gated — the switch exists
// so an uninstrumented baseline can be measured, not to make every
// increment pay for a branch.
[[nodiscard]] bool enabled();
void set_enabled(bool on);

// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-written value, with an atomic-max variant for high-water marks.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  // Raises the gauge to `v` if below it (buffer high-water marks).
  void set_max(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram.  Bounds are ascending upper bounds (Prometheus
// `le` semantics: a value lands in the first bucket whose bound is >= it);
// an implicit +Inf bucket catches the rest.  Bucket layout is fixed at
// registration, so observation is a bounded search plus one atomic add.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double v);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  // Per-bucket (non-cumulative) count; index bounds_.size() is +Inf.
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  [[nodiscard]] double sum() const { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] double mean() const;
  // Estimated p-quantile (p in [0, 1]) with linear interpolation inside
  // the bucket where the rank lands — histogram_quantile() semantics, so
  // benches read p99 straight off their latency histograms instead of
  // re-deriving it from raw sample vectors.  The first bucket
  // interpolates from 0 (or its bound, if negative); a rank landing in
  // the +Inf bucket clamps to the largest finite bound.  0 when empty.
  [[nodiscard]] double quantile(double p) const;
  void reset();

  // {start, start*factor, ...}, n bounds total.
  [[nodiscard]] static std::vector<double> exponential_bounds(double start, double factor,
                                                              int n);
  // Default bounds for per-query latencies in milliseconds, spanning the
  // paper's range: 0.03 ms (MSR) up past 14.2 ms (SCIF API).
  [[nodiscard]] static const std::vector<double>& latency_bounds_ms();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Point-in-time copy of every registered metric, for exporters and tests.
struct Snapshot {
  struct CounterRow {
    std::string name, labels, help;
    std::uint64_t value = 0;
  };
  struct GaugeRow {
    std::string name, labels, help;
    double value = 0.0;
  };
  struct HistogramRow {
    std::string name, labels, help;
    std::vector<double> bounds;
    std::vector<std::uint64_t> bucket_counts;  // non-cumulative, +Inf last
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  std::vector<HistogramRow> histograms;

  // Capture tag (runtime-only, never exported): which registry layout
  // these rows mirror, and at which layout version.  Lets the next
  // snapshot_into() skip key matching and the map walk outright.  The
  // tag describes the row *content*, so copies, moves, and swaps keep
  // it; mutating row keys or resizing the row vectors by hand
  // invalidates it silently — treat captured snapshots as opaque.
  const void* layout_source = nullptr;
  std::uint64_t layout_version = 0;
};

// Thread-safe metric store.  `labels` is a pre-rendered Prometheus label
// body, e.g. `backend="rapl_msr"` (empty for none); (name, labels)
// identifies a series.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name, std::string_view help, std::string_view labels = "");
  Gauge& gauge(std::string_view name, std::string_view help, std::string_view labels = "");
  Histogram& histogram(std::string_view name, std::string_view help,
                       std::vector<double> bounds, std::string_view labels = "");

  [[nodiscard]] Snapshot snapshot() const;

  // snapshot() into a caller-owned buffer.  When `out` already mirrors
  // the registry's key sequence (the steady state of an epoch-capture
  // loop — registries gain series rarely after initialization), only the
  // values are overwritten: no strings or vectors are reallocated.  The
  // fleet telemetry layer leans on this to stay inside its overhead
  // budget (DESIGN.md §11).
  void snapshot_into(Snapshot& out) const;

  // Zeroes every registered value (handles held by instrumented code
  // stay valid).  Lets a bench isolate phases on the shared registry.
  void reset_values();

 private:
  template <typename T>
  struct Entry {
    std::string help;
    T* metric = nullptr;  // points into the matching arena below
  };
  using Key = std::pair<std::string, std::string>;  // (name, labels)

  mutable std::mutex mutex_;
  std::map<Key, Entry<Counter>> counters_;
  std::map<Key, Entry<Gauge>> gauges_;
  std::map<Key, Entry<Histogram>> histograms_;
  // Metric storage.  A deque never moves elements, so handles stay valid
  // forever, and it packs same-kind metrics into contiguous chunks: a
  // registry's counters share a cache line or two instead of one heap
  // allocation each.  Fleet telemetry captures 100k registries back to
  // back, all cold in cache, so the lines touched per registry — not
  // instruction count — bound capture time.
  std::deque<Counter> counter_arena_;
  std::deque<Gauge> gauge_arena_;
  std::deque<Histogram> histogram_arena_;

  // Bumped on every new registration; snapshots are stamped with it so
  // a re-capture into the same buffer can prove the layout unchanged.
  std::uint64_t layout_version_ = 1;
  // Flat iteration-order metric pointers, rebuilt lazily when the
  // layout changes.  A fleet epoch captures 100k registries back to
  // back — every one a cold-cache visit — and walking three node-based
  // maps plus comparing heap-allocated key strings per registry is what
  // used to dominate telemetry capture time.  The tagged fast path
  // touches only these contiguous arrays and the metric atomics.
  mutable std::uint64_t plan_version_ = 0;
  mutable std::vector<const Counter*> plan_counters_;
  mutable std::vector<const Gauge*> plan_gauges_;
  mutable std::vector<const Histogram*> plan_histograms_;
};

// The process-wide registry instrumented components default to.
[[nodiscard]] Registry& default_registry();

}  // namespace envmon::obs
