#include "obs/export.hpp"

#include <cstdio>

namespace envmon::obs {

namespace {

// Shortest round-trip-ish rendering: %g trims trailing zeros, so bucket
// bounds come out as Prometheus-conventional "0.5", "1", "+Inf" styles
// and golden tests stay readable.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

void append_series(std::string& out, const std::string& name, const std::string& labels,
                   const std::string& value) {
  out += name;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  out += value;
  out += '\n';
}

// `le` joins any existing labels inside one brace set.
std::string with_le(const std::string& labels, const std::string& le) {
  std::string joined = labels;
  if (!joined.empty()) joined += ',';
  joined += "le=\"" + le + "\"";
  return joined;
}

void append_header(std::string& out, std::string& last_name, const std::string& name,
                   const std::string& help, const char* type) {
  if (name == last_name) return;  // one header per family
  out += "# HELP " + name + ' ' + help + '\n';
  out += "# TYPE " + name + ' ' + type + '\n';
  last_name = name;
}

}  // namespace

std::string export_prometheus(const Snapshot& snapshot) {
  std::string out;
  std::string last_name;

  for (const auto& c : snapshot.counters) {
    append_header(out, last_name, c.name, c.help, "counter");
    append_series(out, c.name, c.labels, std::to_string(c.value));
  }
  for (const auto& g : snapshot.gauges) {
    append_header(out, last_name, g.name, g.help, "gauge");
    append_series(out, g.name, g.labels, format_double(g.value));
  }
  for (const auto& h : snapshot.histograms) {
    append_header(out, last_name, h.name, h.help, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.bucket_counts[i];
      append_series(out, h.name + "_bucket", with_le(h.labels, format_double(h.bounds[i])),
                    std::to_string(cumulative));
    }
    cumulative += h.bucket_counts.back();
    append_series(out, h.name + "_bucket", with_le(h.labels, "+Inf"),
                  std::to_string(cumulative));
    append_series(out, h.name + "_sum", h.labels, format_double(h.sum));
    append_series(out, h.name + "_count", h.labels, std::to_string(h.count));
  }
  return out;
}

std::string export_prometheus(const Registry& registry) {
  return export_prometheus(registry.snapshot());
}

std::string export_json(const Snapshot& snapshot) {
  std::string out = "{\"counters\":[";
  bool first = true;
  for (const auto& c : snapshot.counters) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + json_escape(c.name) + "\",\"labels\":\"" +
           json_escape(c.labels) + "\",\"value\":" + std::to_string(c.value) + '}';
  }
  out += "],\"gauges\":[";
  first = true;
  for (const auto& g : snapshot.gauges) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + json_escape(g.name) + "\",\"labels\":\"" +
           json_escape(g.labels) + "\",\"value\":" + format_double(g.value) + '}';
  }
  out += "],\"histograms\":[";
  first = true;
  for (const auto& h : snapshot.histograms) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + json_escape(h.name) + "\",\"labels\":\"" +
           json_escape(h.labels) + "\",\"buckets\":[";
    for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
      if (i > 0) out += ',';
      const std::string le = i < h.bounds.size() ? format_double(h.bounds[i]) : "+Inf";
      out += "{\"le\":\"" + le + "\",\"count\":" + std::to_string(h.bucket_counts[i]) + '}';
    }
    const double mean =
        h.count == 0 ? 0.0 : h.sum / static_cast<double>(h.count);
    out += "],\"count\":" + std::to_string(h.count) + ",\"sum\":" + format_double(h.sum) +
           ",\"mean\":" + format_double(mean) + '}';
  }
  out += "]}";
  return out;
}

std::string export_json(const Registry& registry) { return export_json(registry.snapshot()); }

}  // namespace envmon::obs
