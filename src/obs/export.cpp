#include "obs/export.hpp"

#include <cstdio>

namespace envmon::obs {

namespace {

// Shortest round-trip-ish rendering: %g trims trailing zeros, so bucket
// bounds come out as Prometheus-conventional "0.5", "1", "+Inf" styles
// and golden tests stay readable.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

// Defensive pass over a pre-rendered label body: a raw line feed would
// break the line-oriented exposition format no matter where it sits, so
// escape it even in hand-built bodies.  (Backslashes and quotes cannot
// be fixed up here — a raw `"` inside a body is ambiguous with the value
// delimiters — which is why values must be escaped at construction via
// obs::label().)
std::string sanitize_label_body(const std::string& labels) {
  if (labels.find('\n') == std::string::npos) return labels;
  std::string out;
  out.reserve(labels.size() + 4);
  for (const char c : labels) {
    if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

// HELP text escaping per the exposition format: backslash and line feed.
std::string escape_help(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void append_series(std::string& out, const std::string& name, const std::string& labels,
                   const std::string& value) {
  out += name;
  if (!labels.empty()) {
    out += '{';
    out += sanitize_label_body(labels);
    out += '}';
  }
  out += ' ';
  out += value;
  out += '\n';
}

// `le` joins any existing labels inside one brace set.
std::string with_le(const std::string& labels, const std::string& le) {
  std::string joined = labels;
  if (!joined.empty()) joined += ',';
  joined += "le=\"" + le + "\"";
  return joined;
}

void append_header(std::string& out, std::string& last_name, const std::string& name,
                   const std::string& help, const char* type) {
  if (name == last_name) return;  // one header per family
  out += "# HELP " + name + ' ' + escape_help(help) + '\n';
  out += "# TYPE " + name + ' ' + type + '\n';
  last_name = name;
}

}  // namespace

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string label(std::string_view key, std::string_view value) {
  std::string out(key);
  out += "=\"";
  out += escape_label_value(value);
  out += '"';
  return out;
}

std::string escape_json(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string export_prometheus(const Snapshot& snapshot) {
  std::string out;
  std::string last_name;

  for (const auto& c : snapshot.counters) {
    append_header(out, last_name, c.name, c.help, "counter");
    append_series(out, c.name, c.labels, std::to_string(c.value));
  }
  for (const auto& g : snapshot.gauges) {
    append_header(out, last_name, g.name, g.help, "gauge");
    append_series(out, g.name, g.labels, format_double(g.value));
  }
  for (const auto& h : snapshot.histograms) {
    append_header(out, last_name, h.name, h.help, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.bucket_counts[i];
      append_series(out, h.name + "_bucket", with_le(h.labels, format_double(h.bounds[i])),
                    std::to_string(cumulative));
    }
    cumulative += h.bucket_counts.back();
    append_series(out, h.name + "_bucket", with_le(h.labels, "+Inf"),
                  std::to_string(cumulative));
    append_series(out, h.name + "_sum", h.labels, format_double(h.sum));
    append_series(out, h.name + "_count", h.labels, std::to_string(h.count));
  }
  return out;
}

std::string export_prometheus(const Registry& registry) {
  return export_prometheus(registry.snapshot());
}

std::string export_json(const Snapshot& snapshot) {
  std::string out = "{\"counters\":[";
  bool first = true;
  for (const auto& c : snapshot.counters) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + escape_json(c.name) + "\",\"labels\":\"" +
           escape_json(c.labels) + "\",\"value\":" + std::to_string(c.value) + '}';
  }
  out += "],\"gauges\":[";
  first = true;
  for (const auto& g : snapshot.gauges) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + escape_json(g.name) + "\",\"labels\":\"" +
           escape_json(g.labels) + "\",\"value\":" + format_double(g.value) + '}';
  }
  out += "],\"histograms\":[";
  first = true;
  for (const auto& h : snapshot.histograms) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + escape_json(h.name) + "\",\"labels\":\"" +
           escape_json(h.labels) + "\",\"buckets\":[";
    for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
      if (i > 0) out += ',';
      const std::string le = i < h.bounds.size() ? format_double(h.bounds[i]) : "+Inf";
      out += "{\"le\":\"" + le + "\",\"count\":" + std::to_string(h.bucket_counts[i]) + '}';
    }
    const double mean =
        h.count == 0 ? 0.0 : h.sum / static_cast<double>(h.count);
    out += "],\"count\":" + std::to_string(h.count) + ",\"sum\":" + format_double(h.sum) +
           ",\"mean\":" + format_double(mean) + '}';
  }
  out += "]}";
  return out;
}

std::string export_json(const Registry& registry) { return export_json(registry.snapshot()); }

}  // namespace envmon::obs
