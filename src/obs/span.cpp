#include "obs/span.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

namespace envmon::obs {

Tracer::Tracer(std::function<sim::SimTime()> clock, std::size_t event_capacity,
               std::size_t max_spans)
    : clock_(std::move(clock)), event_capacity_(event_capacity), max_spans_(max_spans) {
  if (!clock_) {
    throw std::invalid_argument("Tracer: a clock callback is required");
  }
}

Tracer::Span& Tracer::Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = other.tracer_;
    id_ = other.id_;
    other.tracer_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

void Tracer::Span::end() {
  if (tracer_ != nullptr && id_ != 0) {
    tracer_->end_span(id_);
  }
  tracer_ = nullptr;
  id_ = 0;
}

Tracer::Span Tracer::span(std::string name, std::string detail) {
  if (records_.size() >= max_spans_) {
    ++dropped_spans_;
    return Span{};
  }
  SpanRecord rec;
  rec.id = static_cast<std::uint64_t>(records_.size()) + 1;
  rec.parent = stack_.empty() ? 0 : stack_.back();
  rec.depth = static_cast<int>(stack_.size());
  rec.name = std::move(name);
  rec.detail = std::move(detail);
  rec.start = clock_();
  rec.open = true;
  records_.push_back(std::move(rec));
  stack_.push_back(records_.back().id);
  return Span{this, records_.back().id};
}

void Tracer::end_span(std::uint64_t id) {
  SpanRecord& rec = records_[static_cast<std::size_t>(id) - 1];
  if (!rec.open) return;
  rec.end = clock_();
  rec.open = false;
  // Normally the ended span is innermost; tolerate out-of-order ends
  // (e.g. a moved-from handle outliving its child) by erasing wherever
  // it sits in the open stack.
  const auto it = std::find(stack_.begin(), stack_.end(), id);
  if (it != stack_.end()) stack_.erase(it);
}

void Tracer::event(std::string name, std::string detail) {
  event_at(clock_(), std::move(name), std::move(detail));
}

void Tracer::event_at(sim::SimTime t, std::string name, std::string detail) {
  if (event_capacity_ == 0) {
    ++dropped_events_;
    return;
  }
  TraceEvent ev{t, std::move(name), std::move(detail)};
  if (ring_.size() < event_capacity_) {
    ring_.push_back(std::move(ev));
    return;
  }
  ring_[ring_next_] = std::move(ev);
  ring_next_ = (ring_next_ + 1) % event_capacity_;
  ++dropped_events_;
}

std::vector<SpanRecord> Tracer::spans() const {
  std::vector<SpanRecord> out = records_;
  // For any still-open span, report "so far" up to the current clock.
  for (auto& rec : out) {
    if (rec.open) rec.end = clock_();
  }
  return out;
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < event_capacity_) {
    out = ring_;
    return out;
  }
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(ring_next_ + i) % ring_.size()]);
  }
  return out;
}

std::string Tracer::format_timeline() const {
  // Merge spans (by start time) and events (by timestamp) into one
  // chronological listing; equal times keep spans-before-events order.
  const auto all_spans = spans();
  const auto all_events = events();
  std::string out;
  char line[256];

  std::size_t si = 0, ei = 0;
  while (si < all_spans.size() || ei < all_events.size()) {
    const bool take_span =
        ei >= all_events.size() ||
        (si < all_spans.size() && all_spans[si].start <= all_events[ei].t);
    if (take_span) {
      const SpanRecord& s = all_spans[si++];
      std::snprintf(line, sizeof(line), "[%10.4f .. %10.4f s] %*s%s%s%s%s\n",
                    s.start.to_seconds(), s.end.to_seconds(), s.depth * 2, "",
                    s.name.c_str(), s.detail.empty() ? "" : " (",
                    s.detail.c_str(), s.detail.empty() ? "" : ")");
    } else {
      const TraceEvent& e = all_events[ei++];
      std::snprintf(line, sizeof(line), "[%10.4f s]            ! %s%s%s\n",
                    e.t.to_seconds(), e.name.c_str(), e.detail.empty() ? "" : ": ",
                    e.detail.c_str());
    }
    out += line;
  }
  if (dropped_spans_ > 0 || dropped_events_ > 0) {
    std::snprintf(line, sizeof(line), "(dropped: %llu spans, %llu events beyond capacity)\n",
                  static_cast<unsigned long long>(dropped_spans_),
                  static_cast<unsigned long long>(dropped_events_));
    out += line;
  }
  return out;
}

}  // namespace envmon::obs
