#pragma once
// Self-observability: spans and events on the simulation's virtual clock.
//
// A Tracer turns a run into a queryable timeline: RAII spans with
// parent/child nesting (a profiler poll contains one child span per
// backend query) plus a fixed-capacity ring buffer of instantaneous
// events (tsdb inserts, dropped samples).  Timestamps come from a clock
// callback — normally `[&engine] { return engine.now(); }` — so the
// timeline is in virtual time and deterministic across runs.
//
// The Tracer is single-threaded by design, matching the discrete-event
// engine that drives it; the thread-safe half of obs is the metrics
// registry.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace envmon::obs {

struct SpanRecord {
  std::uint64_t id = 0;      // 1-based; 0 means "no span"
  std::uint64_t parent = 0;  // 0 for roots
  int depth = 0;             // nesting level at creation (roots are 0)
  std::string name;
  std::string detail;
  sim::SimTime start;
  sim::SimTime end;
  bool open = false;  // still active when snapshotted

  [[nodiscard]] sim::Duration duration() const { return end - start; }
};

struct TraceEvent {
  sim::SimTime t;
  std::string name;
  std::string detail;
};

class Tracer {
 public:
  explicit Tracer(std::function<sim::SimTime()> clock, std::size_t event_capacity = 1024,
                  std::size_t max_spans = 8192);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // RAII handle: the span ends when the handle does (or at an explicit
  // end()).  Handles from a full tracer are inert no-ops.
  class Span {
   public:
    Span() = default;
    Span(Span&& other) noexcept : tracer_(other.tracer_), id_(other.id_) {
      other.tracer_ = nullptr;
      other.id_ = 0;
    }
    Span& operator=(Span&& other) noexcept;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { end(); }

    void end();
    [[nodiscard]] std::uint64_t id() const { return id_; }

   private:
    friend class Tracer;
    Span(Tracer* tracer, std::uint64_t id) : tracer_(tracer), id_(id) {}
    Tracer* tracer_ = nullptr;
    std::uint64_t id_ = 0;
  };

  // Opens a span nested under the innermost still-open span.
  [[nodiscard]] Span span(std::string name, std::string detail = "");

  // Instantaneous event at the clock's current time / a caller-supplied
  // time (for components fed timestamps rather than a clock).
  void event(std::string name, std::string detail = "");
  void event_at(sim::SimTime t, std::string name, std::string detail = "");

  // All spans in start order (open ones flagged), the surviving window
  // of the event ring (oldest first), and what fell off either end.
  [[nodiscard]] std::vector<SpanRecord> spans() const;
  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::uint64_t dropped_events() const { return dropped_events_; }
  [[nodiscard]] std::uint64_t dropped_spans() const { return dropped_spans_; }

  // Human-readable timeline, spans indented by depth, events interleaved
  // by timestamp.
  [[nodiscard]] std::string format_timeline() const;

 private:
  void end_span(std::uint64_t id);

  std::function<sim::SimTime()> clock_;
  std::size_t event_capacity_;
  std::size_t max_spans_;

  std::vector<SpanRecord> records_;    // index = id - 1
  std::vector<std::uint64_t> stack_;   // open span ids, innermost last
  std::vector<TraceEvent> ring_;
  std::size_t ring_next_ = 0;          // insertion point once the ring is full
  std::uint64_t dropped_events_ = 0;
  std::uint64_t dropped_spans_ = 0;
};

}  // namespace envmon::obs
