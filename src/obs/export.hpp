#pragma once
// Exporters for the metrics registry.
//
// Two formats cover the two consumers the study's infrastructure had:
// Prometheus text exposition (the scrape endpoint a production
// deployment would mount) and a JSON snapshot (what a test or a
// post-run analysis script wants to parse).  Both render a Snapshot,
// so they can also serve a private Registry in tests.

#include <string>

#include "obs/metrics.hpp"

namespace envmon::obs {

// Prometheus text exposition format v0.0.4: # HELP / # TYPE headers,
// histograms as cumulative `_bucket{le=...}` series plus _sum/_count.
[[nodiscard]] std::string export_prometheus(const Registry& registry = default_registry());
[[nodiscard]] std::string export_prometheus(const Snapshot& snapshot);

// One JSON object with "counters", "gauges", "histograms" arrays;
// histograms carry per-bucket (non-cumulative) counts plus sum/count/mean.
[[nodiscard]] std::string export_json(const Registry& registry = default_registry());
[[nodiscard]] std::string export_json(const Snapshot& snapshot);

}  // namespace envmon::obs
