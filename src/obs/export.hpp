#pragma once
// Exporters for the metrics registry.
//
// Two formats cover the two consumers the study's infrastructure had:
// Prometheus text exposition (the scrape endpoint a production
// deployment would mount) and a JSON snapshot (what a test or a
// post-run analysis script wants to parse).  Both render a Snapshot,
// so they can also serve a private Registry in tests.

#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace envmon::obs {

// Escapes a label value per the Prometheus exposition format: backslash,
// double-quote, and line feed become \\, \", and \n.
[[nodiscard]] std::string escape_label_value(std::string_view value);

// Renders one `key="value"` label pair with the value escaped.  Build
// label bodies from these (joined with ',') so values containing
// backslashes, quotes, or newlines cannot corrupt the exposition format.
[[nodiscard]] std::string label(std::string_view key, std::string_view value);

// JSON string-body escaping shared by export_json and the flight
// recorder's post-mortem dumps.
[[nodiscard]] std::string escape_json(std::string_view s);

// Prometheus text exposition format v0.0.4: # HELP / # TYPE headers,
// histograms as cumulative `_bucket{le=...}` series plus _sum/_count.
// HELP text is escaped per the spec; raw line feeds that reach a
// pre-rendered label body are escaped defensively (label *values* should
// already have been escaped via label() above).
[[nodiscard]] std::string export_prometheus(const Registry& registry = default_registry());
[[nodiscard]] std::string export_prometheus(const Snapshot& snapshot);

// One JSON object with "counters", "gauges", "histograms" arrays;
// histograms carry per-bucket (non-cumulative) counts plus sum/count/mean.
[[nodiscard]] std::string export_json(const Registry& registry = default_registry());
[[nodiscard]] std::string export_json(const Snapshot& snapshot);

}  // namespace envmon::obs
