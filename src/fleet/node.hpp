#pragma once
// One node of the simulated fleet: a self-contained virtual-clock
// partition.
//
// Determinism across worker counts rests entirely on this class: a
// FleetNode owns its *own* sim::Engine plus every piece of simulated
// hardware its backends read (node board, CPU package, GPU, Phi card),
// its own fault::Injector, and its own NodeProfiler.  Nothing a worker
// thread does to one node can observe or perturb another node — so the
// per-node sample stream is a pure function of (rank, seed, spec,
// workload), and sharding nodes across any number of workers cannot
// change it.  The only shared mutable state is the obs registry, whose
// series are atomics (sums are order-independent).
//
// A node's clock advances in lockstep epochs driven by the FleetRunner;
// between epochs the runner drains the samples recorded since the last
// drain as tsdb records for the ordered ingest path (ingest.hpp).

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bgq/emon.hpp"
#include "bgq/machine.hpp"
#include "common/status.hpp"
#include "fault/injector.hpp"
#include "mic/card.hpp"
#include "mic/micras.hpp"
#include "mic/scif.hpp"
#include "mic/sysmgmt.hpp"
#include "moneq/factory.hpp"
#include "moneq/health.hpp"
#include "moneq/output.hpp"
#include "moneq/profiler.hpp"
#include "nvml/api.hpp"
#include "nvml/device.hpp"
#include "rapl/package.hpp"
#include "rapl/reader.hpp"
#include "sim/engine.hpp"
#include "smpi/smpi.hpp"
#include "tsdb/database.hpp"

namespace envmon::fleet {
inline namespace v2 {

// What lands in the environmental database per node.
enum class IngestMode : std::uint8_t {
  // Every recorded sample becomes one record ("moneq_<domain>"), the
  // store_node_samples() convention — full fidelity, heaviest ingest.
  kPerSample = 0,
  // One record per poll tick: the sum of that tick's power-quantity
  // samples ("moneq_node_power_watts") — the board-level granularity the
  // real environmental database keeps (paper §II-A).
  kNodePower,
};

struct NodeOptions {
  int rank = 0;
  std::vector<moneq::Capability> capabilities{moneq::Capability::kBgqEmon};
  std::optional<sim::Duration> polling_interval;
  moneq::DegradationPolicy degradation;
  // Per-node RNG seed (already mixed with the rank by the runner).
  std::uint64_t seed = 0;
  // Shared read-only workload profile; must outlive the node.
  const power::UtilizationProfile* workload = nullptr;
  IngestMode ingest = IngestMode::kPerSample;
  // Per-node telemetry partition for the profiler's self-observability
  // series (nullptr = process-global default registry).  Owned by the
  // runner's FleetTelemetry; must outlive the node.
  obs::Registry* registry = nullptr;
  // Per-node flight recorder for fault / health events (nullptr = none).
  obs::FlightRecorder* recorder = nullptr;
};

class FleetNode {
 public:
  // `world` is shared and read-only (collective cost model).
  FleetNode(const smpi::World& world, NodeOptions options);
  FleetNode(const FleetNode&) = delete;
  FleetNode& operator=(const FleetNode&) = delete;

  // Builds the substrate named by the capability list, attaches the
  // backends through moneq::make_backend, wires fault hooks, and
  // initializes the profiler.  Main-thread only (registers metrics).
  Status configure();

  // Advances this node's clock partition to `t` (worker thread).
  void advance_to(sim::SimTime t) { engine_.run_until(t); }

  // Converts samples recorded since the previous drain into tsdb
  // records (worker thread; touches only this node's state).
  void drain(std::vector<tsdb::Record>& out);

  // Stops collection and renders the node file into memory (worker
  // thread); the runner writes files out in node order afterwards.
  Status finalize(const smpi::FileSystemModel* fs, bool render);

  [[nodiscard]] int rank() const { return options_.rank; }
  [[nodiscard]] const std::string& file_name() const { return file_name_; }
  [[nodiscard]] const std::string& file_content() const { return file_content_; }
  [[nodiscard]] const moneq::NodeProfiler& profiler() const { return *profiler_; }
  [[nodiscard]] fault::Injector& injector() { return *injector_; }
  [[nodiscard]] sim::Engine& engine() { return engine_; }

 private:
  Status build_substrate(moneq::BackendConfig& config, moneq::Capability capability);

  const smpi::World* world_;
  NodeOptions options_;

  sim::Engine engine_;
  std::unique_ptr<fault::Injector> injector_;

  // Vendor substrate, built on demand per capability.
  std::unique_ptr<bgq::NodeBoard> board_;
  std::unique_ptr<bgq::EmonSession> emon_;
  std::unique_ptr<rapl::CpuPackage> package_;
  std::unique_ptr<rapl::MsrRaplReader> rapl_reader_;
  std::unique_ptr<nvml::NvmlLibrary> nvml_;
  std::unique_ptr<mic::PhiCard> phi_;
  std::unique_ptr<mic::ScifNetwork> scif_;
  std::unique_ptr<mic::SysMgmtService> sysmgmt_;
  std::optional<mic::SysMgmtClient> mic_client_;
  std::unique_ptr<mic::MicrasDaemon> micras_;

  std::vector<std::unique_ptr<moneq::Backend>> backends_;
  std::unique_ptr<moneq::NodeProfiler> profiler_;

  tsdb::Location location_;
  std::size_t drain_cursor_ = 0;
  std::string file_name_;
  std::string file_content_;
};

}  // namespace v2
}  // namespace envmon::fleet
