#pragma once
// One node of the simulated fleet: a self-contained virtual-clock
// partition.
//
// Determinism across worker counts rests entirely on this class: a
// FleetNode owns its *own* sim::Engine plus every piece of simulated
// hardware its backends read (node board, CPU package, GPU, Phi card),
// its own fault::Injector, and its own NodeProfiler.  Nothing a worker
// thread does to one node can observe or perturb another node — so the
// per-node sample stream is a pure function of (rank, seed, spec,
// workload), and sharding nodes across any number of workers cannot
// change it.  The only shared mutable state is the obs registry, whose
// series are atomics (sums are order-independent).
//
// A node's clock advances in lockstep epochs driven by the FleetRunner;
// between epochs the runner drains the samples recorded since the last
// drain as tsdb records for the ordered ingest path (ingest.hpp).

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bgq/emon.hpp"
#include "bgq/machine.hpp"
#include "common/status.hpp"
#include "fault/injector.hpp"
#include "mic/card.hpp"
#include "mic/micras.hpp"
#include "mic/scif.hpp"
#include "mic/sysmgmt.hpp"
#include "moneq/factory.hpp"
#include "moneq/health.hpp"
#include "moneq/output.hpp"
#include "moneq/profiler.hpp"
#include "nvml/api.hpp"
#include "nvml/device.hpp"
#include "rapl/package.hpp"
#include "rapl/reader.hpp"
#include "sim/engine.hpp"
#include "smpi/smpi.hpp"
#include "tsdb/database.hpp"

namespace envmon::fleet {
inline namespace v2 {

// What lands in the environmental database per node.
enum class IngestMode : std::uint8_t {
  // Every recorded sample becomes one record ("moneq_<domain>"), the
  // store_node_samples() convention — full fidelity, heaviest ingest.
  kPerSample = 0,
  // One record per poll tick: the sum of that tick's power-quantity
  // samples ("moneq_node_power_watts") — the board-level granularity the
  // real environmental database keeps (paper §II-A).
  kNodePower,
};

// Configuration every node of a homogeneous fleet shares.  One instance
// per fleet, read-only after configure(): at 100k nodes, per-node copies
// of the capability list alone would be 100k needless heap blocks.
struct NodeDefaults {
  std::vector<moneq::Capability> capabilities{moneq::Capability::kBgqEmon};
  std::optional<sim::Duration> polling_interval;
  moneq::DegradationPolicy degradation;
  // Shared read-only workload profile; must outlive the nodes.
  const power::UtilizationProfile* workload = nullptr;
  IngestMode ingest = IngestMode::kPerSample;
  // Pre-reservation for each node's sample spool, estimated by the
  // runner from horizon / polling interval (0 = grow geometrically).
  std::size_t spool_reserve_bytes = 0;
};

// The per-node remainder: what actually differs between ranks.
struct NodeOptions {
  int rank = 0;
  // Per-node RNG seed (already mixed with the rank by the runner).
  std::uint64_t seed = 0;
  // Shared fleet config; owned by the runner, must outlive the node.
  const NodeDefaults* defaults = nullptr;
  // Per-node telemetry partition for the profiler's self-observability
  // series (nullptr = process-global default registry).  Owned by the
  // runner's FleetTelemetry; must outlive the node.
  obs::Registry* registry = nullptr;
  // Per-node flight recorder for fault / health events (nullptr = none).
  obs::FlightRecorder* recorder = nullptr;
};

class FleetNode {
 public:
  // `world` is shared and read-only (collective cost model).
  FleetNode(const smpi::World& world, NodeOptions options);
  FleetNode(const FleetNode&) = delete;
  FleetNode& operator=(const FleetNode&) = delete;

  // Builds the substrate named by the capability list, attaches the
  // backends through moneq::make_backend, wires fault hooks, and
  // initializes the profiler.  Safe off the main thread when the node
  // has its own registry partition: everything it touches is per-node,
  // and the shared fallback (obs::default_registry) is mutex-guarded and
  // idempotent.  The work-stealing runner builds nodes lazily, on the
  // worker that first advances their shard.
  Status configure();

  // Advances this node's clock partition to `t` (worker thread).
  void advance_to(sim::SimTime t) { engine_.run_until(t); }

  // Converts samples recorded since the previous drain into tsdb
  // records (worker thread; touches only this node's state).
  void drain(std::vector<tsdb::Record>& out);

  // Stops collection and renders the node file into memory (worker
  // thread); the runner writes files out in node order afterwards.
  Status finalize(const smpi::FileSystemModel* fs, bool render);

  [[nodiscard]] int rank() const { return options_.rank; }
  [[nodiscard]] const std::string& file_name() const { return file_name_; }
  [[nodiscard]] const std::string& file_content() const { return file_content_; }
  // Frees the rendered file after the runner has written it, so peak
  // file-text memory drains node by node during write-out instead of
  // lingering for the whole fleet.
  void release_file_content() {
    file_content_.clear();
    file_content_.shrink_to_fit();
  }
  [[nodiscard]] const moneq::NodeProfiler& profiler() const { return *profiler_; }
  [[nodiscard]] fault::Injector& injector() { return *injector_; }
  [[nodiscard]] sim::Engine& engine() { return engine_; }

  // Heartbeat evidence for the fleet failure detector: true while at
  // least one backend is not quarantined.  Read at epoch boundaries by
  // the worker that owns the node (pure per-node state).
  [[nodiscard]] bool heartbeat() const;

 private:
  Status build_substrate(moneq::BackendConfig& config, moneq::Capability capability);

  const smpi::World* world_;
  NodeOptions options_;

  sim::Engine engine_;
  std::unique_ptr<fault::Injector> injector_;

  // Vendor substrate, built on demand per capability.
  std::unique_ptr<bgq::NodeBoard> board_;
  std::unique_ptr<bgq::EmonSession> emon_;
  std::unique_ptr<rapl::CpuPackage> package_;
  std::unique_ptr<rapl::MsrRaplReader> rapl_reader_;
  std::unique_ptr<nvml::NvmlLibrary> nvml_;
  std::unique_ptr<mic::PhiCard> phi_;
  std::unique_ptr<mic::ScifNetwork> scif_;
  std::unique_ptr<mic::SysMgmtService> sysmgmt_;
  std::optional<mic::SysMgmtClient> mic_client_;
  std::unique_ptr<mic::MicrasDaemon> micras_;

  std::vector<std::unique_ptr<moneq::Backend>> backends_;
  std::unique_ptr<moneq::NodeProfiler> profiler_;

  tsdb::Location location_;
  std::string file_name_;
  std::string file_content_;
};

}  // namespace v2
}  // namespace envmon::fleet
