#pragma once
// Fleet heartbeat failure detector: Unknown -> Alive -> Suspect -> Dead
// over the board/rack hierarchy.
//
// The paper's study had per-backend health (moneq/health.hpp) but no
// fleet-level answer to "which *nodes* are gone" — at 100k nodes that is
// the question an operator actually asks.  The detector consumes one
// heartbeat bit per node per epoch (a node heartbeats while at least one
// of its backends is not quarantined, i.e. the per-backend state
// machines feed this one) and runs a deterministic state machine:
//
//             heartbeat                 confirmed misses
//   Unknown ------------> Alive --->= suspect_after ---> Suspect
//      |                    ^                               |
//      | confirmed misses   | heartbeat (revive)            | >= dead_after
//      +------> Suspect     +--------- Suspect/Dead <-------+
//
// k-neighbor confirmation: a missed heartbeat only counts once at least
// a quorum (majority of k) of the node's ring neighbors *on the same
// node board* were themselves observing (not Dead) in the previous
// epoch — a healthy board corroborates quickly.  When the board itself
// has gone dark (quorum unreachable), observation escalates to the rack
// level, which corroborates `escalation_factor` times slower: a whole
// lost board is still detected, just later, mirroring how a real
// hierarchy loses resolution when a branch dies.
//
// Everything is a pure function of the heartbeat sequence: states are
// read from the previous epoch's snapshot (no within-epoch order
// dependence), so the detector's transitions — and the flight-recorder
// events they emit — are byte-identical at any worker count.

#include <cstdint>
#include <vector>

#include "moneq/health.hpp"
#include "obs/recorder.hpp"
#include "sim/time.hpp"

namespace envmon::fleet {
inline namespace v2 {

struct DetectorPolicy {
  // Ring neighbors consulted per node (split across both sides, wrapped
  // within the node's board).  Clamped to the board population - 1.
  int k_neighbors = 4;
  // Confirmed consecutive misses before Suspect / Dead.
  int suspect_after = 2;
  int dead_after = 4;
  // Board dark: rack-level observation confirms one miss per this many
  // missed epochs.
  int escalation_factor = 2;
  // Nodes per board, defaulting to the BG/Q packaging the fleet models.
  int nodes_per_board = 32;
};

class FailureDetector {
 public:
  // `recorder` (optional) receives one deterministic "liveness" event per
  // state transition, stamped with the epoch boundary.
  FailureDetector(int nodes, DetectorPolicy policy = {},
                  obs::FlightRecorder* recorder = nullptr);
  FailureDetector(const FailureDetector&) = delete;
  FailureDetector& operator=(const FailureDetector&) = delete;

  // Feeds one epoch of evidence: heartbeats[rank] != 0 means rank's
  // heartbeat was heard this epoch.  Called once per epoch, in epoch
  // order, single-threaded (the scheduler's merge point).
  void observe_epoch(sim::SimTime boundary, const std::vector<std::uint8_t>& heartbeats);

  [[nodiscard]] moneq::NodeLiveness state(int node) const {
    return states_[static_cast<std::size_t>(node)];
  }

  struct Counts {
    int unknown = 0;
    int alive = 0;
    int suspect = 0;
    int dead = 0;
  };
  [[nodiscard]] const Counts& counts() const { return counts_; }
  [[nodiscard]] std::uint64_t transitions() const { return transitions_; }
  [[nodiscard]] std::uint64_t epochs_observed() const { return epochs_; }

 private:
  struct NodeState {
    int misses = 0;            // confirmed consecutive misses
    int escalation_debt = 0;   // unconfirmed misses awaiting rack escalation
  };

  void transition(int node, moneq::NodeLiveness to, sim::SimTime boundary, int confirmers);

  DetectorPolicy policy_;
  obs::FlightRecorder* recorder_;
  std::vector<moneq::NodeLiveness> states_;
  std::vector<moneq::NodeLiveness> prev_states_;  // last epoch's snapshot
  std::vector<NodeState> nodes_;
  Counts counts_;
  std::uint64_t transitions_ = 0;
  std::uint64_t epochs_ = 0;
};

}  // namespace v2
}  // namespace envmon::fleet
