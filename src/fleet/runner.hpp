#pragma once
// FleetRunner — parallel fleet collection behind the v2 lifecycle.
//
// Execution model (the determinism contract):
//
//   * The fleet's N nodes are N independent virtual-clock partitions
//     (FleetNode).  configure() builds all of them on the calling
//     thread, so construction order — and therefore every seed, metric
//     registration, and substrate parameter — never depends on the
//     worker count.
//   * run() shards the nodes into `threads` contiguous blocks and
//     advances every partition in lockstep epochs: each worker runs its
//     shard's engines to the epoch boundary, drains the new samples
//     into a per-shard staging buffer, and parks at the epoch barrier.
//   * The barrier's completion step concatenates the shard buffers in
//     node order into one EpochBatch and hands it to the bounded ingest
//     queue; a dedicated ingest thread stable-sorts each batch by
//     timestamp (ties keep node order) and applies it to the
//     environmental database.  Apply order is thus a pure function of
//     (epoch, node, sample) — identical for 1, 2, or 64 workers, and
//     with one worker identical to driving the engines sequentially.
//   * After the last epoch the workers finalize their nodes (rendering
//     the per-node files in parallel); the files are then written to
//     the output target in rank order on the caller's thread.
//
// Shared mutable state during run() is limited to: obs metrics
// (atomics), the ingest queue (mutex + condvars), and the epoch barrier.
// Everything a worker simulates is shard-private.

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "fleet/ingest.hpp"
#include "fleet/node.hpp"
#include "moneq/output.hpp"
#include "obs/fleet_telemetry.hpp"
#include "obs/recorder.hpp"
#include "power/profile.hpp"
#include "smpi/smpi.hpp"
#include "tsdb/database.hpp"
#include "workloads/library.hpp"

namespace envmon::fleet {
inline namespace v2 {

struct FleetConfig {
  // Fleet shape.  Homogeneous nodes, as on Mira: every node carries the
  // same capability list (paper: "if every node in a system has two
  // GPUs, then every node will spend the same amount of time
  // collecting data").
  int nodes = 32;
  std::vector<moneq::Capability> capabilities{moneq::Capability::kBgqEmon};

  // Parallelism.  `threads` is clamped to `nodes`; 1 reproduces the
  // sequential engine exactly.
  int threads = 1;
  sim::Duration epoch = sim::Duration::seconds(1);
  sim::Duration horizon = sim::Duration::seconds(60);

  // Collection.
  std::optional<sim::Duration> polling_interval;  // default: hardware floor
  moneq::DegradationPolicy degradation;
  std::uint64_t seed = 0x5eedf1ee7ull;
  // Shared read-only workload; nullptr runs the built-in MMPS profile.
  const power::UtilizationProfile* workload = nullptr;

  // Ingest into the environmental database.
  IngestMode ingest = IngestMode::kPerSample;
  std::size_t ingest_queue_capacity = 4;  // epochs of backpressure headroom
  tsdb::DatabaseOptions database;

  // Output files (nullptr discards them) and the shared-filesystem cost
  // model applied at finalize (nullptr = free writes).
  moneq::OutputTarget* output = nullptr;
  const smpi::FileSystemModel* filesystem = nullptr;

  // Fault scripting, applied to each node's injector at configure()
  // time.  Schedules are per-node and on the node's own clock, so fault
  // storms replay identically at any worker count.
  std::function<void(fault::Injector&, int node)> fault_script;

  // Observability (DESIGN.md §11).  `telemetry` gives every node its own
  // registry partition plus a flight recorder and folds the partitions
  // into board/rack/fleet rollups at each epoch barrier; `self_scrape`
  // additionally inserts the fleet rollup into the environmental
  // database each epoch under the reserved envmon.self.* namespace.
  bool telemetry = true;
  bool self_scrape = true;
  std::size_t recorder_capacity = 256;  // events per flight-recorder ring
  // Wall-clock budget for a single ingest-queue stall; exceeding it
  // records a (timing) "queue.deadline_missed" event and triggers a
  // post-mortem dump after the run.
  std::optional<double> ingest_deadline_seconds;
  // When a post-mortem triggers, its JSON is also written to `output`
  // under this name (empty = keep it in memory only; see post_mortem()).
  std::string post_mortem_path;
};

struct FleetReport {
  int nodes = 0;
  int threads = 0;
  std::uint64_t epochs = 0;

  // Collection totals across the fleet.
  std::uint64_t polls = 0;
  std::uint64_t samples = 0;
  std::uint64_t dropped_samples = 0;
  std::uint64_t degraded_polls = 0;
  std::uint64_t gap_markers = 0;
  sim::Duration initialize_total;
  sim::Duration collection_total;
  sim::Duration finalize_total;

  // Ingest path.
  std::size_t records_staged = 0;
  std::size_t records_applied = 0;
  std::size_t rejected_out_of_order = 0;
  std::size_t rejected_rate_limited = 0;
  std::size_t rejected_unavailable = 0;
  std::size_t database_rows = 0;
  std::uint64_t ingest_stalls = 0;
  double ingest_stall_seconds = 0.0;

  // Per-shard time parked at the epoch barrier (load imbalance plus
  // ingest backpressure propagated through the completion step).
  std::vector<double> shard_stall_seconds;

  // Observability self-overhead: wall time spent capturing node
  // snapshots, folding the rollup tree, and rendering self-scrape rows.
  // bench/overhead_observability gates telemetry_seconds / wall_seconds.
  double telemetry_seconds = 0.0;
  std::size_t self_scrape_rows = 0;
  std::uint64_t recorder_events = 0;   // deterministic events captured
  std::uint64_t recorder_dropped = 0;  // evicted by ring wraparound
  bool post_mortem_triggered = false;
  std::string post_mortem_trigger;

  // Real time and throughput.
  double wall_seconds = 0.0;
  // Node-virtual-seconds simulated per real second: the fleet-scaling
  // figure of merit (bench/fleet_scale gates its thread scaling).
  double node_seconds_per_second = 0.0;
};

class FleetRunner {
 public:
  FleetRunner();
  ~FleetRunner();
  FleetRunner(const FleetRunner&) = delete;
  FleetRunner& operator=(const FleetRunner&) = delete;

  // Validates the config and builds every node (single-use: a runner
  // drives exactly one fleet run).
  Status configure(FleetConfig config);

  // Simulates the fleet to the horizon.  Blocking; spawns the worker
  // pool and the ingest thread internally.
  Status run();

  // The run's aggregate report; kFailedPrecondition before run().
  [[nodiscard]] Result<FleetReport> report() const;

  // Valid after configure().
  [[nodiscard]] tsdb::EnvDatabase& database();
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const FleetNode& node(std::size_t i) const { return *nodes_[i]; }

  // The telemetry hierarchy (nullptr when config.telemetry is false).
  [[nodiscard]] const obs::FleetTelemetry* telemetry() const { return telemetry_.get(); }
  // Per-node and fleet-level flight recorders (nullptr when disabled).
  [[nodiscard]] const obs::FlightRecorder* recorder(std::size_t i) const {
    return i < recorders_.size() ? recorders_[i].get() : nullptr;
  }
  [[nodiscard]] const obs::FlightRecorder* fleet_recorder() const {
    return fleet_recorder_.get();
  }
  // The post-mortem JSON dumped after run() when a backend quarantined
  // or the ingest deadline was missed (empty otherwise).  Deterministic:
  // only kDeterministic events are included.
  [[nodiscard]] const std::string& post_mortem() const { return post_mortem_; }

 private:
  enum class State { kIdle, kConfigured, kRan };

  State state_ = State::kIdle;
  FleetConfig config_;
  power::UtilizationProfile default_workload_;
  std::unique_ptr<smpi::World> world_;
  std::unique_ptr<tsdb::EnvDatabase> db_;
  std::vector<std::unique_ptr<FleetNode>> nodes_;
  std::unique_ptr<obs::FleetTelemetry> telemetry_;
  std::vector<std::unique_ptr<obs::FlightRecorder>> recorders_;  // per node
  std::unique_ptr<obs::FlightRecorder> fleet_recorder_;
  std::string post_mortem_;
  FleetReport report_;

  obs::Counter* self_rows_metric_ = nullptr;
  obs::Histogram* epoch_seconds_metric_ = nullptr;
  obs::Counter* epochs_metric_ = nullptr;
  obs::Counter* staged_metric_ = nullptr;
  std::vector<obs::Counter*> shard_stall_metrics_;
  std::vector<obs::Gauge*> shard_stall_seconds_metrics_;
};

// Reserved rack index for the fleet's own telemetry rows: far above any
// real BG/Q rack, so self-scrape series never collide with node data in
// location-ranged queries.
inline constexpr int kSelfTelemetryRack = 9999;

// Renders a rolled-up snapshot as environmental-database records at `t`
// under the reserved envmon.self.* namespace (tsdb::kSelfMetricPrefix):
// counters and gauges become one row each, histograms become `.count`
// and `.sum` rows, and label bodies fold into the metric name with
// quotes dropped and '='/',' mapped to '.' (e.g.
// envmon.self.envmon_backend_queries_total.backend.rapl_msr).  Rows
// inherit the snapshot's sorted order, so equal-timestamp inserts are
// deterministic.
[[nodiscard]] std::vector<tsdb::Record> self_scrape_records(const obs::Snapshot& snapshot,
                                                            sim::SimTime t);

}  // namespace v2
}  // namespace envmon::fleet
