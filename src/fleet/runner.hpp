#pragma once
// FleetRunner — parallel fleet collection behind the v2 lifecycle.
//
// Execution model (the determinism contract, DESIGN.md §12):
//
//   * The fleet's N nodes are N independent virtual-clock partitions
//     (FleetNode), built lazily from one shared NodeDefaults block the
//     first time their shard is advanced.  A node is a pure function of
//     (rank, seed, defaults, workload) — neither construction order nor
//     the thread that constructs it can change what it simulates.
//   * run() over-partitions the nodes into S >= threads contiguous
//     shards and hands them to the ShardScheduler (scheduler.hpp):
//     workers advance whole shards epoch-by-epoch independently,
//     stealing lagging shards instead of parking at a barrier.  A shard
//     may run up to `epoch_window` epochs ahead of the oldest unmerged
//     epoch; within an epoch it drains each node's new samples into a
//     shard-local deposit (records + telemetry snapshots + heartbeats).
//   * The scheduler's merge point is the sole barrier-like construct:
//     when every shard has deposited epoch E, exactly one worker merges
//     it — deposits concatenate in shard order (= node order), the
//     telemetry rollup folds from the deposited snapshots, the failure
//     detector consumes the heartbeats, and one EpochBatch goes to the
//     bounded ingest queue.  The dedicated ingest thread stable-sorts
//     each batch by timestamp (ties keep node order) and applies it.
//     Apply order is thus a pure function of (epoch, node, sample) —
//     identical for 1, 2, or 64 workers.
//   * A shard that deposits its final epoch finalizes its nodes
//     immediately (rendering files shard-parallel); the files are then
//     written to the output target in rank order on the caller's thread.
//
// Shared mutable state during run() is limited to: obs metrics
// (atomics), the ingest queue and scheduler (mutex + condvars), and the
// record-buffer pool.  Everything a worker simulates is shard-private,
// and a shard is owned by exactly one worker at a time.

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "fleet/failure_detector.hpp"
#include "fleet/ingest.hpp"
#include "fleet/node.hpp"
#include "moneq/output.hpp"
#include "obs/fleet_telemetry.hpp"
#include "obs/recorder.hpp"
#include "power/profile.hpp"
#include "smpi/smpi.hpp"
#include "tsdb/database.hpp"
#include "workloads/library.hpp"

namespace envmon::fleet {
inline namespace v2 {

struct FleetConfig {
  // Fleet shape.  Homogeneous nodes, as on Mira: every node carries the
  // same capability list (paper: "if every node in a system has two
  // GPUs, then every node will spend the same amount of time
  // collecting data").
  int nodes = 32;
  std::vector<moneq::Capability> capabilities{moneq::Capability::kBgqEmon};

  // Parallelism.  `threads` is clamped to `nodes`; 1 reproduces the
  // sequential engine exactly.
  int threads = 1;
  // Work-stealing shards (the unit of stealing; contiguous node ranges).
  // 0 = auto: one shard single-threaded, else 4 shards per worker so
  // fast workers always find a laggard to steal.  Clamped to
  // [threads, nodes].
  int shards = 0;
  // How many epochs a shard may run ahead of the oldest unmerged epoch
  // (>= 1).  Bounds staged records and capture snapshots in flight; 1
  // approximates the old lockstep behaviour.
  std::uint64_t epoch_window = 4;
  sim::Duration epoch = sim::Duration::seconds(1);
  sim::Duration horizon = sim::Duration::seconds(60);

  // Collection.
  std::optional<sim::Duration> polling_interval;  // default: hardware floor
  moneq::DegradationPolicy degradation;
  std::uint64_t seed = 0x5eedf1ee7ull;
  // Shared read-only workload; nullptr runs the built-in MMPS profile.
  const power::UtilizationProfile* workload = nullptr;

  // Ingest into the environmental database.
  IngestMode ingest = IngestMode::kPerSample;
  std::size_t ingest_queue_capacity = 4;  // epochs of backpressure headroom
  tsdb::DatabaseOptions database;

  // Output files (nullptr discards them) and the shared-filesystem cost
  // model applied at finalize (nullptr = free writes).
  moneq::OutputTarget* output = nullptr;
  const smpi::FileSystemModel* filesystem = nullptr;

  // Fault scripting, applied to each node's injector at configure()
  // time.  Schedules are per-node and on the node's own clock, so fault
  // storms replay identically at any worker count.
  std::function<void(fault::Injector&, int node)> fault_script;

  // Observability (DESIGN.md §11).  `telemetry` gives every node its own
  // registry partition plus a flight recorder and folds the partitions
  // into board/rack/fleet rollups at each epoch barrier; `self_scrape`
  // additionally inserts the fleet rollup into the environmental
  // database each epoch under the reserved envmon.self.* namespace.
  bool telemetry = true;
  bool self_scrape = true;
  // Fleet-level heartbeat failure detector (failure_detector.hpp): node
  // liveness Unknown/Alive -> Suspect -> Dead from per-epoch heartbeats,
  // k-neighbor confirmed, fed to the fleet flight recorder and the
  // envmon_fleet_nodes_{alive,suspect,dead} gauges.
  bool failure_detector = true;
  DetectorPolicy detector;
  std::size_t recorder_capacity = 256;  // events per flight-recorder ring
  // Wall-clock budget for a single ingest-queue stall; exceeding it
  // records a (timing) "queue.deadline_missed" event and triggers a
  // post-mortem dump after the run.
  std::optional<double> ingest_deadline_seconds;
  // When a post-mortem triggers, its JSON is also written to `output`
  // under this name (empty = keep it in memory only; see post_mortem()).
  std::string post_mortem_path;
};

struct FleetReport {
  int nodes = 0;
  int threads = 0;
  int shards = 0;
  std::uint64_t epochs = 0;

  // Collection totals across the fleet.
  std::uint64_t polls = 0;
  std::uint64_t samples = 0;
  std::uint64_t dropped_samples = 0;
  std::uint64_t degraded_polls = 0;
  std::uint64_t gap_markers = 0;
  sim::Duration initialize_total;
  sim::Duration collection_total;
  sim::Duration finalize_total;

  // Ingest path.
  std::size_t records_staged = 0;
  std::size_t records_applied = 0;
  std::size_t rejected_out_of_order = 0;
  std::size_t rejected_rate_limited = 0;
  std::size_t rejected_unavailable = 0;
  std::size_t database_rows = 0;
  std::uint64_t ingest_stalls = 0;
  double ingest_stall_seconds = 0.0;

  // Scheduler behaviour: shard claims that crossed worker homes, and
  // total worker time parked on the epoch-skew window (the only wait
  // left — there is no barrier).
  std::uint64_t shard_steals = 0;
  double window_wait_seconds = 0.0;

  // Fleet liveness at the end of the run (failure detector).
  int nodes_unknown = 0;
  int nodes_alive = 0;
  int nodes_suspect = 0;
  int nodes_dead = 0;
  std::uint64_t liveness_transitions = 0;

  // Memory footprint: resident set sampled right after the last epoch
  // merged (nodes, telemetry, and database all still live), the process
  // peak, and the per-node share of the run's RSS growth — the second
  // gate (after throughput) bench/fleet_scale applies at 100k nodes.
  std::uint64_t rss_bytes = 0;
  std::uint64_t peak_rss_bytes = 0;
  double bytes_per_node = 0.0;

  // Observability self-overhead: wall time spent capturing node
  // snapshots, folding the rollup tree, and rendering self-scrape rows.
  // bench/overhead_observability gates telemetry_seconds / wall_seconds.
  double telemetry_seconds = 0.0;
  std::size_t self_scrape_rows = 0;
  std::uint64_t recorder_events = 0;   // deterministic events captured
  std::uint64_t recorder_dropped = 0;  // evicted by ring wraparound
  bool post_mortem_triggered = false;
  std::string post_mortem_trigger;

  // Real time and throughput.
  double wall_seconds = 0.0;
  // Node-virtual-seconds simulated per real second: the fleet-scaling
  // figure of merit (bench/fleet_scale gates its thread scaling).
  double node_seconds_per_second = 0.0;
};

class FleetRunner {
 public:
  FleetRunner();
  ~FleetRunner();
  FleetRunner(const FleetRunner&) = delete;
  FleetRunner& operator=(const FleetRunner&) = delete;

  // Validates the config, builds the shared substrate and node 0 (the
  // validation canary); the remaining nodes are built lazily by the
  // worker that first advances their shard.  Single-use: a runner drives
  // exactly one fleet run.
  Status configure(FleetConfig config);

  // Simulates the fleet to the horizon.  Blocking; spawns the worker
  // pool and the ingest thread internally.
  Status run();

  // The run's aggregate report; kFailedPrecondition before run().
  [[nodiscard]] Result<FleetReport> report() const;

  // Valid after configure().
  [[nodiscard]] tsdb::EnvDatabase& database();
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  // Valid after run() (nodes other than 0 are built lazily during it).
  [[nodiscard]] const FleetNode& node(std::size_t i) const { return *nodes_[i]; }

  // The failure detector's view of the fleet (nullptr when disabled).
  [[nodiscard]] const FailureDetector* failure_detector() const { return detector_.get(); }

  // The telemetry hierarchy (nullptr when config.telemetry is false).
  [[nodiscard]] const obs::FleetTelemetry* telemetry() const { return telemetry_.get(); }
  // Per-node and fleet-level flight recorders (nullptr when disabled).
  [[nodiscard]] const obs::FlightRecorder* recorder(std::size_t i) const {
    return i < recorders_.size() ? recorders_[i].get() : nullptr;
  }
  [[nodiscard]] const obs::FlightRecorder* fleet_recorder() const {
    return fleet_recorder_.get();
  }
  // The post-mortem JSON dumped after run() when a backend quarantined
  // or the ingest deadline was missed (empty otherwise).  Deterministic:
  // only kDeterministic events are included.
  [[nodiscard]] const std::string& post_mortem() const { return post_mortem_; }

 private:
  enum class State { kIdle, kConfigured, kRan };

  // Builds rank's node (registry partition, recorder, substrate, fault
  // script) if it does not exist yet.  Called under exclusive shard
  // ownership — at most one thread ever builds a given rank.
  Status build_node(int rank);

  State state_ = State::kIdle;
  FleetConfig config_;
  power::UtilizationProfile default_workload_;
  NodeDefaults defaults_;  // shared read-only per-node config
  std::unique_ptr<smpi::World> world_;
  std::unique_ptr<tsdb::EnvDatabase> db_;
  std::vector<std::unique_ptr<FleetNode>> nodes_;
  std::vector<int> shard_bounds_;  // shard s owns ranks [b[s], b[s+1])
  std::unique_ptr<obs::FleetTelemetry> telemetry_;
  std::vector<std::unique_ptr<obs::FlightRecorder>> recorders_;  // per node
  std::unique_ptr<obs::FlightRecorder> fleet_recorder_;
  std::unique_ptr<FailureDetector> detector_;
  RecordBufferPool pool_;
  std::uint64_t rss_before_bytes_ = 0;
  std::string post_mortem_;
  FleetReport report_;

  obs::Counter* self_rows_metric_ = nullptr;
  obs::Histogram* epoch_seconds_metric_ = nullptr;
  obs::Counter* epochs_metric_ = nullptr;
  obs::Counter* staged_metric_ = nullptr;
  obs::Counter* steals_metric_ = nullptr;
  obs::Gauge* window_wait_metric_ = nullptr;
  obs::Gauge* bytes_per_node_metric_ = nullptr;
  obs::Gauge* nodes_alive_metric_ = nullptr;
  obs::Gauge* nodes_suspect_metric_ = nullptr;
  obs::Gauge* nodes_dead_metric_ = nullptr;
  obs::Counter* liveness_transitions_metric_ = nullptr;
};

// Reserved rack index for the fleet's own telemetry rows: far above any
// real BG/Q rack, so self-scrape series never collide with node data in
// location-ranged queries.
inline constexpr int kSelfTelemetryRack = 9999;

// Renders a rolled-up snapshot as environmental-database records at `t`
// under the reserved envmon.self.* namespace (tsdb::kSelfMetricPrefix):
// counters and gauges become one row each, histograms become `.count`
// and `.sum` rows, and label bodies fold into the metric name with
// quotes dropped and '='/',' mapped to '.' (e.g.
// envmon.self.envmon_backend_queries_total.backend.rapl_msr).  Rows
// inherit the snapshot's sorted order, so equal-timestamp inserts are
// deterministic.
[[nodiscard]] std::vector<tsdb::Record> self_scrape_records(const obs::Snapshot& snapshot,
                                                            sim::SimTime t);

}  // namespace v2
}  // namespace envmon::fleet
