#include "fleet/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace envmon::fleet {
inline namespace v2 {

ShardScheduler::ShardScheduler(Options options, Callbacks callbacks)
    : options_(options), callbacks_(std::move(callbacks)) {
  options_.shards = std::max(options_.shards, 1);
  options_.workers = std::max(options_.workers, 1);
  options_.epochs = std::max<std::uint64_t>(options_.epochs, 1);
  options_.window = std::max<std::uint64_t>(options_.window, 1);
  shards_.resize(static_cast<std::size_t>(options_.shards));
  arrivals_.assign(static_cast<std::size_t>(options_.window) + 1, 0);
}

int ShardScheduler::home_worker(int shard) const {
  const int base = options_.shards / options_.workers;
  const int extra = options_.shards % options_.workers;
  const int split = extra * (base + 1);
  if (shard < split) return shard / (base + 1);
  return extra + (shard - split) / std::max(base, 1);
}

int ShardScheduler::pick_shard(int worker) const {
  // Most-lagging claimable shard; home shards win ties, then lowest id.
  // O(shards) per claim — shards number in the tens to hundreds, and a
  // claim buys a whole epoch of node advancement.
  int best = -1;
  std::uint64_t best_done = 0;
  bool best_home = false;
  for (int s = 0; s < options_.shards; ++s) {
    const ShardState& state = shards_[static_cast<std::size_t>(s)];
    if (state.claimed || state.epochs_done >= options_.epochs) continue;
    if (state.epochs_done + 1 > completed_ + options_.window) continue;  // window-bound
    const bool home = home_worker(s) == worker;
    if (best < 0 || state.epochs_done < best_done ||
        (state.epochs_done == best_done && home && !best_home)) {
      best = s;
      best_done = state.epochs_done;
      best_home = home;
    }
  }
  return best;
}

void ShardScheduler::record_error(const Status& status) {
  if (first_error_.is_ok()) first_error_ = status;
  aborted_ = true;
  claimable_cv_.notify_all();
}

void ShardScheduler::drain_completions(std::unique_lock<std::mutex>& lock) {
  // Exactly one merger at a time; epochs complete strictly in order.  The
  // loop re-checks arrivals after every merge, so deposits that landed
  // while complete() ran (the merger holds no lock there) are drained by
  // this same pass — no completion is ever stranded.
  merging_ = true;
  const std::size_t ring = arrivals_.size();
  while (!aborted_ && completed_ < options_.epochs &&
         arrivals_[static_cast<std::size_t>((completed_ + 1) % ring)] == options_.shards) {
    const std::uint64_t epoch = completed_ + 1;
    lock.unlock();
    const Status s = callbacks_.complete(epoch);
    lock.lock();
    if (!s.is_ok()) {
      record_error(s);
      break;
    }
    arrivals_[static_cast<std::size_t>(epoch % ring)] = 0;
    completed_ = epoch;
    ++stats_.epochs_completed;
    claimable_cv_.notify_all();  // the skew window moved forward
  }
  merging_ = false;
}

void ShardScheduler::worker_loop(int worker) {
  double waited = 0.0;
  std::unique_lock lock(mutex_);
  for (;;) {
    if (aborted_) break;
    const int shard = pick_shard(worker);
    if (shard < 0) {
      const bool all_done =
          std::all_of(shards_.begin(), shards_.end(), [&](const ShardState& s) {
            return s.epochs_done >= options_.epochs;
          });
      if (all_done) break;
      const auto park = std::chrono::steady_clock::now();
      claimable_cv_.wait(lock);
      waited += std::chrono::duration<double>(std::chrono::steady_clock::now() - park).count();
      continue;
    }

    ShardState& state = shards_[static_cast<std::size_t>(shard)];
    state.claimed = true;
    if (home_worker(shard) != worker) ++stats_.steals;
    const std::uint64_t epoch = state.epochs_done + 1;
    lock.unlock();
    const Status advanced = callbacks_.advance(shard, epoch);
    lock.lock();
    state.claimed = false;
    if (!advanced.is_ok()) {
      record_error(advanced);
      break;
    }
    state.epochs_done = epoch;
    ++arrivals_[static_cast<std::size_t>(epoch % arrivals_.size())];
    claimable_cv_.notify_all();  // shard released + a deposit landed
    if (!merging_) drain_completions(lock);
    if (epoch == options_.epochs && callbacks_.finalize && !aborted_) {
      lock.unlock();
      const Status finalized = callbacks_.finalize(shard);
      lock.lock();
      if (!finalized.is_ok()) {
        record_error(finalized);
        break;
      }
    }
  }
  stats_.window_wait_seconds += waited;  // lock is held on every break path
}

Status ShardScheduler::run() {
  if (callbacks_.advance == nullptr || callbacks_.complete == nullptr) {
    return Status::invalid_argument("scheduler needs advance and complete callbacks");
  }
  if (options_.workers == 1) {
    worker_loop(0);
    return first_error_;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(options_.workers) - 1);
  for (int w = 1; w < options_.workers; ++w) {
    pool.emplace_back([this, w] { worker_loop(w); });
  }
  worker_loop(0);
  for (std::thread& t : pool) t.join();
  return first_error_;
}

}  // namespace v2
}  // namespace envmon::fleet
