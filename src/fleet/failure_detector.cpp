#include "fleet/failure_detector.hpp"

#include <algorithm>
#include <string>

namespace envmon::fleet {
inline namespace v2 {

FailureDetector::FailureDetector(int nodes, DetectorPolicy policy,
                                 obs::FlightRecorder* recorder)
    : policy_(policy), recorder_(recorder) {
  const std::size_t n = static_cast<std::size_t>(std::max(nodes, 1));
  policy_.nodes_per_board = std::max(policy_.nodes_per_board, 1);
  policy_.k_neighbors = std::max(policy_.k_neighbors, 1);
  policy_.suspect_after = std::max(policy_.suspect_after, 1);
  policy_.dead_after = std::max(policy_.dead_after, policy_.suspect_after + 1);
  policy_.escalation_factor = std::max(policy_.escalation_factor, 1);
  states_.assign(n, moneq::NodeLiveness::kUnknown);
  prev_states_.assign(n, moneq::NodeLiveness::kUnknown);
  nodes_.assign(n, NodeState{});
  counts_.unknown = static_cast<int>(n);
}

void FailureDetector::transition(int node, moneq::NodeLiveness to, sim::SimTime boundary,
                                 int confirmers) {
  moneq::NodeLiveness& state = states_[static_cast<std::size_t>(node)];
  if (state == to) return;
  auto bucket = [this](moneq::NodeLiveness s) -> int& {
    switch (s) {
      case moneq::NodeLiveness::kUnknown: return counts_.unknown;
      case moneq::NodeLiveness::kAlive: return counts_.alive;
      case moneq::NodeLiveness::kSuspect: return counts_.suspect;
      case moneq::NodeLiveness::kDead: return counts_.dead;
    }
    return counts_.unknown;
  };
  --bucket(state);
  ++bucket(to);
  ++transitions_;
  if (recorder_ != nullptr) {
    std::string detail = std::string(moneq::to_string(state)) + " -> " +
                         std::string(moneq::to_string(to));
    if (to == moneq::NodeLiveness::kSuspect || to == moneq::NodeLiveness::kDead) {
      detail += confirmers > 0
                    ? " (confirmed by " + std::to_string(confirmers) + " neighbors)"
                    : " (rack escalation: board dark)";
    }
    recorder_->record(boundary, node, "liveness", "liveness.transition", detail);
  }
  state = to;
}

void FailureDetector::observe_epoch(sim::SimTime boundary,
                                    const std::vector<std::uint8_t>& heartbeats) {
  const int n = static_cast<int>(states_.size());
  // Neighbor observation reads last epoch's snapshot: symmetric and
  // order-free within the epoch.
  prev_states_ = states_;
  for (int node = 0; node < n; ++node) {
    NodeState& ns = nodes_[static_cast<std::size_t>(node)];
    if (node < static_cast<int>(heartbeats.size()) &&
        heartbeats[static_cast<std::size_t>(node)] != 0) {
      ns.misses = 0;
      ns.escalation_debt = 0;
      transition(node, moneq::NodeLiveness::kAlive, boundary, 0);
      continue;
    }
    // Missed heartbeat: corroborate via the board ring.
    const int board_begin = (node / policy_.nodes_per_board) * policy_.nodes_per_board;
    const int board_size = std::min(policy_.nodes_per_board, n - board_begin);
    const int k = std::min(policy_.k_neighbors, board_size - 1);
    int observing = 0;
    for (int j = 1; j <= k; ++j) {
      // Alternate sides of the ring: +1, -1, +2, -2, ...
      const int offset = (j + 1) / 2 * (j % 2 == 1 ? 1 : -1);
      const int neighbor =
          board_begin + ((node - board_begin) + offset % board_size + board_size) % board_size;
      if (prev_states_[static_cast<std::size_t>(neighbor)] != moneq::NodeLiveness::kDead) {
        ++observing;
      }
    }
    const int quorum = k / 2 + 1;
    int confirmers = 0;
    if (k > 0 && observing >= quorum) {
      ++ns.misses;
      ns.escalation_debt = 0;
      confirmers = observing;
    } else {
      // Board dark (or boardless single node): rack-level escalation
      // confirms one miss per escalation_factor missed epochs.
      if (++ns.escalation_debt >= policy_.escalation_factor) {
        ns.escalation_debt = 0;
        ++ns.misses;
      }
    }
    if (ns.misses >= policy_.dead_after) {
      transition(node, moneq::NodeLiveness::kDead, boundary, confirmers);
    } else if (ns.misses >= policy_.suspect_after) {
      transition(node, moneq::NodeLiveness::kSuspect, boundary, confirmers);
    }
  }
  ++epochs_;
}

}  // namespace v2
}  // namespace envmon::fleet
